//===- bench/table_5_01_accumulator.cpp - Table 5.1 -------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// Regenerates Table 5.1: the before/between/after commutativity conditions
// on Accumulator, each machine-verified sound and complete.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace semcomm;
using namespace semcomm::bench;

int main() {
  ExprFactory F;
  Catalog C(F);
  ExhaustiveEngine Engine;
  const Family &Fam = accumulatorFamily();

  std::printf("Table 5.1: Before/Between/After Commutativity Conditions on "
              "Accumulator\n\n");
  int Failures = 0;
  for (ConditionKind K : {ConditionKind::Before, ConditionKind::Between,
                          ConditionKind::After}) {
    std::printf("-- %s conditions --\n", conditionKindName(K));
    for (const ConditionEntry &E : C.entries(Fam))
      Failures += !printRow(Engine, C, Fam, E.op1().Name, E.op2().Name, K);
    Failures += verifyAllOfKind(Engine, C, Fam, K);
  }
  return Failures != 0;
}
