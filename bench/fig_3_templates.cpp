//===- bench/fig_3_templates.cpp - Figures 3-1 / 3-2 -------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// Prints the generation templates: the completeness commutativity testing
// method template (Fig. 3-1; the soundness template differs as §3.2
// describes) and the inverse testing method template (Fig. 3-2).
//
//===----------------------------------------------------------------------===//

#include "jahobgen/JahobPrinter.h"

#include <cstdio>

int main() {
  std::printf("Figure 3-1: Template for Completeness Commutativity Testing "
              "Methods\n\n%s\n",
              semcomm::renderCompletenessTemplate().c_str());
  std::printf("(The soundness template inserts the condition unnegated, "
              "omits the\nreverse-order precondition assumptions, and "
              "asserts agreement; §3.2.)\n\n");
  std::printf("Figure 3-2: Template for Inverse Testing Methods\n\n%s",
              semcomm::renderInverseTemplate().c_str());
  return 0;
}
