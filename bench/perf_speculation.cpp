//===- bench/perf_speculation.cpp - Exposed concurrency ----------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// The paper's motivation (§1): exploiting commutativity is essential for
// speculative parallel performance on linked data structures. This bench
// runs the same transactional workloads through the speculative runtime
// with the commutativity gatekeeper on and off, and with inverse vs
// snapshot rollback, at several key-contention levels, reporting aborts,
// undone work, and wall-clock time.
//
//===----------------------------------------------------------------------===//

#include "runtime/SpeculativeRuntime.h"
#include "support/Timing.h"

#include <cstdio>
#include <random>

using namespace semcomm;

static StructureFactory factoryFor(const std::string &Name) {
  for (const StructureFactory &F : allStructureFactories())
    if (F.Name == Name)
      return F;
  std::abort();
}

/// Map workload: NumTxns transactions of TxnLen puts over KeyRange keys.
static std::vector<Transaction> makeWorkload(int NumTxns, int TxnLen,
                                             int KeyRange, uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  std::vector<Transaction> Txns;
  for (int T = 0; T < NumTxns; ++T) {
    Transaction Txn;
    for (int I = 0; I < TxnLen; ++I)
      Txn.push_back(
          {"put", {Value::obj(1 + static_cast<int64_t>(Rng() % KeyRange)),
                   Value::obj(1 + static_cast<int64_t>(Rng() % 4))}});
    Txns.push_back(Txn);
  }
  return Txns;
}

static void runConfig(ExprFactory &F, const Catalog &C, const char *Label,
                      int KeyRange, bool UseCommutativity,
                      RollbackPolicy Policy) {
  std::vector<Transaction> Txns = makeWorkload(8, 10, KeyRange, 42);
  SpeculativeRuntime Rt(F, C, factoryFor("HashTable"), Policy);
  Rt.setUseCommutativity(UseCommutativity);
  Stopwatch W;
  RuntimeStats S = Rt.run(Txns);
  std::printf("  %-34s keys=%-5d commits=%llu aborts=%-4llu stalls=%-4llu "
              "undone=%-5llu checks=%llu pass=%.0f%% time=%.1fms\n",
              Label, KeyRange, (unsigned long long)S.Commits,
              (unsigned long long)S.Aborts, (unsigned long long)S.Stalls,
              (unsigned long long)S.OpsUndone,
              (unsigned long long)S.GatekeeperChecks,
              S.GatekeeperChecks
                  ? 100.0 * S.GatekeeperPasses / S.GatekeeperChecks
                  : 0.0,
              W.millis());
}

int main() {
  ExprFactory F;
  Catalog C(F);

  std::printf("Speculative runtime: 8 transactions x 10 puts on a shared "
              "HashTable\n\n");
  for (int KeyRange : {1000, 64, 12}) {
    std::printf("contention level: %d keys\n", KeyRange);
    runConfig(F, C, "gatekeeper on,  inverse rollback", KeyRange, true,
              RollbackPolicy::Inverses);
    runConfig(F, C, "gatekeeper on,  snapshot rollback", KeyRange, true,
              RollbackPolicy::Snapshot);
    runConfig(F, C, "gatekeeper OFF, inverse rollback", KeyRange, false,
              RollbackPolicy::Inverses);
    std::printf("\n");
  }
  std::printf("Shape check: the gatekeeper eliminates aborts on "
              "low-contention workloads\n(distinct-key puts commute), and "
              "inverse rollback undoes only the aborted\ntransaction's "
              "operations while snapshots discard collateral work.\n");
  return 0;
}
