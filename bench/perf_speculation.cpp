//===- bench/perf_speculation.cpp - Speculative executor scaling -----------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// The paper's usage scenario (§1.2) under load: worker threads execute
// transactions speculatively over sharded HashTable instances, the striped
// gatekeeper admitting each operation through the compiled commutativity
// index. This harness sweeps a threads x contention x rollback-policy x
// checker-path grid and reports, per configuration: throughput (committed
// ops/s), abort rate, undone-op counts, and gatekeeper ns/query — the
// numbers that decide whether verified commutativity actually buys
// parallelism.
//
// Grid shape per (threads, contention) cell — a partial cross, chosen so
// every axis is exercised without quadratic bench time:
//   inverses/indexed        the production configuration
//   inverses/interpreted    same workload, tree-interpreter gatekeeper
//                           (fewer ops: it is orders of magnitude slower)
//   inverses/indexed+storm  forced-abort injection, inverse rollback
//   snapshot/indexed+storm  forced-abort injection, snapshot baseline
//
// Emits BENCH_JSON speculation_grid rows plus one speculation_summary
// line; bench/run_all.sh folds them into BENCH_semcommute.json as the
// schema-7 speculation_stats section.
//
//===----------------------------------------------------------------------===//

#include "runtime/SpeculativeExecutor.h"
#include "support/Timing.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

using namespace semcomm;

namespace {

StructureFactory factoryFor(const std::string &Name) {
  for (const StructureFactory &F : allStructureFactories())
    if (F.Name == Name)
      return F;
  abort();
}

/// One contention level of the grid: how wide the key space and the shard
/// array are relative to the transaction length.
struct Contention {
  const char *Name;
  unsigned Shards;
  unsigned Keys;
  unsigned OpsPerTxn;
};

/// A mixed put/remove/get workload over \p C's key space, shard-routed by
/// key hash so same-key operations always meet in the same shard log.
std::vector<Transaction> buildWorkload(const Contention &C, uint64_t TotalOps,
                                       uint32_t Seed) {
  std::mt19937 Rng(Seed);
  std::vector<Transaction> Txns;
  uint64_t Built = 0;
  while (Built < TotalOps) {
    Transaction Txn;
    for (unsigned I = 0; I != C.OpsPerTxn; ++I) {
      Value Key = Value::obj(static_cast<int>(1 + Rng() % C.Keys));
      unsigned Shard = SpeculativeExecutor::shardOf(Key, C.Shards);
      unsigned Roll = Rng() % 20;
      if (Roll < 14)
        Txn.push_back(
            {"put", {Key, Value::obj(static_cast<int>(Rng() % 1000))}, Shard});
      else if (Roll < 17)
        Txn.push_back({"remove", {Key}, Shard});
      else
        Txn.push_back({"get", {Key}, Shard});
    }
    Built += Txn.size();
    Txns.push_back(std::move(Txn));
  }
  return Txns;
}

struct RunResult {
  double WallMs = 0;
  double OpsPerSec = 0;
  ExecutorStats Stats;
};

RunResult runOne(ExprFactory &F, const Catalog &Cat,
                 const StructureFactory &Factory,
                 std::shared_ptr<const index::CommutativityIndex> Idx,
                 const ExecutorConfig &Cfg,
                 const std::vector<Transaction> &Txns, uint64_t TotalOps) {
  SpeculativeExecutor Ex(F, Cat, Factory, Cfg, std::move(Idx));
  Stopwatch W;
  RunResult R;
  R.Stats = Ex.run(Txns);
  R.WallMs = W.seconds() * 1e3;
  R.OpsPerSec = TotalOps / std::max(W.seconds(), 1e-9);
  return R;
}

const char *policyName(RollbackPolicy P) {
  return P == RollbackPolicy::Inverses ? "inverses" : "snapshot";
}
const char *pathName(IndexedChecker::Path P) {
  return P == IndexedChecker::Path::Indexed ? "indexed" : "interpreted";
}
const char *modeName(SchedulerMode M) {
  return M == SchedulerMode::Parallel ? "parallel" : "replay";
}

void reportRow(const Contention &C, const ExecutorConfig &Cfg,
               uint64_t TotalOps, size_t NumTxns, const RunResult &R) {
  const ExecutorStats &S = R.Stats;
  double AbortRate = NumTxns ? double(S.aborts()) / NumTxns : 0.0;
  double GkPassRate =
      S.GatekeeperChecks ? double(S.GatekeeperPasses) / S.GatekeeperChecks
                         : 1.0;
  double GkNsPerQuery =
      S.GatekeeperChecks ? double(S.GatekeeperNanos) / S.GatekeeperChecks : 0.0;
  double ConstHitRate =
      S.SampledGkQueries ? double(S.SampledGkConstantHits) / S.SampledGkQueries
                         : 0.0;
  std::printf("  %-8s t=%-2u %-4s %-9s %-11s %9.1f ms %12.0f ops/s"
              "  abort %.3f  gk %.0f ns/q  undone %llu\n",
              modeName(Cfg.Mode), Cfg.Threads, C.Name, policyName(Cfg.Policy),
              pathName(Cfg.CheckerPath), R.WallMs, R.OpsPerSec, AbortRate,
              GkNsPerQuery, (unsigned long long)S.OpsUndone);
  std::printf(
      "BENCH_JSON {\"bench\":\"perf_speculation\","
      "\"metric\":\"speculation_grid\",\"mode\":\"%s\",\"threads\":%u,"
      "\"shards\":%u,"
      "\"contention\":\"%s\",\"keys\":%u,\"policy\":\"%s\",\"path\":\"%s\","
      "\"abort_every\":%u,\"txns\":%zu,\"ops\":%llu,\"wall_ms\":%.2f,"
      "\"ops_per_sec\":%.0f,\"ops_executed\":%llu,\"commits\":%llu,"
      "\"aborts\":%llu,\"wounds\":%llu,\"injected_aborts\":%llu,"
      "\"abort_rate\":%.4f,\"undone_ops\":%llu,\"snapshots\":%llu,"
      "\"gk_checks\":%llu,\"gk_pass_rate\":%.4f,\"gk_ns_per_query\":%.1f,"
      "\"checker_program_runs\":%llu,\"checker_fallbacks\":%llu,"
      "\"sampled_const_hit_rate\":%.4f,\"completed\":%s}\n",
      modeName(Cfg.Mode), Cfg.Threads, Cfg.Shards, C.Name, C.Keys,
      policyName(Cfg.Policy), pathName(Cfg.CheckerPath), Cfg.AbortEvery,
      NumTxns,
      (unsigned long long)TotalOps, R.WallMs, R.OpsPerSec,
      (unsigned long long)S.OpsExecuted, (unsigned long long)S.Commits,
      (unsigned long long)S.aborts(), (unsigned long long)S.Wounds,
      (unsigned long long)S.InjectedAborts, AbortRate,
      (unsigned long long)S.OpsUndone, (unsigned long long)S.SnapshotsTaken,
      (unsigned long long)S.GatekeeperChecks, GkPassRate, GkNsPerQuery,
      (unsigned long long)S.CheckerProgramRuns,
      (unsigned long long)S.CheckerFallbacks, ConstHitRate,
      S.Completed ? "true" : "false");
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  unsigned MaxThreads = 8;
  uint64_t OpsOverride = 0;
  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--smoke"))
      Smoke = true;
    else if (!std::strcmp(argv[I], "--threads") && I + 1 < argc)
      MaxThreads = std::max(1, std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--ops") && I + 1 < argc)
      OpsOverride = std::strtoull(argv[++I], nullptr, 10);
    else {
      std::fprintf(stderr, "usage: %s [--smoke] [--threads N] [--ops N]\n",
                   argv[0]);
      return 2;
    }
  }

  ExprFactory F;
  Catalog Cat(F);
  StructureFactory Factory = factoryFor("HashTable");
  // One compiled image serves the whole grid (the deployment shape).
  auto Idx = std::make_shared<const index::CommutativityIndex>(
      index::CommutativityIndex::compile(Cat));

  // Thread levels: powers of two up to the cap, always including 1.
  std::vector<unsigned> ThreadLevels;
  for (unsigned T = 1; T <= MaxThreads; T *= 2)
    ThreadLevels.push_back(T);
  if (ThreadLevels.back() != MaxThreads)
    ThreadLevels.push_back(MaxThreads);
  if (Smoke && ThreadLevels.size() > 2)
    ThreadLevels = {1, MaxThreads};

  // Contention levels: "low" spreads short transactions across many
  // shards (admission usually meets an empty log); "high" packs long
  // transactions onto few shards and keys (long logs, real conflicts —
  // where the gatekeeper's cost decides the throughput).
  // Transactions are long (64/96 ops) so that the in-flight window is
  // sustained: with short scripts the pool's dispatch overhead dominates
  // and shard logs are empty by the time the next transaction starts.
  Contention Low = {"low", 32, 8192, 64};
  Contention High = {"high", 4, 48, 96};
  uint64_t IndexedOps = Smoke ? 30000 : 1000000;
  uint64_t InterpOps = Smoke ? 3000 : 100000;
  // The gatekeeper-isolation cells (Replay mode, fixed admission window)
  // run every admission against a scheduler-maintained dense log, so each
  // op costs ~window/2 x OpsPerTxn/Shards checker queries: size them
  // smaller than the end-to-end rows.
  uint64_t GkIdxOps = Smoke ? 12000 : 200000;
  uint64_t GkInterpOps = Smoke ? 3000 : 20000;
  const unsigned GkWindow = 16;
  if (OpsOverride) {
    IndexedOps = OpsOverride;
    InterpOps = std::max<uint64_t>(OpsOverride / 10, 1000);
    GkIdxOps = std::max<uint64_t>(OpsOverride / 5, 2000);
    GkInterpOps = std::max<uint64_t>(OpsOverride / 50, 1000);
  }

  std::printf("perf_speculation: threads x contention x policy x path "
              "(%s mode)\n",
              Smoke ? "smoke" : "full");

  double RatioHigh = 0, RatioLow = 0;
  double GkNsIdxHigh = 0, GkNsInterpHigh = 0;
  double IdxOps1High = 0, IdxOpsMaxHigh = 0;
  double IdxOps1Low = 0, IdxOpsMaxLow = 0;
  double ConstHitRate = 0;
  uint64_t StormUndoneInverses = 0, StormUndoneSnapshot = 0;
  bool AllCompleted = true;

  // Gatekeeper isolation: Replay mode interleaves transaction steps in
  // the scheduler itself — a bounded window of live transactions keeps
  // every shard log dense no matter how many cores the host has — so the
  // indexed-vs-interpreted ratio measures checker cost under sustained
  // speculation, not OS timeslicing luck. The cells use a wide key space:
  // gatekeeper *load* (dense uncommitted concurrency, full-log scans) is
  // what is being dialed up, while actual key collisions stay rare so the
  // two paths' rollback waste does not drown the checker-cost signal.
  Contention GkLow = {"low", 32, 65536, 64};   // ~16-entry logs
  Contention GkHigh = {"high", 2, 65536, 96};  // ~380-entry logs
  for (const Contention *C : {&GkLow, &GkHigh}) {
    bool IsHigh = C == &GkHigh;
    for (IndexedChecker::Path Path :
         {IndexedChecker::Path::Indexed, IndexedChecker::Path::Interpreted}) {
      bool IsIdx = Path == IndexedChecker::Path::Indexed;
      uint64_t Ops = IsIdx ? GkIdxOps : GkInterpOps;
      std::vector<Transaction> Txns = buildWorkload(*C, Ops, /*Seed=*/1234);
      uint64_t N = 0;
      for (const Transaction &T : Txns)
        N += T.size();
      ExecutorConfig Cfg;
      Cfg.Threads = 1;
      Cfg.Shards = C->Shards;
      Cfg.Mode = SchedulerMode::Replay;
      Cfg.ReplaySeed = 42;
      Cfg.AdmitWindow = GkWindow;
      Cfg.CheckerPath = Path;
      Cfg.TimeGatekeeper = true;
      Cfg.StatsSamplePeriod = 64;
      RunResult R = runOne(F, Cat, Factory, Idx, Cfg, Txns, N);
      reportRow(*C, Cfg, N, Txns.size(), R);
      AllCompleted &= R.Stats.Completed;
      double GkNs = R.Stats.GatekeeperChecks
                        ? double(R.Stats.GatekeeperNanos) /
                              R.Stats.GatekeeperChecks
                        : 0.0;
      if (IsIdx) {
        if (IsHigh) {
          GkNsIdxHigh = GkNs;
          if (R.Stats.SampledGkQueries)
            ConstHitRate = double(R.Stats.SampledGkConstantHits) /
                           R.Stats.SampledGkQueries;
        }
        (IsHigh ? RatioHigh : RatioLow) = R.OpsPerSec;
      } else {
        if (IsHigh)
          GkNsInterpHigh = GkNs;
        double &Ratio = IsHigh ? RatioHigh : RatioLow;
        Ratio = R.OpsPerSec > 0 ? Ratio / R.OpsPerSec : 0.0;
      }
    }
  }

  for (const Contention *C : {&Low, &High}) {
    bool IsHigh = C == &High;
    std::vector<Transaction> TxnsIdx =
        buildWorkload(*C, IndexedOps, /*Seed=*/1234);
    std::vector<Transaction> TxnsInterp =
        buildWorkload(*C, InterpOps, /*Seed=*/1234);
    uint64_t NIdx = 0, NInterp = 0;
    for (const Transaction &T : TxnsIdx)
      NIdx += T.size();
    for (const Transaction &T : TxnsInterp)
      NInterp += T.size();

    for (unsigned T : ThreadLevels) {
      ExecutorConfig Base;
      Base.Threads = T;
      Base.Shards = C->Shards;
      Base.Mode = SchedulerMode::Parallel;
      Base.TimeGatekeeper = true;
      Base.StatsSamplePeriod = 64;

      // Production shape: inverses + compiled index.
      ExecutorConfig Cfg = Base;
      RunResult Prod = runOne(F, Cat, Factory, Idx, Cfg, TxnsIdx, NIdx);
      reportRow(*C, Cfg, NIdx, TxnsIdx.size(), Prod);
      AllCompleted &= Prod.Stats.Completed;
      if (T == 1)
        (IsHigh ? IdxOps1High : IdxOps1Low) = Prod.OpsPerSec;
      if (T == ThreadLevels.back())
        (IsHigh ? IdxOpsMaxHigh : IdxOpsMaxLow) = Prod.OpsPerSec;

      // Same workload shape, tree-interpreter gatekeeper (normalized
      // ops/s makes the shorter run comparable).
      Cfg = Base;
      Cfg.CheckerPath = IndexedChecker::Path::Interpreted;
      RunResult Interp = runOne(F, Cat, Factory, Idx, Cfg, TxnsInterp, NInterp);
      reportRow(*C, Cfg, NInterp, TxnsInterp.size(), Interp);
      AllCompleted &= Interp.Stats.Completed;

      // Abort storms: forced injection, both rollback policies.
      for (RollbackPolicy Policy :
           {RollbackPolicy::Inverses, RollbackPolicy::Snapshot}) {
        Cfg = Base;
        Cfg.Policy = Policy;
        Cfg.AbortEvery = 1024;
        Cfg.MaxInjectedAbortsPerTxn = 2;
        RunResult Storm = runOne(F, Cat, Factory, Idx, Cfg, TxnsIdx, NIdx);
        reportRow(*C, Cfg, NIdx, TxnsIdx.size(), Storm);
        AllCompleted &= Storm.Stats.Completed;
        if (IsHigh && T == ThreadLevels.back()) {
          if (Policy == RollbackPolicy::Inverses)
            StormUndoneInverses = Storm.Stats.OpsUndone;
          else
            StormUndoneSnapshot = Storm.Stats.OpsUndone;
        }
      }
    }
  }

  double ScaleLow = IdxOps1Low > 0 ? IdxOpsMaxLow / IdxOps1Low : 0;
  double ScaleHigh = IdxOps1High > 0 ? IdxOpsMaxHigh / IdxOps1High : 0;
  std::printf("summary: indexed/interpreted %.1fx (high) %.1fx (low) "
              "[replay, window %u]; gk %.0f vs %.0f ns/q (high); "
              "1->%u threads scaling %.2fx (low) %.2fx (high)\n",
              RatioHigh, RatioLow, GkWindow, GkNsIdxHigh, GkNsInterpHigh,
              ThreadLevels.back(), ScaleLow, ScaleHigh);
  std::printf(
      "BENCH_JSON {\"bench\":\"perf_speculation\","
      "\"metric\":\"speculation_summary\",\"max_threads\":%u,"
      "\"thread_levels\":%zu,\"gk_window\":%u,"
      "\"indexed_over_interpreted_x_high\":%.2f,"
      "\"indexed_over_interpreted_x_low\":%.2f,"
      "\"gk_ns_per_query_indexed_high\":%.1f,"
      "\"gk_ns_per_query_interpreted_high\":%.1f,"
      "\"scaling_1_to_max_low\":%.3f,\"scaling_1_to_max_high\":%.3f,"
      "\"ops_per_sec_1t_low\":%.0f,\"ops_per_sec_max_low\":%.0f,"
      "\"ops_per_sec_1t_high\":%.0f,\"ops_per_sec_max_high\":%.0f,"
      "\"sampled_const_hit_rate\":%.4f,"
      "\"storm_undone_inverses\":%llu,\"storm_undone_snapshot\":%llu,"
      "\"all_completed\":%s}\n",
      ThreadLevels.back(), ThreadLevels.size(), GkWindow, RatioHigh, RatioLow,
      GkNsIdxHigh, GkNsInterpHigh, ScaleLow, ScaleHigh, IdxOps1Low,
      IdxOpsMaxLow, IdxOps1High, IdxOpsMaxHigh, ConstHitRate,
      (unsigned long long)StormUndoneInverses,
      (unsigned long long)StormUndoneSnapshot, AllCompleted ? "true" : "false");
  return AllCompleted ? 0 : 1;
}
