//===- bench/perf_lattice_ablation.cpp - Clause-dropping ablation ------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// §5.1 / Ch. 6: dropping disjuncts from a sound-and-complete condition
// yields sound, simpler, but incomplete conditions — the commutativity
// lattice. For representative pairs this bench prints every lattice point
// with its verified status and the concurrency it exposes (scenario
// acceptance rate), the trade-off a deployment picks from.
//
//===----------------------------------------------------------------------===//

#include "runtime/Lattice.h"
#include "logic/Printer.h"

#include <cstdio>

using namespace semcomm;

static void ablate(ExprFactory &F, const Catalog &C,
                   const ExhaustiveEngine &Engine, const Family &Fam,
                   const char *Op1, const char *Op2) {
  std::printf("pair: %s ; %s (between)\n", Op1, Op2);
  for (const LatticePoint &P :
       buildLattice(F, C, Engine, Fam, Op1, Op2)) {
    std::printf("  clauses=%u sound=%-3s complete=%-3s accepts=%5.1f%%  %s\n",
                P.NumClauses, P.Sound ? "yes" : "NO",
                P.Complete ? "yes" : "no", 100.0 * P.AcceptRate,
                printAbstract(P.Condition).c_str());
  }
  std::printf("\n");
}

int main() {
  ExprFactory F;
  Catalog C(F);
  ExhaustiveEngine Engine;

  std::printf("Commutativity lattice ablation (dropping disjuncts keeps "
              "soundness,\nloses completeness, and shrinks the accepted "
              "scenario fraction)\n\n");
  ablate(F, C, Engine, setFamily(), "contains", "remove_");
  ablate(F, C, Engine, setFamily(), "add", "add");
  ablate(F, C, Engine, mapFamily(), "get", "put_");
  ablate(F, C, Engine, mapFamily(), "put", "put");
  ablate(F, C, Engine, arrayListFamily(), "indexOf", "add_at");
  return 0;
}
