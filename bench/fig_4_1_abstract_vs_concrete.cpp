//===- bench/fig_4_1_abstract_vs_concrete.cpp - Figure 4-1 --------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// Demonstrates the commuting diagram of Fig. 4-1 on a live ListSet: the
// two execution orders produce different concrete linked lists whose
// abstractions coincide — semantic commutativity beyond concrete-state
// equality (§1.1).
//
//===----------------------------------------------------------------------===//

#include "impl/ListSet.h"

#include <cstdio>

using namespace semcomm;

static std::string listText(const ListSet &S) {
  std::string Text = "first";
  for (const Value &V : S.elementsInListOrder())
    Text += " -> " + V.str();
  return Text;
}

int main() {
  std::printf("Figure 4-1: Execution on Concrete States and Abstract "
              "States\n\n");
  ListSet A, B;
  A.add(Value::obj(1));
  A.add(Value::obj(2)); // order m1; m2
  B.add(Value::obj(2));
  B.add(Value::obj(1)); // order m2; m1

  std::printf("order add(o1); add(o2):  concrete %s\n", listText(A).c_str());
  std::printf("order add(o2); add(o1):  concrete %s\n", listText(B).c_str());
  std::printf("concrete states equal:   %s\n",
              A.elementsInListOrder() == B.elementsInListOrder() ? "yes"
                                                                 : "no");
  std::printf("abstraction a(s1;2):     %s\n", A.abstraction().str().c_str());
  std::printf("abstraction a(s2;1):     %s\n", B.abstraction().str().c_str());
  bool Equal = A.abstraction() == B.abstraction();
  std::printf("abstract states equal:   %s\n\n", Equal ? "yes" : "no");
  std::printf("A commutativity analysis at the concrete level would reject "
              "this pair;\nthe semantic analysis accepts it (§1.1).\n");
  return Equal ? 0 : 1;
}
