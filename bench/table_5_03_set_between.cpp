//===- bench/table_5_03_set_between.cpp - Table 5.3 --------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// Regenerates Table 5.3: between commutativity conditions on ListSet and
// HashSet, where recorded return values substitute for initial-state
// membership queries (§4.1.2).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace semcomm;
using namespace semcomm::bench;

int main() {
  ExprFactory F;
  Catalog C(F);
  ExhaustiveEngine Engine;
  const Family &Fam = setFamily();

  std::printf("Table 5.3: Between Commutativity Conditions on ListSet and "
              "HashSet\n\n");
  const char *Rows[][2] = {
      {"add_", "add_"},      {"add_", "contains"},  {"add_", "remove_"},
      {"contains", "add_"},  {"contains", "contains"},
      {"contains", "remove_"},
      {"remove_", "add_"},   {"remove_", "contains"},
      {"remove_", "remove_"},
      // The §5.1 worked example: recorded adds need (v1 ~= v2 | ~r1).
      {"add", "add"}};
  int Failures = 0;
  for (const auto &Row : Rows)
    Failures +=
        !printRow(Engine, C, Fam, Row[0], Row[1], ConditionKind::Between);
  Failures += verifyAllOfKind(Engine, C, Fam, ConditionKind::Between);
  return Failures != 0;
}
