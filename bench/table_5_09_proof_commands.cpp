//===- bench/table_5_09_proof_commands.cpp - Table 5.9 -----------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// Regenerates Table 5.9: the Jahob proof-language commands needed for the
// 57 remaining ArrayList commutativity testing methods. Every reconstructed
// command carries a formula that is machine-validated against the scenario
// space (see commute/ProofHints.h); the bench prints the counts, the
// per-category method breakdown of §5.2.1, and one sample script.
//
//===----------------------------------------------------------------------===//

#include "commute/ProofHints.h"
#include "logic/Printer.h"

#include <cstdio>

using namespace semcomm;

int main() {
  ExprFactory F;
  Catalog C(F);
  std::vector<HintScript> Scripts = buildArrayListHintScripts(F);
  HintSummary S = summarizeHints(Scripts);

  std::printf("Table 5.9: Additional Jahob Proof Language Commands for "
              "Remaining 57\nArrayList Commutativity Testing Methods\n\n");
  std::printf("  %-24s %5s   (paper)\n", "Proof Language Command", "count");
  std::printf("  %-24s %5u   (128)\n", "note", S.Notes);
  std::printf("  %-24s %5u   (51)\n", "assuming", S.Assumings);
  std::printf("  %-24s %5u   (22)\n", "pickWitness", S.PickWitnesses);
  std::printf("  %-24s %5u   (201)\n\n", "Total",
              S.Notes + S.Assumings + S.PickWitnesses);
  std::printf("Methods per category (paper: 12 / 8 / 20 / 17 = 57):\n");
  std::printf("  1. soundness, shift x scan:        %u\n",
              S.MethodsByCategory[1]);
  std::printf("  2. soundness, scan x remove_at:    %u\n",
              S.MethodsByCategory[2]);
  std::printf("  3. completeness, update x update:  %u\n",
              S.MethodsByCategory[3]);
  std::printf("  4. completeness, shift x scan:     %u\n",
              S.MethodsByCategory[4]);
  std::printf("  total:                             %u\n\n", S.Methods);

  std::printf("Validating all %u scripts against the scenario space...\n",
              S.Methods);
  int Invalid = 0;
  for (const HintScript &Script : Scripts) {
    HintValidation V = validateScript(Script, C);
    if (!V.Ok) {
      ++Invalid;
      std::printf("  INVALID %s,%s %s %s: %s\n", Script.Op1Name.c_str(),
                  Script.Op2Name.c_str(), conditionKindName(Script.Kind),
                  methodRoleName(Script.Role), V.FailureNote.c_str());
    }
  }
  std::printf("  %d invalid scripts\n\n", Invalid);

  std::printf("Sample script (the §5.2.1 remove_at/indexOf after-soundness "
              "method):\n");
  for (const HintScript &Script : Scripts) {
    if (Script.Op1Name != "remove_at" || Script.Op2Name != "indexOf" ||
        Script.Kind != ConditionKind::After ||
        Script.Role != MethodRole::Soundness)
      continue;
    for (const HintCommand &Cmd : Script.Commands)
      std::printf("  %s%s \"%s\"\n      // %s\n",
                  hintCommandKindName(Cmd.Kind),
                  Cmd.WitnessVar.empty() ? "" : (" " + Cmd.WitnessVar).c_str(),
                  printAbstract(Cmd.Formula).c_str(), Cmd.Comment.c_str());
  }
  return Invalid != 0;
}
