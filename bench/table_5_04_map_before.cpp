//===- bench/table_5_04_map_before.cpp - Table 5.4 ---------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// Regenerates Table 5.4: before commutativity conditions on AssociationList
// and HashTable.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace semcomm;
using namespace semcomm::bench;

int main() {
  ExprFactory F;
  Catalog C(F);
  ExhaustiveEngine Engine;
  const Family &Fam = mapFamily();

  std::printf("Table 5.4: Before Commutativity Conditions on "
              "AssociationList and HashTable\n\n");
  const char *Rows[][2] = {
      {"get", "get"},      {"get", "put_"},     {"get", "remove_"},
      {"put_", "get"},     {"put_", "put_"},    {"put_", "remove_"},
      {"remove_", "get"},  {"remove_", "put_"}, {"remove_", "remove_"}};
  int Failures = 0;
  for (const auto &Row : Rows)
    Failures +=
        !printRow(Engine, C, Fam, Row[0], Row[1], ConditionKind::Before);
  Failures += verifyAllOfKind(Engine, C, Fam, ConditionKind::Before);
  return Failures != 0;
}
