//===- bench/fig_2_3_2_4_inverse_methods.cpp - Figures 2-3 / 2-4 -------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// Prints the generated inverse testing methods for HashSet.add (Fig. 2-3)
// and HashTable.put (Fig. 2-4), verifying each.
//
//===----------------------------------------------------------------------===//

#include "inverse/InverseVerifier.h"
#include "jahobgen/JahobPrinter.h"

#include <cstdio>

using namespace semcomm;

int main() {
  int Failures = 0;
  for (const InverseSpec &Spec : buildInverseSpecs()) {
    const bool IsFig23 = Spec.Fam->Name == "Set" && Spec.OpName == "add";
    const bool IsFig24 = Spec.Fam->Name == "Map" && Spec.OpName == "put";
    if (!IsFig23 && !IsFig24)
      continue;
    std::printf("Figure %s: %s Inverse Operation Testing Method for %s\n\n",
                IsFig23 ? "2-3" : "2-4", IsFig23 ? "HashSet" : "HashTable",
                Spec.ForwardText.c_str());
    std::printf("%s\n", renderInverseMethod(
                            Spec, IsFig23 ? "HashSet" : "HashTable")
                            .c_str());
    InverseVerifyResult R = verifyInverse(Spec);
    std::printf("// verified: %s\n\n", R.Verified ? "yes" : "NO");
    Failures += !R.Verified;
  }
  return Failures != 0;
}
