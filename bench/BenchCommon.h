//===- bench/BenchCommon.h - Shared table-printing helpers ------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-table bench binaries: each prints the paper
/// table's rows (operation pair, abstract-dialect condition, concrete
/// runtime condition) together with the machine verification verdict of
/// every printed condition.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_BENCH_BENCHCOMMON_H
#define SEMCOMM_BENCH_BENCHCOMMON_H

#include "commute/ExhaustiveEngine.h"
#include "logic/Printer.h"

#include <cstdio>
#include <string>

namespace semcomm {
namespace bench {

/// Prints one table row and verifies the printed condition both ways.
/// Returns true when the condition is sound and complete.
inline bool printRow(const ExhaustiveEngine &Engine, const Catalog &C,
                     const Family &Fam, const std::string &Op1,
                     const std::string &Op2, ConditionKind K) {
  const ConditionEntry &E = C.entry(Fam, Op1, Op2);
  ExprRef Phi = E.get(K);
  bool Sound = Engine
                   .verifyCondition(Fam, Op1, Op2, K, MethodRole::Soundness,
                                    Phi)
                   .Verified;
  bool Complete = Engine
                      .verifyCondition(Fam, Op1, Op2, K,
                                       MethodRole::Completeness, Phi)
                      .Verified;
  std::printf("  %-28s %-28s\n", E.op1().renderCall("s1", 1).c_str(),
              E.op2().renderCall("s2", 2).c_str());
  std::printf("    abstract: %s\n", printAbstract(Phi).c_str());
  std::printf("    concrete: %s\n", printConcrete(Phi).c_str());
  std::printf("    verified: sound=%s complete=%s\n", Sound ? "yes" : "NO",
              Complete ? "yes" : "NO");
  return Sound && Complete;
}

/// Verifies every condition of \p Fam at kind \p K, printing a summary
/// line; returns the number of failures.
inline int verifyAllOfKind(const ExhaustiveEngine &Engine, const Catalog &C,
                           const Family &Fam, ConditionKind K) {
  int Failures = 0;
  for (const ConditionEntry &E : C.entries(Fam))
    for (MethodRole R : {MethodRole::Soundness, MethodRole::Completeness})
      if (!Engine
               .verifyCondition(Fam, E.op1().Name, E.op2().Name, K, R,
                                E.get(K))
               .Verified)
        ++Failures;
  std::printf("[full %s table: %zu %s conditions, %d verification "
              "failures]\n",
              Fam.Name.c_str(), C.entries(Fam).size(), conditionKindName(K),
              Failures);
  return Failures;
}

} // namespace bench
} // namespace semcomm

#endif // SEMCOMM_BENCH_BENCHCOMMON_H
