//===- bench/table_5_02_set_before.cpp - Table 5.2 ---------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// Regenerates Table 5.2: before commutativity conditions on ListSet and
// HashSet (the paper samples the discarded-update rows against recorded
// contains; the full 36-pair table is verified in bulk at the end).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace semcomm;
using namespace semcomm::bench;

int main() {
  ExprFactory F;
  Catalog C(F);
  ExhaustiveEngine Engine;
  const Family &Fam = setFamily();

  std::printf("Table 5.2: Before Commutativity Conditions on ListSet and "
              "HashSet\n\n");
  const char *Rows[][2] = {
      {"add_", "add_"},      {"add_", "contains"},  {"add_", "remove_"},
      {"contains", "add_"},  {"contains", "contains"},
      {"contains", "remove_"},
      {"remove_", "add_"},   {"remove_", "contains"},
      {"remove_", "remove_"}};
  int Failures = 0;
  for (const auto &Row : Rows)
    Failures +=
        !printRow(Engine, C, Fam, Row[0], Row[1], ConditionKind::Before);
  Failures += verifyAllOfKind(Engine, C, Fam, ConditionKind::Before);
  return Failures != 0;
}
