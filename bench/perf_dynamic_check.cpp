//===- bench/perf_dynamic_check.cpp - Gatekeeper overhead --------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// Measures the cost of dynamically evaluating a between commutativity
// condition against a live structure (the fourth column of the paper's
// tables), compared with the cost of the gated operation itself. The
// paper's dynamic usage scenario only pays off if this check is cheap.
//
//===----------------------------------------------------------------------===//

#include "impl/HashSet.h"
#include "impl/HashTable.h"
#include "runtime/DynamicChecker.h"

#include <benchmark/benchmark.h>

using namespace semcomm;

namespace {
struct CheckerFixture {
  ExprFactory F;
  Catalog C{F};
  DynamicChecker Checker{F, C};
};
CheckerFixture &fixture() {
  static CheckerFixture Fx;
  return Fx;
}
} // namespace

static void BM_HashSetAddRaw(benchmark::State &State) {
  HashSet S;
  for (int I = 0; I < 64; ++I)
    S.add(Value::obj(I));
  int64_t K = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(S.add(Value::obj(K % 128)));
    S.remove(Value::obj(K % 128));
    ++K;
  }
}
BENCHMARK(BM_HashSetAddRaw);

static void BM_GatekeeperCheckSet(benchmark::State &State) {
  CheckerFixture &Fx = fixture();
  HashSet S;
  for (int I = 0; I < 64; ++I)
    S.add(Value::obj(I));
  int64_t K = 0;
  for (auto _ : State) {
    bool Ok = Fx.Checker.mayCommute(S, "add", {Value::obj(K % 128)},
                                    Value::boolean(true), "contains",
                                    {Value::obj((K + 1) % 128)});
    benchmark::DoNotOptimize(Ok);
    ++K;
  }
}
BENCHMARK(BM_GatekeeperCheckSet);

static void BM_GatekeeperCheckMap(benchmark::State &State) {
  CheckerFixture &Fx = fixture();
  HashTable T;
  for (int I = 0; I < 64; ++I)
    T.put(Value::obj(I), Value::obj(I + 100));
  int64_t K = 0;
  for (auto _ : State) {
    bool Ok = Fx.Checker.mayCommute(T, "put",
                                    {Value::obj(K % 128), Value::obj(1)},
                                    Value::null(), "get",
                                    {Value::obj((K + 1) % 128)});
    benchmark::DoNotOptimize(Ok);
    ++K;
  }
}
BENCHMARK(BM_GatekeeperCheckMap);

static void BM_ExactCheckWithSavedState(benchmark::State &State) {
  CheckerFixture &Fx = fixture();
  HashSet Before;
  for (int I = 0; I < 64; ++I)
    Before.add(Value::obj(I));
  HashSet Live(Before);
  int64_t K = 0;
  for (auto _ : State) {
    bool Ok = Fx.Checker.commutesExact(Before, Live, "contains",
                                       {Value::obj(K % 128)},
                                       Value::boolean(K % 2 == 0), "add_",
                                       {Value::obj((K + 1) % 128)});
    benchmark::DoNotOptimize(Ok);
    ++K;
  }
}
BENCHMARK(BM_ExactCheckWithSavedState);

BENCHMARK_MAIN();
