//===- bench/perf_dynamic_check.cpp - Gatekeeper query throughput ----------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// Measures the cost of answering one gatekeeper query — "may these two
// operations commute right now?" — through each tier of machinery:
//
//   raw op                      the gated operation itself (reference cost)
//   interpreted                 DynamicChecker: memoized condition lookup,
//                               Env construction, tree interpretation
//   indexed (name-based)        IndexedChecker facade: per-call name ->
//                               operation-index resolution + bytecode
//   indexed (pair handle)       pre-resolved PairHandle + bytecode sweep
//   constant-bitmap hit         pre-resolved PairHandle, two bit tests
//
// The paper's dynamic usage scenario (§1.2) only pays off if the check is
// cheap next to the operation it gates; the compiled index is how it gets
// there. Emits BENCH_JSON lines for bench/run_all.sh, including the
// index_summary line the BENCH_semcommute.json index_stats section is
// built from.
//
//===----------------------------------------------------------------------===//

#include "impl/HashSet.h"
#include "impl/HashTable.h"
#include "index/IndexFuzz.h"
#include "runtime/IndexedChecker.h"
#include "support/Timing.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace semcomm;

namespace {

uint64_t Sink = 0; ///< Accumulates results so the loops cannot fold away.

/// Times \p Body(I) over repeated fixed-size batches and returns the
/// *fastest* batch in nanoseconds per call. Preemption and other machine
/// noise only ever add time, so the minimum is the robust estimator of
/// the true cost — means drift with load and make the reported speedups
/// jitter. Every fixture is constructed by the caller before this runs —
/// nothing but the query is on the timed path.
template <typename Fn> double nsPerOp(Fn &&Body) {
  constexpr int BatchIters = 65536;
  for (int I = 0; I != 2000; ++I)
    Sink += Body(I);
  double BestNs = 1e300;
  for (int Rep = 0; Rep != 12; ++Rep) {
    Stopwatch W;
    for (int I = 0; I != BatchIters; ++I)
      Sink += Body(I);
    BestNs = std::min(BestNs, W.seconds() * 1e9 / BatchIters);
  }
  return BestNs;
}

struct Row {
  std::string Variant;
  double Ns;
};

void report(std::vector<Row> &Rows, const std::string &Variant, double Ns) {
  Rows.push_back({Variant, Ns});
  std::printf("%-28s %10.1f ns/op %14.0f qps\n", Variant.c_str(), Ns,
              1e9 / Ns);
  std::printf("BENCH_JSON {\"bench\":\"perf_dynamic_check\","
              "\"metric\":\"qps\",\"variant\":\"%s\","
              "\"ns_per_op\":%.2f,\"qps\":%.0f}\n",
              Variant.c_str(), Ns, 1e9 / Ns);
}

} // namespace

int main() {
  // All fixtures are built here, outside every timed region: the factory,
  // catalog, both checkers, the compiled index, the live structures, and
  // the pre-resolved pair handles.
  ExprFactory F;
  Catalog C(F);
  DynamicChecker Interp(F, C);
  IndexedChecker Indexed(F, C);
  const Family &SetFam = setFamily();
  const Family &MapFam = mapFamily();

  HashSet S;
  for (int I = 0; I != 64; ++I)
    S.add(Value::obj(I));
  HashSet SBefore(S);
  HashTable T;
  for (int I = 0; I != 64; ++I)
    T.put(Value::obj(I), Value::obj(I + 100));

  // Argument tuples are pre-built, as in the real gatekeeper: the
  // speculative runtime checks against *logged* operations, whose ArgLists
  // already exist. Constructing a vector per query would charge an
  // allocation to every tier and drown the machinery cost being measured.
  constexpr int Pool = 128;
  std::vector<ArgList> ObjA(Pool), ObjB(Pool), PutA(Pool);
  std::vector<Value> Rets(Pool);
  for (int I = 0; I != Pool; ++I) {
    ObjA[I] = {Value::obj(I)};
    ObjB[I] = {Value::obj((I + 1) % Pool)};
    PutA[I] = {Value::obj(I), Value::obj(1)};
    Rets[I] = Value::boolean(I % 2 == 0);
  }
  const Value True = Value::boolean(true);
  const Value Null = Value::null();

  IndexedChecker::PairHandle SetAddContains =
      Indexed.resolve(SetFam, "add", "contains");
  IndexedChecker::PairHandle SetContainsAdd_ =
      Indexed.resolve(SetFam, "contains", "add_");
  IndexedChecker::PairHandle MapPutGet = Indexed.resolve(MapFam, "put", "get");

  // A pair whose conservative between condition lives in the constant
  // bitmap (never runs a program): prefer contains/contains, else scan.
  const index::FamilyIndex *SetIdx = Indexed.index().familyIndex(SetFam);
  IndexedChecker::PairHandle ConstPair =
      Indexed.resolve(SetFam, "contains", "contains");
  {
    const index::IndexProgram *P = nullptr;
    if (SetIdx->classify(ConstPair.Op1, ConstPair.Op2,
                         index::SlotBetweenConservative,
                         &P) == index::Verdict::Program) {
      for (unsigned I = 0; I != SetIdx->numOps() && P; ++I)
        for (unsigned J = 0; J != SetIdx->numOps() && P; ++J)
          if (SetIdx->classify(I, J, index::SlotBetweenConservative, &P) !=
              index::Verdict::Program) {
            ConstPair = Indexed.resolve(SetFam, SetFam.Ops[I].Name,
                                        SetFam.Ops[J].Name);
            P = nullptr;
          }
    }
  }
  const std::string &ConstOp1 = SetFam.Ops[ConstPair.Op1].Name;
  const std::string &ConstOp2 = SetFam.Ops[ConstPair.Op2].Name;

  std::printf("Gatekeeper query cost by machinery tier (HashSet/HashTable "
              "with 64 entries; constant pair: %s,%s):\n\n",
              ConstOp1.c_str(), ConstOp2.c_str());

  std::vector<Row> Rows;

  report(Rows, "set_raw_add", nsPerOp([&](int I) {
           bool R = S.add(Value::obj(I % 128));
           S.remove(Value::obj(I % 128));
           return static_cast<uint64_t>(R);
         }));

  report(Rows, "set_interp_conservative", nsPerOp([&](int I) {
           int K = I % Pool;
           return static_cast<uint64_t>(Interp.mayCommute(
               S, "add", ObjA[K], True, "contains", ObjB[K]));
         }));

  report(Rows, "set_interp_exact", nsPerOp([&](int I) {
           int K = I % Pool;
           return static_cast<uint64_t>(Interp.commutesExact(
               SBefore, S, "contains", ObjA[K], Rets[K], "add_", ObjB[K]));
         }));

  report(Rows, "set_indexed_name", nsPerOp([&](int I) {
           int K = I % Pool;
           return static_cast<uint64_t>(Indexed.mayCommute(
               S, "add", ObjA[K], True, "contains", ObjB[K]));
         }));

  report(Rows, "set_indexed_handle", nsPerOp([&](int I) {
           int K = I % Pool;
           return static_cast<uint64_t>(Indexed.mayCommuteFast(
               SetAddContains, S, ObjA[K], True, ObjB[K]));
         }));

  report(Rows, "set_indexed_exact_handle", nsPerOp([&](int I) {
           int K = I % Pool;
           return static_cast<uint64_t>(Indexed.commutesExactFast(
               SetContainsAdd_, SBefore, S, ObjA[K], Rets[K], ObjB[K]));
         }));

  report(Rows, "map_interp_conservative", nsPerOp([&](int I) {
           int K = I % Pool;
           return static_cast<uint64_t>(
               Interp.mayCommute(T, "put", PutA[K], Null, "get", ObjB[K]));
         }));

  report(Rows, "map_indexed_handle", nsPerOp([&](int I) {
           int K = I % Pool;
           return static_cast<uint64_t>(
               Indexed.mayCommuteFast(MapPutGet, T, PutA[K], Null, ObjB[K]));
         }));

  report(Rows, "const_interp", nsPerOp([&](int I) {
           int K = I % Pool;
           return static_cast<uint64_t>(Interp.mayCommute(
               S, ConstOp1, ObjA[K], True, ConstOp2, ObjB[K]));
         }));

  report(Rows, "const_indexed_bitmap", nsPerOp([&](int I) {
           int K = I % Pool;
           return static_cast<uint64_t>(Indexed.mayCommuteFast(
               ConstPair, S, ObjA[K], True, ObjB[K]));
         }));

  auto rowNs = [&Rows](const char *Name) {
    for (const Row &R : Rows)
      if (R.Variant == Name)
        return R.Ns;
    return 0.0;
  };

  double IndexedSpeedup =
      rowNs("set_interp_conservative") / rowNs("set_indexed_handle");
  double ConstantSpeedup = rowNs("const_interp") / rowNs("const_indexed_bitmap");
  index::IndexStats Stats = Indexed.index().stats();

  std::printf("\nindexed speedup (set conservative, handle path): %.1fx\n",
              IndexedSpeedup);
  std::printf("constant-bitmap speedup: %.1fx\n", ConstantSpeedup);
  std::printf("constant slots: %u of %u (%.1f%%)\n", Stats.Constants,
              Stats.TotalSlots, 100.0 * Stats.constantFraction());

  std::printf("BENCH_JSON {\"bench\":\"perf_dynamic_check\","
              "\"metric\":\"index_summary\","
              "\"indexed_speedup_x\":%.2f,\"constant_speedup_x\":%.2f,"
              "\"interpreted_ns\":%.2f,\"indexed_ns\":%.2f,"
              "\"constant_ns\":%.2f,\"raw_op_ns\":%.2f,"
              "\"constant_fraction\":%.4f,\"total_slots\":%u,"
              "\"programs\":%u,\"constants\":%u,\"fallbacks\":%u,"
              "\"max_regs\":%u,\"total_instructions\":%u,"
              "\"paper_conditions\":%u}\n",
              IndexedSpeedup, ConstantSpeedup,
              rowNs("set_interp_conservative"), rowNs("set_indexed_handle"),
              rowNs("const_indexed_bitmap"), rowNs("set_raw_add"),
              Stats.constantFraction(), Stats.TotalSlots, Stats.Programs,
              Stats.Constants, Stats.Fallbacks, Stats.MaxRegs,
              Stats.TotalInstructions, Stats.PaperConditions);

  // Keep the sink observable so the compiler cannot elide the query loops.
  std::fprintf(stderr, "sink: %llu\n",
               static_cast<unsigned long long>(Sink));
  return 0;
}
