//===- bench/fig_2_1_hashset_spec.cpp - Figure 2-1 ---------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// Prints the Jahob HashSet interface specification of Fig. 2-1.
//
//===----------------------------------------------------------------------===//

#include "jahobgen/JahobPrinter.h"

#include <cstdio>

int main() {
  std::printf("Figure 2-1: The Jahob HashSet Specification\n\n%s",
              semcomm::renderHashSetSpec().c_str());
  return 0;
}
