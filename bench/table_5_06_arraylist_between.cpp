//===- bench/table_5_06_arraylist_between.cpp - Table 5.6 --------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// Regenerates Table 5.6: between commutativity conditions on ArrayList for
// the paper's sampled rows (add_at / indexOf / remove_at combinations).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace semcomm;
using namespace semcomm::bench;

int main() {
  ExprFactory F;
  Catalog C(F);
  ExhaustiveEngine Engine;
  const Family &Fam = arrayListFamily();

  std::printf("Table 5.6: Between Commutativity Conditions on ArrayList\n\n");
  const char *Rows[][2] = {
      {"add_at", "add_at"},      {"add_at", "indexOf"},
      {"add_at", "remove_at_"},  {"indexOf", "add_at"},
      {"indexOf", "indexOf"},    {"indexOf", "remove_at_"},
      {"remove_at_", "add_at"},  {"remove_at_", "indexOf"},
      {"remove_at_", "remove_at_"}};
  int Failures = 0;
  for (const auto &Row : Rows)
    Failures +=
        !printRow(Engine, C, Fam, Row[0], Row[1], ConditionKind::Between);
  Failures += verifyAllOfKind(Engine, C, Fam, ConditionKind::Between);
  return Failures != 0;
}
