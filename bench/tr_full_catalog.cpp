//===- bench/tr_full_catalog.cpp - The technical report's complete tables ----===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// The paper repeatedly defers to "the complete tables available in the
// technical report version" (MIT-CSAIL-TR-2010-056) for the full set of
// 765 commutativity conditions, including the recorded-return variants the
// in-paper tables omit. This bench regenerates those complete tables from
// the catalog: every ordered pair of operation variants of every family,
// at all three kinds, in both dialects, with its verification verdict.
//
//===----------------------------------------------------------------------===//

#include "commute/ExhaustiveEngine.h"
#include "logic/Printer.h"

#include <cstdio>

using namespace semcomm;

int main() {
  ExprFactory F;
  Catalog C(F);
  ExhaustiveEngine Engine;

  unsigned Total = 0, Failures = 0;
  for (const Family *Fam : allFamilies()) {
    std::string Structures;
    for (const std::string &Name : Fam->StructureNames)
      Structures += (Structures.empty() ? "" : " and ") + Name;
    std::printf("==== Complete commutativity conditions on %s ====\n\n",
                Structures.c_str());
    for (ConditionKind K : {ConditionKind::Before, ConditionKind::Between,
                            ConditionKind::After}) {
      std::printf("---- %s conditions ----\n", conditionKindName(K));
      for (const ConditionEntry &E : C.entries(*Fam)) {
        ExprRef Phi = E.get(K);
        bool Sound =
            Engine
                .verifyCondition(*Fam, E.op1().Name, E.op2().Name, K,
                                 MethodRole::Soundness, Phi)
                .Verified;
        bool Complete =
            Engine
                .verifyCondition(*Fam, E.op1().Name, E.op2().Name, K,
                                 MethodRole::Completeness, Phi)
                .Verified;
        Total += Fam->StructureNames.size();
        if (!Sound || !Complete)
          ++Failures;
        std::printf("%-26s %-26s\n", E.op1().renderCall("s1", 1).c_str(),
                    E.op2().renderCall("s2", 2).c_str());
        std::printf("    %s\n", printAbstract(Phi).c_str());
        std::printf("    %s\n", printConcrete(Phi).c_str());
        if (!Sound || !Complete)
          std::printf("    *** VERIFICATION FAILED (sound=%d complete=%d)\n",
                      Sound, Complete);
      }
      std::printf("\n");
    }
  }
  std::printf("==== %u conditions total (counted per structure; paper: "
              "765), %u verification failures ====\n",
              Total, Failures);
  return Failures != 0;
}
