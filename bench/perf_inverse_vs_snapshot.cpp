//===- bench/perf_inverse_vs_snapshot.cpp - §1.3's efficiency claim ----------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// §1.3: "Executing inverse operations that undo the effect of executed
// operations can be substantially more efficient than alternate approaches
// (such as pessimistically saving the data structure state before
// operations execute, then restoring the state...)". This bench measures
// both rollback strategies on a HashTable of size N after K speculative
// operations: the snapshot cost scales with N, the inverse cost with K.
// The expected shape: inverses win whenever K << N.
//
//===----------------------------------------------------------------------===//

#include "impl/HashTable.h"

#include <benchmark/benchmark.h>

using namespace semcomm;

static void populate(HashTable &T, int64_t N) {
  for (int64_t I = 0; I < N; ++I)
    T.put(Value::obj(I), Value::obj(I + 1000000));
}

/// Speculative episode with snapshot rollback: clone before, mutate K
/// entries, restore the clone.
static void BM_SnapshotRollback(benchmark::State &State) {
  int64_t N = State.range(0), K = State.range(1);
  HashTable T;
  populate(T, N);
  for (auto _ : State) {
    std::unique_ptr<ConcreteStructure> Snapshot = T.clone();
    for (int64_t I = 0; I < K; ++I)
      T.put(Value::obj(I % N), Value::obj(I));
    // Conflict: restore.
    benchmark::DoNotOptimize(Snapshot->size());
    T = static_cast<HashTable &>(*Snapshot);
  }
  State.SetLabel("structure=" + std::to_string(N) +
                 " speculative_ops=" + std::to_string(K));
}
BENCHMARK(BM_SnapshotRollback)
    ->Args({1000, 4})
    ->Args({10000, 4})
    ->Args({10000, 64})
    ->Args({100000, 4});

/// Speculative episode with inverse rollback: log the K puts' previous
/// values, then undo in reverse order (Table 5.10's put inverse).
static void BM_InverseRollback(benchmark::State &State) {
  int64_t N = State.range(0), K = State.range(1);
  HashTable T;
  populate(T, N);
  struct Undo {
    Value Key;
    Value Prev;
  };
  std::vector<Undo> Log;
  Log.reserve(K);
  for (auto _ : State) {
    Log.clear();
    for (int64_t I = 0; I < K; ++I) {
      Value Key = Value::obj(I % N);
      Value Prev = T.put(Key, Value::obj(I));
      Log.push_back({Key, Prev});
    }
    // Conflict: run the inverses in reverse order.
    for (auto It = Log.rbegin(); It != Log.rend(); ++It) {
      if (!It->Prev.isNull())
        T.put(It->Key, It->Prev);
      else
        T.remove(It->Key);
    }
    benchmark::DoNotOptimize(T.size());
  }
  State.SetLabel("structure=" + std::to_string(N) +
                 " speculative_ops=" + std::to_string(K));
}
BENCHMARK(BM_InverseRollback)
    ->Args({1000, 4})
    ->Args({10000, 4})
    ->Args({10000, 64})
    ->Args({100000, 4});

BENCHMARK_MAIN();
