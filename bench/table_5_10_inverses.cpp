//===- bench/table_5_10_inverses.cpp - Table 5.10 ----------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// Regenerates Table 5.10: the inverse operation of every state-changing
// operation, with Property 3 machine-verified for each row ("All of the
// eight inverse testing methods verified as generated", §5.3).
//
//===----------------------------------------------------------------------===//

#include "inverse/InverseVerifier.h"

#include <cstdio>

using namespace semcomm;

int main() {
  std::printf("Table 5.10: Inverse Operations\n\n");
  std::printf("  %-16s %-22s %-48s %s\n", "Structure(s)", "Operation",
              "Inverse Operation", "verified");
  int Failures = 0;
  for (const InverseSpec &Spec : buildInverseSpecs()) {
    InverseVerifyResult R = verifyInverse(Spec);
    std::string Structures;
    for (const std::string &Name : Spec.Fam->StructureNames)
      Structures += (Structures.empty() ? "" : "/") + Name;
    std::printf("  %-16s %-22s %-48s %s (%llu scenarios)\n",
                Structures.c_str(), Spec.ForwardText.c_str(),
                Spec.InverseText.c_str(), R.Verified ? "yes" : "NO",
                static_cast<unsigned long long>(R.ScenariosChecked));
    if (!R.Verified) {
      ++Failures;
      std::printf("    failure: %s\n", R.FailureNote.c_str());
    }
  }
  std::printf("\nNote: systems applying return-value-consuming inverses "
              "must store the\nforward operation's return value (§5.3).\n");
  return Failures != 0;
}
