//===- bench/perf_engine_scaling.cpp - Engine scope scaling -------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// Verification cost versus scope for both engines, supporting DESIGN.md
// §4.1's small-scope argument: the verdicts stabilize by scope 3 while the
// cost grows combinatorially — the reason the default scope suffices.
//
// The symbolic section also compares the one-shot discharge strategy (a
// fresh solver session per VC, the pre-incremental behavior) against the
// warm assumption-based session, and emits machine-readable BENCH_JSON
// lines that bench/run_all.sh collects into BENCH_semcommute.json.
//
//===----------------------------------------------------------------------===//

#include "commute/ExhaustiveEngine.h"
#include "commute/SymbolicEngine.h"
#include "support/Timing.h"

#include <cstdio>

using namespace semcomm;

namespace {

struct SymbolicRun {
  double Seconds = 0;
  uint64_t Vcs = 0;
  int64_t Conflicts = 0;
  unsigned Failures = 0;
  unsigned Methods = 0;
  uint64_t RetainedClauses = 0;
};

SymbolicRun runSymbolicSuite(ExprFactory &F, const Catalog &C, int Bound,
                             SolveMode Mode) {
  SymbolicEngine Engine(F, Bound, /*ConflictBudget=*/200000, Mode);
  SymbolicRun Out;
  Stopwatch W;
  for (const TestingMethod &M :
       generateTestingMethods(C, arrayListFamily())) {
    SymbolicResult R = Engine.verify(M);
    Out.Vcs += R.NumVcs;
    Out.Conflicts += R.SatConflicts;
    Out.RetainedClauses += R.RetainedClauses;
    Out.Failures += !R.Verified;
    ++Out.Methods;
  }
  Out.Seconds = W.seconds();
  return Out;
}

} // namespace

int main() {
  ExprFactory F;
  Catalog C(F);

  std::printf("Exhaustive engine, full ArrayList method suite by "
              "scope:\n\n");
  std::printf("%8s %10s %12s %10s\n", "maxLen", "methods", "scenarios",
              "time(s)");
  for (int MaxLen = 2; MaxLen <= 5; ++MaxLen) {
    Scope Sc;
    Sc.MaxSeqLen = MaxLen;
    ExhaustiveEngine Engine(Sc);
    Stopwatch W;
    uint64_t Scenarios = 0;
    unsigned Failures = 0, Methods = 0;
    for (const TestingMethod &M :
         generateTestingMethods(C, arrayListFamily())) {
      VerifyResult R = Engine.verify(M);
      Scenarios += R.ScenariosChecked;
      Failures += !R.Verified;
      ++Methods;
    }
    std::printf("%8d %10u %12llu %10.2f%s\n", MaxLen, Methods,
                (unsigned long long)Scenarios, W.seconds(),
                Failures ? "  FAILURES!" : "");
  }

  std::printf("\nSymbolic engine, full ArrayList method suite by length "
              "bound,\none-shot session-per-VC vs incremental "
              "assumption-based session:\n\n");
  std::printf("%8s %10s %12s %12s %12s %10s\n", "bound", "methods", "VCs",
              "oneshot(s)", "incr(s)", "speedup");
  for (int Bound = 2; Bound <= 4; ++Bound) {
    // Untimed warm-up: intern this bound's expressions into the shared
    // factory so neither timed leg pays first-time allocation.
    runSymbolicSuite(F, C, Bound, SolveMode::Incremental);
    SymbolicRun OneShot = runSymbolicSuite(F, C, Bound, SolveMode::OneShot);
    SymbolicRun Incr = runSymbolicSuite(F, C, Bound, SolveMode::Incremental);
    double Speedup = Incr.Seconds > 0 ? OneShot.Seconds / Incr.Seconds : 0;
    std::printf("%8d %10u %12llu %12.3f %12.3f %9.2fx%s\n", Bound,
                Incr.Methods, (unsigned long long)Incr.Vcs, OneShot.Seconds,
                Incr.Seconds, Speedup,
                (OneShot.Failures || Incr.Failures) ? "  FAILURES!" : "");
    // Machine-readable line for bench/run_all.sh's aggregate baseline.
    std::printf("BENCH_JSON {\"bench\":\"perf_engine_scaling\","
                "\"metric\":\"symbolic_arraylist_suite\",\"bound\":%d,"
                "\"methods\":%u,\"vcs\":%llu,\"oneshot_s\":%.4f,"
                "\"incremental_s\":%.4f,\"speedup\":%.3f,"
                "\"oneshot_conflicts\":%lld,\"incremental_conflicts\":%lld,"
                "\"failures\":%u}\n",
                Bound, Incr.Methods, (unsigned long long)Incr.Vcs,
                OneShot.Seconds, Incr.Seconds, Speedup,
                (long long)OneShot.Conflicts, (long long)Incr.Conflicts,
                OneShot.Failures + Incr.Failures);
  }
  return 0;
}
