//===- bench/perf_engine_scaling.cpp - Engine scope scaling -------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// Verification cost versus scope for both engines, supporting DESIGN.md
// §4.1's small-scope argument: the verdicts stabilize by scope 3 while the
// cost grows combinatorially — the reason the default scope suffices.
//
//===----------------------------------------------------------------------===//

#include "commute/ExhaustiveEngine.h"
#include "commute/SymbolicEngine.h"
#include "support/Timing.h"

#include <cstdio>

using namespace semcomm;

int main() {
  ExprFactory F;
  Catalog C(F);

  std::printf("Exhaustive engine, full ArrayList method suite by "
              "scope:\n\n");
  std::printf("%8s %10s %12s %10s\n", "maxLen", "methods", "scenarios",
              "time(s)");
  for (int MaxLen = 2; MaxLen <= 5; ++MaxLen) {
    Scope Sc;
    Sc.MaxSeqLen = MaxLen;
    ExhaustiveEngine Engine(Sc);
    Stopwatch W;
    uint64_t Scenarios = 0;
    unsigned Failures = 0, Methods = 0;
    for (const TestingMethod &M :
         generateTestingMethods(C, arrayListFamily())) {
      VerifyResult R = Engine.verify(M);
      Scenarios += R.ScenariosChecked;
      Failures += !R.Verified;
      ++Methods;
    }
    std::printf("%8d %10u %12llu %10.2f%s\n", MaxLen, Methods,
                (unsigned long long)Scenarios, W.seconds(),
                Failures ? "  FAILURES!" : "");
  }

  std::printf("\nSymbolic engine, full ArrayList method suite by length "
              "bound:\n\n");
  std::printf("%8s %10s %12s %10s\n", "bound", "methods", "VCs", "time(s)");
  for (int Bound = 2; Bound <= 4; ++Bound) {
    SymbolicEngine Engine(F, Bound);
    Stopwatch W;
    uint64_t Vcs = 0;
    unsigned Failures = 0, Methods = 0;
    for (const TestingMethod &M :
         generateTestingMethods(C, arrayListFamily())) {
      SymbolicResult R = Engine.verify(M);
      Vcs += R.NumVcs;
      Failures += !R.Verified;
      ++Methods;
    }
    std::printf("%8d %10u %12llu %10.2f%s\n", Bound, Methods,
                (unsigned long long)Vcs, W.seconds(),
                Failures ? "  FAILURES!" : "");
  }
  return 0;
}
