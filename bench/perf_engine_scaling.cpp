//===- bench/perf_engine_scaling.cpp - Engine scope scaling -------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// Verification cost versus scope for both engines, supporting DESIGN.md
// §4.1's small-scope argument: the verdicts stabilize by scope 3 while the
// cost grows combinatorially — the reason the default scope suffices.
//
// The symbolic section compares the five discharge strategies — one-shot
// session-per-VC, the per-method warm session, the shared per-pair session
// (selector literals, one warm solver for all six methods of an op-pair),
// the shared family session (one warm solver for the whole family,
// per-pair scopes retired when done), and the shared catalog session
// (selector-tree scopes, family subtrees retired in one pass, Tseitin
// variables recycled) — and emits machine-readable BENCH_JSON lines that
// bench/run_all.sh collects into BENCH_semcommute.json, including the
// pair-over-method, family-over-pair, and catalog-over-family speedup
// ratios, the clause-GC/eviction counters, and a peak-live-variables
// series (peak live vs. cumulative variable demand, per bound) showing
// what index recycling buys.
//
// A second sweep varies the clause-GC budget (the --gc-budget knob /
// SatSolver::setClauseGcLimit) over the shared-family ArrayList suite so
// the default threshold is picked from measured peak-retention/time data
// instead of MiniSat folklore.
//
// A third run compares the shared-family ArrayList suite with the §5.2.1
// proof-hint scripts attached against a hints-off baseline, emitting the
// conflict reduction (and the max single-VC conflict count, i.e. the
// budget the suite actually needs) so the ArrayList conflict budget is a
// measured choice.
//
//===----------------------------------------------------------------------===//

// With --quick the sweeps trim to a ~5s budget (exhaustive scope <= 4,
// symbolic bound <= 3, three GC budget points) — what bench/run_all.sh
// passes unless SEMCOMM_BENCH_FULL=1. Every BENCH_JSON metric name is
// emitted either way; the full sweep just adds the expensive rows.

#include "commute/ExhaustiveEngine.h"
#include "commute/ProofHints.h"
#include "commute/SymbolicEngine.h"
#include "support/Timing.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

using namespace semcomm;

namespace {

struct SymbolicRun {
  double Seconds = 0;
  uint64_t Vcs = 0;
  int64_t Conflicts = 0;
  int64_t MaxVcConflicts = 0;
  unsigned Failures = 0;
  unsigned Methods = 0;
  uint64_t RetainedClauses = 0;
  uint64_t DbReductions = 0;
  uint64_t ReclaimedClauses = 0;
};

/// Per-method discharge (one engine call per testing method).
SymbolicRun runSymbolicSuite(ExprFactory &F, const Catalog &C, int Bound,
                             SolveMode Mode) {
  SymbolicEngine Engine(F, Bound, /*ConflictBudget=*/200000, Mode);
  SymbolicRun Out;
  Stopwatch W;
  for (const TestingMethod &M :
       generateTestingMethods(C, arrayListFamily())) {
    SymbolicResult R = Engine.verify(M);
    Out.Vcs += R.NumVcs;
    Out.Conflicts += R.SatConflicts;
    Out.RetainedClauses += R.RetainedClauses;
    Out.DbReductions += R.DbReductions;
    Out.ReclaimedClauses += R.ReclaimedClauses;
    Out.Failures += !R.Verified;
    ++Out.Methods;
  }
  Out.Seconds = W.seconds();
  return Out;
}

/// Pair-grouped discharge: all six methods of each pair share one session.
SymbolicRun runSharedPairSuite(ExprFactory &F, const Catalog &C, int Bound) {
  SymbolicEngine Engine(F, Bound, /*ConflictBudget=*/200000,
                        SolveMode::SharedPair);
  SymbolicRun Out;
  Stopwatch W;
  for (const ConditionEntry &E : C.entries(arrayListFamily())) {
    PairOutcome O = Engine.verifyPair(E);
    for (const SymbolicResult &R : O.Methods) {
      Out.Vcs += R.NumVcs;
      Out.Failures += !R.Verified;
      ++Out.Methods;
    }
    Out.Conflicts += O.Conflicts;
    Out.RetainedClauses += O.RetainedClauses;
    Out.DbReductions += O.DbReductions;
    Out.ReclaimedClauses += O.ReclaimedClauses;
  }
  Out.Seconds = W.seconds();
  return Out;
}

/// Family-level discharge: every ArrayList pair through one FamilySession,
/// each pair's scope retired when its six methods are done. With
/// \p Hints, the §5.2.1 scripts attach as labeled split assumptions.
SymbolicRun runSharedFamilySuite(ExprFactory &F, const Catalog &C, int Bound,
                                 int64_t GcBudget,
                                 FamilySessionStats *StatsOut = nullptr,
                                 const std::vector<HintScript> *Hints =
                                     nullptr) {
  SymbolicEngine Engine(F, Bound, /*ConflictBudget=*/200000,
                        SolveMode::SharedFamily);
  Engine.setClauseGcBudget(GcBudget);
  Engine.attachHints(Hints);
  SymbolicRun Out;
  Stopwatch W;
  FamilyOutcome FO = Engine.verifyFamily(C, arrayListFamily());
  for (const PairOutcome &O : FO.Pairs)
    for (const SymbolicResult &R : O.Methods) {
      Out.Vcs += R.NumVcs;
      Out.MaxVcConflicts = std::max(Out.MaxVcConflicts, R.MaxVcConflicts);
      Out.Failures += !R.Verified;
      ++Out.Methods;
    }
  Out.Conflicts = FO.Conflicts;
  Out.RetainedClauses = FO.Stats.PeakRetainedClauses;
  Out.DbReductions = FO.DbReductions;
  Out.ReclaimedClauses = FO.ReclaimedClauses;
  Out.Seconds = W.seconds();
  if (StatsOut)
    *StatsOut = FO.Stats;
  return Out;
}

/// Catalog-level discharge of the same ArrayList workload: one
/// CatalogSession (selector-tree scopes, subtree retirement, variable
/// recycling) serving the family as its only shard.
SymbolicRun runSharedCatalogSuite(ExprFactory &F, const Catalog &C, int Bound,
                                  CatalogSessionStats *StatsOut = nullptr) {
  SymbolicEngine Engine(F, Bound, /*ConflictBudget=*/200000,
                        SolveMode::SharedCatalog);
  SymbolicRun Out;
  Stopwatch W;
  CatalogOutcome CO = Engine.verifyCatalog(C, {&arrayListFamily()});
  for (const FamilyOutcome &FO : CO.Families)
    for (const PairOutcome &O : FO.Pairs)
      for (const SymbolicResult &R : O.Methods) {
        Out.Vcs += R.NumVcs;
        Out.MaxVcConflicts = std::max(Out.MaxVcConflicts, R.MaxVcConflicts);
        Out.Failures += !R.Verified;
        ++Out.Methods;
      }
  Out.Conflicts = CO.Conflicts;
  Out.RetainedClauses = CO.Stats.PeakRetainedClauses;
  Out.DbReductions = CO.DbReductions;
  Out.ReclaimedClauses = CO.ReclaimedClauses;
  Out.Seconds = W.seconds();
  if (StatsOut)
    *StatsOut = CO.Stats;
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = false;
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--quick") == 0)
      Quick = true;
  const int MaxExhaustiveLen = Quick ? 4 : 5;
  const int MaxSymbolicBound = Quick ? 3 : 4;

  ExprFactory F;
  Catalog C(F);

  std::printf("Exhaustive engine, full ArrayList method suite by "
              "scope%s:\n\n", Quick ? " (--quick)" : "");
  std::printf("%8s %10s %12s %10s\n", "maxLen", "methods", "scenarios",
              "time(s)");
  for (int MaxLen = 2; MaxLen <= MaxExhaustiveLen; ++MaxLen) {
    Scope Sc;
    Sc.MaxSeqLen = MaxLen;
    ExhaustiveEngine Engine(Sc);
    Stopwatch W;
    uint64_t Scenarios = 0;
    unsigned Failures = 0, Methods = 0;
    for (const TestingMethod &M :
         generateTestingMethods(C, arrayListFamily())) {
      VerifyResult R = Engine.verify(M);
      Scenarios += R.ScenariosChecked;
      Failures += !R.Verified;
      ++Methods;
    }
    std::printf("%8d %10u %12llu %10.2f%s\n", MaxLen, Methods,
                (unsigned long long)Scenarios, W.seconds(),
                Failures ? "  FAILURES!" : "");
  }

  std::printf("\nSymbolic engine, full ArrayList method suite by length "
              "bound:\none-shot session-per-VC vs per-method warm session "
              "vs shared per-pair vs shared family vs shared catalog "
              "session:\n\n");
  std::printf("%8s %10s %12s %12s %12s %12s %12s %12s %9s %9s %9s\n",
              "bound", "methods", "VCs", "oneshot(s)", "method(s)",
              "pair(s)", "family(s)", "catalog(s)", "pair-gain", "fam-gain",
              "cat-gain");
  for (int Bound = 2; Bound <= MaxSymbolicBound; ++Bound) {
    // Untimed warm-up: intern this bound's expressions into the shared
    // factory so no timed leg pays first-time allocation.
    runSharedPairSuite(F, C, Bound);
    SymbolicRun OneShot = runSymbolicSuite(F, C, Bound, SolveMode::OneShot);
    SymbolicRun Method = runSymbolicSuite(F, C, Bound, SolveMode::PerMethod);
    SymbolicRun Pair = runSharedPairSuite(F, C, Bound);
    FamilySessionStats FamStats;
    SymbolicRun Fam = runSharedFamilySuite(F, C, Bound, /*GcBudget=*/0,
                                           &FamStats);
    CatalogSessionStats CatStats;
    SymbolicRun Cat = runSharedCatalogSuite(F, C, Bound, &CatStats);
    // The acceptance metrics: each tier must at least hold the line
    // against the one below it.
    double PairGain = Pair.Seconds > 0 ? Method.Seconds / Pair.Seconds : 0;
    double FamGain = Fam.Seconds > 0 ? Pair.Seconds / Fam.Seconds : 0;
    double CatGain = Cat.Seconds > 0 ? Fam.Seconds / Cat.Seconds : 0;
    double IncrGain = Method.Seconds > 0 ? OneShot.Seconds / Method.Seconds
                                         : 0;
    unsigned Failures = OneShot.Failures + Method.Failures + Pair.Failures +
                        Fam.Failures + Cat.Failures;
    std::printf("%8d %10u %12llu %12.3f %12.3f %12.3f %12.3f %12.3f "
                "%8.2fx %8.2fx %8.2fx%s\n",
                Bound, Pair.Methods, (unsigned long long)Pair.Vcs,
                OneShot.Seconds, Method.Seconds, Pair.Seconds, Fam.Seconds,
                Cat.Seconds, PairGain, FamGain, CatGain,
                Failures ? "  FAILURES!" : "");
    // The peak-live-variables series: what recycling buys at this bound.
    std::printf("%8s catalog vars: peak %llu live of %llu requested, "
                "%llu recycled, peak %llu live clauses\n", "",
                (unsigned long long)CatStats.PeakLiveVars,
                (unsigned long long)CatStats.VarRequests,
                (unsigned long long)CatStats.RecycledVars,
                (unsigned long long)CatStats.PeakLiveClauses);
    // Machine-readable line for bench/run_all.sh's aggregate baseline.
    std::printf("BENCH_JSON {\"bench\":\"perf_engine_scaling\","
                "\"metric\":\"symbolic_arraylist_suite\",\"bound\":%d,"
                "\"methods\":%u,\"vcs\":%llu,\"oneshot_s\":%.4f,"
                "\"per_method_s\":%.4f,\"shared_pair_s\":%.4f,"
                "\"shared_family_s\":%.4f,\"shared_catalog_s\":%.4f,"
                "\"speedup\":%.3f,\"pair_over_method_speedup\":%.3f,"
                "\"family_over_pair_speedup\":%.3f,"
                "\"catalog_over_family_speedup\":%.3f,"
                "\"oneshot_conflicts\":%lld,\"per_method_conflicts\":%lld,"
                "\"shared_pair_conflicts\":%lld,"
                "\"shared_family_conflicts\":%lld,"
                "\"shared_catalog_conflicts\":%lld,"
                "\"shared_pair_retained_clauses\":%llu,"
                "\"shared_pair_db_reductions\":%llu,"
                "\"shared_pair_reclaimed_clauses\":%llu,"
                "\"family_peak_retained_clauses\":%llu,"
                "\"family_evictions\":%llu,"
                "\"family_evicted_clauses\":%llu,"
                "\"family_prefix_reuses\":%llu,"
                "\"catalog_peak_live_vars\":%llu,"
                "\"catalog_var_requests\":%llu,"
                "\"catalog_recycled_vars\":%llu,"
                "\"catalog_peak_live_clauses\":%llu,"
                "\"failures\":%u}\n",
                Bound, Pair.Methods, (unsigned long long)Pair.Vcs,
                OneShot.Seconds, Method.Seconds, Pair.Seconds, Fam.Seconds,
                Cat.Seconds, IncrGain, PairGain, FamGain, CatGain,
                (long long)OneShot.Conflicts,
                (long long)Method.Conflicts, (long long)Pair.Conflicts,
                (long long)Fam.Conflicts, (long long)Cat.Conflicts,
                (unsigned long long)Pair.RetainedClauses,
                (unsigned long long)Pair.DbReductions,
                (unsigned long long)Pair.ReclaimedClauses,
                (unsigned long long)FamStats.PeakRetainedClauses,
                (unsigned long long)FamStats.PairsRetired,
                (unsigned long long)FamStats.EvictedClauses,
                (unsigned long long)FamStats.PrefixReuses,
                (unsigned long long)CatStats.PeakLiveVars,
                (unsigned long long)CatStats.VarRequests,
                (unsigned long long)CatStats.RecycledVars,
                (unsigned long long)CatStats.PeakLiveClauses, Failures);
  }

  // Clause-GC budget sweep over the shared-family ArrayList suite: the
  // default reduce threshold is whatever this data says, not folklore.
  // (A budget below the workload's live-lemma count trades re-derivation
  // conflicts for retention; a budget above it never fires.)
  std::printf("\nClause-GC budget sweep, shared-family ArrayList suite "
              "(bound 3):\n\n");
  std::printf("%10s %10s %12s %14s %12s %12s\n", "budget", "time(s)",
              "conflicts", "peak-retained", "reductions", "reclaimed");
  runSharedFamilySuite(F, C, 3, 0); // Warm-up.
  std::vector<int64_t> GcBudgets =
      Quick ? std::vector<int64_t>{100, 500, 4000}
            : std::vector<int64_t>{100, 250, 500, 1000, 2000, 4000};
  for (int64_t Budget : GcBudgets) {
    FamilySessionStats FamStats;
    SymbolicRun Run = runSharedFamilySuite(F, C, 3, Budget, &FamStats);
    std::printf("%10lld %10.3f %12lld %14llu %12llu %12llu%s\n",
                (long long)Budget, Run.Seconds, (long long)Run.Conflicts,
                (unsigned long long)FamStats.PeakRetainedClauses,
                (unsigned long long)Run.DbReductions,
                (unsigned long long)Run.ReclaimedClauses,
                Run.Failures ? "  FAILURES!" : "");
    std::printf("BENCH_JSON {\"bench\":\"perf_engine_scaling\","
                "\"metric\":\"gc_budget_sweep\",\"bound\":3,"
                "\"gc_budget\":%lld,\"shared_family_s\":%.4f,"
                "\"conflicts\":%lld,\"peak_retained_clauses\":%llu,"
                "\"db_reductions\":%llu,\"reclaimed_clauses\":%llu,"
                "\"failures\":%u}\n",
                (long long)Budget, Run.Seconds, (long long)Run.Conflicts,
                (unsigned long long)FamStats.PeakRetainedClauses,
                (unsigned long long)Run.DbReductions,
                (unsigned long long)Run.ReclaimedClauses, Run.Failures);
  }

  // Hint-guided budget measurement: the shared-family ArrayList suite with
  // the §5.2.1 proof-hint scripts attached vs. the hints-off baseline. The
  // max single-VC conflict count is the budget the suite actually needs —
  // whether --symbolic conflict budgets can drop is a data question, so
  // both numbers land in the committed baseline.
  std::printf("\nHint-guided budget measurement, shared-family ArrayList "
              "suite (bound 3):\n\n");
  std::printf("%10s %10s %12s %16s\n", "hints", "time(s)", "conflicts",
              "max-vc-conflicts");
  std::vector<HintScript> Scripts = buildArrayListHintScripts(F);
  SymbolicRun HintsOff = runSharedFamilySuite(F, C, 3, /*GcBudget=*/0);
  SymbolicRun HintsOn = runSharedFamilySuite(F, C, 3, /*GcBudget=*/0,
                                             /*StatsOut=*/nullptr, &Scripts);
  for (const auto &Leg : {std::make_pair("off", &HintsOff),
                          std::make_pair("on", &HintsOn)})
    std::printf("%10s %10.3f %12lld %16lld%s\n", Leg.first,
                Leg.second->Seconds, (long long)Leg.second->Conflicts,
                (long long)Leg.second->MaxVcConflicts,
                Leg.second->Failures ? "  FAILURES!" : "");
  double HintReduction =
      HintsOn.Conflicts > 0
          ? (double)HintsOff.Conflicts / (double)HintsOn.Conflicts
          : (HintsOff.Conflicts > 0 ? 0.0 : 1.0);
  std::printf("hint_conflict_reduction: %.3fx; the suite's conflict budget "
              "could drop to ~%lld (max single-VC count with hints %s)\n",
              HintReduction,
              (long long)std::max<int64_t>(HintsOn.MaxVcConflicts, 1),
              HintsOn.MaxVcConflicts <= HintsOff.MaxVcConflicts ? "attached"
                                                                : "off");
  std::printf("BENCH_JSON {\"bench\":\"perf_engine_scaling\","
              "\"metric\":\"hint_budget\",\"bound\":3,"
              "\"hints_off_s\":%.4f,\"hints_on_s\":%.4f,"
              "\"hints_off_conflicts\":%lld,\"hints_on_conflicts\":%lld,"
              "\"hints_off_max_vc_conflicts\":%lld,"
              "\"hints_on_max_vc_conflicts\":%lld,"
              "\"hint_conflict_reduction\":%.3f,"
              "\"failures\":%u}\n",
              HintsOff.Seconds, HintsOn.Seconds,
              (long long)HintsOff.Conflicts, (long long)HintsOn.Conflicts,
              (long long)HintsOff.MaxVcConflicts,
              (long long)HintsOn.MaxVcConflicts, HintReduction,
              HintsOff.Failures + HintsOn.Failures);
  return 0;
}
