//===- bench/perf_sat_solver.cpp - smt/ substrate throughput -----------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// Throughput of the from-scratch CDCL core and the eager SMT facade the
// symbolic engine discharges its verification conditions with — including
// the one-shot-vs-incremental comparisons the assumption-based session
// design is justified by: a warm solver keeps Tseitin definitions, theory
// bridges, and learned clauses across a family of near-identical queries,
// the shape of the catalog's ArrayList case splits.
//
//===----------------------------------------------------------------------===//

#include "logic/Dsl.h"
#include "smt/SmtSolver.h"

#include <benchmark/benchmark.h>

using namespace semcomm;

/// Unsatisfiable pigeonhole instances exercise clause learning.
static void BM_Pigeonhole(benchmark::State &State) {
  int Holes = static_cast<int>(State.range(0));
  int Pigeons = Holes + 1;
  for (auto _ : State) {
    SatSolver S;
    std::vector<std::vector<int>> Var(Pigeons, std::vector<int>(Holes));
    for (auto &Row : Var)
      for (int &V : Row)
        V = S.addVar();
    for (int P = 0; P < Pigeons; ++P) {
      std::vector<Lit> C;
      for (int H = 0; H < Holes; ++H)
        C.push_back(Lit(Var[P][H], true));
      S.addClause(C);
    }
    for (int H = 0; H < Holes; ++H)
      for (int P1 = 0; P1 < Pigeons; ++P1)
        for (int P2 = P1 + 1; P2 < Pigeons; ++P2)
          S.addClause({Lit(Var[P1][H], false), Lit(Var[P2][H], false)});
    benchmark::DoNotOptimize(S.solve());
  }
}
BENCHMARK(BM_Pigeonhole)->Arg(5)->Arg(6)->Arg(7);

namespace {

/// PHP(Holes+1, Holes) with every clause gated behind a fresh selector —
/// the conflict-heavy *warm* workload: repeated Unsat/Sat queries on one
/// long-lived solver, where the learned database grows without bound
/// unless reduceDb() trims it.
int buildGatedPigeonhole(SatSolver &S, int Holes) {
  int Sel = S.addVar();
  int Pigeons = Holes + 1;
  std::vector<std::vector<int>> Var(Pigeons, std::vector<int>(Holes));
  for (auto &Row : Var)
    for (int &V : Row)
      V = S.addVar();
  for (int P = 0; P < Pigeons; ++P) {
    std::vector<Lit> C{Lit(Sel, false)};
    for (int H = 0; H < Holes; ++H)
      C.push_back(Lit(Var[P][H], true));
    S.addClause(C);
  }
  for (int H = 0; H < Holes; ++H)
    for (int P1 = 0; P1 < Pigeons; ++P1)
      for (int P2 = P1 + 1; P2 < Pigeons; ++P2)
        S.addClause({Lit(Sel, false), Lit(Var[P1][H], false),
                     Lit(Var[P2][H], false)});
  return Sel;
}

void runWarmPigeonhole(benchmark::State &State, bool GcEnabled) {
  int Holes = static_cast<int>(State.range(0));
  int64_t Retained = 0;
  for (auto _ : State) {
    SatSolver S;
    S.setClauseGc(GcEnabled);
    S.setClauseGcLimit(500); // Aggressive enough to fire at this scale.
    int Sel = buildGatedPigeonhole(S, Holes);
    for (int Round = 0; Round < 6; ++Round) {
      benchmark::DoNotOptimize(S.solve({Lit(Sel, true)}));
      benchmark::DoNotOptimize(S.solve({Lit(Sel, false)}));
    }
    Retained = static_cast<int64_t>(S.numClauses());
  }
  // RetainedClauses growth is the number clause-GC is meant to bound.
  State.counters["retained_clauses"] =
      benchmark::Counter(static_cast<double>(Retained));
}

} // namespace

/// Long-lived solver without clause GC: the packrat baseline.
static void BM_WarmPigeonholeNoGc(benchmark::State &State) {
  runWarmPigeonhole(State, /*GcEnabled=*/false);
}
BENCHMARK(BM_WarmPigeonholeNoGc)->Arg(5)->Arg(6);

/// Same workload with activity-based clause-DB reduction.
static void BM_WarmPigeonholeGc(benchmark::State &State) {
  runWarmPigeonhole(State, /*GcEnabled=*/true);
}
BENCHMARK(BM_WarmPigeonholeGc)->Arg(5)->Arg(6);

namespace {

/// Builds the catalog-shaped CNF query base: N implication chains of
/// length L over a shared head variable. The driver's VC profile is
/// encoding-dominated — thousands of queries averaging under one conflict
/// each — so the interesting comparison is "rebuild the clause database
/// per query" versus "propagate on a warm solver".
struct ChainCnf {
  int Head = 0;
  std::vector<std::vector<int>> Chains;

  static ChainCnf build(SatSolver &S, int NumChains, int Len) {
    ChainCnf C;
    C.Head = S.addVar();
    C.Chains.assign(NumChains, {});
    for (int N = 0; N < NumChains; ++N) {
      int Prev = C.Head;
      for (int I = 0; I < Len; ++I) {
        int V = S.addVar();
        S.addClause({Lit(Prev, false), Lit(V, true)}); // Prev -> V.
        C.Chains[N].push_back(V);
        Prev = V;
      }
    }
    return C;
  }
};

} // namespace

/// Cold start per query: each of the NumChains queries (head on, some
/// chain's tail off — Unsat by propagation) pays variable allocation and
/// clause insertion for the whole base again.
static void BM_ChainCnfQueriesOneShot(benchmark::State &State) {
  int NumChains = static_cast<int>(State.range(0));
  const int Len = 50;
  for (auto _ : State)
    for (int Q = 0; Q < NumChains; ++Q) {
      SatSolver S;
      ChainCnf C = ChainCnf::build(S, NumChains, Len);
      benchmark::DoNotOptimize(
          S.solve({Lit(C.Head, true), Lit(C.Chains[Q].back(), false)}));
    }
}
BENCHMARK(BM_ChainCnfQueriesOneShot)->Arg(8)->Arg(16)->Arg(32);

/// Warm solver: the base is built once; every query is two assumption
/// literals and a propagation pass over retained clauses.
static void BM_ChainCnfQueriesIncremental(benchmark::State &State) {
  int NumChains = static_cast<int>(State.range(0));
  const int Len = 50;
  for (auto _ : State) {
    SatSolver S;
    ChainCnf C = ChainCnf::build(S, NumChains, Len);
    for (int Q = 0; Q < NumChains; ++Q)
      benchmark::DoNotOptimize(
          S.solve({Lit(C.Head, true), Lit(C.Chains[Q].back(), false)}));
  }
}
BENCHMARK(BM_ChainCnfQueriesIncremental)->Arg(8)->Arg(16)->Arg(32);

/// A representative set-theory VC: transitivity chains plus membership
/// congruence, as the symbolic engine emits for Set methods.
static void BM_EqualityChainVc(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    ExprFactory F;
    ExprRef S0 = F.var("S0", Sort::State);
    SmtSolver Solver(F);
    ExprRef First = F.var("x0", Sort::Obj);
    ExprRef Prev = First;
    for (int I = 1; I < N; ++I) {
      ExprRef Cur = F.var("x" + std::to_string(I), Sort::Obj);
      Solver.assertFormula(F.eq(Prev, Cur));
      Prev = Cur;
    }
    Solver.assertFormula(F.setContains(S0, First));
    Solver.assertFormula(F.lnot(F.setContains(S0, Prev)));
    benchmark::DoNotOptimize(Solver.check());
  }
}
BENCHMARK(BM_EqualityChainVc)->Arg(4)->Arg(8)->Arg(12);

namespace {

/// The catalog-shaped SMT query family: one shared equality-chain prefix
/// (the "symbolic execution" of the two orders), then one membership VC
/// per chain element (the "case splits").
struct ChainWorkload {
  ExprFactory F;
  std::vector<ExprRef> Base;
  std::vector<std::vector<ExprRef>> Queries;

  explicit ChainWorkload(int N) {
    ExprRef S0 = F.var("S0", Sort::State);
    std::vector<ExprRef> Xs;
    for (int I = 0; I < N; ++I)
      Xs.push_back(F.var("x" + std::to_string(I), Sort::Obj));
    for (int I = 1; I < N; ++I)
      Base.push_back(F.eq(Xs[I - 1], Xs[I]));
    for (int I = 1; I < N; ++I)
      Queries.push_back({F.setContains(S0, Xs[0]),
                         F.lnot(F.setContains(S0, Xs[I]))});
  }
};

} // namespace

/// Every case split pays Tseitin + bridge generation + CDCL from scratch.
static void BM_ChainSplitsOneShot(benchmark::State &State) {
  ChainWorkload W(static_cast<int>(State.range(0)));
  for (auto _ : State)
    for (const std::vector<ExprRef> &Q : W.Queries) {
      SmtSolver Solver(W.F);
      for (ExprRef B : W.Base)
        Solver.assertFormula(B);
      for (ExprRef E : Q)
        Solver.assertFormula(E);
      benchmark::DoNotOptimize(Solver.check());
    }
}
BENCHMARK(BM_ChainSplitsOneShot)->Arg(4)->Arg(8)->Arg(12);

/// The prefix is asserted once; each split is two assumption literals on
/// the warm session.
static void BM_ChainSplitsIncremental(benchmark::State &State) {
  ChainWorkload W(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    SmtSession Session(W.F);
    for (ExprRef B : W.Base)
      Session.assertBase(B);
    for (const std::vector<ExprRef> &Q : W.Queries)
      benchmark::DoNotOptimize(Session.check(Q));
  }
}
BENCHMARK(BM_ChainSplitsIncremental)->Arg(4)->Arg(8)->Arg(12);

BENCHMARK_MAIN();
