//===- bench/perf_sat_solver.cpp - smt/ substrate throughput -----------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// Throughput of the from-scratch CDCL core and the eager SMT facade the
// symbolic engine discharges its verification conditions with.
//
//===----------------------------------------------------------------------===//

#include "logic/Dsl.h"
#include "smt/SmtSolver.h"

#include <benchmark/benchmark.h>

using namespace semcomm;

/// Unsatisfiable pigeonhole instances exercise clause learning.
static void BM_Pigeonhole(benchmark::State &State) {
  int Holes = static_cast<int>(State.range(0));
  int Pigeons = Holes + 1;
  for (auto _ : State) {
    SatSolver S;
    std::vector<std::vector<int>> Var(Pigeons, std::vector<int>(Holes));
    for (auto &Row : Var)
      for (int &V : Row)
        V = S.addVar();
    for (int P = 0; P < Pigeons; ++P) {
      std::vector<Lit> C;
      for (int H = 0; H < Holes; ++H)
        C.push_back(Lit(Var[P][H], true));
      S.addClause(C);
    }
    for (int H = 0; H < Holes; ++H)
      for (int P1 = 0; P1 < Pigeons; ++P1)
        for (int P2 = P1 + 1; P2 < Pigeons; ++P2)
          S.addClause({Lit(Var[P1][H], false), Lit(Var[P2][H], false)});
    benchmark::DoNotOptimize(S.solve());
  }
}
BENCHMARK(BM_Pigeonhole)->Arg(5)->Arg(6)->Arg(7);

/// A representative set-theory VC: transitivity chains plus membership
/// congruence, as the symbolic engine emits for Set methods.
static void BM_EqualityChainVc(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    ExprFactory F;
    ExprRef S0 = F.var("S0", Sort::State);
    SmtSolver Solver(F);
    ExprRef First = F.var("x0", Sort::Obj);
    ExprRef Prev = First;
    for (int I = 1; I < N; ++I) {
      ExprRef Cur = F.var("x" + std::to_string(I), Sort::Obj);
      Solver.assertFormula(F.eq(Prev, Cur));
      Prev = Cur;
    }
    Solver.assertFormula(F.setContains(S0, First));
    Solver.assertFormula(F.lnot(F.setContains(S0, Prev)));
    benchmark::DoNotOptimize(Solver.check());
  }
}
BENCHMARK(BM_EqualityChainVc)->Arg(4)->Arg(8)->Arg(12);

BENCHMARK_MAIN();
