//===- bench/fig_2_2_testing_methods.cpp - Figure 2-2 ------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// Prints the generated between-soundness and between-completeness testing
// methods for contains(v1) / add(v2) on HashSet (Fig. 2-2) and verifies
// both with both engines.
//
//===----------------------------------------------------------------------===//

#include "commute/ExhaustiveEngine.h"
#include "commute/SymbolicEngine.h"
#include "jahobgen/JahobPrinter.h"

#include <cstdio>

using namespace semcomm;

int main() {
  ExprFactory F;
  Catalog C(F);
  ExhaustiveEngine Ex;
  SymbolicEngine Sym(F);

  std::printf("Figure 2-2: HashSet Commutativity Testing Methods for the "
              "Between\nCommutativity Condition for contains(v1) and "
              "add(v2)\n\n");
  int Failures = 0;
  for (const TestingMethod &M : generateTestingMethods(C, setFamily())) {
    if (M.Entry->op1().Name != "contains" || M.Entry->op2().Name != "add_" ||
        M.Kind != ConditionKind::Between)
      continue;
    std::printf("%s\n", renderTestingMethod(M, "HashSet", F).c_str());
    bool ExOk = Ex.verify(M).Verified;
    bool SymOk = Sym.verify(M).Verified;
    std::printf("// verified: exhaustive=%s symbolic=%s\n\n",
                ExOk ? "yes" : "NO", SymOk ? "yes" : "NO");
    Failures += !(ExOk && SymOk);
  }
  return Failures != 0;
}
