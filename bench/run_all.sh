#!/usr/bin/env sh
# Builds the bench binaries and runs every one, collecting stdout into
# bench-results/<name>.txt. Google-Benchmark microbenches emit JSON next to
# the text so perf runs can be diffed across commits.
#
# usage: bench/run_all.sh [build-dir] [results-dir]
set -eu

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR=${1:-"$REPO_ROOT/build"}
RESULTS_DIR=${2:-"$REPO_ROOT/bench-results"}

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DSEMCOMM_BUILD_BENCHES=ON
cmake --build "$BUILD_DIR" -j

mkdir -p "$RESULTS_DIR"

PLAIN_BENCHES="
fig_2_1_hashset_spec
fig_2_2_testing_methods
fig_2_3_2_4_inverse_methods
fig_3_templates
fig_4_1_abstract_vs_concrete
perf_engine_scaling
perf_lattice_ablation
perf_speculation
table_5_01_accumulator
table_5_02_set_before
table_5_03_set_between
table_5_04_map_before
table_5_05_map_after
table_5_06_arraylist_between
table_5_07_arraylist_after
table_5_08_verification_times
table_5_09_proof_commands
table_5_10_inverses
tr_full_catalog
"

GOOGLE_BENCHES="
perf_dynamic_check
perf_inverse_vs_snapshot
perf_sat_solver
"

failures=0

for bench in $PLAIN_BENCHES; do
  bin="$BUILD_DIR/$bench"
  if [ ! -x "$bin" ]; then
    echo "MISSING $bench (not built?)"
    failures=$((failures + 1))
    continue
  fi
  echo "== $bench"
  if "$bin" > "$RESULTS_DIR/$bench.txt" 2>&1; then :; else
    echo "FAILED  $bench (see $RESULTS_DIR/$bench.txt)"
    failures=$((failures + 1))
  fi
done

for bench in $GOOGLE_BENCHES; do
  bin="$BUILD_DIR/$bench"
  if [ ! -x "$bin" ]; then
    echo "SKIP    $bench (Google Benchmark not available)"
    continue
  fi
  echo "== $bench"
  if "$bin" --benchmark_out="$RESULTS_DIR/$bench.json" \
            --benchmark_out_format=json \
            > "$RESULTS_DIR/$bench.txt" 2>&1; then :; else
    echo "FAILED  $bench (see $RESULTS_DIR/$bench.txt)"
    failures=$((failures + 1))
  fi
done

echo "bench outputs collected in $RESULTS_DIR"
exit "$([ "$failures" -eq 0 ] && echo 0 || echo 1)"
