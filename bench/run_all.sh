#!/usr/bin/env sh
# Builds the bench binaries and runs every one, collecting stdout into
# bench-results/<name>.txt. Google-Benchmark microbenches emit JSON
# (--benchmark_format/--benchmark_out) next to the text, and the whole run
# is aggregated into one machine-readable baseline, BENCH_semcommute.json,
# at the repo root: per-bench wall time + status, every BENCH_JSON line the
# plain benches print (e.g. perf_engine_scaling's session-mode comparison),
# the Google-Benchmark entries, and a driver-level solver-stat snapshot
# (per-family conflicts, peak retained clauses, clause-GC reclaim counts
# from a full symbolic `semcommute-verify` run) so conflict-count
# regressions are caught like wall-time regressions. Commit the baseline to
# track the perf trajectory across PRs.
#
# usage: bench/run_all.sh [build-dir] [results-dir] [baseline-json]
set -eu

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR=${1:-"$REPO_ROOT/build"}
RESULTS_DIR=${2:-"$REPO_ROOT/bench-results"}
BASELINE_JSON=${3:-"$REPO_ROOT/BENCH_semcommute.json"}

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DSEMCOMM_BUILD_BENCHES=ON
cmake --build "$BUILD_DIR" -j

mkdir -p "$RESULTS_DIR"
TIMINGS_TSV="$RESULTS_DIR/timings.tsv"
: > "$TIMINGS_TSV"

PLAIN_BENCHES="
fig_2_1_hashset_spec
fig_2_2_testing_methods
fig_2_3_2_4_inverse_methods
fig_3_templates
fig_4_1_abstract_vs_concrete
perf_dynamic_check
perf_engine_scaling
perf_lattice_ablation
perf_speculation
table_5_01_accumulator
table_5_02_set_before
table_5_03_set_between
table_5_04_map_before
table_5_05_map_after
table_5_06_arraylist_between
table_5_07_arraylist_after
table_5_08_verification_times
table_5_09_proof_commands
table_5_10_inverses
tr_full_catalog
"

GOOGLE_BENCHES="
perf_inverse_vs_snapshot
perf_sat_solver
"

failures=0

record() { # name seconds status
  printf '%s\t%s\t%s\n' "$1" "$2" "$3" >> "$TIMINGS_TSV"
}

# Per-bench extra arguments. perf_speculation's full grid costs ~3 min of
# wall time; the default aggregation run uses a calibrated 250k-op budget
# (~17 s) that still exercises every grid cell, and SEMCOMM_BENCH_FULL=1
# restores the full-resolution grid. perf_engine_scaling gets the same
# treatment: its full sweep (exhaustive scope 5, symbolic bound 4, six GC
# budget points) costs ~24 s; --quick trims it to ~5 s while emitting
# every BENCH_JSON metric name.
bench_args() { # name
  case "$1" in
    perf_engine_scaling)
      [ "${SEMCOMM_BENCH_FULL:-0}" = "1" ] || echo "--quick" ;;
    perf_speculation)
      [ "${SEMCOMM_BENCH_FULL:-0}" = "1" ] || echo "--ops 250000" ;;
  esac
}

now() { # fractional seconds; %N is GNU-only, so keep this POSIX-portable
  python3 -c 'import time; print(f"{time.time():.3f}")'
}

for bench in $PLAIN_BENCHES; do
  bin="$BUILD_DIR/$bench"
  if [ ! -x "$bin" ]; then
    echo "MISSING $bench (not built?)"
    record "$bench" 0 missing
    failures=$((failures + 1))
    continue
  fi
  echo "== $bench"
  start=$(now)
  # shellcheck disable=SC2046 # bench_args emits space-separated flags
  if "$bin" $(bench_args "$bench") > "$RESULTS_DIR/$bench.txt" 2>&1
  then status=ok; else
    status=failed
    echo "FAILED  $bench (see $RESULTS_DIR/$bench.txt)"
    failures=$((failures + 1))
  fi
  end=$(now)
  record "$bench" "$(awk "BEGIN{printf \"%.3f\", $end - $start}")" "$status"
done

for bench in $GOOGLE_BENCHES; do
  bin="$BUILD_DIR/$bench"
  if [ ! -x "$bin" ]; then
    echo "SKIP    $bench (Google Benchmark not available)"
    record "$bench" 0 skipped
    continue
  fi
  echo "== $bench"
  start=$(now)
  if "$bin" --benchmark_out="$RESULTS_DIR/$bench.json" \
            --benchmark_out_format=json \
            > "$RESULTS_DIR/$bench.txt" 2>&1
  then status=ok; else
    status=failed
    echo "FAILED  $bench (see $RESULTS_DIR/$bench.txt)"
    failures=$((failures + 1))
  fi
  end=$(now)
  record "$bench" "$(awk "BEGIN{printf \"%.3f\", $end - $start}")" "$status"
done

# Driver-level solver-stat snapshot: a full symbolic run of the catalog,
# whose per-family conflict / retained-clause / clause-GC numbers join the
# committed baseline alongside the wall-time metrics.
DRIVER_BIN="$BUILD_DIR/semcommute-verify"
DRIVER_JSON="$RESULTS_DIR/driver_solver_stats.json"
if [ -x "$DRIVER_BIN" ]; then
  echo "== semcommute-verify (symbolic solver-stat snapshot)"
  start=$(now)
  if "$DRIVER_BIN" --families all --engine symbolic --quiet \
       --json "$DRIVER_JSON" > "$RESULTS_DIR/driver_solver_stats.txt" 2>&1
  then status=ok; else
    status=failed
    echo "FAILED  semcommute-verify (see $RESULTS_DIR/driver_solver_stats.txt)"
    failures=$((failures + 1))
  fi
  end=$(now)
  record "driver_solver_stats" \
    "$(awk "BEGIN{printf \"%.3f\", $end - $start}")" "$status"
else
  echo "MISSING semcommute-verify (not built?)"
  record "driver_solver_stats" 0 missing
  failures=$((failures + 1))
fi

# Family-tier snapshot: the same catalog under --solve-mode shared-family,
# whose per-family eviction / peak-retention / prefix-reuse counters join
# the baseline so family-session regressions (unbounded retention, lost
# prefix sharing) are caught like wall-time ones.
FAMILY_JSON="$RESULTS_DIR/driver_family_stats.json"
if [ -x "$DRIVER_BIN" ]; then
  echo "== semcommute-verify (shared-family session snapshot)"
  start=$(now)
  if "$DRIVER_BIN" --families all --engine symbolic \
       --solve-mode shared-family --quiet \
       --json "$FAMILY_JSON" > "$RESULTS_DIR/driver_family_stats.txt" 2>&1
  then status=ok; else
    status=failed
    echo "FAILED  semcommute-verify shared-family (see $RESULTS_DIR/driver_family_stats.txt)"
    failures=$((failures + 1))
  fi
  end=$(now)
  record "driver_family_stats" \
    "$(awk "BEGIN{printf \"%.3f\", $end - $start}")" "$status"
else
  record "driver_family_stats" 0 missing
fi

# Catalog-tier snapshot: one warm solver for the whole catalog
# (--solve-mode shared-catalog at one thread), whose subtree-retirement /
# variable-recycling / peak-liveness counters join the baseline so
# catalog-session regressions (unbounded variable growth, lost prefix
# amortization) are caught like wall-time ones.
CATALOG_JSON="$RESULTS_DIR/driver_catalog_stats.json"
if [ -x "$DRIVER_BIN" ]; then
  echo "== semcommute-verify (shared-catalog session snapshot)"
  start=$(now)
  if "$DRIVER_BIN" --families all --engine symbolic \
       --solve-mode shared-catalog --threads 1 --quiet \
       --json "$CATALOG_JSON" > "$RESULTS_DIR/driver_catalog_stats.txt" 2>&1
  then status=ok; else
    status=failed
    echo "FAILED  semcommute-verify shared-catalog (see $RESULTS_DIR/driver_catalog_stats.txt)"
    failures=$((failures + 1))
  fi
  end=$(now)
  record "driver_catalog_stats" \
    "$(awk "BEGIN{printf \"%.3f\", $end - $start}")" "$status"
else
  record "driver_catalog_stats" 0 missing
fi

# Certification snapshot: the same one-thread shared-catalog run with
# --certify, so the baseline records the cost of proof logging + the
# in-process RUP check relative to the uncertified run directly above
# (certify_overhead_x) alongside the certificate counts.
CERTIFY_JSON="$RESULTS_DIR/driver_certify_stats.json"
if [ -x "$DRIVER_BIN" ]; then
  echo "== semcommute-verify (certified shared-catalog snapshot)"
  start=$(now)
  if "$DRIVER_BIN" --families all --engine symbolic \
       --solve-mode shared-catalog --threads 1 --certify --quiet \
       --json "$CERTIFY_JSON" > "$RESULTS_DIR/driver_certify_stats.txt" 2>&1
  then status=ok; else
    status=failed
    echo "FAILED  semcommute-verify certify (see $RESULTS_DIR/driver_certify_stats.txt)"
    failures=$((failures + 1))
  fi
  end=$(now)
  record "driver_certify_stats" \
    "$(awk "BEGIN{printf \"%.3f\", $end - $start}")" "$status"
else
  record "driver_certify_stats" 0 missing
fi

# Service-loop snapshots: three 3-pass full-catalog semcommute-serve runs
# (prefix-batched, FIFO, and batched-without-compaction) whose request
# rates and per-pass live peaks join the baseline as service_stats, so
# serving regressions (a lost batching speedup, a compaction that stops
# bounding the warm session) are caught like wall-time ones.
SERVE_BIN="$BUILD_DIR/semcommute-serve"
if [ -x "$SERVE_BIN" ]; then
  for cfg in "serve_batched:" "serve_fifo:--no-batch" \
             "serve_nocompact:--no-compact"; do
    name=${cfg%%:*}
    extra=${cfg#*:}
    echo "== semcommute-serve ($name)"
    start=$(now)
    # shellcheck disable=SC2086 # $extra is zero or one flag
    if "$SERVE_BIN" --families all --passes 3 $extra \
         --json "$RESULTS_DIR/$name.json" --quiet \
         > "$RESULTS_DIR/$name.txt" 2>&1
    then status=ok; else
      status=failed
      echo "FAILED  semcommute-serve $name (see $RESULTS_DIR/$name.txt)"
      failures=$((failures + 1))
    fi
    end=$(now)
    record "$name" "$(awk "BEGIN{printf \"%.3f\", $end - $start}")" "$status"
  done
else
  echo "MISSING semcommute-serve (not built?)"
  for name in serve_batched serve_fifo serve_nocompact; do
    record "$name" 0 missing
  done
  failures=$((failures + 1))
fi

# Sharded-service snapshots: the same 3-pass full-catalog workload through
# the sharded front-end (4 shards, prefix image shared, clause exchange
# on) at 1/2/4/8 drain threads. Their aggregate request rates and warm-up
# decomposition (prefix import vs encode-from-scratch) join the baseline
# as sharded_service_stats; serve_batched above is the single-session
# baseline the scaling ratios are taken against.
if [ -x "$SERVE_BIN" ]; then
  for threads in 1 2 4 8; do
    name="serve_sharded_t$threads"
    echo "== semcommute-serve ($name)"
    start=$(now)
    if "$SERVE_BIN" --families all --passes 3 --shards 4 \
         --threads "$threads" \
         --json "$RESULTS_DIR/$name.json" --quiet \
         > "$RESULTS_DIR/$name.txt" 2>&1
    then status=ok; else
      status=failed
      echo "FAILED  semcommute-serve $name (see $RESULTS_DIR/$name.txt)"
      failures=$((failures + 1))
    fi
    end=$(now)
    record "$name" "$(awk "BEGIN{printf \"%.3f\", $end - $start}")" "$status"
  done
else
  for threads in 1 2 4 8; do
    record "serve_sharded_t$threads" 0 missing
  done
fi

python3 - "$RESULTS_DIR" "$TIMINGS_TSV" "$BASELINE_JSON" <<'EOF'
import json, os, sys

results_dir, timings_tsv, out_path = sys.argv[1:4]

benches = []
with open(timings_tsv) as f:
    for line in f:
        name, seconds, status = line.rstrip("\n").split("\t")
        benches.append({"name": name, "seconds": float(seconds),
                        "status": status})

# Only the benches this run actually executed (recorded in timings.tsv)
# are scanned, so stale outputs of renamed or removed benches never leak
# into the committed baseline.
ran = [b["name"] for b in benches if b["status"] == "ok"]

# BENCH_JSON lines printed by the plain benches (machine-readable metrics
# such as perf_engine_scaling's one-shot-vs-incremental comparison).
inline_metrics = []
for name in ran:
    path = os.path.join(results_dir, name + ".txt")
    if not os.path.exists(path):
        continue
    with open(path) as f:
        for line in f:
            if line.startswith("BENCH_JSON "):
                try:
                    inline_metrics.append(json.loads(line[len("BENCH_JSON "):]))
                except json.JSONDecodeError:
                    pass

google = {}
for name in ran:
    path = os.path.join(results_dir, name + ".json")
    if not os.path.exists(path):
        continue
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError:
            continue
    rows = [{k: b.get(k) for k in
             ("name", "real_time", "cpu_time", "time_unit", "iterations")}
            for b in doc.get("benchmarks", [])]
    if rows:
        google[name] = rows

# Driver-level solver statistics: per-family conflict / retained-clause /
# clause-GC counters plus the per-pair shared-session aggregates, so the
# committed baseline catches solver-behavior regressions (conflict blowups,
# unbounded clause retention), not just wall-time ones.
driver_stats = None
driver_path = os.path.join(results_dir, "driver_solver_stats.json")
if os.path.exists(driver_path):
    try:
        with open(driver_path) as f:
            report = json.load(f)
    except json.JSONDecodeError:
        report = None
    if report:
        fams = [{k: fam.get(k) for k in
                 ("family", "jobs", "vcs", "sat_conflicts",
                  "retained_clauses", "db_reductions", "reclaimed_clauses")}
                for fam in report.get("families", [])]
        pairs = report.get("pair_stats", [])
        driver_stats = {
            "engine": "symbolic",
            "families": fams,
            "pair_sessions": {
                "pairs": len(pairs),
                "sessions": sum(p.get("sessions", 0) for p in pairs),
                "checks": sum(p.get("checks", 0) for p in pairs),
                "sat_conflicts": sum(p.get("sat_conflicts", 0)
                                     for p in pairs),
                "db_reductions": sum(p.get("db_reductions", 0)
                                     for p in pairs),
                "reclaimed_clauses": sum(p.get("reclaimed_clauses", 0)
                                         for p in pairs),
                "peak_retained_clauses": max(
                    (p.get("retained_clauses", 0) for p in pairs),
                    default=0),
            },
        }

# Family-session statistics from the shared-family snapshot run.
family_stats = None
family_path = os.path.join(results_dir, "driver_family_stats.json")
if os.path.exists(family_path):
    try:
        with open(family_path) as f:
            report = json.load(f)
    except json.JSONDecodeError:
        report = None
    if report:
        family_stats = {
            "engine": "symbolic",
            "mode": "shared-family",
            "families": report.get("family_stats", []),
        }

# Catalog-session statistics from the shared-catalog snapshot run: the
# single one-thread session's prefix/retirement/recycling counters plus
# its per-family-tier slices.
catalog_stats = None
catalog_path = os.path.join(results_dir, "driver_catalog_stats.json")
if os.path.exists(catalog_path):
    try:
        with open(catalog_path) as f:
            report = json.load(f)
    except json.JSONDecodeError:
        report = None
    if report:
        catalog_stats = {
            "engine": "symbolic",
            "mode": "shared-catalog",
            "sessions": report.get("catalog_stats", []),
            "families": report.get("family_stats", []),
        }

# Certification statistics from the --certify snapshot: certificate and
# checker-database counts, whether every proof checked, and the wall-time
# ratio against the uncertified shared-catalog run (certify_overhead_x).
certify_stats = None
certify_path = os.path.join(results_dir, "driver_certify_stats.json")
if os.path.exists(certify_path):
    try:
        with open(certify_path) as f:
            report = json.load(f)
    except json.JSONDecodeError:
        report = None
    if report and report.get("certify"):
        sym = [r for r in report.get("results", [])
               if r.get("engine") == "symbolic"]
        plain_wall = None
        if catalog_stats is not None:
            try:
                with open(catalog_path) as f:
                    plain_wall = json.load(f).get("wall_ms")
            except (json.JSONDecodeError, OSError):
                pass
        wall = report.get("wall_ms")
        certify_stats = {
            "engine": "symbolic",
            "mode": "shared-catalog",
            "jobs": len(sym),
            "jobs_proof_checked": sum(1 for r in sym
                                      if r.get("proof_checked")),
            "proof_queries": sum(r.get("proof_queries", 0) for r in sym),
            "peak_proof_clauses": max((r.get("proof_clauses", 0)
                                       for r in sym), default=0),
            "wall_ms": wall,
            "certify_overhead_x": (round(wall / plain_wall, 3)
                                   if wall and plain_wall else None),
        }

# Compiled commutativity-index statistics from perf_dynamic_check's
# index_summary line: the interpreted-vs-indexed-vs-constant-bitmap
# speedups and the compiled image shape, so index regressions (lost
# constant coverage, a slowed VM) are caught like wall-time ones.
index_stats = None
for m in inline_metrics:
    if (m.get("bench") == "perf_dynamic_check"
            and m.get("metric") == "index_summary"):
        index_stats = {k: v for k, v in m.items()
                       if k not in ("bench", "metric")}

# Speculative-executor statistics from perf_speculation: the summary line
# (gatekeeper indexed-vs-interpreted ratios from the scheduler-interleaved
# replay cells, thread-scaling factors, storm undone-op counts) plus the
# full grid rows as curves, so executor regressions (a slowed gatekeeper,
# an abort storm that stops converging) are caught like wall-time ones.
speculation_stats = None
spec_rows = [m for m in inline_metrics
             if (m.get("bench") == "perf_speculation"
                 and m.get("metric") == "speculation_grid")]
for m in inline_metrics:
    if (m.get("bench") == "perf_speculation"
            and m.get("metric") == "speculation_summary"):
        speculation_stats = {k: v for k, v in m.items()
                             if k not in ("bench", "metric")}
if speculation_stats is not None and spec_rows:
    speculation_stats["grid"] = [
        {k: v for k, v in row.items() if k not in ("bench", "metric")}
        for row in spec_rows]

# Verification-service statistics from the three semcommute-serve
# snapshot runs: request rates with and without prefix batching (and the
# measured speedup), live peaks with and without bridge compaction, the
# compaction/release counters, and how many passes the batched run needed
# before its live peaks plateaued (successive passes within 1.05x).
def load_serve(name):
    path = os.path.join(results_dir, name + ".json")
    if not os.path.exists(path):
        return None
    try:
        with open(path) as f:
            return json.load(f)
    except json.JSONDecodeError:
        return None

service_stats = None
serve_batched = load_serve("serve_batched")
serve_fifo = load_serve("serve_fifo")
serve_nocompact = load_serve("serve_nocompact")
if serve_batched:
    def live_peaks(doc):
        sess = doc.get("session", {})
        return {k: sess.get("peak_live_" + k)
                for k in ("vars", "clauses", "bridges")}
    passes = serve_batched.get("pass_stats", [])
    passes_to_plateau = None
    for i in range(1, len(passes)):
        prev, cur = passes[i - 1], passes[i]
        if all(cur.get("peak_live_" + k, 0)
               <= 1.05 * max(prev.get("peak_live_" + k, 0), 1)
               for k in ("vars", "clauses", "bridges")):
            passes_to_plateau = i + 1
            break
    sess = serve_batched.get("session", {})
    rps = serve_batched.get("requests_per_sec")
    fifo_rps = serve_fifo.get("requests_per_sec") if serve_fifo else None
    service_stats = {
        "passes": len(passes),
        "requests": sum(p.get("requests", 0) for p in passes),
        "req_per_sec_batched": rps,
        "req_per_sec_fifo": fifo_rps,
        "batching_speedup_x": (round(rps / fifo_rps, 3)
                               if rps and fifo_rps else None),
        "pair_groups": serve_batched.get("pair_groups"),
        "batched_reuses": serve_batched.get("batched_reuses"),
        "bridge_compactions": sess.get("bridge_compactions"),
        "released_atom_vars": sess.get("released_atom_vars"),
        "released_selectors": sess.get("released_selectors"),
        "peaks_compacting": live_peaks(serve_batched),
        "peaks_no_compaction": (live_peaks(serve_nocompact)
                                if serve_nocompact else None),
        "passes_to_plateau": passes_to_plateau,
    }

# Sharded-service statistics from the serve_sharded_t{1,2,4,8} runs: the
# warm-up decomposition (what a shard costs to encode the catalog prefix
# from scratch vs to import shard 0's image), the aggregate request rate
# at each thread count with its ratio over the single-session serve_batched
# baseline, and the clause-exchange counters. The host CPU count is
# recorded because the thread-scaling ratios are meaningless without it
# (a 1-CPU container pins them at ~1x).
sharded_service_stats = None
sharded_runs = {}
for threads in (1, 2, 4, 8):
    doc_t = load_serve(f"serve_sharded_t{threads}")
    if doc_t and doc_t.get("sharded_service"):
        sharded_runs[threads] = doc_t
if sharded_runs:
    base_rps = (serve_batched or {}).get("requests_per_sec")
    first = next(iter(sharded_runs.values()))["sharded_service"]
    per_thread = []
    for threads, doc_t in sorted(sharded_runs.items()):
        rps = doc_t.get("requests_per_sec")
        per_thread.append({
            "threads": threads,
            "req_per_sec": rps,
            "speedup_vs_single_x": (round(rps / base_rps, 3)
                                    if rps and base_rps else None),
            "exchange": doc_t["sharded_service"].get("exchange"),
        })
    sharded_service_stats = {
        "shards": first.get("shards"),
        "route": first.get("route"),
        "cpus": first.get("cpus"),
        "share_prefix": first.get("share_prefix"),
        "share_clauses": first.get("share_clauses"),
        "plan_millis": first.get("plan_millis"),
        "warmup_scratch_millis": first.get("warmup_scratch_millis"),
        "warmup_import_millis_avg": first.get("warmup_import_millis_avg"),
        "warmup_speedup_x": first.get("warmup_speedup_x"),
        "req_per_sec_single_session": base_rps,
        "per_thread": per_thread,
    }

doc = {
    "schema": 9,
    "tool": "bench/run_all.sh",
    "benches": benches,
    "inline_metrics": inline_metrics,
    "google_benchmarks": google,
    "driver_solver_stats": driver_stats,
    "driver_family_stats": family_stats,
    "driver_catalog_stats": catalog_stats,
    "driver_certify_stats": certify_stats,
    "index_stats": index_stats,
    "speculation_stats": speculation_stats,
    "service_stats": service_stats,
    "sharded_service_stats": sharded_service_stats,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"baseline written to {out_path}")
EOF

echo "bench outputs collected in $RESULTS_DIR"
exit "$([ "$failures" -eq 0 ] && echo 0 || echo 1)"
