//===- bench/table_5_08_verification_times.cpp - Table 5.8 -------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// Regenerates Table 5.8: per-structure commutativity testing method
// verification times. The paper's shape to reproduce: every structure
// verifies in seconds-to-minutes while ArrayList dominates by an order of
// magnitude (12m18s vs <4m for everything else on the authors' testbed;
// our substrate is a different prover stack, so absolute numbers differ
// but the ordering and the ArrayList blow-up carry over).
//
// Both engines run over every generated method, at the default scope and
// — for the timing shape — a deep scope.
//
//===----------------------------------------------------------------------===//

#include "commute/SymbolicEngine.h"
#include "BenchCommon.h"
#include "support/Timing.h"

using namespace semcomm;

namespace {

struct StructureRow {
  const char *Name;
  const Family *Fam;
};

double runExhaustive(const Catalog &C, const Family &Fam, const Scope &Sc,
                     int &Failures) {
  ExhaustiveEngine Engine(Sc);
  Stopwatch W;
  for (const TestingMethod &M : generateTestingMethods(C, Fam))
    if (!Engine.verify(M).Verified)
      ++Failures;
  return W.seconds();
}

double runSymbolic(ExprFactory &F, const Catalog &C, const Family &Fam,
                   int SeqBound, int &Failures, uint64_t &Vcs) {
  SymbolicEngine Engine(F, SeqBound);
  Stopwatch W;
  for (const TestingMethod &M : generateTestingMethods(C, Fam)) {
    SymbolicResult R = Engine.verify(M);
    Vcs += R.NumVcs;
    if (!R.Verified)
      ++Failures;
  }
  return W.seconds();
}

} // namespace

int main() {
  ExprFactory F;
  Catalog C(F);

  std::printf("Table 5.8: Commutativity Testing Method Verification "
              "Times\n");
  std::printf("(paper, Jahob+Z3/CVC3: Accumulator 0.8s, AssociationList "
              "1m35s, HashSet 44s,\n HashTable 3m20s, ListSet 40s, "
              "ArrayList 12m18s)\n\n");

  const StructureRow Rows[] = {
      {"Accumulator", &accumulatorFamily()},
      {"AssociationList", &mapFamily()},
      {"HashSet", &setFamily()},
      {"HashTable", &mapFamily()},
      {"ListSet", &setFamily()},
      {"ArrayList", &arrayListFamily()},
  };

  Scope Deep;
  Deep.SetUniverse = 5;
  Deep.MapKeys = 4;
  Deep.MaxSeqLen = 5;
  Deep.CounterRange = 3;

  std::printf("%-16s %10s %14s %14s %8s\n", "Data Structure", "methods",
              "exhaustive(s)", "symbolic(s)", "status");
  int TotalFailures = 0;
  double TotalEx = 0, TotalSym = 0;
  for (const StructureRow &Row : Rows) {
    int Failures = 0;
    uint64_t Vcs = 0;
    unsigned Methods = generateTestingMethods(C, *Row.Fam).size();
    double Ex = runExhaustive(C, *Row.Fam, Deep, Failures);
    double Sym = runSymbolic(F, C, *Row.Fam, /*SeqBound=*/4, Failures, Vcs);
    TotalEx += Ex;
    TotalSym += Sym;
    TotalFailures += Failures;
    std::printf("%-16s %10u %14.2f %14.2f %8s\n", Row.Name, Methods, Ex,
                Sym, Failures == 0 ? "all ok" : "FAIL");
  }
  std::printf("%-16s %10s %14.2f %14.2f\n", "total", "1530", TotalEx,
              TotalSym);
  std::printf("\nShape check vs the paper: ArrayList's verification time "
              "dominates every\nother structure, driven by the integer "
              "indexing and the shifting operations\n(§5.2).\n");
  return TotalFailures != 0;
}
