//===- tests/InverseTest.cpp - Inverse operation tests ----------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "impl/ConcreteStructure.h"
#include "inverse/InverseVerifier.h"
#include "inverse/SymbolicInverseEngine.h"

#include <gtest/gtest.h>

#include <random>

using namespace semcomm;

TEST(InverseSpecsTest, ExactlyTheEightRowsOfTable510) {
  std::vector<InverseSpec> Specs = buildInverseSpecs();
  ASSERT_EQ(Specs.size(), 8u);
  EXPECT_EQ(Specs[0].ForwardText, "s1.increase(v)");
  EXPECT_EQ(Specs[0].InverseText, "s2.increase(-v)");
  EXPECT_EQ(Specs[3].ForwardText, "r = s1.put(k, v)");
  EXPECT_EQ(Specs[3].InverseText,
            "if r ~= null then s2.put(k, r) else s2.remove(k)");
  EXPECT_EQ(Specs[6].InverseText, "s2.add_at(i, r)");
}

// §5.3: "All of the eight inverse testing methods verified as generated."
class InverseSweep : public ::testing::TestWithParam<int> {};

TEST_P(InverseSweep, Property3Holds) {
  InverseSpec Spec = buildInverseSpecs()[GetParam()];
  InverseVerifyResult R = verifyInverse(Spec);
  EXPECT_TRUE(R.Verified) << Spec.ForwardText << ": " << R.FailureNote;
  EXPECT_GT(R.ScenariosChecked, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllInverses, InverseSweep, ::testing::Range(0, 8));

// The symbolic inverse engine (op ; inverse ≡ identity VCs over an
// uninterpreted initial state) must agree with the exhaustive sweep on the
// full 8-entry catalog — the cross-check `semcommute-verify --engine both`
// runs per job.
class SymbolicInverseSweep : public ::testing::TestWithParam<int> {};

TEST_P(SymbolicInverseSweep, AgreesWithExhaustiveVerifier) {
  InverseSpec Spec = buildInverseSpecs()[GetParam()];
  ExprFactory F;
  SymbolicResult Sym = verifyInverseSymbolic(F, Spec);
  InverseVerifyResult Ex = verifyInverse(Spec);
  EXPECT_TRUE(Ex.Verified) << Spec.ForwardText;
  EXPECT_TRUE(Sym.Verified) << Spec.ForwardText << ": " << Sym.Countermodel;
  EXPECT_EQ(Sym.Verified, Ex.Verified);
  EXPECT_GT(Sym.NumVcs, 0u);

  // Every solve mode reaches the same verdict.
  for (SolveMode Mode :
       {SolveMode::OneShot, SolveMode::PerMethod, SolveMode::SharedPair}) {
    SymbolicResult R = verifyInverseSymbolic(F, Spec, /*SeqLenBound=*/3,
                                             /*ConflictBudget=*/200000, Mode);
    EXPECT_TRUE(R.Verified)
        << Spec.ForwardText << " under " << solveModeName(Mode);
    EXPECT_EQ(R.NumVcs, Sym.NumVcs);
  }
}

INSTANTIATE_TEST_SUITE_P(AllInverses, SymbolicInverseSweep,
                         ::testing::Range(0, 8));

TEST(InverseMutationTest, UnconditionalUndoIsRejected) {
  // Fig. 2-3's point: the inverse of add must consult the return value.
  // "always remove(v)" wrongly removes pre-existing elements.
  InverseSpec Bad = buildInverseSpecs()[1]; // Set.add
  Bad.Apply = [](AbstractState &St, const ArgList &Args, const Value &) {
    St.setErase(Args[0]);
  };
  InverseVerifyResult R = verifyInverse(Bad);
  EXPECT_FALSE(R.Verified);
  EXPECT_NE(R.FailureNote.find("not restored"), std::string::npos);
}

TEST(InverseMutationTest, WrongMapRestoreIsRejected) {
  // Fig. 2-4's point: put's inverse must reinstate the previous value, not
  // merely remove the key.
  InverseSpec Bad = buildInverseSpecs()[3]; // Map.put
  Bad.Apply = [](AbstractState &St, const ArgList &Args, const Value &) {
    St.mapErase(Args[0]);
  };
  InverseVerifyResult R = verifyInverse(Bad);
  EXPECT_FALSE(R.Verified);
}

// Property sweep: inverses restore the *abstraction* of the concrete linked
// structures from random reachable states, even though the concrete state
// may legitimately differ (§1.3).
class ConcreteInverseTest : public ::testing::TestWithParam<int> {};

TEST_P(ConcreteInverseTest, RandomStatesRoundTrip) {
  std::mt19937 Rng(GetParam());
  for (const StructureFactory &Factory : allStructureFactories()) {
    const Family &Fam = *Factory.Fam;
    for (const InverseSpec &Spec : buildInverseSpecs()) {
      if (Spec.Fam != &Fam)
        continue;
      const Operation &Op = Fam.op(Spec.OpName);
      for (int Trial = 0; Trial < 50; ++Trial) {
        // Random reachable state.
        std::unique_ptr<ConcreteStructure> S = Factory.Make();
        AbstractState Shadow = Fam.emptyState();
        Scope Bounds;
        for (int Step = 0; Step < 12; ++Step) {
          const Operation &R = Fam.Ops[Rng() % Fam.Ops.size()];
          auto Cands = enumerateArgs(Fam, R, Shadow, Bounds);
          if (Cands.empty())
            continue;
          const ArgList &A = Cands[Rng() % Cands.size()];
          if (!R.Pre(Shadow, A))
            continue;
          S->invoke(R.CallName, A);
          R.Apply(Shadow, A);
        }

        // Forward operation + inverse on the abstract shadow.
        auto Cands = enumerateArgs(Fam, Op, Shadow, Bounds);
        const ArgList &A = Cands[Rng() % Cands.size()];
        if (!Op.Pre(Shadow, A))
          continue;
        AbstractState Before = S->abstraction();
        Value ConcreteRet = S->invoke(Op.CallName, A);

        // Apply the inverse program against the concrete structure via its
        // abstract recipe (same Table 5.10 rows).
        AbstractState Abs = S->abstraction();
        ASSERT_TRUE(Spec.Pre(Abs, A, ConcreteRet));
        // Execute on the shadow and mirror on the concrete structure using
        // the public API only.
        AbstractState ShadowAfter = Before;
        Op.Apply(ShadowAfter, A);
        Spec.Apply(ShadowAfter, A, ConcreteRet);
        ASSERT_EQ(ShadowAfter, Before) << Factory.Name << " " << Spec.OpName;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcreteInverseTest,
                         ::testing::Values(3, 17, 2024));
