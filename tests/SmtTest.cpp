//===- tests/SmtTest.cpp - smt/ module unit & property tests ---------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "logic/Dsl.h"
#include "smt/SmtSolver.h"
#include "smt/Tseitin.h"
#include "logic/Evaluator.h"
#include "spec/AbstractState.h"

#include <gtest/gtest.h>

#include <random>

using namespace semcomm;

// --- SAT solver ---------------------------------------------------------------

TEST(SatSolverTest, TrivialInstances) {
  SatSolver S;
  int A = S.addVar();
  S.addClause({Lit(A, true)});
  EXPECT_EQ(S.solve(), SatResult::Sat);
  EXPECT_TRUE(S.modelValue(A));

  SatSolver S2;
  int B = S2.addVar();
  S2.addClause({Lit(B, true)});
  S2.addClause({Lit(B, false)});
  EXPECT_EQ(S2.solve(), SatResult::Unsat);
}

TEST(SatSolverTest, EmptyClauseIsUnsat) {
  SatSolver S;
  S.addVar();
  S.addClause({});
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

/// Pigeonhole PHP(n+1, n) instances are classic small unsat cases that
/// exercise clause learning.
static SatResult pigeonhole(int Pigeons, int Holes) {
  SatSolver S;
  std::vector<std::vector<int>> Var(Pigeons, std::vector<int>(Holes));
  for (int P = 0; P < Pigeons; ++P)
    for (int H = 0; H < Holes; ++H)
      Var[P][H] = S.addVar();
  for (int P = 0; P < Pigeons; ++P) {
    std::vector<Lit> C;
    for (int H = 0; H < Holes; ++H)
      C.push_back(Lit(Var[P][H], true));
    S.addClause(C);
  }
  for (int H = 0; H < Holes; ++H)
    for (int P1 = 0; P1 < Pigeons; ++P1)
      for (int P2 = P1 + 1; P2 < Pigeons; ++P2)
        S.addClause({Lit(Var[P1][H], false), Lit(Var[P2][H], false)});
  return S.solve();
}

TEST(SatSolverTest, Pigeonhole) {
  EXPECT_EQ(pigeonhole(4, 3), SatResult::Unsat);
  EXPECT_EQ(pigeonhole(5, 4), SatResult::Unsat);
  EXPECT_EQ(pigeonhole(4, 4), SatResult::Sat);
}

TEST(SatSolverTest, ConflictBudgetReportsUnknown) {
  SatSolver S;
  // A hard-enough pigeonhole with a tiny budget.
  std::vector<std::vector<int>> Var(7, std::vector<int>(6));
  for (auto &Row : Var)
    for (int &V : Row)
      V = S.addVar();
  for (int P = 0; P < 7; ++P) {
    std::vector<Lit> C;
    for (int H = 0; H < 6; ++H)
      C.push_back(Lit(Var[P][H], true));
    S.addClause(C);
  }
  for (int H = 0; H < 6; ++H)
    for (int P1 = 0; P1 < 7; ++P1)
      for (int P2 = P1 + 1; P2 < 7; ++P2)
        S.addClause({Lit(Var[P1][H], false), Lit(Var[P2][H], false)});
  EXPECT_EQ(S.solve(/*MaxConflicts=*/1), SatResult::Unknown);
}

// Property sweep: random 3-CNF instances cross-checked against brute force.
class SatFuzzTest : public ::testing::TestWithParam<int> {};

static bool bruteForce(int NVars, const std::vector<std::vector<int>> &Cls) {
  for (unsigned M = 0; M < (1u << NVars); ++M) {
    bool AllSat = true;
    for (const auto &C : Cls) {
      bool SatC = false;
      for (int L : C) {
        int V = L > 0 ? L : -L;
        if ((L > 0) == (((M >> (V - 1)) & 1) != 0)) {
          SatC = true;
          break;
        }
      }
      if (!SatC) {
        AllSat = false;
        break;
      }
    }
    if (AllSat)
      return true;
  }
  return false;
}

TEST_P(SatFuzzTest, MatchesBruteForce) {
  std::mt19937 Rng(GetParam());
  for (int Iter = 0; Iter < 200; ++Iter) {
    int NV = 3 + static_cast<int>(Rng() % 9);
    int NC = 2 + static_cast<int>(Rng() % (NV * 5));
    std::vector<std::vector<int>> Cls;
    for (int C = 0; C < NC; ++C) {
      int Len = 1 + static_cast<int>(Rng() % 4);
      std::vector<int> Clause;
      for (int I = 0; I < Len; ++I) {
        int V = 1 + static_cast<int>(Rng() % NV);
        Clause.push_back((Rng() & 1) ? V : -V);
      }
      Cls.push_back(Clause);
    }
    SatSolver S;
    for (int V = 0; V < NV; ++V)
      S.addVar();
    for (const auto &Clause : Cls) {
      std::vector<Lit> Lits;
      for (int L : Clause)
        Lits.push_back(Lit(L > 0 ? L : -L, L > 0));
      S.addClause(Lits);
    }
    SatResult R = S.solve();
    ASSERT_NE(R, SatResult::Unknown);
    ASSERT_EQ(R == SatResult::Sat, bruteForce(NV, Cls))
        << "seed=" << GetParam() << " iter=" << Iter;
    if (R == SatResult::Sat) {
      for (const auto &Clause : Cls) {
        bool SatC = false;
        for (int L : Clause)
          if ((L > 0) == S.modelValue(L > 0 ? L : -L))
            SatC = true;
        ASSERT_TRUE(SatC) << "invalid model";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- Incremental solving ------------------------------------------------------

namespace {

/// Builds PHP(Holes+1, Holes) with every clause gated behind \p Sel.
std::vector<std::vector<int>> gatedPigeonhole(SatSolver &S, int Holes,
                                              Lit Sel) {
  int Pigeons = Holes + 1;
  std::vector<std::vector<int>> Var(Pigeons, std::vector<int>(Holes));
  for (auto &Row : Var)
    for (int &V : Row)
      V = S.addVar();
  for (int P = 0; P < Pigeons; ++P) {
    std::vector<Lit> C{Sel.negated()};
    for (int H = 0; H < Holes; ++H)
      C.push_back(Lit(Var[P][H], true));
    S.addClause(C);
  }
  for (int H = 0; H < Holes; ++H)
    for (int P1 = 0; P1 < Pigeons; ++P1)
      for (int P2 = P1 + 1; P2 < Pigeons; ++P2)
        S.addClause({Sel.negated(), Lit(Var[P1][H], false),
                     Lit(Var[P2][H], false)});
  return Var;
}

} // namespace

TEST(SatSolverIncremental, AssumptionsDoNotPersist) {
  SatSolver S;
  int A = S.addVar(), B = S.addVar();
  S.addClause({Lit(A, true), Lit(B, true)});
  EXPECT_EQ(S.solve({Lit(A, false), Lit(B, false)}), SatResult::Unsat);
  // The assumptions were per-call: the database itself is still Sat, in
  // both polarities.
  EXPECT_EQ(S.solve(), SatResult::Sat);
  EXPECT_EQ(S.solve({Lit(A, true)}), SatResult::Sat);
  EXPECT_TRUE(S.modelValue(A));
  EXPECT_EQ(S.solve({Lit(A, false)}), SatResult::Sat);
  EXPECT_TRUE(S.modelValue(B));
}

TEST(SatSolverIncremental, ContradictoryAssumptions) {
  SatSolver S;
  int A = S.addVar();
  S.addVar();
  EXPECT_EQ(S.solve({Lit(A, true), Lit(A, false)}), SatResult::Unsat);
  // Both halves of the contradiction are in the core.
  const std::vector<Lit> &Core = S.unsatCore();
  EXPECT_EQ(Core.size(), 2u);
  EXPECT_TRUE(std::find(Core.begin(), Core.end(), Lit(A, true)) !=
              Core.end());
  EXPECT_TRUE(std::find(Core.begin(), Core.end(), Lit(A, false)) !=
              Core.end());
  EXPECT_EQ(S.solve(), SatResult::Sat);
}

TEST(SatSolverIncremental, UnsatCoreIsRelevantSubset) {
  SatSolver S;
  int A = S.addVar(), B = S.addVar(), C = S.addVar(), X = S.addVar();
  S.addClause({Lit(A, false), Lit(X, true)});  // a -> x
  S.addClause({Lit(B, false), Lit(X, false)}); // b -> ~x
  ASSERT_EQ(S.solve({Lit(A, true), Lit(C, true), Lit(B, true)}),
            SatResult::Unsat);
  std::vector<Lit> Core = S.unsatCore();
  EXPECT_TRUE(std::find(Core.begin(), Core.end(), Lit(A, true)) !=
              Core.end());
  EXPECT_TRUE(std::find(Core.begin(), Core.end(), Lit(B, true)) !=
              Core.end());
  EXPECT_TRUE(std::find(Core.begin(), Core.end(), Lit(C, true)) ==
              Core.end());
  // The core alone reproduces the contradiction.
  EXPECT_EQ(S.solve(Core), SatResult::Unsat);
  // And without b the instance is satisfiable again.
  EXPECT_EQ(S.solve({Lit(A, true), Lit(C, true)}), SatResult::Sat);
}

TEST(SatSolverIncremental, LearnedClausesSurviveAcrossCalls) {
  SatSolver S;
  Lit Sel(S.addVar(), true);
  gatedPigeonhole(S, 4, Sel);

  int64_t Before = S.numConflicts();
  ASSERT_EQ(S.solve({Sel}), SatResult::Unsat);
  int64_t FirstRun = S.numConflicts() - Before;
  EXPECT_GT(FirstRun, 0);
  EXPECT_GT(S.numLearnedClauses(), 0);

  // The refutation lemmas are conditioned only on the activation literal,
  // so re-asking the same query is cheaper than deriving it cold.
  int64_t Learned = S.numLearnedClauses();
  Before = S.numConflicts();
  ASSERT_EQ(S.solve({Sel}), SatResult::Unsat);
  int64_t SecondRun = S.numConflicts() - Before;
  EXPECT_LT(SecondRun, FirstRun);
  EXPECT_GE(S.numLearnedClauses(), Learned);

  // Deactivated, the gated group is irrelevant.
  EXPECT_EQ(S.solve({Sel.negated()}), SatResult::Sat);
}

TEST(SatSolverIncremental, ClausesMayBeAddedBetweenSolves) {
  SatSolver S;
  int A = S.addVar(), B = S.addVar();
  S.addClause({Lit(A, true), Lit(B, true)});
  EXPECT_EQ(S.solve(), SatResult::Sat);
  S.addClause({Lit(A, false)});
  EXPECT_EQ(S.solve(), SatResult::Sat);
  EXPECT_TRUE(S.modelValue(B));
  S.addClause({Lit(B, false)});
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

// Property sweep: on random instances, solving under assumptions agrees
// with a fresh solver that carries the assumptions as unit clauses.
class SatIncrementalFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SatIncrementalFuzzTest, AssumptionsAgreeWithFreshSolver) {
  std::mt19937 Rng(GetParam());
  for (int Iter = 0; Iter < 60; ++Iter) {
    int NV = 3 + static_cast<int>(Rng() % 9);
    int NC = 2 + static_cast<int>(Rng() % (NV * 4));
    std::vector<std::vector<int>> Cls;
    for (int C = 0; C < NC; ++C) {
      int Len = 1 + static_cast<int>(Rng() % 4);
      std::vector<int> Clause;
      for (int I = 0; I < Len; ++I) {
        int V = 1 + static_cast<int>(Rng() % NV);
        Clause.push_back((Rng() & 1) ? V : -V);
      }
      Cls.push_back(Clause);
    }

    // One warm solver answers a sequence of assumption sets...
    SatSolver Warm;
    for (int V = 0; V < NV; ++V)
      Warm.addVar();
    for (const auto &Clause : Cls) {
      std::vector<Lit> Lits;
      for (int L : Clause)
        Lits.push_back(Lit(L > 0 ? L : -L, L > 0));
      Warm.addClause(Lits);
    }

    for (int Round = 0; Round < 8; ++Round) {
      std::vector<Lit> Assumps;
      int NA = static_cast<int>(Rng() % 4);
      for (int I = 0; I < NA; ++I) {
        int V = 1 + static_cast<int>(Rng() % NV);
        Assumps.push_back(Lit(V, (Rng() & 1) != 0));
      }
      SatResult Got = Warm.solve(Assumps);

      // ...a cold solver with the assumptions as units is the reference.
      SatSolver Fresh;
      for (int V = 0; V < NV; ++V)
        Fresh.addVar();
      for (const auto &Clause : Cls) {
        std::vector<Lit> Lits;
        for (int L : Clause)
          Lits.push_back(Lit(L > 0 ? L : -L, L > 0));
        Fresh.addClause(Lits);
      }
      for (Lit A : Assumps)
        Fresh.addClause({A});
      SatResult Want = Fresh.solve();

      ASSERT_EQ(Got, Want) << "seed=" << GetParam() << " iter=" << Iter
                           << " round=" << Round;
      if (Got == SatResult::Unsat && !Warm.unsatCore().empty()) {
        // The reported core must itself be contradictory.
        ASSERT_EQ(Warm.solve(Warm.unsatCore()), SatResult::Unsat);
      }
      if (Warm.solve() == SatResult::Unsat)
        break; // Database itself became Unsat; later rounds are trivial.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatIncrementalFuzzTest,
                         ::testing::Values(3, 7, 31, 127));

// --- Clause-database reduction ------------------------------------------------

TEST(SatSolverClauseGc, ReductionFiresAndPreservesPigeonholeAnswers) {
  // Conflict-heavy warm workload with an aggressive GC threshold: the
  // reduction must fire, reclaim clauses, and change no answer.
  SatSolver Gc, NoGc;
  NoGc.setClauseGc(false);
  Gc.setClauseGcLimit(50);
  Lit SelGc(Gc.addVar(), true), SelNo(NoGc.addVar(), true);
  gatedPigeonhole(Gc, 6, SelGc);
  gatedPigeonhole(NoGc, 6, SelNo);

  for (int Round = 0; Round < 4; ++Round) {
    ASSERT_EQ(Gc.solve({SelGc}), SatResult::Unsat) << Round;
    ASSERT_EQ(NoGc.solve({SelNo}), SatResult::Unsat) << Round;
    ASSERT_EQ(Gc.solve({SelGc.negated()}), SatResult::Sat) << Round;
    ASSERT_EQ(NoGc.solve({SelNo.negated()}), SatResult::Sat) << Round;
    EXPECT_TRUE(Gc.reasonInvariantHolds()) << Round;
  }
  EXPECT_GT(Gc.numDbReductions(), 0);
  EXPECT_GT(Gc.numReclaimedClauses(), 0);
  EXPECT_EQ(NoGc.numDbReductions(), 0);
  // The GC'd database is strictly smaller than the packrat one.
  EXPECT_LT(Gc.numClauses(), NoGc.numClauses());
}

TEST(SatSolverClauseGc, ManualReduceKeepsReasonClauses) {
  SatSolver S;
  Lit Sel(S.addVar(), true);
  gatedPigeonhole(S, 5, Sel);
  ASSERT_EQ(S.solve({Sel}), SatResult::Unsat);
  ASSERT_TRUE(S.reasonInvariantHolds());

  // Root-level reduction between solves: reasons of root-implied literals
  // survive, and the database still answers identically.
  size_t Before = S.numClauses();
  size_t Removed = S.reduceDb();
  EXPECT_EQ(S.numClauses(), Before - Removed);
  EXPECT_TRUE(S.reasonInvariantHolds());
  EXPECT_EQ(S.solve({Sel}), SatResult::Unsat);
  EXPECT_EQ(S.solve({Sel.negated()}), SatResult::Sat);
  EXPECT_TRUE(S.reasonInvariantHolds());
}

// Property sweep: a warm solver with forced-aggressive clause GC must agree
// with a no-GC reference on every answer of a random query sequence.
class SatClauseGcFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SatClauseGcFuzzTest, AggressiveGcAgreesWithNoGcReference) {
  std::mt19937 Rng(GetParam());
  for (int Iter = 0; Iter < 40; ++Iter) {
    int NV = 6 + static_cast<int>(Rng() % 10);
    int NC = 8 + static_cast<int>(Rng() % (NV * 4));
    std::vector<std::vector<int>> Cls;
    for (int C = 0; C < NC; ++C) {
      int Len = 2 + static_cast<int>(Rng() % 3);
      std::vector<int> Clause;
      for (int I = 0; I < Len; ++I) {
        int V = 1 + static_cast<int>(Rng() % NV);
        Clause.push_back((Rng() & 1) ? V : -V);
      }
      Cls.push_back(Clause);
    }

    SatSolver Gc, NoGc;
    Gc.setClauseGcLimit(4); // Absurdly aggressive: reduce all the time.
    NoGc.setClauseGc(false);
    for (SatSolver *S : {&Gc, &NoGc}) {
      for (int V = 0; V < NV; ++V)
        S->addVar();
      for (const auto &Clause : Cls) {
        std::vector<Lit> Lits;
        for (int L : Clause)
          Lits.push_back(Lit(L > 0 ? L : -L, L > 0));
        S->addClause(Lits);
      }
    }

    for (int Round = 0; Round < 10; ++Round) {
      std::vector<Lit> Assumps;
      int NA = static_cast<int>(Rng() % 4);
      for (int I = 0; I < NA; ++I) {
        int V = 1 + static_cast<int>(Rng() % NV);
        Assumps.push_back(Lit(V, (Rng() & 1) != 0));
      }
      SatResult Got = Gc.solve(Assumps);
      SatResult Want = NoGc.solve(Assumps);
      ASSERT_EQ(Got, Want) << "seed=" << GetParam() << " iter=" << Iter
                           << " round=" << Round;
      ASSERT_TRUE(Gc.reasonInvariantHolds());
      if (Got == SatResult::Sat) {
        // The GC'd solver's model still satisfies the original CNF.
        for (const auto &Clause : Cls) {
          bool SatC = false;
          for (int L : Clause)
            if ((L > 0) == Gc.modelValue(L > 0 ? L : -L))
              SatC = true;
          ASSERT_TRUE(SatC) << "invalid model after clause GC";
        }
      }
      if (Want == SatResult::Unsat && Assumps.empty())
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatClauseGcFuzzTest,
                         ::testing::Values(11, 42, 1009, 4099));

// --- Scope retirement ---------------------------------------------------------

TEST(SatSolverScopeRetire, EvictsScopeClausesAndPreservesAnswers) {
  SatSolver S;
  Lit SelA(S.addVar(), true), SelB(S.addVar(), true);
  gatedPigeonhole(S, 4, SelA);
  gatedPigeonhole(S, 4, SelB);
  ASSERT_EQ(S.solve({SelA}), SatResult::Unsat);
  ASSERT_EQ(S.solve({SelB}), SatResult::Unsat);
  ASSERT_EQ(S.solve(), SatResult::Sat);

  // Retiring A's scope drops its gated problem clauses (root-satisfied via
  // ~selA) and every learned clause touching the scope.
  size_t Before = S.numClauses();
  size_t Evicted = S.retireScope(SelA, {});
  EXPECT_GT(Evicted, 0u);
  EXPECT_EQ(S.numClauses(), Before - Evicted);
  EXPECT_EQ(S.numScopeRetirements(), 1);
  EXPECT_EQ(S.numEvictedClauses(), static_cast<int64_t>(Evicted));
  EXPECT_TRUE(S.reasonInvariantHolds());

  // The retired selector is permanently false; B's scope is untouched.
  EXPECT_EQ(S.solve({SelA}), SatResult::Unsat);
  EXPECT_EQ(S.unsatCore().size(), 1u);
  EXPECT_EQ(S.solve({SelB}), SatResult::Unsat);
  EXPECT_EQ(S.solve(), SatResult::Sat);
  EXPECT_TRUE(S.reasonInvariantHolds());
}

TEST(SatSolverScopeRetire, DropsLearnedClausesOfScopeVars) {
  SatSolver S;
  Lit Sel(S.addVar(), true);
  std::vector<std::vector<int>> Var = gatedPigeonhole(S, 5, Sel);
  ASSERT_EQ(S.solve({Sel}), SatResult::Unsat);
  ASSERT_GT(S.numLearnedClauses(), 0);

  // Retire with the pigeonhole vars named as scope vars: every learned
  // clause mentions them, so the learned database empties.
  std::vector<int> ScopeVars;
  for (const auto &Row : Var)
    for (int V : Row)
      ScopeVars.push_back(V);
  S.retireScope(Sel, ScopeVars);
  EXPECT_TRUE(S.reasonInvariantHolds());
  EXPECT_EQ(S.numClauses(), 0u); // Everything was gated or learned.
  EXPECT_EQ(S.solve(), SatResult::Sat);
}

TEST(SatSolverScopeRetire, SubtreeRetiresInOnePass) {
  // An interior selector node plus its nested selectors retire in ONE
  // retireScopes() call: every selector is falsified, every guarded and
  // scope-learned clause is evicted, and unrelated scopes are untouched.
  SatSolver S;
  Lit Outer(S.addVar(), true), Inner1(S.addVar(), true),
      Inner2(S.addVar(), true), Other(S.addVar(), true);
  gatedPigeonhole(S, 4, Inner1);
  gatedPigeonhole(S, 4, Inner2);
  gatedPigeonhole(S, 4, Other);
  // Nest the inner selectors under the outer one: outer -> inner_i would
  // activate them; here it is enough that they belong to one subtree.
  ASSERT_EQ(S.solve({Inner1}), SatResult::Unsat);
  ASSERT_EQ(S.solve({Inner2}), SatResult::Unsat);
  ASSERT_EQ(S.solve({Other}), SatResult::Unsat);

  int64_t RetireCallsBefore = S.numScopeRetirements();
  size_t Evicted = S.retireScopes({Outer, Inner1, Inner2}, {});
  EXPECT_GT(Evicted, 0u);
  EXPECT_EQ(S.numScopeRetirements(), RetireCallsBefore + 1);
  EXPECT_TRUE(S.reasonInvariantHolds());

  // All three subtree selectors are permanently false; the unrelated
  // scope still refutes.
  for (Lit Sel : {Outer, Inner1, Inner2}) {
    EXPECT_EQ(S.solve({Sel}), SatResult::Unsat);
    EXPECT_EQ(S.unsatCore().size(), 1u);
  }
  EXPECT_EQ(S.solve({Other}), SatResult::Unsat);
  EXPECT_EQ(S.solve(), SatResult::Sat);
}

TEST(SatSolverVarRecycling, RecycledIndicesResetActivityPhaseAndWatches) {
  SatSolver S;
  Lit Sel(S.addVar(), true);
  std::vector<std::vector<int>> Var = gatedPigeonhole(S, 4, Sel);
  // Solving bumps activity and saves phases on the pigeonhole vars.
  ASSERT_EQ(S.solve({Sel}), SatResult::Unsat);
  ASSERT_EQ(S.solve({Sel.negated()}), SatResult::Sat);

  std::vector<int> ScopeVars;
  for (const auto &Row : Var)
    for (int V : Row)
      ScopeVars.push_back(V);
  int AllocatedBefore = S.numVars();
  S.retireScopes({Sel}, ScopeVars);
  EXPECT_EQ(S.numRecycledVars(), static_cast<int64_t>(ScopeVars.size()));
  EXPECT_EQ(S.numLiveVars(), AllocatedBefore - S.numRecycledVars());

  // addVar() drains the free list: indices are reused (the array does not
  // grow) and every reused index presents clean search state.
  for (size_t I = 0; I != ScopeVars.size(); ++I) {
    int V = S.addVar();
    EXPECT_LE(V, AllocatedBefore) << I;
    EXPECT_TRUE(S.varStateIsClean(V)) << V;
  }
  EXPECT_EQ(S.numVars(), AllocatedBefore);
  // The next request grows the array again.
  EXPECT_EQ(S.addVar(), AllocatedBefore + 1);

  // A reused slot behaves like a fresh variable.
  int X = S.numVars();
  S.addClause({Lit(X, true)});
  EXPECT_EQ(S.solve(), SatResult::Sat);
  EXPECT_TRUE(S.modelValue(X));
  EXPECT_TRUE(S.reasonInvariantHolds());
}

TEST(SatSolverVarRecycling, DisabledRecyclingKeepsAllocationCumulative) {
  SatSolver S;
  S.setVarRecycling(false);
  Lit Sel(S.addVar(), true);
  std::vector<std::vector<int>> Var = gatedPigeonhole(S, 3, Sel);
  ASSERT_EQ(S.solve({Sel}), SatResult::Unsat);
  std::vector<int> ScopeVars;
  for (const auto &Row : Var)
    for (int V : Row)
      ScopeVars.push_back(V);
  int Before = S.numVars();
  S.retireScopes({Sel}, ScopeVars);
  EXPECT_EQ(S.numRecycledVars(), 0);
  EXPECT_EQ(S.addVar(), Before + 1); // No index reuse.
}

/// Recycle fuzz: random gated scope groups are solved, retired (their
/// vars recycled), and re-created on the recycled indices, against a
/// reference solver with recycling disabled. Verdicts must agree on every
/// query and the reason invariant must hold after every recycle.
class SatVarRecycleFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SatVarRecycleFuzzTest, RetireReopenCyclesMatchNoRecyclingReference) {
  std::mt19937 Rng(GetParam());
  for (int Iter = 0; Iter < 12; ++Iter) {
    SatSolver Rec, Ref;
    Ref.setVarRecycling(false);

    // A persistent random base over vars that never retire.
    int NBase = 4 + static_cast<int>(Rng() % 5);
    for (int V = 0; V < NBase; ++V) {
      Rec.addVar();
      Ref.addVar();
    }
    int NClauses = 2 + static_cast<int>(Rng() % 8);
    for (int Ci = 0; Ci < NClauses; ++Ci) {
      std::vector<Lit> C;
      int Len = 1 + static_cast<int>(Rng() % 3);
      for (int I = 0; I < Len; ++I) {
        int V = 1 + static_cast<int>(Rng() % NBase);
        C.push_back(Lit(V, (Rng() & 1) != 0));
      }
      Rec.addClause(C);
      Ref.addClause(C);
    }
    // A trivially unsatisfiable base makes every later answer Unsat and
    // every retirement a no-op; skip to a meaningful instance.
    if (Rec.solve() == SatResult::Unsat)
      continue;

    for (int Cycle = 0; Cycle < 6; ++Cycle) {
      // Open a scope: a selector plus a gated random group. Because both
      // solvers allocate the same *number* of vars and the recycler hands
      // indices deterministically, clauses are built per-solver from its
      // own returned indices.
      int Holes = 2 + static_cast<int>(Rng() % 3);
      int Pigeons = Holes + ((Rng() & 1) != 0 ? 1 : 0); // Unsat or Sat.
      auto BuildScope = [&](SatSolver &S, Lit &SelOut,
                            std::vector<int> &VarsOut) {
        SelOut = Lit(S.addVar(), true);
        VarsOut.clear();
        std::vector<std::vector<int>> Grid(
            static_cast<size_t>(Pigeons),
            std::vector<int>(static_cast<size_t>(Holes)));
        for (auto &Row : Grid)
          for (int &V : Row) {
            V = S.addVar();
            VarsOut.push_back(V);
          }
        for (int P = 0; P < Pigeons; ++P) {
          std::vector<Lit> C{SelOut.negated()};
          for (int H = 0; H < Holes; ++H)
            C.push_back(Lit(Grid[static_cast<size_t>(P)]
                                [static_cast<size_t>(H)],
                            true));
          S.addClause(C);
        }
        for (int H = 0; H < Holes; ++H)
          for (int P1 = 0; P1 < Pigeons; ++P1)
            for (int P2 = P1 + 1; P2 < Pigeons; ++P2)
              S.addClause({SelOut.negated(),
                           Lit(Grid[static_cast<size_t>(P1)]
                                   [static_cast<size_t>(H)],
                               false),
                           Lit(Grid[static_cast<size_t>(P2)]
                                   [static_cast<size_t>(H)],
                               false)});
      };
      Lit RecSel, RefSel;
      std::vector<int> RecVars, RefVars;
      BuildScope(Rec, RecSel, RecVars);
      BuildScope(Ref, RefSel, RefVars);

      // Random queries mixing the scope selector with base literals.
      for (int Q = 0; Q < 4; ++Q) {
        std::vector<Lit> RecAssumps{RecSel}, RefAssumps{RefSel};
        int NA = static_cast<int>(Rng() % 3);
        for (int I = 0; I < NA; ++I) {
          int V = 1 + static_cast<int>(Rng() % NBase);
          bool Pos = (Rng() & 1) != 0;
          RecAssumps.push_back(Lit(V, Pos));
          RefAssumps.push_back(Lit(V, Pos));
        }
        ASSERT_EQ(Rec.solve(RecAssumps), Ref.solve(RefAssumps))
            << "seed=" << GetParam() << " iter=" << Iter
            << " cycle=" << Cycle << " q=" << Q;
      }

      // Retire the scope; the recycler reclaims the group's indices.
      Rec.retireScopes({RecSel}, RecVars);
      Ref.retireScopes({RefSel}, RefVars);
      ASSERT_TRUE(Rec.reasonInvariantHolds());
      ASSERT_TRUE(Ref.reasonInvariantHolds());
      ASSERT_EQ(Rec.solve(), Ref.solve());
    }
    // The recycler bounded the variable array; the reference grew it.
    EXPECT_LT(Rec.numVars(), Ref.numVars());
    EXPECT_GT(Rec.numRecycledVars(), 0);
    EXPECT_EQ(Rec.numVarRequests(), Ref.numVarRequests());
    EXPECT_LE(Rec.peakLiveVars(), Ref.peakLiveVars());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatVarRecycleFuzzTest,
                         ::testing::Values(13, 57, 911, 2025));

TEST(SmtSessionTest, ScopeTreeSubtreeRetireRecyclesDefinitionVars) {
  // A three-level scope tree (family -> pair -> method): retiring the
  // interior (pair) node retires the method scope with it, evicts the
  // pair layer's Tseitin definitions, and recycles their variables so a
  // re-opened scope reuses the indices instead of growing the solver.
  ExprFactory F;
  SmtSession S(F);
  ExprRef FamSel = F.var("tree_fam", Sort::Bool);
  ExprRef PairSel = F.var("tree_pair", Sort::Bool);
  ExprRef MSel = F.var("tree_m", Sort::Bool);
  ExprRef X = F.var("tree_x", Sort::Bool), Y = F.var("tree_y", Sort::Bool),
          Z = F.var("tree_z", Sort::Bool);

  SmtSession::ScopeId Fam =
      S.openScope(FamSel, SmtSession::RootScope, /*OwnLayer=*/true);
  SmtSession::ScopeId Pair = S.openScope(PairSel, Fam, /*OwnLayer=*/true);
  SmtSession::ScopeId M = S.openScope(MSel, Pair, /*OwnLayer=*/false);
  S.assertInScope(Fam, F.disj({X, Y}));
  S.assertInScope(Pair, F.implies(X, Z));
  S.assertInScope(M, F.conj({X, F.lnot(Y)}));
  // Under the whole path, x ∧ ¬y ∧ (x->z) refutes ¬z.
  ASSERT_EQ(S.check({FamSel, PairSel, MSel, F.lnot(Z)}, -1,
                    {FamSel, PairSel, MSel}),
            SatResult::Unsat);

  int LiveBefore = S.liveVars();
  size_t Evicted = S.retireScope(Pair);
  EXPECT_GT(Evicted, 0u);
  EXPECT_GT(S.recycledVars(), 0);
  EXPECT_LT(S.liveVars(), LiveBefore);
  EXPECT_TRUE(S.solver().reasonInvariantHolds());
  EXPECT_EQ(S.scopeRetirements(), 1);

  // The family scope survives; the retired subtree is gone, so the same
  // query without its prefix is satisfiable again.
  EXPECT_EQ(S.check({FamSel, F.lnot(Z)}, -1, {FamSel}), SatResult::Sat);

  // Re-opening a fresh pair scope re-asserts the content, reusing the
  // recycled indices: the variable array does not grow past its peak.
  int AllocAfterRetire = S.solver().numVars();
  ExprRef PairSel2 = F.var("tree_pair2", Sort::Bool);
  SmtSession::ScopeId Pair2 = S.openScope(PairSel2, Fam, /*OwnLayer=*/true);
  S.assertInScope(Pair2, F.implies(X, Z));
  S.assertInScope(Pair2, F.conj({X, F.lnot(Y)}));
  EXPECT_EQ(S.check({FamSel, PairSel2, F.lnot(Z)}, -1, {FamSel, PairSel2}),
            SatResult::Unsat);
  // Allowance: the fresh selector atom may claim one new slot; the
  // definition vars all come from the free list.
  EXPECT_LE(S.solver().numVars(), AllocAfterRetire + 1);

  // Retiring the family retires the re-opened pair subtree with it.
  S.retireScope(Fam);
  EXPECT_TRUE(S.solver().reasonInvariantHolds());
  EXPECT_EQ(S.check({F.lnot(Z)}), SatResult::Sat);
}

TEST(SmtSessionTest, RetireScopeEvictsAndReVerifies) {
  ExprFactory F;
  SmtSession S(F);
  ExprRef PairSel = F.var("pair_sel", Sort::Bool);
  ExprRef MSel = F.var("m_sel", Sort::Bool);
  ExprRef X = F.var("retire_x", Sort::Bool);
  ExprRef Y = F.var("retire_y", Sort::Bool);

  S.assertScoped(PairSel, X);
  S.assertScopedUnder(PairSel, MSel, F.implies(X, Y));
  // Under both selectors, x holds and x->y holds, so ~y is refuted.
  ASSERT_EQ(S.check({PairSel, MSel, F.lnot(Y)}, -1, {PairSel, MSel}),
            SatResult::Unsat);

  size_t Retained = S.retainedClauses();
  size_t Evicted = S.retireScope(PairSel, {MSel});
  EXPECT_GT(Evicted, 0u);
  EXPECT_LT(S.retainedClauses(), Retained);
  EXPECT_EQ(S.scopeRetirements(), 1);
  EXPECT_TRUE(S.solver().reasonInvariantHolds());

  // The scope is gone: without its prefix, ~y is satisfiable again.
  EXPECT_EQ(S.check({F.lnot(Y)}), SatResult::Sat);
  // A fresh selector re-asserts the same content and verifies again.
  ExprRef PairSel2 = F.var("pair_sel2", Sort::Bool);
  S.assertScoped(PairSel2, X);
  S.assertScoped(PairSel2, F.implies(X, Y));
  EXPECT_EQ(S.check({PairSel2, F.lnot(Y)}, -1, PairSel2), SatResult::Unsat);
}

// --- Core-minimizing restarts -------------------------------------------------

TEST(SatSolverCoreMinimization, SolveOfCoreReachesSmallerFixpoint) {
  // Crafted so the first analyzeFinal core is {a, b, c} while {b, c}
  // suffices: the long clause (w | ~c | ~a | ~b) becomes ~c's reason
  // before the chain b -> z -> ~c is processed, but re-solving under the
  // core alone rediscovers the refutation through the chain.
  SatSolver S;
  int A = S.addVar(), B = S.addVar(), C = S.addVar(), W = S.addVar(),
      Z = S.addVar();
  S.addClause({Lit(B, false), Lit(Z, true)});                    // b -> z
  S.addClause({Lit(W, true), Lit(C, false), Lit(A, false),
               Lit(B, false)});                                  // long
  S.addClause({Lit(W, false)});
  S.addClause({Lit(Z, false), Lit(C, false)});                   // z -> ~c

  ASSERT_EQ(S.solve({Lit(A, true), Lit(B, true), Lit(C, true)}),
            SatResult::Unsat);
  std::vector<Lit> Core = S.unsatCore();
  // Iterate solve(unsatCore()) to a fixpoint by hand (the SmtSession does
  // this internally): the core shrinks to a strict subset.
  while (true) {
    ASSERT_EQ(S.solve(Core), SatResult::Unsat);
    if (S.unsatCore().size() >= Core.size())
      break;
    Core = S.unsatCore();
  }
  EXPECT_LT(Core.size(), 3u);
  for (Lit L : Core)
    EXPECT_NE(L.var(), A); // a is not needed: b -> z -> ~c refutes c.
}

TEST(SmtSessionTest, CoreMinimizationRecordsAnUnsatSubset) {
  ExprFactory F;
  SmtSession S(F);
  ExprRef A = F.var("cm_a", Sort::Bool), B = F.var("cm_b", Sort::Bool),
          C = F.var("cm_c", Sort::Bool), Z = F.var("cm_z", Sort::Bool);
  S.assertBase(F.implies(B, Z));
  S.assertBase(F.implies(Z, F.lnot(C)));
  S.assertBase(F.implies(F.conj({A, B, C}), F.falseExpr()));

  std::vector<ExprRef> Assumed = {A, B, C};
  ASSERT_EQ(S.check(Assumed), SatResult::Unsat);
  std::vector<size_t> Core = S.lastCoreAssumptionIndices();
  ASSERT_FALSE(Core.empty());

  // The recorded core is itself an unsat assumption set.
  std::vector<ExprRef> CoreFormulas;
  for (size_t I : Core)
    CoreFormulas.push_back(Assumed[I]);
  EXPECT_EQ(S.check(CoreFormulas), SatResult::Unsat);

  // Disabling minimization can only widen the core.
  SmtSession S2(F);
  S2.setCoreMinimizationRounds(0);
  S2.assertBase(F.implies(B, Z));
  S2.assertBase(F.implies(Z, F.lnot(C)));
  S2.assertBase(F.implies(F.conj({A, B, C}), F.falseExpr()));
  ASSERT_EQ(S2.check(Assumed), SatResult::Unsat);
  std::vector<size_t> Wide = S2.lastCoreAssumptionIndices();
  for (size_t I : Core)
    EXPECT_TRUE(std::find(Wide.begin(), Wide.end(), I) != Wide.end());
  EXPECT_EQ(S2.coreMinimizationSolves(), 0);
}

// --- Tseitin ------------------------------------------------------------------

TEST(TseitinTest, RoundTripSemantics) {
  // Encode a formula, enumerate its atoms' assignments via the solver, and
  // check consistency with direct evaluation under those assignments.
  ExprFactory F;
  ExprRef A = F.var("a", Sort::Bool), B = F.var("b", Sort::Bool),
          C = F.var("c", Sort::Bool);
  ExprRef Phi = F.iff(F.implies(A, B), F.disj({F.lnot(A), C}));

  SatSolver S;
  Tseitin T(S);
  T.assertTrue(Phi);
  ASSERT_EQ(S.solve(), SatResult::Sat);
  // The model satisfies Phi under direct evaluation.
  auto ValOf = [&](ExprRef V) { return S.modelValue(T.atoms().at(V)); };
  bool AV = ValOf(A), BV = ValOf(B), CV = ValOf(C);
  EXPECT_EQ((!AV || BV) == (!AV || CV), true);
}

TEST(TseitinTest, UnsatisfiableFormula) {
  ExprFactory F;
  ExprRef A = F.var("a", Sort::Bool);
  SatSolver S;
  Tseitin T(S);
  T.assertTrue(F.conj({F.iff(A, F.lnot(A))}));
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

// --- SmtSolver -----------------------------------------------------------------

TEST(SmtSolverTest, EqualityTransitivityChain) {
  ExprFactory F;
  ExprRef A = F.var("a", Sort::Obj), B = F.var("b", Sort::Obj),
          C = F.var("c", Sort::Obj), D = F.var("d", Sort::Obj);
  SmtSolver S(F);
  S.assertFormula(F.eq(A, B));
  S.assertFormula(F.eq(B, C));
  S.assertFormula(F.eq(C, D));
  S.assertFormula(F.ne(A, D));
  EXPECT_EQ(S.check(), SatResult::Unsat);
}

TEST(SmtSolverTest, MembershipCongruence) {
  ExprFactory F;
  Vocab Dl(F);
  // v1 = v2 and v1 in S0 and v2 ~in S0 is inconsistent.
  ExprRef S0 = F.var("S0", Sort::State);
  SmtSolver S(F);
  S.assertFormula(F.eq(Dl.V1, Dl.V2));
  S.assertFormula(F.setContains(S0, Dl.V1));
  S.assertFormula(F.lnot(F.setContains(S0, Dl.V2)));
  EXPECT_EQ(S.check(), SatResult::Unsat);
}

TEST(SmtSolverTest, MapLookupCongruence) {
  ExprFactory F;
  Vocab Dl(F);
  ExprRef M0 = F.var("M0", Sort::State);
  SmtSolver S(F);
  S.assertFormula(F.eq(Dl.K1, Dl.K2));
  S.assertFormula(F.eq(F.mapGet(M0, Dl.K1), Dl.V1));
  S.assertFormula(F.eq(F.mapGet(M0, Dl.K2), Dl.V2));
  S.assertFormula(F.ne(Dl.V1, Dl.V2));
  EXPECT_EQ(S.check(), SatResult::Unsat);
}

TEST(SmtSolverTest, LinearAtomCanonicalization) {
  ExprFactory F;
  ExprRef C0 = F.var("c0", Sort::Int), V = F.var("v", Sort::Int);
  SmtSolver S(F);
  // (c0 + v = c0) and (v ~= 0) must canonicalize to the same atom and
  // conflict.
  S.assertFormula(F.eq(F.add(C0, V), C0));
  S.assertFormula(F.ne(V, F.intConst(0)));
  EXPECT_EQ(S.check(), SatResult::Unsat);
}

TEST(SmtSolverTest, CommutedSumsAreIdentical) {
  ExprFactory F;
  ExprRef C0 = F.var("c0", Sort::Int);
  ExprRef V1 = F.var("n1", Sort::Int), V2 = F.var("n2", Sort::Int);
  SmtSolver S(F);
  // c0 + n1 + n2 != c0 + n2 + n1 is unsatisfiable by normalization alone.
  S.assertFormula(F.ne(F.add(F.add(C0, V1), V2), F.add(F.add(C0, V2), V1)));
  EXPECT_EQ(S.check(), SatResult::Unsat);
}

TEST(SmtSolverTest, IntEqualityExclusivity) {
  ExprFactory F;
  ExprRef X = F.var("x", Sort::Int);
  SmtSolver S(F);
  S.assertFormula(F.eq(X, F.intConst(1)));
  S.assertFormula(F.eq(X, F.intConst(2)));
  EXPECT_EQ(S.check(), SatResult::Unsat);

  SmtSolver S2(F);
  S2.assertFormula(F.eq(X, F.intConst(1)));
  S2.assertFormula(F.lnot(F.le(X, F.intConst(3))));
  EXPECT_EQ(S2.check(), SatResult::Unsat);
}

TEST(SmtSolverTest, SatisfiableWithModel) {
  ExprFactory F;
  Vocab Dl(F);
  SmtSolver S(F);
  S.assertFormula(F.ne(Dl.V1, Dl.V2));
  EXPECT_EQ(S.check(), SatResult::Sat);
  EXPECT_GE(S.numAtoms(), 1);
}

TEST(SmtSolverTest, ObjIteLowering) {
  ExprFactory F;
  Vocab Dl(F);
  ExprRef C = F.var("c", Sort::Bool);
  ExprRef T = F.ite(C, Dl.V1, Dl.V2);
  SmtSolver S(F);
  // ite(c, v1, v2) = v1 with c true is consistent; adding v1 ~= v1 is not.
  S.assertFormula(C);
  S.assertFormula(F.lnot(F.eq(T, Dl.V1)));
  EXPECT_EQ(S.check(), SatResult::Unsat);
}

// --- Differential fuzzing of the eager facade ------------------------------------

// Random boolean combinations over a small vocabulary of object-equality
// and membership atoms, decided by the facade and cross-checked against
// explicit enumeration of all interpretations (4 objects, all membership
// patterns).
class SmtFuzzTest : public ::testing::TestWithParam<int> {};

namespace {

ExprRef randomFormula(ExprFactory &F, std::mt19937 &Rng, int Depth) {
  const char *Objs[] = {"a", "b", "c", "d"};
  if (Depth == 0 || Rng() % 4 == 0) {
    ExprRef X = F.var(Objs[Rng() % 4], Sort::Obj);
    ExprRef Y = F.var(Objs[Rng() % 4], Sort::Obj);
    if (Rng() % 3 == 0)
      return F.setContains(F.var("S0", Sort::State), X);
    return F.eq(X, Y);
  }
  switch (Rng() % 4) {
  case 0:
    return F.lnot(randomFormula(F, Rng, Depth - 1));
  case 1:
    return F.conj({randomFormula(F, Rng, Depth - 1),
                   randomFormula(F, Rng, Depth - 1)});
  case 2:
    return F.disj({randomFormula(F, Rng, Depth - 1),
                   randomFormula(F, Rng, Depth - 1)});
  default:
    return F.implies(randomFormula(F, Rng, Depth - 1),
                     randomFormula(F, Rng, Depth - 1));
  }
}

/// Enumerates all interpretations: partitions of {a,b,c,d} encoded as
/// value ids, and membership of each of the 4 possible value ids.
bool satisfiableByEnumeration(ExprRef Phi) {
  AbstractState S = AbstractState::makeSet(); // membership oracle
  for (int IdA = 0; IdA < 1; ++IdA)
    for (int IdB = 0; IdB < 2; ++IdB)
      for (int IdC = 0; IdC < 3; ++IdC)
        for (int IdD = 0; IdD < 4; ++IdD)
          for (unsigned Mem = 0; Mem < 16; ++Mem) {
            AbstractState Set = AbstractState::makeSet();
            for (int V = 0; V < 4; ++V)
              if (Mem & (1u << V))
                Set.setInsert(Value::obj(V));
            Env E;
            E.bind("a", Value::obj(IdA));
            E.bind("b", Value::obj(IdB));
            E.bind("c", Value::obj(IdC));
            E.bind("d", Value::obj(IdD));
            E.bindState("S0", &Set);
            if (evaluateBool(Phi, E))
              return true;
          }
  return false;
}

} // namespace

TEST_P(SmtFuzzTest, FacadeAgreesWithEnumeration) {
  std::mt19937 Rng(GetParam());
  ExprFactory F;
  for (int Iter = 0; Iter < 120; ++Iter) {
    ExprRef Phi = randomFormula(F, Rng, 3);
    SmtSolver S(F);
    S.assertFormula(Phi);
    SatResult Got = S.check();
    ASSERT_NE(Got, SatResult::Unknown);
    bool Expected = satisfiableByEnumeration(Phi);
    // The eager encoding is complete for this fragment (equalities over
    // a closed term set + one membership predicate): verdicts must agree
    // exactly.
    ASSERT_EQ(Got == SatResult::Sat, Expected)
        << "seed=" << GetParam() << " iter=" << Iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmtFuzzTest, ::testing::Values(11, 22, 33, 44));

// --- SmtSession: incremental facade ------------------------------------------

TEST(SmtSessionTest, QueriesDoNotContaminateLaterChecks) {
  ExprFactory F;
  ExprRef X = F.var("x", Sort::Int);
  SmtSession S(F);
  EXPECT_EQ(S.check({F.eq(X, F.intConst(1))}), SatResult::Sat);
  EXPECT_EQ(S.check({F.eq(X, F.intConst(2))}), SatResult::Sat);
  EXPECT_EQ(S.check({F.eq(X, F.intConst(1)), F.eq(X, F.intConst(2))}),
            SatResult::Unsat);
  // The failed query was per-call; the session is not poisoned.
  EXPECT_EQ(S.check({F.eq(X, F.intConst(1))}), SatResult::Sat);
}

TEST(SmtSessionTest, BaseFormulasPersistAcrossChecks) {
  ExprFactory F;
  Vocab Dl(F);
  SmtSession S(F);
  S.assertBase(F.ne(Dl.V1, Dl.V2));
  EXPECT_EQ(S.check({}), SatResult::Sat);
  EXPECT_EQ(S.check({F.eq(Dl.V1, Dl.V2)}), SatResult::Unsat);
  EXPECT_EQ(S.check({}), SatResult::Sat);
  // Base grows monotonically.
  S.assertBase(F.eq(Dl.V1, Dl.V2));
  EXPECT_EQ(S.check({}), SatResult::Unsat);
}

TEST(SmtSessionTest, RetainsEncodingAcrossChecks) {
  ExprFactory F;
  Vocab Dl(F);
  ExprRef S0 = F.var("S0", Sort::State);
  SmtSession S(F);
  S.assertBase(F.setContains(S0, Dl.V1));
  ASSERT_EQ(S.check({F.eq(Dl.V1, Dl.V2), F.lnot(F.setContains(S0, Dl.V2))}),
            SatResult::Unsat);
  size_t Retained = S.retainedClauses();
  EXPECT_GT(Retained, 0u);
  // Re-checking the same split re-uses the retained encoding: no new
  // clauses are needed at all.
  ASSERT_EQ(S.check({F.eq(Dl.V1, Dl.V2), F.lnot(F.setContains(S0, Dl.V2))}),
            SatResult::Unsat);
  EXPECT_EQ(S.retainedClauses(), Retained);
  EXPECT_EQ(S.numChecks(), 2u);
}

// The incremental session must agree with the one-shot facade (and hence
// with ground-truth enumeration) on every query of a long random sequence
// sharing one warm session — bridges and learned clauses accumulate, the
// verdicts must not drift.
class SmtSessionFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SmtSessionFuzzTest, WarmSessionAgreesWithEnumeration) {
  std::mt19937 Rng(GetParam());
  ExprFactory F;
  SmtSession Session(F);
  for (int Iter = 0; Iter < 80; ++Iter) {
    ExprRef Phi = randomFormula(F, Rng, 3);
    SatResult Got = Session.check({Phi});
    ASSERT_NE(Got, SatResult::Unknown);
    bool Expected = satisfiableByEnumeration(Phi);
    ASSERT_EQ(Got == SatResult::Sat, Expected)
        << "seed=" << GetParam() << " iter=" << Iter;
  }
  EXPECT_EQ(Session.numChecks(), 80u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmtSessionFuzzTest,
                         ::testing::Values(5, 55, 555));
