//===- tests/SymbolicTest.cpp - Symbolic engine tests ----------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// The symbolic engine (the Jahob analogue) must agree with the exhaustive
/// engine everywhere: it verifies every catalog method and rejects every
/// mutant the exhaustive engine rejects. Together the two independent
/// verification paths cross-validate both the catalog and each other.
///
//===----------------------------------------------------------------------===//

#include "commute/ExhaustiveEngine.h"
#include "commute/SymbolicEngine.h"
#include "logic/Dsl.h"
#include "logic/Simplifier.h"
#include "logic/Printer.h"

#include <gtest/gtest.h>

using namespace semcomm;

namespace {
struct SymbolicFixture {
  ExprFactory F;
  Catalog C{F};
  SymbolicEngine Engine{F, /*SeqLenBound=*/3};
};
SymbolicFixture &fixture() {
  static SymbolicFixture Fx;
  return Fx;
}
} // namespace

class SymbolicFamilyVerification : public ::testing::TestWithParam<int> {};

TEST_P(SymbolicFamilyVerification, AllMethodsVerifySymbolically) {
  SymbolicFixture &Fx = fixture();
  const Family &Fam = *allFamilies()[GetParam()];
  for (const TestingMethod &M : generateTestingMethods(Fx.C, Fam)) {
    SymbolicResult R = Fx.Engine.verify(M);
    EXPECT_TRUE(R.Verified)
        << Fam.Name << " " << M.name() << "\n  phi: "
        << printAbstract(M.Entry->get(M.Kind)) << "\n  countermodel: "
        << R.Countermodel;
    EXPECT_GT(R.NumVcs, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, SymbolicFamilyVerification,
                         ::testing::Range(0, 4));

TEST(SymbolicEngineTest, RejectsSetMutant) {
  SymbolicFixture &Fx = fixture();
  Vocab D(Fx.F);
  // Claim (contains; add) always commutes — soundness must fail with a
  // countermodel mentioning the membership atom.
  Catalog &C = Fx.C;
  const ConditionEntry &Real = C.entry(setFamily(), "contains", "add_");
  ConditionEntry Mutant = Real;
  Mutant.Before = Mutant.Between = Mutant.After = D.tru();
  TestingMethod M;
  M.Entry = &Mutant;
  M.Kind = ConditionKind::Before;
  M.Role = MethodRole::Soundness;
  SymbolicResult R = Fx.Engine.verify(M);
  EXPECT_FALSE(R.Verified);
  EXPECT_EQ(R.LastOutcome, SatResult::Sat);
  EXPECT_FALSE(R.Countermodel.empty());
}

TEST(SymbolicEngineTest, RejectsArrayListMutant) {
  SymbolicFixture &Fx = fixture();
  Vocab D(Fx.F);
  const ConditionEntry &Real =
      fixture().C.entry(arrayListFamily(), "add_at", "get");
  ConditionEntry Mutant = Real;
  // "get commutes with add_at whenever the indices differ" — wrong: reads
  // above the insertion point shift.
  Mutant.Before = Mutant.Between = Mutant.After = D.ne(D.I1, D.I2);
  TestingMethod M;
  M.Entry = &Mutant;
  M.Kind = ConditionKind::Before;
  M.Role = MethodRole::Soundness;
  SymbolicResult R = Fx.Engine.verify(M);
  EXPECT_FALSE(R.Verified);
}

TEST(SymbolicEngineTest, RejectsIncompleteMapMutant) {
  SymbolicFixture &Fx = fixture();
  Vocab D(Fx.F);
  const ConditionEntry &Real = Fx.C.entry(mapFamily(), "put_", "put_");
  ConditionEntry Mutant = Real;
  Mutant.Before = Mutant.Between = Mutant.After = D.ne(D.K1, D.K2);
  TestingMethod M;
  M.Entry = &Mutant;
  M.Kind = ConditionKind::Between;
  M.Role = MethodRole::Completeness;
  SymbolicResult R = Fx.Engine.verify(M);
  EXPECT_FALSE(R.Verified);
}

TEST(SymbolicEngineTest, WarmSessionReportsReuseStats) {
  SymbolicFixture &Fx = fixture();
  // An ArrayList method has many case splits; the warm session must carry
  // clauses across them.
  for (const TestingMethod &M :
       generateTestingMethods(Fx.C, arrayListFamily())) {
    SymbolicResult R = Fx.Engine.verify(M);
    ASSERT_TRUE(R.Verified) << M.name();
    EXPECT_GT(R.NumVcs, 1u) << M.name();
    EXPECT_GT(R.RetainedClauses, 0u) << M.name();
    EXPECT_GE(R.SatConflicts, R.MaxVcConflicts) << M.name();
    break; // One method suffices; the full sweep runs above.
  }
}

TEST(SymbolicEngineTest, AllSolveModesAgree) {
  // The session optimizations must be invisible in the verdicts: every
  // mode verifies the full ArrayList suite (the split-heavy family) and
  // rejects the same mutants.
  SymbolicFixture &Fx = fixture();
  SymbolicEngine OneShot(Fx.F, /*SeqLenBound=*/2, /*ConflictBudget=*/200000,
                         SolveMode::OneShot);
  SymbolicEngine PerMethod(Fx.F, /*SeqLenBound=*/2,
                           /*ConflictBudget=*/200000, SolveMode::PerMethod);
  SymbolicEngine SharedPair(Fx.F, /*SeqLenBound=*/2,
                            /*ConflictBudget=*/200000,
                            SolveMode::SharedPair);
  for (const TestingMethod &M :
       generateTestingMethods(Fx.C, arrayListFamily())) {
    SymbolicResult A = OneShot.verify(M);
    SymbolicResult B = PerMethod.verify(M);
    SymbolicResult S = SharedPair.verify(M);
    EXPECT_EQ(A.Verified, B.Verified) << M.name();
    EXPECT_EQ(A.Verified, S.Verified) << M.name();
    EXPECT_EQ(A.NumVcs, B.NumVcs) << M.name();
    EXPECT_EQ(A.NumVcs, S.NumVcs) << M.name();
    EXPECT_EQ(A.RetainedClauses, 0u) << M.name();
  }

  Vocab D(Fx.F);
  const ConditionEntry &Real =
      Fx.C.entry(arrayListFamily(), "add_at", "get");
  ConditionEntry Mutant = Real;
  Mutant.Before = Mutant.Between = Mutant.After = D.ne(D.I1, D.I2);
  TestingMethod M;
  M.Entry = &Mutant;
  M.Kind = ConditionKind::Before;
  M.Role = MethodRole::Soundness;
  EXPECT_FALSE(OneShot.verify(M).Verified);
  EXPECT_FALSE(PerMethod.verify(M).Verified);
  EXPECT_FALSE(SharedPair.verify(M).Verified);
}

TEST(SymbolicEngineTest, VerifyPairSharesOneSessionAcrossSixMethods) {
  SymbolicFixture &Fx = fixture();
  SymbolicEngine Engine(Fx.F, /*SeqLenBound=*/2, /*ConflictBudget=*/200000,
                        SolveMode::SharedPair);
  const ConditionEntry &E =
      Fx.C.entry(arrayListFamily(), "add_at", "remove_at");
  PairOutcome O = Engine.verifyPair(E);
  ASSERT_EQ(O.Methods.size(), 6u);
  ASSERT_EQ(O.MethodMillis.size(), 6u);
  EXPECT_EQ(O.failures(), 0u);
  EXPECT_EQ(O.SessionsOpened, 1u); // One warm solver for the whole pair.
  EXPECT_EQ(O.Selectors, 6u);      // One selector literal per method.
  EXPECT_GT(O.RetainedClauses, 0u);
  uint64_t Vcs = 0;
  for (const SymbolicResult &R : O.Methods) {
    EXPECT_TRUE(R.Verified);
    Vcs += R.NumVcs;
  }
  EXPECT_EQ(O.Checks, Vcs); // Every VC went through the shared session.

  // In per-method mode the same pair opens one session per method.
  SymbolicEngine PerMethod(Fx.F, /*SeqLenBound=*/2,
                           /*ConflictBudget=*/200000, SolveMode::PerMethod);
  EXPECT_EQ(PerMethod.verifyPair(E).SessionsOpened, 6u);
}

TEST(SymbolicEngineTest, ProofCoresNameSelectorAndSplitLiterals) {
  // A verified method's unsat cores name the assumptions the refutations
  // used; in SharedPair mode the method's selector shows up whenever its
  // scoped prefix carried the proof.
  SymbolicFixture &Fx = fixture();
  SymbolicEngine Engine(Fx.F, /*SeqLenBound=*/2, /*ConflictBudget=*/200000,
                        SolveMode::SharedPair);
  const ConditionEntry &E = Fx.C.entry(setFamily(), "add", "add");
  PairOutcome O = Engine.verifyPair(E);
  bool SawSelector = false, SawSplitLabel = false;
  for (const SymbolicResult &R : O.Methods) {
    ASSERT_TRUE(R.Verified);
    for (const std::string &L : R.CoreLabels) {
      SawSelector = SawSelector || L.rfind("sel:", 0) == 0;
      SawSplitLabel = SawSplitLabel || L.rfind("sel:", 0) != 0;
    }
  }
  EXPECT_TRUE(SawSelector);
  (void)SawSplitLabel; // Single-VC families carry the body in the prefix.
}

TEST(SymbolicEngineTest, EnginesAgreeOnRandomizedWeakenings) {
  // Drop one clause from every multi-clause set/map between condition and
  // confirm both engines give the same verdicts for both roles.
  SymbolicFixture &Fx = fixture();
  ExhaustiveEngine Ex;
  for (const Family *Fam : {&setFamily(), &mapFamily()}) {
    for (const ConditionEntry &E : Fx.C.entries(*Fam)) {
      std::vector<ExprRef> Clauses = collectDisjuncts(E.Between);
      if (Clauses.size() < 2)
        continue;
      std::vector<ExprRef> Dropped(Clauses.begin() + 1, Clauses.end());
      ConditionEntry Mutant = E;
      Mutant.Before = Mutant.Between = Mutant.After =
          Fx.F.disj(std::move(Dropped));
      for (MethodRole Role :
           {MethodRole::Soundness, MethodRole::Completeness}) {
        TestingMethod M;
        M.Entry = &Mutant;
        M.Kind = ConditionKind::Between;
        M.Role = Role;
        bool Symbolic = Fx.Engine.verify(M).Verified;
        bool Exhaustive =
            Ex.verifyCondition(*Fam, E.op1().Name, E.op2().Name,
                               ConditionKind::Between, Role, Mutant.Between)
                .Verified;
        EXPECT_EQ(Symbolic, Exhaustive)
            << Fam->Name << " " << E.pairName() << " "
            << methodRoleName(Role) << " on "
            << printAbstract(Mutant.Between);
      }
    }
  }
}
