//===- tests/SymbolicTest.cpp - Symbolic engine tests ----------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// The symbolic engine (the Jahob analogue) must agree with the exhaustive
/// engine everywhere: it verifies every catalog method and rejects every
/// mutant the exhaustive engine rejects. Together the two independent
/// verification paths cross-validate both the catalog and each other.
///
//===----------------------------------------------------------------------===//

#include "commute/ExhaustiveEngine.h"
#include "commute/SymbolicEngine.h"
#include "logic/Dsl.h"
#include "logic/Simplifier.h"
#include "logic/Printer.h"

#include <gtest/gtest.h>

using namespace semcomm;

namespace {
struct SymbolicFixture {
  ExprFactory F;
  Catalog C{F};
  SymbolicEngine Engine{F, /*SeqLenBound=*/3};
};
SymbolicFixture &fixture() {
  static SymbolicFixture Fx;
  return Fx;
}
} // namespace

class SymbolicFamilyVerification : public ::testing::TestWithParam<int> {};

TEST_P(SymbolicFamilyVerification, AllMethodsVerifySymbolically) {
  SymbolicFixture &Fx = fixture();
  const Family &Fam = *allFamilies()[GetParam()];
  for (const TestingMethod &M : generateTestingMethods(Fx.C, Fam)) {
    SymbolicResult R = Fx.Engine.verify(M);
    EXPECT_TRUE(R.Verified)
        << Fam.Name << " " << M.name() << "\n  phi: "
        << printAbstract(M.Entry->get(M.Kind)) << "\n  countermodel: "
        << R.Countermodel;
    EXPECT_GT(R.NumVcs, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, SymbolicFamilyVerification,
                         ::testing::Range(0, 4));

TEST(SymbolicEngineTest, RejectsSetMutant) {
  SymbolicFixture &Fx = fixture();
  Vocab D(Fx.F);
  // Claim (contains; add) always commutes — soundness must fail with a
  // countermodel mentioning the membership atom.
  Catalog &C = Fx.C;
  const ConditionEntry &Real = C.entry(setFamily(), "contains", "add_");
  ConditionEntry Mutant = Real;
  Mutant.Before = Mutant.Between = Mutant.After = D.tru();
  TestingMethod M;
  M.Entry = &Mutant;
  M.Kind = ConditionKind::Before;
  M.Role = MethodRole::Soundness;
  SymbolicResult R = Fx.Engine.verify(M);
  EXPECT_FALSE(R.Verified);
  EXPECT_EQ(R.LastOutcome, SatResult::Sat);
  EXPECT_FALSE(R.Countermodel.empty());
}

TEST(SymbolicEngineTest, RejectsArrayListMutant) {
  SymbolicFixture &Fx = fixture();
  Vocab D(Fx.F);
  const ConditionEntry &Real =
      fixture().C.entry(arrayListFamily(), "add_at", "get");
  ConditionEntry Mutant = Real;
  // "get commutes with add_at whenever the indices differ" — wrong: reads
  // above the insertion point shift.
  Mutant.Before = Mutant.Between = Mutant.After = D.ne(D.I1, D.I2);
  TestingMethod M;
  M.Entry = &Mutant;
  M.Kind = ConditionKind::Before;
  M.Role = MethodRole::Soundness;
  SymbolicResult R = Fx.Engine.verify(M);
  EXPECT_FALSE(R.Verified);
}

TEST(SymbolicEngineTest, RejectsIncompleteMapMutant) {
  SymbolicFixture &Fx = fixture();
  Vocab D(Fx.F);
  const ConditionEntry &Real = Fx.C.entry(mapFamily(), "put_", "put_");
  ConditionEntry Mutant = Real;
  Mutant.Before = Mutant.Between = Mutant.After = D.ne(D.K1, D.K2);
  TestingMethod M;
  M.Entry = &Mutant;
  M.Kind = ConditionKind::Between;
  M.Role = MethodRole::Completeness;
  SymbolicResult R = Fx.Engine.verify(M);
  EXPECT_FALSE(R.Verified);
}

TEST(SymbolicEngineTest, IncrementalSessionReportsReuseStats) {
  SymbolicFixture &Fx = fixture();
  // An ArrayList method has many case splits; the warm session must carry
  // clauses across them.
  for (const TestingMethod &M :
       generateTestingMethods(Fx.C, arrayListFamily())) {
    SymbolicResult R = Fx.Engine.verify(M);
    ASSERT_TRUE(R.Verified) << M.name();
    EXPECT_GT(R.NumVcs, 1u) << M.name();
    EXPECT_GT(R.RetainedClauses, 0u) << M.name();
    EXPECT_GE(R.SatConflicts, R.MaxVcConflicts) << M.name();
    break; // One method suffices; the full sweep runs above.
  }
}

TEST(SymbolicEngineTest, OneShotAndIncrementalModesAgree) {
  // The warm-session optimization must be invisible in the verdicts: both
  // modes verify the full ArrayList suite (the split-heavy family) and
  // reject the same mutants.
  SymbolicFixture &Fx = fixture();
  SymbolicEngine OneShot(Fx.F, /*SeqLenBound=*/2, /*ConflictBudget=*/200000,
                         SolveMode::OneShot);
  SymbolicEngine Incremental(Fx.F, /*SeqLenBound=*/2,
                             /*ConflictBudget=*/200000,
                             SolveMode::Incremental);
  for (const TestingMethod &M :
       generateTestingMethods(Fx.C, arrayListFamily())) {
    SymbolicResult A = OneShot.verify(M);
    SymbolicResult B = Incremental.verify(M);
    EXPECT_EQ(A.Verified, B.Verified) << M.name();
    EXPECT_EQ(A.NumVcs, B.NumVcs) << M.name();
    EXPECT_EQ(A.RetainedClauses, 0u) << M.name();
  }

  Vocab D(Fx.F);
  const ConditionEntry &Real =
      Fx.C.entry(arrayListFamily(), "add_at", "get");
  ConditionEntry Mutant = Real;
  Mutant.Before = Mutant.Between = Mutant.After = D.ne(D.I1, D.I2);
  TestingMethod M;
  M.Entry = &Mutant;
  M.Kind = ConditionKind::Before;
  M.Role = MethodRole::Soundness;
  EXPECT_FALSE(OneShot.verify(M).Verified);
  EXPECT_FALSE(Incremental.verify(M).Verified);
}

TEST(SymbolicEngineTest, EnginesAgreeOnRandomizedWeakenings) {
  // Drop one clause from every multi-clause set/map between condition and
  // confirm both engines give the same verdicts for both roles.
  SymbolicFixture &Fx = fixture();
  ExhaustiveEngine Ex;
  for (const Family *Fam : {&setFamily(), &mapFamily()}) {
    for (const ConditionEntry &E : Fx.C.entries(*Fam)) {
      std::vector<ExprRef> Clauses = collectDisjuncts(E.Between);
      if (Clauses.size() < 2)
        continue;
      std::vector<ExprRef> Dropped(Clauses.begin() + 1, Clauses.end());
      ConditionEntry Mutant = E;
      Mutant.Before = Mutant.Between = Mutant.After =
          Fx.F.disj(std::move(Dropped));
      for (MethodRole Role :
           {MethodRole::Soundness, MethodRole::Completeness}) {
        TestingMethod M;
        M.Entry = &Mutant;
        M.Kind = ConditionKind::Between;
        M.Role = Role;
        bool Symbolic = Fx.Engine.verify(M).Verified;
        bool Exhaustive =
            Ex.verifyCondition(*Fam, E.op1().Name, E.op2().Name,
                               ConditionKind::Between, Role, Mutant.Between)
                .Verified;
        EXPECT_EQ(Symbolic, Exhaustive)
            << Fam->Name << " " << E.pairName() << " "
            << methodRoleName(Role) << " on "
            << printAbstract(Mutant.Between);
      }
    }
  }
}
