//===- tests/ShardedServiceTest.cpp - Sharded verification service tests ----===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
//
// The sharded serving front-end and its two sharing mechanisms: the
// pre-encoded catalog prefix image (byte-identical across independent
// builds, verdict-identical to encode-from-scratch) and the cross-shard
// learned-clause exchange (ownership-validated adoption, deterministic
// at drain boundaries). The load-bearing property: verdicts and the
// combined verdict log are invariant across thread counts and equal to
// the single-session VerifyService reference.
//
//===----------------------------------------------------------------------===//

#include "service/ShardedVerifyService.h"

#include "DriverCore.h"

#include <gtest/gtest.h>

#include <random>

using namespace semcomm;
using namespace semcomm::service;

namespace {

std::vector<const Family *> families(std::vector<std::string> Names) {
  std::string Error;
  std::vector<const Family *> Fams = driver::resolveFamilies(Names, Error);
  EXPECT_TRUE(Error.empty()) << Error;
  return Fams;
}

/// Every (entry, kind) request of the served families, catalog order.
std::vector<ServiceRequest>
allRequests(const Catalog &C, const std::vector<const Family *> &Fams) {
  std::vector<ServiceRequest> Reqs;
  for (const Family *Fam : Fams)
    for (const ConditionEntry &E : C.entries(*Fam))
      for (ConditionKind K : {ConditionKind::Before, ConditionKind::Between,
                              ConditionKind::After})
        Reqs.push_back({Fam->Name, E.op1().Name, E.op2().Name, K});
  return Reqs;
}

std::string keyOf(const ServiceRequest &R) {
  return R.Family + "|" + R.Op1 + "," + R.Op2 + "|" +
         std::string(serviceKindName(R.Kind));
}

// Two independently built factories, catalogs, and warm sessions must
// export byte-identical prefix images: the image is a deterministic
// function of the catalog alone, which is what lets CI pin two separate
// processes' --dump-prefix outputs with cmp.
TEST(ShardedServiceTest, PrefixImageByteIdenticalAcrossIndependentBuilds) {
  std::string First, Second;
  for (std::string *Out : {&First, &Second}) {
    ExprFactory F;
    Catalog C(F);
    ServiceConfig Cfg;
    VerifyService Svc(C, families({"Accumulator", "Set"}), Cfg);
    PrefixImage Img = Svc.exportPrefix();
    ASSERT_FALSE(Img.empty());
    EXPECT_GT(Img.NumVars, 0);
    EXPECT_FALSE(Img.Atoms.empty());
    *Out = Img.serialize();
  }
  ASSERT_FALSE(First.empty());
  EXPECT_EQ(First, Second);
}

// A session that *loads* the prefix image serves the same verdicts, in
// the same order, as the session that encoded the prefix from scratch —
// over the full request universe, twice (the second pass crosses scope
// retirement and re-open epochs).
TEST(ShardedServiceTest, PrefixImportMatchesScratchEncoding) {
  ExprFactory F;
  Catalog C(F);
  std::vector<const Family *> Fams = families({"Accumulator", "Set"});
  ServiceConfig Cfg;
  Cfg.CompactMinDead = 8;

  VerifyService Scratch(C, Fams, Cfg);
  PrefixImage Img = Scratch.exportPrefix();
  ASSERT_FALSE(Img.empty());
  VerifyService Loaded(C, Fams, Cfg, &Scratch.plan(), &Img);
  EXPECT_TRUE(Loaded.stats().Session.PrefixImageLoaded);
  EXPECT_FALSE(Scratch.stats().Session.PrefixImageLoaded);

  std::vector<ServiceRequest> Pass = allRequests(C, Fams);
  std::string Error;
  for (int P = 0; P != 2; ++P) {
    for (const ServiceRequest &R : Pass) {
      ASSERT_TRUE(Scratch.submit(R, Error)) << Error;
      ASSERT_TRUE(Loaded.submit(R, Error)) << Error;
    }
    std::vector<ServiceVerdict> A = Scratch.drain();
    std::vector<ServiceVerdict> B = Loaded.drain();
    ASSERT_EQ(A.size(), B.size());
    for (size_t I = 0; I != A.size(); ++I) {
      EXPECT_EQ(keyOf(A[I].Req), keyOf(B[I].Req)) << "at " << I;
      EXPECT_EQ(A[I].Sound, B[I].Sound) << keyOf(A[I].Req);
      EXPECT_EQ(A[I].Complete, B[I].Complete) << keyOf(A[I].Req);
    }
    ASSERT_TRUE(Loaded.session().solver().reasonInvariantHolds());
  }
}

// The sharded front-end at 1 worker thread and at 8 worker threads must
// produce elementwise-identical verdict logs (the determinism contract),
// identical exchange statistics, and verdict values equal to a
// single-session VerifyService reference — over a randomized stream with
// randomized drain points, with clause sharing on.
TEST(ShardedServiceTest, VerdictsInvariantAcrossThreadCounts) {
  ExprFactory F;
  Catalog C(F);
  std::vector<const Family *> Fams = families({"Accumulator", "Set"});

  ShardedServiceConfig One;
  One.Base.CompactMinDead = 8;
  One.Shards = 4;
  One.Threads = 1;
  ShardedServiceConfig Eight = One;
  Eight.Threads = 8;

  ShardedVerifyService A(C, Fams, One);
  ShardedVerifyService B(C, Fams, Eight);
  VerifyService Ref(C, Fams, One.Base);

  for (unsigned S = 1; S != 4; ++S) {
    EXPECT_TRUE(A.stats().Shards[S].PrefixImported);
    EXPECT_TRUE(B.stats().Shards[S].PrefixImported);
  }
  EXPECT_FALSE(A.stats().Shards[0].PrefixImported);

  std::vector<ServiceRequest> Universe = allRequests(C, Fams);
  std::mt19937 Rng(20110604);
  std::uniform_int_distribution<size_t> Pick(0, Universe.size() - 1);
  std::uniform_int_distribution<int> DrainNow(0, 8);

  std::string Error;
  for (int R = 0; R != 80; ++R) {
    const ServiceRequest &Req = Universe[Pick(Rng)];
    EXPECT_EQ(A.shardOf(Req), B.shardOf(Req));
    ASSERT_TRUE(A.submit(Req, Error)) << Error;
    ASSERT_TRUE(B.submit(Req, Error)) << Error;
    ASSERT_TRUE(Ref.submit(Req, Error)) << Error;
    if (DrainNow(Rng) == 0 || R == 79) {
      std::vector<ServiceVerdict> VA = A.drain();
      std::vector<ServiceVerdict> VB = B.drain();
      std::vector<ServiceVerdict> VR = Ref.drain();
      ASSERT_EQ(VA.size(), VB.size());
      ASSERT_EQ(VA.size(), VR.size());
      // Thread counts: elementwise-identical order and values.
      for (size_t I = 0; I != VA.size(); ++I) {
        ASSERT_EQ(keyOf(VA[I].Req), keyOf(VB[I].Req))
            << "log order divergence at request " << R;
        ASSERT_EQ(VA[I].Sound, VB[I].Sound) << keyOf(VA[I].Req);
        ASSERT_EQ(VA[I].Complete, VB[I].Complete) << keyOf(VA[I].Req);
      }
      // Single-session reference: verdict values as maps (sharded group
      // order differs from the reference's batched order).
      std::map<std::string, std::pair<bool, bool>> MA, MR;
      for (const ServiceVerdict &V : VA)
        MA[keyOf(V.Req)] = {V.Sound, V.Complete};
      for (const ServiceVerdict &V : VR)
        MR[keyOf(V.Req)] = {V.Sound, V.Complete};
      ASSERT_EQ(MA, MR) << "verdict divergence at request " << R;
    }
  }

  ShardedServiceStats SA = A.stats(), SB = B.stats();
  EXPECT_EQ(SA.Requests, SB.Requests);
  EXPECT_EQ(SA.Drains, SB.Drains);
  EXPECT_EQ(SA.Exchange.Published, SB.Exchange.Published);
  EXPECT_EQ(SA.Exchange.Collected, SB.Exchange.Collected);
  for (size_t S = 0; S != 4; ++S) {
    EXPECT_EQ(SA.Shards[S].Stats.Requests, SB.Shards[S].Stats.Requests);
    EXPECT_EQ(SA.Shards[S].ClausesPublished, SB.Shards[S].ClausesPublished);
    EXPECT_EQ(SA.Shards[S].ClausesAdopted, SB.Shards[S].ClausesAdopted);
  }
  // Every shard's solver survives its compacting drains.
  for (size_t S = 0; S != 4; ++S)
    EXPECT_TRUE(B.shard(S).session().solver().reasonInvariantHolds());
}

// The exchange itself: bucket dedup, the per-shard cap, and per-consumer
// cursors that hand each collect exactly the not-yet-seen publications.
TEST(ShardedServiceTest, ClauseExchangeDedupCapAndCursors) {
  ClauseExchangeConfig Cfg;
  Cfg.MaxSize = 3;
  Cfg.MaxGlue = 2;
  Cfg.PerShardCap = 4;
  ClauseExchange Ex(3, Cfg);

  PrefixClause Ok1{{1, 2}, 1};
  PrefixClause Ok2{{-3, 4, 5}, 2};
  PrefixClause TooBig{{1, 2, 3, 4}, 1};
  PrefixClause TooGlued{{6, 7}, 3};
  Ex.publish(0, {Ok1, Ok2, TooBig, TooGlued, Ok1 /* duplicate */});
  ClauseExchangeStats S = Ex.stats();
  EXPECT_EQ(S.Published, 2u);
  EXPECT_EQ(S.Dropped, 3u);

  // Shard 1 collects both; a re-collect sees nothing new.
  std::vector<PrefixClause> Got = Ex.collectFor(1);
  ASSERT_EQ(Got.size(), 2u);
  EXPECT_EQ(Got[0].Lits, Ok1.Lits);
  EXPECT_EQ(Got[1].Lits, Ok2.Lits);
  EXPECT_TRUE(Ex.collectFor(1).empty());
  // Shard 2's cursor is independent.
  EXPECT_EQ(Ex.collectFor(2).size(), 2u);
  // A shard never collects its own bucket.
  EXPECT_TRUE(Ex.collectFor(0).empty());

  // The cap: two more fill the bucket, the next is dropped.
  Ex.publish(0, {{{8}, 1}, {{9}, 1}, {{10}, 1}});
  S = Ex.stats();
  EXPECT_EQ(S.Published, 4u);
  EXPECT_EQ(S.Dropped, 4u);
  EXPECT_EQ(Ex.collectFor(1).size(), 2u);
}

// Adoption validates variable ownership: a clause mentioning a variable
// outside the shared prefix (or malformed) is refused, never installed.
TEST(ShardedServiceTest, LearnedImportValidatesOwnership) {
  ExprFactory F;
  Catalog C(F);
  // Accumulator alone has an empty catalog-common prefix (nothing shared
  // across its pairs); Set contributes the prefix whose variables the
  // ownership filter guards.
  std::vector<const Family *> Fams = families({"Accumulator", "Set"});

  ShardedServiceConfig Cfg;
  Cfg.Shards = 2;
  ShardedVerifyService Svc(C, Fams, Cfg);

  SmtSession &S1 = Svc.shard(1).session();
  int PV = S1.prefixVars();
  ASSERT_GT(PV, 0);

  // A variable past the prefix watermark is not prefix-owned.
  EXPECT_EQ(S1.importLearnedPrefixClauses({{{PV + 5, 1}, 1}}), 0u);
  // Variable index 0 is invalid.
  EXPECT_EQ(S1.importLearnedPrefixClauses({{{0}, 1}}), 0u);
  // A tautology over prefix variables is refused by the solver.
  EXPECT_EQ(S1.importLearnedPrefixClauses({{{1, -1}, 1}}), 0u);
}

// The sharded snapshot round-trips through its textual form, restores
// the combined log and counters, and a front-end whose shard count or
// routing differs refuses the image with an error naming the field.
TEST(ShardedServiceTest, SnapshotRoundTripAndConfigMismatch) {
  ExprFactory F;
  Catalog C(F);
  std::vector<const Family *> Fams = families({"Accumulator"});

  ShardedServiceConfig Cfg;
  Cfg.Shards = 2;
  ShardedVerifyService Svc(C, Fams, Cfg);

  std::vector<ServiceRequest> Pass = allRequests(C, Fams);
  std::string Error;
  for (const ServiceRequest &R : Pass)
    ASSERT_TRUE(Svc.submit(R, Error)) << Error;
  for (const ServiceVerdict &V : Svc.drain())
    EXPECT_TRUE(V.verified()) << keyOf(V.Req);

  json::Value Image = Svc.snapshot();
  std::optional<json::Value> Parsed = json::Value::parse(Image.dump(2));
  ASSERT_TRUE(Parsed.has_value());

  ShardedVerifyService Fresh(C, Fams, Cfg);
  ASSERT_TRUE(Fresh.restore(*Parsed, Error)) << Error;
  ASSERT_EQ(Fresh.log().size(), Svc.log().size());
  for (size_t I = 0; I != Fresh.log().size(); ++I) {
    EXPECT_EQ(keyOf(Fresh.log()[I].Req), keyOf(Svc.log()[I].Req));
    EXPECT_EQ(Fresh.log()[I].Sound, Svc.log()[I].Sound);
    EXPECT_EQ(Fresh.log()[I].Complete, Svc.log()[I].Complete);
  }
  EXPECT_EQ(Fresh.stats().Requests, Svc.stats().Requests);

  // The restored front-end keeps serving with the same verdicts.
  ASSERT_TRUE(Fresh.submit(Pass.front(), Error)) << Error;
  std::vector<ServiceVerdict> More = Fresh.drain();
  ASSERT_EQ(More.size(), 1u);
  EXPECT_TRUE(More.front().verified());

  ShardedServiceConfig FewerShards = Cfg;
  FewerShards.Shards = 3;
  ShardedVerifyService Mismatched(C, Fams, FewerShards);
  EXPECT_FALSE(Mismatched.restore(*Parsed, Error));
  EXPECT_NE(Error.find("shards"), std::string::npos) << Error;

  ShardedServiceConfig OtherRoute = Cfg;
  OtherRoute.Route = RouteBy::Family;
  ShardedVerifyService Rerouted(C, Fams, OtherRoute);
  EXPECT_FALSE(Rerouted.restore(*Parsed, Error));
  EXPECT_NE(Error.find("route"), std::string::npos) << Error;
}

// Certify mode still works shard-locally: clause sharing is forced off,
// every shard logs its own DRAT trace, and the folded summary accepts.
TEST(ShardedServiceTest, PerShardCertificationStillPasses) {
  ExprFactory F;
  Catalog C(F);
  std::vector<const Family *> Fams = families({"Accumulator"});

  ShardedServiceConfig Cfg;
  Cfg.Base.Certify = true;
  Cfg.Base.CompactMinDead = 4;
  Cfg.Shards = 2;
  ShardedVerifyService Svc(C, Fams, Cfg);
  ASSERT_TRUE(Svc.certifying());

  std::vector<ServiceRequest> Pass = allRequests(C, Fams);
  std::string Error;
  for (int P = 0; P != 2; ++P) {
    for (const ServiceRequest &R : Pass)
      ASSERT_TRUE(Svc.submit(R, Error)) << Error;
    for (const ServiceVerdict &V : Svc.drain())
      EXPECT_TRUE(V.verified()) << keyOf(V.Req);
  }

  proof::CertifySummary Cert = Svc.finishCertification();
  EXPECT_TRUE(Cert.Checked);
  EXPECT_TRUE(Cert.Ok) << Cert.Error;
  EXPECT_GT(Cert.Queries, 0u);
  EXPECT_EQ(Cert.Queries, Cert.QueriesPassed);
  // Sharing is disabled under certification: no foreign clauses entered.
  EXPECT_EQ(Svc.stats().Exchange.Published, 0u);
}

} // namespace
