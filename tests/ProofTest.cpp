//===- tests/ProofTest.cpp - proof trace + checker + certification tests ---===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the certification tentpole in three layers:
///
///  * ProofChecker unit tests over hand-built traces (acceptance and the
///    persistent-root-propagation completeness case);
///  * rejection tests: corrupted, truncated, and permuted proofs — and a
///    "mutated solver" that skips one deletion record — must all fail
///    certification, pinning down that the checker is not a rubber stamp;
///  * solver-integrated certification: warm SmtSessions and the symbolic
///    engines certify real catalog slices through reduceDb, scope
///    retirement, and variable recycling, and the checked verdicts agree
///    with the uncertified run.
///
//===----------------------------------------------------------------------===//

#include "commute/Condition.h"
#include "commute/SymbolicEngine.h"
#include "inverse/InverseSpec.h"
#include "inverse/SymbolicInverseEngine.h"
#include "logic/ExprFactory.h"
#include "proof/ProofChecker.h"
#include "proof/ProofTrace.h"
#include "smt/SmtSolver.h"
#include "spec/Family.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace semcomm;
using namespace semcomm::proof;

//===----------------------------------------------------------------------===//
// ProofTrace serialization
//===----------------------------------------------------------------------===//

namespace {

ProofTrace sampleTrace() {
  ProofTrace T;
  T.addInput({1, 2});
  T.addInput({-1, 2});
  T.addDerive({2});
  T.setTag("unit test");
  T.addQuery({-2}, 2);
  T.addDelete({1, 2});
  T.addRecycle(3);
  return T;
}

} // namespace

TEST(ProofTraceTest, SerializeParseRoundtrip) {
  ProofTrace T = sampleTrace();
  std::string Text = T.serialize();
  std::optional<ProofTrace> P = ProofTrace::parse(Text);
  ASSERT_TRUE(P.has_value());
  ASSERT_EQ(P->size(), T.size());
  for (size_t I = 0; I != T.size(); ++I) {
    EXPECT_EQ(P->steps()[I].Kind, T.steps()[I].Kind) << "step " << I;
    EXPECT_EQ(P->steps()[I].Lits, T.steps()[I].Lits) << "step " << I;
    EXPECT_EQ(P->steps()[I].Var, T.steps()[I].Var) << "step " << I;
    EXPECT_EQ(P->steps()[I].LiveClauses, T.steps()[I].LiveClauses)
        << "step " << I;
    EXPECT_EQ(P->steps()[I].Tag, T.steps()[I].Tag) << "step " << I;
  }
  // Tags are one token: the space was folded at setTag time.
  EXPECT_EQ(T.steps()[3].Tag, "unit_test");
}

TEST(ProofTraceTest, TruncatedTextFailsToParse) {
  std::string Text = sampleTrace().serialize();
  // Drop the last line. The header's step count makes this a parse error
  // instead of a silently shorter proof.
  size_t LastNl = Text.find_last_of('\n', Text.size() - 2);
  ASSERT_NE(LastNl, std::string::npos);
  EXPECT_FALSE(ProofTrace::parse(Text.substr(0, LastNl + 1)).has_value());
  // Garbage prefix and empty text fail too.
  EXPECT_FALSE(ProofTrace::parse("").has_value());
  EXPECT_FALSE(ProofTrace::parse("c not a proof\n" + Text).has_value());
}

//===----------------------------------------------------------------------===//
// ProofChecker acceptance
//===----------------------------------------------------------------------===//

TEST(ProofCheckerTest, AcceptsResolutionDerivation) {
  ProofTrace T;
  T.addInput({1, 2});
  T.addInput({-1, 2});
  T.addDerive({2}); // RUP: assume -2, both inputs force a conflict on 1.
  T.setTag("q0");
  T.addQuery({-2}, 2); // Core -2 conflicts with the derived unit 2.
  ProofChecker C;
  CheckResult R = C.check(T);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.QueriesChecked, 1u);
  EXPECT_EQ(R.QueriesPassed, 1u);
  ASSERT_EQ(R.Queries.size(), 1u);
  EXPECT_EQ(R.Queries[0].Tag, "q0");
}

TEST(ProofCheckerTest, PersistentRootStateReachesLaterQueries) {
  // The unit consequences of early inputs must persist: the query's core
  // alone does not conflict without first propagating 1 -> 2 -> 3.
  ProofTrace T;
  T.addInput({1});
  T.addInput({-1, 2});
  T.addInput({-2, 3});
  T.setTag("chained");
  T.addQuery({-3}, 2);
  ProofChecker C;
  CheckResult R = C.check(T);
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.QueriesPassed, 1u);
}

TEST(ProofCheckerTest, DeletionShrinksStateBeforeLaterSteps) {
  // After deleting {-1, 2} the derived unit {2} must no longer be RUP —
  // the checker has to rebuild its root fixpoint, not reuse stale
  // propagation.
  ProofTrace T;
  T.addInput({1, 2});
  T.addInput({-1, 2});
  T.addDelete({-1, 2});
  T.addDerive({2});
  ProofChecker C;
  CheckResult R = C.check(T);
  EXPECT_FALSE(R.Ok);
  EXPECT_FALSE(R.Error.empty());
}

//===----------------------------------------------------------------------===//
// ProofChecker rejection
//===----------------------------------------------------------------------===//

TEST(ProofCheckerTest, RejectsNonRupDerivation) {
  // A "learned" clause nothing entails (a corrupted literal).
  ProofTrace T;
  T.addInput({1, 2});
  T.addDerive({3});
  ProofChecker C;
  CheckResult R = C.check(T);
  EXPECT_FALSE(R.Ok);
}

TEST(ProofCheckerTest, RejectsDeletionOfUnknownClause) {
  ProofTrace T;
  T.addInput({1, 2});
  T.addDelete({1, 3});
  ProofChecker C;
  CheckResult R = C.check(T);
  EXPECT_FALSE(R.Ok);
}

TEST(ProofCheckerTest, RejectsRecycleOfLiveVariable) {
  ProofTrace T;
  T.addInput({1, 2});
  T.addRecycle(1); // DIMACS variable 1, still in a live clause.
  ProofChecker C;
  CheckResult R = C.check(T);
  EXPECT_FALSE(R.Ok);
}

TEST(ProofCheckerTest, RejectsQueryWithWrongLiveCount) {
  ProofTrace T;
  T.addInput({1, 2});
  T.addInput({-1, 2});
  T.addDerive({2});
  T.addQuery({-2}, 7); // Solver claims 7 live clauses; checker holds 2.
  ProofChecker C;
  CheckResult R = C.check(T);
  EXPECT_FALSE(R.Ok);
}

TEST(ProofCheckerTest, FailedQueryRupIsRecordedPerTag) {
  // A core that does not conflict is a per-query failure, not a fatal
  // trace error: later queries still check.
  ProofTrace T;
  T.addInput({1, 2});
  T.addInput({-1, 2});
  T.setTag("bogus");
  T.addQuery({3}, 2); // Nothing constrains 3.
  T.addDerive({2});
  T.setTag("good");
  T.addQuery({-2}, 2);
  ProofChecker C;
  CheckResult R = C.check(T);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Error.empty()) << R.Error; // No fatal error.
  EXPECT_EQ(R.QueriesChecked, 2u);
  EXPECT_EQ(R.QueriesPassed, 1u);
  ASSERT_EQ(R.Queries.size(), 2u);
  EXPECT_FALSE(R.Queries[0].Passed);
  EXPECT_TRUE(R.Queries[1].Passed);

  CertifySummary S;
  S.fold(R);
  EXPECT_FALSE(S.allPassed({"bogus"}));
  EXPECT_TRUE(S.allPassed({"good"}));
  EXPECT_FALSE(S.allPassed({"good", "missing"}));
}

//===----------------------------------------------------------------------===//
// Solver-integrated certification
//===----------------------------------------------------------------------===//

namespace {

/// A certifying warm session over a few boolean pigeonhole-ish checks,
/// returning the finished summary. \p Budget forces clause-GC when small.
const CertifySummary &runCertifiedSession(SmtSession &S, ExprFactory &F) {
  S.enableCertification();
  ExprRef A = F.var("a", Sort::Bool);
  ExprRef B = F.var("b", Sort::Bool);
  ExprRef Cv = F.var("c", Sort::Bool);
  S.assertBase(F.implies(A, B));
  S.assertBase(F.implies(B, Cv));
  S.setProofTag("q one");
  EXPECT_EQ(S.check({A, F.lnot(Cv)}), SatResult::Unsat);
  S.setProofTag("q2");
  EXPECT_EQ(S.check({A}), SatResult::Sat); // Sat checks emit no Query.
  S.setProofTag("q3");
  EXPECT_EQ(S.check({F.lnot(A), A}), SatResult::Unsat);
  return S.finishCertification();
}

} // namespace

TEST(CertifiedSessionTest, WarmSessionQueriesAllPass) {
  ExprFactory F;
  SmtSession S(F);
  const CertifySummary &Sum = runCertifiedSession(S, F);
  EXPECT_TRUE(Sum.Checked);
  EXPECT_TRUE(Sum.Ok) << Sum.Error;
  EXPECT_EQ(Sum.Queries, 2u); // Only the Unsat verdicts certify.
  EXPECT_EQ(Sum.QueriesPassed, 2u);
  // Tags arrived space-folded, one per Unsat check.
  EXPECT_TRUE(Sum.allPassed({"q_one", "q3"}));
  EXPECT_FALSE(Sum.allPassed({"q2"})); // Sat check never logged a query.
  // Idempotent: a second finish returns the same summary.
  EXPECT_EQ(S.finishCertification().Queries, 2u);
}

TEST(CertifiedSessionTest, ScopeRetirementKeepsTraceCheckable) {
  // Assert-and-retire under selector scopes: the retirement's deletion
  // sweep (and the pre-retirement root-trail dump) must leave a trace the
  // independent checker accepts, and queries before AND after the
  // retirement must certify.
  ExprFactory F;
  SmtSession S(F);
  S.enableCertification();
  ExprRef X = F.var("x", Sort::Bool);
  ExprRef Y = F.var("y", Sort::Bool);
  S.assertBase(F.implies(X, Y));

  ExprRef Sel = F.var("__sel_scope1", Sort::Bool);
  SmtSession::ScopeId Scope =
      S.openScope(Sel, SmtSession::RootScope, /*OwnLayer=*/true);
  S.assertInScope(Scope, F.lnot(Y));
  S.setProofTag("scoped");
  EXPECT_EQ(S.check({Sel, X}, /*MaxConflicts=*/-1, {Sel}), SatResult::Unsat);

  S.retireScope(Scope);

  S.setProofTag("after-retire");
  EXPECT_EQ(S.check({X, F.lnot(Y)}), SatResult::Unsat);

  const CertifySummary &Sum = S.finishCertification();
  EXPECT_TRUE(Sum.Checked);
  EXPECT_TRUE(Sum.Ok) << Sum.Error;
  EXPECT_TRUE(Sum.allPassed({"scoped", "after-retire"}));
}

TEST(CertifiedSessionTest, MutatedTraceSkippingOneDeletionFails) {
  // The "lying solver" case: drop a single Delete step from an otherwise
  // honest trace. The checker must notice — either through the RUP break,
  // the recycle liveness check, or the Query live-count cross-check.
  ExprFactory F;
  SmtSession S(F);
  S.enableCertification();
  ExprRef X = F.var("x", Sort::Bool);
  ExprRef Y = F.var("y", Sort::Bool);
  S.assertBase(F.implies(X, Y));
  ExprRef Sel = F.var("__sel_mut", Sort::Bool);
  SmtSession::ScopeId Scope =
      S.openScope(Sel, SmtSession::RootScope, /*OwnLayer=*/true);
  S.assertInScope(Scope, F.lnot(Y));
  S.setProofTag("pre");
  EXPECT_EQ(S.check({Sel, X}, -1, {Sel}), SatResult::Unsat);
  S.retireScope(Scope); // Emits Delete (and possibly Recycle) steps.
  S.setProofTag("post");
  EXPECT_EQ(S.check({X, F.lnot(Y)}), SatResult::Unsat);

  ASSERT_NE(S.proofTrace(), nullptr);
  // Honest trace passes.
  {
    ProofTrace Honest = *S.proofTrace();
    ProofChecker C;
    CheckResult R = C.check(Honest);
    EXPECT_TRUE(R.Ok) << R.Error;
  }
  // Mutated trace: erase the first Delete step.
  ProofTrace Mutated = *S.proofTrace();
  auto &Steps = Mutated.mutableSteps();
  auto It = std::find_if(Steps.begin(), Steps.end(), [](const Step &St) {
    return St.Kind == StepKind::Delete;
  });
  ASSERT_NE(It, Steps.end()) << "retirement emitted no deletions";
  Steps.erase(It);
  ProofChecker C;
  CheckResult R = C.check(Mutated);
  EXPECT_FALSE(R.Ok) << "checker accepted a trace with a skipped deletion";
}

TEST(CertifiedSessionTest, PermutedTraceFails) {
  // Move the first Delete step in front of the whole trace: it now deletes
  // a clause the checker does not hold yet, so the replay must reject the
  // reordering. A retired scope guarantees Delete steps exist.
  ExprFactory F;
  SmtSession S(F);
  S.enableCertification();
  ExprRef A = F.var("a", Sort::Bool);
  ExprRef B = F.var("b", Sort::Bool);
  S.assertBase(F.implies(A, B));
  ExprRef Sel = F.var("__sel_perm", Sort::Bool);
  SmtSession::ScopeId Scope =
      S.openScope(Sel, SmtSession::RootScope, /*OwnLayer=*/true);
  S.assertInScope(Scope, F.lnot(B));
  S.setProofTag("q");
  EXPECT_EQ(S.check({Sel, A}, -1, {Sel}), SatResult::Unsat);
  S.retireScope(Scope);

  ASSERT_NE(S.proofTrace(), nullptr);
  ProofTrace Mutated = *S.proofTrace();
  auto &Steps = Mutated.mutableSteps();
  auto It = std::find_if(Steps.begin(), Steps.end(), [](const Step &St) {
    return St.Kind == StepKind::Delete;
  });
  ASSERT_NE(It, Steps.end()) << "retirement emitted no deletions";
  Step Moved = *It;
  Steps.erase(It);
  Steps.insert(Steps.begin(), Moved);
  ProofChecker C;
  CheckResult R = C.check(Mutated);
  EXPECT_FALSE(R.Ok) << "checker accepted a permuted trace";
}

TEST(CertifiedSessionTest, CorruptedCoreFailsItsQueryOnly) {
  // Corrupt one Query's core (replace it with a fresh, unconstrained
  // variable): that query must fail while the rest of the trace checks.
  ExprFactory F;
  SmtSession S(F);
  S.enableCertification();
  ExprRef A = F.var("a", Sort::Bool);
  ExprRef B = F.var("b", Sort::Bool);
  S.assertBase(F.implies(A, B));
  S.setProofTag("target");
  EXPECT_EQ(S.check({A, F.lnot(B)}), SatResult::Unsat);

  ProofTrace Mutated = *S.proofTrace();
  bool Corrupted = false;
  int MaxVar = 0;
  for (const Step &St : Mutated.steps())
    for (int L : St.Lits)
      MaxVar = std::max(MaxVar, std::abs(L));
  for (Step &St : Mutated.mutableSteps())
    if (St.Kind == StepKind::Query && St.Tag == "target") {
      St.Lits = {MaxVar + 1}; // Unconstrained fresh variable.
      Corrupted = true;
    }
  ASSERT_TRUE(Corrupted);
  ProofChecker C;
  CheckResult R = C.check(Mutated);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Error.empty()) << R.Error; // Query failure, not fatal.
  CertifySummary Sum;
  Sum.fold(R);
  EXPECT_FALSE(Sum.allPassed({"target"}));
}

//===----------------------------------------------------------------------===//
// Engine-level certification
//===----------------------------------------------------------------------===//

TEST(CertifiedEngineTest, SharedPairCertifiesAnEntry) {
  ExprFactory F;
  Catalog C(F);
  const Family &Set = setFamily();
  const ConditionEntry &E = C.entry(Set, "add", "contains");
  SymbolicEngine Eng(F, /*SeqLenBound=*/3, /*ConflictBudget=*/200000,
                     SolveMode::SharedPair);
  Eng.setCertify(true);
  PairOutcome O = Eng.verifyPair(E);
  EXPECT_TRUE(O.Certified);
  EXPECT_GT(O.ProofQueries, 0u);
  EXPECT_GT(O.ProofSteps, 0u);
  for (const SymbolicResult &R : O.Methods) {
    EXPECT_TRUE(R.Verified);
    EXPECT_TRUE(R.ProofChecked);
    EXPECT_EQ(R.ProofQueries, R.ProofQueryTags.size());
    EXPECT_GT(R.ProofClauses, 0u);
  }
}

TEST(CertifiedEngineTest, CatalogSessionCertifiesThroughRetireAndRecycle) {
  // Two families through one certifying catalog session: family and pair
  // subtree retirements, variable recycling, and (with a tiny GC budget)
  // clause-DB reductions all land in one trace that must check out.
  ExprFactory F;
  Catalog C(F);
  SymbolicEngine Eng(F, /*SeqLenBound=*/2, /*ConflictBudget=*/200000,
                     SolveMode::SharedCatalog);
  Eng.setCertify(true);
  Eng.setClauseGcBudget(50); // Aggressive reduction exercises Delete steps.
  std::vector<const Family *> Fams = {&accumulatorFamily(), &setFamily()};
  CatalogOutcome O = Eng.verifyCatalog(C, Fams);
  EXPECT_EQ(O.failures(), 0u);
  EXPECT_TRUE(O.Certified);
  EXPECT_GT(O.ProofQueries, 0u);
  EXPECT_GT(O.Stats.RecycledVars, 0u); // Recycle steps were in the trace.
  for (const FamilyOutcome &FO : O.Families) {
    EXPECT_TRUE(FO.Certified);
    for (const PairOutcome &PO : FO.Pairs)
      for (const SymbolicResult &R : PO.Methods) {
        EXPECT_TRUE(R.ProofChecked)
            << FO.Family << ": a method's certificate failed";
        EXPECT_EQ(R.ProofQueries, R.ProofQueryTags.size());
      }
  }
}

TEST(CertifiedEngineTest, CertifyAgreesWithUncertifiedVerdicts) {
  ExprFactory F1;
  Catalog C1(F1);
  SymbolicEngine Plain(F1, 2, 200000, SolveMode::SharedCatalog);
  std::vector<const Family *> Fams1 = {&accumulatorFamily(), &setFamily()};
  CatalogOutcome A = Plain.verifyCatalog(C1, Fams1);

  ExprFactory F2;
  Catalog C2(F2);
  SymbolicEngine Certified(F2, 2, 200000, SolveMode::SharedCatalog);
  Certified.setCertify(true);
  std::vector<const Family *> Fams2 = {&accumulatorFamily(), &setFamily()};
  CatalogOutcome B = Certified.verifyCatalog(C2, Fams2);

  ASSERT_EQ(A.Families.size(), B.Families.size());
  for (size_t FI = 0; FI != A.Families.size(); ++FI) {
    ASSERT_EQ(A.Families[FI].Pairs.size(), B.Families[FI].Pairs.size());
    for (size_t PI = 0; PI != A.Families[FI].Pairs.size(); ++PI) {
      const PairOutcome &PA = A.Families[FI].Pairs[PI];
      const PairOutcome &PB = B.Families[FI].Pairs[PI];
      ASSERT_EQ(PA.Methods.size(), PB.Methods.size());
      for (size_t MI = 0; MI != PA.Methods.size(); ++MI)
        EXPECT_EQ(PA.Methods[MI].Verified, PB.Methods[MI].Verified);
    }
  }
  EXPECT_FALSE(A.Certified);
  EXPECT_TRUE(B.Certified);
}

TEST(CertifiedEngineTest, InversePathCertifies) {
  ExprFactory F;
  for (const InverseSpec &Spec : buildInverseSpecs()) {
    SymbolicResult R = verifyInverseSymbolic(F, Spec, /*SeqLenBound=*/2,
                                             /*ConflictBudget=*/200000,
                                             SolveMode::SharedPair,
                                             /*Certify=*/true);
    EXPECT_TRUE(R.Verified) << Spec.OpName;
    EXPECT_TRUE(R.ProofChecked) << Spec.OpName;
    EXPECT_EQ(R.ProofQueries, R.ProofQueryTags.size());
  }
}
