//===- tests/HintsTest.cpp - Proof-hint script tests ------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "commute/ProofHints.h"
#include "commute/SymbolicEngine.h"
#include "logic/Dsl.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace semcomm;

namespace {
struct HintsFixture {
  ExprFactory F;
  Catalog C{F};
  std::vector<HintScript> Scripts = buildArrayListHintScripts(F);
};
HintsFixture &fixture() {
  static HintsFixture Fx;
  return Fx;
}
} // namespace

TEST(HintsTest, Table59Counts) {
  HintSummary S = summarizeHints(fixture().Scripts);
  // Table 5.9: 128 note + 51 assuming + 22 pickWitness = 201 commands
  // across the 57 remaining methods (§5.2.1: 12 + 8 + 20 + 17).
  EXPECT_EQ(S.Methods, 57u);
  EXPECT_EQ(S.MethodsByCategory[1], 12u);
  EXPECT_EQ(S.MethodsByCategory[2], 8u);
  EXPECT_EQ(S.MethodsByCategory[3], 20u);
  EXPECT_EQ(S.MethodsByCategory[4], 17u);
  EXPECT_EQ(S.Notes, 128u);
  EXPECT_EQ(S.Assumings, 51u);
  EXPECT_EQ(S.PickWitnesses, 22u);
  EXPECT_EQ(S.Notes + S.Assumings + S.PickWitnesses, 201u);
}

TEST(HintsTest, EveryScriptTargetsADistinctArrayListMethod) {
  HintsFixture &Fx = fixture();
  std::vector<TestingMethod> Methods =
      generateTestingMethods(Fx.C, arrayListFamily());
  std::set<std::string> Matched;
  for (const HintScript &S : Fx.Scripts) {
    int Hits = 0;
    for (const TestingMethod &M : Methods)
      if (S.matches(M)) {
        ++Hits;
        Matched.insert(M.name());
      }
    EXPECT_EQ(Hits, 1) << S.Op1Name << "," << S.Op2Name;
  }
  EXPECT_EQ(Matched.size(), 57u);
}

// "Integrated reasoning": every command's formula is machine-validated.
class ScriptValidation : public ::testing::TestWithParam<int> {};

TEST_P(ScriptValidation, ScriptIsValid) {
  HintsFixture &Fx = fixture();
  // Chunk the 57 scripts into 8 shards to keep test granularity useful.
  size_t Shard = GetParam();
  for (size_t I = Shard; I < Fx.Scripts.size(); I += 8) {
    const HintScript &S = Fx.Scripts[I];
    HintValidation V = validateScript(S, Fx.C);
    EXPECT_TRUE(V.Ok) << S.Op1Name << "," << S.Op2Name << " "
                      << conditionKindName(S.Kind) << " "
                      << methodRoleName(S.Role) << ": " << V.FailureNote;
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, ScriptValidation, ::testing::Range(0, 8));

TEST(HintsTest, EveryCommandCarriesADistinctLabel) {
  HintsFixture &Fx = fixture();
  std::set<std::string> Labels;
  size_t Commands = 0;
  for (const HintScript &S : Fx.Scripts)
    for (const HintCommand &C : S.Commands) {
      EXPECT_EQ(C.Label.rfind("hint:", 0), 0u) << C.Comment;
      Labels.insert(C.Label);
      ++Commands;
    }
  EXPECT_EQ(Labels.size(), Commands); // 201 distinct labels.
}

TEST(HintsTest, MinimizedForDropsUnusedLemmasAndKeepsCaseStructure) {
  HintsFixture &Fx = fixture();
  const HintScript &S = Fx.Scripts.front(); // Category 1: has all kinds.
  ASSERT_GE(S.Commands.size(), 3u);

  // Keep exactly one note's label: the minimized script retains that note
  // plus every assuming command, drops the other lemmas, and still
  // machine-validates (dropping commands can never invalidate a script).
  std::string Kept;
  for (const HintCommand &C : S.Commands)
    if (C.Kind == HintCommandKind::Note) {
      Kept = C.Label;
      break;
    }
  ASSERT_FALSE(Kept.empty());
  HintScript Min = minimizedFor(S, {Kept, "sel:unrelated", "phi"});

  size_t Assumings = 0, Notes = 0, Witnesses = 0;
  for (const HintCommand &C : Min.Commands)
    switch (C.Kind) {
    case HintCommandKind::Assuming:
      ++Assumings;
      break;
    case HintCommandKind::Note:
      EXPECT_EQ(C.Label, Kept);
      ++Notes;
      break;
    case HintCommandKind::PickWitness:
      ++Witnesses;
      break;
    }
  size_t OrigAssumings = 0;
  for (const HintCommand &C : S.Commands)
    OrigAssumings += C.Kind == HintCommandKind::Assuming;
  EXPECT_EQ(Assumings, OrigAssumings);
  EXPECT_EQ(Notes, 1u);
  EXPECT_EQ(Witnesses, 0u);
  EXPECT_LT(Min.Commands.size(), S.Commands.size());

  HintValidation V = validateScript(Min, Fx.C);
  EXPECT_TRUE(V.Ok) << V.FailureNote;

  // An empty core drops every lemma; the case skeleton survives.
  HintScript Bare = minimizedFor(S, {});
  EXPECT_EQ(Bare.Commands.size(), OrigAssumings);
}

TEST(HintsTest, AttachedHintLabelsFlowIntoCoresAndShrunkenHintsVerify) {
  // The full §5.2.1 loop, automated: attach the scripts to the symbolic
  // engine, record which hint lemmas the proofs' unsat cores actually
  // used, minimize each script to that label set, and re-verify with only
  // the shrunken hints attached. At bounded scopes the minimized cores
  // typically name *no* hint lemmas — the fully expanded VCs carry the
  // content the paper's hand-written hints supplied to the unbounded
  // prover — so this is the minimization verdict at its strongest: the
  // scripts shrink to their case skeletons and everything still verifies.
  HintsFixture &Fx = fixture();
  SymbolicEngine Eng(Fx.F, /*SeqLenBound=*/2, /*ConflictBudget=*/200000,
                     SolveMode::SharedPair);
  Eng.attachHints(&Fx.Scripts);

  // A category-1 pair: soundness of add_at x indexOf needs real reasoning,
  // and its script carries several lemmas.
  const ConditionEntry &E = Fx.C.entry(arrayListFamily(), "add_at",
                                       "indexOf");
  PairOutcome WithHints = Eng.verifyPair(E);
  EXPECT_EQ(WithHints.failures(), 0u);

  // Collect the hint labels the pair's cores used.
  std::vector<std::string> CoreLabels;
  for (const SymbolicResult &R : WithHints.Methods)
    for (const std::string &L : R.CoreLabels)
      CoreLabels.push_back(L);

  // Minimize every script of this pair against the recorded cores; the
  // shrunken scripts still machine-validate and, re-attached, the pair
  // still verifies with identical verdicts.
  std::vector<HintScript> Shrunk;
  for (const HintScript &S : Fx.Scripts) {
    if (S.Op1Name != "add_at" || S.Op2Name != "indexOf")
      continue;
    HintScript Min = minimizedFor(S, CoreLabels);
    EXPECT_LE(Min.Commands.size(), S.Commands.size());
    HintValidation V = validateScript(Min, Fx.C);
    EXPECT_TRUE(V.Ok) << V.FailureNote;
    Shrunk.push_back(std::move(Min));
  }
  EXPECT_FALSE(Shrunk.empty());

  SymbolicEngine Rerun(Fx.F, /*SeqLenBound=*/2, /*ConflictBudget=*/200000,
                       SolveMode::SharedPair);
  Rerun.attachHints(&Shrunk);
  PairOutcome WithShrunk = Rerun.verifyPair(E);
  ASSERT_EQ(WithShrunk.Methods.size(), WithHints.Methods.size());
  for (size_t I = 0; I != WithHints.Methods.size(); ++I)
    EXPECT_EQ(WithShrunk.Methods[I].Verified,
              WithHints.Methods[I].Verified)
        << I;

  // And hints never change a verdict: the no-hints engine agrees.
  SymbolicEngine Plain(Fx.F, /*SeqLenBound=*/2, /*ConflictBudget=*/200000,
                       SolveMode::SharedPair);
  PairOutcome NoHints = Plain.verifyPair(E);
  for (size_t I = 0; I != WithHints.Methods.size(); ++I)
    EXPECT_EQ(NoHints.Methods[I].Verified, WithHints.Methods[I].Verified)
        << I;
}

TEST(HintsTest, CorruptedNoteIsRejected) {
  HintsFixture &Fx = fixture();
  Vocab D(Fx.F);
  HintScript Bad = Fx.Scripts.front();
  // An invalid "lemma": the intermediate state equals the initial state at
  // i1 — false whenever add_at/remove_at actually shifts something.
  Bad.Commands.push_back(HintCommand{
      HintCommandKind::Note,
      D.eq(D.at(D.S2, D.I1), D.at(D.S1, D.I1)), "", "bogus lemma", ""});
  HintValidation V = validateScript(Bad, Fx.C);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.FailureNote.find("note"), std::string::npos);
}

TEST(HintsTest, VacuousAssumingIsRejected) {
  HintsFixture &Fx = fixture();
  Vocab D(Fx.F);
  HintScript Bad = Fx.Scripts.front();
  Bad.Commands.push_back(HintCommand{HintCommandKind::Assuming,
                                     D.lt(D.I1, D.c(0)), "",
                                     "impossible case", ""});
  HintValidation V = validateScript(Bad, Fx.C);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.FailureNote.find("vacuous"), std::string::npos);
}
