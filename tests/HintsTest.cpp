//===- tests/HintsTest.cpp - Proof-hint script tests ------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "commute/ProofHints.h"
#include "logic/Dsl.h"

#include <gtest/gtest.h>

#include <set>

using namespace semcomm;

namespace {
struct HintsFixture {
  ExprFactory F;
  Catalog C{F};
  std::vector<HintScript> Scripts = buildArrayListHintScripts(F);
};
HintsFixture &fixture() {
  static HintsFixture Fx;
  return Fx;
}
} // namespace

TEST(HintsTest, Table59Counts) {
  HintSummary S = summarizeHints(fixture().Scripts);
  // Table 5.9: 128 note + 51 assuming + 22 pickWitness = 201 commands
  // across the 57 remaining methods (§5.2.1: 12 + 8 + 20 + 17).
  EXPECT_EQ(S.Methods, 57u);
  EXPECT_EQ(S.MethodsByCategory[1], 12u);
  EXPECT_EQ(S.MethodsByCategory[2], 8u);
  EXPECT_EQ(S.MethodsByCategory[3], 20u);
  EXPECT_EQ(S.MethodsByCategory[4], 17u);
  EXPECT_EQ(S.Notes, 128u);
  EXPECT_EQ(S.Assumings, 51u);
  EXPECT_EQ(S.PickWitnesses, 22u);
  EXPECT_EQ(S.Notes + S.Assumings + S.PickWitnesses, 201u);
}

TEST(HintsTest, EveryScriptTargetsADistinctArrayListMethod) {
  HintsFixture &Fx = fixture();
  std::vector<TestingMethod> Methods =
      generateTestingMethods(Fx.C, arrayListFamily());
  std::set<std::string> Matched;
  for (const HintScript &S : Fx.Scripts) {
    int Hits = 0;
    for (const TestingMethod &M : Methods)
      if (S.matches(M)) {
        ++Hits;
        Matched.insert(M.name());
      }
    EXPECT_EQ(Hits, 1) << S.Op1Name << "," << S.Op2Name;
  }
  EXPECT_EQ(Matched.size(), 57u);
}

// "Integrated reasoning": every command's formula is machine-validated.
class ScriptValidation : public ::testing::TestWithParam<int> {};

TEST_P(ScriptValidation, ScriptIsValid) {
  HintsFixture &Fx = fixture();
  // Chunk the 57 scripts into 8 shards to keep test granularity useful.
  size_t Shard = GetParam();
  for (size_t I = Shard; I < Fx.Scripts.size(); I += 8) {
    const HintScript &S = Fx.Scripts[I];
    HintValidation V = validateScript(S, Fx.C);
    EXPECT_TRUE(V.Ok) << S.Op1Name << "," << S.Op2Name << " "
                      << conditionKindName(S.Kind) << " "
                      << methodRoleName(S.Role) << ": " << V.FailureNote;
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, ScriptValidation, ::testing::Range(0, 8));

TEST(HintsTest, CorruptedNoteIsRejected) {
  HintsFixture &Fx = fixture();
  Vocab D(Fx.F);
  HintScript Bad = Fx.Scripts.front();
  // An invalid "lemma": the intermediate state equals the initial state at
  // i1 — false whenever add_at/remove_at actually shifts something.
  Bad.Commands.push_back(HintCommand{
      HintCommandKind::Note,
      D.eq(D.at(D.S2, D.I1), D.at(D.S1, D.I1)), "", "bogus lemma"});
  HintValidation V = validateScript(Bad, Fx.C);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.FailureNote.find("note"), std::string::npos);
}

TEST(HintsTest, VacuousAssumingIsRejected) {
  HintsFixture &Fx = fixture();
  Vocab D(Fx.F);
  HintScript Bad = Fx.Scripts.front();
  Bad.Commands.push_back(HintCommand{HintCommandKind::Assuming,
                                     D.lt(D.I1, D.c(0)), "",
                                     "impossible case"});
  HintValidation V = validateScript(Bad, Fx.C);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.FailureNote.find("vacuous"), std::string::npos);
}
