//===- tests/LogicTest.cpp - logic/ module unit tests ----------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "logic/Dsl.h"
#include "logic/Evaluator.h"
#include "logic/Printer.h"
#include "logic/Simplifier.h"
#include "spec/AbstractState.h"

#include <gtest/gtest.h>

#include <thread>

using namespace semcomm;

// --- Value ------------------------------------------------------------------

TEST(ValueTest, Kinds) {
  EXPECT_TRUE(Value::null().isNull());
  EXPECT_TRUE(Value::boolean(true).asBool());
  EXPECT_FALSE(Value::boolean(false).asBool());
  EXPECT_EQ(Value::integer(-7).asInt(), -7);
  EXPECT_EQ(Value::obj(3).objId(), 3);
  EXPECT_TRUE(Value::undef().isUndef());
}

TEST(ValueTest, SemanticEqualityTreatsUndefAsEqualToNothing) {
  EXPECT_TRUE(Value::obj(1).semanticEquals(Value::obj(1)));
  EXPECT_FALSE(Value::obj(1).semanticEquals(Value::obj(2)));
  EXPECT_FALSE(Value::obj(1).semanticEquals(Value::null()));
  // The crucial convention: undef equals nothing, not even itself, so a
  // mis-guarded out-of-range read falsifies its equality atom.
  EXPECT_FALSE(Value::undef().semanticEquals(Value::undef()));
  // Structural equality (containers) still identifies undef with itself.
  EXPECT_TRUE(Value::undef() == Value::undef());
}

TEST(ValueTest, Rendering) {
  EXPECT_EQ(Value::null().str(), "null");
  EXPECT_EQ(Value::obj(12).str(), "o12");
  EXPECT_EQ(Value::integer(5).str(), "5");
  EXPECT_EQ(Value::boolean(true).str(), "true");
}

// --- Factory ----------------------------------------------------------------

TEST(FactoryTest, HashConsingGivesPointerIdentity) {
  ExprFactory F;
  ExprRef A = F.var("v1", Sort::Obj);
  ExprRef B = F.var("v1", Sort::Obj);
  EXPECT_EQ(A, B);
  EXPECT_EQ(F.eq(A, F.var("v2", Sort::Obj)),
            F.eq(F.var("v1", Sort::Obj), F.var("v2", Sort::Obj)));
  // Different sorts are different variables.
  EXPECT_NE(F.var("r1", Sort::Bool), F.var("r1", Sort::Obj));
}

TEST(FactoryTest, ConstantFolding) {
  ExprFactory F;
  EXPECT_TRUE(F.eq(F.intConst(2), F.intConst(2))->isTrue());
  EXPECT_TRUE(F.lt(F.intConst(3), F.intConst(2))->isFalse());
  EXPECT_EQ(F.add(F.intConst(2), F.intConst(3)), F.intConst(5));
  EXPECT_EQ(F.sub(F.var("i1", Sort::Int), F.intConst(0)),
            F.var("i1", Sort::Int));
  EXPECT_TRUE(F.eq(F.nullConst(), F.nullConst())->isTrue());
}

TEST(FactoryTest, ConnectiveUnitLaws) {
  ExprFactory F;
  ExprRef A = F.var("a", Sort::Bool);
  EXPECT_EQ(F.conj({A, F.trueExpr()}), A);
  EXPECT_TRUE(F.conj({A, F.falseExpr()})->isFalse());
  EXPECT_EQ(F.disj({A, F.falseExpr()}), A);
  EXPECT_TRUE(F.disj({A, F.trueExpr()})->isTrue());
  EXPECT_EQ(F.lnot(F.lnot(A)), A);
  EXPECT_TRUE(F.conj({})->isTrue());
  EXPECT_TRUE(F.disj({})->isFalse());
}

TEST(FactoryTest, NaryFlattening) {
  ExprFactory F;
  ExprRef A = F.var("a", Sort::Bool), B = F.var("b", Sort::Bool),
          C = F.var("c", Sort::Bool);
  ExprRef Nested = F.conj({A, F.conj({B, C})});
  EXPECT_EQ(Nested->kind(), ExprKind::And);
  EXPECT_EQ(Nested->numOperands(), 3u);
}

TEST(FactoryTest, SubstitutionShadowsBoundVariables) {
  ExprFactory F;
  ExprRef J = F.var("j", Sort::Int);
  ExprRef Body = F.eq(J, F.var("i1", Sort::Int));
  ExprRef Q = F.forallInt("j", F.intConst(0), F.intConst(3), Body);
  ExprRef Sub =
      F.substitute(Q, {{"j", F.intConst(9)}, {"i1", F.intConst(1)}});
  // The bound j must not be replaced; i1 must be.
  ExprRef Expected = F.forallInt("j", F.intConst(0), F.intConst(3),
                                 F.eq(J, F.intConst(1)));
  EXPECT_EQ(Sub, Expected);
}

TEST(FactoryTest, ConcurrentInterningGivesOneIdentityPerStructure) {
  // The parallel symbolic driver path shares one factory across workers:
  // racing threads interning the same structures must converge on the same
  // node pointers (pointer equality stays structural equality).
  ExprFactory F;
  constexpr int NumThreads = 8, NumExprs = 200;
  std::vector<std::vector<ExprRef>> PerThread(NumThreads);
  {
    std::vector<std::thread> Threads;
    for (int T = 0; T < NumThreads; ++T)
      Threads.emplace_back([&F, &PerThread, T] {
        std::vector<ExprRef> &Out = PerThread[T];
        for (int I = 0; I < NumExprs; ++I) {
          ExprRef V = F.var("x" + std::to_string(I % 40), Sort::Int);
          ExprRef E = F.le(F.add(V, F.intConst(I % 7)), F.intConst(I % 11));
          Out.push_back(F.disj({E, F.lnot(E)}));
        }
      });
    for (std::thread &T : Threads)
      T.join();
  }
  for (int T = 1; T < NumThreads; ++T)
    for (int I = 0; I < NumExprs; ++I)
      ASSERT_EQ(PerThread[0][I], PerThread[T][I]) << "thread " << T
                                                  << " expr " << I;
  // And the node count reflects one allocation per distinct structure:
  // re-interning from a single thread must not add anything.
  size_t Nodes = F.numNodes();
  for (int I = 0; I < NumExprs; ++I) {
    ExprRef V = F.var("x" + std::to_string(I % 40), Sort::Int);
    ExprRef E = F.le(F.add(V, F.intConst(I % 7)), F.intConst(I % 11));
    F.disj({E, F.lnot(E)});
  }
  EXPECT_EQ(F.numNodes(), Nodes);
}

TEST(FactoryTest, SubstituteIsLinearOnSharedDags) {
  // A deep, fully shared DAG: x_{k+1} = x_k + x_k. Without memoization the
  // rewrite visits 2^40 nodes; with it the call returns instantly.
  ExprFactory F;
  ExprRef X = F.var("x", Sort::Int);
  ExprRef Cur = X;
  for (int I = 0; I < 40; ++I)
    Cur = F.add(Cur, Cur);
  ExprRef Sub = F.substitute(Cur, {{"x", F.var("y", Sort::Int)}});
  ExprRef Expected = F.var("y", Sort::Int);
  for (int I = 0; I < 40; ++I)
    Expected = F.add(Expected, Expected);
  EXPECT_EQ(Sub, Expected);
}

// --- Evaluator ----------------------------------------------------------------

TEST(EvaluatorTest, MembershipAndConnectives) {
  ExprFactory F;
  Vocab D(F);
  AbstractState S = AbstractState::makeSet();
  S.setInsert(Value::obj(1));
  Env E;
  E.bindState("s1", &S);
  E.bind("v1", Value::obj(1));
  E.bind("v2", Value::obj(2));

  EXPECT_TRUE(evaluateBool(D.in(D.V1, D.S1), E));
  EXPECT_FALSE(evaluateBool(D.in(D.V2, D.S1), E));
  EXPECT_TRUE(
      evaluateBool(D.disj({D.in(D.V2, D.S1), D.in(D.V1, D.S1)}), E));
  EXPECT_TRUE(evaluateBool(D.ne(D.V1, D.V2), E));
}

TEST(EvaluatorTest, ShortCircuitGuardsOutOfRangeReads) {
  ExprFactory F;
  Vocab D(F);
  AbstractState S = AbstractState::makeSeq();
  S.seqInsert(0, Value::obj(1));
  Env E;
  E.bindState("s1", &S);
  E.bind("i1", Value::integer(0));
  E.bind("v1", Value::obj(1));

  // i1 > 0 is false, so the (otherwise out-of-range) s1[i1 - 1] read is
  // never evaluated; and even unguarded, it yields undef, falsifying the
  // equality rather than aborting.
  ExprRef Guarded = D.conj(
      {D.gt(D.I1, D.c(0)), D.eq(D.at(D.S1, D.sub(D.I1, D.c(1))), D.V1)});
  EXPECT_FALSE(evaluateBool(Guarded, E));
  ExprRef Unguarded = D.eq(D.at(D.S1, D.sub(D.I1, D.c(1))), D.V1);
  EXPECT_FALSE(evaluateBool(Unguarded, E));
}

TEST(EvaluatorTest, BoundedQuantifiers) {
  ExprFactory F;
  Vocab D(F);
  AbstractState S = AbstractState::makeSeq();
  for (int I = 1; I <= 3; ++I)
    S.seqInsert(S.seqLen(), Value::obj(I));
  Env E;
  E.bindState("s1", &S);
  E.bind("v1", Value::obj(2));

  ExprRef J = F.var("j", Sort::Int);
  ExprRef Exists = F.existsInt("j", D.c(0), D.sub(D.len(D.S1), D.c(1)),
                               D.eq(D.at(D.S1, J), D.V1));
  EXPECT_TRUE(evaluateBool(Exists, E));
  ExprRef All = F.forallInt("j", D.c(0), D.sub(D.len(D.S1), D.c(1)),
                            D.eq(D.at(D.S1, J), D.V1));
  EXPECT_FALSE(evaluateBool(All, E));
  // Empty range: forall is vacuously true, exists false.
  ExprRef Empty = F.forallInt("j", D.c(3), D.c(2), F.falseExpr());
  EXPECT_TRUE(evaluateBool(Empty, E));
}

TEST(EvaluatorTest, MapAndCounterQueries) {
  ExprFactory F;
  Vocab D(F);
  AbstractState M = AbstractState::makeMap();
  M.mapPut(Value::obj(1), Value::obj(9));
  Env E;
  E.bindState("s1", &M);
  E.bind("k1", Value::obj(1));
  E.bind("k2", Value::obj(2));
  E.bind("v1", Value::obj(9));

  EXPECT_TRUE(evaluateBool(D.maps(D.S1, D.K1, D.V1), E));
  EXPECT_TRUE(evaluateBool(D.noKey(D.S1, D.K2), E));
  EXPECT_TRUE(evaluateBool(D.eq(F.mapGet(D.S1, D.K2), F.nullConst()), E));

  AbstractState C = AbstractState::makeCounter(5);
  Env E2;
  E2.bindState("s1", &C);
  EXPECT_TRUE(evaluateBool(F.eq(F.counterValue(D.S1), F.intConst(5)), E2));
}

// --- Printer -------------------------------------------------------------------

TEST(PrinterTest, PaperStyleSetRow) {
  ExprFactory F;
  Vocab D(F);
  // Table 5.2 row: v1 ~= v2 | v1 in s1, concretely
  // v1 != v2 || s1.contains(v1).
  ExprRef Phi = D.disj({D.ne(D.V1, D.V2), D.in(D.V1, D.S1)});
  EXPECT_EQ(printAbstract(Phi), "v1 ~= v2 | v1 in s1");
  EXPECT_EQ(printConcrete(Phi), "v1 != v2 || s1.contains(v1)");
}

TEST(PrinterTest, PaperStyleMapRow) {
  ExprFactory F;
  Vocab D(F);
  // Table 5.4 row: k1 ~= k2 | (k1, v2) in s1, concretely
  // k1 != k2 || s1.get(k1) == v2.
  ExprRef Phi = D.disj({D.ne(D.K1, D.K2), D.maps(D.S1, D.K1, D.V2)});
  EXPECT_EQ(printAbstract(Phi), "k1 ~= k2 | (k1, v2) in s1");
  EXPECT_EQ(printConcrete(Phi), "k1 != k2 || s1.get(k1) == v2");
  // The unmapped-key pair forms.
  EXPECT_EQ(printAbstract(D.eq(F.mapGet(D.S1, D.K1), F.nullConst())),
            "(k1, _) ~in s1");
  EXPECT_EQ(printAbstract(D.ne(F.mapGet(D.S1, D.K1), F.nullConst())),
            "(k1, _) in s1");
}

TEST(PrinterTest, PaperStyleArrayListRow) {
  ExprFactory F;
  Vocab D(F);
  ExprRef Phi =
      D.conj({D.lt(D.I1, D.I2),
              D.eq(D.at(D.S2, D.I2), D.at(D.S2, D.add(D.I2, D.c(1))))});
  EXPECT_EQ(printAbstract(Phi), "i1 < i2 & s2[i2] = s2[i2 + 1]");
  EXPECT_EQ(printConcrete(Phi), "i1 < i2 && s2.get(i2) == s2.get(i2 + 1)");
  EXPECT_EQ(printAbstract(D.lt(D.idx(D.S2, D.V2), D.c(0))),
            "idx(s2, v2) < 0");
  EXPECT_EQ(printConcrete(D.lt(D.idx(D.S2, D.V2), D.c(0))),
            "s2.indexOf(v2) < 0");
}

TEST(PrinterTest, NegationSpecialCases) {
  ExprFactory F;
  Vocab D(F);
  EXPECT_EQ(printAbstract(D.notIn(D.V1, D.S1)), "v1 ~in s1");
  EXPECT_EQ(printConcrete(D.notIn(D.V1, D.S1)), "!s1.contains(v1)");
  EXPECT_EQ(printAbstract(D.ge(D.I1, D.c(0))), "0 <= i1");
  EXPECT_EQ(printAbstract(F.lnot(D.lt(D.I1, D.I2))), "i1 >= i2");
  EXPECT_EQ(printAbstract(F.lnot(D.le(D.I1, D.I2))), "i1 > i2");
}

TEST(PrinterTest, PrecedenceParenthesization) {
  ExprFactory F;
  ExprRef A = F.var("a", Sort::Bool), B = F.var("b", Sort::Bool),
          C = F.var("c", Sort::Bool);
  EXPECT_EQ(printAbstract(F.conj({F.disj({A, B}), C})), "(a | b) & c");
  EXPECT_EQ(printAbstract(F.disj({F.conj({A, B}), C})), "a & b | c");
}

// --- Simplifier -------------------------------------------------------------------

TEST(SimplifierTest, DuplicateAndComplement) {
  ExprFactory F;
  ExprRef A = F.var("a", Sort::Bool), B = F.var("b", Sort::Bool);
  EXPECT_EQ(simplify(F, F.disj({A, B, A})), F.disj({A, B}));
  EXPECT_TRUE(simplify(F, F.conj({A, F.lnot(A)}))->isFalse());
  EXPECT_TRUE(simplify(F, F.disj({A, F.lnot(A)}))->isTrue());
}

TEST(SimplifierTest, CollectDisjunctsAndFreeVars) {
  ExprFactory F;
  Vocab D(F);
  ExprRef Phi = D.disj({D.ne(D.V1, D.V2), D.in(D.V1, D.S1)});
  EXPECT_EQ(collectDisjuncts(Phi).size(), 2u);
  EXPECT_EQ(collectDisjuncts(D.tru()).size(), 1u);

  std::set<std::string> Vars, States;
  collectFreeVars(Phi, Vars);
  collectStateNames(Phi, States);
  EXPECT_EQ(Vars, (std::set<std::string>{"v1", "v2"}));
  EXPECT_EQ(States, (std::set<std::string>{"s1"}));

  // Quantified variables are not free.
  ExprRef J = F.var("j", Sort::Int);
  ExprRef Q = F.forallInt("j", D.c(0), D.I1, F.eq(J, D.I1));
  std::set<std::string> QVars;
  collectFreeVars(Q, QVars);
  EXPECT_EQ(QVars, (std::set<std::string>{"i1"}));
}
