//===- tests/CatalogTest.cpp - Full catalog verification --------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// The central test of the reproduction: every one of the 765 commutativity
/// conditions (1530 generated testing methods, counted per structure) is
/// verified sound AND complete by the exhaustive engine, and perturbing any
/// condition is detected.
///
//===----------------------------------------------------------------------===//

#include "commute/ExhaustiveEngine.h"
#include "logic/Evaluator.h"
#include "logic/Dsl.h"
#include "logic/Printer.h"

#include <gtest/gtest.h>

using namespace semcomm;

namespace {
struct CatalogFixture {
  ExprFactory F;
  Catalog C{F};
  ExhaustiveEngine Engine;
};
CatalogFixture &fixture() {
  static CatalogFixture Fx;
  return Fx;
}
} // namespace

TEST(CatalogShape, PaperCounts) {
  Catalog &C = fixture().C;
  EXPECT_EQ(C.totalConditionsPaperCount(), 765u);
  EXPECT_EQ(C.totalTestingMethodsPaperCount(), 1530u);
  EXPECT_EQ(C.entries(accumulatorFamily()).size(), 4u);
  EXPECT_EQ(C.entries(setFamily()).size(), 36u);
  EXPECT_EQ(C.entries(mapFamily()).size(), 49u);
  EXPECT_EQ(C.entries(arrayListFamily()).size(), 81u);
}

TEST(CatalogShape, FreeVariableDisciplineHolds) {
  // Aborts with a diagnostic on violation.
  fixture().C.validate();
}

TEST(CatalogShape, MethodNamingFollowsThePaper) {
  Catalog &C = fixture().C;
  std::vector<TestingMethod> Methods = generateTestingMethods(C, setFamily());
  // 36 entries x 3 kinds x 2 roles.
  EXPECT_EQ(Methods.size(), 216u);
  bool SawBetweenSound = false;
  for (const TestingMethod &M : Methods)
    if (M.name().find("contains_add_between_s_") == 0)
      SawBetweenSound = true;
  EXPECT_TRUE(SawBetweenSound);
}

// Exhaustive verification of every testing method, parameterized by family
// (the 1530-method analogue of the paper's §5.2 run).
class FamilyVerification : public ::testing::TestWithParam<int> {};

TEST_P(FamilyVerification, AllMethodsVerify) {
  CatalogFixture &Fx = fixture();
  const Family &Fam = *allFamilies()[GetParam()];
  for (const TestingMethod &M : generateTestingMethods(Fx.C, Fam)) {
    VerifyResult R = Fx.Engine.verify(M);
    EXPECT_TRUE(R.Verified)
        << Fam.Name << " " << M.name() << " ("
        << methodRoleName(M.Role) << "):\n  phi: "
        << printAbstract(M.Entry->get(M.Kind)) << "\n  "
        << (R.CE ? R.CE->str() : "");
    EXPECT_GT(R.ScenariosChecked, 0u) << M.name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyVerification,
                         ::testing::Range(0, 4));

// --- Paper-sampled rows render exactly as in Tables 5.1-5.6 ------------------

TEST(PaperRows, Table51Accumulator) {
  Catalog &C = fixture().C;
  EXPECT_TRUE(
      C.entry(accumulatorFamily(), "increase", "increase").Before->isTrue());
  EXPECT_EQ(printAbstract(
                C.entry(accumulatorFamily(), "increase", "read").Between),
            "v1 = 0");
}

TEST(PaperRows, Table52SetBefore) {
  Catalog &C = fixture().C;
  const Family &S = setFamily();
  EXPECT_TRUE(C.entry(S, "add_", "add_").Before->isTrue());
  EXPECT_EQ(printAbstract(C.entry(S, "add_", "contains").Before),
            "v1 ~= v2 | v1 in s1");
  EXPECT_EQ(printAbstract(C.entry(S, "add_", "remove_").Before),
            "v1 ~= v2");
  EXPECT_EQ(printAbstract(C.entry(S, "contains", "remove_").Before),
            "v1 ~= v2 | v1 ~in s1");
  EXPECT_TRUE(C.entry(S, "remove_", "remove_").Before->isTrue());
}

TEST(PaperRows, Table53SetBetween) {
  Catalog &C = fixture().C;
  const Family &S = setFamily();
  // §5.1's worked example: between condition for r1 = s.add(v1);
  // r2 = s.add(v2) is (v1 ~= v2 | ~r1).
  EXPECT_EQ(printAbstract(C.entry(S, "add", "add").Between),
            "v1 ~= v2 | ~r1");
  EXPECT_EQ(printAbstract(C.entry(S, "contains", "add_").Between),
            "v1 ~= v2 | r1");
  EXPECT_EQ(printAbstract(C.entry(S, "contains", "remove_").Between),
            "v1 ~= v2 | ~r1");
}

TEST(PaperRows, Table54MapBefore) {
  Catalog &C = fixture().C;
  const Family &M = mapFamily();
  EXPECT_EQ(printAbstract(C.entry(M, "get", "put_").Before),
            "k1 ~= k2 | (k1, v2) in s1");
  EXPECT_EQ(printAbstract(C.entry(M, "put_", "put_").Before),
            "k1 ~= k2 | v1 = v2");
  EXPECT_EQ(printAbstract(C.entry(M, "remove_", "get").Before),
            "k1 ~= k2 | (k1, _) ~in s1");
  EXPECT_TRUE(C.entry(M, "remove_", "remove_").Before->isTrue());
}

TEST(PaperRows, Table55MapAfter) {
  Catalog &C = fixture().C;
  const Family &M = mapFamily();
  EXPECT_EQ(printAbstract(C.entry(M, "get", "put_").After),
            "k1 ~= k2 | r1 = v2");
  EXPECT_EQ(printAbstract(C.entry(M, "get", "remove_").After),
            "k1 ~= k2 | r1 = null");
  EXPECT_EQ(printAbstract(C.entry(M, "put_", "get").After),
            "k1 ~= k2 | (k1, v1) in s1");
}

TEST(PaperRows, Table56ArrayListBetween) {
  Catalog &C = fixture().C;
  const Family &A = arrayListFamily();
  // The (r1 = indexOf(v1); add_at(i2, v2)) row.
  EXPECT_EQ(printAbstract(C.entry(A, "indexOf", "add_at").Between),
            "r1 < 0 & v1 ~= v2 | 0 <= r1 & r1 < i2 | r1 = i2 & v1 = v2");
  EXPECT_TRUE(C.entry(A, "indexOf", "indexOf").Between->isTrue());
  // The (remove_at_; remove_at_) row's same-index clause.
  std::string RaRa =
      printAbstract(C.entry(A, "remove_at_", "remove_at_").Between);
  EXPECT_NE(RaRa.find("i1 = i2"), std::string::npos);
}

// --- Mutation testing: the engine rejects perturbed conditions ----------------

namespace {
struct Mutation {
  const char *FamilyName;
  const char *Op1, *Op2;
  ConditionKind Kind;
  /// Builds a wrong condition for the pair.
  ExprRef (*Build)(Vocab &D, ExprRef Original);
  /// Which role must fail.
  MethodRole ExpectedFailure;
};
} // namespace

class MutationTest : public ::testing::TestWithParam<int> {};

TEST_P(MutationTest, PerturbedConditionsAreRejected) {
  CatalogFixture &Fx = fixture();
  Vocab D(Fx.F);

  static const Mutation Mutations[] = {
      // Weakening to true must break completeness... or soundness when the
      // real condition is restrictive.
      {"Set", "add", "remove", ConditionKind::Before,
       [](Vocab &D, ExprRef) { return D.tru(); }, MethodRole::Soundness},
      // Strengthening to false must break completeness for a commuting
      // pair.
      {"Set", "add_", "add_", ConditionKind::Before,
       [](Vocab &D, ExprRef) { return D.fls(); }, MethodRole::Completeness},
      // Dropping the membership disjunct of (contains; add) keeps
      // soundness but loses completeness.
      {"Set", "contains", "add_", ConditionKind::Before,
       [](Vocab &D, ExprRef) { return D.ne(D.V1, D.V2); },
       MethodRole::Completeness},
      // Swapping the polarity of the membership clause breaks soundness.
      {"Set", "contains", "add_", ConditionKind::Before,
       [](Vocab &D, ExprRef) {
         return D.disj({D.ne(D.V1, D.V2), D.notIn(D.V1, D.S1)});
       },
       MethodRole::Soundness},
      // Map: requiring only key inequality for put/put misses the
      // equal-values case (completeness).
      {"Map", "put_", "put_", ConditionKind::Before,
       [](Vocab &D, ExprRef) { return D.ne(D.K1, D.K2); },
       MethodRole::Completeness},
      // Map: allowing equal keys for put/remove breaks soundness.
      {"Map", "put_", "remove_", ConditionKind::Before,
       [](Vocab &D, ExprRef) { return D.tru(); }, MethodRole::Soundness},
      // ArrayList: forgetting the duplicate-neighbour requirement of
      // (add_at; remove_at) breaks soundness.
      {"ArrayList", "add_at", "remove_at_", ConditionKind::Before,
       [](Vocab &D, ExprRef) { return D.le(D.I2, D.I1); },
       MethodRole::Soundness},
      // ArrayList: the i1 = i2 clause of remove_at_/remove_at_ is
      // necessary (completeness breaks without it).
      {"ArrayList", "remove_at_", "remove_at_", ConditionKind::Before,
       [](Vocab &D, ExprRef) {
         ExprRef A2 = D.at(D.S1, D.I2);
         ExprRef A2p = D.at(D.S1, D.add(D.I2, D.c(1)));
         ExprRef A1 = D.at(D.S1, D.I1);
         ExprRef A1p = D.at(D.S1, D.add(D.I1, D.c(1)));
         return D.disj({D.conj({D.lt(D.I1, D.I2), D.eq(A2, A2p)}),
                        D.conj({D.gt(D.I1, D.I2), D.eq(A1, A1p)})});
       },
       MethodRole::Completeness},
  };

  const Mutation &Mu = Mutations[GetParam()];
  const Family *Fam = nullptr;
  for (const Family *Candidate : allFamilies())
    if (Candidate->Name == Mu.FamilyName)
      Fam = Candidate;
  ASSERT_NE(Fam, nullptr);

  ExprRef Original = Fx.C.entry(*Fam, Mu.Op1, Mu.Op2).get(Mu.Kind);
  ExprRef Mutant = Mu.Build(D, Original);
  ASSERT_NE(Mutant, Original) << "mutation must actually change the formula";

  VerifyResult R = Fx.Engine.verifyCondition(*Fam, Mu.Op1, Mu.Op2, Mu.Kind,
                                             Mu.ExpectedFailure, Mutant);
  EXPECT_FALSE(R.Verified)
      << "mutant not rejected: " << printAbstract(Mutant);
  EXPECT_TRUE(R.CE.has_value());
}

INSTANTIATE_TEST_SUITE_P(AllMutations, MutationTest, ::testing::Range(0, 8));

// --- Scope stability -----------------------------------------------------------

TEST(ScopeStability, ResultsAgreeAcrossScopes) {
  // DESIGN.md §4.1's empirical cross-check on a representative sample:
  // verification outcomes are identical at scopes 3 and 5.
  CatalogFixture &Fx = fixture();
  Scope Small;
  Small.SetUniverse = 3;
  Small.MapKeys = 2;
  Small.MaxSeqLen = 3;
  Scope Large;
  Large.SetUniverse = 5;
  Large.MapKeys = 4;
  Large.MaxSeqLen = 5;
  ExhaustiveEngine SmallEngine(Small), LargeEngine(Large);

  const std::tuple<const Family *, const char *, const char *> Sample[] = {
      {&setFamily(), "add", "contains"},
      {&mapFamily(), "put", "remove"},
      {&arrayListFamily(), "add_at", "indexOf"},
      {&arrayListFamily(), "remove_at", "remove_at"},
  };
  for (const auto &[Fam, Op1, Op2] : Sample)
    for (ConditionKind K : {ConditionKind::Before, ConditionKind::Between,
                            ConditionKind::After})
      for (MethodRole Role :
           {MethodRole::Soundness, MethodRole::Completeness}) {
        ExprRef Phi = Fx.C.entry(*Fam, Op1, Op2).get(K);
        bool SmallOk =
            SmallEngine.verifyCondition(*Fam, Op1, Op2, K, Role, Phi)
                .Verified;
        bool LargeOk =
            LargeEngine.verifyCondition(*Fam, Op1, Op2, K, Role, Phi)
                .Verified;
        EXPECT_EQ(SmallOk, LargeOk) << Fam->Name << " " << Op1 << "," << Op2;
        EXPECT_TRUE(LargeOk);
      }
}

// --- §4.1.2's equivalence claim -------------------------------------------------

// "Because the commutativity conditions for our set of data structures are
// both sound and complete, the before, between, and after conditions are
// equivalent even if they reference different return values or elements of
// different abstract states." Checked pointwise over every scenario of
// every pair.
class KindEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(KindEquivalence, BeforeBetweenAfterAgreeOnEveryScenario) {
  CatalogFixture &Fx = fixture();
  const Family &Fam = *allFamilies()[GetParam()];
  Scope Bounds;
  if (Fam.Kind == StateKind::Seq)
    Bounds.MaxSeqLen = 3; // keep the sweep quick; scope-stable anyway

  for (const ConditionEntry &E : Fx.C.entries(Fam)) {
    const Operation &Op1 = E.op1();
    const Operation &Op2 = E.op2();
    for (const AbstractState &Initial : enumerateStates(Fam, Bounds)) {
      for (const ArgList &A1 : enumerateArgs(Fam, Op1, Initial, Bounds)) {
        if (!Op1.Pre(Initial, A1))
          continue;
        for (const ArgList &A2 : enumerateArgs(Fam, Op2, Initial, Bounds)) {
          AbstractState Mid = Initial;
          Value R1 = Op1.Apply(Mid, A1);
          if (!Op2.Pre(Mid, A2))
            continue;
          AbstractState Fin = Mid;
          Value R2 = Op2.Apply(Fin, A2);

          Env Env1;
          for (size_t I = 0; I != A1.size(); ++I)
            Env1.bind(Op1.ArgBaseNames[I] + "1", A1[I]);
          for (size_t I = 0; I != A2.size(); ++I)
            Env1.bind(Op2.ArgBaseNames[I] + "2", A2[I]);
          if (Op1.RecordsReturn)
            Env1.bind("r1", R1);
          if (Op2.RecordsReturn)
            Env1.bind("r2", R2);
          Env1.bindState("s1", &Initial);
          Env1.bindState("s2", &Mid);
          Env1.bindState("s3", &Fin);

          bool Before = evaluateBool(E.Before, Env1);
          bool Between = evaluateBool(E.Between, Env1);
          bool After = evaluateBool(E.After, Env1);
          ASSERT_EQ(Before, Between)
              << Fam.Name << " " << E.pairName() << " at "
              << Initial.str();
          ASSERT_EQ(Between, After)
              << Fam.Name << " " << E.pairName() << " at "
              << Initial.str();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, KindEquivalence, ::testing::Range(0, 4));
