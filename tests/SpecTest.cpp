//===- tests/SpecTest.cpp - spec/ module unit tests ------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "spec/Family.h"

#include <gtest/gtest.h>

using namespace semcomm;

TEST(AbstractStateTest, SetSemantics) {
  AbstractState S = AbstractState::makeSet();
  EXPECT_TRUE(S.setInsert(Value::obj(1)));
  EXPECT_FALSE(S.setInsert(Value::obj(1)));
  EXPECT_TRUE(S.contains(Value::obj(1)));
  EXPECT_EQ(S.size(), 1);
  EXPECT_TRUE(S.setErase(Value::obj(1)));
  EXPECT_FALSE(S.setErase(Value::obj(1)));
  EXPECT_EQ(S.size(), 0);
}

TEST(AbstractStateTest, SetEqualityIsOrderInsensitive) {
  AbstractState A = AbstractState::makeSet(), B = AbstractState::makeSet();
  A.setInsert(Value::obj(1));
  A.setInsert(Value::obj(2));
  B.setInsert(Value::obj(2));
  B.setInsert(Value::obj(1));
  EXPECT_EQ(A, B);
}

TEST(AbstractStateTest, MapSemantics) {
  AbstractState M = AbstractState::makeMap();
  EXPECT_TRUE(M.mapPut(Value::obj(1), Value::obj(7)).isNull());
  EXPECT_EQ(M.mapPut(Value::obj(1), Value::obj(8)), Value::obj(7));
  EXPECT_EQ(M.mapGet(Value::obj(1)), Value::obj(8));
  EXPECT_TRUE(M.mapGet(Value::obj(2)).isNull());
  EXPECT_TRUE(M.mapHasKey(Value::obj(1)));
  EXPECT_EQ(M.size(), 1);
  EXPECT_EQ(M.mapErase(Value::obj(1)), Value::obj(8));
  EXPECT_TRUE(M.mapErase(Value::obj(1)).isNull());
}

TEST(AbstractStateTest, SeqSemantics) {
  AbstractState S = AbstractState::makeSeq();
  S.seqInsert(0, Value::obj(1)); // [1]
  S.seqInsert(1, Value::obj(2)); // [1 2]
  S.seqInsert(1, Value::obj(3)); // [1 3 2]
  EXPECT_EQ(S.seqLen(), 3);
  EXPECT_EQ(S.seqAt(1), Value::obj(3));
  EXPECT_TRUE(S.seqAt(3).isUndef());
  EXPECT_TRUE(S.seqAt(-1).isUndef());

  S.seqInsert(3, Value::obj(3)); // [1 3 2 3]
  EXPECT_EQ(S.seqIndexOf(Value::obj(3)), 1);
  EXPECT_EQ(S.seqLastIndexOf(Value::obj(3)), 3);
  EXPECT_EQ(S.seqIndexOf(Value::obj(9)), -1);

  EXPECT_EQ(S.seqSet(0, Value::obj(5)), Value::obj(1)); // [5 3 2 3]
  EXPECT_EQ(S.seqRemove(1), Value::obj(3));             // [5 2 3]
  EXPECT_EQ(S.seqLen(), 3);
  EXPECT_EQ(S.seqAt(1), Value::obj(2));
}

TEST(AbstractStateTest, CounterSemantics) {
  AbstractState C = AbstractState::makeCounter(2);
  C.increase(-5);
  EXPECT_EQ(C.counter(), -3);
  EXPECT_EQ(C, AbstractState::makeCounter(-3));
}

// --- Families ------------------------------------------------------------------

TEST(FamilyTest, PaperOperationCounts) {
  // §5.1: 2 operations for Accumulator, 6 for the sets, 7 for the maps,
  // 9 for ArrayList.
  EXPECT_EQ(accumulatorFamily().Ops.size(), 2u);
  EXPECT_EQ(setFamily().Ops.size(), 6u);
  EXPECT_EQ(mapFamily().Ops.size(), 7u);
  EXPECT_EQ(arrayListFamily().Ops.size(), 9u);
}

TEST(FamilyTest, PaperConditionArithmetic) {
  // 3*2^2 + 2*3*6^2 + 2*3*7^2 + 3*9^2 = 765 (§5.1).
  unsigned Total = 0;
  for (const Family *F : allFamilies())
    Total += 3 * F->Ops.size() * F->Ops.size() * F->StructureNames.size();
  EXPECT_EQ(Total, 765u);
}

TEST(FamilyTest, VariantFlags) {
  const Family &S = setFamily();
  EXPECT_TRUE(S.op("add").RecordsReturn);
  EXPECT_FALSE(S.op("add_").RecordsReturn);
  EXPECT_EQ(S.op("add").CallName, S.op("add_").CallName);
  EXPECT_TRUE(S.op("contains").isPure());
  EXPECT_FALSE(arrayListFamily().op("add_at").HasReturn);
}

TEST(FamilyTest, ArrayListPreconditions) {
  const Family &F = arrayListFamily();
  AbstractState S = F.emptyState();
  EXPECT_TRUE(F.op("add_at").Pre(S, {Value::integer(0), Value::obj(1)}));
  EXPECT_FALSE(F.op("add_at").Pre(S, {Value::integer(1), Value::obj(1)}));
  EXPECT_FALSE(F.op("get").Pre(S, {Value::integer(0)}));
  S.seqInsert(0, Value::obj(1));
  EXPECT_TRUE(F.op("get").Pre(S, {Value::integer(0)}));
  EXPECT_TRUE(F.op("remove_at").Pre(S, {Value::integer(0)}));
  EXPECT_FALSE(F.op("set").Pre(S, {Value::integer(1), Value::obj(2)}));
}

TEST(FamilyTest, RenderCall) {
  EXPECT_EQ(setFamily().op("add").renderCall("s1", 1), "r1 = s1.add(v1)");
  EXPECT_EQ(setFamily().op("add_").renderCall("s2", 2), "s2.add(v2)");
  EXPECT_EQ(mapFamily().op("put").renderCall("s1", 1),
            "r1 = s1.put(k1, v1)");
  EXPECT_EQ(arrayListFamily().op("remove_at_").renderCall("s2", 2),
            "s2.remove_at(i2)");
  EXPECT_EQ(setFamily().op("size").renderCall("s1", 1), "r1 = s1.size()");
}

// --- Scope enumeration ------------------------------------------------------------

TEST(ScopeTest, StateCounts) {
  Scope S;
  EXPECT_EQ(enumerateStates(accumulatorFamily(), S).size(), 5u); // [-2,2]
  EXPECT_EQ(enumerateStates(setFamily(), S).size(), 16u);        // 2^4
  EXPECT_EQ(enumerateStates(mapFamily(), S).size(), 64u);        // 4^3
  // Sequences over 3 values up to length 4: 1+3+9+27+81.
  EXPECT_EQ(enumerateStates(arrayListFamily(), S).size(), 121u);
}

TEST(ScopeTest, ArgEnumerationCoversGrownIndices) {
  Scope Sc;
  AbstractState S = AbstractState::makeSeq();
  S.seqInsert(0, Value::obj(1)); // len 1
  const Family &F = arrayListFamily();
  // Index args must range to len+1 so a second operation on a grown list
  // is covered; object args over the sequence value universe.
  std::vector<ArgList> Args = enumerateArgs(F, F.op("add_at"), S, Sc);
  EXPECT_EQ(Args.size(), 3u * 3u); // i in {0,1,2}, v in {o1,o2,o3}
  std::vector<ArgList> SetArgs =
      enumerateArgs(setFamily(), setFamily().op("add"), S, Sc);
  EXPECT_EQ(SetArgs.size(), 4u);
}
