//===- tests/RefinementTest.cpp - refine/ checker tests --------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "impl/ListSet.h"
#include "refine/RefinementChecker.h"

#include <gtest/gtest.h>

using namespace semcomm;

// The refinement check is our substitute for the paper's fully verified
// implementations (DESIGN.md §2): every structure must forward-simulate its
// abstract specification.
class RefinementSweep : public ::testing::TestWithParam<int> {};

TEST_P(RefinementSweep, ExhaustiveDepth4) {
  StructureFactory Factory = allStructureFactories()[GetParam()];
  RefinementResult R = checkRefinementExhaustive(Factory, /*Depth=*/4);
  EXPECT_TRUE(R.Ok) << Factory.Name << ": " << R.FailureNote;
  EXPECT_GT(R.StepsChecked, 100u);
}

TEST_P(RefinementSweep, RandomizedLongWalks) {
  StructureFactory Factory = allStructureFactories()[GetParam()];
  RefinementResult R =
      checkRefinementRandomized(Factory, /*Walks=*/100, /*Length=*/80,
                                /*Seed=*/2024);
  EXPECT_TRUE(R.Ok) << Factory.Name << ": " << R.FailureNote;
}

INSTANTIATE_TEST_SUITE_P(AllStructures, RefinementSweep,
                         ::testing::Range(0, 6));

namespace {

/// Failure injection: a ListSet whose remove forgets to decrement the size
/// and whose add admits one duplicate. The checker must catch it.
class BuggyListSet : public ListSet {
public:
  std::string name() const override { return "BuggyListSet"; }
  Value invoke(const std::string &CallName, const ArgList &Args) override {
    if (CallName == "add") {
      // Deliberately wrong result on re-insertion.
      bool Fresh = !contains(Args[0]);
      ListSet::invoke("add", Args);
      return Value::boolean(!Fresh);
    }
    return ListSet::invoke(CallName, Args);
  }
  std::unique_ptr<ConcreteStructure> clone() const override {
    // Keep the bug across the checker's exploration clones.
    return std::make_unique<BuggyListSet>(*this);
  }
};

} // namespace

TEST(RefinementFailureInjection, BuggyReturnValueIsCaught) {
  StructureFactory Factory{"BuggyListSet", &setFamily(),
                           [] { return std::make_unique<BuggyListSet>(); }};
  RefinementResult R = checkRefinementExhaustive(Factory, /*Depth=*/3);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.FailureNote.find("return value"), std::string::npos)
      << R.FailureNote;
}
