//===- tests/IntegrationTest.cpp - Cross-module end-to-end tests -----------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "commute/ExhaustiveEngine.h"
#include "commute/ProofHints.h"
#include "commute/SymbolicEngine.h"
#include "impl/ListSet.h"
#include "inverse/InverseVerifier.h"
#include "logic/Evaluator.h"
#include "refine/RefinementChecker.h"
#include "runtime/DynamicChecker.h"

#include <gtest/gtest.h>

#include <random>

using namespace semcomm;

// The end-to-end pipeline of the paper's Fig. 2-2 example: specify the
// condition, generate the two testing methods, verify both with both
// engines, then use the condition dynamically against the verified
// implementations.
TEST(IntegrationTest, Figure22EndToEnd) {
  ExprFactory F;
  Catalog C(F);
  const ConditionEntry &E = C.entry(setFamily(), "contains", "add_");

  ExhaustiveEngine Ex;
  SymbolicEngine Sym(F);
  for (MethodRole Role : {MethodRole::Soundness, MethodRole::Completeness}) {
    TestingMethod M;
    M.Entry = &E;
    M.Kind = ConditionKind::Between;
    M.Role = Role;
    EXPECT_TRUE(Ex.verify(M).Verified);
    EXPECT_TRUE(Sym.verify(M).Verified);
  }

  // Dynamic use against both set implementations.
  DynamicChecker Checker(F, C);
  for (const StructureFactory &Factory : allStructureFactories()) {
    if (Factory.Fam != &setFamily())
      continue;
    std::unique_ptr<ConcreteStructure> S = Factory.Make();
    S->invoke("add", {Value::obj(1)});
    std::unique_ptr<ConcreteStructure> Before = S->clone();
    Value R1 = S->invoke("contains", {Value::obj(2)}); // false
    EXPECT_FALSE(Checker.commutesExact(*Before, *S, "contains",
                                       {Value::obj(2)}, R1, "add_",
                                       {Value::obj(2)}));
    EXPECT_TRUE(Checker.commutesExact(*Before, *S, "contains",
                                      {Value::obj(1)},
                                      Value::boolean(true), "add_",
                                      {Value::obj(1)}));
  }
}

// Dynamic condition evaluation against the *concrete* structures agrees
// with evaluation against their abstractions on random scenarios — the
// soundness of the paper's fourth table column.
TEST(IntegrationTest, ConcreteAndAbstractEvaluationAgree) {
  ExprFactory F;
  Catalog C(F);
  std::mt19937 Rng(5);

  for (const StructureFactory &Factory : allStructureFactories()) {
    const Family &Fam = *Factory.Fam;
    Scope Bounds;
    for (int Trial = 0; Trial < 120; ++Trial) {
      // Random reachable structure.
      std::unique_ptr<ConcreteStructure> S = Factory.Make();
      AbstractState Shadow = Fam.emptyState();
      for (int Step = 0; Step < 8; ++Step) {
        const Operation &Op = Fam.Ops[Rng() % Fam.Ops.size()];
        auto Cands = enumerateArgs(Fam, Op, Shadow, Bounds);
        if (Cands.empty())
          continue;
        const ArgList &A = Cands[Rng() % Cands.size()];
        if (!Op.Pre(Shadow, A))
          continue;
        S->invoke(Op.CallName, A);
        Op.Apply(Shadow, A);
      }

      // Random pair and before-condition (free of r1/r2, so it only needs
      // s1, which both views provide).
      const auto &Entries = C.entries(Fam);
      const ConditionEntry &E = Entries[Rng() % Entries.size()];
      auto Args1 = enumerateArgs(Fam, E.op1(), Shadow, Bounds);
      auto Args2 = enumerateArgs(Fam, E.op2(), Shadow, Bounds);
      if (Args1.empty() || Args2.empty())
        continue;
      const ArgList &A1 = Args1[Rng() % Args1.size()];
      const ArgList &A2 = Args2[Rng() % Args2.size()];

      Env EnvConcrete, EnvAbstract;
      for (size_t I = 0; I != A1.size(); ++I) {
        EnvConcrete.bind(E.op1().ArgBaseNames[I] + "1", A1[I]);
        EnvAbstract.bind(E.op1().ArgBaseNames[I] + "1", A1[I]);
      }
      for (size_t I = 0; I != A2.size(); ++I) {
        EnvConcrete.bind(E.op2().ArgBaseNames[I] + "2", A2[I]);
        EnvAbstract.bind(E.op2().ArgBaseNames[I] + "2", A2[I]);
      }
      EnvConcrete.bindState("s1", S.get());
      EnvAbstract.bindState("s1", &Shadow);
      EXPECT_EQ(evaluateBool(E.Before, EnvConcrete),
                evaluateBool(E.Before, EnvAbstract))
          << Factory.Name << " " << E.pairName();
    }
  }
}

// The full §5.2/§5.3 run in miniature: catalog verification, hint
// validation, inverse verification, and refinement checking all pass on a
// reduced scope, exercising every major subsystem in one process.
TEST(IntegrationTest, MiniaturePaperRun) {
  ExprFactory F;
  Catalog C(F);
  C.validate();

  Scope Small;
  Small.SetUniverse = 3;
  Small.MapKeys = 2;
  Small.MapVals = 2;
  Small.MaxSeqLen = 3;
  Small.SeqVals = 2;
  ExhaustiveEngine Engine(Small);

  unsigned Verified = 0;
  for (const Family *Fam : allFamilies())
    for (const TestingMethod &M : generateTestingMethods(C, *Fam)) {
      ASSERT_TRUE(Engine.verify(M).Verified) << M.name();
      ++Verified;
    }
  EXPECT_EQ(Verified, 24u + 216u + 294u + 486u);

  for (const InverseSpec &Spec : buildInverseSpecs())
    EXPECT_TRUE(verifyInverse(Spec, Small).Verified) << Spec.ForwardText;

  for (const HintScript &S : buildArrayListHintScripts(F))
    EXPECT_TRUE(validateScript(S, C, Small).Ok)
        << S.Op1Name << "," << S.Op2Name;

  for (const StructureFactory &Factory : allStructureFactories())
    EXPECT_TRUE(checkRefinementExhaustive(Factory, 3, Small).Ok)
        << Factory.Name;
}
