//===- tests/RuntimeTest.cpp - Dynamic checking, speculation, lattice ------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "impl/HashSet.h"
#include "impl/HashTable.h"
#include "runtime/Lattice.h"
#include "runtime/SpeculativeRuntime.h"

#include <gtest/gtest.h>

#include <random>

using namespace semcomm;

namespace {
struct RuntimeFixture {
  ExprFactory F;
  Catalog C{F};
};
RuntimeFixture &fixture() {
  static RuntimeFixture Fx;
  return Fx;
}

StructureFactory factoryFor(const std::string &Name) {
  for (const StructureFactory &F : allStructureFactories())
    if (F.Name == Name)
      return F;
  abort();
}
} // namespace

// --- DynamicChecker -------------------------------------------------------------

TEST(DynamicCheckerTest, ExactCheckMatchesGroundTruth) {
  // Against a live HashSet: contains(v1) then add(v2) commute iff
  // v1 != v2 or v1 was present (the paper's Fig. 2-2 condition).
  RuntimeFixture &Fx = fixture();
  DynamicChecker Checker(Fx.F, Fx.C);

  HashSet Before;
  Before.add(Value::obj(1));
  HashSet Live(Before); // contains() is pure, so s2 equals s1.
  Value R1Present = Value::boolean(true);

  // v1 = o1 present: commutes with add(o1).
  EXPECT_TRUE(Checker.commutesExact(Before, Live, "contains",
                                    {Value::obj(1)}, R1Present, "add_",
                                    {Value::obj(1)}));
  // v1 = o2 absent: conflicts with add(o2)...
  EXPECT_FALSE(Checker.commutesExact(Before, Live, "contains",
                                     {Value::obj(2)},
                                     Value::boolean(false), "add_",
                                     {Value::obj(2)}));
  // ...but commutes with add of a different element.
  EXPECT_TRUE(Checker.commutesExact(Before, Live, "contains",
                                    {Value::obj(2)}, Value::boolean(false),
                                    "add_", {Value::obj(3)}));
}

TEST(DynamicCheckerTest, ConservativeCheckIsSound) {
  // Whenever mayCommute says yes, the exact check agrees (dropping
  // s1-clauses only loses completeness, §4.1.2).
  RuntimeFixture &Fx = fixture();
  DynamicChecker Checker(Fx.F, Fx.C);
  std::mt19937 Rng(7);
  const Family &Fam = setFamily();

  for (int Trial = 0; Trial < 500; ++Trial) {
    HashSet Before;
    for (int I = 1; I <= 4; ++I)
      if (Rng() & 1)
        Before.add(Value::obj(I));
    const Operation &Op1 = Fam.Ops[Rng() % Fam.Ops.size()];
    ArgList A1, A2;
    if (!Op1.ArgSorts.empty())
      A1.push_back(Value::obj(1 + Rng() % 4));
    HashSet Live(Before);
    Value R1 = Live.invoke(Op1.CallName, A1);
    const Operation &Op2 = Fam.Ops[Rng() % Fam.Ops.size()];
    if (!Op2.ArgSorts.empty())
      A2.push_back(Value::obj(1 + Rng() % 4));

    if (Checker.mayCommute(Live, Op1.Name, A1, R1, Op2.Name, A2)) {
      EXPECT_TRUE(Checker.commutesExact(Before, Live, Op1.Name, A1, R1,
                                        Op2.Name, A2))
          << Op1.Name << " then " << Op2.Name;
    }
  }
}

// --- SpeculativeRuntime -----------------------------------------------------------

static Transaction mapTxn(std::initializer_list<std::pair<int, int>> Puts) {
  Transaction T;
  for (auto [K, V] : Puts)
    T.push_back({"put", {Value::obj(K), Value::obj(V)}});
  return T;
}

TEST(SpeculativeRuntimeTest, DisjointKeysRunWithoutAborts) {
  RuntimeFixture &Fx = fixture();
  SpeculativeRuntime Rt(Fx.F, Fx.C, factoryFor("HashTable"));
  RuntimeStats Stats = Rt.run({mapTxn({{1, 10}, {2, 20}}),
                               mapTxn({{3, 30}, {4, 40}}),
                               mapTxn({{5, 50}, {6, 60}})});
  EXPECT_EQ(Stats.Aborts, 0u);
  EXPECT_EQ(Stats.Commits, 3u);
  EXPECT_EQ(Stats.OpsExecuted, 6u);
  EXPECT_GT(Stats.GatekeeperPasses, 0u);
  EXPECT_EQ(Rt.structure().size(), 6);
}

TEST(SpeculativeRuntimeTest, ConflictingPutsAbortAndStillConverge) {
  RuntimeFixture &Fx = fixture();
  SpeculativeRuntime Rt(Fx.F, Fx.C, factoryFor("HashTable"));
  // Same key, different values: put/put commutes only when values agree,
  // so the second transaction's first put conflicts and it must wait or
  // roll back — yet both eventually commit.
  RuntimeStats Stats =
      Rt.run({mapTxn({{1, 10}, {2, 20}}), mapTxn({{1, 11}, {3, 30}})});
  EXPECT_GT(Stats.Aborts + Stats.Stalls, 0u);
  EXPECT_GT(Stats.GatekeeperChecks, Stats.GatekeeperPasses);
  EXPECT_EQ(Stats.Commits, 2u);
  // Keys {1, 2, 3} are present; key 1 holds whichever committed last — a
  // serializable outcome.
  EXPECT_EQ(Rt.structure().size(), 3);
  Value K1 = Rt.structure().mapGet(Value::obj(1));
  EXPECT_TRUE(K1 == Value::obj(10) || K1 == Value::obj(11));
}

TEST(SpeculativeRuntimeTest, InverseRollbackRestoresContribution) {
  // One transaction adds elements and is forced to abort by a conflicting
  // reader; its contribution must vanish from the abstract state.
  RuntimeFixture &Fx = fixture();
  SpeculativeRuntime Rt(Fx.F, Fx.C, factoryFor("HashSet"));
  Transaction Writer = {{"add", {Value::obj(1)}},
                        {"add", {Value::obj(2)}},
                        {"remove", {Value::obj(1)}}};
  Transaction Reader = {{"contains", {Value::obj(2)}},
                        {"contains", {Value::obj(2)}}};
  RuntimeStats Stats = Rt.run({Reader, Writer});
  EXPECT_EQ(Stats.Commits, 2u);
  // Final committed state: {2} (1 added then removed by the writer).
  EXPECT_FALSE(Rt.structure().contains(Value::obj(1)));
  EXPECT_TRUE(Rt.structure().contains(Value::obj(2)));
  if (Stats.Aborts > 0) {
    EXPECT_GT(Stats.OpsUndone, 0u);
  }
}

TEST(SpeculativeRuntimeTest, CommutativityIncreasesConcurrency) {
  // Four transactions adding disjoint element ranges. With the gatekeeper
  // the adds interleave freely (distinct adds commute); without it every
  // concurrent pair "conflicts" and execution degenerates to stalling
  // serialization.
  RuntimeFixture &Fx = fixture();
  std::vector<Transaction> Txns;
  for (int T = 0; T < 4; ++T) {
    Transaction Txn;
    for (int I = 0; I < 5; ++I)
      Txn.push_back({"add", {Value::obj(1 + T * 5 + I)}});
    Txns.push_back(Txn);
  }

  SpeculativeRuntime With(Fx.F, Fx.C, factoryFor("HashSet"));
  RuntimeStats SWith = With.run(Txns);
  SpeculativeRuntime Without(Fx.F, Fx.C, factoryFor("HashSet"));
  Without.setUseCommutativity(false);
  RuntimeStats SWithout = Without.run(Txns);

  EXPECT_EQ(SWith.Commits, 4u);
  EXPECT_EQ(SWithout.Commits, 4u);
  // With the gatekeeper: full concurrency, no waiting, no rollbacks.
  EXPECT_EQ(SWith.Aborts, 0u);
  EXPECT_EQ(SWith.Stalls, 0u);
  EXPECT_GT(SWith.GatekeeperPasses, 0u);
  // Without: the same schedule serializes by stalling.
  EXPECT_GT(SWithout.Stalls, 0u);
  EXPECT_EQ(SWithout.GatekeeperPasses, 0u);
  // Either way the committed abstract state is identical.
  EXPECT_EQ(With.structure().abstraction(),
            Without.structure().abstraction());
}

TEST(SpeculativeRuntimeTest, SnapshotPolicyUndoesCollateralWork) {
  RuntimeFixture &Fx = fixture();
  std::vector<Transaction> Txns = {mapTxn({{1, 10}, {2, 20}}),
                                   mapTxn({{1, 11}, {3, 30}})};
  SpeculativeRuntime Snap(Fx.F, Fx.C, factoryFor("HashTable"),
                          RollbackPolicy::Snapshot);
  RuntimeStats S = Snap.run(Txns);
  EXPECT_EQ(S.Commits, 2u);
  EXPECT_GT(S.SnapshotsTaken, 0u);
  EXPECT_EQ(Snap.structure().size(), 3);
}

// --- Lattice --------------------------------------------------------------------

TEST(LatticeTest, FullConditionIsTopAndSubsetsAreSoundOnly) {
  RuntimeFixture &Fx = fixture();
  ExhaustiveEngine Engine;
  std::vector<LatticePoint> Points = buildLattice(
      Fx.F, Fx.C, Engine, setFamily(), "contains", "remove_");
  // Two clauses: 4 subsets.
  ASSERT_EQ(Points.size(), 4u);

  const LatticePoint *Top = nullptr, *Bottom = nullptr;
  for (const LatticePoint &P : Points) {
    // Dropping clauses preserves soundness (§5.1)...
    EXPECT_TRUE(P.Sound) << P.NumClauses;
    // ...and only the full condition is complete.
    if (P.NumClauses == 2)
      Top = &P;
    if (P.NumClauses == 0)
      Bottom = &P;
    EXPECT_EQ(P.Complete, P.NumClauses == 2);
  }
  ASSERT_NE(Top, nullptr);
  ASSERT_NE(Bottom, nullptr);
  EXPECT_TRUE(Bottom->Condition->isFalse());
  EXPECT_EQ(Bottom->AcceptRate, 0.0);
  EXPECT_GT(Top->AcceptRate, 0.5);

  // Monotone: more clauses never accept fewer scenarios.
  for (const LatticePoint &P : Points)
    EXPECT_LE(P.AcceptRate, Top->AcceptRate);
}

TEST(LatticeTest, AcceptanceRateOfTrueIsOne) {
  ExprFactory &F = fixture().F;
  EXPECT_EQ(acceptanceRate(setFamily(), "add_", "add_", F.trueExpr()), 1.0);
}
