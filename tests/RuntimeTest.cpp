//===- tests/RuntimeTest.cpp - Dynamic checking, speculation, lattice ------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "impl/HashSet.h"
#include "impl/HashTable.h"
#include "runtime/Lattice.h"
#include "runtime/SpeculativeExecutor.h"

#include <gtest/gtest.h>

#include <random>

using namespace semcomm;

namespace {
struct RuntimeFixture {
  ExprFactory F;
  Catalog C{F};
};
RuntimeFixture &fixture() {
  static RuntimeFixture Fx;
  return Fx;
}

StructureFactory factoryFor(const std::string &Name) {
  for (const StructureFactory &F : allStructureFactories())
    if (F.Name == Name)
      return F;
  abort();
}
} // namespace

// --- DynamicChecker -------------------------------------------------------------

TEST(DynamicCheckerTest, ExactCheckMatchesGroundTruth) {
  // Against a live HashSet: contains(v1) then add(v2) commute iff
  // v1 != v2 or v1 was present (the paper's Fig. 2-2 condition).
  RuntimeFixture &Fx = fixture();
  DynamicChecker Checker(Fx.F, Fx.C);

  HashSet Before;
  Before.add(Value::obj(1));
  HashSet Live(Before); // contains() is pure, so s2 equals s1.
  Value R1Present = Value::boolean(true);

  // v1 = o1 present: commutes with add(o1).
  EXPECT_TRUE(Checker.commutesExact(Before, Live, "contains",
                                    {Value::obj(1)}, R1Present, "add_",
                                    {Value::obj(1)}));
  // v1 = o2 absent: conflicts with add(o2)...
  EXPECT_FALSE(Checker.commutesExact(Before, Live, "contains",
                                     {Value::obj(2)},
                                     Value::boolean(false), "add_",
                                     {Value::obj(2)}));
  // ...but commutes with add of a different element.
  EXPECT_TRUE(Checker.commutesExact(Before, Live, "contains",
                                    {Value::obj(2)}, Value::boolean(false),
                                    "add_", {Value::obj(3)}));
}

TEST(DynamicCheckerTest, ConservativeCheckIsSound) {
  // Whenever mayCommute says yes, the exact check agrees (dropping
  // s1-clauses only loses completeness, §4.1.2).
  RuntimeFixture &Fx = fixture();
  DynamicChecker Checker(Fx.F, Fx.C);
  std::mt19937 Rng(7);
  const Family &Fam = setFamily();

  for (int Trial = 0; Trial < 500; ++Trial) {
    HashSet Before;
    for (int I = 1; I <= 4; ++I)
      if (Rng() & 1)
        Before.add(Value::obj(I));
    const Operation &Op1 = Fam.Ops[Rng() % Fam.Ops.size()];
    ArgList A1, A2;
    if (!Op1.ArgSorts.empty())
      A1.push_back(Value::obj(1 + Rng() % 4));
    HashSet Live(Before);
    Value R1 = Live.invoke(Op1.CallName, A1);
    const Operation &Op2 = Fam.Ops[Rng() % Fam.Ops.size()];
    if (!Op2.ArgSorts.empty())
      A2.push_back(Value::obj(1 + Rng() % 4));

    if (Checker.mayCommute(Live, Op1.Name, A1, R1, Op2.Name, A2)) {
      EXPECT_TRUE(Checker.commutesExact(Before, Live, Op1.Name, A1, R1,
                                        Op2.Name, A2))
          << Op1.Name << " then " << Op2.Name;
    }
  }
}

// --- SpeculativeExecutor --------------------------------------------------------

namespace {

Transaction mapTxn(std::initializer_list<std::pair<int, int>> Puts) {
  Transaction T;
  for (auto [K, V] : Puts)
    T.push_back({"put", {Value::obj(K), Value::obj(V)}, 0});
  return T;
}

/// Replay-mode config: the seeded scheduler interleaves the transactions'
/// steps deterministically, so assertions about gatekeeper traffic and
/// conflicts are reproducible.
ExecutorConfig replayCfg(unsigned Threads, unsigned Shards = 1,
                         uint64_t Seed = 11) {
  ExecutorConfig Cfg;
  Cfg.Threads = Threads;
  Cfg.Shards = Shards;
  Cfg.Mode = SchedulerMode::Replay;
  Cfg.ReplaySeed = Seed;
  return Cfg;
}

/// A mixed Map workload over a sharded key space: puts, removes, and gets
/// (all total operations, so the serial replay reference applies exactly).
std::vector<Transaction> mixedMapWorkload(unsigned NumTxns, unsigned OpsPerTxn,
                                          unsigned NumKeys, unsigned Shards,
                                          uint32_t Seed) {
  std::mt19937 Rng(Seed);
  std::vector<Transaction> Txns;
  for (unsigned T = 0; T != NumTxns; ++T) {
    Transaction Txn;
    for (unsigned I = 0; I != OpsPerTxn; ++I) {
      Value Key = Value::obj(1 + Rng() % NumKeys);
      unsigned Shard = SpeculativeExecutor::shardOf(Key, Shards);
      switch (Rng() % 4) {
      case 0:
        Txn.push_back({"get", {Key}, Shard});
        break;
      case 1:
        Txn.push_back({"remove", {Key}, Shard});
        break;
      default:
        Txn.push_back(
            {"put", {Key, Value::obj(static_cast<int>(Rng() % 100))}, Shard});
        break;
      }
    }
    Txns.push_back(std::move(Txn));
  }
  return Txns;
}

/// The deterministic slice of ExecutorStats (everything but wall-clock
/// nanos and the sampled estimates), for invariance comparisons.
std::vector<uint64_t> deterministicStats(const ExecutorStats &S) {
  return {S.OpsExecuted,    S.GatekeeperChecks, S.GatekeeperPasses,
          S.Wounds,         S.InjectedAborts,   S.Stalls,
          S.WaitRounds,     S.OpsUndone,        S.PreSkips,
          S.SnapshotsTaken, S.Commits,          S.CheckerProgramRuns,
          S.CheckerFallbacks};
}

void expectShardsMatchSerialReplay(const SpeculativeExecutor &Ex,
                                   const StructureFactory &Factory,
                                   const std::vector<Transaction> &Txns) {
  std::vector<std::unique_ptr<ConcreteStructure>> Ref =
      SpeculativeExecutor::replaySerial(Factory, Ex.numShards(), Txns,
                                        Ex.commitOrder());
  for (unsigned S = 0; S != Ex.numShards(); ++S)
    EXPECT_EQ(Ex.shard(S).abstraction(), Ref[S]->abstraction())
        << "shard " << S;
}

} // namespace

TEST(SpeculativeExecutorTest, DisjointKeysRunWithoutAborts) {
  RuntimeFixture &Fx = fixture();
  SpeculativeExecutor Ex(Fx.F, Fx.C, factoryFor("HashTable"), replayCfg(2));
  ExecutorStats Stats = Ex.run({mapTxn({{1, 10}, {2, 20}}),
                                mapTxn({{3, 30}, {4, 40}}),
                                mapTxn({{5, 50}, {6, 60}})});
  EXPECT_TRUE(Stats.Completed);
  EXPECT_EQ(Stats.aborts(), 0u);
  EXPECT_EQ(Stats.Commits, 3u);
  EXPECT_EQ(Stats.OpsExecuted, 6u);
  // The replay scheduler interleaves the transactions, so the gatekeeper
  // sees concurrent uncommitted puts — and admits all of them.
  EXPECT_GT(Stats.GatekeeperPasses, 0u);
  EXPECT_EQ(Stats.GatekeeperChecks, Stats.GatekeeperPasses);
  EXPECT_EQ(Ex.shard(0).size(), 6);
}

TEST(SpeculativeExecutorTest, ConflictingPutsConflictAndStillConverge) {
  RuntimeFixture &Fx = fixture();
  SpeculativeExecutor Ex(Fx.F, Fx.C, factoryFor("HashTable"), replayCfg(2));
  // Same key, different values: put/put commutes only when values agree,
  // so one transaction's put is refused admission and it must wait or
  // roll back — yet both eventually commit.
  ExecutorStats Stats =
      Ex.run({mapTxn({{1, 10}, {2, 20}}), mapTxn({{1, 11}, {3, 30}})});
  EXPECT_GT(Stats.aborts() + Stats.Stalls + Stats.WaitRounds, 0u);
  EXPECT_GT(Stats.GatekeeperChecks, Stats.GatekeeperPasses);
  EXPECT_EQ(Stats.Commits, 2u);
  // Keys {1, 2, 3} are present; key 1 holds whichever committed last — a
  // serializable outcome.
  EXPECT_EQ(Ex.shard(0).size(), 3);
  Value K1 = Ex.shard(0).mapGet(Value::obj(1));
  EXPECT_TRUE(K1 == Value::obj(10) || K1 == Value::obj(11));
}

TEST(SpeculativeExecutorTest, InverseRollbackRestoresContribution) {
  // Forced-abort injection makes the writer roll back mid-flight; the
  // verified inverses must erase its partial contribution, and the final
  // committed state must still match the serial replay of the commit
  // order.
  RuntimeFixture &Fx = fixture();
  // AbortEvery=1 with a per-transaction cap of one: each transaction's
  // very first executed op self-aborts once (so the writer is guaranteed
  // to undo a mutating add), then both retry and complete.
  ExecutorConfig Cfg = replayCfg(2);
  Cfg.AbortEvery = 1;
  Cfg.MaxInjectedAbortsPerTxn = 1;
  SpeculativeExecutor Ex(Fx.F, Fx.C, factoryFor("HashSet"), Cfg);
  std::vector<Transaction> Txns = {
      {{"contains", {Value::obj(2)}, 0}, {"contains", {Value::obj(2)}, 0}},
      {{"add", {Value::obj(1)}, 0},
       {"add", {Value::obj(2)}, 0},
       {"remove", {Value::obj(1)}, 0}}};
  ExecutorStats Stats = Ex.run(Txns);
  EXPECT_EQ(Stats.Commits, 2u);
  EXPECT_GT(Stats.InjectedAborts, 0u);
  EXPECT_GT(Stats.OpsUndone, 0u);
  // Final committed state: {2} (1 added then removed by the writer).
  EXPECT_FALSE(Ex.shard(0).contains(Value::obj(1)));
  EXPECT_TRUE(Ex.shard(0).contains(Value::obj(2)));
  expectShardsMatchSerialReplay(Ex, factoryFor("HashSet"), Txns);
}

TEST(SpeculativeExecutorTest, CommutativityIncreasesConcurrency) {
  // Four transactions adding disjoint element ranges. With the gatekeeper
  // the adds interleave freely (distinct adds commute); without it every
  // concurrent pair "conflicts" and the schedule degenerates to waiting
  // serialization.
  RuntimeFixture &Fx = fixture();
  std::vector<Transaction> Txns;
  for (int T = 0; T < 4; ++T) {
    Transaction Txn;
    for (int I = 0; I < 5; ++I)
      Txn.push_back({"add", {Value::obj(1 + T * 5 + I)}, 0});
    Txns.push_back(Txn);
  }

  SpeculativeExecutor With(Fx.F, Fx.C, factoryFor("HashSet"), replayCfg(2));
  ExecutorStats SWith = With.run(Txns);
  ExecutorConfig NoGkCfg = replayCfg(2);
  NoGkCfg.UseCommutativity = false;
  SpeculativeExecutor Without(Fx.F, Fx.C, factoryFor("HashSet"), NoGkCfg);
  ExecutorStats SWithout = Without.run(Txns);

  EXPECT_EQ(SWith.Commits, 4u);
  EXPECT_EQ(SWithout.Commits, 4u);
  // With the gatekeeper: full concurrency, no waiting, no rollbacks.
  EXPECT_EQ(SWith.aborts(), 0u);
  EXPECT_EQ(SWith.WaitRounds, 0u);
  EXPECT_GT(SWith.GatekeeperPasses, 0u);
  // Without: the same schedule serializes by waiting (and wounding when a
  // younger transaction got in first).
  EXPECT_GT(SWithout.WaitRounds, 0u);
  EXPECT_EQ(SWithout.GatekeeperPasses, 0u);
  // Either way the committed abstract state is identical.
  EXPECT_EQ(With.shard(0).abstraction(), Without.shard(0).abstraction());
}

TEST(SpeculativeExecutorTest, SnapshotPolicyUndoesCollateralWork) {
  RuntimeFixture &Fx = fixture();
  std::vector<Transaction> Txns = {mapTxn({{1, 10}, {2, 20}}),
                                   mapTxn({{1, 11}, {3, 30}})};
  ExecutorConfig Cfg = replayCfg(2);
  Cfg.Policy = RollbackPolicy::Snapshot;
  Cfg.AbortEvery = 2;
  Cfg.MaxInjectedAbortsPerTxn = 1;
  SpeculativeExecutor Snap(Fx.F, Fx.C, factoryFor("HashTable"), Cfg);
  ExecutorStats S = Snap.run(Txns);
  EXPECT_EQ(S.Commits, 2u);
  EXPECT_GT(S.SnapshotsTaken, 0u);
  EXPECT_GT(S.OpsUndone, 0u);
  EXPECT_EQ(Snap.shard(0).size(), 3);
}

TEST(SpeculativeExecutorTest, ReplayModeIsThreadCountInvariant) {
  // Satellite (a): in Replay mode the schedule is a pure function of the
  // seed, so final per-shard states, the commit order, and every
  // deterministic statistic must be identical at 1 and 8 threads.
  RuntimeFixture &Fx = fixture();
  std::vector<Transaction> Txns = mixedMapWorkload(
      /*NumTxns=*/10, /*OpsPerTxn=*/12, /*NumKeys=*/16, /*Shards=*/4,
      /*Seed=*/42);

  SpeculativeExecutor One(Fx.F, Fx.C, factoryFor("HashTable"),
                          replayCfg(1, /*Shards=*/4, /*Seed=*/99));
  ExecutorStats S1 = One.run(Txns);
  SpeculativeExecutor Eight(Fx.F, Fx.C, factoryFor("HashTable"),
                            replayCfg(8, /*Shards=*/4, /*Seed=*/99));
  ExecutorStats S8 = Eight.run(Txns);

  EXPECT_TRUE(S1.Completed);
  EXPECT_TRUE(S8.Completed);
  EXPECT_EQ(S1.Commits, 10u);
  EXPECT_EQ(deterministicStats(S1), deterministicStats(S8));
  EXPECT_EQ(One.commitOrder(), Eight.commitOrder());
  for (unsigned S = 0; S != One.numShards(); ++S)
    EXPECT_EQ(One.shard(S).abstraction(), Eight.shard(S).abstraction())
        << "shard " << S;
  expectShardsMatchSerialReplay(One, factoryFor("HashTable"), Txns);
}

TEST(SpeculativeExecutorTest, InverseAndSnapshotRollbackAgreeUnderAbortStorms) {
  // Satellite (b): under forced-abort storms both rollback policies must
  // leave each executor's shards exactly equal to the serial replay of
  // its own commit order (the policies may legitimately commit in
  // different orders, since snapshot admission is stricter).
  RuntimeFixture &Fx = fixture();
  std::vector<Transaction> Txns = mixedMapWorkload(
      /*NumTxns=*/8, /*OpsPerTxn=*/10, /*NumKeys=*/12, /*Shards=*/2,
      /*Seed=*/7);

  for (RollbackPolicy Policy :
       {RollbackPolicy::Inverses, RollbackPolicy::Snapshot}) {
    ExecutorConfig Cfg = replayCfg(4, /*Shards=*/2, /*Seed=*/5);
    Cfg.Policy = Policy;
    Cfg.AbortEvery = 6;
    Cfg.MaxInjectedAbortsPerTxn = 2;
    SpeculativeExecutor Ex(Fx.F, Fx.C, factoryFor("HashTable"), Cfg);
    ExecutorStats S = Ex.run(Txns);
    EXPECT_TRUE(S.Completed);
    EXPECT_EQ(S.Commits, 8u);
    EXPECT_GT(S.InjectedAborts, 0u)
        << (Policy == RollbackPolicy::Inverses ? "inverses" : "snapshot");
    EXPECT_GT(S.OpsUndone, 0u);
    expectShardsMatchSerialReplay(Ex, factoryFor("HashTable"), Txns);
  }
}

TEST(SpeculativeExecutorTest, IndexedAndInterpretedGatekeepersAgree) {
  // Satellite (c): with the same seed and workload, the compiled-index
  // gatekeeper and the tree-interpreter reference must produce identical
  // schedules, stats, and final states — the index changes query cost,
  // never answers.
  RuntimeFixture &Fx = fixture();
  std::vector<Transaction> Txns = mixedMapWorkload(
      /*NumTxns=*/8, /*OpsPerTxn=*/10, /*NumKeys=*/6, /*Shards=*/2,
      /*Seed=*/21);

  ExecutorConfig IdxCfg = replayCfg(4, /*Shards=*/2, /*Seed=*/3);
  IdxCfg.CheckerPath = IndexedChecker::Path::Indexed;
  SpeculativeExecutor Indexed(Fx.F, Fx.C, factoryFor("HashTable"), IdxCfg);
  ExecutorStats SI = Indexed.run(Txns);

  ExecutorConfig InterpCfg = IdxCfg;
  InterpCfg.CheckerPath = IndexedChecker::Path::Interpreted;
  SpeculativeExecutor Interp(Fx.F, Fx.C, factoryFor("HashTable"), InterpCfg);
  ExecutorStats ST = Interp.run(Txns);

  EXPECT_GT(SI.GatekeeperChecks, 0u);
  // The shipped catalog lowers every condition, so the indexed path never
  // falls back; the interpreted path answers everything by fallback.
  EXPECT_EQ(SI.CheckerFallbacks, 0u);
  EXPECT_EQ(ST.CheckerFallbacks, ST.GatekeeperChecks);
  EXPECT_EQ(ST.CheckerProgramRuns, 0u);

  // Same verdicts → same schedule: compare everything except the checker
  // counters (which name the machinery, not the answers).
  std::vector<uint64_t> A = deterministicStats(SI), B = deterministicStats(ST);
  A.resize(11); // drop CheckerProgramRuns / CheckerFallbacks
  B.resize(11);
  EXPECT_EQ(A, B);
  EXPECT_EQ(Indexed.commitOrder(), Interp.commitOrder());
  for (unsigned S = 0; S != Indexed.numShards(); ++S)
    EXPECT_EQ(Indexed.shard(S).abstraction(), Interp.shard(S).abstraction());
}

TEST(SpeculativeExecutorTest, ParallelModeCommitsEverythingSerializably) {
  // Real concurrency (non-deterministic interleavings): every transaction
  // still commits exactly once and the result equals the serial replay of
  // the observed commit order.
  RuntimeFixture &Fx = fixture();
  std::vector<Transaction> Txns = mixedMapWorkload(
      /*NumTxns=*/16, /*OpsPerTxn=*/20, /*NumKeys=*/10, /*Shards=*/4,
      /*Seed=*/33);
  ExecutorConfig Cfg;
  Cfg.Threads = 8;
  Cfg.Shards = 4;
  Cfg.Mode = SchedulerMode::Parallel;
  SpeculativeExecutor Ex(Fx.F, Fx.C, factoryFor("HashTable"), Cfg);
  ExecutorStats S = Ex.run(Txns);
  EXPECT_TRUE(S.Completed);
  EXPECT_EQ(S.Commits, 16u);
  EXPECT_EQ(Ex.commitOrder().size(), 16u);
  expectShardsMatchSerialReplay(Ex, factoryFor("HashTable"), Txns);
}

// --- Lattice --------------------------------------------------------------------

TEST(LatticeTest, FullConditionIsTopAndSubsetsAreSoundOnly) {
  RuntimeFixture &Fx = fixture();
  ExhaustiveEngine Engine;
  std::vector<LatticePoint> Points = buildLattice(
      Fx.F, Fx.C, Engine, setFamily(), "contains", "remove_");
  // Two clauses: 4 subsets.
  ASSERT_EQ(Points.size(), 4u);

  const LatticePoint *Top = nullptr, *Bottom = nullptr;
  for (const LatticePoint &P : Points) {
    // Dropping clauses preserves soundness (§5.1)...
    EXPECT_TRUE(P.Sound) << P.NumClauses;
    // ...and only the full condition is complete.
    if (P.NumClauses == 2)
      Top = &P;
    if (P.NumClauses == 0)
      Bottom = &P;
    EXPECT_EQ(P.Complete, P.NumClauses == 2);
  }
  ASSERT_NE(Top, nullptr);
  ASSERT_NE(Bottom, nullptr);
  EXPECT_TRUE(Bottom->Condition->isFalse());
  EXPECT_EQ(Bottom->AcceptRate, 0.0);
  EXPECT_GT(Top->AcceptRate, 0.5);

  // Monotone: more clauses never accept fewer scenarios.
  for (const LatticePoint &P : Points)
    EXPECT_LE(P.AcceptRate, Top->AcceptRate);
}

TEST(LatticeTest, AcceptanceRateOfTrueIsOne) {
  ExprFactory &F = fixture().F;
  EXPECT_EQ(acceptanceRate(setFamily(), "add_", "add_", F.trueExpr()), 1.0);
}
