//===- tests/IndexTest.cpp - Compiled commutativity index -------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "index/CommutativityIndex.h"
#include "index/IndexFuzz.h"
#include "index/IndexVM.h"
#include "logic/Simplifier.h"
#include "runtime/IndexedChecker.h"
#include "runtime/SpeculativeExecutor.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

using namespace semcomm;
using namespace semcomm::index;

namespace {

/// One factory + catalog + compiled index shared by every test (all three
/// are immutable once built; the catalog factory is only touched through
/// the serialised helpers below).
struct IndexFixture {
  ExprFactory F;
  Catalog C{F};
  CommutativityIndex Idx = CommutativityIndex::compile(C);
};
IndexFixture &fixture() {
  static IndexFixture Fx;
  return Fx;
}

StructureFactory factoryFor(const std::string &Name) {
  for (const StructureFactory &F : allStructureFactories())
    if (F.Name == Name)
      return F;
  abort();
}

} // namespace

// --- Coverage ----------------------------------------------------------------

TEST(IndexCoverageTest, EveryPaperConditionIsCompiledOrConstant) {
  IndexFixture &Fx = fixture();
  IndexStats S = Fx.Idx.stats();

  // The paper's counting: 765 conditions over the four families.
  EXPECT_EQ(S.PaperConditions, 765u);
  EXPECT_EQ(S.PaperConditions, Fx.C.totalConditionsPaperCount());

  // Four slots per ordered pair (before / between / after / conservative
  // between), every family dense.
  unsigned ExpectedSlots = 0;
  for (const Family *Fam : allFamilies())
    ExpectedSlots += static_cast<unsigned>(Fam->Ops.size() * Fam->Ops.size()) *
                     NumSlotsPerPair;
  EXPECT_EQ(S.TotalSlots, ExpectedSlots);

  // The tentpole guarantee: nothing in the shipped catalog is left to the
  // interpreter — every slot is either a program or a bitmap constant.
  EXPECT_EQ(S.Fallbacks, 0u);
  EXPECT_EQ(S.Programs + S.Constants, S.TotalSlots);
  EXPECT_GT(S.Programs, 0u);
  EXPECT_GT(S.Constants, 0u);
  EXPECT_GT(S.MaxRegs, 0u);
}

TEST(IndexCoverageTest, ConservativeProgramsNeverProbeS1) {
  // The conservative dialect drops every s1 clause, so its compiled form
  // must never touch state slot 0 — IndexedChecker::mayCommuteFast relies
  // on this when it passes a null s1 view.
  IndexFixture &Fx = fixture();
  for (const FamilyIndex &FI : Fx.Idx.families()) {
    for (unsigned I = 0; I != FI.numOps(); ++I)
      for (unsigned J = 0; J != FI.numOps(); ++J) {
        const IndexProgram *P = FI.program(I, J, SlotBetweenConservative);
        if (!P)
          continue;
        for (const IInstr &Instr : P->Code) {
          if (Instr.Op >= IOpcode::SetContains) {
            EXPECT_NE(unsigned(Instr.St), StateSlotS1)
                << FI.familyName() << " pair (" << I << "," << J
                << ") conservative program probes s1";
          }
        }
      }
  }
}

// --- Differential fuzzing ----------------------------------------------------

TEST(IndexFuzzTest, AgreesWithEvaluatorOnEveryCondition) {
  IndexFixture &Fx = fixture();
  FuzzReport R = crossCheck(Fx.C, Fx.Idx, /*Seed=*/7, /*Trials=*/32,
                            /*Threads=*/1);
  EXPECT_EQ(R.UnsupportedSlots, 0u);
  EXPECT_EQ(R.Mismatches, 0u) << (R.Diagnostics.empty()
                                      ? std::string("no diagnostics")
                                      : R.Diagnostics.front());
  EXPECT_GT(R.ProgramsChecked, 0u);
  EXPECT_GT(R.ConstantsChecked, 0u);
}

TEST(IndexFuzzTest, ConstantBitmapHoldsOnAThousandEnvironments) {
  // The bitmap claims some conditions are environment-independent; pin
  // that against the interpreter on >= 1000 random environments.
  IndexFixture &Fx = fixture();
  FuzzReport R = crossCheck(Fx.C, Fx.Idx, /*Seed=*/99, /*Trials=*/64,
                            /*Threads=*/2);
  EXPECT_GE(R.ConstantsChecked, 1000u);
  EXPECT_EQ(R.Mismatches, 0u);
}

TEST(IndexFuzzTest, DeterministicAcrossThreadCounts) {
  // The counter-based RNG makes the sweep thread-count independent: the
  // same seed must visit the same trials and stay clean at 8 threads over
  // the one shared immutable index.
  IndexFixture &Fx = fixture();
  FuzzReport One = crossCheck(Fx.C, Fx.Idx, /*Seed=*/3, /*Trials=*/8,
                              /*Threads=*/1);
  FuzzReport Eight = crossCheck(Fx.C, Fx.Idx, /*Seed=*/3, /*Trials=*/8,
                                /*Threads=*/8);
  EXPECT_EQ(One.Trials, Eight.Trials);
  EXPECT_EQ(One.ProgramsChecked, Eight.ProgramsChecked);
  EXPECT_EQ(One.ConstantsChecked, Eight.ConstantsChecked);
  EXPECT_EQ(One.Mismatches, 0u);
  EXPECT_EQ(Eight.Mismatches, 0u);
}

TEST(IndexFuzzTest, SharedIndexServesConcurrentVMs) {
  // Eight threads, each with its own IndexVM, hammer the same program set
  // of the shared index and must all see the same answers.
  IndexFixture &Fx = fixture();
  const FamilyIndex *FI = Fx.Idx.familyIndex(setFamily());
  ASSERT_NE(FI, nullptr);
  const IndexProgram *Prog = nullptr;
  for (unsigned I = 0; I != FI->numOps() && !Prog; ++I)
    for (unsigned J = 0; J != FI->numOps() && !Prog; ++J)
      Prog = FI->program(I, J, SlotBetweenConservative);
  ASSERT_NE(Prog, nullptr);

  AbstractState Live = AbstractState::makeSet();
  Live.setInsert(Value::obj(1));
  const StateView *Views[NumStateSlots] = {nullptr, &Live, nullptr};
  Value Args[MaxArgSlots];
  for (unsigned I = 0; I != MaxArgSlots; ++I)
    Args[I] = Value::obj(static_cast<int64_t>(I % 3));

  IndexVM Reference(Fx.Idx.stats().MaxRegs);
  bool Expected = Reference.runBool(*Prog, Args, Views);

  std::atomic<unsigned> Disagreements{0};
  ThreadPool::parallelFor(8, 8, [&](size_t) {
    IndexVM VM(Fx.Idx.stats().MaxRegs);
    for (int Rep = 0; Rep != 1000; ++Rep)
      if (VM.runBool(*Prog, Args, Views) != Expected)
        Disagreements.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(Disagreements.load(), 0u);
}

// --- Serialization -----------------------------------------------------------

TEST(IndexSerializationTest, RoundTripIsExact) {
  IndexFixture &Fx = fixture();
  std::string Image = Fx.Idx.serialize();
  std::optional<CommutativityIndex> Reloaded =
      CommutativityIndex::parse(Image);
  ASSERT_TRUE(Reloaded.has_value());
  EXPECT_TRUE(*Reloaded == Fx.Idx);
  EXPECT_EQ(Reloaded->serialize(), Image);

  // The reloaded image answers queries too (families rebound by name).
  IndexStats A = Fx.Idx.stats(), B = Reloaded->stats();
  EXPECT_EQ(A.Programs, B.Programs);
  EXPECT_EQ(A.Constants, B.Constants);
  EXPECT_EQ(A.TotalInstructions, B.TotalInstructions);
  EXPECT_NE(Reloaded->familyIndex(setFamily()), nullptr);
}

TEST(IndexSerializationTest, RejectsCorruptImages) {
  IndexFixture &Fx = fixture();
  std::string Image = Fx.Idx.serialize();

  EXPECT_FALSE(CommutativityIndex::parse("").has_value());
  EXPECT_FALSE(CommutativityIndex::parse("SEMCOMM-INDEX 2\n").has_value());
  // Truncation loses the trailing "end" sentinel.
  EXPECT_FALSE(
      CommutativityIndex::parse(Image.substr(0, Image.size() / 2))
          .has_value());
  // An unknown family name cannot be rebound.
  std::string Renamed = Image;
  size_t Pos = Renamed.find("family Set");
  ASSERT_NE(Pos, std::string::npos);
  Renamed.replace(Pos, 10, "family Zet");
  EXPECT_FALSE(CommutativityIndex::parse(Renamed).has_value());
}

// --- IndexedChecker ----------------------------------------------------------

TEST(IndexedCheckerTest, AgreesWithDynamicCheckerOnLiveStructures) {
  // Both checkers answer every (op1, op2) gatekeeper query identically on
  // live concrete structures, for a spread of argument tuples.
  IndexFixture &Fx = fixture();
  DynamicChecker Interp(Fx.F, Fx.C);
  IndexedChecker Indexed(Fx.F, Fx.C);

  for (const StructureFactory &Factory : allStructureFactories()) {
    std::unique_ptr<ConcreteStructure> Before = Factory.Make();
    // Populate deterministically through family-appropriate mutators.
    const Family &Fam = Factory.Fam ? *Factory.Fam : Before->family();
    if (Fam.Name == "Accumulator") {
      Before->invoke("increase", {Value::integer(3)});
    } else if (Fam.Name == "Set") {
      for (int I = 0; I != 5; ++I)
        Before->invoke("add", {Value::obj(I)});
    } else if (Fam.Name == "Map") {
      for (int I = 0; I != 5; ++I)
        Before->invoke("put", {Value::obj(I), Value::obj(I + 10)});
    } else {
      for (int I = 0; I != 5; ++I)
        Before->invoke("add_at", {Value::integer(I), Value::obj(I % 3)});
    }
    std::unique_ptr<ConcreteStructure> Live = Before->clone();

    // Argument pools per sort keep every tuple precondition-safe for pure
    // queries (the checkers never execute the operations).
    auto argFor = [&](Sort S, int Salt) {
      switch (S) {
      case Sort::Int:
        return Value::integer(Salt % 4); // In-range for the 5-element list.
      case Sort::Bool:
        return Value::boolean(Salt % 2 == 0);
      default:
        return Salt % 5 == 4 ? Value::null() : Value::obj(Salt % 6);
      }
    };

    unsigned Checked = 0;
    for (const Operation &O1 : Fam.Ops)
      for (const Operation &O2 : Fam.Ops)
        for (int Salt = 0; Salt != 4; ++Salt) {
          ArgList A1, A2;
          for (size_t I = 0; I != O1.ArgSorts.size(); ++I)
            A1.push_back(argFor(O1.ArgSorts[I], Salt + static_cast<int>(I)));
          for (size_t I = 0; I != O2.ArgSorts.size(); ++I)
            A2.push_back(
                argFor(O2.ArgSorts[I], Salt + 2 + static_cast<int>(I)));
          Value R1 = O1.RecordsReturn ? argFor(O1.ReturnSort, Salt + 1)
                                      : Value::null();

          EXPECT_EQ(
              Interp.mayCommute(*Live, O1.Name, A1, R1, O2.Name, A2),
              Indexed.mayCommute(*Live, O1.Name, A1, R1, O2.Name, A2))
              << Factory.Name << " " << O1.Name << "," << O2.Name
              << " salt " << Salt;
          EXPECT_EQ(Interp.commutesExact(*Before, *Live, O1.Name, A1, R1,
                                         O2.Name, A2),
                    Indexed.commutesExact(*Before, *Live, O1.Name, A1, R1,
                                          O2.Name, A2))
              << Factory.Name << " " << O1.Name << "," << O2.Name
              << " salt " << Salt;
          ++Checked;
        }
    EXPECT_GT(Checked, 0u);
  }
}

TEST(IndexedCheckerTest, PathToggleAndQueryStats) {
  IndexFixture &Fx = fixture();
  IndexedChecker Checker(Fx.F, Fx.C);
  {
    std::unique_ptr<ConcreteStructure> S = factoryFor("HashSet").Make();
    S->invoke("add", {Value::obj(1)});

    // Indexed path: queries resolve via bitmap or bytecode, never the
    // interpreter (the catalog compiles fully).
    Checker.resetQueryStats();
    Checker.mayCommute(*S, "add", {Value::obj(1)}, Value::boolean(true),
                       "contains", {Value::obj(2)});
    EXPECT_EQ(Checker.queryStats().InterpreterFallbacks, 0u);
    EXPECT_EQ(Checker.queryStats().ConstantHits +
                  Checker.queryStats().ProgramRuns,
              1u);

    // Interpreted path: everything goes to the oracle.
    Checker.setPath(IndexedChecker::Path::Interpreted);
    Checker.resetQueryStats();
    Checker.mayCommute(*S, "add", {Value::obj(1)}, Value::boolean(true),
                       "contains", {Value::obj(2)});
    EXPECT_EQ(Checker.queryStats().InterpreterFallbacks, 1u);
    EXPECT_EQ(Checker.queryStats().ProgramRuns, 0u);
  }
}

TEST(IndexedCheckerTest, PreloadedSharedIndexAnswersQueries) {
  // The semcommute-indexgen deployment shape: one parsed image shared (as
  // a const index) by checkers, answering like a freshly compiled one.
  IndexFixture &Fx = fixture();
  auto Shared = std::make_shared<const CommutativityIndex>(
      *CommutativityIndex::parse(Fx.Idx.serialize()));
  IndexedChecker FromImage(Fx.F, Fx.C, Shared);
  IndexedChecker FromCatalog(Fx.F, Fx.C);

  std::unique_ptr<ConcreteStructure> S = factoryFor("ListSet").Make();
  S->invoke("add", {Value::obj(1)});
  for (int Salt = 0; Salt != 8; ++Salt) {
    Value A = Value::obj(Salt % 3);
    Value B = Value::obj((Salt + 1) % 3);
    EXPECT_EQ(FromImage.mayCommute(*S, "add", {A}, Value::boolean(true),
                                   "contains", {B}),
              FromCatalog.mayCommute(*S, "add", {A}, Value::boolean(true),
                                     "contains", {B}));
  }
}

// --- DynamicChecker memoization ----------------------------------------------

TEST(DynamicCheckerMemoTest, ConservativeBetweenIsMemoized) {
  IndexFixture &Fx = fixture();
  DynamicChecker Checker(Fx.F, Fx.C);
  const Family &Fam = setFamily();

  // Hash-consing makes ExprRef equality structural; memoization makes
  // repeated lookups return the identical node without re-rewriting.
  ExprRef First = Checker.conservativeBetween(Fam, "add", "contains");
  ExprRef Second = Checker.conservativeBetween(Fam, "add", "contains");
  EXPECT_EQ(First, Second);

  // And the memoized value is exactly the shared-helper rewrite of the
  // catalog's between condition.
  ExprRef Expected =
      dropS1Disjuncts(Fx.F, Fx.C.entry(Fam, "add", "contains").Between);
  EXPECT_EQ(First, Expected);
}

// --- SpeculativeExecutor on the index ----------------------------------------

TEST(SpeculativeIndexTest, IndexedAndInterpretedGatekeepersAgree) {
  // The same workload through both gatekeeper paths must produce the same
  // schedule (stats) and the same final abstract state. Replay mode keeps
  // the comparison exact under multi-threaded execution.
  IndexFixture &Fx = fixture();
  std::vector<Transaction> Txns;
  for (int T = 0; T != 4; ++T) {
    Transaction Txn;
    for (int I = 0; I != 6; ++I) {
      int K = (T * 7 + I * 3) % 8;
      if ((T + I) % 3 == 0)
        Txn.push_back({"add", {Value::obj(K)}, 0});
      else if ((T + I) % 3 == 1)
        Txn.push_back({"contains", {Value::obj(K)}, 0});
      else
        Txn.push_back({"remove", {Value::obj(K)}, 0});
    }
    Txns.push_back(std::move(Txn));
  }

  ExecutorConfig Cfg;
  Cfg.Threads = 4;
  Cfg.Mode = SchedulerMode::Replay;
  Cfg.ReplaySeed = 17;
  Cfg.CheckerPath = IndexedChecker::Path::Indexed;
  SpeculativeExecutor Indexed(Fx.F, Fx.C, factoryFor("HashSet"), Cfg);
  ExecutorStats IndexedStats = Indexed.run(Txns);

  Cfg.CheckerPath = IndexedChecker::Path::Interpreted;
  SpeculativeExecutor Interp(Fx.F, Fx.C, factoryFor("HashSet"), Cfg);
  ExecutorStats InterpStats = Interp.run(Txns);

  EXPECT_EQ(IndexedStats.OpsExecuted, InterpStats.OpsExecuted);
  EXPECT_EQ(IndexedStats.GatekeeperChecks, InterpStats.GatekeeperChecks);
  EXPECT_EQ(IndexedStats.GatekeeperPasses, InterpStats.GatekeeperPasses);
  EXPECT_EQ(IndexedStats.aborts(), InterpStats.aborts());
  EXPECT_EQ(IndexedStats.Commits, InterpStats.Commits);
  EXPECT_EQ(Indexed.commitOrder(), Interp.commitOrder());
  EXPECT_TRUE(Indexed.shard(0).abstraction() ==
              Interp.shard(0).abstraction());

  // The indexed gatekeeper actually used the index; the interpreted one
  // answered every admission query through the oracle.
  EXPECT_GT(IndexedStats.GatekeeperChecks, 0u);
  EXPECT_EQ(IndexedStats.CheckerFallbacks, 0u);
  EXPECT_EQ(InterpStats.CheckerFallbacks, InterpStats.GatekeeperChecks);
}

TEST(IndexedCheckerTest, SampledHandleStatsCountEveryPeriodthQuery) {
  // Opt-in sampling makes constant-bitmap hit rates observable on the
  // PairHandle fast path: every Period-th query (power-of-two rounded) is
  // classified; off by default.
  IndexFixture &Fx = fixture();
  IndexedChecker Checker(Fx.F, Fx.C);
  EXPECT_EQ(Checker.statsSamplingPeriod(), 0u);

  // Rounding: 3 -> 4, 64 -> 64, 1 -> every query.
  Checker.setStatsSampling(3);
  EXPECT_EQ(Checker.statsSamplingPeriod(), 4u);
  Checker.setStatsSampling(64);
  EXPECT_EQ(Checker.statsSamplingPeriod(), 64u);

  std::unique_ptr<ConcreteStructure> S = factoryFor("HashSet").Make();
  S->invoke("add", {Value::obj(1)});
  // add(o1) / add(o2): distinct-element adds commute unconditionally, a
  // constant-bitmap slot.
  IndexedChecker::PairHandle H = Checker.resolve(setFamily(), "add_", "add_");

  Checker.setStatsSampling(4);
  Checker.resetQueryStats();
  for (int I = 0; I != 17; ++I)
    Checker.mayCommuteFast(H, *S, {Value::obj(1)}, Value(), {Value::obj(2)});
  EXPECT_EQ(Checker.queryStats().SampledQueries, 4u); // floor(17 / 4)
  EXPECT_EQ(Checker.queryStats().SampledConstantHits,
            Checker.queryStats().SampledQueries);

  // Sampling every query degenerates to exact counting.
  Checker.setStatsSampling(1);
  Checker.resetQueryStats();
  for (int I = 0; I != 5; ++I)
    Checker.mayCommuteFast(H, *S, {Value::obj(1)}, Value(), {Value::obj(2)});
  EXPECT_EQ(Checker.queryStats().SampledQueries, 5u);

  // Off again: the tick is not even advanced.
  Checker.setStatsSampling(0);
  Checker.resetQueryStats();
  for (int I = 0; I != 5; ++I)
    Checker.mayCommuteFast(H, *S, {Value::obj(1)}, Value(), {Value::obj(2)});
  EXPECT_EQ(Checker.queryStats().SampledQueries, 0u);
  EXPECT_EQ(Checker.queryStats().SampledConstantHits, 0u);
}
