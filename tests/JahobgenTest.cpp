//===- tests/JahobgenTest.cpp - Jahob rendering tests -----------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "jahobgen/JahobPrinter.h"

#include <gtest/gtest.h>

using namespace semcomm;

namespace {
struct GenFixture {
  ExprFactory F;
  Catalog C{F};
};
GenFixture &fixture() {
  static GenFixture Fx;
  return Fx;
}

const TestingMethod *findMethod(const std::vector<TestingMethod> &Methods,
                                const char *Op1, const char *Op2,
                                ConditionKind K, MethodRole R) {
  for (const TestingMethod &M : Methods)
    if (M.Entry->op1().Name == Op1 && M.Entry->op2().Name == Op2 &&
        M.Kind == K && M.Role == R)
      return &M;
  return nullptr;
}
} // namespace

TEST(JahobgenTest, HashSetSpecMatchesFigure21) {
  std::string Spec = renderHashSetSpec();
  EXPECT_NE(Spec.find("public ghost specvar contents"), std::string::npos);
  EXPECT_NE(Spec.find("requires \"init & v ~= null\""), std::string::npos);
  EXPECT_NE(Spec.find("contents = old contents Un {v}"), std::string::npos);
  EXPECT_NE(Spec.find("result = (v : contents)"), std::string::npos);
}

TEST(JahobgenTest, Figure22SoundnessMethodShape) {
  GenFixture &Fx = fixture();
  auto Methods = generateTestingMethods(Fx.C, setFamily());
  const TestingMethod *M =
      findMethod(Methods, "contains", "add_", ConditionKind::Between,
                 MethodRole::Soundness);
  ASSERT_NE(M, nullptr);
  std::string Text = renderTestingMethod(*M, "HashSet", Fx.F);

  // The Fig. 2-2 skeleton: two equal-abstract-state HashSets, both orders,
  // the assumed between condition, and the agreement assertion.
  EXPECT_NE(Text.find("HashSet sa, HashSet sb"), std::string::npos);
  EXPECT_NE(Text.find("sa..contents = sb..contents"), std::string::npos);
  EXPECT_NE(Text.find("boolean r1a = sa.contains(v1);"), std::string::npos);
  EXPECT_NE(Text.find("assume \"v1 ~= v2 | r1a\""), std::string::npos);
  EXPECT_NE(Text.find("sa.add(v2);"), std::string::npos);
  EXPECT_NE(Text.find("sb.add(v2);"), std::string::npos);
  EXPECT_NE(Text.find("boolean r1b = sb.contains(v1);"), std::string::npos);
  EXPECT_NE(Text.find("assert \"r1a = r1b & sa..contents = sb..contents"),
            std::string::npos);
}

TEST(JahobgenTest, Figure22CompletenessNegatesConditionAndAssertion) {
  GenFixture &Fx = fixture();
  auto Methods = generateTestingMethods(Fx.C, setFamily());
  const TestingMethod *M =
      findMethod(Methods, "contains", "add_", ConditionKind::Between,
                 MethodRole::Completeness);
  ASSERT_NE(M, nullptr);
  std::string Text = renderTestingMethod(*M, "HashSet", Fx.F);
  EXPECT_NE(Text.find("assume \"~(v1 ~= v2 | r1a)\""), std::string::npos);
  EXPECT_NE(Text.find("assert \"~(r1a = r1b"), std::string::npos);
}

TEST(JahobgenTest, BeforeConditionSitsBeforeBothCalls) {
  GenFixture &Fx = fixture();
  auto Methods = generateTestingMethods(Fx.C, setFamily());
  const TestingMethod *M = findMethod(
      Methods, "add", "remove", ConditionKind::Before, MethodRole::Soundness);
  ASSERT_NE(M, nullptr);
  std::string Text = renderTestingMethod(*M, "ListSet", Fx.F);
  size_t Assume = Text.find("assume");
  size_t FirstCall = Text.find("sa.add(v1)");
  ASSERT_NE(Assume, std::string::npos);
  ASSERT_NE(FirstCall, std::string::npos);
  EXPECT_LT(Assume, FirstCall);
}

TEST(JahobgenTest, InverseMethodsMatchFigures23And24) {
  std::vector<InverseSpec> Specs = buildInverseSpecs();
  std::string AddInv = renderInverseMethod(Specs[1], "HashSet");
  EXPECT_NE(AddInv.find("boolean r = s.add(v);"), std::string::npos);
  EXPECT_NE(AddInv.find("if (r) { s.remove(v); }"), std::string::npos);
  EXPECT_NE(AddInv.find("s..contents = s..(old contents)"),
            std::string::npos);

  std::string PutInv = renderInverseMethod(Specs[3], "HashTable");
  EXPECT_NE(PutInv.find("Object r = s.put(k, v);"), std::string::npos);
  EXPECT_NE(PutInv.find("if (r != null) { s.put(k, r); } else { "
                        "s.remove(k); }"),
            std::string::npos);
}

TEST(JahobgenTest, TemplatesMatchFigures31And32) {
  std::string T = renderCompletenessTemplate();
  EXPECT_NE(T.find("before_commutativity_condition"), std::string::npos);
  EXPECT_NE(T.find("~(r1a = r1b & r2a = r2b"), std::string::npos);
  std::string I = renderInverseTemplate();
  EXPECT_NE(I.find("execute_inverse_operation()"), std::string::npos);
  EXPECT_NE(I.find("s_abstract_state = s_initial_abstract_state"),
            std::string::npos);
}

TEST(JahobgenTest, ArrayListMethodRendersIndexArguments) {
  GenFixture &Fx = fixture();
  auto Methods = generateTestingMethods(Fx.C, arrayListFamily());
  const TestingMethod *M =
      findMethod(Methods, "add_at", "indexOf", ConditionKind::Between,
                 MethodRole::Soundness);
  ASSERT_NE(M, nullptr);
  std::string Text = renderTestingMethod(*M, "ArrayList", Fx.F);
  EXPECT_NE(Text.find("int i1, Object v1, Object v2"), std::string::npos);
  EXPECT_NE(Text.find("sa.add_at(i1, v1);"), std::string::npos);
  EXPECT_NE(Text.find("int r2a = sa.indexOf(v2);"), std::string::npos);
}
