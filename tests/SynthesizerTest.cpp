//===- tests/SynthesizerTest.cpp - Condition synthesis tests ----------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "commute/ExhaustiveEngine.h"
#include "commute/Synthesizer.h"
#include "logic/Printer.h"

#include <gtest/gtest.h>

using namespace semcomm;

namespace {
struct SynthFixture {
  ExprFactory F;
  Catalog C{F};
  ExhaustiveEngine Engine;
};
SynthFixture &fixture() {
  static SynthFixture Fx;
  return Fx;
}
} // namespace

TEST(SynthesizerTest, LearnsTheChapter2Condition) {
  SynthFixture &Fx = fixture();
  SynthesisResult R = synthesizeCondition(
      Fx.F, setFamily(), "contains", "add_",
      defaultAtoms(Fx.F, setFamily(), "contains", "add_"));
  ASSERT_TRUE(R.Expressible) << R.AmbiguityNote;
  // The learned condition is sound and complete, hence semantically the
  // unique commutativity boundary — equivalent to the catalog's
  // v1 ~= v2 | v1 in s1.
  EXPECT_TRUE(Fx.Engine
                  .verifyCondition(setFamily(), "contains", "add_",
                                   ConditionKind::Between,
                                   MethodRole::Soundness, R.Condition)
                  .Verified)
      << printAbstract(R.Condition);
  EXPECT_TRUE(Fx.Engine
                  .verifyCondition(setFamily(), "contains", "add_",
                                   ConditionKind::Between,
                                   MethodRole::Completeness, R.Condition)
                  .Verified)
      << printAbstract(R.Condition);
}

TEST(SynthesizerTest, LearnsTheAccumulatorCondition) {
  SynthFixture &Fx = fixture();
  SynthesisResult R = synthesizeCondition(
      Fx.F, accumulatorFamily(), "increase", "read",
      defaultAtoms(Fx.F, accumulatorFamily(), "increase", "read"));
  ASSERT_TRUE(R.Expressible);
  // Table 5.1: increase/read commute exactly when v1 = 0.
  EXPECT_EQ(printAbstract(R.Condition), "v1 = 0");
}

TEST(SynthesizerTest, EmptyVocabularyIsInexpressible) {
  SynthFixture &Fx = fixture();
  SynthesisResult R =
      synthesizeCondition(Fx.F, setFamily(), "add_", "remove_", {});
  EXPECT_FALSE(R.Expressible);
  EXPECT_FALSE(R.AmbiguityNote.empty());
}

TEST(SynthesizerTest, TrivialPairsSynthesizeToConstants) {
  SynthFixture &Fx = fixture();
  SynthesisResult R = synthesizeCondition(
      Fx.F, setFamily(), "add_", "add_",
      defaultAtoms(Fx.F, setFamily(), "add_", "add_"));
  ASSERT_TRUE(R.Expressible);
  EXPECT_TRUE(R.Condition->isTrue());
}

// Sweep: for every Set and Map pair, the synthesized condition over the
// default vocabulary is sound and complete — i.e. scenario-equivalent to
// the hand-written catalog entry. This is an independent derivation of
// 85 of the paper's condition families from the semantics alone.
class SynthesisSweep : public ::testing::TestWithParam<int> {};

TEST_P(SynthesisSweep, SynthesizedEqualsCatalog) {
  SynthFixture &Fx = fixture();
  const Family &Fam = GetParam() == 0 ? setFamily() : mapFamily();
  for (const ConditionEntry &E : Fx.C.entries(Fam)) {
    SynthesisResult R = synthesizeCondition(
        Fx.F, Fam, E.op1().Name, E.op2().Name,
        defaultAtoms(Fx.F, Fam, E.op1().Name, E.op2().Name));
    ASSERT_TRUE(R.Expressible) << Fam.Name << " " << E.pairName() << ": "
                               << R.AmbiguityNote;
    for (MethodRole Role :
         {MethodRole::Soundness, MethodRole::Completeness})
      EXPECT_TRUE(Fx.Engine
                      .verifyCondition(Fam, E.op1().Name, E.op2().Name,
                                       ConditionKind::Between, Role,
                                       R.Condition)
                      .Verified)
          << Fam.Name << " " << E.pairName() << " ("
          << methodRoleName(Role)
          << "): " << printAbstract(R.Condition) << " vs catalog "
          << printAbstract(E.Between);
  }
}

INSTANTIATE_TEST_SUITE_P(SetAndMap, SynthesisSweep, ::testing::Range(0, 2));
