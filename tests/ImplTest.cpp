//===- tests/ImplTest.cpp - Concrete linked structure tests ----------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "impl/Accumulator.h"
#include "impl/ArrayList.h"
#include "impl/AssociationList.h"
#include "impl/HashSet.h"
#include "impl/HashTable.h"
#include "impl/ListSet.h"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>

using namespace semcomm;

TEST(ListSetTest, BasicSemantics) {
  ListSet S;
  EXPECT_TRUE(S.add(Value::obj(1)));
  EXPECT_FALSE(S.add(Value::obj(1)));
  EXPECT_TRUE(S.contains(Value::obj(1)));
  EXPECT_EQ(S.size(), 1);
  EXPECT_TRUE(S.remove(Value::obj(1)));
  EXPECT_FALSE(S.remove(Value::obj(1)));
  EXPECT_TRUE(S.repOk());
}

TEST(ListSetTest, Figure41ConcreteStatesDivergeAbstractStatesAgree) {
  // The paper's running motivation (§1.1, Fig. 4-1): different insertion
  // orders produce different linked lists but the same abstract set.
  ListSet A, B;
  A.add(Value::obj(1));
  A.add(Value::obj(2));
  B.add(Value::obj(2));
  B.add(Value::obj(1));
  EXPECT_NE(A.elementsInListOrder(), B.elementsInListOrder());
  EXPECT_EQ(A.abstraction(), B.abstraction());
}

TEST(HashSetTest, ResizePreservesAbstraction) {
  HashSet S;
  size_t InitialCapacity = S.capacity();
  for (int I = 1; I <= 64; ++I)
    EXPECT_TRUE(S.add(Value::obj(I)));
  EXPECT_GT(S.capacity(), InitialCapacity);
  EXPECT_TRUE(S.repOk());
  EXPECT_EQ(S.size(), 64);
  for (int I = 1; I <= 64; ++I)
    EXPECT_TRUE(S.contains(Value::obj(I)));
  EXPECT_EQ(S.abstraction().size(), 64);
}

TEST(HashTableTest, PutGetRemove) {
  HashTable T;
  EXPECT_TRUE(T.put(Value::obj(1), Value::obj(10)).isNull());
  EXPECT_EQ(T.put(Value::obj(1), Value::obj(11)), Value::obj(10));
  EXPECT_EQ(T.get(Value::obj(1)), Value::obj(11));
  EXPECT_TRUE(T.containsKey(Value::obj(1)));
  EXPECT_FALSE(T.containsKey(Value::obj(2)));
  EXPECT_EQ(T.remove(Value::obj(1)), Value::obj(11));
  EXPECT_TRUE(T.remove(Value::obj(1)).isNull());
  EXPECT_TRUE(T.repOk());
}

TEST(HashTableTest, ManyKeysWithResize) {
  HashTable T;
  for (int I = 1; I <= 100; ++I)
    T.put(Value::obj(I), Value::obj(1000 + I));
  EXPECT_TRUE(T.repOk());
  EXPECT_EQ(T.size(), 100);
  for (int I = 1; I <= 100; ++I)
    EXPECT_EQ(T.get(Value::obj(I)), Value::obj(1000 + I));
}

TEST(AssociationListTest, ShadowingFreeRebinding) {
  AssociationList L;
  L.put(Value::obj(1), Value::obj(5));
  L.put(Value::obj(2), Value::obj(6));
  EXPECT_EQ(L.put(Value::obj(1), Value::obj(7)), Value::obj(5));
  EXPECT_EQ(L.size(), 2);
  EXPECT_EQ(L.get(Value::obj(1)), Value::obj(7));
  EXPECT_TRUE(L.repOk());
}

TEST(ArrayListTest, ShiftingSemantics) {
  ArrayList A;
  A.addAt(0, Value::obj(1)); // [1]
  A.addAt(1, Value::obj(2)); // [1 2]
  A.addAt(0, Value::obj(3)); // [3 1 2]
  EXPECT_EQ(A.size(), 3);
  EXPECT_EQ(A.get(0), Value::obj(3));
  EXPECT_EQ(A.get(1), Value::obj(1));
  EXPECT_EQ(A.indexOf(Value::obj(2)), 2);
  EXPECT_EQ(A.removeAt(1), Value::obj(1)); // [3 2]
  EXPECT_EQ(A.get(1), Value::obj(2));
  EXPECT_EQ(A.set(0, Value::obj(9)), Value::obj(3)); // [9 2]
  EXPECT_EQ(A.lastIndexOf(Value::obj(9)), 0);
  EXPECT_TRUE(A.repOk());
}

TEST(CloneTest, DeepCopiesAreIndependent) {
  for (const StructureFactory &Factory : allStructureFactories()) {
    if (Factory.Fam->Kind == StateKind::Counter)
      continue;
    std::unique_ptr<ConcreteStructure> A = Factory.Make();
    // Populate through the generic interface.
    if (Factory.Fam->Kind == StateKind::Set)
      A->invoke("add", {Value::obj(1)});
    else if (Factory.Fam->Kind == StateKind::Map)
      A->invoke("put", {Value::obj(1), Value::obj(2)});
    else
      A->invoke("add_at", {Value::integer(0), Value::obj(1)});
    std::unique_ptr<ConcreteStructure> B = A->clone();
    EXPECT_EQ(A->abstraction(), B->abstraction()) << Factory.Name;
    // Mutating the clone must not affect the original.
    if (Factory.Fam->Kind == StateKind::Set)
      B->invoke("remove", {Value::obj(1)});
    else if (Factory.Fam->Kind == StateKind::Map)
      B->invoke("remove", {Value::obj(1)});
    else
      B->invoke("remove_at", {Value::integer(0)});
    EXPECT_NE(A->abstraction(), B->abstraction()) << Factory.Name;
    EXPECT_TRUE(A->repOk() && B->repOk()) << Factory.Name;
  }
}

// Property sweep: each structure agrees with the matching std:: container
// under long random operation sequences.
class StructureRandomTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StructureRandomTest, SetAgreesWithStdSet) {
  auto [Seed, WhichImpl] = GetParam();
  std::mt19937 Rng(Seed);
  std::unique_ptr<ConcreteStructure> S;
  if (WhichImpl == 0)
    S = std::make_unique<ListSet>();
  else
    S = std::make_unique<HashSet>();
  std::set<Value> Oracle;

  for (int Step = 0; Step < 2000; ++Step) {
    Value V = Value::obj(1 + static_cast<int>(Rng() % 12));
    switch (Rng() % 4) {
    case 0:
      ASSERT_EQ(S->invoke("add", {V}).asBool(), Oracle.insert(V).second);
      break;
    case 1:
      ASSERT_EQ(S->invoke("remove", {V}).asBool(), Oracle.erase(V) > 0);
      break;
    case 2:
      ASSERT_EQ(S->invoke("contains", {V}).asBool(), Oracle.count(V) > 0);
      break;
    case 3:
      ASSERT_EQ(S->invoke("size", {}).asInt(),
                static_cast<int64_t>(Oracle.size()));
      break;
    }
    ASSERT_TRUE(S->repOk());
  }
}

TEST_P(StructureRandomTest, MapAgreesWithStdMap) {
  auto [Seed, WhichImpl] = GetParam();
  std::mt19937 Rng(Seed + 1000);
  std::unique_ptr<ConcreteStructure> M;
  if (WhichImpl == 0)
    M = std::make_unique<AssociationList>();
  else
    M = std::make_unique<HashTable>();
  std::map<Value, Value> Oracle;

  auto OracleGet = [&Oracle](const Value &K) {
    auto It = Oracle.find(K);
    return It == Oracle.end() ? Value::null() : It->second;
  };

  for (int Step = 0; Step < 2000; ++Step) {
    Value K = Value::obj(1 + static_cast<int>(Rng() % 10));
    Value V = Value::obj(100 + static_cast<int>(Rng() % 5));
    switch (Rng() % 5) {
    case 0: {
      Value Old = OracleGet(K);
      Oracle[K] = V;
      ASSERT_EQ(M->invoke("put", {K, V}), Old);
      break;
    }
    case 1: {
      Value Old = OracleGet(K);
      Oracle.erase(K);
      ASSERT_EQ(M->invoke("remove", {K}), Old);
      break;
    }
    case 2:
      ASSERT_EQ(M->invoke("get", {K}), OracleGet(K));
      break;
    case 3:
      ASSERT_EQ(M->invoke("containsKey", {K}).asBool(), Oracle.count(K) > 0);
      break;
    case 4:
      ASSERT_EQ(M->invoke("size", {}).asInt(),
                static_cast<int64_t>(Oracle.size()));
      break;
    }
    ASSERT_TRUE(M->repOk());
  }
}

TEST_P(StructureRandomTest, ArrayListAgreesWithStdVector) {
  auto [Seed, WhichImpl] = GetParam();
  if (WhichImpl == 1)
    GTEST_SKIP() << "single ArrayList implementation";
  std::mt19937 Rng(Seed + 2000);
  ArrayList A;
  std::vector<Value> Oracle;

  for (int Step = 0; Step < 2000; ++Step) {
    Value V = Value::obj(1 + static_cast<int>(Rng() % 6));
    int64_t N = static_cast<int64_t>(Oracle.size());
    switch (Rng() % 6) {
    case 0: {
      int64_t I = static_cast<int64_t>(Rng() % (N + 1));
      A.addAt(I, V);
      Oracle.insert(Oracle.begin() + I, V);
      break;
    }
    case 1: {
      if (N == 0)
        break;
      int64_t I = static_cast<int64_t>(Rng() % N);
      ASSERT_EQ(A.removeAt(I), Oracle[I]);
      Oracle.erase(Oracle.begin() + I);
      break;
    }
    case 2: {
      if (N == 0)
        break;
      int64_t I = static_cast<int64_t>(Rng() % N);
      Value Old = Oracle[I];
      Oracle[I] = V;
      ASSERT_EQ(A.set(I, V), Old);
      break;
    }
    case 3: {
      if (N == 0)
        break;
      int64_t I = static_cast<int64_t>(Rng() % N);
      ASSERT_EQ(A.get(I), Oracle[I]);
      break;
    }
    case 4: {
      auto It = std::find(Oracle.begin(), Oracle.end(), V);
      int64_t Expected =
          It == Oracle.end() ? -1 : It - Oracle.begin();
      ASSERT_EQ(A.indexOf(V), Expected);
      break;
    }
    case 5:
      ASSERT_EQ(A.size(), static_cast<int64_t>(Oracle.size()));
      break;
    }
    ASSERT_TRUE(A.repOk());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweeps, StructureRandomTest,
                         ::testing::Combine(::testing::Values(1, 7, 42, 99),
                                            ::testing::Values(0, 1)));
