//===- tests/SessionPoolTest.cpp - Shared per-pair session tests ------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// The shared per-pair session layer must be invisible in the verdicts:
/// selector literals isolate each method's scoped prefix inside the shared
/// clause database, and discharging any subset of a pair's methods in any
/// order through one SharedSession agrees with independent per-method
/// sessions. The fuzz sweep below drives exactly that comparison over
/// random method subsets, including mutants whose proofs fail.
///
//===----------------------------------------------------------------------===//

#include "commute/SymbolicEngine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

using namespace semcomm;

namespace {

struct PoolFixture {
  ExprFactory F;
  Catalog C{F};
};
PoolFixture &fixture() {
  static PoolFixture Fx;
  return Fx;
}

} // namespace

TEST(SharedSessionTest, SelectorsIsolateContradictoryScopedPrefixes) {
  // Two methods with mutually contradictory scoped prefixes must coexist
  // in one warm database: each proof sees only its own prefix.
  PoolFixture &Fx = fixture();
  ExprRef X = Fx.F.var("shared_x", Sort::Bool);

  MethodPlan PosPlan;
  PosPlan.Name = "scoped_pos";
  PosPlan.Scoped.push_back({X, "x"});
  PosPlan.Splits.push_back(
      VcSplit{{{Fx.F.lnot(X), "not-x"}}, ""}); // x ∧ ¬x: refuted.

  MethodPlan NegPlan;
  NegPlan.Name = "scoped_neg";
  NegPlan.Scoped.push_back({Fx.F.lnot(X), "not-x"});
  NegPlan.Splits.push_back(VcSplit{{{X, "x"}}, ""});

  SharedSession Sess(Fx.F, /*Budget=*/-1, SolveMode::SharedPair);
  SymbolicResult R1, R2;
  EXPECT_TRUE(Sess.discharge(PosPlan, R1));
  EXPECT_TRUE(Sess.discharge(NegPlan, R2));
  EXPECT_EQ(Sess.numSelectors(), 2u);
  EXPECT_EQ(Sess.sessionsOpened(), 1u);

  // Had either scoped prefix leaked into the global base, the database
  // would now be contradictory and this satisfiable plan would "verify".
  MethodPlan SatPlan;
  SatPlan.Name = "scoped_free";
  SatPlan.Splits.push_back(
      VcSplit{{{Fx.F.var("shared_y", Sort::Bool), "y"}}, ""});
  SymbolicResult R3;
  EXPECT_FALSE(Sess.discharge(SatPlan, R3));
  EXPECT_EQ(R3.LastOutcome, SatResult::Sat);
}

TEST(SharedSessionTest, SameNameDifferentPlansGetDistinctSelectors) {
  // Two *different* plans that happen to share a name (e.g. a mutated
  // entry's methods keep the original names) must not share a selector:
  // the second plan would otherwise be proved against the first plan's
  // scoped prefix.
  PoolFixture &Fx = fixture();
  ExprRef X = Fx.F.var("dup_x", Sort::Bool);

  MethodPlan A;
  A.Name = "dup_method";
  A.Scoped.push_back({X, "x"});
  A.Splits.push_back(VcSplit{{{Fx.F.lnot(X), "not-x"}}, ""});

  MethodPlan B = A; // Same name, contradictory prefix.
  B.Scoped.clear();
  B.Scoped.push_back({Fx.F.lnot(X), "not-x"});

  SharedSession Sess(Fx.F, /*Budget=*/-1, SolveMode::SharedPair);
  SymbolicResult RA, RB, RA2;
  EXPECT_TRUE(Sess.discharge(A, RA));
  // Under B's own prefix (¬x) the split ¬x is satisfiable — had B reused
  // A's selector (prefix x), it would wrongly verify.
  EXPECT_FALSE(Sess.discharge(B, RB));
  EXPECT_EQ(RB.LastOutcome, SatResult::Sat);
  EXPECT_EQ(Sess.numSelectors(), 2u);
  // Re-discharging A reuses its original selector.
  EXPECT_TRUE(Sess.discharge(A, RA2));
  EXPECT_EQ(Sess.numSelectors(), 2u);
}

TEST(SharedSessionTest, UnsatCoreLabelsNameTheUsedAssumptions) {
  PoolFixture &Fx = fixture();
  ExprRef A = Fx.F.var("core_a", Sort::Bool);
  ExprRef B = Fx.F.var("core_b", Sort::Bool);

  MethodPlan Plan;
  Plan.Name = "core_demo";
  Plan.Scoped.push_back({Fx.F.implies(A, B), "a-implies-b"});
  // Assume a and ¬b: the refutation needs the selector (which activates
  // the implication) and both split literals — and nothing else.
  Plan.Splits.push_back(
      VcSplit{{{A, "a"}, {Fx.F.lnot(B), "not-b"},
               {Fx.F.var("core_unused", Sort::Bool), "unused"}},
              ""});

  SharedSession Sess(Fx.F, /*Budget=*/-1, SolveMode::SharedPair);
  SymbolicResult R;
  ASSERT_TRUE(Sess.discharge(Plan, R));
  auto Has = [&R](const char *L) {
    return std::find(R.CoreLabels.begin(), R.CoreLabels.end(), L) !=
           R.CoreLabels.end();
  };
  EXPECT_TRUE(Has("sel:core_demo"));
  EXPECT_TRUE(Has("a"));
  EXPECT_TRUE(Has("not-b"));
  EXPECT_FALSE(Has("unused"));
}

TEST(SharedSessionTest, UnsupportedPlanReportsItsNote) {
  PoolFixture &Fx = fixture();
  MethodPlan Plan;
  Plan.Name = "unsupported_demo";
  Plan.Unsupported = true;
  Plan.UnsupportedNote = "unsupported atom shape in bounded lowering";
  // Even a refutable final split must not count as a proof.
  Plan.Splits.push_back(VcSplit{{{Fx.F.falseExpr(), "false"}}, "n=0"});

  SharedSession Sess(Fx.F, /*Budget=*/-1, SolveMode::SharedPair);
  SymbolicResult R;
  EXPECT_FALSE(Sess.discharge(Plan, R));
  EXPECT_EQ(R.Countermodel, Plan.UnsupportedNote);
}

/// Fuzz: random subsets of a pair's six methods, in random order, through
/// one shared session, against independent per-method sessions — verdicts
/// and VC counts must be identical. Mutated entries mix failing proofs
/// into the sequence.
class SharedPairFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SharedPairFuzzTest, RandomMethodSubsetsMatchPerMethodSessions) {
  PoolFixture &Fx = fixture();
  std::mt19937 Rng(GetParam());
  SymbolicEngine Shared(Fx.F, /*SeqLenBound=*/2, /*ConflictBudget=*/200000,
                        SolveMode::SharedPair);
  SymbolicEngine PerMethod(Fx.F, /*SeqLenBound=*/2,
                           /*ConflictBudget=*/200000, SolveMode::PerMethod);

  // Pool of entries spanning all four families.
  std::vector<const ConditionEntry *> Entries;
  for (const Family *Fam : allFamilies())
    for (const ConditionEntry &E : Fx.C.entries(*Fam))
      Entries.push_back(&E);

  for (int Trial = 0; Trial < 30; ++Trial) {
    const ConditionEntry &Real =
        *Entries[Rng() % Entries.size()];
    // Half of the trials weaken the conditions to "always commutes",
    // which fails soundness for most pairs — the shared session must not
    // let one method's failure contaminate another's verdict.
    ConditionEntry Mutant = Real;
    bool Mutated = (Rng() & 1) != 0;
    if (Mutated)
      Mutant.Before = Mutant.Between = Mutant.After = Fx.F.trueExpr();
    const ConditionEntry &E = Mutated ? Mutant : Real;

    // A random subset of the six methods, in random order.
    std::vector<std::pair<ConditionKind, MethodRole>> All;
    for (ConditionKind K : {ConditionKind::Before, ConditionKind::Between,
                            ConditionKind::After})
      for (MethodRole Role :
           {MethodRole::Soundness, MethodRole::Completeness})
        All.push_back({K, Role});
    std::shuffle(All.begin(), All.end(), Rng);
    size_t Take = 1 + Rng() % All.size();

    SharedSession Sess(Fx.F, /*Budget=*/200000, SolveMode::SharedPair);
    for (size_t I = 0; I != Take; ++I) {
      TestingMethod M;
      M.Entry = &E;
      M.Kind = All[I].first;
      M.Role = All[I].second;

      SymbolicResult Got;
      Got.Verified = Sess.discharge(Shared.plan(M), Got);
      SymbolicResult Want = PerMethod.verify(M);

      ASSERT_EQ(Got.Verified, Want.Verified)
          << "seed=" << GetParam() << " trial=" << Trial << " "
          << E.Fam->Name << " " << E.pairName() << " " << M.name()
          << (Mutated ? " (mutant)" : "");
      ASSERT_EQ(Got.NumVcs, Want.NumVcs) << M.name();
    }
    EXPECT_EQ(Sess.sessionsOpened(), 1u);
    EXPECT_EQ(Sess.numSelectors(), Take);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedPairFuzzTest,
                         ::testing::Values(17, 29, 71, 113));

TEST(FamilySessionTest, SelectorsNestAndRetireCleanly) {
  // Two "pairs" with contradictory pair-common prefixes coexist under
  // their pair selectors; retiring one evicts its clauses and leaves the
  // other scope's proofs intact.
  PoolFixture &Fx = fixture();
  ExprRef X = Fx.F.var("fam_x", Sort::Bool);

  FamilyPlan FP;
  FP.FamilyName = "demo";
  FamilySession Sess(Fx.F, FP, /*Budget=*/-1);

  MethodPlan Pos;
  Pos.Name = "m";
  Pos.Common = {X};
  Pos.Splits.push_back(VcSplit{{{Fx.F.lnot(X), "not-x"}}, ""});
  MethodPlan Neg;
  Neg.Name = "m";
  Neg.Common = {Fx.F.lnot(X)};
  Neg.Splits.push_back(VcSplit{{{X, "x"}}, ""});

  SymbolicResult R1, R2;
  EXPECT_TRUE(Sess.discharge("p1", Pos, R1));
  EXPECT_TRUE(Sess.discharge("p2", Neg, R2));
  // Pair selector + method selector per pair.
  EXPECT_EQ(Sess.numSelectors(), 4u);
  EXPECT_EQ(Sess.stats().PairsOpened, 2u);

  // The core names the pair scope, the method selector, and the split.
  auto Has = [&R1](const char *L) {
    return std::find(R1.CoreLabels.begin(), R1.CoreLabels.end(), L) !=
           R1.CoreLabels.end();
  };
  EXPECT_TRUE(Has("pair:p1"));
  EXPECT_TRUE(Has("not-x"));

  uint64_t Retained = Sess.retainedClauses();
  EXPECT_GT(Sess.retirePair("p1"), 0u);
  EXPECT_LT(Sess.retainedClauses(), Retained);
  EXPECT_EQ(Sess.stats().PairsRetired, 1u);
  EXPECT_TRUE(Sess.session().solver().reasonInvariantHolds());

  // p2 still verifies after p1's eviction; p1 re-opens under a fresh
  // selector and verifies again.
  SymbolicResult R3, R4;
  EXPECT_TRUE(Sess.discharge("p2", Neg, R3));
  EXPECT_TRUE(Sess.discharge("p1", Pos, R4));
  EXPECT_EQ(Sess.stats().PairsOpened, 3u);
}

TEST(FamilySessionTest, FamilyCommonPrefixIsSharedAcrossPairs) {
  PoolFixture &Fx = fixture();
  ExprRef X = Fx.F.var("famc_x", Sort::Bool);

  FamilyPlan FP;
  FP.FamilyName = "demo2";
  FP.FamilyCommon = {X};
  FamilySession Sess(Fx.F, FP, /*Budget=*/-1);
  EXPECT_EQ(Sess.stats().PrefixAsserts, 1u);

  MethodPlan M;
  M.Name = "m";
  M.Common = {X}; // Already family base: counted as a reuse, not asserted.
  M.Splits.push_back(VcSplit{{{Fx.F.lnot(X), "not-x"}}, ""});
  SymbolicResult R1, R2;
  EXPECT_TRUE(Sess.discharge("p1", M, R1));
  EXPECT_TRUE(Sess.discharge("p2", M, R2));
  EXPECT_EQ(Sess.stats().PrefixAsserts, 1u);
  EXPECT_EQ(Sess.stats().PrefixReuses, 2u);
}

TEST(SymbolicEngineTest, VerifyFamilyMatchesSharedPairOnWholeCatalog) {
  // The family tier is a pure performance refactor: every verdict equals
  // the shared-pair tier's, pair by pair and method by method, and every
  // finished pair is retired.
  PoolFixture &Fx = fixture();
  SymbolicEngine FamEng(Fx.F, /*SeqLenBound=*/2, /*ConflictBudget=*/200000,
                        SolveMode::SharedFamily);
  SymbolicEngine Pair(Fx.F, /*SeqLenBound=*/2, /*ConflictBudget=*/200000,
                      SolveMode::SharedPair);

  for (const Family *Fam : allFamilies()) {
    FamilyOutcome FO = FamEng.verifyFamily(Fx.C, *Fam);
    const std::vector<ConditionEntry> &Entries = Fx.C.entries(*Fam);
    ASSERT_EQ(FO.Pairs.size(), Entries.size()) << Fam->Name;
    EXPECT_EQ(FO.Stats.PairsRetired, Entries.size());
    EXPECT_EQ(FO.Stats.PairsOpened, Entries.size());
    for (size_t I = 0; I != Entries.size(); ++I) {
      EXPECT_EQ(FO.PairKeys[I], Entries[I].pairName());
      PairOutcome Want = Pair.verifyPair(Entries[I]);
      ASSERT_EQ(FO.Pairs[I].Methods.size(), Want.Methods.size());
      for (size_t M = 0; M != Want.Methods.size(); ++M) {
        EXPECT_EQ(FO.Pairs[I].Methods[M].Verified,
                  Want.Methods[M].Verified)
            << Fam->Name << " " << Entries[I].pairName() << " method " << M;
        EXPECT_EQ(FO.Pairs[I].Methods[M].NumVcs, Want.Methods[M].NumVcs);
      }
    }
  }
}

TEST(SymbolicEngineTest, EvictionBoundsRetainedClausesAcrossAFamily) {
  // The point of the family tier's eviction: the peak database stays near
  // one live pair's footprint instead of accumulating every pair's. The
  // no-eviction reference discharges the same plans through the same
  // session without ever retiring a pair.
  PoolFixture &Fx = fixture();
  SymbolicEngine Eng(Fx.F, /*SeqLenBound=*/2, /*ConflictBudget=*/200000,
                     SolveMode::SharedFamily);

  const Family &Fam = mapFamily();
  FamilyOutcome Evicting = Eng.verifyFamily(Fx.C, Fam);

  std::vector<const ConditionEntry *> Entries;
  for (const ConditionEntry &E : Fx.C.entries(Fam))
    Entries.push_back(&E);
  FamilyPlan FP = Eng.planFamily(Fam.Name, Entries);
  FamilySession NoEvict(Fx.F, FP, /*Budget=*/200000);
  for (const PairPlan &PP : FP.Pairs)
    for (const MethodPlan &MP : PP.Methods) {
      SymbolicResult R;
      NoEvict.discharge(PP.Key, MP, R);
    }

  EXPECT_GT(Evicting.Stats.EvictedClauses, 0u);
  EXPECT_LT(Evicting.Stats.PeakRetainedClauses,
            NoEvict.stats().PeakRetainedClauses);
  // Not proportional to family size: the evicting peak stays well under
  // half of the accumulate-everything peak on the 49-pair Map family.
  EXPECT_LT(Evicting.Stats.PeakRetainedClauses,
            NoEvict.stats().PeakRetainedClauses / 2);
}

/// Eviction-soundness fuzz: random pair discharge / retire / re-verify
/// orders through one FamilySession — including mutant catalogs whose
/// proofs fail — against a no-eviction per-pair reference. Verdicts must
/// match everywhere and the solver's reason invariant must survive every
/// eviction.
class FamilyEvictionFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FamilyEvictionFuzzTest, RandomRetireOrdersMatchNoEvictionReference) {
  PoolFixture &Fx = fixture();
  std::mt19937 Rng(GetParam());
  SymbolicEngine Planner(Fx.F, /*SeqLenBound=*/2, /*ConflictBudget=*/200000,
                         SolveMode::SharedFamily);

  for (int Trial = 0; Trial < 12; ++Trial) {
    const Family *Fam = allFamilies()[Rng() % allFamilies().size()];
    const std::vector<ConditionEntry> &All = Fx.C.entries(*Fam);

    // A handful of pairs, half of the trials mutated to "always commutes"
    // (fails soundness for most pairs).
    std::vector<ConditionEntry> Picked;
    for (int I = 0; I < 4; ++I) {
      ConditionEntry E = All[Rng() % All.size()];
      if (Rng() & 1)
        E.Before = E.Between = E.After = Fx.F.trueExpr();
      Picked.push_back(E);
    }
    std::vector<const ConditionEntry *> Ptrs;
    for (const ConditionEntry &E : Picked)
      Ptrs.push_back(&E);
    FamilyPlan FP = Planner.planFamily(Fam->Name, Ptrs);
    FamilySession Sess(Fx.F, FP, /*Budget=*/200000);
    Sess.configureClauseGc(true, /*FirstLimit=*/64);

    // Random operation sequence over the picked pairs: discharge a random
    // method of a random pair (re-verification after retirement included),
    // or retire a random pair.
    for (int Step = 0; Step < 24; ++Step) {
      size_t PI = Rng() % FP.Pairs.size();
      const PairPlan &PP = FP.Pairs[PI];
      // Keys may repeat across picked entries; index the key by position
      // so a mutant and its original stay distinguishable to the test.
      std::string Key = PP.Key + "#" + std::to_string(PI);
      if (Rng() % 4 == 0) {
        Sess.retirePair(Key);
        ASSERT_TRUE(Sess.session().solver().reasonInvariantHolds())
            << "seed=" << GetParam() << " trial=" << Trial
            << " step=" << Step;
        continue;
      }
      const MethodPlan &MP = PP.Methods[Rng() % PP.Methods.size()];
      SymbolicResult Got;
      Got.Verified = Sess.discharge(Key, MP, Got);

      SharedSession Ref(Fx.F, /*Budget=*/200000, SolveMode::PerMethod);
      SymbolicResult Want;
      Want.Verified = Ref.discharge(MP, Want);

      ASSERT_EQ(Got.Verified, Want.Verified)
          << "seed=" << GetParam() << " trial=" << Trial << " step=" << Step
          << " " << Fam->Name << " " << PP.Key << " " << MP.Name;
      ASSERT_EQ(Got.NumVcs, Want.NumVcs) << MP.Name;
    }
    // Retire everything that is still live and confirm the solver state.
    for (size_t PI = 0; PI != FP.Pairs.size(); ++PI)
      Sess.retirePair(FP.Pairs[PI].Key + "#" + std::to_string(PI));
    ASSERT_TRUE(Sess.session().solver().reasonInvariantHolds());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FamilyEvictionFuzzTest,
                         ::testing::Values(23, 47, 89, 131));

TEST(CatalogSessionTest, FamilyScopesIsolateAndSubtreeRetire) {
  // Two families with contradictory family-common prefixes coexist under
  // their family selectors; retiring one family's subtree (family scope,
  // pair scopes, method scopes, one solver pass) leaves the other
  // family's proofs intact and recycles the retired scopes' variables.
  PoolFixture &Fx = fixture();
  ExprRef X = Fx.F.var("cat_x", Sort::Bool);
  ExprRef W = Fx.F.var("cat_w", Sort::Bool);

  CatalogPlan CP;
  CP.Families.resize(2);
  CP.Families[0].FamilyName = "demoA";
  CP.Families[0].FamilyCommon = {X};
  CP.Families[1].FamilyName = "demoB";
  CP.Families[1].FamilyCommon = {Fx.F.lnot(X)};
  CatalogSession Sess(Fx.F, CP, /*Budget=*/-1);

  // Compound scoped/split formulas, so the pair scopes own Tseitin
  // definitions (the variables subtree retirement recycles).
  MethodPlan Pos;
  Pos.Name = "m";
  Pos.Scoped.push_back({Fx.F.disj({X, W}), "x-or-w"});
  Pos.Splits.push_back(
      VcSplit{{{Fx.F.conj({Fx.F.lnot(X), W}), "not-x-and-w"}}, ""});
  MethodPlan Neg;
  Neg.Name = "m";
  Neg.Splits.push_back(VcSplit{{{Fx.F.conj({X, W}), "x-and-w"}}, ""});

  SymbolicResult R1, R2;
  EXPECT_TRUE(Sess.discharge(0, "p", Pos, R1));
  EXPECT_TRUE(Sess.discharge(1, "p", Neg, R2));
  // Family + pair + method selector per family.
  EXPECT_EQ(Sess.numSelectors(), 6u);
  EXPECT_EQ(Sess.stats().FamiliesOpened, 2u);
  EXPECT_EQ(Sess.stats().PairsOpened, 2u);

  // The core names the family scope, the pair scope, and the split.
  auto Has = [&R1](const char *L) {
    return std::find(R1.CoreLabels.begin(), R1.CoreLabels.end(), L) !=
           R1.CoreLabels.end();
  };
  EXPECT_TRUE(Has("fam:demoA"));
  EXPECT_TRUE(Has("not-x-and-w"));

  uint64_t Retained = Sess.retainedClauses();
  int64_t RecycledBefore = Sess.session().recycledVars();
  EXPECT_GT(Sess.retireFamily(0), 0u);
  EXPECT_LT(Sess.retainedClauses(), Retained);
  EXPECT_EQ(Sess.stats().FamiliesRetired, 1u);
  EXPECT_GT(Sess.session().recycledVars(), RecycledBefore);
  EXPECT_TRUE(Sess.session().solver().reasonInvariantHolds());

  // demoB still verifies after demoA's subtree retirement; demoA
  // re-opens under a fresh epoch and verifies again.
  SymbolicResult R3, R4;
  EXPECT_TRUE(Sess.discharge(1, "p", Neg, R3));
  EXPECT_TRUE(Sess.discharge(0, "p", Pos, R4));
  EXPECT_EQ(Sess.stats().FamiliesOpened, 3u);
}

TEST(SymbolicEngineTest, VerifyCatalogMatchesSharedPairOnWholeCatalog) {
  // The catalog tier is a pure performance refactor: every verdict equals
  // the shared-pair tier's, family by family, pair by pair, method by
  // method; every pair and every family subtree is retired; and the
  // session recycles variables.
  PoolFixture &Fx = fixture();
  SymbolicEngine CatEng(Fx.F, /*SeqLenBound=*/2, /*ConflictBudget=*/200000,
                        SolveMode::SharedCatalog);
  SymbolicEngine Pair(Fx.F, /*SeqLenBound=*/2, /*ConflictBudget=*/200000,
                      SolveMode::SharedPair);

  CatalogOutcome CO = CatEng.verifyCatalog(Fx.C, allFamilies());
  ASSERT_EQ(CO.Families.size(), allFamilies().size());
  EXPECT_EQ(CO.Stats.FamiliesRetired, allFamilies().size());
  EXPECT_GT(CO.Stats.RecycledVars, 0u);
  EXPECT_LT(CO.Stats.PeakLiveVars, CO.Stats.VarRequests);

  for (size_t FI = 0; FI != allFamilies().size(); ++FI) {
    const Family *Fam = allFamilies()[FI];
    const FamilyOutcome &FO = CO.Families[FI];
    const std::vector<ConditionEntry> &Entries = Fx.C.entries(*Fam);
    ASSERT_EQ(FO.Pairs.size(), Entries.size()) << Fam->Name;
    EXPECT_EQ(FO.Stats.PairsRetired, Entries.size());
    for (size_t I = 0; I != Entries.size(); ++I) {
      EXPECT_EQ(FO.PairKeys[I], Entries[I].pairName());
      PairOutcome Want = Pair.verifyPair(Entries[I]);
      ASSERT_EQ(FO.Pairs[I].Methods.size(), Want.Methods.size());
      for (size_t M = 0; M != Want.Methods.size(); ++M) {
        EXPECT_EQ(FO.Pairs[I].Methods[M].Verified, Want.Methods[M].Verified)
            << Fam->Name << " " << Entries[I].pairName() << " method " << M;
        EXPECT_EQ(FO.Pairs[I].Methods[M].NumVcs, Want.Methods[M].NumVcs);
      }
    }
  }
}

TEST(SymbolicEngineTest, CatalogCommonPrefixHoistsSharedWellFormedness) {
  // The catalog plan hoists the well-formedness formulas every entry
  // either asserts itself or provably cannot mention: the shared v1/v2
  // non-null constraints qualify (Set and ArrayList assert them; the
  // families that skip them never mention those variables).
  PoolFixture &Fx = fixture();
  SymbolicEngine Eng(Fx.F, /*SeqLenBound=*/2, /*ConflictBudget=*/200000,
                     SolveMode::SharedCatalog);
  CatalogPlan CP = Eng.planCatalog(Fx.C, allFamilies());
  ASSERT_EQ(CP.Families.size(), 4u);
  EXPECT_FALSE(CP.CatalogCommon.empty());
  ExprRef V1NonNull =
      Fx.F.ne(Fx.F.var("v1", Sort::Obj), Fx.F.nullConst());
  EXPECT_TRUE(std::find(CP.CatalogCommon.begin(), CP.CatalogCommon.end(),
                        V1NonNull) != CP.CatalogCommon.end());
  // Every hoisted formula really is in some family's common prefix and in
  // no family's *negated* vocabulary: cross-check against shared-pair
  // verdicts is covered by VerifyCatalogMatchesSharedPairOnWholeCatalog.
}

TEST(SymbolicEngineTest, CatalogRecyclingBoundsLiveVarsBelowDemand) {
  // The acceptance bound of variable recycling: the catalog session's
  // peak live variable count stays measurably below the cumulative
  // allocation a no-recycling run needs for the same discharge sequence.
  PoolFixture &Fx = fixture();
  SymbolicEngine Eng(Fx.F, /*SeqLenBound=*/2, /*ConflictBudget=*/200000,
                     SolveMode::SharedCatalog);
  CatalogPlan CP = Eng.planCatalog(Fx.C, allFamilies());

  auto RunAll = [&](CatalogSession &Sess) {
    unsigned Failures = 0;
    for (size_t FI = 0; FI != allFamilies().size(); ++FI) {
      for (const ConditionEntry &E : Fx.C.entries(*allFamilies()[FI])) {
        PairPlan PP = Eng.planPair(E);
        for (const MethodPlan &MP : PP.Methods) {
          SymbolicResult R;
          Failures += !Sess.discharge(FI, PP.Key, MP, R);
        }
        Sess.retirePair(FI, PP.Key);
      }
      Sess.retireFamily(FI);
    }
    return Failures;
  };

  CatalogSession Rec(Fx.F, CP, /*Budget=*/200000);
  unsigned RecFailures = RunAll(Rec);

  CatalogSession NoRec(Fx.F, CP, /*Budget=*/200000);
  NoRec.session().solver().setVarRecycling(false);
  unsigned NoRecFailures = RunAll(NoRec);

  // Recycling is invisible in the verdicts...
  EXPECT_EQ(RecFailures, NoRecFailures);
  // ...and both runs make the same variable demand, but the recycling
  // session's peak live count is measurably below the no-recycling run's
  // cumulative allocation (its live == allocated count).
  CatalogSessionStats RecStats = Rec.stats(), NoRecStats = NoRec.stats();
  EXPECT_EQ(RecStats.VarRequests, NoRecStats.VarRequests);
  EXPECT_EQ(NoRecStats.RecycledVars, 0u);
  uint64_t NoRecAllocated =
      static_cast<uint64_t>(NoRec.session().solver().numVars());
  EXPECT_GT(RecStats.RecycledVars, 0u);
  EXPECT_LT(RecStats.PeakLiveVars, NoRecAllocated);
  // "Measurably": at least 15% of the cumulative allocation is recycled
  // away at bound 2; larger bounds only widen the gap.
  EXPECT_LT(RecStats.PeakLiveVars, NoRecAllocated * 85 / 100);
}

TEST(SymbolicEngineTest, LazyPlanningBoundsMaterializedSplits) {
  // verifyFamily/verifyCatalog materialize each pair's splits just
  // before discharge and drop them after retirePair: the peak number of
  // live splits is one pair's worth, far below the whole family's.
  PoolFixture &Fx = fixture();
  SymbolicEngine Eng(Fx.F, /*SeqLenBound=*/2, /*ConflictBudget=*/200000,
                     SolveMode::SharedFamily);
  FamilyOutcome FO = Eng.verifyFamily(Fx.C, arrayListFamily());
  EXPECT_GT(FO.PeakMaterializedSplits, 0u);
  EXPECT_GT(FO.TotalSplits, FO.PeakMaterializedSplits * 10);

  // The peak equals the largest single pair's split count — exactly what
  // the eager planner would have materialized for that pair alone.
  std::vector<const ConditionEntry *> Entries;
  for (const ConditionEntry &E : Fx.C.entries(arrayListFamily()))
    Entries.push_back(&E);
  FamilyPlan Eager = Eng.planFamily(arrayListFamily().Name, Entries);
  uint64_t MaxPair = 0, Total = 0;
  for (const PairPlan &PP : Eager.Pairs) {
    uint64_t N = 0;
    for (const MethodPlan &MP : PP.Methods)
      N += MP.Splits.size();
    MaxPair = std::max(MaxPair, N);
    Total += N;
  }
  EXPECT_EQ(FO.PeakMaterializedSplits, MaxPair);
  EXPECT_EQ(FO.TotalSplits, Total);
}

TEST(SharedSessionTest, PerMethodAndOneShotModesRecreateSessions) {
  PoolFixture &Fx = fixture();
  const ConditionEntry &E = Fx.C.entries(setFamily()).front();
  SymbolicEngine PerMethod(Fx.F, /*SeqLenBound=*/2,
                           /*ConflictBudget=*/200000, SolveMode::PerMethod);
  SymbolicEngine OneShot(Fx.F, /*SeqLenBound=*/2, /*ConflictBudget=*/200000,
                         SolveMode::OneShot);
  PairOutcome PM = PerMethod.verifyPair(E);
  PairOutcome OS = OneShot.verifyPair(E);
  EXPECT_EQ(PM.failures(), 0u);
  EXPECT_EQ(OS.failures(), 0u);
  EXPECT_EQ(PM.SessionsOpened, 6u); // One session per method.
  uint64_t Vcs = 0;
  for (const SymbolicResult &R : OS.Methods)
    Vcs += R.NumVcs;
  EXPECT_EQ(OS.SessionsOpened, Vcs); // One session per VC split.
  EXPECT_EQ(PM.Selectors, 0u);       // Selectors are SharedPair-only.
}
