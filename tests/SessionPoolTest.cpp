//===- tests/SessionPoolTest.cpp - Shared per-pair session tests ------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// The shared per-pair session layer must be invisible in the verdicts:
/// selector literals isolate each method's scoped prefix inside the shared
/// clause database, and discharging any subset of a pair's methods in any
/// order through one SharedSession agrees with independent per-method
/// sessions. The fuzz sweep below drives exactly that comparison over
/// random method subsets, including mutants whose proofs fail.
///
//===----------------------------------------------------------------------===//

#include "commute/SymbolicEngine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

using namespace semcomm;

namespace {

struct PoolFixture {
  ExprFactory F;
  Catalog C{F};
};
PoolFixture &fixture() {
  static PoolFixture Fx;
  return Fx;
}

} // namespace

TEST(SharedSessionTest, SelectorsIsolateContradictoryScopedPrefixes) {
  // Two methods with mutually contradictory scoped prefixes must coexist
  // in one warm database: each proof sees only its own prefix.
  PoolFixture &Fx = fixture();
  ExprRef X = Fx.F.var("shared_x", Sort::Bool);

  MethodPlan PosPlan;
  PosPlan.Name = "scoped_pos";
  PosPlan.Scoped.push_back({X, "x"});
  PosPlan.Splits.push_back(
      VcSplit{{{Fx.F.lnot(X), "not-x"}}, ""}); // x ∧ ¬x: refuted.

  MethodPlan NegPlan;
  NegPlan.Name = "scoped_neg";
  NegPlan.Scoped.push_back({Fx.F.lnot(X), "not-x"});
  NegPlan.Splits.push_back(VcSplit{{{X, "x"}}, ""});

  SharedSession Sess(Fx.F, /*Budget=*/-1, SolveMode::SharedPair);
  SymbolicResult R1, R2;
  EXPECT_TRUE(Sess.discharge(PosPlan, R1));
  EXPECT_TRUE(Sess.discharge(NegPlan, R2));
  EXPECT_EQ(Sess.numSelectors(), 2u);
  EXPECT_EQ(Sess.sessionsOpened(), 1u);

  // Had either scoped prefix leaked into the global base, the database
  // would now be contradictory and this satisfiable plan would "verify".
  MethodPlan SatPlan;
  SatPlan.Name = "scoped_free";
  SatPlan.Splits.push_back(
      VcSplit{{{Fx.F.var("shared_y", Sort::Bool), "y"}}, ""});
  SymbolicResult R3;
  EXPECT_FALSE(Sess.discharge(SatPlan, R3));
  EXPECT_EQ(R3.LastOutcome, SatResult::Sat);
}

TEST(SharedSessionTest, SameNameDifferentPlansGetDistinctSelectors) {
  // Two *different* plans that happen to share a name (e.g. a mutated
  // entry's methods keep the original names) must not share a selector:
  // the second plan would otherwise be proved against the first plan's
  // scoped prefix.
  PoolFixture &Fx = fixture();
  ExprRef X = Fx.F.var("dup_x", Sort::Bool);

  MethodPlan A;
  A.Name = "dup_method";
  A.Scoped.push_back({X, "x"});
  A.Splits.push_back(VcSplit{{{Fx.F.lnot(X), "not-x"}}, ""});

  MethodPlan B = A; // Same name, contradictory prefix.
  B.Scoped.clear();
  B.Scoped.push_back({Fx.F.lnot(X), "not-x"});

  SharedSession Sess(Fx.F, /*Budget=*/-1, SolveMode::SharedPair);
  SymbolicResult RA, RB, RA2;
  EXPECT_TRUE(Sess.discharge(A, RA));
  // Under B's own prefix (¬x) the split ¬x is satisfiable — had B reused
  // A's selector (prefix x), it would wrongly verify.
  EXPECT_FALSE(Sess.discharge(B, RB));
  EXPECT_EQ(RB.LastOutcome, SatResult::Sat);
  EXPECT_EQ(Sess.numSelectors(), 2u);
  // Re-discharging A reuses its original selector.
  EXPECT_TRUE(Sess.discharge(A, RA2));
  EXPECT_EQ(Sess.numSelectors(), 2u);
}

TEST(SharedSessionTest, UnsatCoreLabelsNameTheUsedAssumptions) {
  PoolFixture &Fx = fixture();
  ExprRef A = Fx.F.var("core_a", Sort::Bool);
  ExprRef B = Fx.F.var("core_b", Sort::Bool);

  MethodPlan Plan;
  Plan.Name = "core_demo";
  Plan.Scoped.push_back({Fx.F.implies(A, B), "a-implies-b"});
  // Assume a and ¬b: the refutation needs the selector (which activates
  // the implication) and both split literals — and nothing else.
  Plan.Splits.push_back(
      VcSplit{{{A, "a"}, {Fx.F.lnot(B), "not-b"},
               {Fx.F.var("core_unused", Sort::Bool), "unused"}},
              ""});

  SharedSession Sess(Fx.F, /*Budget=*/-1, SolveMode::SharedPair);
  SymbolicResult R;
  ASSERT_TRUE(Sess.discharge(Plan, R));
  auto Has = [&R](const char *L) {
    return std::find(R.CoreLabels.begin(), R.CoreLabels.end(), L) !=
           R.CoreLabels.end();
  };
  EXPECT_TRUE(Has("sel:core_demo"));
  EXPECT_TRUE(Has("a"));
  EXPECT_TRUE(Has("not-b"));
  EXPECT_FALSE(Has("unused"));
}

TEST(SharedSessionTest, UnsupportedPlanReportsItsNote) {
  PoolFixture &Fx = fixture();
  MethodPlan Plan;
  Plan.Name = "unsupported_demo";
  Plan.Unsupported = true;
  Plan.UnsupportedNote = "unsupported atom shape in bounded lowering";
  // Even a refutable final split must not count as a proof.
  Plan.Splits.push_back(VcSplit{{{Fx.F.falseExpr(), "false"}}, "n=0"});

  SharedSession Sess(Fx.F, /*Budget=*/-1, SolveMode::SharedPair);
  SymbolicResult R;
  EXPECT_FALSE(Sess.discharge(Plan, R));
  EXPECT_EQ(R.Countermodel, Plan.UnsupportedNote);
}

/// Fuzz: random subsets of a pair's six methods, in random order, through
/// one shared session, against independent per-method sessions — verdicts
/// and VC counts must be identical. Mutated entries mix failing proofs
/// into the sequence.
class SharedPairFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SharedPairFuzzTest, RandomMethodSubsetsMatchPerMethodSessions) {
  PoolFixture &Fx = fixture();
  std::mt19937 Rng(GetParam());
  SymbolicEngine Shared(Fx.F, /*SeqLenBound=*/2, /*ConflictBudget=*/200000,
                        SolveMode::SharedPair);
  SymbolicEngine PerMethod(Fx.F, /*SeqLenBound=*/2,
                           /*ConflictBudget=*/200000, SolveMode::PerMethod);

  // Pool of entries spanning all four families.
  std::vector<const ConditionEntry *> Entries;
  for (const Family *Fam : allFamilies())
    for (const ConditionEntry &E : Fx.C.entries(*Fam))
      Entries.push_back(&E);

  for (int Trial = 0; Trial < 30; ++Trial) {
    const ConditionEntry &Real =
        *Entries[Rng() % Entries.size()];
    // Half of the trials weaken the conditions to "always commutes",
    // which fails soundness for most pairs — the shared session must not
    // let one method's failure contaminate another's verdict.
    ConditionEntry Mutant = Real;
    bool Mutated = (Rng() & 1) != 0;
    if (Mutated)
      Mutant.Before = Mutant.Between = Mutant.After = Fx.F.trueExpr();
    const ConditionEntry &E = Mutated ? Mutant : Real;

    // A random subset of the six methods, in random order.
    std::vector<std::pair<ConditionKind, MethodRole>> All;
    for (ConditionKind K : {ConditionKind::Before, ConditionKind::Between,
                            ConditionKind::After})
      for (MethodRole Role :
           {MethodRole::Soundness, MethodRole::Completeness})
        All.push_back({K, Role});
    std::shuffle(All.begin(), All.end(), Rng);
    size_t Take = 1 + Rng() % All.size();

    SharedSession Sess(Fx.F, /*Budget=*/200000, SolveMode::SharedPair);
    for (size_t I = 0; I != Take; ++I) {
      TestingMethod M;
      M.Entry = &E;
      M.Kind = All[I].first;
      M.Role = All[I].second;

      SymbolicResult Got;
      Got.Verified = Sess.discharge(Shared.plan(M), Got);
      SymbolicResult Want = PerMethod.verify(M);

      ASSERT_EQ(Got.Verified, Want.Verified)
          << "seed=" << GetParam() << " trial=" << Trial << " "
          << E.Fam->Name << " " << E.pairName() << " " << M.name()
          << (Mutated ? " (mutant)" : "");
      ASSERT_EQ(Got.NumVcs, Want.NumVcs) << M.name();
    }
    EXPECT_EQ(Sess.sessionsOpened(), 1u);
    EXPECT_EQ(Sess.numSelectors(), Take);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedPairFuzzTest,
                         ::testing::Values(17, 29, 71, 113));

TEST(SharedSessionTest, PerMethodAndOneShotModesRecreateSessions) {
  PoolFixture &Fx = fixture();
  const ConditionEntry &E = Fx.C.entries(setFamily()).front();
  SymbolicEngine PerMethod(Fx.F, /*SeqLenBound=*/2,
                           /*ConflictBudget=*/200000, SolveMode::PerMethod);
  SymbolicEngine OneShot(Fx.F, /*SeqLenBound=*/2, /*ConflictBudget=*/200000,
                         SolveMode::OneShot);
  PairOutcome PM = PerMethod.verifyPair(E);
  PairOutcome OS = OneShot.verifyPair(E);
  EXPECT_EQ(PM.failures(), 0u);
  EXPECT_EQ(OS.failures(), 0u);
  EXPECT_EQ(PM.SessionsOpened, 6u); // One session per method.
  uint64_t Vcs = 0;
  for (const SymbolicResult &R : OS.Methods)
    Vcs += R.NumVcs;
  EXPECT_EQ(OS.SessionsOpened, Vcs); // One session per VC split.
  EXPECT_EQ(PM.Selectors, 0u);       // Selectors are SharedPair-only.
}
