//===- tests/ServiceTest.cpp - Warm verification service tests --------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
//
// The verification service over a warm catalog session: request routing,
// prefix-batched drains, bridge compaction + selector release keeping the
// session bounded across passes, snapshot/reload, and — the load-bearing
// property — verdict equality between a compacting service and a
// no-compaction reference under randomized request/retire orders.
//
//===----------------------------------------------------------------------===//

#include "service/VerifyService.h"

#include "DriverCore.h"

#include <gtest/gtest.h>

#include <random>

using namespace semcomm;
using namespace semcomm::service;

namespace {

std::vector<const Family *> families(std::vector<std::string> Names) {
  std::string Error;
  std::vector<const Family *> Fams = driver::resolveFamilies(Names, Error);
  EXPECT_TRUE(Error.empty()) << Error;
  return Fams;
}

/// Every (entry, kind) request of the served families, catalog order.
std::vector<ServiceRequest>
allRequests(const Catalog &C, const std::vector<const Family *> &Fams) {
  std::vector<ServiceRequest> Reqs;
  for (const Family *Fam : Fams)
    for (const ConditionEntry &E : C.entries(*Fam))
      for (ConditionKind K : {ConditionKind::Before, ConditionKind::Between,
                              ConditionKind::After})
        Reqs.push_back({Fam->Name, E.op1().Name, E.op2().Name, K});
  return Reqs;
}

std::string keyOf(const ServiceRequest &R) {
  return R.Family + "|" + R.Op1 + "," + R.Op2 + "|" +
         std::string(serviceKindName(R.Kind));
}

TEST(ServiceTest, SubmitValidatesFamilyAndPair) {
  ExprFactory F;
  Catalog C(F);
  ServiceConfig Cfg;
  VerifyService Svc(C, families({"Accumulator"}), Cfg);

  std::string Error;
  EXPECT_FALSE(Svc.submit({"Set", "add", "add", ConditionKind::Before},
                          Error));
  EXPECT_NE(Error.find("not served"), std::string::npos) << Error;
  EXPECT_FALSE(Svc.submit(
      {"Accumulator", "increase", "nonesuch", ConditionKind::Before},
      Error));
  EXPECT_NE(Error.find("no catalog entry"), std::string::npos) << Error;
  EXPECT_TRUE(Svc.submit(
      {"Accumulator", "increase", "read", ConditionKind::After}, Error));
  EXPECT_EQ(Svc.pending(), 1u);
}

TEST(ServiceTest, BatchingGroupsSamePairRequests) {
  ExprFactory F;
  Catalog C(F);
  ServiceConfig Cfg;
  VerifyService Svc(C, families({"Accumulator"}), Cfg);

  // Three kinds of one pair, interleaved with another pair: batching must
  // serve them as two pair groups, not five scope opens.
  std::string Error;
  for (ConditionKind K : {ConditionKind::Before, ConditionKind::Between,
                          ConditionKind::After})
    ASSERT_TRUE(Svc.submit({"Accumulator", "increase", "increase", K},
                           Error))
        << Error;
  for (ConditionKind K : {ConditionKind::Before, ConditionKind::After})
    ASSERT_TRUE(
        Svc.submit({"Accumulator", "increase", "read", K}, Error))
        << Error;

  std::vector<ServiceVerdict> Verdicts = Svc.drain();
  ASSERT_EQ(Verdicts.size(), 5u);
  for (const ServiceVerdict &V : Verdicts)
    EXPECT_TRUE(V.verified()) << keyOf(V.Req);

  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.Drains, 1u);
  EXPECT_EQ(S.PairGroups, 2u);
  EXPECT_EQ(S.BatchedReuses, 3u);
  EXPECT_EQ(S.MethodsDischarged, 10u);
  EXPECT_TRUE(Svc.session().solver().reasonInvariantHolds());
}

// The tentpole property: a compacting, selector-releasing, batched
// service and a no-compaction FIFO reference reach identical verdicts on
// a randomized request stream with randomized drain points — and the
// compacting session's solver invariants hold after every drain.
TEST(ServiceTest, FuzzCompactionMatchesReference) {
  ExprFactory F;
  Catalog C(F);
  std::vector<const Family *> Fams = families({"Accumulator", "Set"});

  ServiceConfig Compacting;
  Compacting.CompactMinDead = 8; // Force frequent compaction passes.
  VerifyService Svc(C, Fams, Compacting);

  ServiceConfig Reference;
  Reference.Batch = false;
  Reference.CompactBridges = false;
  Reference.ReleaseSelectors = false;
  VerifyService Ref(C, Fams, Reference);

  std::vector<ServiceRequest> Universe = allRequests(C, Fams);
  std::mt19937 Rng(20110604);
  std::uniform_int_distribution<size_t> Pick(0, Universe.size() - 1);
  std::uniform_int_distribution<int> DrainNow(0, 6);

  std::map<std::string, std::pair<bool, bool>> Served;
  std::string Error;
  for (int R = 0; R != 60; ++R) {
    const ServiceRequest &Req = Universe[Pick(Rng)];
    ASSERT_TRUE(Svc.submit(Req, Error)) << Error;
    ASSERT_TRUE(Ref.submit(Req, Error)) << Error;
    if (DrainNow(Rng) == 0 || R == 59) {
      std::vector<ServiceVerdict> A = Svc.drain();
      std::vector<ServiceVerdict> B = Ref.drain();
      ASSERT_TRUE(Svc.session().solver().reasonInvariantHolds())
          << "after drain at request " << R;
      ASSERT_EQ(A.size(), B.size());
      // Batched order differs from FIFO order; compare as verdict maps.
      std::map<std::string, std::pair<bool, bool>> MA, MB;
      for (const ServiceVerdict &V : A)
        MA[keyOf(V.Req)] = {V.Sound, V.Complete};
      for (const ServiceVerdict &V : B)
        MB[keyOf(V.Req)] = {V.Sound, V.Complete};
      ASSERT_EQ(MA, MB) << "verdict divergence at request " << R;
      for (const auto &KV : MA)
        Served.insert(KV);
    }
  }

  // Repeated requests must be stable across re-open epochs too.
  for (const auto &KV : Served) {
    EXPECT_TRUE(KV.second.first && KV.second.second)
        << KV.first << " failed verification";
  }
  // The stream retires enough scopes to exercise both growth killers.
  ServiceStats S = Svc.stats();
  EXPECT_GT(S.Session.BridgeCompactions, 0u);
  EXPECT_GT(S.Session.ReleasedSelectors, 0u);
}

// Three full catalog passes through one warm compacting session: the
// per-pass live-vars / live-clauses / live-bridges peaks must plateau
// (pass 3 within 5% of pass 2), while a no-compaction session's trail
// and atom universe would keep growing.
TEST(ServiceTest, LivePeaksPlateauAcrossPasses) {
  ExprFactory F;
  Catalog C(F);
  std::vector<const Family *> Fams = families({"Accumulator", "Set"});

  ServiceConfig Cfg;
  Cfg.CompactMinDead = 8;
  VerifyService Svc(C, Fams, Cfg);
  std::vector<ServiceRequest> Pass = allRequests(C, Fams);

  struct Peaks {
    uint64_t Vars, Clauses, Bridges;
  };
  std::vector<Peaks> PassPeaks;
  std::string Error;
  for (int P = 0; P != 3; ++P) {
    Svc.resetPeakStats();
    for (const ServiceRequest &R : Pass)
      ASSERT_TRUE(Svc.submit(R, Error)) << Error;
    for (const ServiceVerdict &V : Svc.drain())
      EXPECT_TRUE(V.verified()) << keyOf(V.Req);
    ASSERT_TRUE(Svc.session().solver().reasonInvariantHolds());
    ServiceStats S = Svc.stats();
    PassPeaks.push_back({S.Session.PeakLiveVars, S.Session.PeakLiveClauses,
                         S.Session.PeakLiveBridges});
  }

  EXPECT_LE(static_cast<double>(PassPeaks[2].Vars),
            1.05 * static_cast<double>(PassPeaks[1].Vars));
  EXPECT_LE(static_cast<double>(PassPeaks[2].Clauses),
            1.05 * static_cast<double>(PassPeaks[1].Clauses));
  EXPECT_LE(static_cast<double>(PassPeaks[2].Bridges),
            1.05 * static_cast<double>(PassPeaks[1].Bridges));

  ServiceStats S = Svc.stats();
  EXPECT_GT(S.Session.BridgeCompactions, 0u);
  EXPECT_GT(S.Session.ReleasedSelectors, 0u);
  EXPECT_GT(S.Session.ReleasedAtomVars, 0u);
}

// A compacting session still certifies: compaction deletes clauses out of
// the proof trace (Delete/Recycle steps), and the independent checker
// must accept the full trace including the re-emitted bridge Inputs.
TEST(ServiceTest, CompactingSessionCertifies) {
  ExprFactory F;
  Catalog C(F);
  std::vector<const Family *> Fams = families({"Accumulator"});

  ServiceConfig Cfg;
  Cfg.Certify = true;
  Cfg.CompactMinDead = 4;
  VerifyService Svc(C, Fams, Cfg);

  std::vector<ServiceRequest> Pass = allRequests(C, Fams);
  std::string Error;
  for (int P = 0; P != 2; ++P) {
    for (const ServiceRequest &R : Pass)
      ASSERT_TRUE(Svc.submit(R, Error)) << Error;
    for (const ServiceVerdict &V : Svc.drain())
      EXPECT_TRUE(V.verified()) << keyOf(V.Req);
  }

  ASSERT_TRUE(Svc.certifying());
  const proof::CertifySummary &Cert = Svc.finishCertification();
  EXPECT_TRUE(Cert.Checked);
  EXPECT_TRUE(Cert.Ok) << Cert.Error;
  EXPECT_GT(Cert.Queries, 0u);
  EXPECT_EQ(Cert.Queries, Cert.QueriesPassed);
}

TEST(ServiceTest, SnapshotRoundTripsAndResumesServing) {
  ExprFactory F;
  Catalog C(F);
  std::vector<const Family *> Fams = families({"Accumulator"});
  ServiceConfig Cfg;

  VerifyService Svc(C, Fams, Cfg);
  std::vector<ServiceRequest> Pass = allRequests(C, Fams);
  std::string Error;
  for (const ServiceRequest &R : Pass)
    ASSERT_TRUE(Svc.submit(R, Error)) << Error;
  Svc.drain();
  json::Value Image = Svc.snapshot();

  // The image round-trips through its textual form.
  std::optional<json::Value> Parsed = json::Value::parse(Image.dump(2));
  ASSERT_TRUE(Parsed.has_value());

  VerifyService Fresh(C, Fams, Cfg);
  ASSERT_TRUE(Fresh.restore(*Parsed, Error)) << Error;
  ASSERT_EQ(Fresh.log().size(), Svc.log().size());
  for (size_t I = 0; I != Fresh.log().size(); ++I) {
    EXPECT_EQ(keyOf(Fresh.log()[I].Req), keyOf(Svc.log()[I].Req));
    EXPECT_EQ(Fresh.log()[I].Sound, Svc.log()[I].Sound);
    EXPECT_EQ(Fresh.log()[I].Complete, Svc.log()[I].Complete);
  }
  EXPECT_EQ(Fresh.stats().Requests, Svc.stats().Requests);
  EXPECT_EQ(Fresh.stats().Drains, Svc.stats().Drains);

  // The restored service re-warms and keeps serving with the same
  // verdicts the original produced.
  ASSERT_TRUE(Fresh.submit(Pass.front(), Error)) << Error;
  std::vector<ServiceVerdict> More = Fresh.drain();
  ASSERT_EQ(More.size(), 1u);
  EXPECT_TRUE(More.front().verified());

  // Restoring into a service that has already served is rejected.
  EXPECT_FALSE(Fresh.restore(*Parsed, Error));
  // A mismatched family set is rejected.
  VerifyService Other(C, families({"Set"}), Cfg);
  EXPECT_FALSE(Other.restore(*Parsed, Error));
  EXPECT_NE(Error.find("family set"), std::string::npos) << Error;
}

// A snapshot taken under one serving discipline must not restore into a
// service configured with the other: batched and FIFO logs are ordered
// differently, so silently accepting the image would corrupt resume
// semantics. The rejection names the mismatched field.
TEST(ServiceTest, RestoreRejectsBatchMismatch) {
  ExprFactory F;
  Catalog C(F);
  std::vector<const Family *> Fams = families({"Accumulator"});

  ServiceConfig Batched;
  VerifyService Svc(C, Fams, Batched);
  std::vector<ServiceRequest> Pass = allRequests(C, Fams);
  std::string Error;
  for (const ServiceRequest &R : Pass)
    ASSERT_TRUE(Svc.submit(R, Error)) << Error;
  Svc.drain();
  json::Value Image = Svc.snapshot();

  ServiceConfig Fifo = Batched;
  Fifo.Batch = false;
  VerifyService Other(C, Fams, Fifo);
  EXPECT_FALSE(Other.restore(Image, Error));
  EXPECT_NE(Error.find("batch"), std::string::npos) << Error;
}

} // namespace
