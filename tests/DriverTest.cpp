//===- tests/DriverTest.cpp - Parallel verification driver ------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// Pins down the semcommute-verify driver: the job enumeration covers the
/// complete catalog (the tr_full_catalog counts), a 1-thread run and an
/// N-thread run reach identical verdicts, and the JSON report round-trips
/// through the parser without loss.
///
//===----------------------------------------------------------------------===//

#include "DriverCore.h"

#include "inverse/InverseSpec.h"
#include "support/Json.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

using namespace semcomm;
using namespace semcomm::driver;

namespace {

/// A scope strictly inside the default one: every scenario it enumerates is
/// also enumerated by the default scope, so all catalog verdicts remain
/// "verified" while tests run in a fraction of the time.
Scope smallScope() {
  Scope S;
  S.SetUniverse = 2;
  S.MapKeys = 2;
  S.MapVals = 2;
  S.SeqVals = 2;
  S.MaxSeqLen = 2;
  S.CounterRange = 1;
  return S;
}

struct DriverFixture {
  ExprFactory F;
  Catalog C{F};
};

//===----------------------------------------------------------------------===//
// Job enumeration completeness
//===----------------------------------------------------------------------===//

TEST(DriverEnumeration, CoversEveryPairKindAndRole) {
  DriverFixture Fx;
  DriverOptions Opts;
  std::vector<JobRecord> Jobs = enumerateJobs(Fx.C, Opts);

  // Per family: |ops|^2 ordered pairs x 3 kinds x 2 roles commutativity
  // jobs, plus that family's Table 5.10 inverse rows.
  std::vector<InverseSpec> Inverses = buildInverseSpecs();
  size_t Expected = 0;
  for (const Family *Fam : allFamilies()) {
    Expected += Fx.C.entries(*Fam).size() * 3 * 2;
    for (const InverseSpec &S : Inverses)
      if (S.Fam == Fam)
        ++Expected;
  }
  EXPECT_EQ(Jobs.size(), Expected);

  // Every job is distinct.
  std::set<std::string> Keys;
  for (const JobRecord &J : Jobs)
    Keys.insert(J.key());
  EXPECT_EQ(Keys.size(), Jobs.size());

  // The commutativity jobs cover the paper's 765 conditions (counted per
  // implementing structure) exactly: each condition contributes one
  // soundness and one completeness job, counted once per family.
  size_t PaperCount = 0;
  for (const Family *Fam : allFamilies()) {
    size_t FamJobs = 0;
    for (const JobRecord &J : Jobs)
      if (J.Family == Fam->Name && J.Category == "commutativity")
        ++FamJobs;
    EXPECT_EQ(FamJobs, Fx.C.entries(*Fam).size() * 6) << Fam->Name;
    PaperCount += FamJobs / 2 * Fam->StructureNames.size();
  }
  EXPECT_EQ(PaperCount, Fx.C.totalConditionsPaperCount());
  EXPECT_EQ(Fx.C.totalConditionsPaperCount(), 765u);

  // All eight Table 5.10 inverses appear.
  size_t InverseJobs = 0;
  for (const JobRecord &J : Jobs)
    if (J.Category == "inverse")
      ++InverseJobs;
  EXPECT_EQ(InverseJobs, Inverses.size());
  EXPECT_EQ(InverseJobs, 8u);
}

TEST(DriverEnumeration, FamilyFilterAndErrors) {
  DriverFixture Fx;
  DriverOptions Opts;
  Opts.Families = {"Set"};
  for (const JobRecord &J : enumerateJobs(Fx.C, Opts))
    EXPECT_EQ(J.Family, "Set");

  std::string Error;
  std::vector<const Family *> All = resolveFamilies({"all"}, Error);
  EXPECT_EQ(All.size(), 4u);
  EXPECT_TRUE(Error.empty());

  std::vector<const Family *> Bad = resolveFamilies({"Stack"}, Error);
  EXPECT_TRUE(Bad.empty());
  EXPECT_FALSE(Error.empty());

  std::vector<const Family *> Two = resolveFamilies({"Map", "Set"}, Error);
  ASSERT_EQ(Two.size(), 2u);
  // Presentation order is preserved regardless of request order.
  EXPECT_EQ(Two[0]->Name, "Set");
  EXPECT_EQ(Two[1]->Name, "Map");
}

//===----------------------------------------------------------------------===//
// Parallel runs: verdicts are independent of the thread count
//===----------------------------------------------------------------------===//

TEST(DriverParallel, OneThreadAndManyThreadsAgree) {
  DriverFixture Fx;
  DriverOptions Opts;
  Opts.Bounds = smallScope();

  Opts.Threads = 1;
  Report Serial = runFullCatalog(Fx.C, Opts);
  Opts.Threads = 8;
  Report Parallel = runFullCatalog(Fx.C, Opts);

  EXPECT_TRUE(Serial.sameVerdicts(Parallel));
  EXPECT_TRUE(Parallel.sameVerdicts(Serial));
  EXPECT_EQ(Serial.failures(), 0u);
  EXPECT_EQ(Parallel.failures(), 0u);
  EXPECT_EQ(Serial.Results.size(), Parallel.Results.size());
  EXPECT_EQ(Parallel.Threads, 8u);

  // The small scope exercises every family.
  EXPECT_EQ(Serial.Families.size(), 4u);
  for (const FamilySummary &S : Serial.Families) {
    EXPECT_GT(S.Jobs, 0u) << S.Family;
    EXPECT_GT(S.Scenarios, 0u) << S.Family;
  }
}

TEST(DriverParallel, SubsetRunMatchesItsSlice) {
  DriverFixture Fx;
  DriverOptions Opts;
  Opts.Bounds = smallScope();
  Opts.Families = {"Accumulator"};
  Opts.Threads = 4;

  Report R = runFullCatalog(Fx.C, Opts);
  EXPECT_EQ(R.failures(), 0u);
  ASSERT_EQ(R.Families.size(), 1u);
  EXPECT_EQ(R.Families[0].Family, "Accumulator");
  // 2 ops -> 4 ordered pairs x 3 kinds x 2 roles, plus the increase inverse.
  EXPECT_EQ(R.Results.size(),
            Fx.C.entries(accumulatorFamily()).size() * 6 + 1);
}

//===----------------------------------------------------------------------===//
// JSON report round-trip
//===----------------------------------------------------------------------===//

TEST(DriverReport, JsonRoundTrips) {
  DriverFixture Fx;
  DriverOptions Opts;
  Opts.Bounds = smallScope();
  Opts.Families = {"Accumulator", "Set"};
  Opts.Threads = 2;

  Report R = runFullCatalog(Fx.C, Opts);
  json::Value Doc = R.toJson();

  // Serialized text parses back to the identical DOM, compact and pretty.
  for (int Indent : {-1, 2}) {
    std::optional<json::Value> Parsed = json::Value::parse(Doc.dump(Indent));
    ASSERT_TRUE(Parsed.has_value());
    EXPECT_TRUE(*Parsed == Doc);
    EXPECT_EQ(Parsed->dump(Indent), Doc.dump(Indent));
  }

  // The DOM deserializes to a report with the same verdicts and metadata.
  std::optional<Report> Back = Report::fromJson(Doc);
  ASSERT_TRUE(Back.has_value());
  EXPECT_TRUE(R.sameVerdicts(*Back));
  EXPECT_EQ(Back->Threads, R.Threads);
  EXPECT_EQ(Back->WallMillis, R.WallMillis);
  EXPECT_EQ(Back->Bounds.SetUniverse, R.Bounds.SetUniverse);
  EXPECT_EQ(Back->Bounds.CounterRange, R.Bounds.CounterRange);
  ASSERT_EQ(Back->Families.size(), R.Families.size());
  for (size_t I = 0; I != R.Families.size(); ++I) {
    EXPECT_EQ(Back->Families[I].Family, R.Families[I].Family);
    EXPECT_EQ(Back->Families[I].Jobs, R.Families[I].Jobs);
    EXPECT_EQ(Back->Families[I].PaperConditions,
              R.Families[I].PaperConditions);
  }

  // And the round-tripped report re-serializes byte-identically.
  EXPECT_EQ(Back->toJson().dump(2), Doc.dump(2));

  // Garbage is rejected, not mis-parsed.
  EXPECT_FALSE(json::Value::parse("{\"unterminated\": ").has_value());
  EXPECT_FALSE(json::Value::parse("[1, 2,]trailing").has_value());
  EXPECT_FALSE(json::Value::parse("1-2").has_value());
  EXPECT_FALSE(json::Value::parse("+1").has_value());
  EXPECT_FALSE(json::Value::parse("1e5e5").has_value());
  EXPECT_FALSE(json::Value::parse("1.").has_value());
  EXPECT_FALSE(json::Value::parse("[1-2]").has_value());
  EXPECT_FALSE(Report::fromJson(json::Value::integer(7)).has_value());
  json::Value NotOurs = json::Value::object();
  NotOurs.set("tool", json::Value::string("something-else"));
  EXPECT_FALSE(Report::fromJson(NotOurs).has_value());
}

TEST(DriverReport, SameVerdictsDetectsDifferences) {
  DriverFixture Fx;
  DriverOptions Opts;
  Opts.Bounds = smallScope();
  Opts.Families = {"Accumulator"};

  Report A = runFullCatalog(Fx.C, Opts);
  Report B = A;
  EXPECT_TRUE(A.sameVerdicts(B));

  B.Results[0].Verified = !B.Results[0].Verified;
  EXPECT_FALSE(A.sameVerdicts(B));

  Report C = A;
  C.Results.pop_back();
  EXPECT_FALSE(A.sameVerdicts(C));
}

TEST(DriverReport, UnknownFamilyYieldsErrorReportNotSuccess) {
  DriverFixture Fx;
  DriverOptions Opts;
  Opts.Families = {"Sets"}; // typo: must not read as "verified everything"
  Report R = runFullCatalog(Fx.C, Opts);
  EXPECT_FALSE(R.Error.empty());
  EXPECT_TRUE(R.Results.empty());
  EXPECT_GT(R.failures(), 0u);

  // The error survives the JSON round-trip.
  std::optional<Report> Back = Report::fromJson(R.toJson());
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->Error, R.Error);
  EXPECT_GT(Back->failures(), 0u);
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  std::atomic<int> Counter{0};
  {
    ThreadPool Pool(4);
    EXPECT_EQ(Pool.threadCount(), 4u);
    for (int I = 0; I != 1000; ++I)
      Pool.submit([&Counter] { Counter.fetch_add(1); });
    Pool.wait();
    EXPECT_EQ(Counter.load(), 1000);
    // The pool is reusable after wait().
    for (int I = 0; I != 100; ++I)
      Pool.submit([&Counter] { Counter.fetch_add(1); });
    Pool.wait();
  }
  EXPECT_EQ(Counter.load(), 1100);
}

TEST(ThreadPool, TasksMaySubmitTasks) {
  std::atomic<int> Counter{0};
  ThreadPool Pool(3);
  for (int I = 0; I != 10; ++I)
    Pool.submit([&Pool, &Counter] {
      for (int J = 0; J != 10; ++J)
        Pool.submit([&Counter] { Counter.fetch_add(1); });
    });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversTheRange) {
  std::vector<std::atomic<int>> Hits(257);
  ThreadPool::parallelFor(Hits.size(), 4,
                          [&Hits](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I != Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 1) << I;
}

} // namespace
