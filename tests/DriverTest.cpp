//===- tests/DriverTest.cpp - Parallel verification driver ------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// Pins down the semcommute-verify driver: the job enumeration covers the
/// complete catalog (the tr_full_catalog counts), a 1-thread run and an
/// N-thread run reach identical verdicts, and the JSON report round-trips
/// through the parser without loss.
///
//===----------------------------------------------------------------------===//

#include "DriverCore.h"

#include "inverse/InverseSpec.h"
#include "support/Json.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

using namespace semcomm;
using namespace semcomm::driver;

namespace {

/// A scope strictly inside the default one: every scenario it enumerates is
/// also enumerated by the default scope, so all catalog verdicts remain
/// "verified" while tests run in a fraction of the time.
Scope smallScope() {
  Scope S;
  S.SetUniverse = 2;
  S.MapKeys = 2;
  S.MapVals = 2;
  S.SeqVals = 2;
  S.MaxSeqLen = 2;
  S.CounterRange = 1;
  return S;
}

struct DriverFixture {
  ExprFactory F;
  Catalog C{F};
};

//===----------------------------------------------------------------------===//
// Job enumeration completeness
//===----------------------------------------------------------------------===//

TEST(DriverEnumeration, CoversEveryPairKindAndRole) {
  DriverFixture Fx;
  DriverOptions Opts;
  std::vector<JobRecord> Jobs = enumerateJobs(Fx.C, Opts);

  // Per family: |ops|^2 ordered pairs x 3 kinds x 2 roles commutativity
  // jobs, plus that family's Table 5.10 inverse rows.
  std::vector<InverseSpec> Inverses = buildInverseSpecs();
  size_t Expected = 0;
  for (const Family *Fam : allFamilies()) {
    Expected += Fx.C.entries(*Fam).size() * 3 * 2;
    for (const InverseSpec &S : Inverses)
      if (S.Fam == Fam)
        ++Expected;
  }
  EXPECT_EQ(Jobs.size(), Expected);

  // Every job is distinct.
  std::set<std::string> Keys;
  for (const JobRecord &J : Jobs)
    Keys.insert(J.key());
  EXPECT_EQ(Keys.size(), Jobs.size());

  // The commutativity jobs cover the paper's 765 conditions (counted per
  // implementing structure) exactly: each condition contributes one
  // soundness and one completeness job, counted once per family.
  size_t PaperCount = 0;
  for (const Family *Fam : allFamilies()) {
    size_t FamJobs = 0;
    for (const JobRecord &J : Jobs)
      if (J.Family == Fam->Name && J.Category == "commutativity")
        ++FamJobs;
    EXPECT_EQ(FamJobs, Fx.C.entries(*Fam).size() * 6) << Fam->Name;
    PaperCount += FamJobs / 2 * Fam->StructureNames.size();
  }
  EXPECT_EQ(PaperCount, Fx.C.totalConditionsPaperCount());
  EXPECT_EQ(Fx.C.totalConditionsPaperCount(), 765u);

  // All eight Table 5.10 inverses appear.
  size_t InverseJobs = 0;
  for (const JobRecord &J : Jobs)
    if (J.Category == "inverse")
      ++InverseJobs;
  EXPECT_EQ(InverseJobs, Inverses.size());
  EXPECT_EQ(InverseJobs, 8u);
}

TEST(DriverEnumeration, FamilyFilterAndErrors) {
  DriverFixture Fx;
  DriverOptions Opts;
  Opts.Families = {"Set"};
  for (const JobRecord &J : enumerateJobs(Fx.C, Opts))
    EXPECT_EQ(J.Family, "Set");

  std::string Error;
  std::vector<const Family *> All = resolveFamilies({"all"}, Error);
  EXPECT_EQ(All.size(), 4u);
  EXPECT_TRUE(Error.empty());

  std::vector<const Family *> Bad = resolveFamilies({"Stack"}, Error);
  EXPECT_TRUE(Bad.empty());
  EXPECT_FALSE(Error.empty());

  std::vector<const Family *> Two = resolveFamilies({"Map", "Set"}, Error);
  ASSERT_EQ(Two.size(), 2u);
  // Presentation order is preserved regardless of request order.
  EXPECT_EQ(Two[0]->Name, "Set");
  EXPECT_EQ(Two[1]->Name, "Map");
}

//===----------------------------------------------------------------------===//
// Parallel runs: verdicts are independent of the thread count
//===----------------------------------------------------------------------===//

TEST(DriverParallel, OneThreadAndManyThreadsAgree) {
  DriverFixture Fx;
  DriverOptions Opts;
  Opts.Bounds = smallScope();

  Opts.Threads = 1;
  Report Serial = runFullCatalog(Fx.C, Opts);
  Opts.Threads = 8;
  Report Parallel = runFullCatalog(Fx.C, Opts);

  EXPECT_TRUE(Serial.sameVerdicts(Parallel));
  EXPECT_TRUE(Parallel.sameVerdicts(Serial));
  EXPECT_EQ(Serial.failures(), 0u);
  EXPECT_EQ(Parallel.failures(), 0u);
  EXPECT_EQ(Serial.Results.size(), Parallel.Results.size());
  EXPECT_EQ(Parallel.Threads, 8u);

  // The small scope exercises every family.
  EXPECT_EQ(Serial.Families.size(), 4u);
  for (const FamilySummary &S : Serial.Families) {
    EXPECT_GT(S.Jobs, 0u) << S.Family;
    EXPECT_GT(S.Scenarios, 0u) << S.Family;
  }
}

TEST(DriverParallel, SubsetRunMatchesItsSlice) {
  DriverFixture Fx;
  DriverOptions Opts;
  Opts.Bounds = smallScope();
  Opts.Families = {"Accumulator"};
  Opts.Threads = 4;

  Report R = runFullCatalog(Fx.C, Opts);
  EXPECT_EQ(R.failures(), 0u);
  ASSERT_EQ(R.Families.size(), 1u);
  EXPECT_EQ(R.Families[0].Family, "Accumulator");
  // 2 ops -> 4 ordered pairs x 3 kinds x 2 roles, plus the increase inverse.
  EXPECT_EQ(R.Results.size(),
            Fx.C.entries(accumulatorFamily()).size() * 6 + 1);
}

//===----------------------------------------------------------------------===//
// Engine selection: the symbolic path must match the exhaustive one
//===----------------------------------------------------------------------===//

TEST(DriverEngines, EnumerationCoversBothEnginesExactlyOnce) {
  DriverFixture Fx;
  DriverOptions Opts;
  Opts.Engine = EngineKind::Both;
  std::vector<JobRecord> Jobs = enumerateJobs(Fx.C, Opts);

  Opts.Engine = EngineKind::Exhaustive;
  size_t ExOnly = enumerateJobs(Fx.C, Opts).size();
  Opts.Engine = EngineKind::Symbolic;
  size_t SymOnly = enumerateJobs(Fx.C, Opts).size();

  // "Both" doubles every job: the inverse catalog now runs under each
  // engine too (the symbolic inverse path cross-checks the concrete one).
  EXPECT_EQ(ExOnly, SymOnly);
  EXPECT_EQ(Jobs.size(), 2 * ExOnly);

  std::set<std::string> Keys;
  size_t SymbolicInverses = 0, ExhaustiveInverses = 0;
  for (const JobRecord &J : Jobs) {
    EXPECT_TRUE(J.Engine == "exhaustive" || J.Engine == "symbolic")
        << J.key();
    if (J.Category == "inverse") {
      if (J.Engine == "symbolic")
        ++SymbolicInverses;
      else
        ++ExhaustiveInverses;
    }
    Keys.insert(J.key());
  }
  EXPECT_EQ(Keys.size(), Jobs.size());
  size_t Inverses = buildInverseSpecs().size();
  EXPECT_EQ(SymbolicInverses, Inverses);
  EXPECT_EQ(ExhaustiveInverses, Inverses);
}

TEST(DriverEngines, SymbolicMatchesExhaustiveOnFullCatalog) {
  DriverFixture Fx;
  DriverOptions Opts;
  Opts.Bounds = smallScope();
  Opts.Engine = EngineKind::Both;
  Opts.SymbolicSeqLenBound = 2;
  Opts.Threads = 4;

  Report R = runFullCatalog(Fx.C, Opts);
  EXPECT_EQ(R.failures(), 0u);

  // Pair every symbolic verdict (commutativity and inverse) with its
  // exhaustive twin.
  std::map<std::string, bool> Exhaustive;
  for (const JobRecord &J : R.Results)
    if (J.Engine == "exhaustive")
      Exhaustive[J.Family + "/" + J.Category + "/" + J.Op1 + "/" + J.Op2 +
                 "/" + J.Kind + "/" + J.Role] = J.Verified;

  size_t SymbolicJobs = 0, SymbolicInverses = 0;
  uint64_t TotalVcs = 0;
  for (const JobRecord &J : R.Results) {
    if (J.Engine != "symbolic")
      continue;
    ++SymbolicJobs;
    SymbolicInverses += J.Category == "inverse";
    TotalVcs += J.Vcs;
    std::string Key = J.Family + "/" + J.Category + "/" + J.Op1 + "/" +
                      J.Op2 + "/" + J.Kind + "/" + J.Role;
    ASSERT_TRUE(Exhaustive.count(Key)) << Key;
    EXPECT_EQ(J.Verified, Exhaustive[Key]) << Key;
    EXPECT_GT(J.Vcs, 0u) << Key;
  }
  EXPECT_EQ(SymbolicJobs, Exhaustive.size());
  EXPECT_EQ(SymbolicInverses, buildInverseSpecs().size());
  EXPECT_GT(TotalVcs, SymbolicJobs); // ArrayList case splits multiply VCs.

  // Every symbolic (family, op-pair) shows up in the pair-session stats
  // with its six methods and a live session.
  EXPECT_FALSE(R.Pairs.empty());
  size_t PairEntries = 0;
  for (const Family *Fam : allFamilies())
    PairEntries += Fx.C.entries(*Fam).size();
  EXPECT_EQ(R.Pairs.size(), PairEntries);
  bool AnyRetained = false;
  for (const PairStats &P : R.Pairs) {
    EXPECT_EQ(P.Methods, 6u) << P.Family << "/" << P.Op1 << "," << P.Op2;
    EXPECT_EQ(P.Mode, "shared-pair");
    EXPECT_EQ(P.SessionsOpened, 1u);
    EXPECT_EQ(P.Selectors, 6u);
    EXPECT_GT(P.Vcs, 0u);
    // Trivial pairs (e.g. Accumulator read/read) may encode entirely to
    // unit clauses, which live on the trail; substantial pairs must show
    // retained clauses.
    AnyRetained = AnyRetained || P.RetainedClauses > 0;
  }
  EXPECT_TRUE(AnyRetained);
}

TEST(DriverEngines, SymbolicVerdictsAreThreadCountInvariant) {
  DriverFixture Fx;
  DriverOptions Opts;
  Opts.Engine = EngineKind::Symbolic;
  Opts.SymbolicSeqLenBound = 3;

  Opts.Threads = 1;
  Report Serial = runFullCatalog(Fx.C, Opts);
  for (unsigned Threads : {2u, 8u}) {
    Opts.Threads = Threads;
    Report Parallel = runFullCatalog(Fx.C, Opts);

    EXPECT_TRUE(Serial.sameVerdicts(Parallel)) << Threads;
    EXPECT_TRUE(Parallel.sameVerdicts(Serial)) << Threads;
    EXPECT_EQ(Serial.failures(), 0u);
    EXPECT_EQ(Parallel.failures(), 0u);

    // Solver statistics are a function of the job, not of scheduling:
    // each pair runs its six methods in a fixed order on one worker.
    for (size_t I = 0; I != Serial.Results.size(); ++I) {
      EXPECT_EQ(Serial.Results[I].Vcs, Parallel.Results[I].Vcs)
          << Serial.Results[I].key();
      EXPECT_EQ(Serial.Results[I].Conflicts, Parallel.Results[I].Conflicts)
          << Serial.Results[I].key();
      EXPECT_EQ(Serial.Results[I].ProofCore, Parallel.Results[I].ProofCore)
          << Serial.Results[I].key();
    }
    ASSERT_EQ(Serial.Pairs.size(), Parallel.Pairs.size());
    for (size_t I = 0; I != Serial.Pairs.size(); ++I) {
      EXPECT_EQ(Serial.Pairs[I].Checks, Parallel.Pairs[I].Checks);
      EXPECT_EQ(Serial.Pairs[I].Conflicts, Parallel.Pairs[I].Conflicts);
      EXPECT_EQ(Serial.Pairs[I].RetainedClauses,
                Parallel.Pairs[I].RetainedClauses);
    }
  }
}

TEST(DriverEngines, SolveModesAgreeOnDriverVerdicts) {
  // The shared-family, per-method and one-shot comparison modes must reach
  // the same verdicts as the shared-pair default (only the statistics may
  // differ).
  DriverFixture Fx;
  DriverOptions Opts;
  Opts.Engine = EngineKind::Symbolic;
  Opts.Families = {"Set"};
  Opts.Threads = 4;

  Opts.SymbolicMode = SolveMode::SharedPair;
  Report Shared = runFullCatalog(Fx.C, Opts);
  Opts.SymbolicMode = SolveMode::PerMethod;
  Report PerMethod = runFullCatalog(Fx.C, Opts);
  Opts.SymbolicMode = SolveMode::SharedFamily;
  Report FamilyRun = runFullCatalog(Fx.C, Opts);

  EXPECT_EQ(Shared.failures(), 0u);
  EXPECT_EQ(PerMethod.failures(), 0u);
  EXPECT_EQ(FamilyRun.failures(), 0u);
  EXPECT_TRUE(Shared.sameVerdicts(PerMethod));
  EXPECT_TRUE(Shared.sameVerdicts(FamilyRun));
  for (const PairStats &P : PerMethod.Pairs) {
    EXPECT_EQ(P.Mode, "per-method");
    EXPECT_EQ(P.SessionsOpened, 6u);
    EXPECT_EQ(P.Selectors, 0u);
  }

  // The family run reports one warm session for the whole family, pair
  // rows under shared-family mode, and a family_stats row whose eviction
  // counters show every pair was retired.
  EXPECT_TRUE(Shared.FamilySessions.empty());
  ASSERT_EQ(FamilyRun.FamilySessions.size(), 1u);
  const FamilyStats &FS = FamilyRun.FamilySessions[0];
  EXPECT_EQ(FS.Family, "Set");
  EXPECT_EQ(FS.Mode, "shared-family");
  EXPECT_EQ(FS.Pairs, FamilyRun.Pairs.size());
  EXPECT_EQ(FS.Evictions, FamilyRun.Pairs.size());
  EXPECT_GT(FS.EvictedClauses, 0u);
  EXPECT_GT(FS.PrefixReuses, 0u);
  EXPECT_GT(FS.PeakRetainedClauses, 0u);
  uint64_t Sessions = 0;
  for (const PairStats &P : FamilyRun.Pairs) {
    EXPECT_EQ(P.Mode, "shared-family");
    EXPECT_EQ(P.Selectors, 7u); // Pair selector + six method selectors.
    Sessions += P.SessionsOpened;
  }
  EXPECT_EQ(Sessions, 1u);
}

TEST(DriverEngines, SharedFamilyVerdictsAreThreadCountInvariant) {
  // The acceptance bar of the family tier: on the full catalog,
  // shared-family verdicts and solver statistics are identical at 1, 2
  // and 8 threads (each family runs its pairs in catalog order on one
  // worker), and every family row shows bounded retention via eviction.
  DriverFixture Fx;
  DriverOptions Opts;
  Opts.Engine = EngineKind::Symbolic;
  Opts.SymbolicMode = SolveMode::SharedFamily;
  Opts.SymbolicSeqLenBound = 2;

  Opts.Threads = 1;
  Report Serial = runFullCatalog(Fx.C, Opts);
  EXPECT_EQ(Serial.failures(), 0u);
  ASSERT_EQ(Serial.FamilySessions.size(), 4u);
  for (const FamilyStats &FS : Serial.FamilySessions) {
    EXPECT_EQ(FS.Evictions, FS.Pairs) << FS.Family;
    EXPECT_GT(FS.Checks, 0u) << FS.Family;
  }

  for (unsigned Threads : {2u, 8u}) {
    Opts.Threads = Threads;
    Report Parallel = runFullCatalog(Fx.C, Opts);
    EXPECT_TRUE(Serial.sameVerdicts(Parallel)) << Threads;
    EXPECT_EQ(Parallel.failures(), 0u);
    for (size_t I = 0; I != Serial.Results.size(); ++I) {
      EXPECT_EQ(Serial.Results[I].Vcs, Parallel.Results[I].Vcs)
          << Serial.Results[I].key();
      EXPECT_EQ(Serial.Results[I].Conflicts, Parallel.Results[I].Conflicts)
          << Serial.Results[I].key();
      EXPECT_EQ(Serial.Results[I].ProofCore, Parallel.Results[I].ProofCore)
          << Serial.Results[I].key();
    }
    ASSERT_EQ(Serial.FamilySessions.size(), Parallel.FamilySessions.size());
    for (size_t I = 0; I != Serial.FamilySessions.size(); ++I) {
      EXPECT_EQ(Serial.FamilySessions[I].Checks,
                Parallel.FamilySessions[I].Checks);
      EXPECT_EQ(Serial.FamilySessions[I].Conflicts,
                Parallel.FamilySessions[I].Conflicts);
      EXPECT_EQ(Serial.FamilySessions[I].PeakRetainedClauses,
                Parallel.FamilySessions[I].PeakRetainedClauses);
      EXPECT_EQ(Serial.FamilySessions[I].EvictedClauses,
                Parallel.FamilySessions[I].EvictedClauses);
    }
  }
}

TEST(DriverEngines, SharedCatalogAgreesWithOtherModes) {
  // The catalog tier must be invisible in the verdicts: shared-catalog
  // agrees with shared-family and shared-pair, and reports catalog_stats
  // rows whose retirement/recycling counters show the tier actually ran.
  DriverFixture Fx;
  DriverOptions Opts;
  Opts.Engine = EngineKind::Symbolic;
  Opts.Families = {"Set"};
  Opts.Threads = 4;

  Opts.SymbolicMode = SolveMode::SharedPair;
  Report Shared = runFullCatalog(Fx.C, Opts);
  Opts.SymbolicMode = SolveMode::SharedFamily;
  Report FamilyRun = runFullCatalog(Fx.C, Opts);
  Opts.SymbolicMode = SolveMode::SharedCatalog;
  Report CatalogRun = runFullCatalog(Fx.C, Opts);

  EXPECT_EQ(CatalogRun.failures(), 0u);
  EXPECT_TRUE(Shared.sameVerdicts(CatalogRun));
  EXPECT_TRUE(FamilyRun.sameVerdicts(CatalogRun));
  EXPECT_TRUE(Shared.CatalogSessions.empty());
  EXPECT_TRUE(FamilyRun.CatalogSessions.empty());

  // One family at 4 threads: one family-sharded catalog session, which
  // still reports family_stats and pair rows under shared-catalog mode.
  ASSERT_EQ(CatalogRun.CatalogSessions.size(), 1u);
  const CatalogStats &CS = CatalogRun.CatalogSessions[0];
  EXPECT_EQ(CS.Mode, "shared-catalog");
  EXPECT_EQ(CS.FamilyNames, "Set");
  EXPECT_EQ(CS.Families, 1u);
  EXPECT_EQ(CS.Pairs, CatalogRun.Pairs.size());
  EXPECT_EQ(CS.SubtreeRetirements, 1u);
  EXPECT_EQ(CS.PairEvictions, CatalogRun.Pairs.size());
  EXPECT_GT(CS.RecycledVars, 0u);
  EXPECT_GT(CS.PeakLiveVars, 0u);
  EXPECT_LT(CS.PeakLiveVars, CS.VarRequests);
  ASSERT_EQ(CatalogRun.FamilySessions.size(), 1u);
  EXPECT_EQ(CatalogRun.FamilySessions[0].Mode, "shared-catalog");
  EXPECT_EQ(CatalogRun.FamilySessions[0].Evictions,
            CatalogRun.Pairs.size());
  for (const PairStats &P : CatalogRun.Pairs)
    EXPECT_EQ(P.Mode, "shared-catalog");
}

TEST(DriverEngines, SharedCatalogVerdictsAreThreadCountInvariant) {
  // The acceptance bar of the catalog tier: on the full catalog,
  // shared-catalog verdicts are identical at 1, 2, and 8 threads. At one
  // thread the whole catalog runs through a single session; at more,
  // deterministic family shards — so statistics agree between the
  // sharded runs, and only verdicts are compared against the 1-thread
  // single-session run.
  DriverFixture Fx;
  DriverOptions Opts;
  Opts.Engine = EngineKind::Symbolic;
  Opts.SymbolicMode = SolveMode::SharedCatalog;
  Opts.SymbolicSeqLenBound = 2;

  Opts.Threads = 1;
  Report Serial = runFullCatalog(Fx.C, Opts);
  EXPECT_EQ(Serial.failures(), 0u);
  ASSERT_EQ(Serial.CatalogSessions.size(), 1u);
  EXPECT_EQ(Serial.CatalogSessions[0].Families, 4u);
  EXPECT_EQ(Serial.CatalogSessions[0].SubtreeRetirements, 4u);
  EXPECT_GT(Serial.CatalogSessions[0].RecycledVars, 0u);
  ASSERT_EQ(Serial.FamilySessions.size(), 4u);
  for (const FamilyStats &FS : Serial.FamilySessions)
    EXPECT_EQ(FS.Evictions, FS.Pairs) << FS.Family;

  Opts.Threads = 2;
  Report Two = runFullCatalog(Fx.C, Opts);
  Opts.Threads = 8;
  Report Eight = runFullCatalog(Fx.C, Opts);
  EXPECT_TRUE(Serial.sameVerdicts(Two));
  EXPECT_TRUE(Serial.sameVerdicts(Eight));
  EXPECT_EQ(Two.failures(), 0u);
  EXPECT_EQ(Eight.failures(), 0u);

  // Sharded runs are deterministic: 2 and 8 threads use the same
  // one-session-per-family shards, so stats agree exactly.
  ASSERT_EQ(Two.CatalogSessions.size(), 4u);
  ASSERT_EQ(Eight.CatalogSessions.size(), 4u);
  for (size_t I = 0; I != Two.CatalogSessions.size(); ++I) {
    EXPECT_EQ(Two.CatalogSessions[I].FamilyNames,
              Eight.CatalogSessions[I].FamilyNames);
    EXPECT_EQ(Two.CatalogSessions[I].Checks,
              Eight.CatalogSessions[I].Checks);
    EXPECT_EQ(Two.CatalogSessions[I].Conflicts,
              Eight.CatalogSessions[I].Conflicts);
    EXPECT_EQ(Two.CatalogSessions[I].RecycledVars,
              Eight.CatalogSessions[I].RecycledVars);
    EXPECT_EQ(Two.CatalogSessions[I].PeakLiveVars,
              Eight.CatalogSessions[I].PeakLiveVars);
  }
  for (size_t I = 0; I != Two.Results.size(); ++I) {
    EXPECT_EQ(Two.Results[I].Vcs, Eight.Results[I].Vcs)
        << Two.Results[I].key();
    EXPECT_EQ(Two.Results[I].Conflicts, Eight.Results[I].Conflicts)
        << Two.Results[I].key();
    EXPECT_EQ(Two.Results[I].ProofCore, Eight.Results[I].ProofCore)
        << Two.Results[I].key();
  }
}

//===----------------------------------------------------------------------===//
// JSON report round-trip
//===----------------------------------------------------------------------===//

TEST(DriverReport, JsonRoundTrips) {
  DriverFixture Fx;
  DriverOptions Opts;
  Opts.Bounds = smallScope();
  Opts.Families = {"Accumulator", "Set"};
  Opts.Threads = 2;

  Report R = runFullCatalog(Fx.C, Opts);
  json::Value Doc = R.toJson();

  // Serialized text parses back to the identical DOM, compact and pretty.
  for (int Indent : {-1, 2}) {
    std::optional<json::Value> Parsed = json::Value::parse(Doc.dump(Indent));
    ASSERT_TRUE(Parsed.has_value());
    EXPECT_TRUE(*Parsed == Doc);
    EXPECT_EQ(Parsed->dump(Indent), Doc.dump(Indent));
  }

  // The DOM deserializes to a report with the same verdicts and metadata.
  std::optional<Report> Back = Report::fromJson(Doc);
  ASSERT_TRUE(Back.has_value());
  EXPECT_TRUE(R.sameVerdicts(*Back));
  EXPECT_EQ(Back->Threads, R.Threads);
  EXPECT_EQ(Back->WallMillis, R.WallMillis);
  EXPECT_EQ(Back->Bounds.SetUniverse, R.Bounds.SetUniverse);
  EXPECT_EQ(Back->Bounds.CounterRange, R.Bounds.CounterRange);
  ASSERT_EQ(Back->Families.size(), R.Families.size());
  for (size_t I = 0; I != R.Families.size(); ++I) {
    EXPECT_EQ(Back->Families[I].Family, R.Families[I].Family);
    EXPECT_EQ(Back->Families[I].Jobs, R.Families[I].Jobs);
    EXPECT_EQ(Back->Families[I].PaperConditions,
              R.Families[I].PaperConditions);
  }

  // And the round-tripped report re-serializes byte-identically.
  EXPECT_EQ(Back->toJson().dump(2), Doc.dump(2));

  // Garbage is rejected, not mis-parsed.
  EXPECT_FALSE(json::Value::parse("{\"unterminated\": ").has_value());
  EXPECT_FALSE(json::Value::parse("[1, 2,]trailing").has_value());
  EXPECT_FALSE(json::Value::parse("1-2").has_value());
  EXPECT_FALSE(json::Value::parse("+1").has_value());
  EXPECT_FALSE(json::Value::parse("1e5e5").has_value());
  EXPECT_FALSE(json::Value::parse("1.").has_value());
  EXPECT_FALSE(json::Value::parse("[1-2]").has_value());
  EXPECT_FALSE(Report::fromJson(json::Value::integer(7)).has_value());
  json::Value NotOurs = json::Value::object();
  NotOurs.set("tool", json::Value::string("something-else"));
  EXPECT_FALSE(Report::fromJson(NotOurs).has_value());
}

TEST(DriverReport, EngineAndSolverStatsRoundTrip) {
  DriverFixture Fx;
  DriverOptions Opts;
  Opts.Bounds = smallScope();
  Opts.Families = {"Set"};
  Opts.Engine = EngineKind::Both;
  Opts.Threads = 2;

  Report R = runFullCatalog(Fx.C, Opts);
  std::optional<Report> Back = Report::fromJson(R.toJson());
  ASSERT_TRUE(Back.has_value());
  EXPECT_TRUE(R.sameVerdicts(*Back));
  ASSERT_EQ(Back->Results.size(), R.Results.size());
  for (size_t I = 0; I != R.Results.size(); ++I) {
    EXPECT_EQ(Back->Results[I].Engine, R.Results[I].Engine);
    EXPECT_EQ(Back->Results[I].Vcs, R.Results[I].Vcs);
    EXPECT_EQ(Back->Results[I].Conflicts, R.Results[I].Conflicts);
    EXPECT_EQ(Back->Results[I].MaxVcConflicts, R.Results[I].MaxVcConflicts);
    EXPECT_EQ(Back->Results[I].RetainedClauses,
              R.Results[I].RetainedClauses);
    EXPECT_EQ(Back->Results[I].DbReductions, R.Results[I].DbReductions);
    EXPECT_EQ(Back->Results[I].ReclaimedClauses,
              R.Results[I].ReclaimedClauses);
    EXPECT_EQ(Back->Results[I].ProofCore, R.Results[I].ProofCore);
  }
  ASSERT_EQ(Back->Families.size(), R.Families.size());
  for (size_t I = 0; I != R.Families.size(); ++I) {
    EXPECT_EQ(Back->Families[I].Vcs, R.Families[I].Vcs);
    EXPECT_EQ(Back->Families[I].Conflicts, R.Families[I].Conflicts);
    EXPECT_EQ(Back->Families[I].RetainedClauses,
              R.Families[I].RetainedClauses);
    EXPECT_EQ(Back->Families[I].DbReductions, R.Families[I].DbReductions);
    EXPECT_EQ(Back->Families[I].ReclaimedClauses,
              R.Families[I].ReclaimedClauses);
  }
  // The per-pair reuse stats round-trip field by field.
  EXPECT_FALSE(R.Pairs.empty());
  ASSERT_EQ(Back->Pairs.size(), R.Pairs.size());
  for (size_t I = 0; I != R.Pairs.size(); ++I) {
    EXPECT_EQ(Back->Pairs[I].Family, R.Pairs[I].Family);
    EXPECT_EQ(Back->Pairs[I].Op1, R.Pairs[I].Op1);
    EXPECT_EQ(Back->Pairs[I].Op2, R.Pairs[I].Op2);
    EXPECT_EQ(Back->Pairs[I].Mode, R.Pairs[I].Mode);
    EXPECT_EQ(Back->Pairs[I].Methods, R.Pairs[I].Methods);
    EXPECT_EQ(Back->Pairs[I].Vcs, R.Pairs[I].Vcs);
    EXPECT_EQ(Back->Pairs[I].Checks, R.Pairs[I].Checks);
    EXPECT_EQ(Back->Pairs[I].Conflicts, R.Pairs[I].Conflicts);
    EXPECT_EQ(Back->Pairs[I].RetainedClauses, R.Pairs[I].RetainedClauses);
    EXPECT_EQ(Back->Pairs[I].DbReductions, R.Pairs[I].DbReductions);
    EXPECT_EQ(Back->Pairs[I].ReclaimedClauses,
              R.Pairs[I].ReclaimedClauses);
    EXPECT_EQ(Back->Pairs[I].Selectors, R.Pairs[I].Selectors);
    EXPECT_EQ(Back->Pairs[I].SessionsOpened, R.Pairs[I].SessionsOpened);
    EXPECT_EQ(Back->Pairs[I].Millis, R.Pairs[I].Millis);
  }
  // The round-tripped report re-serializes byte-identically.
  EXPECT_EQ(Back->toJson().dump(2), R.toJson().dump(2));
}

TEST(DriverReport, FamilyStatsRoundTrip) {
  DriverFixture Fx;
  DriverOptions Opts;
  Opts.Engine = EngineKind::Symbolic;
  Opts.SymbolicMode = SolveMode::SharedFamily;
  Opts.Families = {"Accumulator", "Set"};
  Opts.Threads = 2;

  Report R = runFullCatalog(Fx.C, Opts);
  ASSERT_EQ(R.FamilySessions.size(), 2u);
  std::optional<Report> Back = Report::fromJson(R.toJson());
  ASSERT_TRUE(Back.has_value());
  ASSERT_EQ(Back->FamilySessions.size(), R.FamilySessions.size());
  for (size_t I = 0; I != R.FamilySessions.size(); ++I) {
    const FamilyStats &A = R.FamilySessions[I];
    const FamilyStats &B = Back->FamilySessions[I];
    EXPECT_EQ(B.Family, A.Family);
    EXPECT_EQ(B.Mode, A.Mode);
    EXPECT_EQ(B.Pairs, A.Pairs);
    EXPECT_EQ(B.Methods, A.Methods);
    EXPECT_EQ(B.Vcs, A.Vcs);
    EXPECT_EQ(B.Checks, A.Checks);
    EXPECT_EQ(B.Conflicts, A.Conflicts);
    EXPECT_EQ(B.PrefixAsserts, A.PrefixAsserts);
    EXPECT_EQ(B.PrefixReuses, A.PrefixReuses);
    EXPECT_EQ(B.PeakRetainedClauses, A.PeakRetainedClauses);
    EXPECT_EQ(B.Evictions, A.Evictions);
    EXPECT_EQ(B.EvictedClauses, A.EvictedClauses);
    EXPECT_EQ(B.DbReductions, A.DbReductions);
    EXPECT_EQ(B.ReclaimedClauses, A.ReclaimedClauses);
    EXPECT_EQ(B.Selectors, A.Selectors);
    EXPECT_EQ(B.Millis, A.Millis);
  }
  EXPECT_EQ(Back->toJson().dump(2), R.toJson().dump(2));
}

TEST(DriverReport, CatalogStatsRoundTrip) {
  DriverFixture Fx;
  DriverOptions Opts;
  Opts.Engine = EngineKind::Symbolic;
  Opts.SymbolicMode = SolveMode::SharedCatalog;
  Opts.Families = {"Accumulator", "Set"};
  Opts.Threads = 1;

  Report R = runFullCatalog(Fx.C, Opts);
  ASSERT_EQ(R.CatalogSessions.size(), 1u);
  EXPECT_EQ(R.CatalogSessions[0].FamilyNames, "Accumulator,Set");
  std::optional<Report> Back = Report::fromJson(R.toJson());
  ASSERT_TRUE(Back.has_value());
  ASSERT_EQ(Back->CatalogSessions.size(), R.CatalogSessions.size());
  for (size_t I = 0; I != R.CatalogSessions.size(); ++I) {
    const CatalogStats &A = R.CatalogSessions[I];
    const CatalogStats &B = Back->CatalogSessions[I];
    EXPECT_EQ(B.Mode, A.Mode);
    EXPECT_EQ(B.FamilyNames, A.FamilyNames);
    EXPECT_EQ(B.Families, A.Families);
    EXPECT_EQ(B.Pairs, A.Pairs);
    EXPECT_EQ(B.Methods, A.Methods);
    EXPECT_EQ(B.Vcs, A.Vcs);
    EXPECT_EQ(B.Checks, A.Checks);
    EXPECT_EQ(B.Conflicts, A.Conflicts);
    EXPECT_EQ(B.PrefixAsserts, A.PrefixAsserts);
    EXPECT_EQ(B.PrefixReuses, A.PrefixReuses);
    EXPECT_EQ(B.SubtreeRetirements, A.SubtreeRetirements);
    EXPECT_EQ(B.PairEvictions, A.PairEvictions);
    EXPECT_EQ(B.EvictedClauses, A.EvictedClauses);
    EXPECT_EQ(B.RecycledVars, A.RecycledVars);
    EXPECT_EQ(B.PeakLiveVars, A.PeakLiveVars);
    EXPECT_EQ(B.PeakLiveClauses, A.PeakLiveClauses);
    EXPECT_EQ(B.VarRequests, A.VarRequests);
    EXPECT_EQ(B.PeakRetainedClauses, A.PeakRetainedClauses);
    EXPECT_EQ(B.Selectors, A.Selectors);
    EXPECT_EQ(B.Millis, A.Millis);
  }
  EXPECT_EQ(Back->toJson().dump(2), R.toJson().dump(2));
}

TEST(DriverReport, LegacyReportsWithoutEngineFieldReadAsExhaustive) {
  // Reports written before the engine field existed must parse with the
  // exhaustive engine filled in (keys and verdict comparison depend on it).
  const char *Doc = R"({
    "tool": "semcommute-verify",
    "threads": 1,
    "wall_ms": 1.5,
    "scope": {"set_universe": 2, "map_keys": 2, "map_vals": 2,
              "seq_vals": 2, "max_seq_len": 2, "counter_range": 1},
    "families": [],
    "results": [{"family": "Set", "category": "commutativity",
                 "op1": "add_", "op2": "add_", "kind": "before",
                 "role": "soundness", "verified": true, "scenarios": 4,
                 "ms": 0.5}]
  })";
  std::optional<json::Value> V = json::Value::parse(Doc);
  ASSERT_TRUE(V.has_value());
  std::optional<Report> R = Report::fromJson(*V);
  ASSERT_TRUE(R.has_value());
  ASSERT_EQ(R->Results.size(), 1u);
  EXPECT_EQ(R->Results[0].Engine, "exhaustive");
  EXPECT_EQ(R->Results[0].key(),
            "Set/commutativity/exhaustive/add_/add_/before/soundness");
}

TEST(DriverReport, BenchBaselineIndexStatsRoundTrips) {
  // bench/run_all.sh (schema 6) embeds perf_dynamic_check's index_summary
  // metrics as an index_stats section in BENCH_semcommute.json. The section
  // must survive our JSON parse/dump unchanged — CI and regression tooling
  // read the baseline back through this parser.
  const char *Doc = R"({
    "schema": 6,
    "tool": "bench/run_all.sh",
    "index_stats": {
      "indexed_speedup_x": 25.4,
      "constant_speedup_x": 118.7,
      "interpreted_ns": 642.1,
      "indexed_ns": 25.3,
      "constant_ns": 3.1,
      "raw_op_ns": 41.8,
      "constant_fraction": 0.2882,
      "total_slots": 680,
      "programs": 484,
      "constants": 196,
      "fallbacks": 0,
      "max_regs": 19,
      "total_instructions": 2683,
      "paper_conditions": 765
    }
  })";
  std::optional<json::Value> V = json::Value::parse(Doc);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ((*V)["schema"].asInt(), 6);

  const json::Value &Idx = (*V)["index_stats"];
  ASSERT_TRUE(Idx.isObject());
  EXPECT_DOUBLE_EQ(Idx["indexed_speedup_x"].asDouble(), 25.4);
  EXPECT_DOUBLE_EQ(Idx["constant_fraction"].asDouble(), 0.2882);
  EXPECT_EQ(Idx["total_slots"].asInt(), 680);
  EXPECT_EQ(Idx["programs"].asInt(), 484);
  EXPECT_EQ(Idx["constants"].asInt(), 196);
  EXPECT_EQ(Idx["fallbacks"].asInt(), 0);
  EXPECT_EQ(Idx["paper_conditions"].asInt(), 765);

  // Compact and pretty serializations both reparse to the identical DOM
  // and re-serialize byte-identically (objects preserve member order).
  for (int Indent : {-1, 2}) {
    std::optional<json::Value> Back = json::Value::parse(V->dump(Indent));
    ASSERT_TRUE(Back.has_value());
    EXPECT_TRUE(*Back == *V);
    EXPECT_EQ(Back->dump(Indent), V->dump(Indent));
  }

  // A pre-index baseline (schema 5, no index_stats) still reads cleanly:
  // the consumer distinguishes "absent" from "null" via find().
  std::optional<json::Value> Old =
      json::Value::parse(R"({"schema": 5, "tool": "bench/run_all.sh"})");
  ASSERT_TRUE(Old.has_value());
  EXPECT_EQ(Old->find("index_stats"), nullptr);
}

TEST(DriverReport, BenchBaselineSpeculationStatsRoundTrips) {
  // bench/run_all.sh (schema 7) embeds perf_speculation's summary and grid
  // rows as a speculation_stats section in BENCH_semcommute.json. The
  // section must survive our JSON parse/dump unchanged — CI and regression
  // tooling read the baseline back through this parser.
  const char *Doc = R"({
    "schema": 7,
    "tool": "bench/run_all.sh",
    "speculation_stats": {
      "max_threads": 8,
      "thread_levels": 4,
      "gk_window": 16,
      "indexed_over_interpreted_x_high": 11.91,
      "indexed_over_interpreted_x_low": 4.28,
      "gk_ns_per_query_indexed_high": 47.0,
      "gk_ns_per_query_interpreted_high": 736.4,
      "scaling_1_to_max_low": 0.692,
      "scaling_1_to_max_high": 0.989,
      "ops_per_sec_1t_low": 1723096,
      "ops_per_sec_max_low": 1192889,
      "ops_per_sec_1t_high": 2340830,
      "ops_per_sec_max_high": 2314804,
      "sampled_const_hit_rate": 0.0156,
      "storm_undone_inverses": 1641,
      "storm_undone_snapshot": 1655,
      "all_completed": true,
      "grid": [
        {"mode": "replay", "threads": 1, "shards": 2, "contention": "high",
         "keys": 65536, "policy": "inverses", "path": "indexed",
         "abort_every": 0, "txns": 125, "ops": 12000, "wall_ms": 210.7,
         "ops_per_sec": 56963, "ops_executed": 15504, "commits": 125,
         "aborts": 43, "wounds": 43, "injected_aborts": 0,
         "abort_rate": 0.344, "undone_ops": 1843, "snapshots": 0,
         "gk_checks": 2731881, "gk_pass_rate": 0.9998,
         "gk_ns_per_query": 47.0, "checker_program_runs": 2650124,
         "checker_fallbacks": 0, "sampled_const_hit_rate": 0.0156,
         "completed": true},
        {"mode": "parallel", "threads": 8, "shards": 4,
         "contention": "high", "keys": 48, "policy": "snapshot",
         "path": "indexed", "abort_every": 1024, "txns": 313,
         "ops": 30048, "wall_ms": 15.6, "ops_per_sec": 1923412,
         "ops_executed": 31904, "commits": 313, "aborts": 31,
         "wounds": 2, "injected_aborts": 29, "abort_rate": 0.099,
         "undone_ops": 1849, "snapshots": 950, "gk_checks": 159,
         "gk_pass_rate": 0.56, "gk_ns_per_query": 48126.0,
         "checker_program_runs": 69, "checker_fallbacks": 0,
         "sampled_const_hit_rate": 0.0, "completed": true}
      ]
    }
  })";
  std::optional<json::Value> V = json::Value::parse(Doc);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ((*V)["schema"].asInt(), 7);

  const json::Value &Spec = (*V)["speculation_stats"];
  ASSERT_TRUE(Spec.isObject());
  EXPECT_DOUBLE_EQ(Spec["indexed_over_interpreted_x_high"].asDouble(), 11.91);
  EXPECT_DOUBLE_EQ(Spec["gk_ns_per_query_interpreted_high"].asDouble(),
                   736.4);
  EXPECT_EQ(Spec["max_threads"].asInt(), 8);
  EXPECT_EQ(Spec["gk_window"].asInt(), 16);
  EXPECT_EQ(Spec["storm_undone_inverses"].asInt(), 1641);
  EXPECT_TRUE(Spec["all_completed"].asBool());

  const json::Value &Grid = Spec["grid"];
  ASSERT_TRUE(Grid.isArray());
  ASSERT_EQ(Grid.size(), 2u);
  EXPECT_EQ(Grid.at(0)["mode"].asString(), "replay");
  EXPECT_EQ(Grid.at(0)["path"].asString(), "indexed");
  EXPECT_EQ(Grid.at(0)["gk_checks"].asInt(), 2731881);
  EXPECT_EQ(Grid.at(1)["mode"].asString(), "parallel");
  EXPECT_EQ(Grid.at(1)["policy"].asString(), "snapshot");
  EXPECT_EQ(Grid.at(1)["snapshots"].asInt(), 950);
  EXPECT_DOUBLE_EQ(Grid.at(1)["abort_rate"].asDouble(), 0.099);

  // Compact and pretty serializations both reparse to the identical DOM
  // and re-serialize byte-identically (objects preserve member order).
  for (int Indent : {-1, 2}) {
    std::optional<json::Value> Back = json::Value::parse(V->dump(Indent));
    ASSERT_TRUE(Back.has_value());
    EXPECT_TRUE(*Back == *V);
    EXPECT_EQ(Back->dump(Indent), V->dump(Indent));
  }

  // A pre-executor baseline (schema 6, no speculation_stats) still reads
  // cleanly: the consumer distinguishes "absent" from "null" via find().
  std::optional<json::Value> Old =
      json::Value::parse(R"({"schema": 6, "tool": "bench/run_all.sh"})");
  ASSERT_TRUE(Old.has_value());
  EXPECT_EQ(Old->find("speculation_stats"), nullptr);
}

TEST(DriverReport, SameVerdictsDetectsDifferences) {
  DriverFixture Fx;
  DriverOptions Opts;
  Opts.Bounds = smallScope();
  Opts.Families = {"Accumulator"};

  Report A = runFullCatalog(Fx.C, Opts);
  Report B = A;
  EXPECT_TRUE(A.sameVerdicts(B));

  B.Results[0].Verified = !B.Results[0].Verified;
  EXPECT_FALSE(A.sameVerdicts(B));

  Report C = A;
  C.Results.pop_back();
  EXPECT_FALSE(A.sameVerdicts(C));
}

TEST(DriverReport, UnknownFamilyYieldsErrorReportNotSuccess) {
  DriverFixture Fx;
  DriverOptions Opts;
  Opts.Families = {"Sets"}; // typo: must not read as "verified everything"
  Report R = runFullCatalog(Fx.C, Opts);
  EXPECT_FALSE(R.Error.empty());
  EXPECT_TRUE(R.Results.empty());
  EXPECT_GT(R.failures(), 0u);

  // The error survives the JSON round-trip.
  std::optional<Report> Back = Report::fromJson(R.toJson());
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->Error, R.Error);
  EXPECT_GT(Back->failures(), 0u);
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  std::atomic<int> Counter{0};
  {
    ThreadPool Pool(4);
    EXPECT_EQ(Pool.threadCount(), 4u);
    for (int I = 0; I != 1000; ++I)
      Pool.submit([&Counter] { Counter.fetch_add(1); });
    Pool.wait();
    EXPECT_EQ(Counter.load(), 1000);
    // The pool is reusable after wait().
    for (int I = 0; I != 100; ++I)
      Pool.submit([&Counter] { Counter.fetch_add(1); });
    Pool.wait();
  }
  EXPECT_EQ(Counter.load(), 1100);
}

TEST(ThreadPool, TasksMaySubmitTasks) {
  std::atomic<int> Counter{0};
  ThreadPool Pool(3);
  for (int I = 0; I != 10; ++I)
    Pool.submit([&Pool, &Counter] {
      for (int J = 0; J != 10; ++J)
        Pool.submit([&Counter] { Counter.fetch_add(1); });
    });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversTheRange) {
  std::vector<std::atomic<int>> Hits(257);
  ThreadPool::parallelFor(Hits.size(), 4,
                          [&Hits](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I != Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 1) << I;
}

} // namespace
