//===- tests/LintTest.cpp - semcommute-lint static auditor tests ----------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins down the static-audit satellite: the shipped catalog must lint
/// clean with full coverage counters, each seeded violation must yield
/// exactly one finding with its documented code, and the audit-stream
/// analyzer's individual rules (ancestor-chain references, selector
/// reuse-after-retire, use-after-retire) must fire on hand-built streams.
///
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"
#include "logic/ExprFactory.h"
#include "smt/SessionAudit.h"

#include <gtest/gtest.h>

using namespace semcomm;
using namespace semcomm::lint;

namespace {

/// The codes of \p Findings, in order.
std::vector<std::string> codesOf(const std::vector<Finding> &Findings) {
  std::vector<std::string> Out;
  for (const Finding &F : Findings)
    Out.push_back(F.Code);
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Whole-catalog lint
//===----------------------------------------------------------------------===//

TEST(LintTest, ShippedCatalogIsClean) {
  ExprFactory F;
  LintResult R = lintCatalog(F);
  EXPECT_TRUE(R.Findings.empty());
  for (const Finding &Fi : R.Findings)
    ADD_FAILURE() << Fi.Code << " " << Fi.Where << ": " << Fi.Message;
  // Coverage counters prove the lint looked at the whole catalog, not an
  // empty slice: 170 distinct entries, 1020 generated method plans.
  EXPECT_EQ(R.EntriesChecked, 170u);
  EXPECT_EQ(R.MethodsChecked, 1020u);
  EXPECT_GT(R.FormulasChecked, 0u);
  EXPECT_GT(R.HoistedChecked, 0u);
  EXPECT_GT(R.AuditEvents, 0u);
}

TEST(LintTest, FamilyRestrictionStillClean) {
  ExprFactory F;
  LintResult R = lintCatalog(F, /*SeqLenBound=*/2, {"Accumulator", "Set"});
  EXPECT_TRUE(R.Findings.empty());
  EXPECT_GT(R.EntriesChecked, 0u);
  EXPECT_LT(R.EntriesChecked, 170u);
}

//===----------------------------------------------------------------------===//
// Seeded violations: one finding each, with the documented code
//===----------------------------------------------------------------------===//

namespace {

const char *expectedCode(SeededViolation V) {
  switch (V) {
  case SeededViolation::IllSorted:
    return "SORT01";
  case SeededViolation::MisHoisted:
    return "HOIST01";
  case SeededViolation::CrossSiblingReference:
    return "SCOPE01";
  case SeededViolation::ReusedSelector:
    return "SCOPE02";
  case SeededViolation::UseAfterRetire:
    return "SCOPE03";
  case SeededViolation::DuplicateLabel:
    return "LABEL01";
  }
  return "?";
}

} // namespace

TEST(LintTest, EachSeededViolationYieldsExactlyOneFinding) {
  for (SeededViolation V : allSeededViolations()) {
    ExprFactory F;
    std::vector<Finding> Findings = seededViolationFindings(F, V);
    ASSERT_EQ(Findings.size(), 1u)
        << seededViolationName(V) << " produced " << Findings.size()
        << " findings";
    EXPECT_EQ(Findings[0].Code, expectedCode(V)) << seededViolationName(V);
    EXPECT_FALSE(Findings[0].Where.empty());
    EXPECT_FALSE(Findings[0].Message.empty());
  }
}

TEST(LintTest, SeededViolationNamesRoundtrip) {
  for (SeededViolation V : allSeededViolations()) {
    SeededViolation Parsed;
    ASSERT_TRUE(parseSeededViolation(seededViolationName(V), Parsed));
    EXPECT_EQ(Parsed, V);
  }
  SeededViolation Dummy;
  EXPECT_FALSE(parseSeededViolation("no-such-violation", Dummy));
}

//===----------------------------------------------------------------------===//
// Audit-stream analyzer rules, on hand-built streams
//===----------------------------------------------------------------------===//

TEST(LintTest, AncestorChainReferenceIsLegal) {
  audit::Log L;
  L.pushLayer(1, 0); // Layer 1 under the root layer 0.
  L.pushLayer(2, 1);
  L.define(1);
  L.reference(1, 2); // Child looks up the parent's definition: fine.
  L.reference(0, 2); // Root is on every chain.
  EXPECT_TRUE(checkAuditLog(L).empty());
}

TEST(LintTest, SiblingReferenceIsScope01) {
  audit::Log L;
  L.pushLayer(1, 0);
  L.pushLayer(2, 0); // Sibling of 1, not an ancestor.
  L.define(1);
  L.reference(1, 2);
  std::vector<Finding> F = checkAuditLog(L);
  ASSERT_EQ(F.size(), 1u);
  EXPECT_EQ(F[0].Code, "SCOPE01");
}

TEST(LintTest, SelectorReuseIsScope02) {
  audit::Log L;
  L.openScope("sel:pair");
  L.retire("sel:pair");
  L.openScope("sel:pair"); // Retired selectors never come back.
  std::vector<Finding> F = checkAuditLog(L);
  ASSERT_EQ(codesOf(F), std::vector<std::string>{"SCOPE02"});
}

TEST(LintTest, UseAfterRetireIsScope03) {
  audit::Log L;
  L.openScope("sel:a");
  L.openScope("sel:b");
  L.retire("sel:a");
  L.assertInScope("sel:a");  // Assert into a retired scope.
  L.check({"sel:a", "sel:b"}); // Check activating a retired scope.
  std::vector<Finding> F = checkAuditLog(L);
  ASSERT_EQ(F.size(), 2u);
  EXPECT_EQ(F[0].Code, "SCOPE03");
  EXPECT_EQ(F[1].Code, "SCOPE03");
}

TEST(LintTest, CleanScriptHasNoFindings) {
  audit::Log L;
  L.openScope("sel:fam");
  L.openScope("sel:pair");
  L.assertInScope("sel:pair");
  L.check({"sel:fam", "sel:pair"});
  L.retire("sel:pair");
  L.openScope("sel:pair@2"); // Epoch-suffixed re-open: a fresh name.
  L.check({"sel:fam", "sel:pair@2"});
  EXPECT_TRUE(checkAuditLog(L).empty());
}

//===----------------------------------------------------------------------===//
// Formula-level checks
//===----------------------------------------------------------------------===//

TEST(LintTest, VocabularyCoherenceFlagsCrossSortName) {
  ExprFactory F;
  ExprRef AsInt = F.var("v1", Sort::Int);
  ExprRef AsObj = F.var("v1", Sort::Obj);
  std::vector<Finding> Out = checkVocabularyCoherence(
      {F.eq(AsInt, F.intConst(0)), F.eq(AsObj, AsObj)}, "fixture");
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].Code, "SORT01");
}

TEST(LintTest, HoistRuleAllowsDisjointAndOwnedFormulas) {
  ExprFactory F;
  ExprRef X = F.var("x", Sort::Int);
  ExprRef Y = F.var("y", Sort::Int);
  ExprRef HoistX = F.eq(X, F.intConst(1));
  ExprRef HoistY = F.eq(Y, F.intConst(2));

  HoistEntry Owns;   // Mentions x and asserts the x-formula itself.
  Owns.Name = "owns";
  Owns.Common = {HoistX};
  collectVars(HoistX, Owns.Vars);

  HoistEntry Disjoint; // Mentions only y: the x-formula is vacuous for it.
  Disjoint.Name = "disjoint";
  collectVars(HoistY, Disjoint.Vars);

  EXPECT_TRUE(checkHoistRule({HoistX}, {Owns, Disjoint}).empty());

  // A third entry mentions x but does not assert the x-formula: violation.
  HoistEntry Victim;
  Victim.Name = "victim";
  collectVars(HoistX, Victim.Vars);
  std::vector<Finding> Out = checkHoistRule({HoistX}, {Owns, Victim});
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].Code, "HOIST01");
}

TEST(LintTest, ChecksRegistryCoversAllCodes) {
  std::set<std::string> Codes;
  for (const CheckInfo &C : checks())
    Codes.insert(C.Code);
  for (const char *Expected :
       {"SORT01", "HOIST01", "SCOPE01", "SCOPE02", "SCOPE03", "LABEL01"})
    EXPECT_TRUE(Codes.count(Expected)) << Expected;
}
