//===- examples/lattice_explorer.cpp - Exploring dropped-clause conditions ---===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// A deployment that checks conditions dynamically can trade completeness
// for evaluation cost by dropping disjuncts (§5.1, Ch. 6). This example
// walks the lattice of the (get; put) map pair, shows which points stay
// sound, and demonstrates the practical consequence: the conservative
// s1-free condition the runtime's gatekeeper uses is one of these points.
//
//===----------------------------------------------------------------------===//

#include "runtime/DynamicChecker.h"
#include "runtime/Lattice.h"
#include "logic/Printer.h"

#include <cstdio>

using namespace semcomm;

int main() {
  ExprFactory F;
  Catalog C(F);
  ExhaustiveEngine Engine;

  const Family &Map = mapFamily();
  std::printf("the commutativity lattice of r1 = get(k1) ; put(k2, v2)\n\n");
  ExprRef Full = C.entry(Map, "get", "put_").Between;
  std::printf("full between condition: %s\n\n", printAbstract(Full).c_str());

  for (const LatticePoint &P :
       buildLattice(F, C, Engine, Map, "get", "put_")) {
    std::printf("  %-34s sound=%-3s complete=%-3s accepts %.0f%% of "
                "scenarios\n",
                printAbstract(P.Condition).c_str(), P.Sound ? "yes" : "NO",
                P.Complete ? "yes" : "no", 100.0 * P.AcceptRate);
  }

  // The gatekeeper's conservative point: clauses mentioning s1 dropped.
  DynamicChecker Checker(F, C);
  ExprRef Conservative = Checker.conservativeBetween(Map, "get", "put_");
  std::printf("\ngatekeeper's s1-free point: %s\n",
              printAbstract(Conservative).c_str());
  bool Sound = Engine
                   .verifyCondition(Map, "get", "put_",
                                    ConditionKind::Between,
                                    MethodRole::Soundness, Conservative)
                   .Verified;
  bool Complete = Engine
                      .verifyCondition(Map, "get", "put_",
                                       ConditionKind::Between,
                                       MethodRole::Completeness,
                                       Conservative)
                      .Verified;
  std::printf("  sound=%s complete=%s accepts %.0f%% of scenarios\n",
              Sound ? "yes" : "NO", Complete ? "yes" : "no",
              100.0 * acceptanceRate(Map, "get", "put_", Conservative));
  std::printf("\nDropping clauses never costs soundness — only exposed "
              "concurrency (§5.1).\n");
  return Sound ? 0 : 1;
}
