//===- examples/synthesize_conditions.cpp - Learning conditions ---------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// The paper's conditions are written by the data structure developer and
// then verified (§1.5). This example closes that loop: it *synthesizes*
// the between condition of every Set pair from the operation semantics
// alone (bucketing scenarios by atom valuations), then shows that each
// learned condition verifies sound and complete — i.e. agrees with the
// shipped hand-written catalog everywhere.
//
//===----------------------------------------------------------------------===//

#include "commute/ExhaustiveEngine.h"
#include "commute/Synthesizer.h"
#include "logic/Printer.h"

#include <cstdio>

using namespace semcomm;

int main() {
  ExprFactory F;
  Catalog C(F);
  ExhaustiveEngine Engine;
  const Family &Fam = setFamily();

  std::printf("Synthesizing all %zu between conditions of the Set "
              "interface from scratch\n\n",
              C.entries(Fam).size());
  int Failures = 0;
  for (const ConditionEntry &E : C.entries(Fam)) {
    SynthesisResult R = synthesizeCondition(
        F, Fam, E.op1().Name, E.op2().Name,
        defaultAtoms(F, Fam, E.op1().Name, E.op2().Name));
    if (!R.Expressible) {
      std::printf("%-24s INEXPRESSIBLE: %s\n", E.pairName().c_str(),
                  R.AmbiguityNote.c_str());
      ++Failures;
      continue;
    }
    bool Sound = Engine
                     .verifyCondition(Fam, E.op1().Name, E.op2().Name,
                                      ConditionKind::Between,
                                      MethodRole::Soundness, R.Condition)
                     .Verified;
    bool Complete =
        Engine
            .verifyCondition(Fam, E.op1().Name, E.op2().Name,
                             ConditionKind::Between,
                             MethodRole::Completeness, R.Condition)
            .Verified;
    Failures += !(Sound && Complete);
    std::printf("%-24s learned:  %s\n", E.pairName().c_str(),
                printAbstract(R.Condition).c_str());
    std::printf("%-24s catalog:  %s   [%s]\n", "",
                printAbstract(E.Between).c_str(),
                Sound && Complete ? "equivalent: sound+complete"
                                  : "MISMATCH");
  }
  std::printf("\n%d failures. A sound-and-complete condition is the unique "
              "commutativity\nboundary, so \"learned verifies "
              "sound+complete\" means learned == catalog\neverywhere.\n",
              Failures);
  return Failures != 0;
}
