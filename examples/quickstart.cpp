//===- examples/quickstart.cpp - Five-minute tour ----------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// The five-minute tour of the public API, following the paper's Ch. 2
// example: write a commutativity condition for HashSet's contains/add
// pair, generate its two testing methods, verify soundness and
// completeness with both engines, verify the inverse of add, and finally
// use the condition dynamically against a live HashSet.
//
//===----------------------------------------------------------------------===//

#include "commute/ExhaustiveEngine.h"
#include "commute/SymbolicEngine.h"
#include "impl/HashSet.h"
#include "inverse/InverseVerifier.h"
#include "jahobgen/JahobPrinter.h"
#include "logic/Dsl.h"
#include "logic/Printer.h"
#include "runtime/DynamicChecker.h"

#include <cstdio>

using namespace semcomm;

int main() {
  // 1. Every expression lives in a factory (the Z3-context model).
  ExprFactory F;
  Vocab D(F);

  // 2. State the paper's Ch. 2.3 condition yourself: contains(v1) and
  //    add(v2) commute iff v1 differs from v2 or v1 is already present.
  ExprRef MyCondition = D.disj({D.ne(D.V1, D.V2), D.in(D.V1, D.S1)});
  std::printf("condition (abstract): %s\n", printAbstract(MyCondition).c_str());
  std::printf("condition (concrete): %s\n\n",
              printConcrete(MyCondition).c_str());

  // 3. Verify it sound and complete as a before condition of the pair.
  ExhaustiveEngine Engine;
  const Family &Set = setFamily();
  bool Sound = Engine
                   .verifyCondition(Set, "contains", "add_",
                                    ConditionKind::Before,
                                    MethodRole::Soundness, MyCondition)
                   .Verified;
  bool Complete = Engine
                      .verifyCondition(Set, "contains", "add_",
                                       ConditionKind::Before,
                                       MethodRole::Completeness, MyCondition)
                      .Verified;
  std::printf("hand-written condition: sound=%s complete=%s\n\n",
              Sound ? "yes" : "no", Complete ? "yes" : "no");

  // 4. Or use the shipped catalog: all 765 conditions, pre-verified. Here:
  //    the generated Fig. 2-2 testing methods for the between condition.
  Catalog C(F);
  SymbolicEngine Symbolic(F);
  for (const TestingMethod &M : generateTestingMethods(C, Set)) {
    if (M.Entry->op1().Name != "contains" || M.Entry->op2().Name != "add_" ||
        M.Kind != ConditionKind::Between)
      continue;
    std::printf("%s => exhaustive:%s symbolic:%s\n", M.name().c_str(),
                Engine.verify(M).Verified ? "verified" : "FAILED",
                Symbolic.verify(M).Verified ? "verified" : "FAILED");
  }

  // 5. Inverse operations (Table 5.10): add's inverse restores the
  //    abstract set.
  InverseSpec AddInverse = buildInverseSpecs()[1];
  std::printf("\ninverse of %s: %s => %s\n", AddInverse.ForwardText.c_str(),
              AddInverse.InverseText.c_str(),
              verifyInverse(AddInverse).Verified ? "verified" : "FAILED");

  // 6. Use the condition at run time against a live linked structure.
  HashSet S;
  S.add(Value::obj(1));
  DynamicChecker Checker(F, C);
  bool CanInterleave =
      Checker.mayCommute(S, "contains", {Value::obj(1)},
                         Value::boolean(true), "add", {Value::obj(2)});
  std::printf("\nmay add(o2) interleave with a pending contains(o1)? %s\n",
              CanInterleave ? "yes" : "no");
  return (Sound && Complete) ? 0 : 1;
}
