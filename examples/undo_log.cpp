//===- examples/undo_log.cpp - Inverse-powered undo ---------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// §1.3 notes that undoing executed operations "occurs pervasively
// throughout computer systems, from classical database transaction
// processing systems to systems that recover from security breaches".
// This example builds a multi-level undo stack for a HashTable-backed
// key-value store out of the verified Table 5.10 inverses: each undo entry
// stores only the operation's arguments and recorded return value — no
// state snapshot — and popping it restores the previous abstract state.
//
//===----------------------------------------------------------------------===//

#include "impl/HashTable.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace semcomm;

namespace {

/// A key-value store with unbounded undo, built on the verified inverses:
///   r = put(k, v)   undone by   if r != null then put(k, r) else remove(k)
///   r = remove(k)   undone by   if r != null then put(k, r)
class UndoableStore {
public:
  void put(int64_t K, int64_t V) {
    Value Prev = Table.put(Value::obj(K), Value::obj(V));
    Log.push_back({OpKind::Put, Value::obj(K), Prev});
  }

  void remove(int64_t K) {
    Value Prev = Table.remove(Value::obj(K));
    Log.push_back({OpKind::Remove, Value::obj(K), Prev});
  }

  bool undo() {
    if (Log.empty())
      return false;
    Entry E = Log.back();
    Log.pop_back();
    // Table 5.10, rows put/remove.
    if (E.Kind == OpKind::Put) {
      if (!E.Prev.isNull())
        Table.put(E.Key, E.Prev);
      else
        Table.remove(E.Key);
    } else if (!E.Prev.isNull()) {
      Table.put(E.Key, E.Prev);
    }
    return true;
  }

  std::string str() const { return Table.abstraction().str(); }
  const HashTable &table() const { return Table; }

private:
  enum class OpKind { Put, Remove };
  struct Entry {
    OpKind Kind;
    Value Key;
    Value Prev;
  };
  HashTable Table;
  std::vector<Entry> Log;
};

} // namespace

int main() {
  UndoableStore Store;
  std::vector<std::string> History;

  auto Snapshot = [&] { History.push_back(Store.str()); };

  Snapshot(); // {}
  Store.put(1, 100);
  Snapshot();
  Store.put(2, 200);
  Snapshot();
  Store.put(1, 101); // overwrite
  Snapshot();
  Store.remove(2);
  Snapshot();
  Store.remove(7); // no-op remove: inverse must also be a no-op
  Snapshot();

  std::printf("forward history:\n");
  for (const std::string &S : History)
    std::printf("  %s\n", S.c_str());

  std::printf("undoing everything:\n");
  int Level = static_cast<int>(History.size()) - 1;
  bool AllMatch = true;
  while (Store.undo()) {
    --Level;
    bool Match = Store.str() == History[static_cast<size_t>(Level)];
    AllMatch &= Match;
    std::printf("  %s %s\n", Store.str().c_str(),
                Match ? "(matches history)" : "(MISMATCH!)");
  }
  std::printf("store empty again: %s; every undo level matched: %s\n",
              Store.table().size() == 0 ? "yes" : "no",
              AllMatch ? "yes" : "no");
  return (AllMatch && Store.table().size() == 0) ? 0 : 1;
}
