//===- examples/speculative_worklist.cpp - Irregular parallelism demo --------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// The paper's motivating usage (§1, [29,30,31]): irregular computations
// speculatively execute worklist items as transactions over shared linked
// structures, using verified commutativity conditions to detect conflicts
// and verified inverses to roll back. This example colors a small graph:
// each transaction claims a vertex, reads its neighbours' colors from a
// shared HashTable, and writes its own — reads of distinct keys and writes
// of distinct vertices commute, which is what makes the speculation
// profitable.
//
//===----------------------------------------------------------------------===//

#include "runtime/SpeculativeExecutor.h"

#include <cstdio>
#include <vector>

using namespace semcomm;

static StructureFactory factoryFor(const std::string &Name) {
  for (const StructureFactory &F : allStructureFactories())
    if (F.Name == Name)
      return F;
  std::abort();
}

int main() {
  // A ring of 12 vertices: vertex i neighbours i-1 and i+1.
  const int NumVertices = 12;
  auto Neighbour = [](int V, int D) {
    return (V + D + NumVertices) % NumVertices;
  };

  // Greedy coloring: each transaction reads both neighbours, then writes
  // the smallest color distinct from what it read. With sequential
  // round-robin interleaving the reads may race with neighbours' writes;
  // the gatekeeper orders exactly the conflicting ones.
  std::vector<Transaction> Txns;
  for (int V = 0; V < NumVertices; ++V) {
    Transaction T;
    T.push_back({"get", {Value::obj(Neighbour(V, -1))}});
    T.push_back({"get", {Value::obj(Neighbour(V, +1))}});
    // Color choice approximated statically (ring => 2-3 colors by parity).
    int Color = (V % 2) + 1;
    if (V == NumVertices - 1)
      Color = 3; // odd ring closure
    T.push_back({"put", {Value::obj(V), Value::obj(Color)}});
    Txns.push_back(T);
  }

  ExprFactory F;
  Catalog C(F);
  // Replay mode with a fixed seed: the example's interleaving — several
  // transactions live at once, steps shuffled — and therefore its output
  // are deterministic, whatever machine runs it.
  ExecutorConfig Cfg;
  Cfg.Threads = 4;
  Cfg.Mode = SchedulerMode::Replay;
  Cfg.ReplaySeed = 7;
  Cfg.Policy = RollbackPolicy::Inverses;
  SpeculativeExecutor Ex(F, C, factoryFor("HashTable"), Cfg);
  ExecutorStats Stats = Ex.run(Txns);

  std::printf("speculative graph coloring on a %d-ring\n", NumVertices);
  std::printf("  commits=%llu aborts=%llu ops=%llu undone=%llu "
              "gatekeeper pass rate=%.0f%%\n",
              (unsigned long long)Stats.Commits,
              (unsigned long long)Stats.aborts(),
              (unsigned long long)Stats.OpsExecuted,
              (unsigned long long)Stats.OpsUndone,
              Stats.GatekeeperChecks
                  ? 100.0 * Stats.GatekeeperPasses / Stats.GatekeeperChecks
                  : 0.0);

  // Validate the coloring.
  int Conflicts = 0;
  for (int V = 0; V < NumVertices; ++V) {
    Value Mine = Ex.shard(0).mapGet(Value::obj(V));
    Value Next = Ex.shard(0).mapGet(Value::obj(Neighbour(V, 1)));
    if (Mine.isNull() || Mine == Next)
      ++Conflicts;
  }
  std::printf("  coloring valid: %s (%d conflicting edges)\n",
              Conflicts == 0 ? "yes" : "NO", Conflicts);

  // The same workload without commutativity: every concurrent same-shard
  // pair conflicts, so the schedule degenerates to waiting — strictly
  // more wait rounds, never fewer.
  ExecutorConfig NaiveCfg = Cfg;
  NaiveCfg.UseCommutativity = false;
  SpeculativeExecutor Naive(F, C, factoryFor("HashTable"), NaiveCfg);
  ExecutorStats NaiveStats = Naive.run(Txns);
  std::printf("  without the gatekeeper: wait rounds=%llu (vs %llu with)\n",
              (unsigned long long)NaiveStats.WaitRounds,
              (unsigned long long)Stats.WaitRounds);
  return Conflicts == 0 ? 0 : 1;
}
