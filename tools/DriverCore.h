//===- tools/DriverCore.h - Full-catalog verification driver ----*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine behind the semcommute-verify CLI: enumerates the complete
/// commutativity-condition catalog (every ordered pair x before/between/
/// after x soundness/completeness) and the inverse catalog (Table 5.10),
/// dispatches the independent verification jobs across a work-stealing
/// ThreadPool, and aggregates per-family timings plus a JSON report.
///
/// Symbolic commutativity jobs are planned *per pair*: the six testing
/// methods of one (family, op-pair) run as one unit on one worker so they
/// can share a warm solver session (SolveMode::SharedPair); the report
/// gains per-pair reuse statistics. The job list and the result order are
/// fully determined by the options — never by thread scheduling — so an
/// N-thread run and a 1-thread run produce byte-identical verdict
/// sequences (DriverTest pins this down).
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_TOOLS_DRIVERCORE_H
#define SEMCOMM_TOOLS_DRIVERCORE_H

#include "commute/Condition.h"
#include "commute/SessionPool.h"
#include "support/Json.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace semcomm {
namespace driver {

/// Which verification engine(s) discharge the catalog jobs. Both the
/// commutativity catalog and the inverse catalog (Table 5.10) run on the
/// selected engine(s); "both" cross-checks them against each other.
enum class EngineKind : uint8_t { Exhaustive, Symbolic, Both };

const char *engineKindName(EngineKind E);

/// What to verify and how wide to fan out.
struct DriverOptions {
  /// Family names to include; empty means all four.
  std::vector<std::string> Families;
  /// Worker threads for the verification fan-out.
  unsigned Threads = 1;
  /// Include the commutativity-condition catalog.
  bool Commutativity = true;
  /// Include the inverse-operation catalog (Table 5.10).
  bool Inverses = true;
  /// Engine selection for the catalog jobs.
  EngineKind Engine = EngineKind::Exhaustive;
  /// Enumeration bounds handed to the exhaustive engine.
  Scope Bounds;
  /// ArrayList case-split bound handed to the symbolic engine.
  int SymbolicSeqLenBound = 3;
  /// Per-VC CDCL conflict budget for the symbolic engine.
  int64_t SymbolicConflictBudget = 200000;
  /// Session strategy for the symbolic engine: shared-pair (default),
  /// shared-family (one warm solver per family, with scoped eviction),
  /// shared-catalog (one warm solver for the whole catalog at one thread,
  /// family-sharded catalog sessions at more threads; selector-tree
  /// scopes with subtree retirement and variable recycling), or the
  /// per-method / oneshot comparison baselines.
  SolveMode SymbolicMode = SolveMode::SharedPair;
  /// Clause-GC budget: live learned clauses at which a warm session's
  /// first database reduction fires (--gc-budget; 0 keeps the solver
  /// default, which bench/perf_engine_scaling's sweep picked from data).
  int64_t GcBudget = 0;
  /// Certified verdicts (--certify): symbolic sessions log DRAT-style
  /// proof traces, the independent RUP checker replays each trace
  /// in-process when its session closes, and every job row records
  /// proof_queries / proof_clauses / proof_checked. Symbolic engine only
  /// (the CLI rejects --certify with --engine exhaustive).
  bool Certify = false;
  /// Bridge compaction (--compact-bridges): shared-catalog sessions
  /// reference-count theory atoms by live scopes and compact bridge
  /// clauses (and their Tseitin variables) out of the clause database
  /// once every owning scope retires. Symbolic shared-catalog runs only
  /// (the CLI rejects it elsewhere); the long-lived path is
  /// semcommute-serve, where compaction defaults on.
  bool CompactBridges = false;
};

/// One verification job and (after running) its outcome. Category is
/// "commutativity" (Op1/Op2/Kind/Role set) or "inverse" (Op1 = forward
/// operation, the rest empty).
struct JobRecord {
  std::string Family;
  std::string Category;
  std::string Engine; ///< "exhaustive" or "symbolic".
  std::string Op1, Op2;
  std::string Kind;
  std::string Role;
  bool Verified = false;
  uint64_t Scenarios = 0;
  double Millis = 0;
  // Solver statistics (symbolic jobs; zero on the exhaustive path).
  uint64_t Vcs = 0;             ///< VC instances discharged.
  int64_t Conflicts = 0;        ///< Total CDCL conflicts.
  int64_t MaxVcConflicts = 0;   ///< Largest single-VC conflict count.
  uint64_t RetainedClauses = 0; ///< Warm-session clauses reused across VCs.
  uint64_t DbReductions = 0;    ///< Clause-GC runs during the job.
  uint64_t ReclaimedClauses = 0; ///< Clauses the GC reclaimed.
  /// Semicolon-joined labels of the assumptions the proofs actually used
  /// (unsat cores: selector/split literals) — the raw material of
  /// §5.2.1-style hint minimization.
  std::string ProofCore;
  /// Certification fields (zero/false unless the run certified): Unsat
  /// verdicts of this job that carried certificates, the certifying
  /// session's checker-database high-water mark, and whether the
  /// independent checker confirmed every one of this job's certificates.
  uint64_t ProofQueries = 0;
  uint64_t ProofClauses = 0;
  bool ProofChecked = false;
  std::string Note; ///< Counterexample or failure note when !Verified.

  /// Stable identity of the job (everything except the outcome).
  std::string key() const {
    return Family + "/" + Category + "/" + Engine + "/" + Op1 + "/" + Op2 +
           "/" + Kind + "/" + Role;
  }
};

/// Per-family aggregation for the timing table.
struct FamilySummary {
  std::string Family;
  unsigned Jobs = 0;
  unsigned Failures = 0;
  /// Conditions counted the paper's way: per implementing structure
  /// (sums to 765 across the four families).
  unsigned PaperConditions = 0;
  /// Sum of per-job times (approximates CPU time across workers).
  double JobMillis = 0;
  uint64_t Scenarios = 0;
  /// Symbolic-path aggregates (zero in exhaustive-only runs). Conflicts,
  /// reductions, and reclaim counts are sums; RetainedClauses is the peak
  /// across the family's jobs — the number clause-DB reduction is meant to
  /// bound.
  uint64_t Vcs = 0;
  int64_t Conflicts = 0;
  uint64_t RetainedClauses = 0;
  uint64_t DbReductions = 0;
  uint64_t ReclaimedClauses = 0;
};

/// Reuse statistics of one shared pair session (symbolic commutativity
/// jobs only; one row per (family, op-pair) in job-list order).
struct PairStats {
  std::string Family;
  std::string Op1, Op2;
  std::string Mode; ///< solveModeName of the run.
  unsigned Methods = 0;
  uint64_t Vcs = 0;
  uint64_t Checks = 0;
  int64_t Conflicts = 0;
  uint64_t RetainedClauses = 0;
  uint64_t DbReductions = 0;
  uint64_t ReclaimedClauses = 0;
  unsigned Selectors = 0;
  uint64_t SessionsOpened = 0;
  double Millis = 0;
};

/// Reuse and eviction statistics of one family-level session (symbolic
/// commutativity jobs under SolveMode::SharedFamily; one row per family).
struct FamilyStats {
  std::string Family;
  std::string Mode; ///< solveModeName of the run.
  unsigned Pairs = 0;
  unsigned Methods = 0;
  uint64_t Vcs = 0;
  uint64_t Checks = 0;
  int64_t Conflicts = 0;
  /// Common-prefix assertions issued vs. skipped because the formula was
  /// already in the family base or the pair scope (the amortization the
  /// family tier buys).
  uint64_t PrefixAsserts = 0;
  uint64_t PrefixReuses = 0;
  /// High-water mark of retained clauses across the family's checks — the
  /// number scoped eviction bounds.
  uint64_t PeakRetainedClauses = 0;
  uint64_t Evictions = 0; ///< Pair scopes retired.
  uint64_t EvictedClauses = 0;
  uint64_t DbReductions = 0;
  uint64_t ReclaimedClauses = 0;
  unsigned Selectors = 0; ///< Pair + method selectors registered.
  double Millis = 0;
};

/// Reuse, retirement, and recycling statistics of one catalog-level
/// session (symbolic commutativity jobs under SolveMode::SharedCatalog;
/// one row per catalog session — a single row at one thread, one per
/// family shard otherwise).
struct CatalogStats {
  std::string Mode;        ///< solveModeName of the run.
  std::string FamilyNames; ///< Comma-joined families this session served.
  unsigned Families = 0;
  unsigned Pairs = 0;
  unsigned Methods = 0;
  uint64_t Vcs = 0;
  uint64_t Checks = 0;
  int64_t Conflicts = 0;
  /// Prefix amortization across the catalog + family + pair levels.
  uint64_t PrefixAsserts = 0;
  uint64_t PrefixReuses = 0;
  /// Whole-family scope subtrees retired in one pass.
  uint64_t SubtreeRetirements = 0;
  uint64_t PairEvictions = 0; ///< Pair scopes retired.
  uint64_t EvictedClauses = 0;
  /// Variable recycling: indices reclaimed by scope retirements, the
  /// live-variable and clause high-water marks, and the cumulative
  /// variable demand (the allocation a no-recycling run would need).
  uint64_t RecycledVars = 0;
  uint64_t PeakLiveVars = 0;
  uint64_t PeakLiveClauses = 0;
  uint64_t VarRequests = 0;
  uint64_t PeakRetainedClauses = 0;
  /// Bridge compaction: compaction passes run, theory-atom and selector
  /// variables released to the recycler, and the live-bridge high-water
  /// mark (all zero unless --compact-bridges).
  uint64_t BridgeCompactions = 0;
  uint64_t ReleasedAtomVars = 0;
  uint64_t ReleasedSelectors = 0;
  uint64_t PeakLiveBridges = 0;
  unsigned Selectors = 0; ///< Family + pair + method selectors.
  double Millis = 0;
};

/// Everything a run produces; serializes to/from the JSON report.
struct Report {
  unsigned Threads = 1;
  double WallMillis = 0;
  bool Certified = false; ///< The run logged + checked proof traces.
  Scope Bounds;
  std::vector<FamilySummary> Families;
  std::vector<JobRecord> Results;
  /// Per-pair shared-session reuse stats (empty for exhaustive-only runs
  /// and for reports predating the field).
  std::vector<PairStats> Pairs;
  /// Per-family session stats (SolveMode::SharedFamily and SharedCatalog
  /// runs; under shared-catalog each row is one family tier's slice of
  /// its catalog session).
  std::vector<FamilyStats> FamilySessions;
  /// Per-catalog-session stats (SolveMode::SharedCatalog runs only).
  std::vector<CatalogStats> CatalogSessions;
  /// Non-empty when the run never started (e.g. unknown family name); a
  /// report with an Error has no results and counts as failed.
  std::string Error;

  unsigned failures() const;

  json::Value toJson() const;
  static std::optional<Report> fromJson(const json::Value &V);

  /// True when \p O ran the same job list and reached the same verdicts
  /// and scenario counts (both are functions of the options alone; only
  /// timings are allowed to differ).
  bool sameVerdicts(const Report &O) const;
};

/// Resolves \p Names ("all" or family names, case-sensitive) to family
/// pointers in the paper's presentation order. Unknown names yield an empty
/// vector and set \p Error.
std::vector<const Family *>
resolveFamilies(const std::vector<std::string> &Names, std::string &Error);

/// The full deterministic job list for \p Opts, outcomes not yet computed.
std::vector<JobRecord> enumerateJobs(const Catalog &C,
                                     const DriverOptions &Opts);

/// Runs every job of enumerateJobs(C, Opts) across Opts.Threads workers and
/// aggregates the report. The catalog (and the families) must already be
/// fully built. Exhaustive jobs never touch the ExprFactory; symbolic jobs
/// intern new expressions concurrently through the catalog's factory, which
/// is safe because ExprFactory interning is lock-striped.
Report runFullCatalog(const Catalog &C, const DriverOptions &Opts);

/// Human-readable per-family timing table plus the overall verdict line.
std::string renderSummary(const Report &R);

} // namespace driver
} // namespace semcomm

#endif // SEMCOMM_TOOLS_DRIVERCORE_H
