//===- tools/VerifyDriver.cpp - semcommute-verify CLI ------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// Verifies the complete commutativity-condition catalog (765 conditions,
// 1530 generated testing methods counted the paper's way) and the inverse
// catalog (Table 5.10) in parallel, then prints per-family timings and
// optionally writes a JSON report:
//
//   semcommute-verify --families all --threads 8 --json report.json
//
//===----------------------------------------------------------------------===//

#include "DriverCore.h"

#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace semcomm;
using namespace semcomm::driver;

namespace {

void printUsage(const char *Argv0) {
  std::printf(
      "usage: %s [options]\n"
      "\n"
      "Verifies the full commutativity-condition and inverse catalogs.\n"
      "\n"
      "options:\n"
      "  --families LIST   comma-separated families to verify: all (default),\n"
      "                    Accumulator, Set, Map, ArrayList\n"
      "  --engine E        engine for both catalogs (commutativity and\n"
      "                    Table 5.10 inverses): exhaustive (default),\n"
      "                    symbolic, or both\n"
      "  --seq-bound N     ArrayList case-split bound for the symbolic\n"
      "                    engine (default: 3); requires --engine\n"
      "                    symbolic or both\n"
      "  --solve-mode M    symbolic session strategy: shared-pair (default,\n"
      "                    one warm solver per op-pair), shared-family (one\n"
      "                    warm solver per family with per-pair scope\n"
      "                    eviction), shared-catalog (one warm solver for\n"
      "                    the whole catalog at --threads 1, one per family\n"
      "                    shard otherwise; subtree retirement + variable\n"
      "                    recycling), per-method, or oneshot; requires\n"
      "                    --engine symbolic or both\n"
      "  --gc-budget N     live learned clauses at which a warm session's\n"
      "                    first clause-DB reduction fires (default: the\n"
      "                    data-picked solver default); requires --engine\n"
      "                    symbolic or both\n"
      "  --certify         certified verdicts: every symbolic session logs\n"
      "                    a DRAT-style proof trace and the independent RUP\n"
      "                    checker replays it in-process; job rows gain\n"
      "                    proof_queries/proof_clauses/proof_checked;\n"
      "                    requires --engine symbolic or both\n"
      "  --compact-bridges reference-count theory atoms by live scopes and\n"
      "                    compact bridge clauses out of the clause DB once\n"
      "                    every owning scope retires (catalog_stats rows\n"
      "                    gain bridge_compactions/released_atom_vars/\n"
      "                    released_selectors/peak_live_bridges); requires\n"
      "                    --engine symbolic or both with --solve-mode\n"
      "                    shared-catalog\n"
      "  --threads N       worker threads (default: hardware concurrency;\n"
      "                    must be positive)\n"
      "  --no-commute      skip the commutativity-condition catalog\n"
      "  --no-inverse      skip the inverse catalog (Table 5.10)\n"
      "  --list            print the job list without verifying\n"
      "  --json FILE       write the JSON report to FILE ('-' for stdout)\n"
      "  --failures-only   print only failing jobs, not every verdict\n"
      "  --quiet           print only the summary table\n"
      "  --help            this message\n"
      "\n"
      "exit status: 0 when every job verifies, 1 otherwise.\n",
      Argv0);
}

std::vector<std::string> splitCommas(const std::string &S) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (Start <= S.size()) {
    size_t Comma = S.find(',', Start);
    if (Comma == std::string::npos) {
      if (Start < S.size())
        Out.push_back(S.substr(Start));
      break;
    }
    if (Comma > Start)
      Out.push_back(S.substr(Start, Comma - Start));
    Start = Comma + 1;
  }
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  DriverOptions Opts;
  Opts.Threads = ThreadPool::hardwareThreads();
  bool ListOnly = false, Quiet = false, FailuresOnly = false;
  bool SeqBoundSet = false, SolveModeSet = false, GcBudgetSet = false;
  std::string JsonPath;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto needValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (Arg == "--help" || Arg == "-h") {
      printUsage(argv[0]);
      return 0;
    } else if (Arg == "--families") {
      Opts.Families = splitCommas(needValue("--families"));
    } else if (Arg == "--engine") {
      std::string E = needValue("--engine");
      if (E == "exhaustive") {
        Opts.Engine = EngineKind::Exhaustive;
      } else if (E == "symbolic") {
        Opts.Engine = EngineKind::Symbolic;
      } else if (E == "both") {
        Opts.Engine = EngineKind::Both;
      } else {
        std::fprintf(stderr,
                     "unknown engine '%s' (expected exhaustive, symbolic or "
                     "both)\n",
                     E.c_str());
        return 2;
      }
    } else if (Arg == "--seq-bound") {
      const char *Val = needValue("--seq-bound");
      char *End = nullptr;
      long N = std::strtol(Val, &End, 10);
      if (End == Val || *End != '\0' || N < 1) {
        // A bound below 1 would make every ArrayList split vacuous and
        // "verify" the family with zero VCs.
        std::fprintf(stderr, "--seq-bound wants a positive integer, got "
                             "'%s'\n",
                     Val);
        return 2;
      }
      Opts.SymbolicSeqLenBound = static_cast<int>(N);
      SeqBoundSet = true;
    } else if (Arg == "--solve-mode") {
      std::string M = needValue("--solve-mode");
      if (M == "shared-pair") {
        Opts.SymbolicMode = SolveMode::SharedPair;
      } else if (M == "shared-family") {
        Opts.SymbolicMode = SolveMode::SharedFamily;
      } else if (M == "shared-catalog") {
        Opts.SymbolicMode = SolveMode::SharedCatalog;
      } else if (M == "per-method") {
        Opts.SymbolicMode = SolveMode::PerMethod;
      } else if (M == "oneshot") {
        Opts.SymbolicMode = SolveMode::OneShot;
      } else {
        std::fprintf(stderr,
                     "unknown solve mode '%s' (expected shared-pair, "
                     "shared-family, shared-catalog, per-method or "
                     "oneshot)\n",
                     M.c_str());
        return 2;
      }
      SolveModeSet = true;
    } else if (Arg == "--gc-budget") {
      const char *Val = needValue("--gc-budget");
      char *End = nullptr;
      long N = std::strtol(Val, &End, 10);
      if (End == Val || *End != '\0' || N < 1) {
        std::fprintf(stderr, "--gc-budget wants a positive integer, got "
                             "'%s'\n",
                     Val);
        return 2;
      }
      Opts.GcBudget = static_cast<int64_t>(N);
      GcBudgetSet = true;
    } else if (Arg == "--certify") {
      Opts.Certify = true;
    } else if (Arg == "--compact-bridges") {
      Opts.CompactBridges = true;
    } else if (Arg == "--threads") {
      const char *Val = needValue("--threads");
      char *End = nullptr;
      long N = std::strtol(Val, &End, 10);
      if (End == Val || *End != '\0' || N < 1) {
        // Threads=0 used to be silently promoted to 1; reject it instead
        // of guessing what the caller meant.
        std::fprintf(stderr, "--threads wants a positive integer, got "
                             "'%s'\n",
                     Val);
        return 2;
      }
      Opts.Threads = static_cast<unsigned>(N);
    } else if (Arg == "--no-commute") {
      Opts.Commutativity = false;
    } else if (Arg == "--no-inverse") {
      Opts.Inverses = false;
    } else if (Arg == "--list") {
      ListOnly = true;
    } else if (Arg == "--json") {
      JsonPath = needValue("--json");
    } else if (Arg == "--failures-only") {
      FailuresOnly = true;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      printUsage(argv[0]);
      return 2;
    }
  }

  // Reject incoherent combinations up front instead of silently ignoring
  // half of them (flag order must not matter, so this runs post-parse).
  if (SeqBoundSet && Opts.Engine == EngineKind::Exhaustive) {
    std::fprintf(stderr, "--seq-bound only applies to the symbolic engine; "
                         "pass --engine symbolic or both\n");
    return 2;
  }
  if (SolveModeSet && Opts.Engine == EngineKind::Exhaustive) {
    std::fprintf(stderr, "--solve-mode only applies to the symbolic "
                         "engine; pass --engine symbolic or both\n");
    return 2;
  }
  if (GcBudgetSet && Opts.Engine == EngineKind::Exhaustive) {
    std::fprintf(stderr, "--gc-budget only applies to the symbolic "
                         "engine; pass --engine symbolic or both\n");
    return 2;
  }
  if (Opts.Certify && Opts.Engine == EngineKind::Exhaustive) {
    std::fprintf(stderr, "--certify only applies to the symbolic engine "
                         "(exhaustive jobs have no proof traces); pass "
                         "--engine symbolic or both\n");
    return 2;
  }
  if (Opts.CompactBridges &&
      (Opts.Engine == EngineKind::Exhaustive ||
       Opts.SymbolicMode != SolveMode::SharedCatalog)) {
    std::fprintf(stderr, "--compact-bridges requires --engine symbolic (or "
                         "both) with --solve-mode shared-catalog: only the "
                         "whole-catalog session lives long enough for "
                         "bridge clauses to accumulate\n");
    return 2;
  }
  if (!Opts.Commutativity && !Opts.Inverses) {
    std::fprintf(stderr, "--no-commute together with --no-inverse leaves "
                         "nothing to verify\n");
    return 2;
  }

  std::string Error;
  if (resolveFamilies(Opts.Families, Error).empty() && !Error.empty()) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 2;
  }

  ExprFactory F;
  Catalog C(F);

  if (ListOnly) {
    for (const JobRecord &J : enumerateJobs(C, Opts))
      std::printf("%s\n", J.key().c_str());
    return 0;
  }

  Report R = runFullCatalog(C, Opts);
  if (!R.Error.empty()) {
    std::fprintf(stderr, "%s\n", R.Error.c_str());
    return 2;
  }

  if (!Quiet)
    for (const JobRecord &J : R.Results) {
      if (FailuresOnly && J.Verified)
        continue;
      std::printf("[%s] %-60s %s\n", J.Verified ? "ok" : "FAIL",
                  J.key().c_str(), J.Verified ? "" : J.Note.c_str());
    }

  std::printf("%s", renderSummary(R).c_str());

  if (!JsonPath.empty()) {
    std::string Doc = R.toJson().dump(2);
    Doc += '\n';
    if (JsonPath == "-") {
      std::fwrite(Doc.data(), 1, Doc.size(), stdout);
    } else {
      std::FILE *Out = std::fopen(JsonPath.c_str(), "w");
      if (!Out) {
        std::fprintf(stderr, "cannot open '%s' for writing\n",
                     JsonPath.c_str());
        return 2;
      }
      std::fwrite(Doc.data(), 1, Doc.size(), Out);
      std::fclose(Out);
      std::printf("JSON report written to %s\n", JsonPath.c_str());
    }
  }

  return R.failures() == 0 ? 0 : 1;
}
