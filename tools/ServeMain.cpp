//===- tools/ServeMain.cpp - semcommute-serve CLI ----------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// The warm catalog verification service loop: submits (family, pair,
// condition-kind) requests against one long-lived CatalogSession, with
// prefix-batched drains, bridge compaction, and selector release keeping
// the session bounded across arbitrarily many catalog passes:
//
//   semcommute-serve --families all --passes 3 --assert-plateau
//   semcommute-serve --requests 10000 --seed 7 --check-verdicts
//
// With --threads N (or --shards N) the requests are served by the sharded
// front-end instead: N warm sessions behind one submit/drain interface,
// shards 1..N-1 loading shard 0's pre-encoded prefix image, learned
// clauses traded through the cross-shard exchange at drain boundaries:
//
//   semcommute-serve --threads 4 --requests 10000 --check-verdicts
//
//===----------------------------------------------------------------------===//

#include "DriverCore.h"

#include "service/ShardedVerifyService.h"
#include "service/VerifyService.h"
#include "support/Timing.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace semcomm;
using namespace semcomm::service;

namespace {

void printUsage(const char *Argv0) {
  std::printf(
      "usage: %s [options]\n"
      "\n"
      "Serves commutativity verification requests from one warm catalog\n"
      "session (bridge compaction + selector release keep it bounded).\n"
      "\n"
      "request stream (pick one):\n"
      "  --passes N        N full catalog passes: every entry x kind of\n"
      "                    every served family, in catalog order, one\n"
      "                    drain per pass (default: 1 pass)\n"
      "  --requests N      N random requests drawn with --seed, drained\n"
      "                    every --drain-every\n"
      "\n"
      "options:\n"
      "  --families LIST   comma-separated families to serve: all\n"
      "                    (default), Accumulator, Set, Map, ArrayList\n"
      "  --seed S          RNG seed for --requests (default: 1)\n"
      "  --drain-every K   drain the random stream every K requests\n"
      "                    (default: 64)\n"
      "  --seq-bound N     ArrayList case-split bound (default: 3)\n"
      "  --budget N        per-VC CDCL conflict budget (default: 200000)\n"
      "  --no-batch        FIFO serving (no prefix batching)\n"
      "  --no-compact      disable bridge compaction\n"
      "  --compact-min-dead N  dead theory entries at which compaction is\n"
      "                    forced regardless of the dead/live ratio\n"
      "                    (default: 64)\n"
      "  --no-release      disable retired-selector release\n"
      "  --certify         DRAT proof logging + independent RUP checking\n"
      "                    of every Unsat verdict the service produces\n"
      "\n"
      "sharded serving (ShardedVerifyService):\n"
      "  --threads N       drain worker threads; N > 1 selects the sharded\n"
      "                    front-end (default: 1, single warm session)\n"
      "  --shards N        warm sessions behind the front-end (default:\n"
      "                    --threads); N > 1 also selects sharded mode\n"
      "  --route MODE      request routing: pair (default) hashes\n"
      "                    family+pair, family keeps a family on one shard\n"
      "  --no-share-prefix every shard re-encodes the catalog prefix\n"
      "                    instead of loading shard 0's image\n"
      "  --no-share-clauses  disable the cross-shard learned-clause\n"
      "                    exchange\n"
      "  --dump-prefix FILE  write the serialized prefix image to FILE and\n"
      "                    continue (byte-identical across runs; works in\n"
      "                    both modes)\n"
      "\n"
      "checks and output:\n"
      "  --check-verdicts  re-verify the served catalog in-process with\n"
      "                    --solve-mode shared-catalog and fail on any\n"
      "                    verdict mismatch\n"
      "  --assert-plateau  with --passes >= 3: fail unless pass 3's peak\n"
      "                    live vars/clauses/bridges are <= 1.05x pass 2's\n"
      "  --snapshot FILE   write the service image (config, stats, verdict\n"
      "                    log) to FILE on exit\n"
      "  --reload FILE     restore a service image before serving\n"
      "  --json FILE       write service statistics to FILE ('-' stdout)\n"
      "  --quiet           print only the final summary line\n"
      "  --help            this message\n"
      "\n"
      "exit status: 0 on success; 1 on verification failure or a failed\n"
      "check; 2 on usage errors.\n",
      Argv0);
}

std::vector<std::string> splitCommas(const std::string &S) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (Start <= S.size()) {
    size_t Comma = S.find(',', Start);
    if (Comma == std::string::npos) {
      if (Start < S.size())
        Out.push_back(S.substr(Start));
      break;
    }
    if (Comma > Start)
      Out.push_back(S.substr(Start, Comma - Start));
    Start = Comma + 1;
  }
  return Out;
}

/// One catalog pass worth of requests: every entry x kind of every family.
std::vector<ServiceRequest>
catalogPassRequests(const Catalog &C, const std::vector<const Family *> &Fams) {
  std::vector<ServiceRequest> Reqs;
  for (const Family *Fam : Fams)
    for (const ConditionEntry &E : C.entries(*Fam))
      for (ConditionKind K : {ConditionKind::Before, ConditionKind::Between,
                              ConditionKind::After})
        Reqs.push_back({Fam->Name, E.op1().Name, E.op2().Name, K});
  return Reqs;
}

struct PassPeaks {
  uint64_t Requests = 0;
  double Millis = 0;
  uint64_t PeakLiveVars = 0;
  uint64_t PeakLiveClauses = 0;
  uint64_t PeakLiveBridges = 0;
};

PassPeaks peaksOf(const ServiceStats &S, uint64_t Requests, double Millis) {
  PassPeaks P;
  P.Requests = Requests;
  P.Millis = Millis;
  P.PeakLiveVars = S.Session.PeakLiveVars;
  P.PeakLiveClauses = S.Session.PeakLiveClauses;
  P.PeakLiveBridges = S.Session.PeakLiveBridges;
  return P;
}

/// Either serving front-end behind the one request loop: a single warm
/// session or the sharded service. Sharded statistics are aggregated to
/// the single-session shape (counters and peaks summed across shards —
/// each shard's peaks plateau individually, so the total footprint
/// plateaus) so the reporting below is mode-agnostic.
struct AnyService {
  std::unique_ptr<VerifyService> Single;
  std::unique_ptr<ShardedVerifyService> Sharded;

  bool submit(const ServiceRequest &R, std::string &Error) {
    return Single ? Single->submit(R, Error) : Sharded->submit(R, Error);
  }
  std::vector<ServiceVerdict> drain() {
    return Single ? Single->drain() : Sharded->drain();
  }
  size_t pending() const {
    return Single ? Single->pending() : Sharded->pending();
  }
  const std::vector<ServiceVerdict> &log() const {
    return Single ? Single->log() : Sharded->log();
  }
  void resetPeakStats() {
    if (Single)
      Single->resetPeakStats();
    else
      Sharded->resetPeakStats();
  }
  bool certifying() const {
    return Single ? Single->certifying() : Sharded->certifying();
  }
  proof::CertifySummary finishCertification() {
    return Single ? Single->finishCertification()
                  : Sharded->finishCertification();
  }
  json::Value snapshot() const {
    return Single ? Single->snapshot() : Sharded->snapshot();
  }
  bool restore(const json::Value &V, std::string &Error) {
    return Single ? Single->restore(V, Error) : Sharded->restore(V, Error);
  }
  /// Legal only before any request is served (see SmtSession::exportPrefix);
  /// the sharded front-end hands back the image it already captured, or
  /// exports from shard 0 when prefix sharing is off.
  PrefixImage exportPrefix() {
    if (Single)
      return Single->exportPrefix();
    if (!Sharded->prefixImage().empty())
      return Sharded->prefixImage();
    return Sharded->shard(0).exportPrefix();
  }

  ServiceStats stats() const {
    if (Single)
      return Single->stats();
    ShardedServiceStats SS = Sharded->stats();
    ServiceStats Agg;
    Agg.Requests = SS.Requests;
    Agg.Drains = SS.Drains;
    Agg.ServeMillis = SS.ServeMillis;
    for (const ShardStats &Sh : SS.Shards) {
      Agg.PairGroups += Sh.Stats.PairGroups;
      Agg.BatchedReuses += Sh.Stats.BatchedReuses;
      Agg.MethodsDischarged += Sh.Stats.MethodsDischarged;
      const CatalogSessionStats &In = Sh.Stats.Session;
      CatalogSessionStats &Out = Agg.Session;
      Out.FamiliesOpened += In.FamiliesOpened;
      Out.FamiliesRetired += In.FamiliesRetired;
      Out.PairsOpened += In.PairsOpened;
      Out.PairsRetired += In.PairsRetired;
      Out.PrefixAsserts += In.PrefixAsserts;
      Out.PrefixReuses += In.PrefixReuses;
      Out.EvictedClauses += In.EvictedClauses;
      Out.PeakRetainedClauses += In.PeakRetainedClauses;
      Out.RecycledVars += In.RecycledVars;
      Out.PeakLiveVars += In.PeakLiveVars;
      Out.PeakLiveClauses += In.PeakLiveClauses;
      Out.VarRequests += In.VarRequests;
      Out.BridgeCompactions += In.BridgeCompactions;
      Out.ReleasedAtomVars += In.ReleasedAtomVars;
      Out.ReleasedSelectors += In.ReleasedSelectors;
      Out.LiveBridges += In.LiveBridges;
      Out.PeakLiveBridges += In.PeakLiveBridges;
    }
    return Agg;
  }
};

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> FamilyNames;
  ServiceConfig Cfg;
  long Passes = 1;
  long RandomRequests = -1;
  unsigned Seed = 1;
  long DrainEvery = 64;
  bool CheckVerdicts = false, AssertPlateau = false, Quiet = false;
  std::string SnapshotPath, ReloadPath, JsonPath, DumpPrefixPath;
  long Threads = 1;
  long ShardCount = -1; // Default: one shard per worker thread.
  RouteBy Route = RouteBy::Pair;
  bool SharePrefix = true, ShareClauses = true;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto needValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (Arg == "--help" || Arg == "-h") {
      printUsage(argv[0]);
      return 0;
    } else if (Arg == "--families") {
      FamilyNames = splitCommas(needValue("--families"));
    } else if (Arg == "--passes") {
      Passes = std::atol(needValue("--passes"));
    } else if (Arg == "--requests") {
      RandomRequests = std::atol(needValue("--requests"));
    } else if (Arg == "--seed") {
      Seed = static_cast<unsigned>(std::atol(needValue("--seed")));
    } else if (Arg == "--drain-every") {
      DrainEvery = std::atol(needValue("--drain-every"));
    } else if (Arg == "--seq-bound") {
      Cfg.SeqLenBound = std::atoi(needValue("--seq-bound"));
    } else if (Arg == "--budget") {
      Cfg.ConflictBudget = std::atoll(needValue("--budget"));
    } else if (Arg == "--no-batch") {
      Cfg.Batch = false;
    } else if (Arg == "--no-compact") {
      Cfg.CompactBridges = false;
    } else if (Arg == "--compact-min-dead") {
      Cfg.CompactMinDead =
          static_cast<size_t>(std::atol(needValue("--compact-min-dead")));
    } else if (Arg == "--no-release") {
      Cfg.ReleaseSelectors = false;
    } else if (Arg == "--certify") {
      Cfg.Certify = true;
    } else if (Arg == "--threads") {
      Threads = std::atol(needValue("--threads"));
    } else if (Arg == "--shards") {
      ShardCount = std::atol(needValue("--shards"));
    } else if (Arg == "--route") {
      std::string Mode = needValue("--route");
      if (Mode == "pair") {
        Route = RouteBy::Pair;
      } else if (Mode == "family") {
        Route = RouteBy::Family;
      } else {
        std::fprintf(stderr, "--route must be pair or family\n");
        return 2;
      }
    } else if (Arg == "--no-share-prefix") {
      SharePrefix = false;
    } else if (Arg == "--no-share-clauses") {
      ShareClauses = false;
    } else if (Arg == "--dump-prefix") {
      DumpPrefixPath = needValue("--dump-prefix");
    } else if (Arg == "--check-verdicts") {
      CheckVerdicts = true;
    } else if (Arg == "--assert-plateau") {
      AssertPlateau = true;
    } else if (Arg == "--snapshot") {
      SnapshotPath = needValue("--snapshot");
    } else if (Arg == "--reload") {
      ReloadPath = needValue("--reload");
    } else if (Arg == "--json") {
      JsonPath = needValue("--json");
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", Arg.c_str());
      return 2;
    }
  }
  if (Passes < 1 && RandomRequests < 0) {
    std::fprintf(stderr, "--passes must be positive\n");
    return 2;
  }
  if (DrainEvery < 1) {
    std::fprintf(stderr, "--drain-every must be positive\n");
    return 2;
  }
  if (AssertPlateau && (RandomRequests >= 0 || Passes < 3)) {
    std::fprintf(stderr, "--assert-plateau requires --passes >= 3\n");
    return 2;
  }
  if (Threads < 1 || ShardCount == 0) {
    std::fprintf(stderr, "--threads and --shards must be positive\n");
    return 2;
  }

  std::string Error;
  std::vector<const Family *> Fams =
      driver::resolveFamilies(FamilyNames, Error);
  if (!Error.empty()) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 2;
  }

  ExprFactory F;
  Catalog C(F);
  AnyService Svc;
  bool UseSharded = Threads > 1 || ShardCount > 1;
  if (UseSharded) {
    ShardedServiceConfig SCfg;
    SCfg.Base = Cfg;
    SCfg.Shards =
        static_cast<unsigned>(ShardCount > 0 ? ShardCount : Threads);
    SCfg.Threads = static_cast<unsigned>(Threads);
    SCfg.Route = Route;
    SCfg.SharePrefix = SharePrefix;
    SCfg.ShareClauses = ShareClauses;
    Svc.Sharded = std::make_unique<ShardedVerifyService>(C, Fams, SCfg);
    if (!Quiet)
      std::printf("sharded: %u shards, %ld threads, route=%s\n",
                  Svc.Sharded->numShards(), Threads,
                  Route == RouteBy::Pair ? "pair" : "family");
  } else {
    Svc.Single = std::make_unique<VerifyService>(C, Fams, Cfg);
  }

  if (!DumpPrefixPath.empty()) {
    // Must run before any request is served: the image is the warm
    // session's pristine catalog-common prefix. Byte-identical across
    // runs — CI pins two independent processes' dumps with cmp.
    PrefixImage Img = Svc.exportPrefix();
    std::ofstream OutFile(DumpPrefixPath, std::ios::binary);
    if (!OutFile) {
      std::fprintf(stderr, "cannot write %s\n", DumpPrefixPath.c_str());
      return 2;
    }
    OutFile << Img.serialize();
    if (!Quiet)
      std::printf("dumped prefix image (%d vars, %zu clauses) to %s\n",
                  Img.NumVars, Img.Clauses.size(), DumpPrefixPath.c_str());
  }

  if (!ReloadPath.empty()) {
    std::ifstream In(ReloadPath);
    if (!In) {
      std::fprintf(stderr, "cannot read %s\n", ReloadPath.c_str());
      return 2;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    std::optional<json::Value> Image = json::Value::parse(Buf.str());
    if (!Image || !Svc.restore(*Image, Error)) {
      std::fprintf(stderr, "reload failed: %s\n",
                   Error.empty() ? "unparsable snapshot" : Error.c_str());
      return 2;
    }
    if (!Quiet)
      std::printf("reloaded %zu verdicts from %s\n", Svc.log().size(),
                  ReloadPath.c_str());
  }
  size_t RestoredVerdicts = Svc.log().size();

  std::vector<PassPeaks> PassStats;
  Stopwatch Total;

  if (RandomRequests >= 0) {
    // Random request stream, drained in fixed-size windows.
    std::vector<ServiceRequest> Universe = catalogPassRequests(C, Fams);
    if (Universe.empty()) {
      std::fprintf(stderr, "no catalog entries to serve\n");
      return 2;
    }
    std::mt19937 Rng(Seed);
    std::uniform_int_distribution<size_t> Pick(0, Universe.size() - 1);
    Stopwatch Window;
    uint64_t Submitted = 0;
    Svc.resetPeakStats();
    for (long R = 0; R != RandomRequests; ++R) {
      if (!Svc.submit(Universe[Pick(Rng)], Error)) {
        std::fprintf(stderr, "submit failed: %s\n", Error.c_str());
        return 2;
      }
      ++Submitted;
      if (Svc.pending() >= static_cast<size_t>(DrainEvery))
        Svc.drain();
    }
    Svc.drain();
    PassStats.push_back(peaksOf(Svc.stats(), Submitted, Window.millis()));
  } else {
    // Full catalog passes: one drain per pass; per-pass peaks restart so
    // the plateau criterion compares passes, not the cumulative maximum.
    std::vector<ServiceRequest> PassReqs = catalogPassRequests(C, Fams);
    for (long P = 0; P != Passes; ++P) {
      Stopwatch PassTimer;
      Svc.resetPeakStats();
      for (const ServiceRequest &R : PassReqs)
        if (!Svc.submit(R, Error)) {
          std::fprintf(stderr, "submit failed: %s\n", Error.c_str());
          return 2;
        }
      Svc.drain();
      PassStats.push_back(
          peaksOf(Svc.stats(), PassReqs.size(), PassTimer.millis()));
      if (!Quiet)
        std::printf("pass %ld: %zu requests, %.1f ms, peak live "
                    "vars=%llu clauses=%llu bridges=%llu\n",
                    P + 1, PassReqs.size(), PassStats.back().Millis,
                    (unsigned long long)PassStats.back().PeakLiveVars,
                    (unsigned long long)PassStats.back().PeakLiveClauses,
                    (unsigned long long)PassStats.back().PeakLiveBridges);
    }
  }
  double TotalMillis = Total.millis();

  int Exit = 0;
  ServiceStats S = Svc.stats();

  // Every served request must have verified both of its testing methods
  // (the catalog is the paper's: everything verifies).
  uint64_t Failed = 0;
  for (const ServiceVerdict &V : Svc.log())
    Failed += !V.verified();
  if (Failed) {
    std::fprintf(stderr, "%llu of %zu requests failed verification\n",
                 (unsigned long long)Failed, Svc.log().size());
    Exit = 1;
  }

  if (AssertPlateau && PassStats.size() >= 3) {
    const PassPeaks &P2 = PassStats[PassStats.size() - 2];
    const PassPeaks &P3 = PassStats[PassStats.size() - 1];
    auto Bounded = [](uint64_t Late, uint64_t Early) {
      return static_cast<double>(Late) <=
             1.05 * static_cast<double>(Early);
    };
    if (!Bounded(P3.PeakLiveVars, P2.PeakLiveVars) ||
        !Bounded(P3.PeakLiveClauses, P2.PeakLiveClauses) ||
        !Bounded(P3.PeakLiveBridges, P2.PeakLiveBridges)) {
      std::fprintf(stderr,
                   "plateau violated: pass %zu peaks vars=%llu "
                   "clauses=%llu bridges=%llu vs pass %zu vars=%llu "
                   "clauses=%llu bridges=%llu\n",
                   PassStats.size(), (unsigned long long)P3.PeakLiveVars,
                   (unsigned long long)P3.PeakLiveClauses,
                   (unsigned long long)P3.PeakLiveBridges,
                   PassStats.size() - 1, (unsigned long long)P2.PeakLiveVars,
                   (unsigned long long)P2.PeakLiveClauses,
                   (unsigned long long)P2.PeakLiveBridges);
      Exit = 1;
    } else if (!Quiet) {
      std::printf("plateau holds: pass %zu within 1.05x of pass %zu\n",
                  PassStats.size(), PassStats.size() - 1);
    }
  }

  bool CertOk = true;
  if (Cfg.Certify) {
    proof::CertifySummary Cert = Svc.finishCertification();
    CertOk = Cert.Checked && Cert.Ok;
    if (!CertOk) {
      std::fprintf(stderr, "certification failed: %s\n",
                   Cert.Error.empty() ? "checker rejected the trace"
                                      : Cert.Error.c_str());
      Exit = 1;
    } else if (!Quiet) {
      std::printf("certified: %llu queries, %llu proof steps\n",
                  (unsigned long long)Cert.Queries,
                  (unsigned long long)Cert.Steps);
    }
  }

  if (CheckVerdicts) {
    // Independent reference: the batch driver's shared-catalog engine
    // over the same families, no compaction. Verdicts must agree on
    // every (family, pair, kind) the service served.
    SymbolicEngine Ref(C.factory(), Cfg.SeqLenBound, Cfg.ConflictBudget,
                       SolveMode::SharedCatalog);
    CatalogOutcome Out = Ref.verifyCatalog(C, Fams);
    std::map<std::string, std::pair<bool, bool>> RefVerdicts;
    for (const FamilyOutcome &FO : Out.Families)
      for (size_t PI = 0; PI != FO.PairKeys.size(); ++PI)
        for (size_t K = 0; K != 3; ++K) {
          const std::vector<SymbolicResult> &Ms = FO.Pairs[PI].Methods;
          RefVerdicts[FO.Family + "|" + FO.PairKeys[PI] + "|" +
                      std::to_string(K)] = {Ms[2 * K].Verified,
                                            Ms[2 * K + 1].Verified};
        }
    uint64_t Mismatches = 0;
    for (const ServiceVerdict &V : Svc.log()) {
      std::string Key = V.Req.Family + "|" + V.Req.Op1 + "," + V.Req.Op2 +
                        "|" +
                        std::to_string(static_cast<size_t>(V.Req.Kind));
      auto It = RefVerdicts.find(Key);
      if (It == RefVerdicts.end() || It->second.first != V.Sound ||
          It->second.second != V.Complete) {
        std::fprintf(stderr, "verdict mismatch: %s %s,%s %s\n",
                     V.Req.Family.c_str(), V.Req.Op1.c_str(),
                     V.Req.Op2.c_str(), serviceKindName(V.Req.Kind));
        ++Mismatches;
      }
    }
    if (Mismatches) {
      std::fprintf(stderr, "%llu verdict mismatches against the batch "
                           "driver\n",
                   (unsigned long long)Mismatches);
      Exit = 1;
    } else if (!Quiet) {
      std::printf("verdicts match the batch driver (%zu requests)\n",
                  Svc.log().size());
    }
  }

  if (!SnapshotPath.empty()) {
    std::ofstream OutFile(SnapshotPath);
    if (!OutFile) {
      std::fprintf(stderr, "cannot write %s\n", SnapshotPath.c_str());
      return 2;
    }
    OutFile << Svc.snapshot().dump(2) << "\n";
  }

  if (!JsonPath.empty()) {
    json::Value J = Svc.snapshot();
    // The stats report extends the image with the session's solver
    // accounting and the per-pass peaks (the log stays: it is the
    // snapshot's payload and harmless in a stats file).
    json::Value Sess = json::Value::object();
    auto SetU = [&Sess](const char *K, uint64_t V) {
      Sess.set(K, json::Value::integer(static_cast<int64_t>(V)));
    };
    SetU("pairs_opened", S.Session.PairsOpened);
    SetU("pairs_retired", S.Session.PairsRetired);
    SetU("prefix_asserts", S.Session.PrefixAsserts);
    SetU("prefix_reuses", S.Session.PrefixReuses);
    SetU("evicted_clauses", S.Session.EvictedClauses);
    SetU("recycled_vars", S.Session.RecycledVars);
    SetU("peak_live_vars", S.Session.PeakLiveVars);
    SetU("peak_live_clauses", S.Session.PeakLiveClauses);
    SetU("var_requests", S.Session.VarRequests);
    SetU("bridge_compactions", S.Session.BridgeCompactions);
    SetU("released_atom_vars", S.Session.ReleasedAtomVars);
    SetU("released_selectors", S.Session.ReleasedSelectors);
    SetU("live_bridges", S.Session.LiveBridges);
    SetU("peak_live_bridges", S.Session.PeakLiveBridges);
    J.set("session", std::move(Sess));
    json::Value PassArr = json::Value::array();
    for (const PassPeaks &P : PassStats) {
      json::Value Row = json::Value::object();
      Row.set("requests",
              json::Value::integer(static_cast<int64_t>(P.Requests)));
      Row.set("millis", json::Value::number(P.Millis));
      Row.set("peak_live_vars",
              json::Value::integer(static_cast<int64_t>(P.PeakLiveVars)));
      Row.set("peak_live_clauses", json::Value::integer(
                                       static_cast<int64_t>(P.PeakLiveClauses)));
      Row.set("peak_live_bridges", json::Value::integer(
                                       static_cast<int64_t>(P.PeakLiveBridges)));
      PassArr.push(std::move(Row));
    }
    J.set("pass_stats", std::move(PassArr));
    if (Svc.Sharded) {
      // The headline sharded numbers: warm-up decomposition (what one
      // shard costs to re-encode vs to import the prefix image) and the
      // per-shard serving + exchange accounting.
      ShardedServiceStats SS = Svc.Sharded->stats();
      json::Value Sh = json::Value::object();
      Sh.set("shards", json::Value::integer(
                           static_cast<int64_t>(SS.Shards.size())));
      Sh.set("threads", json::Value::integer(static_cast<int64_t>(
                            Svc.Sharded->config().Threads)));
      Sh.set("route", json::Value::string(
                          Svc.Sharded->config().Route == RouteBy::Pair
                              ? "pair"
                              : "family"));
      Sh.set("share_prefix",
             json::Value::boolean(Svc.Sharded->config().SharePrefix));
      Sh.set("share_clauses",
             json::Value::boolean(Svc.Sharded->config().ShareClauses));
      // Hardware context for the thread-scaling numbers: on a 1-CPU
      // container the req/s ratio across thread counts is pinned at ~1x
      // no matter how well the drain parallelizes.
      Sh.set("cpus", json::Value::integer(static_cast<int64_t>(
                         std::thread::hardware_concurrency())));
      Sh.set("plan_millis", json::Value::number(SS.PlanMillis));
      Sh.set("warmup_scratch_millis",
             json::Value::number(SS.WarmupScratchMillis));
      Sh.set("warmup_import_millis_avg",
             json::Value::number(SS.WarmupImportMillisAvg));
      Sh.set("warmup_speedup_x",
             json::Value::number(SS.WarmupImportMillisAvg > 0
                                     ? SS.WarmupScratchMillis /
                                           SS.WarmupImportMillisAvg
                                     : 0));
      json::Value Ex = json::Value::object();
      Ex.set("published", json::Value::integer(
                              static_cast<int64_t>(SS.Exchange.Published)));
      Ex.set("dropped", json::Value::integer(
                            static_cast<int64_t>(SS.Exchange.Dropped)));
      Ex.set("collected", json::Value::integer(
                              static_cast<int64_t>(SS.Exchange.Collected)));
      Sh.set("exchange", std::move(Ex));
      json::Value ShardArr = json::Value::array();
      for (const ShardStats &St : SS.Shards) {
        json::Value Row = json::Value::object();
        Row.set("requests", json::Value::integer(
                                static_cast<int64_t>(St.Stats.Requests)));
        Row.set("warmup_millis", json::Value::number(St.WarmupMillis));
        Row.set("prefix_imported", json::Value::boolean(St.PrefixImported));
        Row.set("clauses_published",
                json::Value::integer(
                    static_cast<int64_t>(St.ClausesPublished)));
        Row.set("clauses_adopted", json::Value::integer(
                                       static_cast<int64_t>(St.ClausesAdopted)));
        Row.set("peak_live_vars",
                json::Value::integer(static_cast<int64_t>(
                    St.Stats.Session.PeakLiveVars)));
        Row.set("peak_live_clauses",
                json::Value::integer(static_cast<int64_t>(
                    St.Stats.Session.PeakLiveClauses)));
        ShardArr.push(std::move(Row));
      }
      Sh.set("per_shard", std::move(ShardArr));
      J.set("sharded_service", std::move(Sh));
    }
    uint64_t ServedNow = Svc.log().size() - RestoredVerdicts;
    J.set("wall_millis", json::Value::number(TotalMillis));
    J.set("requests_per_sec",
          json::Value::number(TotalMillis > 0
                                  ? 1e3 * static_cast<double>(ServedNow) /
                                        TotalMillis
                                  : 0));
    std::string Text = J.dump(2) + "\n";
    if (JsonPath == "-") {
      std::fwrite(Text.data(), 1, Text.size(), stdout);
    } else {
      std::ofstream OutFile(JsonPath);
      if (!OutFile) {
        std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
        return 2;
      }
      OutFile << Text;
    }
  }

  uint64_t ServedNow = Svc.log().size() - RestoredVerdicts;
  std::printf("served %llu requests in %.1f ms (%.1f req/s): %s; "
              "%llu pair groups, %llu batched reuses, %llu compactions, "
              "%llu selectors released\n",
              (unsigned long long)ServedNow, TotalMillis,
              TotalMillis > 0 ? 1e3 * (double)ServedNow / TotalMillis : 0.0,
              Exit == 0 ? "OK" : "FAILED",
              (unsigned long long)S.PairGroups,
              (unsigned long long)S.BatchedReuses,
              (unsigned long long)S.Session.BridgeCompactions,
              (unsigned long long)S.Session.ReleasedSelectors);
  return Exit;
}
