//===- tools/ServeMain.cpp - semcommute-serve CLI ----------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
// The warm catalog verification service loop: submits (family, pair,
// condition-kind) requests against one long-lived CatalogSession, with
// prefix-batched drains, bridge compaction, and selector release keeping
// the session bounded across arbitrarily many catalog passes:
//
//   semcommute-serve --families all --passes 3 --assert-plateau
//   semcommute-serve --requests 10000 --seed 7 --check-verdicts
//
//===----------------------------------------------------------------------===//

#include "DriverCore.h"

#include "service/VerifyService.h"
#include "support/Timing.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

using namespace semcomm;
using namespace semcomm::service;

namespace {

void printUsage(const char *Argv0) {
  std::printf(
      "usage: %s [options]\n"
      "\n"
      "Serves commutativity verification requests from one warm catalog\n"
      "session (bridge compaction + selector release keep it bounded).\n"
      "\n"
      "request stream (pick one):\n"
      "  --passes N        N full catalog passes: every entry x kind of\n"
      "                    every served family, in catalog order, one\n"
      "                    drain per pass (default: 1 pass)\n"
      "  --requests N      N random requests drawn with --seed, drained\n"
      "                    every --drain-every\n"
      "\n"
      "options:\n"
      "  --families LIST   comma-separated families to serve: all\n"
      "                    (default), Accumulator, Set, Map, ArrayList\n"
      "  --seed S          RNG seed for --requests (default: 1)\n"
      "  --drain-every K   drain the random stream every K requests\n"
      "                    (default: 64)\n"
      "  --seq-bound N     ArrayList case-split bound (default: 3)\n"
      "  --budget N        per-VC CDCL conflict budget (default: 200000)\n"
      "  --no-batch        FIFO serving (no prefix batching)\n"
      "  --no-compact      disable bridge compaction\n"
      "  --compact-min-dead N  dead theory entries at which compaction is\n"
      "                    forced regardless of the dead/live ratio\n"
      "                    (default: 64)\n"
      "  --no-release      disable retired-selector release\n"
      "  --certify         DRAT proof logging + independent RUP checking\n"
      "                    of every Unsat verdict the service produces\n"
      "  --check-verdicts  re-verify the served catalog in-process with\n"
      "                    --solve-mode shared-catalog and fail on any\n"
      "                    verdict mismatch\n"
      "  --assert-plateau  with --passes >= 3: fail unless pass 3's peak\n"
      "                    live vars/clauses/bridges are <= 1.05x pass 2's\n"
      "  --snapshot FILE   write the service image (config, stats, verdict\n"
      "                    log) to FILE on exit\n"
      "  --reload FILE     restore a service image before serving\n"
      "  --json FILE       write service statistics to FILE ('-' stdout)\n"
      "  --quiet           print only the final summary line\n"
      "  --help            this message\n"
      "\n"
      "exit status: 0 on success; 1 on verification failure or a failed\n"
      "check; 2 on usage errors.\n",
      Argv0);
}

std::vector<std::string> splitCommas(const std::string &S) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (Start <= S.size()) {
    size_t Comma = S.find(',', Start);
    if (Comma == std::string::npos) {
      if (Start < S.size())
        Out.push_back(S.substr(Start));
      break;
    }
    if (Comma > Start)
      Out.push_back(S.substr(Start, Comma - Start));
    Start = Comma + 1;
  }
  return Out;
}

/// One catalog pass worth of requests: every entry x kind of every family.
std::vector<ServiceRequest>
catalogPassRequests(const Catalog &C, const std::vector<const Family *> &Fams) {
  std::vector<ServiceRequest> Reqs;
  for (const Family *Fam : Fams)
    for (const ConditionEntry &E : C.entries(*Fam))
      for (ConditionKind K : {ConditionKind::Before, ConditionKind::Between,
                              ConditionKind::After})
        Reqs.push_back({Fam->Name, E.op1().Name, E.op2().Name, K});
  return Reqs;
}

struct PassPeaks {
  uint64_t Requests = 0;
  double Millis = 0;
  uint64_t PeakLiveVars = 0;
  uint64_t PeakLiveClauses = 0;
  uint64_t PeakLiveBridges = 0;
};

PassPeaks peaksOf(const VerifyService &Svc, uint64_t Requests,
                  double Millis) {
  ServiceStats S = Svc.stats();
  PassPeaks P;
  P.Requests = Requests;
  P.Millis = Millis;
  P.PeakLiveVars = S.Session.PeakLiveVars;
  P.PeakLiveClauses = S.Session.PeakLiveClauses;
  P.PeakLiveBridges = S.Session.PeakLiveBridges;
  return P;
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> FamilyNames;
  ServiceConfig Cfg;
  long Passes = 1;
  long RandomRequests = -1;
  unsigned Seed = 1;
  long DrainEvery = 64;
  bool CheckVerdicts = false, AssertPlateau = false, Quiet = false;
  std::string SnapshotPath, ReloadPath, JsonPath;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto needValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (Arg == "--help" || Arg == "-h") {
      printUsage(argv[0]);
      return 0;
    } else if (Arg == "--families") {
      FamilyNames = splitCommas(needValue("--families"));
    } else if (Arg == "--passes") {
      Passes = std::atol(needValue("--passes"));
    } else if (Arg == "--requests") {
      RandomRequests = std::atol(needValue("--requests"));
    } else if (Arg == "--seed") {
      Seed = static_cast<unsigned>(std::atol(needValue("--seed")));
    } else if (Arg == "--drain-every") {
      DrainEvery = std::atol(needValue("--drain-every"));
    } else if (Arg == "--seq-bound") {
      Cfg.SeqLenBound = std::atoi(needValue("--seq-bound"));
    } else if (Arg == "--budget") {
      Cfg.ConflictBudget = std::atoll(needValue("--budget"));
    } else if (Arg == "--no-batch") {
      Cfg.Batch = false;
    } else if (Arg == "--no-compact") {
      Cfg.CompactBridges = false;
    } else if (Arg == "--compact-min-dead") {
      Cfg.CompactMinDead =
          static_cast<size_t>(std::atol(needValue("--compact-min-dead")));
    } else if (Arg == "--no-release") {
      Cfg.ReleaseSelectors = false;
    } else if (Arg == "--certify") {
      Cfg.Certify = true;
    } else if (Arg == "--check-verdicts") {
      CheckVerdicts = true;
    } else if (Arg == "--assert-plateau") {
      AssertPlateau = true;
    } else if (Arg == "--snapshot") {
      SnapshotPath = needValue("--snapshot");
    } else if (Arg == "--reload") {
      ReloadPath = needValue("--reload");
    } else if (Arg == "--json") {
      JsonPath = needValue("--json");
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", Arg.c_str());
      return 2;
    }
  }
  if (Passes < 1 && RandomRequests < 0) {
    std::fprintf(stderr, "--passes must be positive\n");
    return 2;
  }
  if (DrainEvery < 1) {
    std::fprintf(stderr, "--drain-every must be positive\n");
    return 2;
  }
  if (AssertPlateau && (RandomRequests >= 0 || Passes < 3)) {
    std::fprintf(stderr, "--assert-plateau requires --passes >= 3\n");
    return 2;
  }

  std::string Error;
  std::vector<const Family *> Fams =
      driver::resolveFamilies(FamilyNames, Error);
  if (!Error.empty()) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 2;
  }

  ExprFactory F;
  Catalog C(F);
  VerifyService Svc(C, Fams, Cfg);

  if (!ReloadPath.empty()) {
    std::ifstream In(ReloadPath);
    if (!In) {
      std::fprintf(stderr, "cannot read %s\n", ReloadPath.c_str());
      return 2;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    std::optional<json::Value> Image = json::Value::parse(Buf.str());
    if (!Image || !Svc.restore(*Image, Error)) {
      std::fprintf(stderr, "reload failed: %s\n",
                   Error.empty() ? "unparsable snapshot" : Error.c_str());
      return 2;
    }
    if (!Quiet)
      std::printf("reloaded %zu verdicts from %s\n", Svc.log().size(),
                  ReloadPath.c_str());
  }
  size_t RestoredVerdicts = Svc.log().size();

  std::vector<PassPeaks> PassStats;
  Stopwatch Total;

  if (RandomRequests >= 0) {
    // Random request stream, drained in fixed-size windows.
    std::vector<ServiceRequest> Universe = catalogPassRequests(C, Fams);
    if (Universe.empty()) {
      std::fprintf(stderr, "no catalog entries to serve\n");
      return 2;
    }
    std::mt19937 Rng(Seed);
    std::uniform_int_distribution<size_t> Pick(0, Universe.size() - 1);
    Stopwatch Window;
    uint64_t Submitted = 0;
    Svc.resetPeakStats();
    for (long R = 0; R != RandomRequests; ++R) {
      if (!Svc.submit(Universe[Pick(Rng)], Error)) {
        std::fprintf(stderr, "submit failed: %s\n", Error.c_str());
        return 2;
      }
      ++Submitted;
      if (Svc.pending() >= static_cast<size_t>(DrainEvery))
        Svc.drain();
    }
    Svc.drain();
    PassStats.push_back(peaksOf(Svc, Submitted, Window.millis()));
  } else {
    // Full catalog passes: one drain per pass; per-pass peaks restart so
    // the plateau criterion compares passes, not the cumulative maximum.
    std::vector<ServiceRequest> PassReqs = catalogPassRequests(C, Fams);
    for (long P = 0; P != Passes; ++P) {
      Stopwatch PassTimer;
      Svc.resetPeakStats();
      for (const ServiceRequest &R : PassReqs)
        if (!Svc.submit(R, Error)) {
          std::fprintf(stderr, "submit failed: %s\n", Error.c_str());
          return 2;
        }
      Svc.drain();
      PassStats.push_back(
          peaksOf(Svc, PassReqs.size(), PassTimer.millis()));
      if (!Quiet)
        std::printf("pass %ld: %zu requests, %.1f ms, peak live "
                    "vars=%llu clauses=%llu bridges=%llu\n",
                    P + 1, PassReqs.size(), PassStats.back().Millis,
                    (unsigned long long)PassStats.back().PeakLiveVars,
                    (unsigned long long)PassStats.back().PeakLiveClauses,
                    (unsigned long long)PassStats.back().PeakLiveBridges);
    }
  }
  double TotalMillis = Total.millis();

  int Exit = 0;
  ServiceStats S = Svc.stats();

  // Every served request must have verified both of its testing methods
  // (the catalog is the paper's: everything verifies).
  uint64_t Failed = 0;
  for (const ServiceVerdict &V : Svc.log())
    Failed += !V.verified();
  if (Failed) {
    std::fprintf(stderr, "%llu of %zu requests failed verification\n",
                 (unsigned long long)Failed, Svc.log().size());
    Exit = 1;
  }

  if (AssertPlateau && PassStats.size() >= 3) {
    const PassPeaks &P2 = PassStats[PassStats.size() - 2];
    const PassPeaks &P3 = PassStats[PassStats.size() - 1];
    auto Bounded = [](uint64_t Late, uint64_t Early) {
      return static_cast<double>(Late) <=
             1.05 * static_cast<double>(Early);
    };
    if (!Bounded(P3.PeakLiveVars, P2.PeakLiveVars) ||
        !Bounded(P3.PeakLiveClauses, P2.PeakLiveClauses) ||
        !Bounded(P3.PeakLiveBridges, P2.PeakLiveBridges)) {
      std::fprintf(stderr,
                   "plateau violated: pass %zu peaks vars=%llu "
                   "clauses=%llu bridges=%llu vs pass %zu vars=%llu "
                   "clauses=%llu bridges=%llu\n",
                   PassStats.size(), (unsigned long long)P3.PeakLiveVars,
                   (unsigned long long)P3.PeakLiveClauses,
                   (unsigned long long)P3.PeakLiveBridges,
                   PassStats.size() - 1, (unsigned long long)P2.PeakLiveVars,
                   (unsigned long long)P2.PeakLiveClauses,
                   (unsigned long long)P2.PeakLiveBridges);
      Exit = 1;
    } else if (!Quiet) {
      std::printf("plateau holds: pass %zu within 1.05x of pass %zu\n",
                  PassStats.size(), PassStats.size() - 1);
    }
  }

  bool CertOk = true;
  if (Cfg.Certify) {
    const proof::CertifySummary &Cert = Svc.finishCertification();
    CertOk = Cert.Checked && Cert.Ok;
    if (!CertOk) {
      std::fprintf(stderr, "certification failed: %s\n",
                   Cert.Error.empty() ? "checker rejected the trace"
                                      : Cert.Error.c_str());
      Exit = 1;
    } else if (!Quiet) {
      std::printf("certified: %llu queries, %llu proof steps\n",
                  (unsigned long long)Cert.Queries,
                  (unsigned long long)Cert.Steps);
    }
  }

  if (CheckVerdicts) {
    // Independent reference: the batch driver's shared-catalog engine
    // over the same families, no compaction. Verdicts must agree on
    // every (family, pair, kind) the service served.
    SymbolicEngine Ref(C.factory(), Cfg.SeqLenBound, Cfg.ConflictBudget,
                       SolveMode::SharedCatalog);
    CatalogOutcome Out = Ref.verifyCatalog(C, Fams);
    std::map<std::string, std::pair<bool, bool>> RefVerdicts;
    for (const FamilyOutcome &FO : Out.Families)
      for (size_t PI = 0; PI != FO.PairKeys.size(); ++PI)
        for (size_t K = 0; K != 3; ++K) {
          const std::vector<SymbolicResult> &Ms = FO.Pairs[PI].Methods;
          RefVerdicts[FO.Family + "|" + FO.PairKeys[PI] + "|" +
                      std::to_string(K)] = {Ms[2 * K].Verified,
                                            Ms[2 * K + 1].Verified};
        }
    uint64_t Mismatches = 0;
    for (const ServiceVerdict &V : Svc.log()) {
      std::string Key = V.Req.Family + "|" + V.Req.Op1 + "," + V.Req.Op2 +
                        "|" +
                        std::to_string(static_cast<size_t>(V.Req.Kind));
      auto It = RefVerdicts.find(Key);
      if (It == RefVerdicts.end() || It->second.first != V.Sound ||
          It->second.second != V.Complete) {
        std::fprintf(stderr, "verdict mismatch: %s %s,%s %s\n",
                     V.Req.Family.c_str(), V.Req.Op1.c_str(),
                     V.Req.Op2.c_str(), serviceKindName(V.Req.Kind));
        ++Mismatches;
      }
    }
    if (Mismatches) {
      std::fprintf(stderr, "%llu verdict mismatches against the batch "
                           "driver\n",
                   (unsigned long long)Mismatches);
      Exit = 1;
    } else if (!Quiet) {
      std::printf("verdicts match the batch driver (%zu requests)\n",
                  Svc.log().size());
    }
  }

  if (!SnapshotPath.empty()) {
    std::ofstream OutFile(SnapshotPath);
    if (!OutFile) {
      std::fprintf(stderr, "cannot write %s\n", SnapshotPath.c_str());
      return 2;
    }
    OutFile << Svc.snapshot().dump(2) << "\n";
  }

  if (!JsonPath.empty()) {
    json::Value J = Svc.snapshot();
    // The stats report extends the image with the session's solver
    // accounting and the per-pass peaks (the log stays: it is the
    // snapshot's payload and harmless in a stats file).
    json::Value Sess = json::Value::object();
    auto SetU = [&Sess](const char *K, uint64_t V) {
      Sess.set(K, json::Value::integer(static_cast<int64_t>(V)));
    };
    SetU("pairs_opened", S.Session.PairsOpened);
    SetU("pairs_retired", S.Session.PairsRetired);
    SetU("prefix_asserts", S.Session.PrefixAsserts);
    SetU("prefix_reuses", S.Session.PrefixReuses);
    SetU("evicted_clauses", S.Session.EvictedClauses);
    SetU("recycled_vars", S.Session.RecycledVars);
    SetU("peak_live_vars", S.Session.PeakLiveVars);
    SetU("peak_live_clauses", S.Session.PeakLiveClauses);
    SetU("var_requests", S.Session.VarRequests);
    SetU("bridge_compactions", S.Session.BridgeCompactions);
    SetU("released_atom_vars", S.Session.ReleasedAtomVars);
    SetU("released_selectors", S.Session.ReleasedSelectors);
    SetU("live_bridges", S.Session.LiveBridges);
    SetU("peak_live_bridges", S.Session.PeakLiveBridges);
    J.set("session", std::move(Sess));
    json::Value PassArr = json::Value::array();
    for (const PassPeaks &P : PassStats) {
      json::Value Row = json::Value::object();
      Row.set("requests",
              json::Value::integer(static_cast<int64_t>(P.Requests)));
      Row.set("millis", json::Value::number(P.Millis));
      Row.set("peak_live_vars",
              json::Value::integer(static_cast<int64_t>(P.PeakLiveVars)));
      Row.set("peak_live_clauses", json::Value::integer(
                                       static_cast<int64_t>(P.PeakLiveClauses)));
      Row.set("peak_live_bridges", json::Value::integer(
                                       static_cast<int64_t>(P.PeakLiveBridges)));
      PassArr.push(std::move(Row));
    }
    J.set("pass_stats", std::move(PassArr));
    uint64_t ServedNow = Svc.log().size() - RestoredVerdicts;
    J.set("wall_millis", json::Value::number(TotalMillis));
    J.set("requests_per_sec",
          json::Value::number(TotalMillis > 0
                                  ? 1e3 * static_cast<double>(ServedNow) /
                                        TotalMillis
                                  : 0));
    std::string Text = J.dump(2) + "\n";
    if (JsonPath == "-") {
      std::fwrite(Text.data(), 1, Text.size(), stdout);
    } else {
      std::ofstream OutFile(JsonPath);
      if (!OutFile) {
        std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
        return 2;
      }
      OutFile << Text;
    }
  }

  uint64_t ServedNow = Svc.log().size() - RestoredVerdicts;
  std::printf("served %llu requests in %.1f ms (%.1f req/s): %s; "
              "%llu pair groups, %llu batched reuses, %llu compactions, "
              "%llu selectors released\n",
              (unsigned long long)ServedNow, TotalMillis,
              TotalMillis > 0 ? 1e3 * (double)ServedNow / TotalMillis : 0.0,
              Exit == 0 ? "OK" : "FAILED",
              (unsigned long long)S.PairGroups,
              (unsigned long long)S.BatchedReuses,
              (unsigned long long)S.Session.BridgeCompactions,
              (unsigned long long)S.Session.ReleasedSelectors);
  return Exit;
}
