//===- tools/DriverCore.cpp - Full-catalog verification driver ------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "DriverCore.h"

#include "commute/ExhaustiveEngine.h"
#include "commute/SymbolicEngine.h"
#include "inverse/InverseVerifier.h"
#include "inverse/SymbolicInverseEngine.h"
#include "support/ThreadPool.h"
#include "support/Timing.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <map>

using namespace semcomm;
using namespace semcomm::driver;

//===----------------------------------------------------------------------===//
// Job enumeration
//===----------------------------------------------------------------------===//

const char *driver::engineKindName(EngineKind E) {
  switch (E) {
  case EngineKind::Exhaustive:
    return "exhaustive";
  case EngineKind::Symbolic:
    return "symbolic";
  case EngineKind::Both:
    return "both";
  }
  return "exhaustive";
}

std::vector<const Family *>
driver::resolveFamilies(const std::vector<std::string> &Names,
                        std::string &Error) {
  Error.clear();
  std::vector<const Family *> All = allFamilies();
  if (Names.empty())
    return All;
  for (const std::string &N : Names)
    if (N == "all")
      return All;

  std::vector<const Family *> Picked;
  for (const Family *F : All) {
    bool Wanted = false;
    for (const std::string &N : Names)
      Wanted = Wanted || N == F->Name;
    if (Wanted)
      Picked.push_back(F);
  }
  for (const std::string &N : Names) {
    bool Known = false;
    for (const Family *F : All)
      Known = Known || N == F->Name;
    if (!Known) {
      Error = "unknown family '" + N +
              "' (expected all, Accumulator, Set, Map or ArrayList)";
      return {};
    }
  }
  return Picked;
}

std::vector<JobRecord> driver::enumerateJobs(const Catalog &C,
                                             const DriverOptions &Opts) {
  std::string Error;
  std::vector<const Family *> Fams = resolveFamilies(Opts.Families, Error);

  std::vector<EngineKind> Engines;
  if (Opts.Engine == EngineKind::Both)
    Engines = {EngineKind::Exhaustive, EngineKind::Symbolic};
  else
    Engines = {Opts.Engine};

  std::vector<JobRecord> Jobs;
  for (const Family *Fam : Fams) {
    if (Opts.Commutativity)
      for (EngineKind Eng : Engines)
        for (const ConditionEntry &E : C.entries(*Fam))
          for (ConditionKind K : {ConditionKind::Before,
                                  ConditionKind::Between,
                                  ConditionKind::After})
            for (MethodRole R :
                 {MethodRole::Soundness, MethodRole::Completeness}) {
              JobRecord J;
              J.Family = Fam->Name;
              J.Category = "commutativity";
              J.Engine = engineKindName(Eng);
              J.Op1 = E.op1().Name;
              J.Op2 = E.op2().Name;
              J.Kind = conditionKindName(K);
              J.Role = methodRoleName(R);
              Jobs.push_back(std::move(J));
            }
    if (Opts.Inverses)
      for (EngineKind Eng : Engines)
        for (const InverseSpec &S : buildInverseSpecs())
          if (S.Fam == Fam) {
            JobRecord J;
            J.Family = Fam->Name;
            J.Category = "inverse";
            J.Engine = engineKindName(Eng);
            J.Op1 = S.OpName;
            Jobs.push_back(std::move(J));
          }
  }
  return Jobs;
}

//===----------------------------------------------------------------------===//
// Parallel execution
//===----------------------------------------------------------------------===//

namespace {

/// Everything a worker needs to execute one job without touching shared
/// mutable state (exhaustive) or through anything but the lock-striped
/// factory (symbolic). Conditions and inverse specs are resolved up front,
/// on the main thread, so workers only evaluate.
struct PreparedJob {
  // Commutativity payload.
  const Family *Fam = nullptr;
  const ConditionEntry *Entry = nullptr;
  ConditionKind Kind = ConditionKind::Before;
  MethodRole Role = MethodRole::Soundness;
  bool Symbolic = false;
  // Inverse payload (Inverse != nullptr selects it).
  const InverseSpec *Inverse = nullptr;
};

/// Copies a symbolic method result into its job record.
void fillSymbolicRecord(const SymbolicResult &R, JobRecord &Out) {
  Out.Verified = R.Verified;
  Out.Scenarios = R.NumVcs;
  Out.Vcs = R.NumVcs;
  Out.Conflicts = R.SatConflicts;
  Out.MaxVcConflicts = R.MaxVcConflicts;
  Out.RetainedClauses = R.RetainedClauses;
  Out.DbReductions = R.DbReductions;
  Out.ReclaimedClauses = R.ReclaimedClauses;
  std::string Core;
  for (const std::string &L : R.CoreLabels)
    Core += (Core.empty() ? "" : ";") + L;
  Out.ProofCore = std::move(Core);
  Out.ProofQueries = R.ProofQueries;
  Out.ProofClauses = R.ProofClauses;
  Out.ProofChecked = R.ProofChecked;
  if (!R.Verified)
    Out.Note = R.Countermodel;
}

void runJob(const ExhaustiveEngine &Engine, const Catalog &C,
            const DriverOptions &Opts, const PreparedJob &P, JobRecord &Out) {
  Stopwatch Timer;
  if (P.Inverse && P.Symbolic) {
    SymbolicResult R =
        verifyInverseSymbolic(C.factory(), *P.Inverse,
                              Opts.SymbolicSeqLenBound,
                              Opts.SymbolicConflictBudget, Opts.SymbolicMode,
                              Opts.Certify);
    fillSymbolicRecord(R, Out);
  } else if (P.Inverse) {
    InverseVerifyResult R = verifyInverse(*P.Inverse, Opts.Bounds);
    Out.Verified = R.Verified;
    Out.Scenarios = R.ScenariosChecked;
    Out.Note = R.FailureNote;
  } else {
    assert(!P.Symbolic && "symbolic commutativity jobs run as pair groups");
    VerifyResult R =
        Engine.verifyCondition(*P.Fam, P.Entry->op1().Name,
                               P.Entry->op2().Name, P.Kind, P.Role,
                               P.Entry->get(P.Kind));
    Out.Verified = R.Verified;
    Out.Scenarios = R.ScenariosChecked;
    if (R.CE)
      Out.Note = R.CE->str();
  }
  Out.Millis = Timer.millis();
}

/// The unit of work for symbolic commutativity jobs: all six testing
/// methods of one (family, op-pair), run on one worker so they share one
/// warm session (SolveMode::SharedPair).
struct PairGroup {
  const ConditionEntry *Entry = nullptr;
  std::vector<size_t> JobIdx; ///< Six jobs, in (kind x role) order.
};

/// Copies a pair outcome into its stats row (shared by the pair-group and
/// family-group paths). Millis is the sum of the method times; the
/// pair-group path overwrites it with its own wall clock.
void fillPairStats(const PairOutcome &O, const ConditionEntry &E,
                   const char *ModeName, PairStats &Stats);

void runPairGroup(const Catalog &C, const DriverOptions &Opts,
                  const PairGroup &G, std::vector<JobRecord> &Jobs,
                  PairStats &Stats) {
  Stopwatch Timer;
  SymbolicEngine Sym(C.factory(), Opts.SymbolicSeqLenBound,
                     Opts.SymbolicConflictBudget, Opts.SymbolicMode);
  Sym.setClauseGcBudget(Opts.GcBudget);
  Sym.setCertify(Opts.Certify);
  PairOutcome O = Sym.verifyPair(*G.Entry);
  assert(O.Methods.size() == G.JobIdx.size() &&
         "pair group out of sync with enumeration");
  for (size_t I = 0; I != G.JobIdx.size(); ++I) {
    JobRecord &Out = Jobs[G.JobIdx[I]];
    fillSymbolicRecord(O.Methods[I], Out);
    Out.Millis = O.MethodMillis[I];
  }
  fillPairStats(O, *G.Entry, solveModeName(Opts.SymbolicMode), Stats);
  Stats.Millis = Timer.millis();
}

/// The unit of work for symbolic commutativity jobs in SharedFamily mode:
/// every pair of one family runs on one worker through one FamilySession
/// (pair order = catalog entry order = enumeration order).
struct FamilyGroup {
  const Family *Fam = nullptr;
  std::vector<PairGroup> Pairs;
  /// PairStats row of each pair (same index space as the pair-group list),
  /// so stats placement never relies on families being contiguous there.
  std::vector<size_t> PairRows;
};

void fillPairStats(const PairOutcome &O, const ConditionEntry &E,
                   const char *ModeName, PairStats &Stats) {
  Stats.Family = E.Fam->Name;
  Stats.Op1 = E.op1().Name;
  Stats.Op2 = E.op2().Name;
  Stats.Mode = ModeName;
  Stats.Methods = static_cast<unsigned>(O.Methods.size());
  for (const SymbolicResult &R : O.Methods)
    Stats.Vcs += R.NumVcs;
  Stats.Checks = O.Checks;
  Stats.Conflicts = O.Conflicts;
  Stats.RetainedClauses = O.RetainedClauses;
  Stats.DbReductions = O.DbReductions;
  Stats.ReclaimedClauses = O.ReclaimedClauses;
  Stats.Selectors = O.Selectors;
  Stats.SessionsOpened = O.SessionsOpened;
  for (double Ms : O.MethodMillis)
    Stats.Millis += Ms;
}

/// Copies one family outcome into its job records, pair-stats rows, and
/// family-stats row — shared by the family-group and catalog-group paths
/// (the catalog path hands over each family tier's slice).
void fillFamilyRecords(const FamilyOutcome &FO, const FamilyGroup &G,
                       const char *ModeName, std::vector<JobRecord> &Jobs,
                       std::vector<PairStats> &Pairs, FamilyStats &Stats) {
  assert(FO.Pairs.size() == G.Pairs.size() &&
         "family group out of sync with the catalog");
  for (size_t PI = 0; PI != G.Pairs.size(); ++PI) {
    const PairGroup &PG = G.Pairs[PI];
    const PairOutcome &PO = FO.Pairs[PI];
    assert(PO.Methods.size() == PG.JobIdx.size() &&
           "pair group out of sync with enumeration");
    for (size_t I = 0; I != PG.JobIdx.size(); ++I) {
      JobRecord &Out = Jobs[PG.JobIdx[I]];
      fillSymbolicRecord(PO.Methods[I], Out);
      Out.Millis = PO.MethodMillis[I];
    }
    fillPairStats(PO, *PG.Entry, ModeName, Pairs[G.PairRows[PI]]);
  }
  Stats.Family = G.Fam->Name;
  Stats.Mode = ModeName;
  Stats.Pairs = static_cast<unsigned>(FO.Pairs.size());
  for (const PairOutcome &PO : FO.Pairs) {
    Stats.Methods += static_cast<unsigned>(PO.Methods.size());
    for (const SymbolicResult &R : PO.Methods)
      Stats.Vcs += R.NumVcs;
  }
  Stats.Checks = FO.Checks;
  Stats.Conflicts = FO.Conflicts;
  Stats.PrefixAsserts = FO.Stats.PrefixAsserts;
  Stats.PrefixReuses = FO.Stats.PrefixReuses;
  Stats.PeakRetainedClauses = FO.Stats.PeakRetainedClauses;
  Stats.Evictions = FO.Stats.PairsRetired;
  Stats.EvictedClauses = FO.Stats.EvictedClauses;
  Stats.DbReductions = FO.DbReductions;
  Stats.ReclaimedClauses = FO.ReclaimedClauses;
  Stats.Selectors = FO.Selectors;
}

void runFamilyGroup(const Catalog &C, const DriverOptions &Opts,
                    const FamilyGroup &G, std::vector<JobRecord> &Jobs,
                    std::vector<PairStats> &Pairs, FamilyStats &Stats) {
  Stopwatch Timer;
  SymbolicEngine Sym(C.factory(), Opts.SymbolicSeqLenBound,
                     Opts.SymbolicConflictBudget, SolveMode::SharedFamily);
  Sym.setClauseGcBudget(Opts.GcBudget);
  Sym.setCertify(Opts.Certify);
  FamilyOutcome FO = Sym.verifyFamily(C, *G.Fam);
  fillFamilyRecords(FO, G, solveModeName(SolveMode::SharedFamily), Jobs,
                    Pairs, Stats);
  Stats.Millis = Timer.millis();
}

/// The unit of work in SharedCatalog mode: one CatalogSession serving a
/// deterministic list of family groups — all of them at one thread, one
/// per session (family shards) otherwise.
struct CatalogGroup {
  std::vector<size_t> FamGroupIdx; ///< Indices into the FamilyGroup list.
};

void runCatalogGroup(const Catalog &C, const DriverOptions &Opts,
                     const std::vector<FamilyGroup> &FamGroups,
                     const CatalogGroup &CG, std::vector<JobRecord> &Jobs,
                     std::vector<PairStats> &Pairs,
                     std::vector<FamilyStats> &FamSessions,
                     CatalogStats &Stats) {
  Stopwatch Timer;
  SymbolicEngine Sym(C.factory(), Opts.SymbolicSeqLenBound,
                     Opts.SymbolicConflictBudget, SolveMode::SharedCatalog);
  Sym.setClauseGcBudget(Opts.GcBudget);
  Sym.setCertify(Opts.Certify);
  Sym.setBridgeCompaction(Opts.CompactBridges);
  std::vector<const Family *> Fams;
  for (size_t GI : CG.FamGroupIdx)
    Fams.push_back(FamGroups[GI].Fam);
  CatalogOutcome CO = Sym.verifyCatalog(C, Fams);
  assert(CO.Families.size() == CG.FamGroupIdx.size() &&
         "catalog group out of sync with the plan");

  const char *ModeName = solveModeName(SolveMode::SharedCatalog);
  Stats.Mode = ModeName;
  for (size_t I = 0; I != CG.FamGroupIdx.size(); ++I) {
    const FamilyGroup &G = FamGroups[CG.FamGroupIdx[I]];
    FamilyStats &FS = FamSessions[CG.FamGroupIdx[I]];
    fillFamilyRecords(CO.Families[I], G, ModeName, Jobs, Pairs, FS);
    FS.Millis = 0; // Shared wall clock: reported on the catalog row.
    Stats.FamilyNames += (Stats.FamilyNames.empty() ? "" : ",") + G.Fam->Name;
    Stats.Pairs += FS.Pairs;
    Stats.Methods += FS.Methods;
    Stats.Vcs += FS.Vcs;
  }
  Stats.Families = static_cast<unsigned>(CG.FamGroupIdx.size());
  Stats.Checks = CO.Checks;
  Stats.Conflicts = CO.Conflicts;
  Stats.PrefixAsserts = CO.Stats.PrefixAsserts;
  Stats.PrefixReuses = CO.Stats.PrefixReuses;
  Stats.SubtreeRetirements = CO.Stats.FamiliesRetired;
  Stats.PairEvictions = CO.Stats.PairsRetired;
  Stats.EvictedClauses = CO.Stats.EvictedClauses;
  Stats.RecycledVars = CO.Stats.RecycledVars;
  Stats.PeakLiveVars = CO.Stats.PeakLiveVars;
  Stats.PeakLiveClauses = CO.Stats.PeakLiveClauses;
  Stats.VarRequests = CO.Stats.VarRequests;
  Stats.PeakRetainedClauses = CO.Stats.PeakRetainedClauses;
  Stats.BridgeCompactions = CO.Stats.BridgeCompactions;
  Stats.ReleasedAtomVars = CO.Stats.ReleasedAtomVars;
  Stats.ReleasedSelectors = CO.Stats.ReleasedSelectors;
  Stats.PeakLiveBridges = CO.Stats.PeakLiveBridges;
  Stats.Selectors = CO.Selectors;
  Stats.Millis = Timer.millis();
}

} // namespace

Report driver::runFullCatalog(const Catalog &C, const DriverOptions &Opts) {
  std::string Error;
  std::vector<const Family *> Fams = resolveFamilies(Opts.Families, Error);
  if (!Error.empty()) {
    Report R;
    R.Threads = Opts.Threads == 0 ? 1 : Opts.Threads;
    R.Bounds = Opts.Bounds;
    R.Error = Error;
    return R;
  }

  // Force every lazily built singleton now, while single-threaded: family
  // definitions and the inverse-spec table. The catalog itself was built by
  // the caller; after this point workers only read.
  std::vector<InverseSpec> Inverses = buildInverseSpecs();

  std::vector<JobRecord> Jobs = enumerateJobs(C, Opts);
  std::vector<PreparedJob> Prepared(Jobs.size());
  for (size_t I = 0; I != Jobs.size(); ++I) {
    JobRecord &J = Jobs[I];
    PreparedJob &P = Prepared[I];
    for (const Family *F : Fams)
      if (F->Name == J.Family)
        P.Fam = F;
    P.Symbolic = J.Engine == engineKindName(EngineKind::Symbolic);
    if (J.Category == "inverse") {
      for (const InverseSpec &S : Inverses)
        if (S.Fam == P.Fam && S.OpName == J.Op1)
          P.Inverse = &S;
    } else {
      P.Entry = &C.entry(*P.Fam, J.Op1, J.Op2);
      for (ConditionKind K : {ConditionKind::Before, ConditionKind::Between,
                              ConditionKind::After})
        if (J.Kind == conditionKindName(K))
          P.Kind = K;
      P.Role = J.Role == methodRoleName(MethodRole::Soundness)
                   ? MethodRole::Soundness
                   : MethodRole::Completeness;
    }
  }

  // Group the symbolic commutativity jobs by (family, op-pair): the six
  // testing methods of one pair run as one unit so they can share a warm
  // session. Enumeration emits them contiguously in (kind x role) order.
  std::vector<PairGroup> Groups;
  std::map<const ConditionEntry *, size_t> GroupOf;
  for (size_t I = 0; I != Jobs.size(); ++I) {
    const PreparedJob &P = Prepared[I];
    if (!P.Symbolic || P.Inverse)
      continue;
    auto [It, Fresh] = GroupOf.try_emplace(P.Entry, Groups.size());
    if (Fresh) {
      Groups.push_back({});
      Groups.back().Entry = P.Entry;
    }
    Groups[It->second].JobIdx.push_back(I);
  }
  std::vector<PairStats> Pairs(Groups.size());

  // In SharedFamily and SharedCatalog modes the unit of work grows to the
  // whole family: one worker runs every pair of a family through one
  // session (group order follows the first pair's position, i.e.
  // enumeration order).
  bool FamilyMode = Opts.SymbolicMode == SolveMode::SharedFamily;
  bool CatalogMode = Opts.SymbolicMode == SolveMode::SharedCatalog;
  std::vector<FamilyGroup> FamGroups;
  if (FamilyMode || CatalogMode) {
    std::map<const Family *, size_t> FamGroupOf;
    for (size_t G = 0; G != Groups.size(); ++G) {
      const Family *Fam = Groups[G].Entry->Fam;
      auto [It, Fresh] = FamGroupOf.try_emplace(Fam, FamGroups.size());
      if (Fresh) {
        FamGroups.push_back({});
        FamGroups.back().Fam = Fam;
      }
      FamGroups[It->second].Pairs.push_back(Groups[G]);
      FamGroups[It->second].PairRows.push_back(G);
    }
  }
  std::vector<FamilyStats> FamSessions(FamGroups.size());

  // SharedCatalog scheduling: at one thread the whole catalog runs
  // through a single CatalogSession; with more threads each family runs
  // as its own catalog session (family shards), so the shard list — and
  // with it every statistic — is a function of the options alone.
  unsigned Threads = Opts.Threads == 0 ? 1 : Opts.Threads;
  std::vector<CatalogGroup> CatGroups;
  if (CatalogMode && !FamGroups.empty()) {
    if (Threads == 1) {
      CatGroups.push_back({});
      for (size_t G = 0; G != FamGroups.size(); ++G)
        CatGroups.back().FamGroupIdx.push_back(G);
    } else {
      for (size_t G = 0; G != FamGroups.size(); ++G)
        CatGroups.push_back({{G}});
    }
  }
  std::vector<CatalogStats> CatSessions(CatGroups.size());

  ExhaustiveEngine Engine(Opts.Bounds);
  Stopwatch Wall;
  {
    ThreadPool Pool(Threads);
    for (size_t I = 0; I != Jobs.size(); ++I) {
      if (Prepared[I].Symbolic && !Prepared[I].Inverse)
        continue; // Runs inside its pair, family, or catalog group.
      Pool.submit([&Engine, &C, &Opts, &Prepared, &Jobs, I] {
        runJob(Engine, C, Opts, Prepared[I], Jobs[I]);
      });
    }
    if (CatalogMode) {
      for (size_t G = 0; G != CatGroups.size(); ++G)
        Pool.submit([&C, &Opts, &FamGroups, &CatGroups, &Jobs, &Pairs,
                     &FamSessions, &CatSessions, G] {
          runCatalogGroup(C, Opts, FamGroups, CatGroups[G], Jobs, Pairs,
                          FamSessions, CatSessions[G]);
        });
    } else if (FamilyMode) {
      for (size_t G = 0; G != FamGroups.size(); ++G)
        Pool.submit([&C, &Opts, &FamGroups, &Jobs, &Pairs, &FamSessions, G] {
          runFamilyGroup(C, Opts, FamGroups[G], Jobs, Pairs, FamSessions[G]);
        });
    } else {
      for (size_t G = 0; G != Groups.size(); ++G)
        Pool.submit([&C, &Opts, &Groups, &Jobs, &Pairs, G] {
          runPairGroup(C, Opts, Groups[G], Jobs, Pairs[G]);
        });
    }
    Pool.wait();
  }

  Report R;
  R.Threads = Threads;
  R.WallMillis = Wall.millis();
  R.Certified = Opts.Certify;
  R.Bounds = Opts.Bounds;
  R.Results = std::move(Jobs);
  R.Pairs = std::move(Pairs);
  R.FamilySessions = std::move(FamSessions);
  R.CatalogSessions = std::move(CatSessions);

  for (const Family *Fam : Fams) {
    FamilySummary S;
    S.Family = Fam->Name;
    if (Opts.Commutativity)
      S.PaperConditions = static_cast<unsigned>(
          C.entries(*Fam).size() * 3 * Fam->StructureNames.size());
    for (const JobRecord &J : R.Results)
      if (J.Family == Fam->Name) {
        ++S.Jobs;
        if (!J.Verified)
          ++S.Failures;
        S.JobMillis += J.Millis;
        S.Scenarios += J.Scenarios;
        S.Vcs += J.Vcs;
        S.Conflicts += J.Conflicts;
        S.RetainedClauses = std::max(S.RetainedClauses, J.RetainedClauses);
        S.DbReductions += J.DbReductions;
        S.ReclaimedClauses += J.ReclaimedClauses;
      }
    R.Families.push_back(std::move(S));
  }
  return R;
}

unsigned Report::failures() const {
  if (!Error.empty())
    return 1;
  unsigned N = 0;
  for (const JobRecord &J : Results)
    if (!J.Verified)
      ++N;
  return N;
}

bool Report::sameVerdicts(const Report &O) const {
  if (Error != O.Error || Results.size() != O.Results.size())
    return false;
  for (size_t I = 0; I != Results.size(); ++I)
    if (Results[I].key() != O.Results[I].key() ||
        Results[I].Verified != O.Results[I].Verified ||
        Results[I].Scenarios != O.Results[I].Scenarios)
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// JSON report
//===----------------------------------------------------------------------===//

json::Value Report::toJson() const {
  json::Value Root = json::Value::object();
  Root.set("tool", json::Value::string("semcommute-verify"));
  Root.set("threads", json::Value::integer(Threads));
  Root.set("wall_ms", json::Value::number(WallMillis));
  if (Certified)
    Root.set("certify", json::Value::boolean(true));
  if (!Error.empty())
    Root.set("error", json::Value::string(Error));

  json::Value ScopeObj = json::Value::object();
  ScopeObj.set("set_universe", json::Value::integer(Bounds.SetUniverse));
  ScopeObj.set("map_keys", json::Value::integer(Bounds.MapKeys));
  ScopeObj.set("map_vals", json::Value::integer(Bounds.MapVals));
  ScopeObj.set("seq_vals", json::Value::integer(Bounds.SeqVals));
  ScopeObj.set("max_seq_len", json::Value::integer(Bounds.MaxSeqLen));
  ScopeObj.set("counter_range", json::Value::integer(Bounds.CounterRange));
  Root.set("scope", std::move(ScopeObj));

  json::Value FamArr = json::Value::array();
  for (const FamilySummary &S : Families) {
    json::Value F = json::Value::object();
    F.set("family", json::Value::string(S.Family));
    F.set("jobs", json::Value::integer(S.Jobs));
    F.set("failures", json::Value::integer(S.Failures));
    F.set("paper_conditions", json::Value::integer(S.PaperConditions));
    F.set("job_ms", json::Value::number(S.JobMillis));
    F.set("scenarios", json::Value::integer(
                           static_cast<int64_t>(S.Scenarios)));
    F.set("vcs", json::Value::integer(static_cast<int64_t>(S.Vcs)));
    F.set("sat_conflicts", json::Value::integer(S.Conflicts));
    F.set("retained_clauses", json::Value::integer(
                                  static_cast<int64_t>(S.RetainedClauses)));
    F.set("db_reductions", json::Value::integer(
                               static_cast<int64_t>(S.DbReductions)));
    F.set("reclaimed_clauses",
          json::Value::integer(static_cast<int64_t>(S.ReclaimedClauses)));
    FamArr.push(std::move(F));
  }
  Root.set("families", std::move(FamArr));

  if (!Pairs.empty()) {
    json::Value PairArr = json::Value::array();
    for (const PairStats &P : Pairs) {
      json::Value V = json::Value::object();
      V.set("family", json::Value::string(P.Family));
      V.set("op1", json::Value::string(P.Op1));
      V.set("op2", json::Value::string(P.Op2));
      V.set("mode", json::Value::string(P.Mode));
      V.set("methods", json::Value::integer(P.Methods));
      V.set("vcs", json::Value::integer(static_cast<int64_t>(P.Vcs)));
      V.set("checks", json::Value::integer(static_cast<int64_t>(P.Checks)));
      V.set("sat_conflicts", json::Value::integer(P.Conflicts));
      V.set("retained_clauses",
            json::Value::integer(static_cast<int64_t>(P.RetainedClauses)));
      V.set("db_reductions",
            json::Value::integer(static_cast<int64_t>(P.DbReductions)));
      V.set("reclaimed_clauses",
            json::Value::integer(static_cast<int64_t>(P.ReclaimedClauses)));
      V.set("selectors", json::Value::integer(P.Selectors));
      V.set("sessions", json::Value::integer(
                            static_cast<int64_t>(P.SessionsOpened)));
      V.set("ms", json::Value::number(P.Millis));
      PairArr.push(std::move(V));
    }
    Root.set("pair_stats", std::move(PairArr));
  }

  if (!FamilySessions.empty()) {
    json::Value FamSessArr = json::Value::array();
    for (const FamilyStats &S : FamilySessions) {
      json::Value V = json::Value::object();
      V.set("family", json::Value::string(S.Family));
      V.set("mode", json::Value::string(S.Mode));
      V.set("pairs", json::Value::integer(S.Pairs));
      V.set("methods", json::Value::integer(S.Methods));
      V.set("vcs", json::Value::integer(static_cast<int64_t>(S.Vcs)));
      V.set("checks", json::Value::integer(static_cast<int64_t>(S.Checks)));
      V.set("sat_conflicts", json::Value::integer(S.Conflicts));
      V.set("prefix_asserts",
            json::Value::integer(static_cast<int64_t>(S.PrefixAsserts)));
      V.set("prefix_reuses",
            json::Value::integer(static_cast<int64_t>(S.PrefixReuses)));
      V.set("peak_retained_clauses",
            json::Value::integer(
                static_cast<int64_t>(S.PeakRetainedClauses)));
      V.set("evictions",
            json::Value::integer(static_cast<int64_t>(S.Evictions)));
      V.set("evicted_clauses",
            json::Value::integer(static_cast<int64_t>(S.EvictedClauses)));
      V.set("db_reductions",
            json::Value::integer(static_cast<int64_t>(S.DbReductions)));
      V.set("reclaimed_clauses",
            json::Value::integer(static_cast<int64_t>(S.ReclaimedClauses)));
      V.set("selectors", json::Value::integer(S.Selectors));
      V.set("ms", json::Value::number(S.Millis));
      FamSessArr.push(std::move(V));
    }
    Root.set("family_stats", std::move(FamSessArr));
  }

  if (!CatalogSessions.empty()) {
    json::Value CatArr = json::Value::array();
    for (const CatalogStats &S : CatalogSessions) {
      json::Value V = json::Value::object();
      V.set("mode", json::Value::string(S.Mode));
      V.set("family_names", json::Value::string(S.FamilyNames));
      V.set("families", json::Value::integer(S.Families));
      V.set("pairs", json::Value::integer(S.Pairs));
      V.set("methods", json::Value::integer(S.Methods));
      V.set("vcs", json::Value::integer(static_cast<int64_t>(S.Vcs)));
      V.set("checks", json::Value::integer(static_cast<int64_t>(S.Checks)));
      V.set("sat_conflicts", json::Value::integer(S.Conflicts));
      V.set("prefix_asserts",
            json::Value::integer(static_cast<int64_t>(S.PrefixAsserts)));
      V.set("prefix_reuses",
            json::Value::integer(static_cast<int64_t>(S.PrefixReuses)));
      V.set("subtree_retirements",
            json::Value::integer(
                static_cast<int64_t>(S.SubtreeRetirements)));
      V.set("pair_evictions",
            json::Value::integer(static_cast<int64_t>(S.PairEvictions)));
      V.set("evicted_clauses",
            json::Value::integer(static_cast<int64_t>(S.EvictedClauses)));
      V.set("recycled_vars",
            json::Value::integer(static_cast<int64_t>(S.RecycledVars)));
      V.set("peak_live_vars",
            json::Value::integer(static_cast<int64_t>(S.PeakLiveVars)));
      V.set("peak_live_clauses",
            json::Value::integer(static_cast<int64_t>(S.PeakLiveClauses)));
      V.set("var_requests",
            json::Value::integer(static_cast<int64_t>(S.VarRequests)));
      V.set("peak_retained_clauses",
            json::Value::integer(
                static_cast<int64_t>(S.PeakRetainedClauses)));
      V.set("bridge_compactions",
            json::Value::integer(static_cast<int64_t>(S.BridgeCompactions)));
      V.set("released_atom_vars",
            json::Value::integer(static_cast<int64_t>(S.ReleasedAtomVars)));
      V.set("released_selectors",
            json::Value::integer(static_cast<int64_t>(S.ReleasedSelectors)));
      V.set("peak_live_bridges",
            json::Value::integer(static_cast<int64_t>(S.PeakLiveBridges)));
      V.set("selectors", json::Value::integer(S.Selectors));
      V.set("ms", json::Value::number(S.Millis));
      CatArr.push(std::move(V));
    }
    Root.set("catalog_stats", std::move(CatArr));
  }

  json::Value ResArr = json::Value::array();
  for (const JobRecord &J : Results) {
    json::Value R = json::Value::object();
    R.set("family", json::Value::string(J.Family));
    R.set("category", json::Value::string(J.Category));
    R.set("engine", json::Value::string(J.Engine));
    R.set("op1", json::Value::string(J.Op1));
    R.set("op2", json::Value::string(J.Op2));
    R.set("kind", json::Value::string(J.Kind));
    R.set("role", json::Value::string(J.Role));
    R.set("verified", json::Value::boolean(J.Verified));
    R.set("scenarios",
          json::Value::integer(static_cast<int64_t>(J.Scenarios)));
    R.set("ms", json::Value::number(J.Millis));
    if (J.Vcs != 0) {
      // Solver statistics only exist on the symbolic path.
      R.set("vcs", json::Value::integer(static_cast<int64_t>(J.Vcs)));
      R.set("sat_conflicts", json::Value::integer(J.Conflicts));
      R.set("max_vc_conflicts", json::Value::integer(J.MaxVcConflicts));
      R.set("retained_clauses",
            json::Value::integer(static_cast<int64_t>(J.RetainedClauses)));
      R.set("db_reductions",
            json::Value::integer(static_cast<int64_t>(J.DbReductions)));
      R.set("reclaimed_clauses",
            json::Value::integer(static_cast<int64_t>(J.ReclaimedClauses)));
      if (!J.ProofCore.empty())
        R.set("proof_core", json::Value::string(J.ProofCore));
      if (Certified) {
        R.set("proof_queries",
              json::Value::integer(static_cast<int64_t>(J.ProofQueries)));
        R.set("proof_clauses",
              json::Value::integer(static_cast<int64_t>(J.ProofClauses)));
        R.set("proof_checked", json::Value::boolean(J.ProofChecked));
      }
    }
    if (!J.Note.empty())
      R.set("note", json::Value::string(J.Note));
    ResArr.push(std::move(R));
  }
  Root.set("results", std::move(ResArr));
  return Root;
}

std::optional<Report> Report::fromJson(const json::Value &V) {
  if (!V.isObject())
    return std::nullopt;
  const json::Value &Tool = V["tool"];
  if (!Tool.isString() || Tool.asString() != "semcommute-verify")
    return std::nullopt;

  Report R;
  if (!V["threads"].isNumber() || !V["wall_ms"].isNumber())
    return std::nullopt;
  R.Threads = static_cast<unsigned>(V["threads"].asInt());
  R.WallMillis = V["wall_ms"].asDouble();
  if (const json::Value *C = V.find("certify"))
    R.Certified = C->isBool() && C->asBool();
  if (const json::Value *E = V.find("error"))
    R.Error = E->asString();

  const json::Value &S = V["scope"];
  if (!S.isObject())
    return std::nullopt;
  R.Bounds.SetUniverse = static_cast<int>(S["set_universe"].asInt());
  R.Bounds.MapKeys = static_cast<int>(S["map_keys"].asInt());
  R.Bounds.MapVals = static_cast<int>(S["map_vals"].asInt());
  R.Bounds.SeqVals = static_cast<int>(S["seq_vals"].asInt());
  R.Bounds.MaxSeqLen = static_cast<int>(S["max_seq_len"].asInt());
  R.Bounds.CounterRange = static_cast<int>(S["counter_range"].asInt());

  const json::Value &FamArr = V["families"];
  if (!FamArr.isArray())
    return std::nullopt;
  for (size_t I = 0; I != FamArr.size(); ++I) {
    const json::Value &F = FamArr.at(I);
    FamilySummary Sum;
    Sum.Family = F["family"].asString();
    Sum.Jobs = static_cast<unsigned>(F["jobs"].asInt());
    Sum.Failures = static_cast<unsigned>(F["failures"].asInt());
    Sum.PaperConditions =
        static_cast<unsigned>(F["paper_conditions"].asInt());
    Sum.JobMillis = F["job_ms"].asDouble();
    Sum.Scenarios = static_cast<uint64_t>(F["scenarios"].asInt());
    if (const json::Value *V2 = F.find("vcs"))
      Sum.Vcs = static_cast<uint64_t>(V2->asInt());
    if (const json::Value *V2 = F.find("sat_conflicts"))
      Sum.Conflicts = V2->asInt();
    if (const json::Value *V2 = F.find("retained_clauses"))
      Sum.RetainedClauses = static_cast<uint64_t>(V2->asInt());
    if (const json::Value *V2 = F.find("db_reductions"))
      Sum.DbReductions = static_cast<uint64_t>(V2->asInt());
    if (const json::Value *V2 = F.find("reclaimed_clauses"))
      Sum.ReclaimedClauses = static_cast<uint64_t>(V2->asInt());
    R.Families.push_back(std::move(Sum));
  }

  if (const json::Value *PairArr = V.find("pair_stats")) {
    if (!PairArr->isArray())
      return std::nullopt;
    for (size_t I = 0; I != PairArr->size(); ++I) {
      const json::Value &P = PairArr->at(I);
      PairStats S;
      S.Family = P["family"].asString();
      S.Op1 = P["op1"].asString();
      S.Op2 = P["op2"].asString();
      S.Mode = P["mode"].asString();
      S.Methods = static_cast<unsigned>(P["methods"].asInt());
      S.Vcs = static_cast<uint64_t>(P["vcs"].asInt());
      S.Checks = static_cast<uint64_t>(P["checks"].asInt());
      S.Conflicts = P["sat_conflicts"].asInt();
      S.RetainedClauses =
          static_cast<uint64_t>(P["retained_clauses"].asInt());
      S.DbReductions = static_cast<uint64_t>(P["db_reductions"].asInt());
      S.ReclaimedClauses =
          static_cast<uint64_t>(P["reclaimed_clauses"].asInt());
      S.Selectors = static_cast<unsigned>(P["selectors"].asInt());
      S.SessionsOpened = static_cast<uint64_t>(P["sessions"].asInt());
      S.Millis = P["ms"].asDouble();
      R.Pairs.push_back(std::move(S));
    }
  }

  if (const json::Value *FamSessArr = V.find("family_stats")) {
    if (!FamSessArr->isArray())
      return std::nullopt;
    for (size_t I = 0; I != FamSessArr->size(); ++I) {
      const json::Value &P = FamSessArr->at(I);
      FamilyStats S;
      S.Family = P["family"].asString();
      S.Mode = P["mode"].asString();
      S.Pairs = static_cast<unsigned>(P["pairs"].asInt());
      S.Methods = static_cast<unsigned>(P["methods"].asInt());
      S.Vcs = static_cast<uint64_t>(P["vcs"].asInt());
      S.Checks = static_cast<uint64_t>(P["checks"].asInt());
      S.Conflicts = P["sat_conflicts"].asInt();
      S.PrefixAsserts = static_cast<uint64_t>(P["prefix_asserts"].asInt());
      S.PrefixReuses = static_cast<uint64_t>(P["prefix_reuses"].asInt());
      S.PeakRetainedClauses =
          static_cast<uint64_t>(P["peak_retained_clauses"].asInt());
      S.Evictions = static_cast<uint64_t>(P["evictions"].asInt());
      S.EvictedClauses =
          static_cast<uint64_t>(P["evicted_clauses"].asInt());
      S.DbReductions = static_cast<uint64_t>(P["db_reductions"].asInt());
      S.ReclaimedClauses =
          static_cast<uint64_t>(P["reclaimed_clauses"].asInt());
      S.Selectors = static_cast<unsigned>(P["selectors"].asInt());
      S.Millis = P["ms"].asDouble();
      R.FamilySessions.push_back(std::move(S));
    }
  }

  if (const json::Value *CatArr = V.find("catalog_stats")) {
    if (!CatArr->isArray())
      return std::nullopt;
    for (size_t I = 0; I != CatArr->size(); ++I) {
      const json::Value &P = CatArr->at(I);
      CatalogStats S;
      S.Mode = P["mode"].asString();
      S.FamilyNames = P["family_names"].asString();
      S.Families = static_cast<unsigned>(P["families"].asInt());
      S.Pairs = static_cast<unsigned>(P["pairs"].asInt());
      S.Methods = static_cast<unsigned>(P["methods"].asInt());
      S.Vcs = static_cast<uint64_t>(P["vcs"].asInt());
      S.Checks = static_cast<uint64_t>(P["checks"].asInt());
      S.Conflicts = P["sat_conflicts"].asInt();
      S.PrefixAsserts = static_cast<uint64_t>(P["prefix_asserts"].asInt());
      S.PrefixReuses = static_cast<uint64_t>(P["prefix_reuses"].asInt());
      S.SubtreeRetirements =
          static_cast<uint64_t>(P["subtree_retirements"].asInt());
      S.PairEvictions = static_cast<uint64_t>(P["pair_evictions"].asInt());
      S.EvictedClauses =
          static_cast<uint64_t>(P["evicted_clauses"].asInt());
      S.RecycledVars = static_cast<uint64_t>(P["recycled_vars"].asInt());
      S.PeakLiveVars = static_cast<uint64_t>(P["peak_live_vars"].asInt());
      S.PeakLiveClauses =
          static_cast<uint64_t>(P["peak_live_clauses"].asInt());
      S.VarRequests = static_cast<uint64_t>(P["var_requests"].asInt());
      S.PeakRetainedClauses =
          static_cast<uint64_t>(P["peak_retained_clauses"].asInt());
      // Bridge-compaction counters arrived with --compact-bridges; older
      // reports simply lack them.
      if (const json::Value *BC = P.find("bridge_compactions"))
        S.BridgeCompactions = static_cast<uint64_t>(BC->asInt());
      if (const json::Value *RA = P.find("released_atom_vars"))
        S.ReleasedAtomVars = static_cast<uint64_t>(RA->asInt());
      if (const json::Value *RS = P.find("released_selectors"))
        S.ReleasedSelectors = static_cast<uint64_t>(RS->asInt());
      if (const json::Value *PB = P.find("peak_live_bridges"))
        S.PeakLiveBridges = static_cast<uint64_t>(PB->asInt());
      S.Selectors = static_cast<unsigned>(P["selectors"].asInt());
      S.Millis = P["ms"].asDouble();
      R.CatalogSessions.push_back(std::move(S));
    }
  }

  const json::Value &ResArr = V["results"];
  if (!ResArr.isArray())
    return std::nullopt;
  for (size_t I = 0; I != ResArr.size(); ++I) {
    const json::Value &Res = ResArr.at(I);
    JobRecord J;
    J.Family = Res["family"].asString();
    J.Category = Res["category"].asString();
    if (const json::Value *Eng = Res.find("engine"))
      J.Engine = Eng->asString();
    else
      J.Engine = engineKindName(EngineKind::Exhaustive);
    J.Op1 = Res["op1"].asString();
    J.Op2 = Res["op2"].asString();
    J.Kind = Res["kind"].asString();
    J.Role = Res["role"].asString();
    J.Verified = Res["verified"].isBool() && Res["verified"].asBool();
    J.Scenarios = static_cast<uint64_t>(Res["scenarios"].asInt());
    J.Millis = Res["ms"].asDouble();
    if (const json::Value *V2 = Res.find("vcs"))
      J.Vcs = static_cast<uint64_t>(V2->asInt());
    if (const json::Value *V2 = Res.find("sat_conflicts"))
      J.Conflicts = V2->asInt();
    if (const json::Value *V2 = Res.find("max_vc_conflicts"))
      J.MaxVcConflicts = V2->asInt();
    if (const json::Value *V2 = Res.find("retained_clauses"))
      J.RetainedClauses = static_cast<uint64_t>(V2->asInt());
    if (const json::Value *V2 = Res.find("db_reductions"))
      J.DbReductions = static_cast<uint64_t>(V2->asInt());
    if (const json::Value *V2 = Res.find("reclaimed_clauses"))
      J.ReclaimedClauses = static_cast<uint64_t>(V2->asInt());
    if (const json::Value *Core = Res.find("proof_core"))
      J.ProofCore = Core->asString();
    if (const json::Value *V2 = Res.find("proof_queries"))
      J.ProofQueries = static_cast<uint64_t>(V2->asInt());
    if (const json::Value *V2 = Res.find("proof_clauses"))
      J.ProofClauses = static_cast<uint64_t>(V2->asInt());
    if (const json::Value *V2 = Res.find("proof_checked"))
      J.ProofChecked = V2->isBool() && V2->asBool();
    if (const json::Value *Note = Res.find("note"))
      J.Note = Note->asString();
    R.Results.push_back(std::move(J));
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Summary rendering
//===----------------------------------------------------------------------===//

std::string driver::renderSummary(const Report &R) {
  if (!R.Error.empty())
    return "error: " + R.Error + "\n";
  char Buf[256];
  std::string Out;
  std::snprintf(Buf, sizeof(Buf),
                "%-12s %8s %10s %14s %12s %10s\n", "family", "jobs",
                "failures", "conditions", "scenarios", "job ms");
  Out += Buf;
  unsigned TotalJobs = 0, TotalFailures = 0, TotalConds = 0;
  uint64_t TotalScenarios = 0;
  double TotalMillis = 0;
  for (const FamilySummary &S : R.Families) {
    std::snprintf(Buf, sizeof(Buf), "%-12s %8u %10u %14u %12llu %10.1f\n",
                  S.Family.c_str(), S.Jobs, S.Failures, S.PaperConditions,
                  static_cast<unsigned long long>(S.Scenarios), S.JobMillis);
    Out += Buf;
    TotalJobs += S.Jobs;
    TotalFailures += S.Failures;
    TotalConds += S.PaperConditions;
    TotalScenarios += S.Scenarios;
    TotalMillis += S.JobMillis;
  }
  std::snprintf(Buf, sizeof(Buf), "%-12s %8u %10u %14u %12llu %10.1f\n",
                "total", TotalJobs, TotalFailures, TotalConds,
                static_cast<unsigned long long>(TotalScenarios), TotalMillis);
  Out += Buf;
  uint64_t TotalVcs = 0, PeakRetained = 0, TotalReductions = 0,
           TotalReclaimed = 0;
  int64_t TotalConflicts = 0;
  for (const FamilySummary &S : R.Families) {
    TotalVcs += S.Vcs;
    TotalConflicts += S.Conflicts;
    PeakRetained = std::max(PeakRetained, S.RetainedClauses);
    TotalReductions += S.DbReductions;
    TotalReclaimed += S.ReclaimedClauses;
  }
  if (TotalVcs != 0) {
    std::snprintf(Buf, sizeof(Buf),
                  "symbolic path: %llu VCs discharged, %lld CDCL "
                  "conflicts, peak %llu retained clauses\n",
                  static_cast<unsigned long long>(TotalVcs),
                  static_cast<long long>(TotalConflicts),
                  static_cast<unsigned long long>(PeakRetained));
    Out += Buf;
    if (!R.Pairs.empty()) {
      uint64_t Sessions = 0, Checks = 0;
      for (const PairStats &P : R.Pairs) {
        Sessions += P.SessionsOpened;
        Checks += P.Checks;
      }
      std::snprintf(Buf, sizeof(Buf),
                    "pair sessions: %zu pairs, %llu sessions, %llu checks, "
                    "%llu clause-GC runs reclaiming %llu clauses\n",
                    R.Pairs.size(),
                    static_cast<unsigned long long>(Sessions),
                    static_cast<unsigned long long>(Checks),
                    static_cast<unsigned long long>(TotalReductions),
                    static_cast<unsigned long long>(TotalReclaimed));
      Out += Buf;
    }
    if (!R.FamilySessions.empty()) {
      uint64_t Evictions = 0, Evicted = 0, Peak = 0, Reuses = 0;
      for (const FamilyStats &S : R.FamilySessions) {
        Evictions += S.Evictions;
        Evicted += S.EvictedClauses;
        Peak = std::max(Peak, S.PeakRetainedClauses);
        Reuses += S.PrefixReuses;
      }
      std::snprintf(Buf, sizeof(Buf),
                    "family sessions: %zu families, %llu pair evictions "
                    "dropping %llu clauses, peak %llu retained, %llu "
                    "prefix-assert reuses\n",
                    R.FamilySessions.size(),
                    static_cast<unsigned long long>(Evictions),
                    static_cast<unsigned long long>(Evicted),
                    static_cast<unsigned long long>(Peak),
                    static_cast<unsigned long long>(Reuses));
      Out += Buf;
    }
    if (!R.CatalogSessions.empty()) {
      uint64_t Subtrees = 0, Recycled = 0, PeakVars = 0, Demand = 0,
               PeakCls = 0;
      for (const CatalogStats &S : R.CatalogSessions) {
        Subtrees += S.SubtreeRetirements;
        Recycled += S.RecycledVars;
        PeakVars = std::max(PeakVars, S.PeakLiveVars);
        PeakCls = std::max(PeakCls, S.PeakLiveClauses);
        Demand += S.VarRequests;
      }
      std::snprintf(Buf, sizeof(Buf),
                    "catalog sessions: %zu sessions, %llu family-subtree "
                    "retirements, %llu vars recycled (peak %llu live of "
                    "%llu requested), peak %llu live clauses\n",
                    R.CatalogSessions.size(),
                    static_cast<unsigned long long>(Subtrees),
                    static_cast<unsigned long long>(Recycled),
                    static_cast<unsigned long long>(PeakVars),
                    static_cast<unsigned long long>(Demand),
                    static_cast<unsigned long long>(PeakCls));
      Out += Buf;
    }
  }
  if (R.Certified) {
    size_t CertJobs = 0, CertOk = 0;
    uint64_t CertQueries = 0, CertPeak = 0;
    for (const JobRecord &J : R.Results) {
      if (J.Engine != engineKindName(EngineKind::Symbolic))
        continue;
      ++CertJobs;
      CertOk += J.ProofChecked;
      CertQueries += J.ProofQueries;
      CertPeak = std::max(CertPeak, J.ProofClauses);
    }
    std::snprintf(Buf, sizeof(Buf),
                  "certified: %zu/%zu symbolic jobs proof-checked, %llu "
                  "certificates, peak %llu checker clauses\n",
                  CertOk, CertJobs,
                  static_cast<unsigned long long>(CertQueries),
                  static_cast<unsigned long long>(CertPeak));
    Out += Buf;
  }
  std::snprintf(Buf, sizeof(Buf),
                "wall time %.1f ms on %u thread%s; %u verification "
                "failure%s\n",
                R.WallMillis, R.Threads, R.Threads == 1 ? "" : "s",
                TotalFailures, TotalFailures == 1 ? "" : "s");
  Out += Buf;
  return Out;
}
