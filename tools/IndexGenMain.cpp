//===- tools/IndexGenMain.cpp - The semcommute-indexgen CLI ----------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline generator for the compiled commutativity index: compiles every
/// catalog condition to bitmap/bytecode form, always proves the image
/// round-trips (serialize -> parse -> re-serialize, byte-identical), and
/// optionally fuzz-cross-checks the compiled programs against the tree
/// interpreter before writing anything:
///
///   semcommute-indexgen --out index.scidx            # generate + write
///   semcommute-indexgen --selfcheck 64 --threads 8   # fuzz, no output file
///   semcommute-indexgen --json                       # stats as JSON
///
/// Exit status: 0 success, 1 self-check failure (mismatch, unsupported
/// slot, or round-trip break), 2 usage/IO error.
///
//===----------------------------------------------------------------------===//

#include "index/CommutativityIndex.h"
#include "index/IndexFuzz.h"

#include "logic/ExprFactory.h"
#include "support/Json.h"
#include "support/Timing.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

using namespace semcomm;
using namespace semcomm::index;

namespace {

void printUsage(FILE *Out) {
  std::fprintf(
      Out,
      "usage: semcommute-indexgen [options]\n"
      "\n"
      "Compiles the 765-condition catalog into the commutativity index\n"
      "(constant bitmaps + branch-free bytecode), verifies the image\n"
      "round-trips through the serializer, and optionally cross-checks\n"
      "every compiled program against the reference interpreter.\n"
      "\n"
      "options:\n"
      "  --out FILE       write the serialized index image to FILE\n"
      "  --selfcheck N    fuzz N random environments per condition slot\n"
      "                   against the interpreter (0 disables; default 16)\n"
      "  --threads N      self-check worker threads (default 1)\n"
      "  --seed S         self-check RNG seed (default 12441)\n"
      "  --json           print generation statistics as JSON on stdout\n"
      "  --quiet          suppress the human-readable summary\n"
      "  --help           this text\n");
}

} // namespace

int main(int argc, char **argv) {
  std::string OutFile;
  unsigned SelfCheck = 16;
  unsigned Threads = 1;
  uint64_t Seed = 12441;
  bool Json = false;
  bool Quiet = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "semcommute-indexgen: %s requires a value\n",
                     Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (Arg == "--help" || Arg == "-h") {
      printUsage(stdout);
      return 0;
    }
    if (Arg == "--out") {
      OutFile = NextValue("--out");
      continue;
    }
    if (Arg == "--selfcheck") {
      SelfCheck = static_cast<unsigned>(std::atoi(NextValue("--selfcheck")));
      continue;
    }
    if (Arg == "--threads") {
      int N = std::atoi(NextValue("--threads"));
      if (N < 1) {
        std::fprintf(stderr, "semcommute-indexgen: --threads must be >= 1\n");
        return 2;
      }
      Threads = static_cast<unsigned>(N);
      continue;
    }
    if (Arg == "--seed") {
      Seed = static_cast<uint64_t>(std::strtoull(NextValue("--seed"),
                                                 nullptr, 10));
      continue;
    }
    if (Arg == "--json") {
      Json = true;
      continue;
    }
    if (Arg == "--quiet") {
      Quiet = true;
      continue;
    }
    std::fprintf(stderr, "semcommute-indexgen: unknown option '%s'\n",
                 Arg.c_str());
    printUsage(stderr);
    return 2;
  }

  ExprFactory F;
  Catalog Cat(F);

  Stopwatch CompileTimer;
  CommutativityIndex Idx = CommutativityIndex::compile(Cat);
  double CompileMs = CompileTimer.millis();
  IndexStats Stats = Idx.stats();

  // The round-trip proof is not optional: an image that does not reload
  // identically must never be shipped.
  Stopwatch RoundTripTimer;
  std::string Image = Idx.serialize();
  std::optional<CommutativityIndex> Reloaded = CommutativityIndex::parse(Image);
  bool RoundTripOk = Reloaded && *Reloaded == Idx &&
                     Reloaded->serialize() == Image;
  double RoundTripMs = RoundTripTimer.millis();

  FuzzReport Fuzz;
  double FuzzMs = 0;
  if (SelfCheck > 0) {
    Stopwatch FuzzTimer;
    // Cross-check the *reloaded* index, so the fuzz covers the serializer
    // too, not just the compiler.
    Fuzz = crossCheck(Cat, RoundTripOk ? *Reloaded : Idx, Seed, SelfCheck,
                      Threads);
    FuzzMs = FuzzTimer.millis();
  }

  bool Ok = RoundTripOk && Fuzz.clean();

  if (Ok && !OutFile.empty()) {
    std::ofstream Out(OutFile, std::ios::binary);
    if (!Out || !(Out << Image) || !Out.flush()) {
      std::fprintf(stderr, "semcommute-indexgen: cannot write '%s'\n",
                   OutFile.c_str());
      return 2;
    }
  }

  if (Json) {
    json::Value Doc = json::Value::object();
    Doc.set("paper_conditions", json::Value::integer(Stats.PaperConditions));
    Doc.set("total_slots", json::Value::integer(Stats.TotalSlots));
    Doc.set("programs", json::Value::integer(Stats.Programs));
    Doc.set("constants", json::Value::integer(Stats.Constants));
    Doc.set("fallbacks", json::Value::integer(Stats.Fallbacks));
    Doc.set("constant_fraction", json::Value::number(Stats.constantFraction()));
    Doc.set("max_regs", json::Value::integer(Stats.MaxRegs));
    Doc.set("total_instructions",
            json::Value::integer(Stats.TotalInstructions));
    Doc.set("image_bytes", json::Value::integer(
                               static_cast<int64_t>(Image.size())));
    Doc.set("compile_ms", json::Value::number(CompileMs));
    Doc.set("round_trip_ok", json::Value::boolean(RoundTripOk));
    Doc.set("round_trip_ms", json::Value::number(RoundTripMs));
    json::Value FuzzDoc = json::Value::object();
    FuzzDoc.set("trials_per_condition", json::Value::integer(SelfCheck));
    FuzzDoc.set("threads", json::Value::integer(Threads));
    FuzzDoc.set("seed", json::Value::integer(static_cast<int64_t>(Seed)));
    FuzzDoc.set("trials", json::Value::integer(
                              static_cast<int64_t>(Fuzz.Trials)));
    FuzzDoc.set("program_trials",
                json::Value::integer(
                    static_cast<int64_t>(Fuzz.ProgramsChecked)));
    FuzzDoc.set("constant_trials",
                json::Value::integer(
                    static_cast<int64_t>(Fuzz.ConstantsChecked)));
    FuzzDoc.set("unsupported_slots",
                json::Value::integer(
                    static_cast<int64_t>(Fuzz.UnsupportedSlots)));
    FuzzDoc.set("mismatches", json::Value::integer(
                                  static_cast<int64_t>(Fuzz.Mismatches)));
    FuzzDoc.set("elapsed_ms", json::Value::number(FuzzMs));
    Doc.set("selfcheck", std::move(FuzzDoc));
    Doc.set("ok", json::Value::boolean(Ok));
    std::printf("%s\n", Doc.dump(2).c_str());
  }

  if (!Quiet) {
    std::fprintf(stderr,
                 "semcommute-indexgen: %u paper conditions -> %u slots "
                 "(%u programs, %u constant [%.1f%%], %u fallbacks), "
                 "%u instructions, max %u regs, %zu-byte image, "
                 "compiled in %.2f ms\n",
                 Stats.PaperConditions, Stats.TotalSlots, Stats.Programs,
                 Stats.Constants, 100.0 * Stats.constantFraction(),
                 Stats.Fallbacks, Stats.TotalInstructions, Stats.MaxRegs,
                 Image.size(), CompileMs);
    std::fprintf(stderr, "semcommute-indexgen: round-trip %s (%.2f ms)\n",
                 RoundTripOk ? "ok" : "FAILED", RoundTripMs);
    if (SelfCheck > 0) {
      std::fprintf(stderr,
                   "semcommute-indexgen: self-check %llu trials "
                   "(%llu program, %llu constant) on %u thread(s): "
                   "%llu mismatches, %llu unsupported slots (%.2f ms)\n",
                   static_cast<unsigned long long>(Fuzz.Trials),
                   static_cast<unsigned long long>(Fuzz.ProgramsChecked),
                   static_cast<unsigned long long>(Fuzz.ConstantsChecked),
                   Threads,
                   static_cast<unsigned long long>(Fuzz.Mismatches),
                   static_cast<unsigned long long>(Fuzz.UnsupportedSlots),
                   FuzzMs);
      for (const std::string &Diag : Fuzz.Diagnostics)
        std::fprintf(stderr, "semcommute-indexgen:   mismatch: %s\n",
                     Diag.c_str());
    }
    if (Ok && !OutFile.empty())
      std::fprintf(stderr, "semcommute-indexgen: wrote '%s'\n",
                   OutFile.c_str());
  }

  return Ok ? 0 : 1;
}
