//===- tools/LintMain.cpp - The semcommute-lint CLI -------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static auditor for the catalog's logic IR and session scripts — no SAT
/// search, machine-readable findings, nonzero exit on violation:
///
///   semcommute-lint                      # lint the shipped catalog
///   semcommute-lint --families Set,Map   # restrict to families
///   semcommute-lint --json               # findings as JSON on stdout
///   semcommute-lint --list-checks        # diagnostic codes
///   semcommute-lint --seed-violation ill-sorted   # CI fixture runs
///
/// Exit status: 0 clean, 1 findings reported, 2 usage error.
///
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

#include "logic/ExprFactory.h"
#include "spec/Family.h"
#include "support/Json.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace semcomm;

namespace {

void printUsage(FILE *Out) {
  std::fprintf(
      Out,
      "usage: semcommute-lint [options]\n"
      "\n"
      "Statically audits the commutativity-condition catalog and the\n"
      "catalog-session discipline without running the solver: formula\n"
      "sorts and vocabulary, the catalog-common hoisting rule, Tseitin\n"
      "scope ownership, selector lifecycle, and assumption labels.\n"
      "\n"
      "options:\n"
      "  --families A,B,...    lint only the named families\n"
      "                        (all, Accumulator, Set, Map, ArrayList)\n"
      "  --seq-bound N         ArrayList case-split bound (default 3)\n"
      "  --json                emit findings as JSON on stdout\n"
      "  --list-checks         print the diagnostic codes and exit\n"
      "  --seed-violation K    run the seeded-violation fixture K instead\n"
      "                        of the catalog (CI uses this to prove the\n"
      "                        lint still rejects known-bad inputs)\n"
      "  --help                this text\n");
  std::fprintf(Out, "\nseeded violations:");
  for (lint::SeededViolation V : lint::allSeededViolations())
    std::fprintf(Out, " %s", lint::seededViolationName(V));
  std::fprintf(Out, "\n");
}

std::vector<std::string> splitCommas(const std::string &S) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (Start <= S.size()) {
    size_t Comma = S.find(',', Start);
    if (Comma == std::string::npos)
      Comma = S.size();
    if (Comma > Start)
      Out.push_back(S.substr(Start, Comma - Start));
    Start = Comma + 1;
  }
  return Out;
}

void renderFindings(const std::vector<lint::Finding> &Findings, bool Json) {
  if (Json) {
    json::Value Doc = json::Value::array();
    for (const lint::Finding &F : Findings) {
      json::Value Obj = json::Value::object();
      Obj.set("code", json::Value::string(F.Code));
      Obj.set("where", json::Value::string(F.Where));
      Obj.set("message", json::Value::string(F.Message));
      Doc.push(std::move(Obj));
    }
    std::printf("%s\n", Doc.dump(2).c_str());
    return;
  }
  for (const lint::Finding &F : Findings)
    std::printf("%s: %s: %s\n", F.Code.c_str(), F.Where.c_str(),
                F.Message.c_str());
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> FamilyNames;
  int SeqLenBound = 3;
  bool Json = false;
  bool HaveSeed = false;
  lint::SeededViolation Seed = lint::SeededViolation::IllSorted;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "semcommute-lint: %s requires a value\n", Flag);
        std::exit(2);
      }
      return argv[++I];
    };
    if (Arg == "--help" || Arg == "-h") {
      printUsage(stdout);
      return 0;
    }
    if (Arg == "--list-checks") {
      for (const lint::CheckInfo &C : lint::checks())
        std::printf("%s  %s\n", C.Code, C.Summary);
      return 0;
    }
    if (Arg == "--families") {
      FamilyNames = splitCommas(NextValue("--families"));
      // "all" mirrors semcommute-verify: lint every family (the default).
      if (FamilyNames.size() == 1 && FamilyNames[0] == "all")
        FamilyNames.clear();
      continue;
    }
    if (Arg == "--seq-bound") {
      SeqLenBound = std::atoi(NextValue("--seq-bound"));
      if (SeqLenBound < 0) {
        std::fprintf(stderr, "semcommute-lint: --seq-bound must be >= 0\n");
        return 2;
      }
      continue;
    }
    if (Arg == "--json") {
      Json = true;
      continue;
    }
    if (Arg == "--seed-violation") {
      std::string Name = NextValue("--seed-violation");
      if (!lint::parseSeededViolation(Name, Seed)) {
        std::fprintf(stderr,
                     "semcommute-lint: unknown seeded violation '%s'\n",
                     Name.c_str());
        return 2;
      }
      HaveSeed = true;
      continue;
    }
    std::fprintf(stderr, "semcommute-lint: unknown option '%s'\n",
                 Arg.c_str());
    printUsage(stderr);
    return 2;
  }

  // Validate family names before doing any work.
  for (const std::string &Name : FamilyNames) {
    bool Known = false;
    for (const Family *Fam : allFamilies())
      Known = Known || Fam->Name == Name;
    if (!Known) {
      std::fprintf(stderr, "semcommute-lint: unknown family '%s'\n",
                   Name.c_str());
      return 2;
    }
  }

  ExprFactory F;

  if (HaveSeed) {
    std::vector<lint::Finding> Findings =
        lint::seededViolationFindings(F, Seed);
    renderFindings(Findings, Json);
    if (!Json)
      std::fprintf(stderr, "semcommute-lint: seeded fixture '%s': %zu "
                           "finding(s)\n",
                   lint::seededViolationName(Seed), Findings.size());
    return Findings.empty() ? 0 : 1;
  }

  lint::LintResult R = lint::lintCatalog(F, SeqLenBound, FamilyNames);
  renderFindings(R.Findings, Json);
  if (!Json)
    std::fprintf(stderr,
                 "semcommute-lint: %llu entries, %llu formulas, %llu hoisted "
                 "prefixes, %llu method plans, %llu session events audited: "
                 "%zu finding(s)\n",
                 static_cast<unsigned long long>(R.EntriesChecked),
                 static_cast<unsigned long long>(R.FormulasChecked),
                 static_cast<unsigned long long>(R.HoistedChecked),
                 static_cast<unsigned long long>(R.MethodsChecked),
                 static_cast<unsigned long long>(R.AuditEvents),
                 R.Findings.size());
  return R.Findings.empty() ? 0 : 1;
}
