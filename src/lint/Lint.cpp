//===- lint/Lint.cpp - Static auditor for the scope/hoist discipline --------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

#include "commute/SymbolicEngine.h"
#include "logic/Printer.h"
#include "smt/SmtSolver.h"
#include "spec/Family.h"

#include <algorithm>

using namespace semcomm;
using namespace semcomm::lint;

//===----------------------------------------------------------------------===//
// Check registry
//===----------------------------------------------------------------------===//

const std::vector<CheckInfo> &lint::checks() {
  static const std::vector<CheckInfo> Checks = {
      {"SORT01", "formula is ill-sorted or uses one variable name at two "
                 "different sorts within one entry"},
      {"HOIST01", "catalog-common (hoisted) formula mentions a variable of "
                  "an entry that does not assert it"},
      {"SCOPE01", "Tseitin definition referenced across sibling scope "
                  "layers (not on the ancestor chain)"},
      {"SCOPE02", "scope selector name reused after it was already opened "
                  "(retired selectors never come back)"},
      {"SCOPE03", "assertion or check names a scope selector that was "
                  "already retired"},
      {"LABEL01", "assumption label empty, contains a reserved delimiter, "
                  "or duplicates another label in its check"},
  };
  return Checks;
}

//===----------------------------------------------------------------------===//
// SORT01
//===----------------------------------------------------------------------===//

std::string lint::varKey(const std::string &Name, Sort S) {
  return Name + "#" + std::to_string(static_cast<int>(S));
}

void lint::collectVars(ExprRef E, std::set<std::string> &Out) {
  if (E->kind() == ExprKind::Var) {
    Out.insert(varKey(E->name(), E->sort()));
    return;
  }
  for (ExprRef Op : E->operands())
    collectVars(Op, Out);
}

namespace {

/// Expected operand-sort shape of one node kind; Sort::Bool stands in for
/// "any" on the kinds checked specially below.
void checkNodeSorts(ExprRef E, const std::string &Where,
                    std::vector<Finding> &Out) {
  auto Bad = [&](const std::string &Msg) {
    Out.push_back({"SORT01", Where, Msg + " in " + printAbstract(E)});
  };
  auto WantOps = [&](Sort S, const char *What) {
    for (ExprRef Op : E->operands())
      if (Op->sort() != S)
        Bad(std::string(What) + " operand has sort " +
            sortName(Op->sort()) + ", expected " + sortName(S));
  };
  auto WantSort = [&](Sort S) {
    if (E->sort() != S)
      Bad(std::string("node sort is ") + sortName(E->sort()) +
          ", expected " + sortName(S));
  };

  switch (E->kind()) {
  case ExprKind::ConstBool:
    WantSort(Sort::Bool);
    break;
  case ExprKind::ConstInt:
    WantSort(Sort::Int);
    break;
  case ExprKind::ConstNull:
    WantSort(Sort::Obj);
    break;
  case ExprKind::Var:
    break; // Any sort; cross-occurrence coherence is checked separately.
  case ExprKind::Add:
  case ExprKind::Sub:
  case ExprKind::Neg:
    WantOps(Sort::Int, "arithmetic");
    WantSort(Sort::Int);
    break;
  case ExprKind::Eq:
    if (E->operand(0)->sort() != E->operand(1)->sort())
      Bad(std::string("equality between sorts ") +
          sortName(E->operand(0)->sort()) + " and " +
          sortName(E->operand(1)->sort()));
    WantSort(Sort::Bool);
    break;
  case ExprKind::Lt:
  case ExprKind::Le:
    WantOps(Sort::Int, "comparison");
    WantSort(Sort::Bool);
    break;
  case ExprKind::Not:
  case ExprKind::And:
  case ExprKind::Or:
  case ExprKind::Implies:
  case ExprKind::Iff:
    WantOps(Sort::Bool, "connective");
    WantSort(Sort::Bool);
    break;
  case ExprKind::Ite:
    if (E->operand(0)->sort() != Sort::Bool)
      Bad("ite condition is not boolean");
    if (E->operand(1)->sort() != E->operand(2)->sort() ||
        E->operand(1)->sort() != E->sort())
      Bad("ite branch sorts disagree");
    break;
  case ExprKind::SetContains:
  case ExprKind::MapHasKey:
    if (E->operand(0)->sort() != Sort::State)
      Bad("state query over a non-state operand");
    if (E->operand(1)->sort() != Sort::Obj)
      Bad("state query key/element is not an object");
    WantSort(Sort::Bool);
    break;
  case ExprKind::MapGet:
    if (E->operand(0)->sort() != Sort::State)
      Bad("state query over a non-state operand");
    if (E->operand(1)->sort() != Sort::Obj)
      Bad("map key is not an object");
    WantSort(Sort::Obj);
    break;
  case ExprKind::SeqAt:
    if (E->operand(0)->sort() != Sort::State)
      Bad("state query over a non-state operand");
    if (E->operand(1)->sort() != Sort::Int)
      Bad("sequence index is not an integer");
    WantSort(Sort::Obj);
    break;
  case ExprKind::SeqIndexOf:
  case ExprKind::SeqLastIndexOf:
    if (E->operand(0)->sort() != Sort::State)
      Bad("state query over a non-state operand");
    if (E->operand(1)->sort() != Sort::Obj)
      Bad("sequence element is not an object");
    WantSort(Sort::Int);
    break;
  case ExprKind::SeqLen:
  case ExprKind::StateSize:
  case ExprKind::CounterValue:
    if (E->operand(0)->sort() != Sort::State)
      Bad("state query over a non-state operand");
    WantSort(Sort::Int);
    break;
  case ExprKind::Forall:
  case ExprKind::Exists:
    if (E->operand(0)->sort() != Sort::Int ||
        E->operand(1)->sort() != Sort::Int)
      Bad("quantifier bounds are not integers");
    if (E->operand(2)->sort() != Sort::Bool)
      Bad("quantifier body is not boolean");
    WantSort(Sort::Bool);
    break;
  }
}

void checkSortsRec(ExprRef E, const std::string &Where,
                   std::set<ExprRef> &Visited, std::vector<Finding> &Out) {
  if (!Visited.insert(E).second)
    return; // Hash-consed DAG: each node once.
  checkNodeSorts(E, Where, Out);
  for (ExprRef Op : E->operands())
    checkSortsRec(Op, Where, Visited, Out);
}

/// Records every (name -> sort) occurrence of the Var leaves of \p E.
void collectVarSorts(ExprRef E, std::map<std::string, std::set<Sort>> &Out,
                     std::set<ExprRef> &Visited) {
  if (!Visited.insert(E).second)
    return;
  if (E->kind() == ExprKind::Var)
    Out[E->name()].insert(E->sort());
  for (ExprRef Op : E->operands())
    collectVarSorts(Op, Out, Visited);
}

} // namespace

void lint::checkFormulaSorts(ExprRef E, const std::string &Where,
                             std::vector<Finding> &Out) {
  std::set<ExprRef> Visited;
  checkSortsRec(E, Where, Visited, Out);
}

std::vector<Finding>
lint::checkVocabularyCoherence(const std::vector<ExprRef> &Formulas,
                               const std::string &Where) {
  std::vector<Finding> Out;
  std::map<std::string, std::set<Sort>> Sorts;
  std::set<ExprRef> Visited;
  for (ExprRef E : Formulas)
    collectVarSorts(E, Sorts, Visited);
  for (const auto &[Name, SortSet] : Sorts) {
    if (SortSet.size() < 2)
      continue;
    std::string List;
    for (Sort S : SortSet)
      List += std::string(List.empty() ? "" : ", ") + sortName(S);
    Out.push_back({"SORT01", Where,
                   "variable \"" + Name + "\" is used at sorts {" + List +
                       "} within one vocabulary; varKey-based disjointness "
                       "reasoning would treat these as different variables"});
  }
  return Out;
}

std::vector<Finding>
lint::checkCatalogSorts(const Catalog &C,
                        const std::vector<const Family *> &Fams) {
  std::vector<Finding> Out;
  for (const Family *Fam : Fams)
    for (const ConditionEntry &E : C.entries(*Fam)) {
      std::string Where = Fam->Name + " " + E.pairName();
      std::vector<ExprRef> Conds;
      for (ConditionKind K : {ConditionKind::Before, ConditionKind::Between,
                              ConditionKind::After}) {
        ExprRef Phi = E.get(K);
        if (!Phi)
          continue;
        Conds.push_back(Phi);
        checkFormulaSorts(
            Phi, Where + " " + conditionKindName(K), Out);
      }
      std::vector<Finding> Coherence = checkVocabularyCoherence(Conds, Where);
      Out.insert(Out.end(), Coherence.begin(), Coherence.end());
    }
  return Out;
}

//===----------------------------------------------------------------------===//
// HOIST01
//===----------------------------------------------------------------------===//

std::vector<Finding>
lint::checkHoistRule(const std::vector<ExprRef> &CatalogCommon,
                     const std::vector<HoistEntry> &Entries) {
  std::vector<Finding> Out;
  for (ExprRef G : CatalogCommon) {
    std::set<std::string> GVars;
    collectVars(G, GVars);
    for (const HoistEntry &E : Entries) {
      if (E.Common.count(G))
        continue; // The entry asserts it itself; the hoist changes nothing.
      std::string Overlap;
      for (const std::string &V : GVars)
        if (E.Vars.count(V))
          Overlap += (Overlap.empty() ? "" : ", ") + V;
      if (Overlap.empty())
        continue; // Vacuous for this entry: no shared variable.
      Out.push_back(
          {"HOIST01", E.Name,
           "hoisted formula " + printAbstract(G) +
               " mentions entry-local variable(s) {" + Overlap +
               "} but is not in the entry's own Common prefix; hoisting "
               "it to the session root could change this entry's verdict"});
    }
  }
  return Out;
}

std::vector<Finding>
lint::checkCatalogHoisting(const SymbolicEngine &Eng, const Catalog &C,
                           const std::vector<const Family *> &Fams) {
  CatalogPlan CP = Eng.planCatalog(C, Fams);
  std::vector<HoistEntry> Entries;
  for (const Family *Fam : Fams)
    for (const ConditionEntry &E : C.entries(*Fam)) {
      HoistEntry HE;
      HE.Name = Fam->Name + " " + E.pairName();
      // Variables from the *materialized* plans — deliberately not the
      // planner's entryVocabulary() approximation, so this cross-checks
      // the approximation instead of re-executing it.
      for (const MethodPlan &MP : Eng.planPair(E).Methods) {
        for (ExprRef Com : MP.Common) {
          HE.Common.insert(Com);
          collectVars(Com, HE.Vars);
        }
        for (const TaggedAssumption &A : MP.Scoped)
          collectVars(A.E, HE.Vars);
        for (const VcSplit &S : MP.Splits)
          for (const TaggedAssumption &A : S.Assumed)
            collectVars(A.E, HE.Vars);
      }
      Entries.push_back(std::move(HE));
    }
  return checkHoistRule(CP.CatalogCommon, Entries);
}

//===----------------------------------------------------------------------===//
// SCOPE01/02/03
//===----------------------------------------------------------------------===//

bool AuditAnalyzer::onAncestorChain(unsigned Found, unsigned Active) const {
  unsigned L = Active;
  for (;;) {
    if (L == Found)
      return true;
    if (L == 0)
      return false;
    auto It = LayerParent.find(L);
    if (It == LayerParent.end())
      return false; // Unknown layer: cannot be an ancestor.
    L = It->second;
  }
}

void AuditAnalyzer::feed(const audit::Event &E) {
  ++Events;
  switch (E.Kind) {
  case audit::EventKind::OpenScope:
    if (!Opened.insert(E.Scope).second)
      Findings.push_back(
          {"SCOPE02", E.Scope,
           "scope selector name reused; retired selectors are permanently "
           "false, so a re-opened scope must use a fresh epoch-suffixed "
           "name"});
    break;
  case audit::EventKind::Assert:
    if (Retired.count(E.Scope))
      Findings.push_back({"SCOPE03", E.Scope,
                          "assertion into a scope that was already retired"});
    break;
  case audit::EventKind::Check:
    for (const std::string &S : E.Scopes)
      if (Retired.count(S))
        Findings.push_back(
            {"SCOPE03", S, "check activated a scope that was already "
                           "retired; its selector is pinned false"});
    break;
  case audit::EventKind::Retire:
    Retired.insert(E.Scope);
    break;
  case audit::EventKind::PushLayer:
    LayerParent[E.Layer] = E.ActiveLayer;
    break;
  case audit::EventKind::DropLayer:
    DroppedLayers.insert(E.Layer);
    break;
  case audit::EventKind::Define:
    break; // Creation sites carry no cross-layer obligation.
  case audit::EventKind::Reference:
    if (!onAncestorChain(E.Layer, E.ActiveLayer))
      Findings.push_back(
          {"SCOPE01",
           "layer " + std::to_string(E.Layer) + " from layer " +
               std::to_string(E.ActiveLayer),
           "Tseitin definition referenced outside its layer's subtree; "
           "the definition may be evicted with its owning scope and the "
           "reference would dangle"});
    break;
  }
}

void AuditAnalyzer::drain(audit::Log &L) {
  for (const audit::Event &E : L.Events)
    feed(E);
  L.Events.clear();
}

std::vector<Finding> lint::checkAuditLog(const audit::Log &L) {
  AuditAnalyzer A;
  for (const audit::Event &E : L.Events)
    A.feed(E);
  return A.takeFindings();
}

//===----------------------------------------------------------------------===//
// LABEL01
//===----------------------------------------------------------------------===//

std::vector<Finding> lint::checkPlanLabels(const std::string &Where,
                                           const MethodPlan &MP) {
  std::vector<Finding> Out;
  auto BadShape = [&](const std::string &Label, const std::string &Ctx) {
    if (Label.empty()) {
      Out.push_back({"LABEL01", Where, Ctx + ": empty assumption label"});
      return;
    }
    if (Label.find(';') != std::string::npos ||
        Label.find('|') != std::string::npos)
      Out.push_back({"LABEL01", Where,
                     Ctx + ": label \"" + Label +
                         "\" contains a reserved delimiter (';' joins "
                         "countermodel atoms, '|' joins proof-tag "
                         "components)"});
  };

  for (const TaggedAssumption &A : MP.Scoped)
    BadShape(A.Label, "scoped prefix");

  for (size_t SI = 0; SI != MP.Splits.size(); ++SI) {
    const std::string Ctx = "split " + std::to_string(SI);
    // One check's core is attributed over the method selector's label
    // (the plan name) plus the split's assumption labels; a duplicate in
    // that namespace makes the attribution ambiguous.
    std::set<std::string> Seen{MP.Name};
    for (const TaggedAssumption &A : MP.Splits[SI].Assumed) {
      BadShape(A.Label, Ctx);
      if (!A.Label.empty() && !Seen.insert(A.Label).second)
        Out.push_back({"LABEL01", Where,
                       Ctx + ": duplicate assumption label \"" + A.Label +
                           "\" makes unsat-core attribution ambiguous"});
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Whole-catalog lint
//===----------------------------------------------------------------------===//

LintResult lint::lintCatalog(ExprFactory &F, int SeqLenBound,
                             const std::vector<std::string> &FamilyNames) {
  LintResult R;
  Catalog C(F);
  std::vector<const Family *> Fams;
  for (const Family *Fam : allFamilies())
    if (FamilyNames.empty() ||
        std::find(FamilyNames.begin(), FamilyNames.end(), Fam->Name) !=
            FamilyNames.end())
      Fams.push_back(Fam);

  auto Append = [&R](std::vector<Finding> Fs) {
    R.Findings.insert(R.Findings.end(),
                      std::make_move_iterator(Fs.begin()),
                      std::make_move_iterator(Fs.end()));
  };

  // 1. Sorts and vocabulary of every condition.
  Append(checkCatalogSorts(C, Fams));
  for (const Family *Fam : Fams) {
    R.EntriesChecked += C.entries(*Fam).size();
    for (const ConditionEntry &E : C.entries(*Fam))
      for (ConditionKind K : {ConditionKind::Before, ConditionKind::Between,
                              ConditionKind::After})
        R.FormulasChecked += E.get(K) != nullptr;
  }

  // 2. The catalog-common hoisting rule, against materialized plans. The
  //    conflict budget is irrelevant: the lint never solves.
  SymbolicEngine Eng(F, SeqLenBound, /*ConflictBudget=*/1,
                     SolveMode::SharedCatalog);
  CatalogPlan CP = Eng.planCatalog(C, Fams);
  R.HoistedChecked = CP.CatalogCommon.size();
  Append(checkCatalogHoisting(Eng, C, Fams));

  // 3+4. Label checks per materialized method plan, and a structural
  // replay of the catalog-session script through a real (audited,
  // non-solving) SmtSession: catalog-common at the root, one layer-owning
  // scope per family, one per pair, method scopes sharing their pair's
  // layer, every split encoded under its selector path, and pair/family
  // subtrees retired exactly as the production CatalogSession retires
  // them. The analyzer drains the event stream per pair so the log never
  // holds more than one pair's encoder traffic.
  audit::Log Log;
  AuditAnalyzer Analyzer;
  SmtSession Session(F);
  Session.setAuditLog(&Log);
  std::set<ExprRef> CatalogBase;
  for (ExprRef E : CP.CatalogCommon) {
    Session.assertBase(E);
    CatalogBase.insert(E);
  }
  for (size_t FI = 0; FI != Fams.size(); ++FI) {
    const FamilyPlan &FP = CP.Families[FI];
    ExprRef FamSel = F.var("__lint_f:" + FP.FamilyName, Sort::Bool);
    SmtSession::ScopeId FamScope =
        Session.openScope(FamSel, SmtSession::RootScope, /*OwnLayer=*/true);
    std::set<ExprRef> FamilyBase = CatalogBase;
    for (ExprRef E : FP.FamilyCommon)
      if (FamilyBase.insert(E).second)
        Session.assertInScope(FamScope, E);

    for (const ConditionEntry &E : C.entries(*Fams[FI])) {
      PairPlan PP = Eng.planPair(E);
      std::string PairWhere = FP.FamilyName + " " + PP.Key;
      ExprRef PairSel = F.var("__lint_p:" + PairWhere, Sort::Bool);
      SmtSession::ScopeId PairScope =
          Session.openScope(PairSel, FamScope, /*OwnLayer=*/true);
      std::set<ExprRef> PairBase;
      for (const MethodPlan &MP : PP.Methods) {
        Append(checkPlanLabels(PairWhere + " " + MP.Name, MP));
        ++R.MethodsChecked;

        ExprRef MSel =
            F.var("__lint_m:" + PairWhere + ":" + MP.Name, Sort::Bool);
        SmtSession::ScopeId MScope =
            Session.openScope(MSel, PairScope, /*OwnLayer=*/false);
        for (ExprRef Com : MP.Common)
          if (!FamilyBase.count(Com) && PairBase.insert(Com).second)
            Session.assertInScope(PairScope, Com);
        for (const TaggedAssumption &A : MP.Scoped)
          Session.assertInScope(MScope, A.E);

        std::vector<ExprRef> Sels{FamSel, PairSel, MSel};
        std::vector<ExprRef> Assumed;
        for (const VcSplit &S : MP.Splits) {
          Assumed.clear();
          for (const TaggedAssumption &A : S.Assumed)
            Assumed.push_back(A.E);
          Session.encodeForAudit(Assumed, Sels);
        }
      }
      Session.retireScope(PairScope);
      Analyzer.drain(Log);
    }
    Session.retireScope(FamScope);
    Analyzer.drain(Log);
  }
  R.AuditEvents = Analyzer.eventsSeen();
  Append(Analyzer.takeFindings());
  return R;
}

//===----------------------------------------------------------------------===//
// Seeded violations
//===----------------------------------------------------------------------===//

const char *lint::seededViolationName(SeededViolation V) {
  switch (V) {
  case SeededViolation::IllSorted:
    return "ill-sorted";
  case SeededViolation::MisHoisted:
    return "mis-hoisted";
  case SeededViolation::CrossSiblingReference:
    return "cross-sibling-reference";
  case SeededViolation::ReusedSelector:
    return "reused-selector";
  case SeededViolation::UseAfterRetire:
    return "use-after-retire";
  case SeededViolation::DuplicateLabel:
    return "duplicate-label";
  }
  return "<invalid>";
}

const std::vector<SeededViolation> &lint::allSeededViolations() {
  static const std::vector<SeededViolation> All = {
      SeededViolation::IllSorted,
      SeededViolation::MisHoisted,
      SeededViolation::CrossSiblingReference,
      SeededViolation::ReusedSelector,
      SeededViolation::UseAfterRetire,
      SeededViolation::DuplicateLabel,
  };
  return All;
}

bool lint::parseSeededViolation(const std::string &Name, SeededViolation &V) {
  for (SeededViolation S : allSeededViolations())
    if (Name == seededViolationName(S)) {
      V = S;
      return true;
    }
  return false;
}

std::vector<Finding> lint::seededViolationFindings(ExprFactory &F,
                                                   SeededViolation V) {
  switch (V) {
  case SeededViolation::IllSorted: {
    // "v1" at Int in one condition, at Obj in another — each factory-legal
    // alone, jointly an entry-vocabulary violation.
    std::vector<ExprRef> Formulas = {
        F.eq(F.var("v1", Sort::Int), F.intConst(0)),
        F.eq(F.var("v1", Sort::Obj), F.nullConst()),
    };
    return checkVocabularyCoherence(Formulas, "lint fixture entry");
  }
  case SeededViolation::MisHoisted: {
    // A hoisted formula over "x" and an entry whose plans mention "x"
    // without asserting the formula themselves.
    ExprRef G = F.lnot(F.eq(F.var("x", Sort::Obj), F.nullConst()));
    HoistEntry E;
    E.Name = "lint fixture entry";
    E.Vars.insert(varKey("x", Sort::Obj));
    return checkHoistRule({G}, {E});
  }
  case SeededViolation::CrossSiblingReference: {
    // Layers 1 and 2 are siblings under the root; a definition created in
    // 1 is referenced while 2 is active.
    audit::Log L;
    L.pushLayer(1, 0);
    L.pushLayer(2, 0);
    L.define(1);
    L.reference(/*FoundLayer=*/1, /*ActiveLayer=*/2);
    return checkAuditLog(L);
  }
  case SeededViolation::ReusedSelector: {
    audit::Log L;
    L.openScope("__sel_m@fix:p");
    L.retire("__sel_m@fix:p");
    L.openScope("__sel_m@fix:p"); // Same name, no epoch suffix.
    return checkAuditLog(L);
  }
  case SeededViolation::UseAfterRetire: {
    audit::Log L;
    L.openScope("__sel_m@fix:p");
    L.retire("__sel_m@fix:p");
    L.check({"__sel_m@fix:p"});
    return checkAuditLog(L);
  }
  case SeededViolation::DuplicateLabel: {
    MethodPlan MP;
    MP.Name = "fixture_method";
    VcSplit S;
    ExprRef A = F.eq(F.var("v1", Sort::Obj), F.nullConst());
    S.Assumed.push_back({A, "h1"});
    S.Assumed.push_back({F.lnot(A), "h1"}); // Duplicate label.
    MP.Splits.push_back(std::move(S));
    return checkPlanLabels("lint fixture method", MP);
  }
  }
  return {};
}
