//===- lint/Lint.h - Static auditor for the scope/hoist discipline -*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `semcommute-lint` analysis library: static checks over the logic IR
/// and the session scripts the symbolic engine drives, run WITHOUT any SAT
/// search. The soundness of the catalog-level session rests on a handful of
/// discipline invariants that live in different layers (the planner's hoist
/// rule, the encoder's ancestor-chain lookup, the session's retire-forever
/// selector contract); this library restates each invariant independently
/// and checks the shipped catalog — and arbitrary audit streams — against
/// the restatement, so a drift between the layers surfaces as a lint
/// finding instead of a silently wrong verdict.
///
/// Diagnostic codes (stable; CI and the seeded-violation tests key on them):
///
///   SORT01  A formula is ill-sorted (an operand's sort violates its
///           node kind) or one variable name occurs at two different
///           sorts inside one catalog entry's vocabulary.
///   HOIST01 A catalog-common (hoisted) formula mentions a variable that
///           occurs in the *materialized* plans of an entry that does not
///           assert the formula itself — hoisting it could change that
///           entry's verdict.
///   SCOPE01 A Tseitin definition was referenced from a layer that is not
///           on the referencing layer's ancestor chain (a sibling's
///           definitions may be evicted with that sibling; the reference
///           would dangle).
///   SCOPE02 A scope selector name was reused after its scope was opened
///           once already (retired selectors are permanently false;
///           re-opened scopes must use fresh epoch-suffixed names).
///   SCOPE03 An assertion or check named a scope selector that was
///           already retired.
///   LABEL01 An assumption label is empty, contains a reserved delimiter
///           (';' joins countermodels, '|' joins proof tags), or
///           duplicates another label in the same check's namespace.
///
/// The hoist check deliberately does NOT reuse the planner's
/// entryVocabulary() over-approximation: it recollects variable keys from
/// the fully materialized method plans (Common + Scoped + every split), so
/// it cross-checks the approximation rather than re-executing it. The
/// scope checks run over audit::Log streams recorded by a *real*
/// SmtSession/Tseitin replay of the catalog (encoding, no solving), so
/// they exercise the production encoder paths rather than a model of them.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_LINT_LINT_H
#define SEMCOMM_LINT_LINT_H

#include "commute/Condition.h"
#include "commute/SessionPool.h"
#include "smt/SessionAudit.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace semcomm {

class SymbolicEngine;

namespace lint {

/// One machine-readable lint diagnostic.
struct Finding {
  std::string Code;    ///< Stable diagnostic code ("SORT01", ...).
  std::string Where;   ///< Location: entry / scope / plan the issue is in.
  std::string Message; ///< Human-readable description.
};

/// The registered checks, for `semcommute-lint --list-checks`.
struct CheckInfo {
  const char *Code;
  const char *Summary;
};
const std::vector<CheckInfo> &checks();

//===----------------------------------------------------------------------===//
// SORT01: sorts and vocabulary
//===----------------------------------------------------------------------===//

/// The (name, sort) identity of a variable — the same restatement of
/// "which variable is this" that the planner's hoist rule uses, maintained
/// here independently so the two cannot drift without the cross-check
/// noticing. Sort matters: Accumulator's increase(v) makes an *Int* "v1"
/// that must not collide with the object-sorted "v1" of the containers.
std::string varKey(const std::string &Name, Sort S);

/// Collects the varKey of every Var leaf of \p E into \p Out.
void collectVars(ExprRef E, std::set<std::string> &Out);

/// Structural sort check of one formula: every node's operand sorts must
/// match its kind (And/Or/Not over Bool, Lt/Le over Int, state queries
/// over State, Eq over equal sorts, ...). The factory's smart constructors
/// assert the same rules, but those asserts compile away under NDEBUG;
/// this is the release-mode restatement.
void checkFormulaSorts(ExprRef E, const std::string &Where,
                       std::vector<Finding> &Out);

/// Vocabulary coherence of one formula set: flags a variable name used at
/// two different sorts across \p Formulas (one finding per name).
std::vector<Finding>
checkVocabularyCoherence(const std::vector<ExprRef> &Formulas,
                         const std::string &Where);

/// Sort + vocabulary check of every condition of every entry of \p Fams.
std::vector<Finding> checkCatalogSorts(const Catalog &C,
                                       const std::vector<const Family *> &Fams);

//===----------------------------------------------------------------------===//
// HOIST01: the catalog-common hoisting rule
//===----------------------------------------------------------------------===//

/// One entry's view of the hoist rule: the Common formulas it asserts
/// itself and the variable keys its materialized plans actually mention.
struct HoistEntry {
  std::string Name;              ///< "Set add,contains" style.
  std::set<ExprRef> Common;      ///< Formulas in the entry's own prefix.
  std::set<std::string> Vars;    ///< varKeys over the whole materialized plan.
};

/// The hoist rule itself: every catalog-common formula must, for every
/// entry, either be in the entry's own Common prefix or mention no
/// variable the entry's plans mention (asserting it is then vacuous for
/// that entry). One HOIST01 finding per violated (formula, entry) pair.
std::vector<Finding>
checkHoistRule(const std::vector<ExprRef> &CatalogCommon,
               const std::vector<HoistEntry> &Entries);

/// Materializes every entry's plans through \p Eng and checks the catalog
/// plan's hoisted prefix against checkHoistRule.
std::vector<Finding>
checkCatalogHoisting(const SymbolicEngine &Eng, const Catalog &C,
                     const std::vector<const Family *> &Fams);

//===----------------------------------------------------------------------===//
// SCOPE01/02/03: audit-stream analysis
//===----------------------------------------------------------------------===//

/// Incremental analyzer over audit::Event streams, so whole-catalog
/// replays can drain their log pair by pair instead of buffering millions
/// of encoder events. Selector names are tracked for the analyzer's whole
/// lifetime (SCOPE02 is a *forever* property: a retired selector's name
/// may never come back).
class AuditAnalyzer {
public:
  void feed(const audit::Event &E);
  /// Feeds every event of \p L, then clears it (streaming use).
  void drain(audit::Log &L);

  const std::vector<Finding> &findings() const { return Findings; }
  std::vector<Finding> takeFindings() { return std::move(Findings); }
  uint64_t eventsSeen() const { return Events; }

private:
  /// True when \p Found is on \p Active's ancestor chain.
  bool onAncestorChain(unsigned Found, unsigned Active) const;

  std::set<std::string> Opened;  ///< Every selector ever opened.
  std::set<std::string> Retired; ///< Selectors permanently retired.
  std::map<unsigned, unsigned> LayerParent; ///< Tseitin layer tree.
  std::set<unsigned> DroppedLayers;
  std::vector<Finding> Findings;
  uint64_t Events = 0;
};

/// One-shot convenience over AuditAnalyzer (fixtures, tests).
std::vector<Finding> checkAuditLog(const audit::Log &L);

//===----------------------------------------------------------------------===//
// LABEL01: assumption-label well-formedness
//===----------------------------------------------------------------------===//

/// Labels of one method plan: the Scoped prefix labels and, per split,
/// the split's assumption labels plus the method name (the namespace one
/// check's unsat core is attributed over). Flags empty labels, reserved
/// delimiters, and duplicates within one check's namespace.
std::vector<Finding> checkPlanLabels(const std::string &Where,
                                     const MethodPlan &MP);

//===----------------------------------------------------------------------===//
// Whole-catalog entry point
//===----------------------------------------------------------------------===//

/// Everything the catalog lint produced, plus coverage counters so the CLI
/// (and CI) can assert the lint actually looked at the whole catalog.
struct LintResult {
  std::vector<Finding> Findings;
  uint64_t EntriesChecked = 0;
  uint64_t FormulasChecked = 0;   ///< Conditions sort-checked.
  uint64_t HoistedChecked = 0;    ///< Catalog-common formulas audited.
  uint64_t MethodsChecked = 0;    ///< Method plans label-checked.
  uint64_t AuditEvents = 0;       ///< Session replay events analyzed.
};

/// Runs every check over the shipped catalog restricted to \p Fams (empty
/// = all four families): sorts and vocabulary of all conditions, the
/// hoisting rule over the catalog plan, labels of every materialized
/// method plan, and a structural replay of the catalog-session script
/// through a real (audited, non-solving) SmtSession whose event stream
/// the scope analyzer validates.
LintResult lintCatalog(ExprFactory &F, int SeqLenBound = 3,
                       const std::vector<std::string> &FamilyNames = {});

//===----------------------------------------------------------------------===//
// Seeded violations (CI fixtures)
//===----------------------------------------------------------------------===//

/// Deliberately broken inputs, one per diagnostic, each yielding exactly
/// one finding with the named code — CI runs `semcommute-lint
/// --seed-violation <kind>` and asserts the nonzero exit and the code.
enum class SeededViolation : uint8_t {
  IllSorted,              ///< SORT01
  MisHoisted,             ///< HOIST01
  CrossSiblingReference,  ///< SCOPE01
  ReusedSelector,         ///< SCOPE02
  UseAfterRetire,         ///< SCOPE03
  DuplicateLabel,         ///< LABEL01
};

const char *seededViolationName(SeededViolation V);
/// Parses a --seed-violation argument; false when unknown.
bool parseSeededViolation(const std::string &Name, SeededViolation &V);
/// All kinds, in declaration order (CLI help, exhaustive tests).
const std::vector<SeededViolation> &allSeededViolations();

/// Builds the broken fixture for \p V and runs the relevant checker on it.
std::vector<Finding> seededViolationFindings(ExprFactory &F,
                                             SeededViolation V);

} // namespace lint
} // namespace semcomm

#endif // SEMCOMM_LINT_LINT_H
