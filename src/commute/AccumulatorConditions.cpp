//===- commute/AccumulatorConditions.cpp - Table 5.1 ----------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// The 12 Accumulator conditions (Table 5.1). increase(v1) and read()
/// commute exactly when the increment is 0; everything else always commutes
/// (addition is commutative).
///
//===----------------------------------------------------------------------===//

#include "commute/CatalogBuilder.h"

using namespace semcomm;

std::vector<ConditionEntry>
semcomm::buildAccumulatorConditions(ExprFactory &F) {
  CatalogBuilder B(F, accumulatorFamily());
  Vocab &D = B.D;

  // increase(v1); increase(v2): the counter ends at c + v1 + v2 either way.
  B.addUniform("increase", "increase", D.tru());

  // increase(v1); r2 = read(): read observes c + v1 first order, c second.
  B.addUniform("increase", "read", D.eq(D.N1, D.c(0)));

  // r1 = read(); increase(v2): symmetric.
  B.addUniform("read", "increase", D.eq(D.N2, D.c(0)));

  // Two reads of an unchanged counter.
  B.addUniform("read", "read", D.tru());

  return B.take();
}
