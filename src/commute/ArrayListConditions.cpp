//===- commute/ArrayListConditions.cpp - Tables 5.6 / 5.7 -----------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// The 243 ArrayList conditions (81 ordered pairs of {add_at, get, indexOf,
/// lastIndexOf, remove_at, remove_at_, set, set_, size} x three kinds).
/// These are by far the most intricate conditions of the paper (§5.2:
/// "substantially more complicated ... in part to the use of integer
/// indexing and in part to the presence of operations that shift the
/// indexing relationships across large regions of the data structure").
///
/// Conventions:
///  * s1 is the state before the first operation, s2 after it, s3 after
///    both (first execution order); r1/r2 are the first-order results.
///  * Indexed reads are self-guarding: an out-of-range s[i] yields Undef,
///    which falsifies the equality it appears in, so clauses like
///    i1 > i2 & s1[i1-1] = v1 need no explicit bounds conjunct unless the
///    paper's table prints one.
///  * The rows sampled by Tables 5.6 and 5.7 use the paper's exact
///    between/after formulations (over s2, s3, r1, r2); remaining
///    between/after conditions either substitute the first operation's
///    recorded return value per §4.1.2 or fall back to the initial-state
///    formulation, which is always a legal (and still sound and complete)
///    between/after condition.
///
/// Every formula below is machine-checked sound AND complete by the
/// exhaustive engine; see tests/CatalogTest.cpp.
///
//===----------------------------------------------------------------------===//

#include "commute/CatalogBuilder.h"

using namespace semcomm;

std::vector<ConditionEntry>
semcomm::buildArrayListConditions(ExprFactory &F) {
  CatalogBuilder B(F, arrayListFamily());
  Vocab &D = B.D;

  ExprRef T = D.tru();
  ExprRef FalseE = D.fls();
  ExprRef C0 = D.c(0), C1 = D.c(1);
  ExprRef I1 = D.I1, I2 = D.I2, V1 = D.V1, V2 = D.V2;
  ExprRef S1 = D.S1, S2 = D.S2, S3 = D.S3;
  ExprRef R1O = D.R1O, R2O = D.R2O, R1I = D.R1I, R2I = D.R2I;

  // Initial-state reads around the two indices.
  ExprRef A1 = D.at(S1, I1);               // s1[i1]
  ExprRef A1m = D.at(S1, D.sub(I1, C1));   // s1[i1-1]
  ExprRef A1p = D.at(S1, D.add(I1, C1));   // s1[i1+1]
  ExprRef A2 = D.at(S1, I2);               // s1[i2]
  ExprRef A2m = D.at(S1, D.sub(I2, C1));   // s1[i2-1]
  ExprRef A2p = D.at(S1, D.add(I2, C1));   // s1[i2+1]
  // First/last occurrence indices in the initial state.
  ExprRef J1 = D.idx(S1, V1), J2 = D.idx(S1, V2);
  ExprRef LJ1 = D.lidx(S1, V1), LJ2 = D.lidx(S1, V2);

  ExprRef VEq = D.eq(V1, V2), VNe = D.ne(V1, V2);
  ExprRef ILt = D.lt(I1, I2), IEq = D.eq(I1, I2), IGt = D.gt(I1, I2);

  const char *RaVariants[] = {"remove_at", "remove_at_"};
  const char *SetVariants[] = {"set", "set_"};

  // ==========================================================================
  // op1 = add_at(i1, v1)
  // ==========================================================================

  // add_at ; add_at — insertions collide unless the displaced neighbour
  // already carries the inserted value (Table 5.6/5.7 row 1).
  B.add("add_at", "add_at",
        /*Before=*/
        D.disj({D.conj({ILt, D.eq(A2m, V2)}),
                D.conj({IEq, VEq}),
                D.conj({IGt, D.eq(A1m, V1)})}),
        /*Between (paper)=*/
        D.disj({D.conj({ILt, D.le(I2, D.sub(D.len(S2), C1)),
                        D.eq(D.at(S2, I2), V2)}),
                D.conj({IEq, VEq}),
                D.conj({IGt, D.eq(D.at(S2, D.sub(I1, C1)), V1)})}),
        /*After (paper)=*/
        D.disj({D.conj({ILt, D.eq(D.at(S3, D.add(I2, C1)), V2)}),
                D.conj({IEq, VEq}),
                D.conj({IGt, D.eq(D.at(S3, I1), V1)})}));

  // add_at ; get — the read must land below the insertion point or see an
  // unchanged value.
  {
    ExprRef Between =
        D.disj({D.lt(I2, I1),
                D.conj({IEq, D.eq(D.at(S2, D.add(I1, C1)), V1)}),
                D.conj({D.gt(I2, I1),
                        D.eq(D.at(S2, I2), D.at(S2, D.add(I2, C1)))})});
    B.add("add_at", "get",
          D.disj({D.lt(I2, I1),
                  D.conj({IEq, D.eq(A2, V1)}),
                  D.conj({D.gt(I2, I1), D.eq(A2m, A2)})}),
          Between, Between);
  }

  // add_at ; indexOf (Table 5.6/5.7 row 2).
  B.add("add_at", "indexOf",
        /*Before=*/
        D.disj({D.conj({D.lt(J2, C0), VNe}),
                D.conj({D.le(C0, J2), D.lt(J2, I1)}),
                D.conj({VEq, D.eq(J2, I1)})}),
        /*Between (paper)=*/
        D.disj({D.lt(D.idx(S2, V2), C0),
                D.conj({D.le(C0, D.idx(S2, V2)), D.lt(D.idx(S2, V2), I1)}),
                D.conj({D.eq(D.idx(S2, V2), I1),
                        D.eq(D.at(S2, D.add(I1, C1)), V2)})}),
        /*After (paper)=*/
        D.disj({D.lt(R2I, C0),
                D.conj({D.le(C0, R2I), D.lt(R2I, I1)}),
                D.conj({D.eq(R2I, I1), D.eq(D.at(S3, D.add(I1, C1)), V2)})}));

  // add_at ; lastIndexOf — inserting v1 never commutes with scanning for the
  // same value, and for different values the last occurrence must sit below
  // the insertion point.
  B.add("add_at", "lastIndexOf",
        D.conj({VNe, D.lt(LJ2, I1)}),
        D.conj({VNe, D.lt(D.lidx(S2, V2), I1)}),
        D.conj({VNe, D.lt(R2I, I1)}));

  // add_at ; remove_at — the removal must either delete a duplicate
  // neighbour above the insertion point or delete exactly the inserted
  // value (Table 5.6/5.7 row 3). Identical for both remove_at variants.
  for (const char *Ra : RaVariants)
    B.add("add_at", Ra,
          /*Before=*/
          D.disj({D.conj({ILt, D.eq(A2m, A2)}),
                  D.conj({D.le(I2, I1), D.eq(A1, V1)})}),
          /*Between (paper)=*/
          D.disj({D.conj({ILt, D.eq(D.at(S2, I2), D.at(S2, D.add(I2, C1)))}),
                  D.conj({D.le(I2, I1),
                          D.eq(D.at(S2, D.add(I1, C1)), V1)})}),
          /*After (paper)=*/
          D.disj({D.conj({ILt, D.eq(D.at(S2, I2), D.at(S3, I2))}),
                  D.conj({D.le(I2, I1), D.eq(D.at(S3, I1), V1)})}));

  // add_at ; set — writes above the insertion point land one slot off
  // between the orders, so the written region must already be uniform.
  for (const char *SetOp : SetVariants) {
    ExprRef Between =
        D.disj({D.lt(I2, I1),
                D.conj({IEq, VEq, D.eq(D.at(S2, D.add(I1, C1)), V2)}),
                D.conj({D.gt(I2, I1), D.eq(D.at(S2, I2), V2),
                        D.eq(D.at(S2, D.add(I2, C1)), V2)})});
    B.add("add_at", SetOp,
          D.disj({D.lt(I2, I1),
                  D.conj({IEq, VEq, D.eq(A1, V1)}),
                  D.conj({D.gt(I2, I1), D.eq(A2m, V2), D.eq(A2, V2)})}),
          Between, Between);
  }

  // add_at ; size — size() observes n+1 first order, n in the other.
  B.addUniform("add_at", "size", FalseE);

  // ==========================================================================
  // op1 = r1 = get(i1)
  // ==========================================================================

  {
    // get ; add_at — the insertion must not displace the read slot.
    ExprRef Between =
        D.disj({ILt,
                D.conj({IEq, D.eq(R1O, V2)}),
                D.conj({IGt, D.eq(D.at(S1, D.sub(I1, C1)), R1O)})});
    B.add("get", "add_at",
          D.disj({ILt,
                  D.conj({IEq, D.eq(A1, V2)}),
                  D.conj({IGt, D.eq(A1m, A1)})}),
          Between, Between);
  }

  B.addUniform("get", "get", T);
  B.addUniform("get", "indexOf", T);
  B.addUniform("get", "lastIndexOf", T);

  for (const char *Ra : RaVariants) {
    // get ; remove_at — removal at or below the read slot shifts it.
    ExprRef Between =
        D.disj({ILt, D.conj({D.ge(I1, I2),
                             D.eq(R1O, D.at(S1, D.add(I1, C1)))})});
    B.add("get", Ra,
          D.disj({ILt, D.conj({D.ge(I1, I2), D.eq(A1, A1p)})}),
          Between, Between);
  }

  for (const char *SetOp : SetVariants) {
    ExprRef Between = D.disj({D.ne(I1, I2), D.eq(R1O, V2)});
    B.add("get", SetOp, D.disj({D.ne(I1, I2), D.eq(A1, V2)}), Between,
          Between);
  }

  B.addUniform("get", "size", T);

  // ==========================================================================
  // op1 = r1 = indexOf(v1)
  // ==========================================================================

  {
    // indexOf ; add_at (Table 5.6/5.7 row 4).
    ExprRef Between = D.disj({D.conj({D.lt(R1I, C0), VNe}),
                              D.conj({D.le(C0, R1I), D.lt(R1I, I2)}),
                              D.conj({D.eq(R1I, I2), VEq})});
    B.add("indexOf", "add_at",
          D.disj({D.conj({D.lt(J1, C0), VNe}),
                  D.conj({D.le(C0, J1), D.lt(J1, I2)}),
                  D.conj({D.eq(J1, I2), VEq})}),
          Between, Between);
  }

  B.addUniform("indexOf", "get", T);
  B.addUniform("indexOf", "indexOf", T);
  B.addUniform("indexOf", "lastIndexOf", T);

  for (const char *Ra : RaVariants) {
    // indexOf ; remove_at (Table 5.6/5.7 row 6): removing the first
    // occurrence is tolerable only when a duplicate sits right behind it.
    ExprRef Between =
        D.disj({D.lt(R1I, C0),
                D.conj({D.le(C0, R1I), D.lt(R1I, I2)}),
                D.conj({D.eq(R1I, I2), D.lt(I2, D.sub(D.len(S2), C1)),
                        D.eq(D.at(S2, D.add(I2, C1)), V1)})});
    B.add("indexOf", Ra,
          D.disj({D.lt(J1, I2),
                  D.conj({D.eq(J1, I2), D.eq(A2p, V1)})}),
          Between, Between);
  }

  for (const char *SetOp : SetVariants) {
    // indexOf ; set — the write must stay above the first occurrence, or
    // rewrite it with the same value, or involve a different value
    // entirely when scanning found nothing at or below the write.
    ExprRef Between =
        D.disj({D.conj({D.le(C0, R1I), D.lt(R1I, I2)}),
                D.conj({D.eq(R1I, I2), VEq}),
                D.conj({D.disj({D.lt(R1I, C0), D.gt(R1I, I2)}), VNe})});
    B.add("indexOf", SetOp,
          D.disj({D.conj({D.le(C0, J1), D.lt(J1, I2)}),
                  D.conj({D.eq(J1, I2), VEq}),
                  D.conj({D.disj({D.lt(J1, C0), D.gt(J1, I2)}), VNe})}),
          Between, Between);
  }

  B.addUniform("indexOf", "size", T);

  // ==========================================================================
  // op1 = r1 = lastIndexOf(v1)
  // ==========================================================================

  {
    ExprRef Between = D.conj({VNe, D.lt(R1I, I2)});
    B.add("lastIndexOf", "add_at", D.conj({VNe, D.lt(LJ1, I2)}), Between,
          Between);
  }

  B.addUniform("lastIndexOf", "get", T);
  B.addUniform("lastIndexOf", "indexOf", T);
  B.addUniform("lastIndexOf", "lastIndexOf", T);

  for (const char *Ra : RaVariants) {
    // lastIndexOf ; remove_at — any removal at or below the last
    // occurrence disturbs it (no duplicate rescue: the next occurrence is
    // strictly earlier).
    ExprRef Between = D.lt(R1I, I2);
    B.add("lastIndexOf", Ra, D.lt(LJ1, I2), Between, Between);
  }

  for (const char *SetOp : SetVariants) {
    ExprRef Between = D.disj({D.gt(R1I, I2),
                              D.conj({D.eq(R1I, I2), VEq}),
                              D.conj({D.lt(R1I, I2), VNe})});
    B.add("lastIndexOf", SetOp,
          D.disj({D.gt(LJ1, I2),
                  D.conj({D.eq(LJ1, I2), VEq}),
                  D.conj({D.lt(LJ1, I2), VNe})}),
          Between, Between);
  }

  B.addUniform("lastIndexOf", "size", T);

  // ==========================================================================
  // op1 = remove_at(i1) (recorded: r1 = s1[i1]) / remove_at_(i1)
  // ==========================================================================

  for (const char *Ra : RaVariants) {
    bool Recorded = std::string(Ra) == "remove_at";
    // The removed element, as a between/after condition sees it: the
    // recorded variant substitutes r1 per §4.1.2; the discarded variant
    // queries s1 as the paper's Tables 5.6/5.7 do.
    ExprRef Removed = Recorded ? R1O : A1;

    // remove_at ; add_at (Table 5.6/5.7 row 7).
    B.add(Ra, "add_at",
          /*Before=*/
          D.disj({D.conj({D.le(I1, I2), D.eq(A2, V2)}),
                  D.conj({IGt, D.eq(A1m, A1)})}),
          /*Between (paper)=*/
          D.disj({D.conj({ILt, D.eq(D.at(S2, D.sub(I2, C1)), V2)}),
                  D.conj({IEq, D.eq(Removed, V2)}),
                  D.conj({IGt, D.eq(D.at(S2, D.sub(I1, C1)), Removed)})}),
          /*After (paper)=*/
          D.disj({D.conj({ILt, D.eq(D.at(S3, D.sub(I2, C1)), V2)}),
                  D.conj({IEq, D.eq(Removed, V2)}),
                  D.conj({IGt, D.eq(D.at(S3, I1), Removed)})}));

    // remove_at ; get.
    B.add(Ra, "get",
          D.disj({D.lt(I2, I1),
                  D.conj({D.ge(I2, I1), D.eq(A2, A2p)})}),
          D.disj({D.lt(I2, I1),
                  D.conj({D.ge(I2, I1), D.eq(D.at(S1, I2), D.at(S2, I2))})}),
          D.disj({D.lt(I2, I1),
                  D.conj({D.ge(I2, I1), D.eq(D.at(S1, I2), R2O)})}));

    // remove_at ; indexOf (Table 5.6/5.7 row 8; §5.2.1's adjacent-copies
    // case analysis).
    B.add(Ra, "indexOf",
          /*Before=*/
          D.disj({D.lt(J2, I1),
                  D.conj({D.eq(J2, I1), D.eq(A1p, V2)})}),
          /*Between (paper)=*/
          D.disj({D.conj({D.lt(D.idx(S2, V2), C0), D.ne(Removed, V2)}),
                  D.conj({D.le(C0, D.idx(S2, V2)),
                          D.lt(D.idx(S2, V2), I1)}),
                  D.conj({D.eq(D.idx(S2, V2), I1), D.eq(Removed, V2),
                          D.lt(I1, D.len(S2))})}),
          /*After (paper)=*/
          D.disj({D.conj({D.lt(R2I, C0), D.ne(Removed, V2)}),
                  D.conj({D.le(C0, R2I), D.lt(R2I, I1)}),
                  D.conj({D.eq(R2I, I1), D.eq(Removed, V2),
                          D.lt(I1, D.len(S3))})}));

    // remove_at ; lastIndexOf.
    B.add(Ra, "lastIndexOf",
          D.lt(LJ2, I1),
          D.conj({D.lt(D.lidx(S2, V2), I1), D.ne(Removed, V2)}),
          D.conj({D.lt(R2I, I1), D.ne(Removed, V2)}));

    // remove_at ; remove_at (Table 5.6/5.7 row 9). When both returns are
    // discarded, removing the same index twice commutes outright (the same
    // two cells disappear either way); any recorded return additionally
    // forces the adjacent duplicate.
    for (const char *Ra2 : RaVariants) {
      bool BothDiscard = !Recorded && std::string(Ra2) == "remove_at_";
      if (BothDiscard) {
        // The paper's Table 5.6/5.7 row, over s2 and s3.
        B.add(Ra, Ra2,
              /*Before=*/
              D.disj({D.conj({ILt, D.eq(A2, A2p)}),
                      IEq,
                      D.conj({IGt, D.eq(A1, A1p)})}),
              /*Between (paper)=*/
              D.disj({D.conj({ILt, D.eq(D.at(S2, D.sub(I2, C1)),
                                        D.at(S2, I2))}),
                      IEq,
                      D.conj({IGt, D.lt(I1, D.len(S2)),
                              D.eq(A1, D.at(S2, I1))})}),
              /*After (paper)=*/
              D.disj({D.conj({ILt, D.eq(D.at(S3, D.sub(I2, C1)),
                                        D.at(S2, I2))}),
                      IEq,
                      D.conj({IGt, D.eq(A1, D.at(S3, D.sub(I1, C1)))})}));
        continue;
      }
      // Some observed return forces the duplicate at i1 even when i1 = i2;
      // the initial-state form is the clearest sound-and-complete
      // between/after condition here.
      ExprRef Phi = D.disj({D.conj({ILt, D.eq(A2, A2p)}),
                            D.conj({D.ge(I1, I2), D.eq(A1, A1p)})});
      B.add(Ra, Ra2, Phi, Phi, Phi);
    }

    // remove_at ; set.
    for (const char *Set2 : SetVariants) {
      bool BothDiscard = !Recorded && std::string(Set2) == "set_";
      ExprRef Before =
          BothDiscard
              ? D.disj({D.lt(I2, I1),
                        D.conj({D.gt(I2, I1), D.eq(A2, V2), D.eq(A2p, V2)}),
                        D.conj({IEq, D.eq(A1p, V2)})})
              : D.disj({D.lt(I2, I1),
                        D.conj({D.ge(I2, I1), D.eq(A2, V2),
                                D.eq(A2p, V2)})});
      B.add(Ra, Set2, Before, Before, Before);
    }

    // remove_at ; size.
    B.addUniform(Ra, "size", FalseE);
  }

  // ==========================================================================
  // op1 = set(i1, v1) (recorded: r1 = s1[i1]) / set_(i1, v1)
  // ==========================================================================

  for (const char *SetOp : SetVariants) {
    bool Recorded = std::string(SetOp) == "set";
    ExprRef Replaced = Recorded ? R1O : A1; // between/after view of s1[i1]

    // set ; add_at — insertion at or below the written slot shifts it.
    {
      ExprRef Between =
          D.disj({ILt,
                  D.conj({IEq, VEq, D.eq(Replaced, V1)}),
                  D.conj({IGt, D.eq(D.at(S2, D.sub(I1, C1)), V1),
                          D.eq(Replaced, V1)})});
      B.add(SetOp, "add_at",
            D.disj({ILt,
                    D.conj({IEq, VEq, D.eq(A1, V1)}),
                    D.conj({IGt, D.eq(A1m, V1), D.eq(A1, V1)})}),
            Between, Between);
    }

    // set ; get.
    {
      ExprRef Between = D.disj({D.ne(I1, I2), D.eq(Replaced, V1)});
      B.add(SetOp, "get", D.disj({D.ne(I1, I2), D.eq(A1, V1)}), Between,
            Between);
    }

    // set ; indexOf and set ; lastIndexOf — the scan's result in s1 is not
    // recoverable after the write, so all kinds query s1 (the paper's
    // "cannot help querying the initial state" case, §4.1.2).
    B.addUniform(SetOp, "indexOf",
                 D.disj({D.conj({D.le(C0, J2), D.lt(J2, I1)}),
                         D.conj({D.eq(J2, I1), VEq}),
                         D.conj({D.disj({D.lt(J2, C0), D.gt(J2, I1)}),
                                 VNe})}));
    B.addUniform(SetOp, "lastIndexOf",
                 D.disj({D.gt(LJ2, I1),
                         D.conj({D.eq(LJ2, I1), VEq}),
                         D.conj({D.lt(LJ2, I1), VNe})}));

    // set ; remove_at.
    for (const char *Ra2 : RaVariants) {
      bool BothDiscard = !Recorded && std::string(Ra2) == "remove_at_";
      ExprRef Before =
          BothDiscard
              ? D.disj({ILt,
                        D.conj({IEq, D.eq(A1p, V1)}),
                        D.conj({IGt, D.eq(A1, V1), D.eq(A1p, V1)})})
              : D.disj({ILt,
                        D.conj({D.ge(I1, I2), D.eq(A1, V1),
                                D.eq(A1p, V1)})});
      ExprRef Between =
          BothDiscard
              ? D.disj({ILt,
                        D.conj({IEq, D.eq(D.at(S2, D.add(I1, C1)), V1)}),
                        D.conj({IGt, D.eq(Replaced, V1),
                                D.eq(D.at(S2, D.add(I1, C1)), V1)})})
              : D.disj({ILt,
                        D.conj({D.ge(I1, I2), D.eq(Replaced, V1),
                                D.eq(D.at(S2, D.add(I1, C1)), V1)})});
      B.add(SetOp, Ra2, Before, Between, Between);
    }

    // set ; set — same slot demands same value; the recorded previous
    // value must also be what the other order observes.
    for (const char *Set2 : SetVariants) {
      bool BothDiscard = !Recorded && std::string(Set2) == "set_";
      ExprRef Before = BothDiscard
                           ? D.disj({D.ne(I1, I2), VEq})
                           : D.disj({D.ne(I1, I2),
                                     D.conj({VEq, D.eq(A1, V1)})});
      ExprRef Between = BothDiscard
                            ? Before
                            : D.disj({D.ne(I1, I2),
                                      D.conj({VEq, D.eq(Replaced, V1)})});
      B.add(SetOp, Set2, Before, Between, Between);
    }

    B.addUniform(SetOp, "size", T);
  }

  // ==========================================================================
  // op1 = r1 = size()
  // ==========================================================================

  B.addUniform("size", "add_at", FalseE);
  B.addUniform("size", "get", T);
  B.addUniform("size", "indexOf", T);
  B.addUniform("size", "lastIndexOf", T);
  for (const char *Ra : RaVariants)
    B.addUniform("size", Ra, FalseE);
  for (const char *SetOp : SetVariants)
    B.addUniform("size", SetOp, T);
  B.addUniform("size", "size", T);

  return B.take();
}
