//===- commute/ExhaustiveEngine.cpp - Bounded-exhaustive verifier ---------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "commute/ExhaustiveEngine.h"

#include "logic/Evaluator.h"
#include "logic/Printer.h"

#include <cassert>

using namespace semcomm;

std::string Counterexample::str() const {
  std::string S = "initial state: " + Initial.str() + "\n  op1 args:";
  for (const Value &V : Args1)
    S += " " + V.str();
  S += "\n  op2 args:";
  for (const Value &V : Args2)
    S += " " + V.str();
  return S + "\n  " + Explanation;
}

namespace {

/// The fully executed two-order scenario: states, returns, preconditions.
struct ScenarioOutcome {
  // First order: op1; op2.
  AbstractState SBetween; ///< s2 = state after op1.
  AbstractState SFinal1;  ///< s3 = state after op1; op2.
  Value R1First, R2First;
  // Reverse order: op2; op1 (valid only when RevPreOk).
  bool RevPreOk = false;
  AbstractState SFinal2;
  Value R1Second, R2Second;

  /// Do the two orders agree on everything the clients observe?
  bool agrees(const Operation &Op1, const Operation &Op2) const {
    if (!RevPreOk)
      return false;
    if (!(SFinal1 == SFinal2))
      return false;
    if (Op1.RecordsReturn && R1First != R1Second)
      return false;
    if (Op2.RecordsReturn && R2First != R2Second)
      return false;
    return true;
  }
};

} // namespace

/// Executes the rest of both orders, given the already-computed first step
/// of the first order (\p SBetween, \p R1First).
static ScenarioOutcome runScenario(const AbstractState &Initial,
                                   AbstractState SBetween, Value R1First,
                                   const Operation &Op1, const ArgList &A1,
                                   const Operation &Op2, const ArgList &A2) {
  ScenarioOutcome Out{std::move(SBetween), Initial, R1First, Value(),
                      false,               Initial, Value(), Value()};

  Out.SFinal1 = Out.SBetween;
  Out.R2First = Op2.Apply(Out.SFinal1, A2);

  // Reverse order; stop at the first failing precondition.
  if (!Op2.Pre(Initial, A2))
    return Out;
  Out.SFinal2 = Initial;
  Out.R2Second = Op2.Apply(Out.SFinal2, A2);
  if (!Op1.Pre(Out.SFinal2, A1))
    return Out;
  Out.R1Second = Op1.Apply(Out.SFinal2, A1);
  Out.RevPreOk = true;
  return Out;
}

/// Binds the condition environment along the first execution order.
static void bindEnv(Env &E, const Operation &Op1, const ArgList &A1,
                    const Operation &Op2, const ArgList &A2,
                    const AbstractState &S1, const ScenarioOutcome &Out) {
  for (size_t I = 0; I != A1.size(); ++I)
    E.bind(Op1.ArgBaseNames[I] + "1", A1[I]);
  for (size_t I = 0; I != A2.size(); ++I)
    E.bind(Op2.ArgBaseNames[I] + "2", A2[I]);
  if (Op1.RecordsReturn)
    E.bind("r1", Out.R1First);
  if (Op2.RecordsReturn)
    E.bind("r2", Out.R2First);
  E.bindState("s1", &S1);
  E.bindState("s2", &Out.SBetween);
  E.bindState("s3", &Out.SFinal1);
}

VerifyResult ExhaustiveEngine::verifyCondition(const Family &Fam,
                                               const std::string &Op1Name,
                                               const std::string &Op2Name,
                                               ConditionKind, MethodRole R,
                                               ExprRef Phi) const {
  const Operation &Op1 = Fam.op(Op1Name);
  const Operation &Op2 = Fam.op(Op2Name);

  VerifyResult Result;
  Result.Verified = true;

  for (const AbstractState &Initial : enumerateStates(Fam, Bounds)) {
    std::vector<ArgList> Args1 = enumerateArgs(Fam, Op1, Initial, Bounds);
    std::vector<ArgList> Args2 = enumerateArgs(Fam, Op2, Initial, Bounds);
    for (const ArgList &A1 : Args1) {
      if (!Op1.Pre(Initial, A1))
        continue;
      for (const ArgList &A2 : Args2) {
        // The templates assume the first order's preconditions (Fig. 3-1
        // lines 8/11); scenarios outside them are vacuous.
        AbstractState Mid = Initial;
        Value R1First = Op1.Apply(Mid, A1);
        if (!Op2.Pre(Mid, A2))
          continue;

        ScenarioOutcome Out =
            runScenario(Initial, std::move(Mid), R1First, Op1, A1, Op2, A2);
        ++Result.ScenariosChecked;

        Env E;
        bindEnv(E, Op1, A1, Op2, A2, Initial, Out);
        bool CondHolds = evaluateBool(Phi, E);
        bool Agrees = Out.agrees(Op1, Op2);

        bool Violated = (R == MethodRole::Soundness) ? (CondHolds && !Agrees)
                                                     : (!CondHolds && Agrees);
        if (!Violated)
          continue;

        Counterexample CE{Initial, A1, A2, ""};
        if (R == MethodRole::Soundness) {
          CE.Explanation =
              "condition holds but the orders disagree: " +
              std::string(!Out.RevPreOk
                              ? "reverse-order precondition fails"
                              : (Out.SFinal1 == Out.SFinal2
                                     ? "recorded return values differ"
                                     : "final abstract states differ (" +
                                           Out.SFinal1.str() + " vs " +
                                           Out.SFinal2.str() + ")"));
        } else {
          CE.Explanation = "condition fails but the orders agree (final "
                           "state " +
                           Out.SFinal1.str() + ")";
        }
        Result.Verified = false;
        Result.CE = std::move(CE);
        return Result;
      }
    }
  }
  return Result;
}

VerifyResult ExhaustiveEngine::verify(const TestingMethod &M) const {
  const ConditionEntry &E = *M.Entry;
  return verifyCondition(*E.Fam, E.op1().Name, E.op2().Name, M.Kind, M.Role,
                         E.get(M.Kind));
}
