//===- commute/CatalogBuilder.h - Catalog authoring helper ------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal helper shared by the four per-family condition catalogs. Each
/// catalog plays the role of the paper's "developer-specified commutativity
/// conditions": every ordered pair of operation variants gets a before, a
/// between, and an after condition, later verified sound and complete by the
/// engines.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_COMMUTE_CATALOGBUILDER_H
#define SEMCOMM_COMMUTE_CATALOGBUILDER_H

#include "commute/Condition.h"
#include "logic/Dsl.h"

#include <cstdio>
#include <cstdlib>

namespace semcomm {

/// Collects ConditionEntry rows for one family.
class CatalogBuilder {
public:
  CatalogBuilder(ExprFactory &F, const Family &Fam) : D(F), Fam(Fam) {}

  /// Registers the three conditions of the ordered pair (\p Op1 first).
  void add(const char *Op1, const char *Op2, ExprRef Before, ExprRef Between,
           ExprRef After) {
    ConditionEntry E;
    E.Fam = &Fam;
    E.Op1 = Fam.opIndex(Op1);
    E.Op2 = Fam.opIndex(Op2);
    E.Before = Before;
    E.Between = Between;
    E.After = After;
    Entries.push_back(E);
  }

  /// Registers a pair whose three conditions coincide.
  void addUniform(const char *Op1, const char *Op2, ExprRef Phi) {
    add(Op1, Op2, Phi, Phi, Phi);
  }

  /// Finalizes; aborts if any ordered pair is missing or duplicated.
  std::vector<ConditionEntry> take() {
    unsigned N = Fam.Ops.size();
    std::vector<int> Seen(N * N, 0);
    for (const ConditionEntry &E : Entries)
      ++Seen[E.Op1 * N + E.Op2];
    for (unsigned I = 0; I != N * N; ++I)
      if (Seen[I] != 1) {
        std::fprintf(stderr,
                     "catalog for %s: pair (%s, %s) specified %d times\n",
                     Fam.Name.c_str(), Fam.Ops[I / N].Name.c_str(),
                     Fam.Ops[I % N].Name.c_str(), Seen[I]);
        std::abort();
      }
    return std::move(Entries);
  }

  Vocab D;
  const Family &Fam;

private:
  std::vector<ConditionEntry> Entries;
};

} // namespace semcomm

#endif // SEMCOMM_COMMUTE_CATALOGBUILDER_H
