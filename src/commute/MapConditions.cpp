//===- commute/MapConditions.cpp - Tables 5.4 / 5.5 -----------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// The 147 conditions shared by AssociationList and HashTable (49 ordered
/// pairs of {containsKey, get, put, put_, remove, remove_, size} x three
/// kinds; Tables 5.4 and 5.5 sample the discarded-update rows).
///
/// Shapes (M = key-value relation before the first operation):
///  * put/remove on the same key never commute with each other: one order
///    leaves the key bound, the other unbound.
///  * Two puts on the same key commute only when they write the same value;
///    recorded variants additionally need that value already bound (the
///    returned previous value must agree across orders).
///  * Observers of key k commute with updates of the same key only when the
///    update does not change k's binding: (k1, v2) in s1 for put,
///    (k1, _) ~in s1 for remove.
///  * Between/after conditions substitute the recorded previous value:
///    put and remove return M(k1) (or null), so (k1, _) in s1 becomes
///    r1 ~= null and (k1, v) in s1 becomes r1 = v (§4.1.2).
///
//===----------------------------------------------------------------------===//

#include "commute/CatalogBuilder.h"

using namespace semcomm;

std::vector<ConditionEntry> semcomm::buildMapConditions(ExprFactory &F) {
  CatalogBuilder B(F, mapFamily());
  Vocab &D = B.D;

  ExprRef T = D.tru();
  ExprRef KNE = D.ne(D.K1, D.K2);      // k1 ~= k2
  ExprRef H1 = D.hasKey(D.S1, D.K1);   // (k1, _) in s1
  ExprRef NH1 = D.noKey(D.S1, D.K1);   // (k1, _) ~in s1
  ExprRef H2 = D.hasKey(D.S1, D.K2);   // (k2, _) in s1
  ExprRef NH2 = D.noKey(D.S1, D.K2);   // (k2, _) ~in s1
  ExprRef M1V1 = D.maps(D.S1, D.K1, D.V1); // (k1, v1) in s1
  ExprRef M1V2 = D.maps(D.S1, D.K1, D.V2); // (k1, v2) in s1
  ExprRef VE = D.eq(D.V1, D.V2);           // v1 = v2
  ExprRef R1 = D.R1B;                       // containsKey's boolean result
  ExprRef R1Null = D.eq(D.R1O, D.null());   // r1 = null (put/remove/get)
  ExprRef R1NotNull = D.ne(D.R1O, D.null());
  ExprRef R1IsV1 = D.eq(D.R1O, D.V1);
  ExprRef R1IsV2 = D.eq(D.R1O, D.V2);
  ExprRef R2Null = D.eq(D.R2O, D.null());
  ExprRef R2NotNull = D.ne(D.R2O, D.null());

  // --- op1 = r1 = containsKey(k1) -------------------------------------------
  B.addUniform("containsKey", "containsKey", T);
  B.addUniform("containsKey", "get", T);
  B.add("containsKey", "put", D.disj({KNE, H1}), D.disj({KNE, R1}),
        D.disj({KNE, R1}));
  B.add("containsKey", "put_", D.disj({KNE, H1}), D.disj({KNE, R1}),
        D.disj({KNE, R1}));
  B.add("containsKey", "remove", D.disj({KNE, NH1}),
        D.disj({KNE, D.lnot(R1)}), D.disj({KNE, D.lnot(R1)}));
  B.add("containsKey", "remove_", D.disj({KNE, NH1}),
        D.disj({KNE, D.lnot(R1)}), D.disj({KNE, D.lnot(R1)}));
  B.addUniform("containsKey", "size", T);

  // --- op1 = r1 = get(k1) -----------------------------------------------------
  // get returns M(k1) or null.
  B.addUniform("get", "containsKey", T);
  B.addUniform("get", "get", T);
  B.add("get", "put", D.disj({KNE, M1V2}), D.disj({KNE, R1IsV2}),
        D.disj({KNE, R1IsV2}));
  B.add("get", "put_", D.disj({KNE, M1V2}), D.disj({KNE, R1IsV2}),
        D.disj({KNE, R1IsV2}));
  B.add("get", "remove", D.disj({KNE, NH1}), D.disj({KNE, R1Null}),
        D.disj({KNE, R1Null}));
  B.add("get", "remove_", D.disj({KNE, NH1}), D.disj({KNE, R1Null}),
        D.disj({KNE, R1Null}));
  B.addUniform("get", "size", T);

  // --- op1 = r1 = put(k1, v1) --------------------------------------------------
  // put returns the previous binding of k1 (or null).
  B.add("put", "containsKey", D.disj({KNE, H1}), D.disj({KNE, R1NotNull}),
        D.disj({KNE, R1NotNull}));
  B.add("put", "get", D.disj({KNE, M1V1}), D.disj({KNE, R1IsV1}),
        D.disj({KNE, R1IsV1}));
  B.add("put", "put", D.disj({KNE, D.conj({VE, M1V1})}),
        D.disj({KNE, D.conj({VE, R1IsV1})}),
        D.disj({KNE, D.conj({VE, R1IsV1})}));
  B.add("put", "put_", D.disj({KNE, D.conj({VE, M1V1})}),
        D.disj({KNE, D.conj({VE, R1IsV1})}),
        D.disj({KNE, D.conj({VE, R1IsV1})}));
  B.addUniform("put", "remove", KNE);
  B.addUniform("put", "remove_", KNE);
  B.add("put", "size", H1, R1NotNull, R1NotNull);

  // --- op1 = put(k1, v1) (return discarded) -------------------------------------
  B.addUniform("put_", "containsKey", D.disj({KNE, H1}));
  B.addUniform("put_", "get", D.disj({KNE, M1V1}));
  B.addUniform("put_", "put", D.disj({KNE, D.conj({VE, M1V1})}));
  B.addUniform("put_", "put_", D.disj({KNE, VE}));
  B.addUniform("put_", "remove", KNE);
  B.addUniform("put_", "remove_", KNE);
  B.addUniform("put_", "size", H1);

  // --- op1 = r1 = remove(k1) -----------------------------------------------------
  // remove returns the previous binding of k1 (or null).
  B.add("remove", "containsKey", D.disj({KNE, NH1}), D.disj({KNE, R1Null}),
        D.disj({KNE, R1Null}));
  B.add("remove", "get", D.disj({KNE, NH1}), D.disj({KNE, R1Null}),
        D.disj({KNE, R1Null}));
  B.addUniform("remove", "put", KNE);
  B.addUniform("remove", "put_", KNE);
  B.add("remove", "remove", D.disj({KNE, NH1}), D.disj({KNE, R1Null}),
        D.disj({KNE, R1Null}));
  B.add("remove", "remove_", D.disj({KNE, NH1}), D.disj({KNE, R1Null}),
        D.disj({KNE, R1Null}));
  B.add("remove", "size", NH1, R1Null, R1Null);

  // --- op1 = remove(k1) (return discarded) -----------------------------------------
  B.addUniform("remove_", "containsKey", D.disj({KNE, NH1}));
  B.addUniform("remove_", "get", D.disj({KNE, NH1}));
  B.addUniform("remove_", "put", KNE);
  B.addUniform("remove_", "put_", KNE);
  B.addUniform("remove_", "remove", D.disj({KNE, NH1}));
  B.addUniform("remove_", "remove_", T);
  B.addUniform("remove_", "size", NH1);

  // --- op1 = r1 = size() ------------------------------------------------------------
  B.addUniform("size", "containsKey", T);
  B.addUniform("size", "get", T);
  B.add("size", "put", H2, H2, R2NotNull);
  B.addUniform("size", "put_", H2);
  B.add("size", "remove", NH2, NH2, R2Null);
  B.addUniform("size", "remove_", NH2);
  B.addUniform("size", "size", T);

  return B.take();
}
