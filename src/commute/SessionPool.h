//===- commute/SessionPool.h - Shared per-pair solver sessions --*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The discharge layer between the symbolic engines and the smt/ stack.
///
/// The six testing methods of one (family, op-pair) — before/between/after
/// x soundness/completeness (Fig. 2-2) — share almost their entire
/// symbolic-execution prefix. A MethodPlan captures one method's VCs in
/// three layers:
///
///  * Common:  the pair-shared prefix (argument/element well-formedness),
///             identical across the pair's methods;
///  * Scoped:  the method's own prefix (for the single-VC families, the
///             whole VC body), asserted under a per-method *selector
///             literal* so several methods can coexist in one clause
///             database without contaminating each other;
///  * Splits:  the VC instances (one per ArrayList case split), each a
///             set of labeled assumption formulas.
///
/// SharedSession discharges plans in one of three modes:
///
///  * SharedPair (default): one warm SmtSession serves every plan
///    discharged through the session. Common formulas are asserted once,
///    each method's Scoped prefix is asserted as `selector -> formula`,
///    and every split is checked under (selector + split) assumptions.
///    Tseitin definitions, theory bridges, and learned clauses are shared
///    across all methods of the pair — soundness and completeness of one
///    kind share literally their whole encoding.
///  * PerMethod: one warm session per discharge() call (the pre-pair
///    behavior, kept as the comparison baseline).
///  * OneShot: a fresh session per split (the cold-start baseline).
///
/// After an Unsat check, the solver's assumption core is mapped back to the
/// labels of the assumptions it names (selector / split / hint literals),
/// so a verified method records which assumption subset its proof actually
/// needed — the first step toward §5.2.1-style ProofHints minimization.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_COMMUTE_SESSIONPOOL_H
#define SEMCOMM_COMMUTE_SESSIONPOOL_H

#include "smt/SmtSolver.h"

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace semcomm {

/// How the engine discharges the VCs of testing methods.
enum class SolveMode : uint8_t {
  /// A fresh solver session per VC (the historical behavior; cold start
  /// every split). Kept as the baseline the perf benches compare against.
  OneShot,
  /// One warm session per testing method: the method's prefix is asserted
  /// once and every case split is discharged under assumption literals.
  /// The pre-shared-session incremental mode, kept for comparison.
  PerMethod,
  /// One warm session per (family, op-pair): all methods of the pair share
  /// one solver under per-method selector literals. The default.
  SharedPair,
  /// One warm session per *family*: every op-pair's common prefix is
  /// asserted under a per-pair selector, method prefixes under method
  /// selectors nested inside it, and a finished pair's scope is *retired*
  /// (selector falsified, its clauses evicted) so the clause database is
  /// bounded by the live pair plus the family-common prefix instead of
  /// growing with the whole family.
  SharedFamily,
  /// One warm session for the whole *catalog*: the catalog-common
  /// well-formedness prefix is asserted once at the session root, each
  /// family's remaining common prefix under a per-family selector, pairs
  /// under pair selectors nested inside it, methods inside those. Pair
  /// and family scopes are retired as subtrees when their VCs are done,
  /// and their Tseitin definition variables are recycled, so both the
  /// clause database and the variable array are bounded by the live pair
  /// — while the atom table, bridge lattice, and root Tseitin skeleton
  /// are derived once and shared by all four families.
  SharedCatalog,
};

const char *solveModeName(SolveMode M);

/// Outcome of symbolically verifying one testing method.
struct SymbolicResult {
  bool Verified = false;
  /// When not verified: whether the solver produced a (possibly spurious)
  /// countermodel or ran out of budget.
  SatResult LastOutcome = SatResult::Unknown;
  uint64_t NumVcs = 0;        ///< VC instances discharged (ArrayList splits).
  int64_t SatConflicts = 0;   ///< Total CDCL conflicts.
  int64_t MaxVcConflicts = 0; ///< Largest single-split conflict count.
  /// Clauses alive in the method's warm session after the last split
  /// (Tseitin definitions + bridges + learned); 0 in one-shot mode, where
  /// nothing is carried over. In SharedPair mode this is the *pair*
  /// session's clause count at the time the method finished.
  uint64_t RetainedClauses = 0;
  /// Clause-database GC activity attributable to this method's discharge.
  uint64_t DbReductions = 0;
  uint64_t ReclaimedClauses = 0;
  /// Union, over all Unsat splits, of the labels of the assumptions the
  /// proofs actually needed (selector / split literals; insertion order,
  /// deduplicated). Empty when every refutation followed from the base
  /// alone.
  std::vector<std::string> CoreLabels;
  std::string Countermodel; ///< Diagnostic atoms of a failed proof.

  /// Certification (populated only when the session certifies): the proof
  /// tags of this method's Unsat verdicts, in discharge order — the keys
  /// its certificates carry in the session's proof trace.
  std::vector<std::string> ProofQueryTags;
  /// Certified query count (== ProofQueryTags.size(); kept separately so
  /// the driver's JSON row needs no recount).
  uint64_t ProofQueries = 0;
  /// Checker database high-water mark of the certifying session (a
  /// session-level number, duplicated per method for per-job reporting).
  uint64_t ProofClauses = 0;
  /// True when the independent checker verified every one of this
  /// method's Unsat verdicts. Engines backfill it after the session's
  /// finishCertification(); false when not certifying.
  bool ProofChecked = false;
};

/// One labeled assumption formula (the label names it in unsat cores).
struct TaggedAssumption {
  ExprRef E = nullptr;
  std::string Label;
};

/// One VC instance of a testing method.
struct VcSplit {
  std::vector<TaggedAssumption> Assumed;
  /// Diagnostic prefix for failures, e.g. "n=2 i1=0 i2=1"; empty for the
  /// single-VC families.
  std::string Label;
};

/// The symbolic-discharge plan of one testing method.
struct MethodPlan {
  /// Paper-style method name; also names the selector literal.
  std::string Name;
  /// Pair-common prefix: asserted once per shared session (deduplicated
  /// across the plans discharged through it).
  std::vector<ExprRef> Common;
  /// Method-own prefix: asserted under the method's selector literal in
  /// SharedPair mode, as plain base otherwise.
  std::vector<TaggedAssumption> Scoped;
  /// The VC instances, discharged in order; discharge stops at the first
  /// failure.
  std::vector<VcSplit> Splits;
  /// True when the plan builder met an atom shape outside the bounded
  /// lowering's fragment; the method then reports unverified after its
  /// (truncated) splits run.
  bool Unsupported = false;
  std::string UnsupportedNote;
};

/// One registered method selector with the plan fingerprint it was
/// allocated for (the plan's Common + Scoped formulas; hash-consing makes
/// pointer equality structural equality). The fingerprint guards against
/// two *different* plans sharing a name: a mismatch allocates a fresh
/// selector instead of silently proving the new plan against the old
/// plan's prefix. Shared by SharedSession and FamilySession so the
/// reuse-or-allocate discipline cannot drift between the tiers.
struct PlanSelectorEntry {
  std::vector<ExprRef> Fingerprint;
  ExprRef Sel = nullptr;
};

/// The fingerprint of \p Plan's prefix content, and the selector an entry
/// list already holds for it (nullptr when none matches).
std::vector<ExprRef> planFingerprint(const MethodPlan &Plan);
ExprRef findPlanSelector(const std::vector<PlanSelectorEntry> &Entries,
                         const std::vector<ExprRef> &Fingerprint);

/// A warm solver session shared by the testing methods of one (family,
/// op-pair). Not thread-safe: one SharedSession lives on one worker.
class SharedSession {
public:
  SharedSession(ExprFactory &F, int64_t Budget, SolveMode Mode)
      : F(F), Budget(Budget), Mode(Mode) {}
  SharedSession(const SharedSession &) = delete;
  SharedSession &operator=(const SharedSession &) = delete;

  /// Discharges every split of \p Plan, accumulating statistics into \p R.
  /// Returns true when all splits are refuted (the method verifies).
  bool discharge(const MethodPlan &Plan, SymbolicResult &R);

  /// Clause-GC configuration applied to every solver this session opens
  /// (benches pin the no-GC baseline; tests force aggressive reduction).
  void configureClauseGc(bool Enabled, int64_t FirstLimit = 0) {
    GcEnabled = Enabled;
    GcLimit = FirstLimit;
  }

  /// Turns on proof logging + independent checking for every solver this
  /// session opens (must be called before the first discharge). Rotated
  /// sessions (OneShot / PerMethod) each certify individually; their
  /// summaries fold.
  void enableCertification() { Certify = true; }
  bool certifying() const { return Certify; }
  /// Checks the current session's trace (if any) and returns the folded
  /// summary over every session this SharedSession ever opened.
  const proof::CertifySummary &finishCertification();

  /// Lifetime statistics (across re-opened sessions in the non-shared
  /// modes).
  uint64_t checks() const;
  int64_t conflicts() const;
  uint64_t dbReductions() const;
  uint64_t reclaimedClauses() const;
  /// Clauses alive in the current warm solver (0 when none is open).
  uint64_t retainedClauses() const;
  unsigned numSelectors() const { return SelectorCount; }
  size_t sessionsOpened() const { return SessionsOpened; }

private:
  void openSession();
  void assertPrefix(const MethodPlan &Plan, ExprRef Sel);

  ExprFactory &F;
  int64_t Budget;
  SolveMode Mode;
  bool GcEnabled = true;
  int64_t GcLimit = 0; ///< 0 keeps the solver default.
  bool Certify = false;
  bool CertFolded = false; ///< Current session already folded into Cert.
  proof::CertifySummary Cert; ///< Folded over closed sessions.

  std::unique_ptr<SmtSession> Session;
  std::set<ExprRef> AssertedCommon; ///< Dedup only; never iterated.

  /// Registered selectors, keyed by plan name (see PlanSelectorEntry).
  std::map<std::string, std::vector<PlanSelectorEntry>> Selectors;
  unsigned SelectorCount = 0;
  size_t SessionsOpened = 0;

  // Totals of sessions already closed (OneShot / PerMethod modes).
  uint64_t ClosedChecks = 0;
  int64_t ClosedConflicts = 0;
  uint64_t ClosedReductions = 0;
  uint64_t ClosedReclaimed = 0;
};

/// The discharge plans of one (family, op-pair): the six testing methods
/// in (kind x role) enumeration order.
struct PairPlan {
  std::string Key; ///< "op1,op2" — scopes the pair inside a FamilySession.
  std::vector<MethodPlan> Methods;
};

/// The whole-family discharge plan a FamilySession runs.
struct FamilyPlan {
  std::string FamilyName;
  /// Well-formedness formulas present in *every* method plan's Common
  /// prefix across the family: asserted once as unguarded session base
  /// (they constrain only the family's shared argument/element vocabulary,
  /// so they are sound for every pair).
  std::vector<ExprRef> FamilyCommon;
  std::vector<PairPlan> Pairs;
};

/// Lifetime statistics of one family-level session.
struct FamilySessionStats {
  uint64_t PairsOpened = 0;    ///< Pair scopes allocated.
  uint64_t PairsRetired = 0;   ///< Pair scopes evicted (retirePair calls).
  uint64_t EvictedClauses = 0; ///< Clauses eviction removed from the DB.
  /// High-water mark of retained clauses across every check — the number
  /// scoped eviction is meant to bound (without it, the DB grows with the
  /// family; with it, with the live pair).
  uint64_t PeakRetainedClauses = 0;
  /// Common-prefix assertions actually issued vs. skipped because the
  /// formula was already in the family base or the pair scope (the
  /// amortization the family tier exists for).
  uint64_t PrefixAsserts = 0;
  uint64_t PrefixReuses = 0;
};

/// The pair tier of a scope-tree session: the map of live pair scopes
/// under one parent scope, with epoch-named re-opening of retired keys,
/// common-prefix dedup against the outer (session/family) bases, method
/// selectors nested inside their pair's scope, and the split discharge.
/// Pair scopes own a Tseitin cache layer (their formulas' definition
/// variables retire and recycle with them); method scopes share their
/// pair's layer, since they only ever retire together with it. Shared by
/// FamilySession (parent = session root) and CatalogSession (parent = a
/// family scope) so the reuse-or-retire discipline cannot drift between
/// the tiers.
class PairTier {
public:
  /// \p Tag names the tier's selectors ("<family>" or "<family>@e<N>" for
  /// a re-opened family scope — selector names must be unique for the
  /// session's lifetime, retired selectors included). \p PathSels /
  /// \p PathLabels are the parent-scope selectors every check assumes
  /// (empty for the family tier, the family selector for the catalog
  /// tier). \p OuterBases are formula sets already asserted above the
  /// pair scopes; prefix formulas found there are counted as reuses.
  PairTier(ExprFactory &F, SmtSession &Session, std::string Tag,
           SmtSession::ScopeId Parent, std::vector<ExprRef> PathSels,
           std::vector<std::string> PathLabels,
           std::vector<const std::set<ExprRef> *> OuterBases, int64_t Budget,
           FamilySessionStats &Stats, unsigned &SelectorCount);
  PairTier(const PairTier &) = delete;
  PairTier &operator=(const PairTier &) = delete;

  bool discharge(const std::string &PairKey, const MethodPlan &Plan,
                 SymbolicResult &R);
  size_t retirePair(const std::string &PairKey);

private:
  /// The live scope of one pair.
  struct PairScope {
    SmtSession::ScopeId Scope = SmtSession::RootScope;
    ExprRef Sel = nullptr;
    std::set<ExprRef> AssertedCommon; ///< Dedup under this pair's selector.
    std::map<std::string, std::vector<PlanSelectorEntry>> Methods;
  };

  PairScope &ensurePair(const std::string &PairKey);

  ExprFactory &F;
  SmtSession &Session;
  std::string Tag;
  SmtSession::ScopeId Parent;
  std::vector<ExprRef> PathSels;
  std::vector<std::string> PathLabels;
  std::vector<const std::set<ExprRef> *> OuterBases;
  int64_t Budget;
  FamilySessionStats &Stats;
  unsigned &SelectorCount;
  std::map<std::string, PairScope> LivePairs;
  /// Fresh-name counters for re-opened (previously retired) pair scopes.
  std::map<std::string, unsigned> PairEpochs;
};

/// A warm solver session shared by every op-pair of one family
/// (SolveMode::SharedFamily). The family-common prefix is session base;
/// each pair's remaining common prefix lives under a per-pair selector;
/// each method's prefix under a method selector nested inside its pair's.
/// retirePair() permanently deactivates a finished pair, evicts its
/// clauses (selector-guarded, learned, and the pair layer's Tseitin
/// definitions), and recycles its definition variable indices, so both
/// the clause database and the variable array stay bounded by the live
/// scope. Not thread-safe: one FamilySession lives on one worker.
class FamilySession {
public:
  /// Asserts \p Plan's family-common prefix as session base. The plan must
  /// outlive the session (only FamilyName and FamilyCommon are read, so
  /// lazy callers may pass a plan whose Pairs are empty). \p Certify turns
  /// on proof logging before any assertion reaches the solver.
  FamilySession(ExprFactory &F, const FamilyPlan &Plan, int64_t Budget,
                bool Certify = false);
  FamilySession(const FamilySession &) = delete;
  FamilySession &operator=(const FamilySession &) = delete;

  /// Clause-GC configuration (see SharedSession::configureClauseGc);
  /// \p FirstLimit is the --gc-budget knob.
  void configureClauseGc(bool Enabled, int64_t FirstLimit = 0);

  /// Discharges every split of \p Plan under pair \p PairKey's scope,
  /// accumulating statistics into \p R. A retired pair key transparently
  /// gets a fresh scope (re-verification after eviction is legal, it just
  /// re-asserts the pair's prefix). Returns true when the method verifies.
  bool discharge(const std::string &PairKey, const MethodPlan &Plan,
                 SymbolicResult &R);

  /// Permanently retires \p PairKey's scope subtree (pair selector plus
  /// the method selectors nested under it). Returns the number of clauses
  /// evicted (0 when the key has no live scope).
  size_t retirePair(const std::string &PairKey);

  /// Lifetime statistics.
  uint64_t checks() const { return Session.numChecks(); }
  int64_t conflicts() const { return Session.totalConflicts(); }
  uint64_t dbReductions() const {
    return static_cast<uint64_t>(Session.dbReductions());
  }
  uint64_t reclaimedClauses() const {
    return static_cast<uint64_t>(Session.reclaimedClauses());
  }
  uint64_t retainedClauses() const { return Session.retainedClauses(); }
  unsigned numSelectors() const { return SelectorCount; }
  const FamilySessionStats &stats() const { return Stats; }

  /// The underlying session, exposed so tests can assert solver invariants
  /// (reasonInvariantHolds) after evictions.
  SmtSession &session() { return Session; }

  bool certifying() const { return Session.certifying(); }
  /// Runs the independent checker over the session's trace (idempotent).
  const proof::CertifySummary &finishCertification() {
    return Session.finishCertification();
  }

private:
  ExprFactory &F;
  const FamilyPlan &Plan;
  SmtSession Session;
  std::set<ExprRef> FamilyBase; ///< FamilyCommon membership (dedup only).
  unsigned SelectorCount = 0;
  FamilySessionStats Stats;
  PairTier Pairs; ///< Constructed last: captures Session/Stats/counters.
};

/// The whole-catalog discharge plan a CatalogSession runs. Families carry
/// their common prefix (and, for eager callers, their pair plans); the
/// catalog-common prefix is the subset of well-formedness formulas every
/// entry either asserts itself or provably cannot mention (its variables
/// are outside the entry's vocabulary), hoisted to the session root.
struct CatalogPlan {
  std::vector<ExprRef> CatalogCommon;
  std::vector<FamilyPlan> Families;
};

/// Lifetime statistics of one catalog-level session. Per-family counters
/// (prefix asserts/reuses, evictions, peak retention) aggregate the
/// family tiers, live and retired; the variable numbers come from the
/// solver's recycling accounting.
struct CatalogSessionStats {
  uint64_t FamiliesOpened = 0;
  /// Family-subtree retirements (retireFamily calls on a live scope).
  uint64_t FamiliesRetired = 0;
  uint64_t PairsOpened = 0;
  uint64_t PairsRetired = 0;
  uint64_t PrefixAsserts = 0; ///< Catalog + family + pair level.
  uint64_t PrefixReuses = 0;
  uint64_t EvictedClauses = 0;
  uint64_t PeakRetainedClauses = 0;
  /// Variable recycling: indices reclaimed by scope retirements, the
  /// live-variable and clause high-water marks, and the cumulative
  /// variable demand (the allocation a no-recycling run would need).
  uint64_t RecycledVars = 0;
  uint64_t PeakLiveVars = 0;
  uint64_t PeakLiveClauses = 0;
  uint64_t VarRequests = 0;
  /// Bridge-compaction accounting (all zero unless the session was built
  /// with CompactBridges): compaction passes run, theory-atom variables
  /// released back to the recycler, retired-scope selector variables
  /// released (epoch-interned selectors fold instead of pinning the trail
  /// forever), and the live/peak bridge-clause counts the compactor
  /// bounds.
  uint64_t BridgeCompactions = 0;
  uint64_t ReleasedAtomVars = 0;
  uint64_t ReleasedSelectors = 0;
  uint64_t LiveBridges = 0;
  uint64_t PeakLiveBridges = 0;
  /// True when the session loaded a pre-encoded PrefixImage instead of
  /// asserting the catalog-common prefix itself (PrefixAsserts then counts
  /// only the family/pair-level prefixes asserted later).
  bool PrefixImageLoaded = false;
};

/// A warm solver session shared by every family of the catalog
/// (SolveMode::SharedCatalog). The catalog-common prefix is session base;
/// each family's remaining common prefix lives under a per-family
/// selector; pair scopes nest under their family's, method scopes under
/// their pair's. retirePair()/retireFamily() retire whole subtrees, and
/// the solver recycles the retired scopes' definition variables, so the
/// session's memory is bounded by the live pair — not by catalog size —
/// while the atom table and bridge lattice are derived once for all
/// families. Not thread-safe: one CatalogSession lives on one worker.
class CatalogSession {
public:
  /// Asserts \p Plan's catalog-common prefix as session base. The plan
  /// must outlive the session (family Pairs may be empty: lazy callers
  /// materialize pair plans just before discharge). \p Certify turns on
  /// proof logging before any assertion reaches the solver.
  /// \p CompactBridges turns on the session's bridge compactor (theory
  /// atoms are reference-counted by live scope; once every owner retires,
  /// the bridge clauses over them are compacted out and their variables
  /// recycled) — the long-horizon mode the verification service runs in.
  /// \p CompactMinDead is the dead-entry threshold below which a
  /// retirement never triggers a compaction pass. A non-null \p Prefix is
  /// a pre-encoded image of the catalog-common prefix (exported by a
  /// sibling session over the same plan and factory, with the same
  /// CompactBridges flag): the session *loads* it instead of re-encoding,
  /// making shard warm-up a replay instead of a plan-and-encode pass.
  CatalogSession(ExprFactory &F, const CatalogPlan &Plan, int64_t Budget,
                 bool Certify = false, bool CompactBridges = false,
                 size_t CompactMinDead = 64,
                 const PrefixImage *Prefix = nullptr);
  CatalogSession(const CatalogSession &) = delete;
  CatalogSession &operator=(const CatalogSession &) = delete;

  /// Captures the just-asserted catalog-common prefix as a read-only
  /// image for sibling shards (legal only before the first discharge;
  /// see SmtSession::exportPrefix).
  PrefixImage exportPrefix();

  /// Clause-GC configuration (see SharedSession::configureClauseGc).
  void configureClauseGc(bool Enabled, int64_t FirstLimit = 0);

  /// Discharges every split of \p Plan under family \p FamIdx (an index
  /// into the catalog plan's Families) and pair \p PairKey. Opens the
  /// family scope — asserting its remaining common prefix — on first use;
  /// a retired family or pair transparently re-opens under a fresh
  /// epoch-named selector. Returns true when the method verifies.
  bool discharge(size_t FamIdx, const std::string &PairKey,
                 const MethodPlan &Plan, SymbolicResult &R);

  /// Retires one pair's scope subtree. Returns the clauses evicted.
  size_t retirePair(size_t FamIdx, const std::string &PairKey);

  /// Retires family \p FamIdx's whole scope subtree — the family
  /// selector, every still-live pair under it, and their method scopes —
  /// in one solver pass. Returns the clauses evicted.
  size_t retireFamily(size_t FamIdx);

  /// Per-family tier statistics (reset when a retired family re-opens).
  const FamilySessionStats &familyStats(size_t FamIdx) const;
  /// Catalog-level statistics snapshot (aggregates live + retired tiers
  /// and the solver's variable accounting).
  CatalogSessionStats stats() const;

  /// Lifetime statistics.
  uint64_t checks() const { return Session.numChecks(); }
  int64_t conflicts() const { return Session.totalConflicts(); }
  uint64_t dbReductions() const {
    return static_cast<uint64_t>(Session.dbReductions());
  }
  uint64_t reclaimedClauses() const {
    return static_cast<uint64_t>(Session.reclaimedClauses());
  }
  uint64_t retainedClauses() const { return Session.retainedClauses(); }
  unsigned numSelectors() const { return SelectorCount; }

  /// The underlying session, exposed so tests can assert solver
  /// invariants (reasonInvariantHolds) after subtree evictions.
  SmtSession &session() { return Session; }

  /// Restarts the solver's live-variable / live-clause / live-bridge
  /// high-water marks from the current live counts. The service calls
  /// this between catalog passes so each pass's peak is measured
  /// independently (the plateau criterion compares per-pass peaks).
  void resetPeakStats() { Session.resetPeakStats(); }

  bool certifying() const { return Session.certifying(); }
  /// Runs the independent checker over the session's trace (idempotent).
  const proof::CertifySummary &finishCertification() {
    return Session.finishCertification();
  }

private:
  /// The live scope of one family.
  struct FamilyTier {
    bool Alive = false;
    SmtSession::ScopeId Scope = SmtSession::RootScope;
    ExprRef Sel = nullptr;
    std::set<ExprRef> FamilyBase; ///< Formulas under the family selector.
    std::unique_ptr<PairTier> Pairs;
    FamilySessionStats Stats;
  };

  FamilyTier &ensureFamily(size_t FamIdx);

  ExprFactory &F;
  const CatalogPlan &Plan;
  int64_t Budget;
  SmtSession Session;
  std::set<ExprRef> CatalogBase; ///< CatalogCommon membership (dedup only).
  std::vector<FamilyTier> Tiers; ///< Parallel to Plan.Families.
  std::vector<unsigned> FamilyEpochs;
  unsigned SelectorCount = 0;
  CatalogSessionStats CatStats;        ///< Catalog-level counters.
  FamilySessionStats RetiredTierAccum; ///< Folded stats of retired tiers.
};

} // namespace semcomm

#endif // SEMCOMM_COMMUTE_SESSIONPOOL_H
