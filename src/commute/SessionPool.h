//===- commute/SessionPool.h - Shared per-pair solver sessions --*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The discharge layer between the symbolic engines and the smt/ stack.
///
/// The six testing methods of one (family, op-pair) — before/between/after
/// x soundness/completeness (Fig. 2-2) — share almost their entire
/// symbolic-execution prefix. A MethodPlan captures one method's VCs in
/// three layers:
///
///  * Common:  the pair-shared prefix (argument/element well-formedness),
///             identical across the pair's methods;
///  * Scoped:  the method's own prefix (for the single-VC families, the
///             whole VC body), asserted under a per-method *selector
///             literal* so several methods can coexist in one clause
///             database without contaminating each other;
///  * Splits:  the VC instances (one per ArrayList case split), each a
///             set of labeled assumption formulas.
///
/// SharedSession discharges plans in one of three modes:
///
///  * SharedPair (default): one warm SmtSession serves every plan
///    discharged through the session. Common formulas are asserted once,
///    each method's Scoped prefix is asserted as `selector -> formula`,
///    and every split is checked under (selector + split) assumptions.
///    Tseitin definitions, theory bridges, and learned clauses are shared
///    across all methods of the pair — soundness and completeness of one
///    kind share literally their whole encoding.
///  * PerMethod: one warm session per discharge() call (the pre-pair
///    behavior, kept as the comparison baseline).
///  * OneShot: a fresh session per split (the cold-start baseline).
///
/// After an Unsat check, the solver's assumption core is mapped back to the
/// labels of the assumptions it names (selector / split / hint literals),
/// so a verified method records which assumption subset its proof actually
/// needed — the first step toward §5.2.1-style ProofHints minimization.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_COMMUTE_SESSIONPOOL_H
#define SEMCOMM_COMMUTE_SESSIONPOOL_H

#include "smt/SmtSolver.h"

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace semcomm {

/// How the engine discharges the VCs of testing methods.
enum class SolveMode : uint8_t {
  /// A fresh solver session per VC (the historical behavior; cold start
  /// every split). Kept as the baseline the perf benches compare against.
  OneShot,
  /// One warm session per testing method: the method's prefix is asserted
  /// once and every case split is discharged under assumption literals.
  /// The pre-shared-session incremental mode, kept for comparison.
  PerMethod,
  /// One warm session per (family, op-pair): all methods of the pair share
  /// one solver under per-method selector literals. The default.
  SharedPair,
  /// One warm session per *family*: every op-pair's common prefix is
  /// asserted under a per-pair selector, method prefixes under method
  /// selectors nested inside it, and a finished pair's scope is *retired*
  /// (selector falsified, its clauses evicted) so the clause database is
  /// bounded by the live pair plus the family-common prefix instead of
  /// growing with the whole family.
  SharedFamily,
};

const char *solveModeName(SolveMode M);

/// Outcome of symbolically verifying one testing method.
struct SymbolicResult {
  bool Verified = false;
  /// When not verified: whether the solver produced a (possibly spurious)
  /// countermodel or ran out of budget.
  SatResult LastOutcome = SatResult::Unknown;
  uint64_t NumVcs = 0;        ///< VC instances discharged (ArrayList splits).
  int64_t SatConflicts = 0;   ///< Total CDCL conflicts.
  int64_t MaxVcConflicts = 0; ///< Largest single-split conflict count.
  /// Clauses alive in the method's warm session after the last split
  /// (Tseitin definitions + bridges + learned); 0 in one-shot mode, where
  /// nothing is carried over. In SharedPair mode this is the *pair*
  /// session's clause count at the time the method finished.
  uint64_t RetainedClauses = 0;
  /// Clause-database GC activity attributable to this method's discharge.
  uint64_t DbReductions = 0;
  uint64_t ReclaimedClauses = 0;
  /// Union, over all Unsat splits, of the labels of the assumptions the
  /// proofs actually needed (selector / split literals; insertion order,
  /// deduplicated). Empty when every refutation followed from the base
  /// alone.
  std::vector<std::string> CoreLabels;
  std::string Countermodel; ///< Diagnostic atoms of a failed proof.
};

/// One labeled assumption formula (the label names it in unsat cores).
struct TaggedAssumption {
  ExprRef E = nullptr;
  std::string Label;
};

/// One VC instance of a testing method.
struct VcSplit {
  std::vector<TaggedAssumption> Assumed;
  /// Diagnostic prefix for failures, e.g. "n=2 i1=0 i2=1"; empty for the
  /// single-VC families.
  std::string Label;
};

/// The symbolic-discharge plan of one testing method.
struct MethodPlan {
  /// Paper-style method name; also names the selector literal.
  std::string Name;
  /// Pair-common prefix: asserted once per shared session (deduplicated
  /// across the plans discharged through it).
  std::vector<ExprRef> Common;
  /// Method-own prefix: asserted under the method's selector literal in
  /// SharedPair mode, as plain base otherwise.
  std::vector<TaggedAssumption> Scoped;
  /// The VC instances, discharged in order; discharge stops at the first
  /// failure.
  std::vector<VcSplit> Splits;
  /// True when the plan builder met an atom shape outside the bounded
  /// lowering's fragment; the method then reports unverified after its
  /// (truncated) splits run.
  bool Unsupported = false;
  std::string UnsupportedNote;
};

/// One registered method selector with the plan fingerprint it was
/// allocated for (the plan's Common + Scoped formulas; hash-consing makes
/// pointer equality structural equality). The fingerprint guards against
/// two *different* plans sharing a name: a mismatch allocates a fresh
/// selector instead of silently proving the new plan against the old
/// plan's prefix. Shared by SharedSession and FamilySession so the
/// reuse-or-allocate discipline cannot drift between the tiers.
struct PlanSelectorEntry {
  std::vector<ExprRef> Fingerprint;
  ExprRef Sel = nullptr;
};

/// The fingerprint of \p Plan's prefix content, and the selector an entry
/// list already holds for it (nullptr when none matches).
std::vector<ExprRef> planFingerprint(const MethodPlan &Plan);
ExprRef findPlanSelector(const std::vector<PlanSelectorEntry> &Entries,
                         const std::vector<ExprRef> &Fingerprint);

/// A warm solver session shared by the testing methods of one (family,
/// op-pair). Not thread-safe: one SharedSession lives on one worker.
class SharedSession {
public:
  SharedSession(ExprFactory &F, int64_t Budget, SolveMode Mode)
      : F(F), Budget(Budget), Mode(Mode) {}
  SharedSession(const SharedSession &) = delete;
  SharedSession &operator=(const SharedSession &) = delete;

  /// Discharges every split of \p Plan, accumulating statistics into \p R.
  /// Returns true when all splits are refuted (the method verifies).
  bool discharge(const MethodPlan &Plan, SymbolicResult &R);

  /// Clause-GC configuration applied to every solver this session opens
  /// (benches pin the no-GC baseline; tests force aggressive reduction).
  void configureClauseGc(bool Enabled, int64_t FirstLimit = 0) {
    GcEnabled = Enabled;
    GcLimit = FirstLimit;
  }

  /// Lifetime statistics (across re-opened sessions in the non-shared
  /// modes).
  uint64_t checks() const;
  int64_t conflicts() const;
  uint64_t dbReductions() const;
  uint64_t reclaimedClauses() const;
  /// Clauses alive in the current warm solver (0 when none is open).
  uint64_t retainedClauses() const;
  unsigned numSelectors() const { return SelectorCount; }
  size_t sessionsOpened() const { return SessionsOpened; }

private:
  void openSession();
  void assertPrefix(const MethodPlan &Plan, ExprRef Sel);

  ExprFactory &F;
  int64_t Budget;
  SolveMode Mode;
  bool GcEnabled = true;
  int64_t GcLimit = 0; ///< 0 keeps the solver default.

  std::unique_ptr<SmtSession> Session;
  std::set<ExprRef> AssertedCommon; ///< Dedup only; never iterated.

  /// Registered selectors, keyed by plan name (see PlanSelectorEntry).
  std::map<std::string, std::vector<PlanSelectorEntry>> Selectors;
  unsigned SelectorCount = 0;
  size_t SessionsOpened = 0;

  // Totals of sessions already closed (OneShot / PerMethod modes).
  uint64_t ClosedChecks = 0;
  int64_t ClosedConflicts = 0;
  uint64_t ClosedReductions = 0;
  uint64_t ClosedReclaimed = 0;
};

/// The discharge plans of one (family, op-pair): the six testing methods
/// in (kind x role) enumeration order.
struct PairPlan {
  std::string Key; ///< "op1,op2" — scopes the pair inside a FamilySession.
  std::vector<MethodPlan> Methods;
};

/// The whole-family discharge plan a FamilySession runs.
struct FamilyPlan {
  std::string FamilyName;
  /// Well-formedness formulas present in *every* method plan's Common
  /// prefix across the family: asserted once as unguarded session base
  /// (they constrain only the family's shared argument/element vocabulary,
  /// so they are sound for every pair).
  std::vector<ExprRef> FamilyCommon;
  std::vector<PairPlan> Pairs;
};

/// Lifetime statistics of one family-level session.
struct FamilySessionStats {
  uint64_t PairsOpened = 0;    ///< Pair scopes allocated.
  uint64_t PairsRetired = 0;   ///< Pair scopes evicted (retirePair calls).
  uint64_t EvictedClauses = 0; ///< Clauses eviction removed from the DB.
  /// High-water mark of retained clauses across every check — the number
  /// scoped eviction is meant to bound (without it, the DB grows with the
  /// family; with it, with the live pair).
  uint64_t PeakRetainedClauses = 0;
  /// Common-prefix assertions actually issued vs. skipped because the
  /// formula was already in the family base or the pair scope (the
  /// amortization the family tier exists for).
  uint64_t PrefixAsserts = 0;
  uint64_t PrefixReuses = 0;
};

/// A warm solver session shared by every op-pair of one family
/// (SolveMode::SharedFamily). The family-common prefix is session base;
/// each pair's remaining common prefix lives under a per-pair selector;
/// each method's prefix under a method selector nested inside its pair's.
/// retirePair() permanently deactivates a finished pair and evicts its
/// clauses, so the database stays bounded by the live scope. Not
/// thread-safe: one FamilySession lives on one worker.
class FamilySession {
public:
  /// Asserts \p Plan's family-common prefix as session base. The plan must
  /// outlive the session.
  FamilySession(ExprFactory &F, const FamilyPlan &Plan, int64_t Budget);
  FamilySession(const FamilySession &) = delete;
  FamilySession &operator=(const FamilySession &) = delete;

  /// Clause-GC configuration (see SharedSession::configureClauseGc);
  /// \p FirstLimit is the --gc-budget knob.
  void configureClauseGc(bool Enabled, int64_t FirstLimit = 0);

  /// Discharges every split of \p Plan under pair \p PairKey's scope,
  /// accumulating statistics into \p R. A retired pair key transparently
  /// gets a fresh scope (re-verification after eviction is legal, it just
  /// re-asserts the pair's prefix). Returns true when the method verifies.
  bool discharge(const std::string &PairKey, const MethodPlan &Plan,
                 SymbolicResult &R);

  /// Permanently retires \p PairKey's scope: its selector is falsified at
  /// root, its prefix clauses and scope-touching learned clauses are
  /// evicted, and dead variables' search state is recycled. Returns the
  /// number of clauses evicted (0 when the key has no live scope).
  size_t retirePair(const std::string &PairKey);

  /// Lifetime statistics.
  uint64_t checks() const { return Session.numChecks(); }
  int64_t conflicts() const { return Session.totalConflicts(); }
  uint64_t dbReductions() const {
    return static_cast<uint64_t>(Session.dbReductions());
  }
  uint64_t reclaimedClauses() const {
    return static_cast<uint64_t>(Session.reclaimedClauses());
  }
  uint64_t retainedClauses() const { return Session.retainedClauses(); }
  unsigned numSelectors() const { return SelectorCount; }
  const FamilySessionStats &stats() const { return Stats; }

  /// The underlying session, exposed so tests can assert solver invariants
  /// (reasonInvariantHolds) after evictions.
  SmtSession &session() { return Session; }

private:
  /// The live scope of one pair.
  struct PairScope {
    ExprRef Sel = nullptr;
    std::set<ExprRef> AssertedCommon; ///< Dedup under this pair's selector.
    std::map<std::string, std::vector<PlanSelectorEntry>> Methods;
    std::vector<ExprRef> MethodSels; ///< For retirement, insertion order.
  };

  PairScope &ensurePair(const std::string &PairKey);

  ExprFactory &F;
  const FamilyPlan &Plan;
  int64_t Budget;
  SmtSession Session;
  std::set<ExprRef> FamilyBase; ///< FamilyCommon membership (dedup only).
  std::map<std::string, PairScope> LivePairs;
  /// Fresh-name counters for re-opened (previously retired) pair scopes.
  std::map<std::string, unsigned> PairEpochs;
  unsigned SelectorCount = 0;
  FamilySessionStats Stats;
};

} // namespace semcomm

#endif // SEMCOMM_COMMUTE_SESSIONPOOL_H
