//===- commute/ExhaustiveEngine.h - Bounded-exhaustive verifier -*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ground-truth verification engine. A testing method (Fig. 3-1/3-2) is
/// a universally quantified claim over the initial abstract state and the
/// operations' arguments; this engine enumerates every scenario within a
/// finite Scope and checks the claim directly against the executable
/// operation specifications:
///
///   Soundness (Property 1): pre1(s1) && pre2(s2) && phi  implies  the
///   reverse order's preconditions hold, recorded return values agree, and
///   the final abstract states agree.
///
///   Completeness (Property 2): pre1(s1) && pre2(s2) && !phi  implies  a
///   reverse-order precondition fails, a recorded return value differs, or
///   the final abstract states differ.
///
/// DESIGN.md §4.1 gives the small-scope adequacy argument; the test suite's
/// scope-stability sweep cross-checks it empirically.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_COMMUTE_EXHAUSTIVEENGINE_H
#define SEMCOMM_COMMUTE_EXHAUSTIVEENGINE_H

#include "commute/TestingMethod.h"

#include <cstdint>
#include <optional>
#include <string>

namespace semcomm {

/// A concrete scenario falsifying a testing method.
struct Counterexample {
  AbstractState Initial;
  ArgList Args1, Args2;
  std::string Explanation;

  /// Multi-line human-readable rendering.
  std::string str() const;
};

/// Outcome of verifying one testing method.
struct VerifyResult {
  bool Verified = false;
  std::optional<Counterexample> CE;
  uint64_t ScenariosChecked = 0;
};

/// Bounded-exhaustive checker for testing methods and for ad-hoc candidate
/// conditions (used by the lattice and the tests' mutation checks).
class ExhaustiveEngine {
public:
  explicit ExhaustiveEngine(Scope S = Scope()) : Bounds(S) {}

  /// Verifies one generated testing method.
  VerifyResult verify(const TestingMethod &M) const;

  /// Verifies role \p R of an arbitrary candidate condition \p Phi for the
  /// ordered pair (\p Op1Name, \p Op2Name) of \p Fam at kind \p K. This is
  /// how sound-but-incomplete lattice conditions are checked.
  VerifyResult verifyCondition(const Family &Fam, const std::string &Op1Name,
                               const std::string &Op2Name, ConditionKind K,
                               MethodRole R, ExprRef Phi) const;

  const Scope &scope() const { return Bounds; }

private:
  Scope Bounds;
};

} // namespace semcomm

#endif // SEMCOMM_COMMUTE_EXHAUSTIVEENGINE_H
