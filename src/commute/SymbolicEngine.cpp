//===- commute/SymbolicEngine.cpp - VC-based verification -------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "commute/SymbolicEngine.h"

#include "support/Timing.h"
#include "support/Unreachable.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <set>

using namespace semcomm;

namespace {

/// The symbolic result of one operation application: exactly one member is
/// meaningful, discriminated by K.
struct SymValue {
  enum class Kind { None, BoolFormula, ObjTerm, ObjLeaves, IntConst, IdxTerm,
                    IntTerm, SizeSnapshot };
  Kind K = Kind::None;

  ExprRef Formula = nullptr;                          ///< BoolFormula.
  ExprRef Term = nullptr;   ///< ObjTerm / IdxTerm marker / IntTerm.
  std::vector<std::pair<ExprRef, ExprRef>> Leaves;    ///< ObjLeaves.
  int64_t IntVal = 0;                                 ///< IntConst.
  std::vector<std::pair<ExprRef, int>> Deltas;        ///< SizeSnapshot.
};

/// Enumerate all boolean assignments of the conditions in \p Deltas and
/// keep those where the two delta sums agree; used for size()-result and
/// size-field equality goals (at most a handful of conditions occur).
ExprRef sizeAgreement(ExprFactory &F,
                      const std::vector<std::pair<ExprRef, int>> &A,
                      const std::vector<std::pair<ExprRef, int>> &B) {
  std::vector<std::pair<ExprRef, int>> All = A;
  All.insert(All.end(), B.begin(), B.end());
  size_t NA = A.size();
  std::vector<ExprRef> Cases;
  for (unsigned Mask = 0; Mask < (1u << All.size()); ++Mask) {
    int64_t SumA = 0, SumB = 0;
    std::vector<ExprRef> Conj;
    for (size_t I = 0; I != All.size(); ++I) {
      bool On = Mask & (1u << I);
      Conj.push_back(On ? All[I].first : F.lnot(All[I].first));
      if (On)
        (I < NA ? SumA : SumB) += All[I].second;
    }
    if (SumA == SumB)
      Cases.push_back(F.conj(std::move(Conj)));
  }
  return F.disj(std::move(Cases));
}

/// Generic bottom-up rewrite of a condition formula, delegating every
/// state-query / comparison atom to \p OnAtom.
ExprRef rewriteBool(ExprFactory &F, ExprRef E,
                    const std::function<ExprRef(ExprRef)> &OnAtom) {
  switch (E->kind()) {
  case ExprKind::ConstBool:
    return E;
  case ExprKind::Not:
    return F.lnot(rewriteBool(F, E->operand(0), OnAtom));
  case ExprKind::And:
  case ExprKind::Or: {
    std::vector<ExprRef> Ops;
    for (ExprRef Op : E->operands())
      Ops.push_back(rewriteBool(F, Op, OnAtom));
    return E->kind() == ExprKind::And ? F.conj(std::move(Ops))
                                      : F.disj(std::move(Ops));
  }
  case ExprKind::Implies:
    return F.implies(rewriteBool(F, E->operand(0), OnAtom),
                     rewriteBool(F, E->operand(1), OnAtom));
  case ExprKind::Iff:
    return F.iff(rewriteBool(F, E->operand(0), OnAtom),
                 rewriteBool(F, E->operand(1), OnAtom));
  default:
    return OnAtom(E);
  }
}

/// The two VC shapes shared by every family: soundness refutes
/// Phi ∧ ¬Agree, completeness refutes ¬Phi ∧ Agree. For the single-VC
/// families the whole body goes into the plan's selector-scoped prefix and
/// the lone split carries no extra assumptions.
void addRoleVc(MethodPlan &P, ExprFactory &F, MethodRole Role, ExprRef Phi,
               ExprRef Agree) {
  if (Role == MethodRole::Soundness) {
    P.Scoped.push_back({Phi, "phi"});
    P.Scoped.push_back({F.lnot(Agree), "not-agree"});
  } else {
    P.Scoped.push_back({F.lnot(Phi), "not-phi"});
    P.Scoped.push_back({Agree, "agree"});
  }
  P.Splits.push_back(VcSplit{});
}

/// The per-split assumption pair of the multi-VC (ArrayList) family.
std::vector<TaggedAssumption> roleAssumptions(ExprFactory &F,
                                              MethodRole Role, ExprRef Phi,
                                              ExprRef Agree) {
  if (Role == MethodRole::Soundness)
    return {{Phi, "phi"}, {F.lnot(Agree), "not-agree"}};
  return {{F.lnot(Phi), "not-phi"}, {Agree, "agree"}};
}

// ===========================================================================
// Accumulator
// ===========================================================================

MethodPlan buildCounterPlan(ExprFactory &F, const TestingMethod &M) {
  const ConditionEntry &E = *M.Entry;
  ExprRef C0 = F.var("c0", Sort::Int);

  auto Arg = [&F](const Operation &Op, int Pos) -> ExprRef {
    if (Op.ArgSorts.empty())
      return nullptr;
    return F.var(Op.ArgBaseNames[0] + std::to_string(Pos), Sort::Int);
  };
  ExprRef A1 = Arg(E.op1(), 1), A2 = Arg(E.op2(), 2);

  auto Apply = [&F](const Operation &Op, ExprRef ArgTerm,
                    ExprRef &State) -> ExprRef {
    if (Op.Name == "increase") {
      State = F.add(State, ArgTerm);
      return nullptr;
    }
    return State; // read()
  };

  // First order on "a", reverse order on "b".
  ExprRef SA = C0, SB = C0;
  ExprRef S1 = C0;
  ExprRef R1a = Apply(E.op1(), A1, SA);
  ExprRef S2 = SA;
  ExprRef R2a = Apply(E.op2(), A2, SA);
  ExprRef S3 = SA;
  ExprRef R2b = Apply(E.op2(), A2, SB);
  ExprRef R1b = Apply(E.op1(), A1, SB);

  // Unfold the condition: counter queries map to the matching state term.
  auto OnAtom = [&](ExprRef Atom) -> ExprRef {
    std::map<std::string, ExprRef> Subst;
    if (E.op1().RecordsReturn && R1a)
      Subst["r1"] = R1a;
    if (E.op2().RecordsReturn && R2a)
      Subst["r2"] = R2a;
    ExprRef A = F.substitute(Atom, Subst);
    // Replace counter-value queries textually by their terms.
    std::function<ExprRef(ExprRef)> Go = [&](ExprRef X) -> ExprRef {
      if (X->kind() == ExprKind::CounterValue) {
        const std::string &N = X->operand(0)->name();
        return N == "s1" ? S1 : (N == "s2" ? S2 : S3);
      }
      if (X->numOperands() == 0)
        return X;
      std::vector<ExprRef> Ops;
      for (ExprRef Op : X->operands())
        Ops.push_back(Go(Op));
      switch (X->kind()) {
      case ExprKind::Eq:
        return F.eq(Ops[0], Ops[1]);
      case ExprKind::Lt:
        return F.lt(Ops[0], Ops[1]);
      case ExprKind::Le:
        return F.le(Ops[0], Ops[1]);
      case ExprKind::Add:
        return F.add(Ops[0], Ops[1]);
      case ExprKind::Sub:
        return F.sub(Ops[0], Ops[1]);
      case ExprKind::Neg:
        return F.neg(Ops[0]);
      default:
        return X;
      }
    };
    return Go(A);
  };
  ExprRef Phi = rewriteBool(F, E.get(M.Kind), OnAtom);

  std::vector<ExprRef> Agree;
  if (E.op1().RecordsReturn && R1a)
    Agree.push_back(F.eq(R1a, R1b));
  if (E.op2().RecordsReturn && R2a)
    Agree.push_back(F.eq(R2a, R2b));
  Agree.push_back(F.eq(SA, SB));
  ExprRef AgreeAll = F.conj(std::move(Agree));

  MethodPlan P;
  P.Name = M.name();
  addRoleVc(P, F, M.Role, Phi, AgreeAll);
  return P;
}

// ===========================================================================
// Set
// ===========================================================================

/// A symbolic set: the uninterpreted initial set S0 plus an update chain.
struct SymSet {
  std::vector<std::pair<bool, ExprRef>> Updates; ///< (isInsert, element).
  std::vector<std::pair<ExprRef, int>> Deltas;   ///< size changes.
};

ExprRef setMem(ExprFactory &F, ExprRef S0, const SymSet &S, ExprRef X) {
  ExprRef M = F.setContains(S0, X);
  for (const auto &[IsInsert, V] : S.Updates)
    M = IsInsert ? F.disj({F.eq(X, V), M}) : F.conj({F.ne(X, V), M});
  return M;
}

MethodPlan buildSetPlan(ExprFactory &F, const TestingMethod &M) {
  const ConditionEntry &E = *M.Entry;
  ExprRef S0 = F.var("S0", Sort::State);
  ExprRef V1 = F.var("v1", Sort::Obj), V2 = F.var("v2", Sort::Obj);

  auto Apply = [&](const Operation &Op, ExprRef V, SymSet &S) -> SymValue {
    SymValue R;
    if (Op.CallName == "add") {
      R.K = SymValue::Kind::BoolFormula;
      R.Formula = F.lnot(setMem(F, S0, S, V));
      S.Deltas.push_back({R.Formula, +1});
      S.Updates.push_back({true, V});
    } else if (Op.CallName == "remove") {
      R.K = SymValue::Kind::BoolFormula;
      R.Formula = setMem(F, S0, S, V);
      S.Deltas.push_back({R.Formula, -1});
      S.Updates.push_back({false, V});
    } else if (Op.CallName == "contains") {
      R.K = SymValue::Kind::BoolFormula;
      R.Formula = setMem(F, S0, S, V);
    } else { // size
      R.K = SymValue::Kind::SizeSnapshot;
      R.Deltas = S.Deltas;
    }
    return R;
  };

  auto ArgOf = [&](const Operation &Op, ExprRef V) -> ExprRef {
    return Op.ArgSorts.empty() ? nullptr : V;
  };

  SymSet SA, SB;
  SymSet St1 = SA; // initial snapshot (empty update chain)
  SymValue R1a = Apply(E.op1(), ArgOf(E.op1(), V1), SA);
  SymSet St2 = SA;
  SymValue R2a = Apply(E.op2(), ArgOf(E.op2(), V2), SA);
  SymSet St3 = SA;
  SymValue R2b = Apply(E.op2(), ArgOf(E.op2(), V2), SB);
  SymValue R1b = Apply(E.op1(), ArgOf(E.op1(), V1), SB);

  auto StateAt = [&](const std::string &N) -> const SymSet & {
    return N == "s1" ? St1 : (N == "s2" ? St2 : St3);
  };

  // Condition unfolding: membership atoms through the chains; r1/r2 by
  // their result formulas (bool-returning operations only, per catalog).
  auto OnAtom = [&](ExprRef Atom) -> ExprRef {
    if (Atom->kind() == ExprKind::SetContains)
      return setMem(F, S0, StateAt(Atom->operand(0)->name()),
                    Atom->operand(1));
    if (Atom->kind() == ExprKind::Var && Atom->sort() == Sort::Bool) {
      if (Atom->name() == "r1" && R1a.K == SymValue::Kind::BoolFormula)
        return R1a.Formula;
      if (Atom->name() == "r2" && R2a.K == SymValue::Kind::BoolFormula)
        return R2a.Formula;
    }
    return Atom;
  };
  ExprRef Phi = rewriteBool(F, E.get(M.Kind), OnAtom);

  auto RetEq = [&](const SymValue &A, const SymValue &B) -> ExprRef {
    if (A.K == SymValue::Kind::BoolFormula)
      return F.iff(A.Formula, B.Formula);
    assert(A.K == SymValue::Kind::SizeSnapshot && "unexpected set return");
    return sizeAgreement(F, A.Deltas, B.Deltas);
  };

  std::vector<ExprRef> Agree;
  if (E.op1().RecordsReturn)
    Agree.push_back(RetEq(R1a, R1b));
  if (E.op2().RecordsReturn)
    Agree.push_back(RetEq(R2a, R2b));
  // Extensionality at the touched elements is exact: no other element's
  // membership is affected by either order.
  for (ExprRef X : {V1, V2})
    Agree.push_back(F.iff(setMem(F, S0, SA, X), setMem(F, S0, SB, X)));
  ExprRef AgreeAll = F.conj(std::move(Agree));

  MethodPlan P;
  P.Name = M.name();
  P.Common = {F.ne(V1, F.nullConst()), F.ne(V2, F.nullConst())};
  addRoleVc(P, F, M.Role, Phi, AgreeAll);
  return P;
}

// ===========================================================================
// Map
// ===========================================================================

/// A symbolic map: the uninterpreted initial map M0 plus an update chain.
struct SymMap {
  struct Update {
    bool IsPut;
    ExprRef Key;
    ExprRef Val; ///< Null for removals.
  };
  std::vector<Update> Updates;
  std::vector<std::pair<ExprRef, int>> Deltas;
};

using LeafVec = std::vector<std::pair<ExprRef, ExprRef>>;

LeafVec mapGetLeaves(ExprFactory &F, ExprRef M0, const SymMap &S, ExprRef K) {
  LeafVec Leaves = {{F.trueExpr(), F.mapGet(M0, K)}};
  for (const SymMap::Update &U : S.Updates) {
    LeafVec Next;
    Next.push_back({F.eq(K, U.Key), U.IsPut ? U.Val : F.nullConst()});
    for (auto &[C, T] : Leaves)
      Next.push_back({F.conj({F.ne(K, U.Key), C}), T});
    Leaves = std::move(Next);
  }
  return Leaves;
}

ExprRef mapHasKey(ExprFactory &F, ExprRef M0, const SymMap &S, ExprRef K) {
  ExprRef H = F.ne(F.mapGet(M0, K), F.nullConst());
  for (const SymMap::Update &U : S.Updates)
    H = U.IsPut ? F.disj({F.eq(K, U.Key), H})
                : F.conj({F.ne(K, U.Key), H});
  return H;
}

ExprRef leavesEqual(ExprFactory &F, const LeafVec &A, const LeafVec &B) {
  std::vector<ExprRef> Cases;
  for (const auto &[CA, TA] : A)
    for (const auto &[CB, TB] : B)
      Cases.push_back(F.conj({CA, CB, F.eq(TA, TB)}));
  return F.disj(std::move(Cases));
}

MethodPlan buildMapPlan(ExprFactory &F, const TestingMethod &M) {
  const ConditionEntry &E = *M.Entry;
  ExprRef M0 = F.var("M0", Sort::State);

  auto Args = [&](const Operation &Op, int Pos) -> std::vector<ExprRef> {
    std::vector<ExprRef> Out;
    for (const std::string &Base : Op.ArgBaseNames)
      Out.push_back(F.var(Base + std::to_string(Pos), Sort::Obj));
    return Out;
  };
  std::vector<ExprRef> A1 = Args(E.op1(), 1), A2 = Args(E.op2(), 2);

  auto Apply = [&](const Operation &Op, const std::vector<ExprRef> &A,
                   SymMap &S) -> SymValue {
    SymValue R;
    if (Op.CallName == "put") {
      R.K = SymValue::Kind::ObjLeaves;
      R.Leaves = mapGetLeaves(F, M0, S, A[0]);
      S.Deltas.push_back({F.lnot(mapHasKey(F, M0, S, A[0])), +1});
      S.Updates.push_back({true, A[0], A[1]});
    } else if (Op.CallName == "remove") {
      R.K = SymValue::Kind::ObjLeaves;
      R.Leaves = mapGetLeaves(F, M0, S, A[0]);
      S.Deltas.push_back({mapHasKey(F, M0, S, A[0]), -1});
      S.Updates.push_back({false, A[0], nullptr});
    } else if (Op.CallName == "get") {
      R.K = SymValue::Kind::ObjLeaves;
      R.Leaves = mapGetLeaves(F, M0, S, A[0]);
    } else if (Op.CallName == "containsKey") {
      R.K = SymValue::Kind::BoolFormula;
      R.Formula = mapHasKey(F, M0, S, A[0]);
    } else { // size
      R.K = SymValue::Kind::SizeSnapshot;
      R.Deltas = S.Deltas;
    }
    return R;
  };

  SymMap SA, SB;
  SymMap St1 = SA;
  SymValue R1a = Apply(E.op1(), A1, SA);
  SymMap St2 = SA;
  SymValue R2a = Apply(E.op2(), A2, SA);
  SymMap St3 = SA;
  SymValue R2b = Apply(E.op2(), A2, SB);
  SymValue R1b = Apply(E.op1(), A1, SB);

  auto StateAt = [&](const std::string &N) -> const SymMap & {
    return N == "s1" ? St1 : (N == "s2" ? St2 : St3);
  };

  // Leaf representation of a term occurring in a condition atom.
  auto LeafRep = [&](ExprRef T) -> LeafVec {
    if (T->kind() == ExprKind::MapGet)
      return mapGetLeaves(F, M0, StateAt(T->operand(0)->name()),
                          T->operand(1));
    if (T->kind() == ExprKind::Var && T->sort() == Sort::Obj) {
      if (T->name() == "r1" && R1a.K == SymValue::Kind::ObjLeaves)
        return R1a.Leaves;
      if (T->name() == "r2" && R2a.K == SymValue::Kind::ObjLeaves)
        return R2a.Leaves;
    }
    return {{F.trueExpr(), T}};
  };

  auto OnAtom = [&](ExprRef Atom) -> ExprRef {
    if (Atom->kind() == ExprKind::MapHasKey)
      return mapHasKey(F, M0, StateAt(Atom->operand(0)->name()),
                       Atom->operand(1));
    if (Atom->kind() == ExprKind::Eq &&
        Atom->operand(0)->sort() == Sort::Obj)
      return leavesEqual(F, LeafRep(Atom->operand(0)),
                         LeafRep(Atom->operand(1)));
    if (Atom->kind() == ExprKind::Var && Atom->sort() == Sort::Bool) {
      if (Atom->name() == "r1" && R1a.K == SymValue::Kind::BoolFormula)
        return R1a.Formula;
      if (Atom->name() == "r2" && R2a.K == SymValue::Kind::BoolFormula)
        return R2a.Formula;
    }
    return Atom;
  };
  ExprRef Phi = rewriteBool(F, E.get(M.Kind), OnAtom);

  auto RetEq = [&](const SymValue &A, const SymValue &B) -> ExprRef {
    switch (A.K) {
    case SymValue::Kind::ObjLeaves:
      return leavesEqual(F, A.Leaves, B.Leaves);
    case SymValue::Kind::BoolFormula:
      return F.iff(A.Formula, B.Formula);
    case SymValue::Kind::SizeSnapshot:
      return sizeAgreement(F, A.Deltas, B.Deltas);
    default:
      semcomm_unreachable("unexpected map return kind");
    }
  };

  std::vector<ExprRef> Agree;
  if (E.op1().RecordsReturn)
    Agree.push_back(RetEq(R1a, R1b));
  if (E.op2().RecordsReturn)
    Agree.push_back(RetEq(R2a, R2b));
  // Key extensionality at the touched keys is exact.
  std::vector<ExprRef> Keys;
  if (!A1.empty())
    Keys.push_back(A1[0]);
  if (!A2.empty())
    Keys.push_back(A2[0]);
  for (ExprRef K : Keys)
    Agree.push_back(leavesEqual(F, mapGetLeaves(F, M0, SA, K),
                                mapGetLeaves(F, M0, SB, K)));
  ExprRef AgreeAll = F.conj(std::move(Agree));

  MethodPlan P;
  P.Name = M.name();
  for (const std::vector<ExprRef> *V : {&A1, &A2})
    for (ExprRef T : *V)
      P.Common.push_back(F.ne(T, F.nullConst()));
  addRoleVc(P, F, M.Role, Phi, AgreeAll);
  return P;
}

// ===========================================================================
// ArrayList (bounded symbolic mode)
// ===========================================================================

/// One symbolic sequence: a vector of object terms (length is concrete in
/// bounded mode; the elements are not).
using SymSeq = std::vector<ExprRef>;

/// Formula: "the first (or last) index of V in Snap is exactly J".
ExprRef idxIs(ExprFactory &F, const SymSeq &Snap, ExprRef V, int64_t J,
              bool Last) {
  int64_t N = static_cast<int64_t>(Snap.size());
  if (J == -1) {
    std::vector<ExprRef> C;
    for (ExprRef T : Snap)
      C.push_back(F.ne(T, V));
    return F.conj(std::move(C));
  }
  if (J < 0 || J >= N)
    return F.falseExpr();
  std::vector<ExprRef> C;
  if (!Last)
    for (int64_t P = 0; P < J; ++P)
      C.push_back(F.ne(Snap[P], V));
  else
    for (int64_t P = J + 1; P < N; ++P)
      C.push_back(F.ne(Snap[P], V));
  C.push_back(F.eq(Snap[static_cast<size_t>(J)], V));
  return F.conj(std::move(C));
}

/// The per-scenario context of the bounded ArrayList verification.
struct SeqScenario {
  ExprFactory &F;
  std::map<std::string, const SymSeq *> Snapshots; ///< s1/s2/s3/ret markers.
  bool SawUnsupportedAtom = false;

  /// Lowers an integer comparison possibly involving indexOf terms.
  ExprRef lowerIntCmp(ExprKind K, ExprRef A, ExprRef B);
  /// Lowers one atom.
  ExprRef onAtom(ExprRef Atom);
  /// Rewrites object terms: seq reads become element terms or undef.
  ExprRef lowerObj(ExprRef T);
  /// Evaluates an integer expression with no indexOf terms to a constant.
  bool constInt(ExprRef T, int64_t &Out);
};

bool SeqScenario::constInt(ExprRef T, int64_t &Out) {
  switch (T->kind()) {
  case ExprKind::ConstInt:
    Out = T->intValue();
    return true;
  case ExprKind::Add: {
    int64_t L, R;
    if (!constInt(T->operand(0), L) || !constInt(T->operand(1), R))
      return false;
    Out = L + R;
    return true;
  }
  case ExprKind::Sub: {
    int64_t L, R;
    if (!constInt(T->operand(0), L) || !constInt(T->operand(1), R))
      return false;
    Out = L - R;
    return true;
  }
  case ExprKind::Neg: {
    int64_t L;
    if (!constInt(T->operand(0), L))
      return false;
    Out = -L;
    return true;
  }
  case ExprKind::SeqLen:
  case ExprKind::StateSize: {
    auto It = Snapshots.find(T->operand(0)->name());
    if (It == Snapshots.end())
      return false;
    Out = static_cast<int64_t>(It->second->size());
    return true;
  }
  default:
    return false;
  }
}

ExprRef SeqScenario::lowerObj(ExprRef T) {
  if (T->kind() == ExprKind::SeqAt) {
    auto It = Snapshots.find(T->operand(0)->name());
    assert(It != Snapshots.end() && "unknown sequence snapshot");
    int64_t I;
    if (!constInt(T->operand(1), I))
      return F.var("__undef", Sort::Obj);
    if (I < 0 || I >= static_cast<int64_t>(It->second->size()))
      return F.var("__undef", Sort::Obj);
    return (*It->second)[static_cast<size_t>(I)];
  }
  return T;
}

/// Splits an integer side into (indexOf terms with sign, constant rest).
static void splitIdx(ExprRef T, int Sign,
                     std::vector<std::pair<ExprRef, int>> &Idx,
                     std::vector<std::pair<ExprRef, int>> &Opaque) {
  switch (T->kind()) {
  case ExprKind::Add:
    splitIdx(T->operand(0), Sign, Idx, Opaque);
    splitIdx(T->operand(1), Sign, Idx, Opaque);
    return;
  case ExprKind::Sub:
    splitIdx(T->operand(0), Sign, Idx, Opaque);
    splitIdx(T->operand(1), -Sign, Idx, Opaque);
    return;
  case ExprKind::Neg:
    splitIdx(T->operand(0), -Sign, Idx, Opaque);
    return;
  case ExprKind::SeqIndexOf:
  case ExprKind::SeqLastIndexOf:
    Idx.push_back({T, Sign});
    return;
  default:
    Opaque.push_back({T, Sign});
    return;
  }
}

ExprRef SeqScenario::lowerIntCmp(ExprKind K, ExprRef A, ExprRef B) {
  std::vector<std::pair<ExprRef, int>> Idx, Opaque;
  splitIdx(A, 1, Idx, Opaque);
  splitIdx(B, -1, Idx, Opaque);

  int64_t Const = 0;
  for (auto &[T, Sign] : Opaque) {
    int64_t V;
    if (!constInt(T, V)) {
      SawUnsupportedAtom = true;
      return F.var("__unknown_atom", Sort::Bool);
    }
    Const += Sign * V;
  }

  auto Resolve = [&](ExprRef T) -> std::pair<const SymSeq *, bool> {
    auto It = Snapshots.find(T->operand(0)->name());
    assert(It != Snapshots.end() && "unknown sequence snapshot");
    return {It->second, T->kind() == ExprKind::SeqLastIndexOf};
  };

  if (Idx.empty()) {
    // Pure constants: idx-free comparisons fold.
    switch (K) {
    case ExprKind::Eq:
      return F.boolConst(Const == 0);
    case ExprKind::Lt:
      return F.boolConst(Const < 0);
    case ExprKind::Le:
      return F.boolConst(Const <= 0);
    default:
      semcomm_unreachable("bad comparison kind");
    }
  }

  if (Idx.size() == 1) {
    // sign*idx + Const  K  0.
    auto [Snap, Last] = Resolve(Idx[0].first);
    ExprRef V = lowerObj(Idx[0].first->operand(1));
    int Sign = Idx[0].second;
    std::vector<ExprRef> Cases;
    int64_t N = static_cast<int64_t>(Snap->size());
    for (int64_t J = -1; J < N; ++J) {
      int64_t Lhs = Sign * J + Const;
      bool Holds = K == ExprKind::Eq   ? (Lhs == 0)
                   : K == ExprKind::Lt ? (Lhs < 0)
                                       : (Lhs <= 0);
      if (Holds)
        Cases.push_back(idxIs(F, *Snap, V, J, Last));
    }
    return F.disj(std::move(Cases));
  }

  if (Idx.size() == 2 && K == ExprKind::Eq && Idx[0].second * Idx[1].second < 0) {
    // idxA - idxB + Const = 0.
    auto [SnapA, LastA] = Resolve(Idx[0].first);
    auto [SnapB, LastB] = Resolve(Idx[1].first);
    ExprRef VA = lowerObj(Idx[0].first->operand(1));
    ExprRef VB = lowerObj(Idx[1].first->operand(1));
    int SignA = Idx[0].second;
    std::vector<ExprRef> Cases;
    int64_t NA = static_cast<int64_t>(SnapA->size());
    int64_t NB = static_cast<int64_t>(SnapB->size());
    for (int64_t JA = -1; JA < NA; ++JA)
      for (int64_t JB = -1; JB < NB; ++JB) {
        if (SignA * JA - SignA * JB + Const != 0)
          continue;
        Cases.push_back(F.conj({idxIs(F, *SnapA, VA, JA, LastA),
                                idxIs(F, *SnapB, VB, JB, LastB)}));
      }
    return F.disj(std::move(Cases));
  }

  SawUnsupportedAtom = true;
  return F.var("__unknown_atom", Sort::Bool);
}

ExprRef SeqScenario::onAtom(ExprRef Atom) {
  switch (Atom->kind()) {
  case ExprKind::Eq: {
    if (Atom->operand(0)->sort() == Sort::Obj) {
      ExprRef A = lowerObj(Atom->operand(0));
      ExprRef B = lowerObj(Atom->operand(1));
      if (A->kind() == ExprKind::Var && A->name() == "__undef")
        return F.falseExpr();
      if (B->kind() == ExprKind::Var && B->name() == "__undef")
        return F.falseExpr();
      return F.eq(A, B);
    }
    return lowerIntCmp(ExprKind::Eq, Atom->operand(0), Atom->operand(1));
  }
  case ExprKind::Lt:
    return lowerIntCmp(ExprKind::Lt, Atom->operand(0), Atom->operand(1));
  case ExprKind::Le:
    return lowerIntCmp(ExprKind::Le, Atom->operand(0), Atom->operand(1));
  case ExprKind::Forall:
  case ExprKind::Exists: {
    // Bounded quantifiers with scenario-constant bounds (the shape every
    // proof-hint lemma uses) expand pointwise; symbolic bounds are outside
    // the fragment.
    int64_t Lo, Hi;
    if (!constInt(Atom->operand(0), Lo) || !constInt(Atom->operand(1), Hi)) {
      SawUnsupportedAtom = true;
      return F.var("__unknown_atom", Sort::Bool);
    }
    std::vector<ExprRef> Parts;
    for (int64_t J = Lo; J <= Hi; ++J) {
      ExprRef Body = F.substitute(Atom->operand(2),
                                  {{Atom->name(), F.intConst(J)}});
      Parts.push_back(
          rewriteBool(F, Body, [this](ExprRef A) { return onAtom(A); }));
    }
    return Atom->kind() == ExprKind::Forall ? F.conj(std::move(Parts))
                                            : F.disj(std::move(Parts));
  }
  default:
    return Atom;
  }
}

MethodPlan buildSeqPlan(ExprFactory &F, const TestingMethod &M,
                        int SeqLenBound, const HintScript *Hint,
                        bool CommonOnly = false) {
  const ConditionEntry &E = *M.Entry;
  const Operation &Op1 = E.op1();
  const Operation &Op2 = E.op2();

  MethodPlan Plan;
  Plan.Name = M.name();

  ExprRef V1 = F.var("v1", Sort::Obj), V2 = F.var("v2", Sort::Obj);

  // The shared symbolic-execution prefix of every case split: the argument
  // objects and all element variables any split can mention are non-null.
  // Asserting it once lets the warm session reuse its encoding across the
  // whole (length x index x index) split lattice — and, in SharedPair
  // mode, across every testing method of the pair.
  Plan.Common = {F.ne(V1, F.nullConst()), F.ne(V2, F.nullConst())};
  for (int64_t P = 0; P < SeqLenBound; ++P)
    Plan.Common.push_back(
        F.ne(F.var("e" + std::to_string(P), Sort::Obj), F.nullConst()));
  if (CommonOnly)
    return Plan; // Lazy planning only needs the prefix; splits come later.

  // Applies an operation at concrete index arguments on a term vector.
  // Returns false if the precondition fails.
  auto Apply = [&](const Operation &Op, int64_t I, ExprRef V, SymSeq &S,
                   SymValue &Ret) -> bool {
    int64_t N = static_cast<int64_t>(S.size());
    Ret = SymValue();
    if (Op.CallName == "add_at") {
      if (I < 0 || I > N)
        return false;
      S.insert(S.begin() + static_cast<size_t>(I), V);
      return true;
    }
    if (Op.CallName == "remove_at") {
      if (I < 0 || I >= N)
        return false;
      Ret.K = SymValue::Kind::ObjTerm;
      Ret.Term = S[static_cast<size_t>(I)];
      S.erase(S.begin() + static_cast<size_t>(I));
      return true;
    }
    if (Op.CallName == "set") {
      if (I < 0 || I >= N)
        return false;
      Ret.K = SymValue::Kind::ObjTerm;
      Ret.Term = S[static_cast<size_t>(I)];
      S[static_cast<size_t>(I)] = V;
      return true;
    }
    if (Op.CallName == "get") {
      if (I < 0 || I >= N)
        return false;
      Ret.K = SymValue::Kind::ObjTerm;
      Ret.Term = S[static_cast<size_t>(I)];
      return true;
    }
    if (Op.CallName == "indexOf" || Op.CallName == "lastIndexOf") {
      Ret.K = SymValue::Kind::IdxTerm;
      // The marker's snapshot is registered by the caller.
      return true;
    }
    if (Op.CallName == "size") {
      Ret.K = SymValue::Kind::IntConst;
      Ret.IntVal = N;
      return true;
    }
    semcomm_unreachable("unknown ArrayList operation");
  };

  auto IntArg = [](const Operation &Op) {
    return !Op.ArgSorts.empty() && Op.ArgSorts[0] == Sort::Int;
  };

  for (int64_t N = 0; N <= SeqLenBound; ++N) {
    SymSeq Initial;
    for (int64_t P = 0; P < N; ++P)
      Initial.push_back(F.var("e" + std::to_string(P), Sort::Obj));

    // Index argument ranges cover one past an insertion-grown list.
    int64_t I1Lo = IntArg(Op1) ? 0 : 0, I1Hi = IntArg(Op1) ? N + 1 : 0;
    int64_t I2Lo = IntArg(Op2) ? 0 : 0, I2Hi = IntArg(Op2) ? N + 1 : 0;

    for (int64_t I1 = I1Lo; I1 <= I1Hi; ++I1) {
      for (int64_t I2 = I2Lo; I2 <= I2Hi; ++I2) {
        // --- First order (on A). ---
        SymSeq SA = Initial;
        SymValue R1a, R2a;
        if (!Apply(Op1, I1, V1, SA, R1a))
          continue; // pre1 fails: vacuous.
        SymSeq Snap2 = SA;
        if (!Apply(Op2, I2, V2, SA, R2a))
          continue; // pre2 fails after op1: vacuous.
        SymSeq Snap3 = SA;

        // --- Reverse order (on B). ---
        SymSeq SB = Initial;
        SymValue R2b, R1b;
        bool RevPreOk = Apply(Op2, I2, V2, SB, R2b) &&
                        Apply(Op1, I1, V1, SB, R1b);

        // Scenario context with named snapshots (idx markers refer to the
        // sequence value *at the time the operation ran*).
        SeqScenario Ctx{F, {}, false};
        Ctx.Snapshots["s1"] = &Initial;
        Ctx.Snapshots["s2"] = &Snap2;
        Ctx.Snapshots["s3"] = &Snap3;
        SymSeq SnapA = SA, SnapB = SB;
        Ctx.Snapshots["finalA"] = &SnapA;
        Ctx.Snapshots["finalB"] = &SnapB;
        Ctx.Snapshots["retB2"] = &Initial; // op2 in reverse order sees s1.

        // Substitute the integer arguments and the recorded returns.
        std::map<std::string, ExprRef> Subst;
        if (IntArg(Op1))
          Subst["i1"] = F.intConst(I1);
        if (IntArg(Op2))
          Subst["i2"] = F.intConst(I2);
        auto RetExpr = [&](const Operation &Op, const SymValue &Ret,
                           const char *SnapName,
                           ExprRef ScanArg) -> ExprRef {
          switch (Ret.K) {
          case SymValue::Kind::ObjTerm:
            return Ret.Term;
          case SymValue::Kind::IntConst:
            return F.intConst(Ret.IntVal);
          case SymValue::Kind::IdxTerm:
            return Op.CallName == "indexOf"
                       ? F.seqIndexOf(F.var(SnapName, Sort::State), ScanArg)
                       : F.seqLastIndexOf(F.var(SnapName, Sort::State),
                                          ScanArg);
          default:
            return nullptr;
          }
        };
        if (Op1.RecordsReturn) {
          if (ExprRef RE = RetExpr(Op1, R1a, "s1", V1))
            Subst["r1"] = RE;
        }
        if (Op2.RecordsReturn) {
          if (ExprRef RE = RetExpr(Op2, R2a, "s2", V2))
            Subst["r2"] = RE;
        }

        ExprRef PhiRaw = F.substitute(E.get(M.Kind), Subst);
        ExprRef Phi = rewriteBool(
            F, PhiRaw, [&](ExprRef A) { return Ctx.onAtom(A); });

        // The scan snapshot for op1 in the reverse order: the state
        // after op2 ran first.
        SymSeq RetB1Snap = Initial;
        if (RevPreOk) {
          SymValue Dummy;
          SymSeq Tmp = Initial;
          Apply(Op2, I2, V2, Tmp, Dummy);
          RetB1Snap = Tmp;
        }
        Ctx.Snapshots["retB1"] = &RetB1Snap;

        // Agreement goal.
        std::vector<ExprRef> Agree;
        if (!RevPreOk) {
          Agree.push_back(F.falseExpr());
        } else {
          auto RetsEq = [&](const Operation &Op, const SymValue &A,
                            const char *SnapAName, const SymValue &B,
                            const char *SnapBName,
                            ExprRef ScanArg) -> ExprRef {
            switch (A.K) {
            case SymValue::Kind::ObjTerm:
              return F.eq(A.Term, B.Term);
            case SymValue::Kind::IntConst:
              return F.boolConst(A.IntVal == B.IntVal);
            case SymValue::Kind::IdxTerm: {
              ExprRef TA = RetExpr(Op, A, SnapAName, ScanArg);
              ExprRef TB = RetExpr(Op, B, SnapBName, ScanArg);
              return Ctx.lowerIntCmp(ExprKind::Eq, TA, TB);
            }
            default:
              semcomm_unreachable("unexpected return kind");
            }
          };
          if (Op1.RecordsReturn && R1a.K != SymValue::Kind::None)
            Agree.push_back(
                RetsEq(Op1, R1a, "s1", R1b, "retB1", V1));
          if (Op2.RecordsReturn && R2a.K != SymValue::Kind::None)
            Agree.push_back(
                RetsEq(Op2, R2a, "s2", R2b, "retB2", V2));
          if (SnapA.size() != SnapB.size()) {
            Agree.push_back(F.falseExpr());
          } else {
            for (size_t P = 0; P != SnapA.size(); ++P)
              Agree.push_back(F.eq(SnapA[P], SnapB[P]));
          }
        }
        ExprRef AgreeAll = F.conj(std::move(Agree));

        VcSplit Split;
        Split.Assumed = roleAssumptions(F, M.Role, Phi, AgreeAll);
        // Attached proof hints: the script's note/pickWitness lemmas are
        // valid over every reached scenario (validateScript machine-checks
        // exactly that), so assuming them can never flip a genuine
        // countermodel — it only lets the refutation name which hints it
        // used via their labels in the unsat core. Assuming commands are
        // case structure, not lemmas, and are not asserted. A hint whose
        // lowering leaves the bounded fragment is skipped rather than
        // poisoning the plan.
        if (Hint)
          for (const HintCommand &Cmd : Hint->Commands) {
            if (Cmd.Kind == HintCommandKind::Assuming)
              continue;
            bool SavedUnsupported = Ctx.SawUnsupportedAtom;
            Ctx.SawUnsupportedAtom = false;
            ExprRef Lowered =
                rewriteBool(F, F.substitute(Cmd.Formula, Subst),
                            [&](ExprRef A) { return Ctx.onAtom(A); });
            bool HintUnsupported = Ctx.SawUnsupportedAtom;
            Ctx.SawUnsupportedAtom = SavedUnsupported;
            if (!HintUnsupported)
              Split.Assumed.push_back({Lowered, Cmd.Label});
          }
        Split.Label = "n=" + std::to_string(N) +
                      " i1=" + std::to_string(I1) +
                      " i2=" + std::to_string(I2);
        Plan.Splits.push_back(std::move(Split));

        if (Ctx.SawUnsupportedAtom) {
          // The lowering replaced an atom by a free variable; the plan
          // ends here and the method reports unverified.
          Plan.Unsupported = true;
          Plan.UnsupportedNote =
              "unsupported atom shape in bounded lowering";
          return Plan;
        }
      }
    }
  }
  return Plan;
}

} // namespace

namespace {

/// Intersects \p Next into \p Inter (first-call copies), keeping
/// first-seen order so the assertion sequence — and with it every solver
/// statistic — is a function of the entry list alone.
void intersectCommon(bool &First, std::vector<ExprRef> &Inter,
                     const std::vector<ExprRef> &Next) {
  if (First) {
    Inter = Next;
    First = false;
    return;
  }
  std::set<ExprRef> Present(Next.begin(), Next.end());
  Inter.erase(std::remove_if(
                  Inter.begin(), Inter.end(),
                  [&Present](ExprRef C) { return Present.count(C) == 0; }),
              Inter.end());
}

/// A sorted variable identity: name plus sort tag. Sort matters —
/// Accumulator's increase(v) makes an *Int* "v1" that must not collide
/// with the object-sorted "v1" of the container families.
std::string varKey(const std::string &Name, Sort S) {
  return Name + "#" + std::to_string(static_cast<int>(S));
}

/// Collects the (name, sort) keys of the Var leaves of \p E.
void collectVarKeys(ExprRef E, std::set<std::string> &Out) {
  if (E->kind() == ExprKind::Var) {
    Out.insert(varKey(E->name(), E->sort()));
    return;
  }
  for (ExprRef Op : E->operands())
    collectVarKeys(Op, Out);
}

/// An over-approximation of the variables \p E's plan formulas can
/// mention — the operations' numbered argument vars plus the family's
/// fixed element vocabulary. Used to decide whether a well-formedness
/// formula from another family's prefix is vacuous for this entry (its
/// variables cannot occur), which is what makes hoisting it to the
/// catalog base sound.
std::set<std::string> entryVocabulary(const ConditionEntry &E, StateKind Kind,
                                      int SeqLenBound) {
  std::set<std::string> V;
  auto AddOp = [&V](const Operation &Op, int Pos) {
    for (size_t A = 0; A != Op.ArgBaseNames.size(); ++A)
      V.insert(varKey(Op.ArgBaseNames[A] + std::to_string(Pos),
                      Op.ArgSorts[A]));
  };
  AddOp(E.op1(), 1);
  AddOp(E.op2(), 2);
  // Set plans compare membership of v1/v2 in the agreement goal and Seq
  // plans read the element vars regardless of the ops' argument lists.
  if (Kind == StateKind::Set || Kind == StateKind::Seq) {
    V.insert(varKey("v1", Sort::Obj));
    V.insert(varKey("v2", Sort::Obj));
  }
  if (Kind == StateKind::Seq)
    for (int P = 0; P < SeqLenBound; ++P)
      V.insert(varKey("e" + std::to_string(P), Sort::Obj));
  return V;
}

uint64_t splitsOf(const PairPlan &PP) {
  uint64_t N = 0;
  for (const MethodPlan &MP : PP.Methods)
    N += MP.Splits.size();
  return N;
}

} // namespace

MethodPlan SymbolicEngine::plan(const TestingMethod &M) const {
  switch (M.family().Kind) {
  case StateKind::Counter:
    return buildCounterPlan(F, M);
  case StateKind::Set:
    return buildSetPlan(F, M);
  case StateKind::Map:
    return buildMapPlan(F, M);
  case StateKind::Seq: {
    const HintScript *Hint = nullptr;
    if (Hints)
      for (const HintScript &S : *Hints)
        if (S.matches(M)) {
          Hint = &S;
          break;
        }
    return buildSeqPlan(F, M, SeqLenBound, Hint);
  }
  }
  semcomm_unreachable("invalid family kind");
}

std::vector<ExprRef>
SymbolicEngine::planCommonOnly(const ConditionEntry &E) const {
  // The Common prefix depends only on the entry's operations, never on
  // the testing method's kind or role, so one method stands for all six.
  TestingMethod M;
  M.Entry = &E;
  M.Kind = ConditionKind::Before;
  M.Role = MethodRole::Soundness;
  // Only the Seq builder materializes a split lattice worth skipping; the
  // single-VC families' plans are one formula each, and hash-consing
  // dedups their construction against the later full plan anyway.
  if (M.family().Kind == StateKind::Seq)
    return buildSeqPlan(F, M, SeqLenBound, /*Hint=*/nullptr,
                        /*CommonOnly=*/true)
        .Common;
  return plan(M).Common;
}

std::vector<ExprRef> SymbolicEngine::familyCommonOf(
    const std::vector<const ConditionEntry *> &Entries) const {
  bool First = true;
  std::vector<ExprRef> Inter;
  for (const ConditionEntry *E : Entries)
    intersectCommon(First, Inter, planCommonOnly(*E));
  return First ? std::vector<ExprRef>{} : Inter;
}

PairPlan SymbolicEngine::planPair(const ConditionEntry &E) const {
  PairPlan PP;
  PP.Key = E.pairName();
  for (ConditionKind K : {ConditionKind::Before, ConditionKind::Between,
                          ConditionKind::After})
    for (MethodRole Role : {MethodRole::Soundness, MethodRole::Completeness}) {
      TestingMethod M;
      M.Entry = &E;
      M.Kind = K;
      M.Role = Role;
      PP.Methods.push_back(plan(M));
    }
  return PP;
}

FamilyPlan SymbolicEngine::planFamily(
    const std::string &FamilyName,
    const std::vector<const ConditionEntry *> &Entries) const {
  FamilyPlan FP;
  FP.FamilyName = FamilyName;
  for (const ConditionEntry *E : Entries)
    FP.Pairs.push_back(planPair(*E));
  // Family-common prefix: the Common formulas present in every method plan
  // of every pair, hoisted to session base.
  FP.FamilyCommon = familyCommonOf(Entries);
  return FP;
}

CatalogPlan SymbolicEngine::planCatalog(
    const Catalog &C, const std::vector<const Family *> &Fams) const {
  CatalogPlan CP;

  // Per-entry Common prefixes and vocabularies (splits never
  // materialize: the prefixes are method-independent).
  struct EntryInfo {
    const ConditionEntry *Entry;
    std::set<ExprRef> Common;
    std::set<std::string> Vocab;
  };
  std::vector<EntryInfo> Infos;
  std::vector<ExprRef> Candidates; // Union of Commons, first-seen order.
  std::set<ExprRef> CandidateSet;

  for (const Family *Fam : Fams) {
    FamilyPlan FP;
    FP.FamilyName = Fam->Name;
    bool First = true;
    std::vector<ExprRef> Inter;
    for (const ConditionEntry &E : C.entries(*Fam)) {
      std::vector<ExprRef> Com = planCommonOnly(E);
      intersectCommon(First, Inter, Com);
      for (ExprRef F2 : Com)
        if (CandidateSet.insert(F2).second)
          Candidates.push_back(F2);
      Infos.push_back({&E, std::set<ExprRef>(Com.begin(), Com.end()),
                       entryVocabulary(E, Fam->Kind, SeqLenBound)});
    }
    if (!First)
      FP.FamilyCommon = std::move(Inter);
    CP.Families.push_back(std::move(FP));
  }

  // Catalog-common prefix: a well-formedness formula is hoisted to the
  // session root iff every entry either asserts it in its own Common
  // prefix or provably cannot mention it (none of its variables occur in
  // the entry's vocabulary) — asserting it is then vacuous for that
  // entry, so the hoist cannot change any verdict.
  for (ExprRef Cand : Candidates) {
    std::set<std::string> Vars;
    collectVarKeys(Cand, Vars);
    bool Safe = true;
    for (const EntryInfo &Info : Infos) {
      if (Info.Common.count(Cand))
        continue;
      for (const std::string &V : Vars)
        if (Info.Vocab.count(V)) {
          Safe = false;
          break;
        }
      if (!Safe)
        break;
    }
    if (Safe)
      CP.CatalogCommon.push_back(Cand);
  }

#ifndef NDEBUG
  // entryVocabulary is a hand-maintained restatement of the plan
  // builders' variable naming; if a builder grows a variable outside it,
  // the hoist above could silently mask a countermodel. Cross-check the
  // claim against the *materialized* plans: an entry that does not
  // assert a hoisted formula must really never mention its variables.
  for (const EntryInfo &Info : Infos) {
    bool NeedsPlans = false;
    for (ExprRef Cand : CP.CatalogCommon)
      NeedsPlans = NeedsPlans || !Info.Common.count(Cand);
    if (!NeedsPlans)
      continue;
    std::set<std::string> PlanVars;
    for (const MethodPlan &MP : planPair(*Info.Entry).Methods) {
      for (ExprRef E2 : MP.Common)
        collectVarKeys(E2, PlanVars);
      for (const TaggedAssumption &A : MP.Scoped)
        collectVarKeys(A.E, PlanVars);
      for (const VcSplit &S : MP.Splits)
        for (const TaggedAssumption &A : S.Assumed)
          collectVarKeys(A.E, PlanVars);
    }
    for (ExprRef Cand : CP.CatalogCommon) {
      if (Info.Common.count(Cand))
        continue;
      std::set<std::string> Vars;
      collectVarKeys(Cand, Vars);
      for (const std::string &V : Vars)
        assert(!PlanVars.count(V) &&
               "catalog-common hoist: entryVocabulary under-approximates "
               "a plan's variables");
    }
  }
#endif
  return CP;
}

namespace {

/// Stamps the session's certification verdict onto every method result:
/// the database high-water mark, and whether every one of the method's
/// own Unsat-query tags was checked and passed (a fatal trace error
/// voids everything — the trace itself could not be replayed).
void backfillCertification(const proof::CertifySummary &S,
                           std::vector<SymbolicResult> &Methods) {
  for (SymbolicResult &R : Methods) {
    R.ProofClauses = S.PeakClauses;
    R.ProofChecked = S.Error.empty() && S.allPassed(R.ProofQueryTags);
  }
}

/// The outcome-level aggregate of one session's summary.
template <typename Outcome>
void stampOutcomeCertification(const proof::CertifySummary &S, Outcome &O) {
  O.Certified = S.Checked && S.Ok;
  O.ProofSteps = S.Steps;
  O.ProofQueries = S.Queries;
  O.ProofClauses = S.PeakClauses;
}

} // namespace

SymbolicResult SymbolicEngine::verify(const TestingMethod &M) {
  SharedSession Sess(F, ConflictBudget, Mode);
  if (Certify)
    Sess.enableCertification();
  Sess.configureClauseGc(true, GcBudget);
  SymbolicResult R;
  R.Verified = Sess.discharge(plan(M), R);
  if (Certify) {
    const proof::CertifySummary &S = Sess.finishCertification();
    R.ProofClauses = S.PeakClauses;
    R.ProofChecked = S.Error.empty() && S.allPassed(R.ProofQueryTags);
  }
  return R;
}

FamilyOutcome SymbolicEngine::verifyEntries(
    const std::string &FamilyName,
    const std::vector<const ConditionEntry *> &Entries) {
  FamilyOutcome Out;
  Out.Family = FamilyName;

  // Lazy planning: the session only needs the family-common prefix up
  // front (cheap — no splits materialize); each pair's full plan is built
  // just before its discharge and dropped after its scope retires, so
  // plan memory is bounded by one pair instead of the family.
  FamilyPlan FP;
  FP.FamilyName = FamilyName;
  FP.FamilyCommon = familyCommonOf(Entries);

  FamilySession Sess(F, FP, ConflictBudget, Certify);
  Sess.configureClauseGc(true, GcBudget);
  for (size_t PI = 0; PI != Entries.size(); ++PI) {
    PairPlan PP = planPair(*Entries[PI]);
    uint64_t PairSplits = splitsOf(PP);
    Out.TotalSplits += PairSplits;
    Out.PeakMaterializedSplits =
        std::max(Out.PeakMaterializedSplits, PairSplits);
    PairOutcome PO;
    uint64_t ChecksBefore = Sess.checks();
    int64_t ConflictsBefore = Sess.conflicts();
    uint64_t RedBefore = Sess.dbReductions();
    uint64_t RecBefore = Sess.reclaimedClauses();
    unsigned SelBefore = Sess.numSelectors();
    for (const MethodPlan &MP : PP.Methods) {
      Stopwatch Timer;
      SymbolicResult R;
      R.Verified = Sess.discharge(PP.Key, MP, R);
      PO.MethodMillis.push_back(Timer.millis());
      PO.Methods.push_back(std::move(R));
    }
    PO.Checks = Sess.checks() - ChecksBefore;
    PO.Conflicts = Sess.conflicts() - ConflictsBefore;
    PO.RetainedClauses = Sess.retainedClauses();
    PO.DbReductions = Sess.dbReductions() - RedBefore;
    PO.ReclaimedClauses = Sess.reclaimedClauses() - RecBefore;
    PO.Selectors = Sess.numSelectors() - SelBefore;
    PO.SessionsOpened = PI == 0 ? 1 : 0; // One warm solver per family.
    // The pair's VCs are done: evict its scope so the clause database is
    // bounded by the live pair, not the family (its plan dies with this
    // iteration for the same reason).
    Sess.retirePair(PP.Key);
    Out.PairKeys.push_back(PP.Key);
    Out.Pairs.push_back(std::move(PO));
  }
  Out.Stats = Sess.stats();
  Out.Checks = Sess.checks();
  Out.Conflicts = Sess.conflicts();
  Out.RetainedClauses = Sess.retainedClauses();
  Out.DbReductions = Sess.dbReductions();
  Out.ReclaimedClauses = Sess.reclaimedClauses();
  Out.Selectors = Sess.numSelectors();
  if (Certify) {
    // One trace covers the whole family session; check it once and stamp
    // every method with its own queries' verdicts.
    const proof::CertifySummary &S = Sess.finishCertification();
    stampOutcomeCertification(S, Out);
    for (PairOutcome &PO : Out.Pairs) {
      backfillCertification(S, PO.Methods);
      stampOutcomeCertification(S, PO);
    }
  }
  return Out;
}

CatalogOutcome
SymbolicEngine::verifyCatalog(const Catalog &C,
                              const std::vector<const Family *> &Fams) {
  CatalogOutcome Out;
  CatalogPlan CP = planCatalog(C, Fams);
  CatalogSession Sess(F, CP, ConflictBudget, Certify, CompactBridges,
                      /*CompactMinDead=*/64, Prefix);
  Sess.configureClauseGc(true, GcBudget);

  for (size_t FI = 0; FI != Fams.size(); ++FI) {
    const Family &Fam = *Fams[FI];
    FamilyOutcome FO;
    FO.Family = Fam.Name;
    uint64_t FamChecksBefore = Sess.checks();
    int64_t FamConflictsBefore = Sess.conflicts();
    uint64_t FamRedBefore = Sess.dbReductions();
    uint64_t FamRecBefore = Sess.reclaimedClauses();
    unsigned FamSelBefore = Sess.numSelectors();

    const std::vector<ConditionEntry> &Entries = C.entries(Fam);
    for (size_t PI = 0; PI != Entries.size(); ++PI) {
      PairPlan PP = planPair(Entries[PI]);
      uint64_t PairSplits = splitsOf(PP);
      FO.TotalSplits += PairSplits;
      FO.PeakMaterializedSplits =
          std::max(FO.PeakMaterializedSplits, PairSplits);
      PairOutcome PO;
      uint64_t ChecksBefore = Sess.checks();
      int64_t ConflictsBefore = Sess.conflicts();
      uint64_t RedBefore = Sess.dbReductions();
      uint64_t RecBefore = Sess.reclaimedClauses();
      unsigned SelBefore = Sess.numSelectors();
      for (const MethodPlan &MP : PP.Methods) {
        Stopwatch Timer;
        SymbolicResult R;
        R.Verified = Sess.discharge(FI, PP.Key, MP, R);
        PO.MethodMillis.push_back(Timer.millis());
        PO.Methods.push_back(std::move(R));
      }
      PO.Checks = Sess.checks() - ChecksBefore;
      PO.Conflicts = Sess.conflicts() - ConflictsBefore;
      PO.RetainedClauses = Sess.retainedClauses();
      PO.DbReductions = Sess.dbReductions() - RedBefore;
      PO.ReclaimedClauses = Sess.reclaimedClauses() - RecBefore;
      PO.Selectors = Sess.numSelectors() - SelBefore;
      PO.SessionsOpened = FI == 0 && PI == 0 ? 1 : 0; // One for the run.
      Sess.retirePair(FI, PP.Key);
      FO.PairKeys.push_back(PP.Key);
      FO.Pairs.push_back(std::move(PO));
    }

    FO.Stats = Sess.familyStats(FI);
    FO.Checks = Sess.checks() - FamChecksBefore;
    FO.Conflicts = Sess.conflicts() - FamConflictsBefore;
    FO.RetainedClauses = Sess.retainedClauses();
    FO.DbReductions = Sess.dbReductions() - FamRedBefore;
    FO.ReclaimedClauses = Sess.reclaimedClauses() - FamRecBefore;
    FO.Selectors = Sess.numSelectors() - FamSelBefore;
    // The family's pairs are all retired; retire its whole scope subtree
    // so the next family starts from the catalog-common base alone.
    Sess.retireFamily(FI);
    Out.TotalSplits += FO.TotalSplits;
    Out.PeakMaterializedSplits =
        std::max(Out.PeakMaterializedSplits, FO.PeakMaterializedSplits);
    Out.Families.push_back(std::move(FO));
  }

  Out.Stats = Sess.stats();
  Out.Checks = Sess.checks();
  Out.Conflicts = Sess.conflicts();
  Out.RetainedClauses = Sess.retainedClauses();
  Out.DbReductions = Sess.dbReductions();
  Out.ReclaimedClauses = Sess.reclaimedClauses();
  Out.Selectors = Sess.numSelectors();
  if (Certify) {
    // One trace covers the entire catalog session — every family, pair,
    // and method verdict certifies against the same certificate stream.
    const proof::CertifySummary &S = Sess.finishCertification();
    stampOutcomeCertification(S, Out);
    for (FamilyOutcome &FO : Out.Families) {
      stampOutcomeCertification(S, FO);
      for (PairOutcome &PO : FO.Pairs) {
        backfillCertification(S, PO.Methods);
        stampOutcomeCertification(S, PO);
      }
    }
  }
  return Out;
}

FamilyOutcome SymbolicEngine::verifyFamily(const Catalog &C,
                                           const Family &Fam) {
  std::vector<const ConditionEntry *> Entries;
  for (const ConditionEntry &E : C.entries(Fam))
    Entries.push_back(&E);
  return verifyEntries(Fam.Name, Entries);
}

PairOutcome SymbolicEngine::verifyPair(const ConditionEntry &E) {
  if (Mode == SolveMode::SharedFamily || Mode == SolveMode::SharedCatalog) {
    // A single pair is the degenerate family: same nesting, same eviction.
    FamilyOutcome FO = verifyEntries(E.Fam->Name, {&E});
    return FO.Pairs.empty() ? PairOutcome() : std::move(FO.Pairs.front());
  }
  SharedSession Sess(F, ConflictBudget, Mode);
  if (Certify)
    Sess.enableCertification();
  Sess.configureClauseGc(true, GcBudget);
  PairOutcome Out;
  for (ConditionKind K : {ConditionKind::Before, ConditionKind::Between,
                          ConditionKind::After})
    for (MethodRole Role :
         {MethodRole::Soundness, MethodRole::Completeness}) {
      TestingMethod M;
      M.Entry = &E;
      M.Kind = K;
      M.Role = Role;
      Stopwatch Timer;
      SymbolicResult R;
      R.Verified = Sess.discharge(plan(M), R);
      Out.MethodMillis.push_back(Timer.millis());
      Out.Methods.push_back(std::move(R));
    }
  Out.Checks = Sess.checks();
  Out.Conflicts = Sess.conflicts();
  Out.RetainedClauses = Sess.retainedClauses();
  Out.DbReductions = Sess.dbReductions();
  Out.ReclaimedClauses = Sess.reclaimedClauses();
  Out.Selectors = Sess.numSelectors();
  Out.SessionsOpened = Sess.sessionsOpened();
  if (Certify) {
    const proof::CertifySummary &S = Sess.finishCertification();
    stampOutcomeCertification(S, Out);
    backfillCertification(S, Out.Methods);
  }
  return Out;
}
