//===- commute/TestingMethod.h - Generated testing methods ------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generator of Ch. 3: for every condition it emits a soundness testing
/// method and a completeness testing method following the templates of
/// Figures 3-1 and 3-2. A TestingMethod is the semantic object the engines
/// verify; the jahobgen module can render it as Jahob-annotated Java
/// source exactly in the shape of Fig. 2-2.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_COMMUTE_TESTINGMETHOD_H
#define SEMCOMM_COMMUTE_TESTINGMETHOD_H

#include "commute/Condition.h"

#include <string>
#include <vector>

namespace semcomm {

/// Whether a generated method checks Property 1 or Property 2.
enum class MethodRole : uint8_t { Soundness, Completeness };

const char *methodRoleName(MethodRole R);

/// One automatically generated commutativity testing method.
struct TestingMethod {
  const ConditionEntry *Entry = nullptr;
  ConditionKind Kind = ConditionKind::Before;
  MethodRole Role = MethodRole::Soundness;
  /// Numeric id within the family's generation order (part of the paper's
  /// method naming scheme, e.g. contains_add_between_s_40).
  unsigned Id = 0;

  const Family &family() const { return *Entry->Fam; }

  /// The paper-style method name: <op1>_<op2>_<kind>_<s|c>_<id>.
  std::string name() const;
};

/// Generates the full suite of testing methods for one family, in catalog
/// order: for each entry, before/between/after x soundness/completeness.
std::vector<TestingMethod> generateTestingMethods(const Catalog &C,
                                                  const Family &Fam);

} // namespace semcomm

#endif // SEMCOMM_COMMUTE_TESTINGMETHOD_H
