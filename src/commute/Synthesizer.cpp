//===- commute/Synthesizer.cpp - Condition synthesis -------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "commute/Synthesizer.h"

#include "logic/Evaluator.h"
#include "logic/Simplifier.h"

#include <map>

using namespace semcomm;

namespace {

/// A scenario's atom valuation plus its commute verdict(s).
struct Bucket {
  bool SeenCommute = false;
  bool SeenConflict = false;
  std::string Sample; ///< One scenario rendering, for diagnostics.
};

} // namespace

SynthesisResult semcomm::synthesizeCondition(
    ExprFactory &F, const Family &Fam, const std::string &Op1Name,
    const std::string &Op2Name, const std::vector<ExprRef> &Atoms,
    const Scope &Bounds) {
  const Operation &Op1 = Fam.op(Op1Name);
  const Operation &Op2 = Fam.op(Op2Name);

  SynthesisResult Result;
  std::map<std::vector<bool>, Bucket> Buckets;

  for (const AbstractState &Initial : enumerateStates(Fam, Bounds)) {
    for (const ArgList &A1 : enumerateArgs(Fam, Op1, Initial, Bounds)) {
      if (!Op1.Pre(Initial, A1))
        continue;
      for (const ArgList &A2 : enumerateArgs(Fam, Op2, Initial, Bounds)) {
        // First order.
        AbstractState Mid = Initial;
        Value R1 = Op1.Apply(Mid, A1);
        if (!Op2.Pre(Mid, A2))
          continue;
        AbstractState Fin1 = Mid;
        Value R2 = Op2.Apply(Fin1, A2);
        ++Result.Scenarios;

        // Reverse order.
        bool Agrees = false;
        if (Op2.Pre(Initial, A2)) {
          AbstractState Fin2 = Initial;
          Value R2b = Op2.Apply(Fin2, A2);
          if (Op1.Pre(Fin2, A1)) {
            Value R1b = Op1.Apply(Fin2, A1);
            Agrees = Fin1 == Fin2 &&
                     (!Op1.RecordsReturn || R1 == R1b) &&
                     (!Op2.RecordsReturn || R2 == R2b);
          }
        }

        // Atom valuation (between vocabulary: s1, s2, r1 available).
        Env E;
        for (size_t I = 0; I != A1.size(); ++I)
          E.bind(Op1.ArgBaseNames[I] + "1", A1[I]);
        for (size_t I = 0; I != A2.size(); ++I)
          E.bind(Op2.ArgBaseNames[I] + "2", A2[I]);
        if (Op1.RecordsReturn)
          E.bind("r1", R1);
        E.bindState("s1", &Initial);
        E.bindState("s2", &Mid);

        std::vector<bool> Valuation;
        Valuation.reserve(Atoms.size());
        for (ExprRef Atom : Atoms)
          Valuation.push_back(evaluateBool(Atom, E));

        Bucket &B = Buckets[Valuation];
        (Agrees ? B.SeenCommute : B.SeenConflict) = true;
        if (B.Sample.empty())
          B.Sample = "state " + Initial.str();
      }
    }
  }

  // Expressibility: every valuation class must be verdict-pure.
  for (const auto &[Valuation, B] : Buckets)
    if (B.SeenCommute && B.SeenConflict) {
      Result.Expressible = false;
      Result.AmbiguityNote =
          "atom valuation cannot separate commuting from conflicting "
          "scenarios near " +
          B.Sample;
      return Result;
    }
  Result.Expressible = true;

  // Drop globally redundant atoms: an atom is redundant when merging the
  // buckets that differ only in it never mixes verdicts.
  std::vector<bool> Kept(Atoms.size(), true);
  for (size_t P = 0; P != Atoms.size(); ++P) {
    std::map<std::vector<bool>, std::pair<bool, bool>> Merged;
    for (const auto &[Valuation, B] : Buckets) {
      std::vector<bool> Projected;
      for (size_t Q = 0; Q != Atoms.size(); ++Q)
        if (Kept[Q] && Q != P)
          Projected.push_back(Valuation[Q]);
      auto &[SawC, SawX] = Merged[Projected];
      SawC |= B.SeenCommute;
      SawX |= B.SeenConflict;
    }
    bool Pure = true;
    for (const auto &[_, Verdicts] : Merged)
      Pure &= !(Verdicts.first && Verdicts.second);
    if (Pure)
      Kept[P] = false;
  }

  // DNF over the commuting (projected) valuations, with per-cube literal
  // dropping against absent or commuting neighbours.
  std::map<std::vector<bool>, std::pair<bool, bool>> Projected;
  std::vector<size_t> KeptIdx;
  for (size_t Q = 0; Q != Atoms.size(); ++Q)
    if (Kept[Q])
      KeptIdx.push_back(Q);
  for (const auto &[Valuation, B] : Buckets) {
    std::vector<bool> Proj;
    for (size_t Q : KeptIdx)
      Proj.push_back(Valuation[Q]);
    auto &[SawC, SawX] = Projected[Proj];
    SawC |= B.SeenCommute;
    SawX |= B.SeenConflict;
  }

  std::vector<ExprRef> Cubes;
  for (const auto &[Valuation, Verdicts] : Projected) {
    if (!Verdicts.first)
      continue;
    // Expand the cube into a prime implicant: a literal may be dropped
    // only if no *conflicting* valuation matches the widened cube
    // (valuations that never occurred are don't-cares).
    std::vector<bool> Fixed(KeptIdx.size(), true);
    auto CoversConflict = [&]() {
      for (const auto &[Other, OtherVerdicts] : Projected) {
        if (!OtherVerdicts.second)
          continue;
        bool Matches = true;
        for (size_t I = 0; I != KeptIdx.size() && Matches; ++I)
          Matches = !Fixed[I] || Other[I] == Valuation[I];
        if (Matches)
          return true;
      }
      return false;
    };
    for (size_t I = 0; I != KeptIdx.size(); ++I) {
      Fixed[I] = false;
      if (CoversConflict())
        Fixed[I] = true; // The drop would swallow a conflict; keep it.
    }
    std::vector<ExprRef> Literals;
    for (size_t I = 0; I != KeptIdx.size(); ++I) {
      if (!Fixed[I])
        continue;
      ExprRef Atom = Atoms[KeptIdx[I]];
      Literals.push_back(Valuation[I] ? Atom : F.lnot(Atom));
    }
    Cubes.push_back(F.conj(std::move(Literals)));
  }
  Result.Condition = simplify(F, F.disj(std::move(Cubes)));
  return Result;
}

std::vector<ExprRef> semcomm::defaultAtoms(ExprFactory &F, const Family &Fam,
                                           const std::string &Op1Name,
                                           const std::string &Op2Name) {
  const Operation &Op1 = Fam.op(Op1Name);
  const Operation &Op2 = Fam.op(Op2Name);
  ExprRef S1 = F.var("s1", Sort::State);

  // The pair's scalar variables, by sort.
  std::vector<ExprRef> Objs, Ints;
  auto AddArgs = [&](const Operation &Op, int Pos) {
    for (size_t I = 0; I != Op.ArgSorts.size(); ++I) {
      ExprRef V = F.var(Op.ArgBaseNames[I] + std::to_string(Pos),
                        Op.ArgSorts[I]);
      (Op.ArgSorts[I] == Sort::Obj ? Objs : Ints).push_back(V);
    }
  };
  AddArgs(Op1, 1);
  AddArgs(Op2, 2);

  std::vector<ExprRef> Atoms;
  for (size_t I = 0; I != Objs.size(); ++I)
    for (size_t J = I + 1; J != Objs.size(); ++J)
      Atoms.push_back(F.eq(Objs[I], Objs[J]));

  switch (Fam.Kind) {
  case StateKind::Set:
    for (ExprRef V : Objs)
      Atoms.push_back(F.setContains(S1, V));
    break;
  case StateKind::Map: {
    // Keys are the "k"-based variables; values the "v"-based ones.
    std::vector<ExprRef> Keys, Vals;
    for (ExprRef V : Objs)
      (V->name()[0] == 'k' ? Keys : Vals).push_back(V);
    for (ExprRef K : Keys) {
      Atoms.push_back(F.mapHasKey(S1, K));
      for (ExprRef V : Vals)
        Atoms.push_back(F.eq(F.mapGet(S1, K), V));
    }
    break;
  }
  case StateKind::Counter:
    for (ExprRef N : Ints)
      Atoms.push_back(F.eq(N, F.intConst(0)));
    break;
  case StateKind::Seq:
    // ArrayList vocabularies are pair-specific; callers supply their own.
    break;
  }

  if (Op1.RecordsReturn && Op1.HasReturn) {
    if (Op1.ReturnSort == Sort::Bool)
      Atoms.push_back(F.var("r1", Sort::Bool));
    else if (Op1.ReturnSort == Sort::Obj) {
      Atoms.push_back(F.ne(F.var("r1", Sort::Obj), F.nullConst()));
      for (ExprRef V : Objs)
        Atoms.push_back(F.eq(F.var("r1", Sort::Obj), V));
    }
  }
  return Atoms;
}
