//===- commute/ProofHints.cpp - Jahob proof-language hint scripts ----------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "commute/ProofHints.h"

#include "logic/Dsl.h"
#include "logic/Evaluator.h"
#include "support/Unreachable.h"

#include <cassert>
#include <set>

using namespace semcomm;

const char *semcomm::hintCommandKindName(HintCommandKind K) {
  switch (K) {
  case HintCommandKind::Note:
    return "note";
  case HintCommandKind::Assuming:
    return "assuming";
  case HintCommandKind::PickWitness:
    return "pickWitness";
  }
  semcomm_unreachable("invalid hint command kind");
}

namespace {

/// Formula builders for the lemma library the scripts draw on. All are over
/// the standard method vocabulary (s1/s2/s3, i1/i2/v1/v2, r1/r2).
class LemmaLibrary {
public:
  explicit LemmaLibrary(ExprFactory &F) : D(F), J(F.var("j", Sort::Int)) {}

  /// The elements below the update index are untouched by op1:
  /// ALL j : 0..i1-1. s2[j] = s1[j].
  ExprRef prefixFrame() {
    return D.F.forallInt("j", D.c(0), D.sub(D.I1, D.c(1)),
                         D.eq(D.at(D.S2, J), D.at(D.S1, J)));
  }

  /// The shift lemma of op1: how positions at or above i1 move.
  ExprRef shiftFrame(const std::string &Op1) {
    if (Op1 == "add_at")
      return D.F.forallInt("j", D.I1, D.sub(D.len(D.S1), D.c(1)),
                           D.eq(D.at(D.S2, D.add(J, D.c(1))),
                                D.at(D.S1, J)));
    if (Op1 == "remove_at" || Op1 == "remove_at_")
      return D.F.forallInt("j", D.I1, D.sub(D.len(D.S2), D.c(1)),
                           D.eq(D.at(D.S2, J),
                                D.at(D.S1, D.add(J, D.c(1)))));
    // set(i1, v1): everything but i1 is untouched.
    return D.F.forallInt(
        "j", D.c(0), D.sub(D.len(D.S1), D.c(1)),
        D.F.implies(D.ne(J, D.I1), D.eq(D.at(D.S2, J), D.at(D.S1, J))));
  }

  /// Definition of a failed scan: idx(s, v) < 0 <-> no cell holds v.
  ExprRef scanNegDef(ExprRef S, ExprRef V, bool Last) {
    ExprRef Idx = Last ? D.lidx(S, V) : D.idx(S, V);
    return D.F.iff(D.lt(Idx, D.c(0)),
                   D.F.forallInt("j", D.c(0), D.sub(D.len(S), D.c(1)),
                                 D.ne(D.at(S, J), V)));
  }

  /// Transfer of absence across op1's shift: if the scanned element is
  /// absent from the intermediate state, it was absent initially (for
  /// add_at, modulo the inserted element itself).
  ExprRef transferNeg(const std::string &Op1, ExprRef V, bool Last) {
    ExprRef IdxS2 = Last ? D.lidx(D.S2, V) : D.idx(D.S2, V);
    ExprRef IdxS1 = Last ? D.lidx(D.S1, V) : D.idx(D.S1, V);
    if (Op1 == "add_at")
      return D.F.implies(D.lt(IdxS2, D.c(0)), D.lt(IdxS1, D.c(0)));
    // remove_at: absence initially implies absence afterwards.
    return D.F.implies(D.lt(IdxS1, D.c(0)), D.lt(IdxS2, D.c(0)));
  }

  /// pickWitness obligation: whenever the scan succeeds, an occurrence
  /// position exists to name.
  ExprRef witnessOccurrence(ExprRef S, ExprRef V, bool Last) {
    ExprRef Idx = Last ? D.lidx(S, V) : D.idx(S, V);
    return D.F.implies(D.ge(Idx, D.c(0)),
                       D.F.existsInt("j", D.c(0), D.sub(D.len(S), D.c(1)),
                                     D.eq(D.at(S, J), V)));
  }

  /// idx returned r1 means nothing below r1 holds v1.
  ExprRef noneBefore() {
    return D.F.implies(
        D.ge(D.R1I, D.c(0)),
        D.F.forallInt("j", D.c(0), D.sub(D.R1I, D.c(1)),
                      D.ne(D.at(D.S1, J), D.V1)));
  }

  /// §5.2.1's adjacent-copies case: if the first occurrence of the scanned
  /// element sits at the removal point and a duplicate follows it, the
  /// post-removal state still has its first occurrence there. \p RemIdx is
  /// the removal index variable and \p V the scanned element (they differ
  /// between categories 1 and 2).
  ExprRef adjacentCopy(ExprRef PostState, ExprRef RemIdx, ExprRef V) {
    return D.F.implies(
        D.conj({D.eq(D.idx(D.S1, V), RemIdx),
                D.eq(D.at(D.S1, D.add(RemIdx, D.c(1))), V)}),
        D.eq(D.idx(PostState, V), RemIdx));
  }

  Vocab D;
  ExprRef J;
};

} // namespace

std::vector<HintScript>
semcomm::buildArrayListHintScripts(ExprFactory &F) {
  LemmaLibrary L(F);
  Vocab &D = L.D;
  std::vector<HintScript> Scripts;

  const char *ShiftOps[] = {"add_at", "remove_at", "remove_at_"};
  const char *ScanOps[] = {"indexOf", "lastIndexOf"};
  const char *RaOps[] = {"remove_at", "remove_at_"};

  // Labels are assigned en bloc after the scripts are built.
  auto note = [](ExprRef Formula, const char *Comment) {
    return HintCommand{HintCommandKind::Note, Formula, "", Comment, ""};
  };
  auto assuming = [](ExprRef Formula, const char *Comment) {
    return HintCommand{HintCommandKind::Assuming, Formula, "", Comment, ""};
  };
  auto pickWitness = [](ExprRef Formula, const char *Var,
                        const char *Comment) {
    return HintCommand{HintCommandKind::PickWitness, Formula, Var, Comment,
                       ""};
  };

  // --- Category 1: soundness, shift x scan (12 methods) ---------------------
  for (const char *Op1 : ShiftOps)
    for (const char *Scan : ScanOps)
      for (ConditionKind K : {ConditionKind::Between, ConditionKind::After}) {
        bool Last = std::string(Scan) == "lastIndexOf";
        HintScript S;
        S.Op1Name = Op1;
        S.Op2Name = Scan;
        S.Kind = K;
        S.Role = MethodRole::Soundness;
        S.Category = 1;
        S.Commands.push_back(assuming(
            D.lt(Last ? D.lidx(D.S2, D.V2) : D.idx(D.S2, D.V2), D.c(0)),
            "the case where the scan finds nothing after the shift"));
        S.Commands.push_back(pickWitness(
            L.witnessOccurrence(D.S1, D.V2, Last), "j",
            "name an occurrence of v2 in the initial state"));
        S.Commands.push_back(
            note(L.prefixFrame(), "cells below i1 are untouched"));
        S.Commands.push_back(
            note(L.shiftFrame(Op1), "how cells at or above i1 move"));
        S.Commands.push_back(note(L.scanNegDef(D.S2, D.V2, Last),
                                  "a failed scan means no cell holds v2"));
        S.Commands.push_back(note(
            L.transferNeg(Op1, D.V2, Last),
            "transfer absence of v2 across the shift (contraposition)"));
        if (K == ConditionKind::After)
          S.Commands.push_back(
              note(L.scanNegDef(D.S1, D.V2, Last),
                   "the same definitional expansion in the initial state"));
        if (std::string(Op1) == "remove_at" &&
            std::string(Scan) == "indexOf" && K == ConditionKind::After)
          S.Commands.push_back(
              note(L.adjacentCopy(D.S2, D.I1, D.V2),
                   "the adjacent-copies case: the duplicate takes over"));
        Scripts.push_back(std::move(S));
      }

  // --- Category 2: soundness, scan x remove_at (8 methods) ------------------
  for (const char *Scan : ScanOps)
    for (const char *Ra : RaOps)
      for (ConditionKind K : {ConditionKind::Between, ConditionKind::After}) {
        bool Last = std::string(Scan) == "lastIndexOf";
        HintScript S;
        S.Op1Name = Scan;
        S.Op2Name = Ra;
        S.Kind = K;
        S.Role = MethodRole::Soundness;
        S.Category = 2;
        S.Commands.push_back(pickWitness(
            L.witnessOccurrence(D.S1, D.V1, Last), "j",
            "name the occurrence the scan found"));
        S.Commands.push_back(note(
            Last ? D.F.implies(
                       D.ge(D.R1I, D.c(0)),
                       D.F.forallInt(
                           "j", D.add(D.R1I, D.c(1)),
                           D.sub(D.len(D.S1), D.c(1)),
                           D.ne(D.at(D.S1, L.J), D.V1)))
                 : L.noneBefore(),
            "no other occurrence on the scanned side of r1"));
        S.Commands.push_back(
            K == ConditionKind::After && !Last
                ? note(L.adjacentCopy(D.S3, D.I2, D.V1),
                       "the adjacent-copies case (§5.2.1)")
                : note(L.scanNegDef(D.S1, D.V1, Last),
                       "definitional expansion of the scan"));
        if (Last && K == ConditionKind::After)
          S.Commands.push_back(pickWitness(
              L.witnessOccurrence(D.S3, D.V1, Last), "j2",
              "name the surviving occurrence after the removal"));
        Scripts.push_back(std::move(S));
      }

  // --- Category 3: completeness, update x update (20 methods) ---------------
  {
    const std::pair<const char *, const char *> Pairs[] = {
        {"add_at", "add_at"},     {"add_at", "remove_at"},
        {"add_at", "remove_at_"}, {"add_at", "set"},
        {"add_at", "set_"},       {"remove_at", "add_at"},
        {"remove_at_", "add_at"}, {"set", "add_at"},
        {"set_", "add_at"},       {"remove_at", "set"}};
    for (const auto &[Op1, Op2] : Pairs)
      for (ConditionKind K : {ConditionKind::Between, ConditionKind::After}) {
        HintScript S;
        S.Op1Name = Op1;
        S.Op2Name = Op2;
        S.Kind = K;
        S.Role = MethodRole::Completeness;
        S.Category = 3;
        S.Commands.push_back(assuming(
            D.le(D.I1, D.I2),
            "case analysis on the relative position of the two indices"));
        S.Commands.push_back(
            note(L.prefixFrame(), "cells below i1 are untouched"));
        S.Commands.push_back(note(
            L.shiftFrame(Op1),
            "locate the differing element via op1's shift"));
        if (std::string(Op1) == "remove_at" && std::string(Op2) == "set")
          S.Commands.push_back(assuming(
              D.eq(D.I1, D.I2),
              "the same-index case, where the set lands on the hole"));
        Scripts.push_back(std::move(S));
      }
  }

  // --- Category 4: completeness, shift x scan (17 methods) ------------------
  for (const char *Op1 : ShiftOps)
    for (const char *Scan : ScanOps)
      for (ConditionKind K : {ConditionKind::Between, ConditionKind::After}) {
        bool Last = std::string(Scan) == "lastIndexOf";
        HintScript S;
        S.Op1Name = Op1;
        S.Op2Name = Scan;
        S.Kind = K;
        S.Role = MethodRole::Completeness;
        S.Category = 4;
        S.Commands.push_back(assuming(
            D.ge(Last ? D.lidx(D.S1, D.V2) : D.idx(D.S1, D.V2), D.c(0)),
            "the case where the scanned element occurs initially"));
        S.Commands.push_back(note(L.scanNegDef(D.S1, D.V2, Last),
                                  "definitional expansion of the scan"));
        Scripts.push_back(std::move(S));
      }
  // The five before-kind completeness methods whose disequality witness
  // involves the first-occurrence position.
  {
    const std::pair<const char *, const char *> BeforePairs[] = {
        {"add_at", "indexOf"},
        {"add_at", "lastIndexOf"},
        {"remove_at", "indexOf"},
        {"remove_at_", "indexOf"},
        {"remove_at", "lastIndexOf"}};
    for (const auto &[Op1, Scan] : BeforePairs) {
      bool Last = std::string(Scan) == "lastIndexOf";
      HintScript S;
      S.Op1Name = Op1;
      S.Op2Name = Scan;
      S.Kind = ConditionKind::Before;
      S.Role = MethodRole::Completeness;
      S.Category = 4;
      S.Commands.push_back(
          assuming(D.ge(Last ? D.lidx(D.S1, D.V2) : D.idx(D.S1, D.V2),
                        D.c(0)),
                   "the case where the scanned element occurs initially"));
      S.Commands.push_back(note(L.scanNegDef(D.S1, D.V2, Last),
                                "definitional expansion of the scan"));
      Scripts.push_back(std::move(S));
    }
  }

  // Stable command labels: what the symbolic engine's unsat cores report
  // when a proof uses an assumed hint lemma (see minimizedFor).
  for (HintScript &S : Scripts)
    for (size_t I = 0; I != S.Commands.size(); ++I)
      S.Commands[I].Label = std::string("hint:") + S.Op1Name + "," +
                            S.Op2Name + ":" + conditionKindName(S.Kind) +
                            ":" + methodRoleName(S.Role) + ":" +
                            std::to_string(I);

  return Scripts;
}

HintScript semcomm::minimizedFor(const HintScript &Script,
                                 const std::vector<std::string> &CoreLabels) {
  std::set<std::string> Used(CoreLabels.begin(), CoreLabels.end());
  HintScript Out = Script;
  Out.Commands.clear();
  for (const HintCommand &Cmd : Script.Commands)
    if (Cmd.Kind == HintCommandKind::Assuming || Used.count(Cmd.Label))
      Out.Commands.push_back(Cmd);
  return Out;
}

HintSummary semcomm::summarizeHints(const std::vector<HintScript> &Scripts) {
  HintSummary Sum;
  for (const HintScript &S : Scripts) {
    ++Sum.Methods;
    assert(S.Category >= 1 && S.Category <= 4 && "bad category");
    ++Sum.MethodsByCategory[S.Category];
    for (const HintCommand &C : S.Commands)
      switch (C.Kind) {
      case HintCommandKind::Note:
        ++Sum.Notes;
        break;
      case HintCommandKind::Assuming:
        ++Sum.Assumings;
        break;
      case HintCommandKind::PickWitness:
        ++Sum.PickWitnesses;
        break;
      }
  }
  return Sum;
}

HintValidation semcomm::validateScript(const HintScript &Script,
                                       const Catalog &C,
                                       const Scope &Bounds) {
  const Family &Fam = arrayListFamily();
  const ConditionEntry &Entry = C.entry(Fam, Script.Op1Name, Script.Op2Name);
  const Operation &Op1 = Entry.op1();
  const Operation &Op2 = Entry.op2();
  ExprRef Phi = Entry.get(Script.Kind);

  HintValidation Result;
  std::vector<bool> AssumingSeen(Script.Commands.size(), false);

  for (const AbstractState &Initial : enumerateStates(Fam, Bounds)) {
    for (const ArgList &A1 : enumerateArgs(Fam, Op1, Initial, Bounds)) {
      if (!Op1.Pre(Initial, A1))
        continue;
      for (const ArgList &A2 : enumerateArgs(Fam, Op2, Initial, Bounds)) {
        AbstractState Mid = Initial;
        Value R1 = Op1.Apply(Mid, A1);
        if (!Op2.Pre(Mid, A2))
          continue;
        AbstractState Fin = Mid;
        Value R2 = Op2.Apply(Fin, A2);

        Env E;
        for (size_t I = 0; I != A1.size(); ++I)
          E.bind(Op1.ArgBaseNames[I] + "1", A1[I]);
        for (size_t I = 0; I != A2.size(); ++I)
          E.bind(Op2.ArgBaseNames[I] + "2", A2[I]);
        if (Op1.RecordsReturn)
          E.bind("r1", R1);
        if (Op2.RecordsReturn)
          E.bind("r2", R2);
        E.bindState("s1", &Initial);
        E.bindState("s2", &Mid);
        E.bindState("s3", &Fin);

        // The commands sit after the method's assume (Fig. 3-1): phi for
        // soundness scripts, ~phi for completeness scripts.
        bool Assumed = evaluateBool(Phi, E);
        if (Script.Role == MethodRole::Completeness)
          Assumed = !Assumed;
        if (!Assumed)
          continue;

        for (size_t I = 0; I != Script.Commands.size(); ++I) {
          const HintCommand &Cmd = Script.Commands[I];
          bool Holds = evaluateBool(Cmd.Formula, E);
          switch (Cmd.Kind) {
          case HintCommandKind::Note:
          case HintCommandKind::PickWitness:
            // Lemmas and witness obligations must hold in every reached
            // scenario.
            if (!Holds) {
              Result.FailureNote = std::string(hintCommandKindName(Cmd.Kind)) +
                                   " formula fails (" + Cmd.Comment +
                                   ") in state " + Initial.str();
              return Result;
            }
            break;
          case HintCommandKind::Assuming:
            // Cases must be non-vacuous somewhere in the scenario space.
            if (Holds)
              AssumingSeen[I] = true;
            break;
          }
        }
      }
    }
  }

  for (size_t I = 0; I != Script.Commands.size(); ++I)
    if (Script.Commands[I].Kind == HintCommandKind::Assuming &&
        !AssumingSeen[I]) {
      Result.FailureNote = "assuming case is vacuous (" +
                           Script.Commands[I].Comment + ")";
      return Result;
    }

  Result.Ok = true;
  return Result;
}
