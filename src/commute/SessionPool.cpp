//===- commute/SessionPool.cpp - Shared per-pair solver sessions ------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "commute/SessionPool.h"

#include <algorithm>
#include <cassert>
#include <functional>

using namespace semcomm;

namespace {

/// Discharges every split of \p Plan against a warm session under a fixed
/// selector-assumption prefix — the shared tail of SharedSession::discharge
/// and FamilySession::discharge, so the split loop, core-label recording,
/// countermodel assembly, and the Unsupported-trump rule cannot drift
/// between the pair and family tiers. \p SessionForSplit returns the
/// session each split runs on (OneShot mode re-opens one per split);
/// \p Sels/\p SelLabels are the selector assumptions prepended to every
/// split; \p PeakRetained, when set, tracks the retained-clause high-water
/// mark across checks.
bool dischargeSplits(const MethodPlan &Plan, int64_t Budget,
                     const std::vector<ExprRef> &Sels,
                     const std::vector<std::string> &SelLabels,
                     bool TrackRetained, uint64_t *PeakRetained,
                     const std::function<SmtSession &()> &SessionForSplit,
                     SymbolicResult &R) {
  auto AddCoreLabel = [&R](const std::string &L) {
    if (std::find(R.CoreLabels.begin(), R.CoreLabels.end(), L) ==
        R.CoreLabels.end())
      R.CoreLabels.push_back(L);
  };

  // Proof tag stem: the selector path identifies the method within the
  // session; the split index disambiguates its checks. Spaces fold to '_'
  // exactly as SmtSession::setProofTag does, so the tags recorded here
  // match the Query-step tags in the trace byte for byte.
  std::string TagStem;
  for (const std::string &L : SelLabels)
    TagStem += (TagStem.empty() ? "" : "|") + L;
  if (TagStem.empty())
    TagStem = Plan.Name;
  for (char &C : TagStem)
    if (C == ' ')
      C = '_';

  bool Ok = true;
  size_t FailedAt = Plan.Splits.size();
  for (size_t SI = 0; SI != Plan.Splits.size(); ++SI) {
    const VcSplit &Split = Plan.Splits[SI];
    SmtSession &Session = SessionForSplit();

    std::vector<ExprRef> Assumed = Sels;
    std::vector<std::string> Labels = SelLabels;
    for (const TaggedAssumption &A : Split.Assumed) {
      Assumed.push_back(A.E);
      Labels.push_back(A.Label);
    }

    std::string Tag;
    if (Session.certifying()) {
      Tag = TagStem + "#" + std::to_string(SI);
      Session.setProofTag(Tag);
    }

    SatResult Out = Session.check(Assumed, Budget, Sels);
    R.SatConflicts += Session.conflicts();
    R.MaxVcConflicts = std::max(R.MaxVcConflicts, Session.conflicts());
    ++R.NumVcs;
    if (TrackRetained)
      R.RetainedClauses = Session.retainedClauses();
    if (PeakRetained)
      *PeakRetained = std::max(
          *PeakRetained, static_cast<uint64_t>(Session.retainedClauses()));

    if (Out == SatResult::Unsat) {
      for (size_t I : Session.lastCoreAssumptionIndices())
        AddCoreLabel(Labels[I]);
      if (!Tag.empty()) {
        // An Unsat verdict is a claim — record the certificate tag the
        // checker must later confirm for this method.
        R.ProofQueryTags.push_back(std::move(Tag));
        ++R.ProofQueries;
      }
      continue;
    }

    R.LastOutcome = Out;
    std::string Atoms;
    for (const std::string &A : Session.modelAtoms())
      if (A.rfind("__sel_", 0) != 0 && A.rfind("__pair_", 0) != 0)
        Atoms += A + "; "; // Selectors are plumbing, not state.
    R.Countermodel = Split.Label.empty() ? Atoms : Split.Label + ": " + Atoms;
    Ok = false;
    FailedAt = SI;
    break;
  }

  // An out-of-fragment atom trumps whatever the truncated final split said
  // (the lowering replaced the atom by a free variable, so that split's
  // verdict is meaningless).
  if (Plan.Unsupported && (Ok || FailedAt + 1 == Plan.Splits.size())) {
    R.Countermodel = Plan.UnsupportedNote;
    Ok = false;
  }
  return Ok;
}

} // namespace

const char *semcomm::solveModeName(SolveMode M) {
  switch (M) {
  case SolveMode::OneShot:
    return "oneshot";
  case SolveMode::PerMethod:
    return "per-method";
  case SolveMode::SharedPair:
    return "shared-pair";
  case SolveMode::SharedFamily:
    return "shared-family";
  case SolveMode::SharedCatalog:
    return "shared-catalog";
  }
  return "shared-pair";
}

std::vector<ExprRef> semcomm::planFingerprint(const MethodPlan &Plan) {
  // The fingerprint is the plan's prefix content; hash-consing makes
  // pointer equality structural equality, so two plans match iff their
  // prefixes are the same formulas.
  std::vector<ExprRef> Fingerprint = Plan.Common;
  Fingerprint.push_back(nullptr); // Separator: Common vs Scoped.
  for (const TaggedAssumption &S : Plan.Scoped)
    Fingerprint.push_back(S.E);
  return Fingerprint;
}

ExprRef semcomm::findPlanSelector(
    const std::vector<PlanSelectorEntry> &Entries,
    const std::vector<ExprRef> &Fingerprint) {
  for (const PlanSelectorEntry &E : Entries)
    if (E.Fingerprint == Fingerprint)
      return E.Sel;
  return nullptr;
}

void SharedSession::openSession() {
  if (Session) {
    ClosedChecks += Session->numChecks();
    ClosedConflicts += Session->totalConflicts();
    ClosedReductions += static_cast<uint64_t>(Session->dbReductions());
    ClosedReclaimed += static_cast<uint64_t>(Session->reclaimedClauses());
    // Check the closing session's trace now: the trace dies with the
    // session, and the fold makes the rotated sessions (OneShot /
    // PerMethod open one per plan or split) certify as one run.
    if (Certify && !CertFolded)
      Cert.fold(Session->finishCertification());
  }
  Session = std::make_unique<SmtSession>(F);
  if (Certify)
    Session->enableCertification();
  CertFolded = false;
  Session->solver().setClauseGc(GcEnabled);
  if (GcLimit > 0)
    Session->solver().setClauseGcLimit(GcLimit);
  ++SessionsOpened;
  // Selectors and common formulas belong to the discarded database.
  AssertedCommon.clear();
  Selectors.clear();
  SelectorCount = 0;
}

void SharedSession::assertPrefix(const MethodPlan &Plan, ExprRef Sel) {
  for (ExprRef C : Plan.Common)
    if (AssertedCommon.insert(C).second)
      Session->assertBase(C);
  for (const TaggedAssumption &S : Plan.Scoped) {
    if (Sel)
      Session->assertScoped(Sel, S.E);
    else
      Session->assertBase(S.E);
  }
}

bool SharedSession::discharge(const MethodPlan &Plan, SymbolicResult &R) {
  ExprRef Sel = nullptr;
  // A SharedSession given a family- or catalog-tier mode serves a single
  // pair — the degenerate family — with the same selector discipline as
  // SharedPair (FamilySession and CatalogSession own the real multi-pair
  // nesting and eviction).
  if (Mode == SolveMode::SharedPair || Mode == SolveMode::SharedFamily ||
      Mode == SolveMode::SharedCatalog) {
    if (!Session)
      openSession();
    std::vector<ExprRef> Fingerprint = planFingerprint(Plan);
    std::vector<PlanSelectorEntry> &Entries = Selectors[Plan.Name];
    Sel = findPlanSelector(Entries, Fingerprint);
    if (!Sel) {
      // A repeated name with a different prefix (e.g. a mutated entry
      // whose methods share names with the original's) gets its own
      // selector; "#N" keeps the literal distinct in the shared factory.
      std::string SelName = "__sel_" + Plan.Name;
      if (!Entries.empty())
        SelName += "#" + std::to_string(Entries.size());
      Sel = F.var(SelName, Sort::Bool);
      Entries.push_back({std::move(Fingerprint), Sel});
      ++SelectorCount;
      assertPrefix(Plan, Sel);
    }
  } else if (Mode == SolveMode::PerMethod) {
    openSession();
    assertPrefix(Plan, nullptr);
  }

  uint64_t RedBefore = dbReductions();
  uint64_t RecBefore = reclaimedClauses();

  std::vector<ExprRef> Sels;
  std::vector<std::string> SelLabels;
  if (Sel) {
    Sels.push_back(Sel);
    SelLabels.push_back("sel:" + Plan.Name);
  }
  bool Ok = dischargeSplits(
      Plan, Budget, Sels, SelLabels,
      /*TrackRetained=*/Mode != SolveMode::OneShot, /*PeakRetained=*/nullptr,
      [this, &Plan]() -> SmtSession & {
        if (Mode == SolveMode::OneShot) {
          openSession();
          assertPrefix(Plan, nullptr);
        }
        assert(Session && "split discharged without a session");
        return *Session;
      },
      R);

  R.DbReductions += dbReductions() - RedBefore;
  R.ReclaimedClauses += reclaimedClauses() - RecBefore;
  return Ok;
}

const proof::CertifySummary &SharedSession::finishCertification() {
  if (Session && Certify && !CertFolded) {
    Cert.fold(Session->finishCertification());
    CertFolded = true;
  }
  return Cert;
}

uint64_t SharedSession::checks() const {
  return ClosedChecks + (Session ? Session->numChecks() : 0);
}

int64_t SharedSession::conflicts() const {
  return ClosedConflicts + (Session ? Session->totalConflicts() : 0);
}

uint64_t SharedSession::dbReductions() const {
  return ClosedReductions +
         (Session ? static_cast<uint64_t>(Session->dbReductions()) : 0);
}

uint64_t SharedSession::reclaimedClauses() const {
  return ClosedReclaimed +
         (Session ? static_cast<uint64_t>(Session->reclaimedClauses()) : 0);
}

uint64_t SharedSession::retainedClauses() const {
  return Session ? Session->retainedClauses() : 0;
}

//===----------------------------------------------------------------------===//
// PairTier
//===----------------------------------------------------------------------===//

PairTier::PairTier(ExprFactory &F, SmtSession &Session, std::string Tag,
                   SmtSession::ScopeId Parent, std::vector<ExprRef> PathSels,
                   std::vector<std::string> PathLabels,
                   std::vector<const std::set<ExprRef> *> OuterBases,
                   int64_t Budget, FamilySessionStats &Stats,
                   unsigned &SelectorCount)
    : F(F), Session(Session), Tag(std::move(Tag)), Parent(Parent),
      PathSels(std::move(PathSels)), PathLabels(std::move(PathLabels)),
      OuterBases(std::move(OuterBases)), Budget(Budget), Stats(Stats),
      SelectorCount(SelectorCount) {}

PairTier::PairScope &PairTier::ensurePair(const std::string &Key) {
  auto It = LivePairs.find(Key);
  if (It != LivePairs.end())
    return It->second;
  // A retired key re-opens under a fresh selector name: its old selector
  // is permanently false, so reusing it would vacuously "verify"
  // everything discharged under it.
  unsigned Epoch = PairEpochs[Key]++;
  std::string SelName = "__pair_" + Tag + ":" + Key;
  if (Epoch > 0)
    SelName += "#" + std::to_string(Epoch);
  PairScope &PS = LivePairs[Key];
  PS.Sel = F.var(SelName, Sort::Bool);
  // The pair scope owns a Tseitin layer: its formulas' definition vars
  // retire — and their indices recycle — with the scope.
  PS.Scope = Session.openScope(PS.Sel, Parent, /*OwnLayer=*/true);
  ++SelectorCount;
  ++Stats.PairsOpened;
  return PS;
}

bool PairTier::discharge(const std::string &PairKey, const MethodPlan &MPlan,
                         SymbolicResult &R) {
  PairScope &PS = ensurePair(PairKey);

  // Pair-common prefix: formulas already in an outer base (session- or
  // family-common) are reuses; the remainder is asserted once under the
  // pair selector.
  for (ExprRef C : MPlan.Common) {
    bool InOuter = false;
    for (const std::set<ExprRef> *B : OuterBases)
      InOuter = InOuter || B->count(C) != 0;
    if (InOuter) {
      ++Stats.PrefixReuses;
      continue;
    }
    if (PS.AssertedCommon.insert(C).second) {
      Session.assertInScope(PS.Scope, C);
      ++Stats.PrefixAsserts;
    } else {
      ++Stats.PrefixReuses;
    }
  }

  // Method selector, nested under the pair's (same fingerprint discipline
  // as SharedSession: a repeated name with a different prefix gets a fresh
  // selector instead of inheriting the old prefix). Method scopes share
  // the pair's Tseitin layer — they retire only with the pair.
  std::vector<ExprRef> Fingerprint = planFingerprint(MPlan);
  std::vector<PlanSelectorEntry> &Entries = PS.Methods[MPlan.Name];
  ExprRef MSel = findPlanSelector(Entries, Fingerprint);
  if (!MSel) {
    std::string SelName = "__sel_" + MPlan.Name + "@" + Tag + ":" + PairKey;
    unsigned Epoch = PairEpochs[PairKey] - 1;
    if (Epoch > 0)
      SelName += "#e" + std::to_string(Epoch);
    if (!Entries.empty())
      SelName += "#" + std::to_string(Entries.size());
    MSel = F.var(SelName, Sort::Bool);
    Entries.push_back({Fingerprint, MSel});
    ++SelectorCount;
    SmtSession::ScopeId MScope =
        Session.openScope(MSel, PS.Scope, /*OwnLayer=*/false);
    for (const TaggedAssumption &S : MPlan.Scoped)
      Session.assertInScope(MScope, S.E);
  }

  std::vector<ExprRef> Sels = PathSels;
  Sels.push_back(PS.Sel);
  Sels.push_back(MSel);
  std::vector<std::string> SelLabels = PathLabels;
  SelLabels.push_back("pair:" + PairKey);
  SelLabels.push_back("sel:" + MPlan.Name);

  uint64_t RedBefore = static_cast<uint64_t>(Session.dbReductions());
  uint64_t RecBefore = static_cast<uint64_t>(Session.reclaimedClauses());
  bool Ok = dischargeSplits(
      MPlan, Budget, Sels, SelLabels,
      /*TrackRetained=*/true, &Stats.PeakRetainedClauses,
      [this]() -> SmtSession & { return Session; }, R);
  R.DbReductions += static_cast<uint64_t>(Session.dbReductions()) - RedBefore;
  R.ReclaimedClauses +=
      static_cast<uint64_t>(Session.reclaimedClauses()) - RecBefore;
  return Ok;
}

size_t PairTier::retirePair(const std::string &PairKey) {
  auto It = LivePairs.find(PairKey);
  if (It == LivePairs.end())
    return 0;
  size_t Evicted = Session.retireScope(It->second.Scope);
  LivePairs.erase(It);
  ++Stats.PairsRetired;
  Stats.EvictedClauses += Evicted;
  return Evicted;
}

//===----------------------------------------------------------------------===//
// FamilySession
//===----------------------------------------------------------------------===//

FamilySession::FamilySession(ExprFactory &F, const FamilyPlan &Plan,
                             int64_t Budget, bool Certify)
    : F(F), Plan(Plan), Session(F),
      Pairs(F, Session, Plan.FamilyName, SmtSession::RootScope,
            /*PathSels=*/{}, /*PathLabels=*/{}, {&FamilyBase}, Budget, Stats,
            SelectorCount) {
  // Certification must switch on before the first assertion reaches the
  // solver — the proof's Input steps have to cover the whole database.
  if (Certify)
    Session.enableCertification();
  for (ExprRef C : Plan.FamilyCommon)
    if (FamilyBase.insert(C).second) {
      Session.assertBase(C);
      ++Stats.PrefixAsserts;
    }
}

void FamilySession::configureClauseGc(bool Enabled, int64_t FirstLimit) {
  Session.solver().setClauseGc(Enabled);
  if (FirstLimit > 0)
    Session.solver().setClauseGcLimit(FirstLimit);
}

bool FamilySession::discharge(const std::string &PairKey,
                              const MethodPlan &MPlan, SymbolicResult &R) {
  return Pairs.discharge(PairKey, MPlan, R);
}

size_t FamilySession::retirePair(const std::string &PairKey) {
  return Pairs.retirePair(PairKey);
}

//===----------------------------------------------------------------------===//
// CatalogSession
//===----------------------------------------------------------------------===//

CatalogSession::CatalogSession(ExprFactory &F, const CatalogPlan &Plan,
                               int64_t Budget, bool Certify,
                               bool CompactBridges, size_t CompactMinDead,
                               const PrefixImage *Prefix)
    : F(F), Plan(Plan), Budget(Budget), Session(F),
      Tiers(Plan.Families.size()), FamilyEpochs(Plan.Families.size(), 0) {
  // Certification must switch on before the first assertion reaches the
  // solver — the proof's Input steps have to cover the whole database.
  if (Certify)
    Session.enableCertification();
  // Bridge compaction likewise: owner attribution has to see every
  // assertion from the first one, and the dedicated bridge Tseitin layer
  // must exist before any bridge clause is encoded.
  if (CompactBridges)
    Session.enableBridgeCompaction(CompactMinDead);
  if (Prefix && !Prefix->empty()) {
    // Cross-shard prefix sharing: load the pre-encoded image (exported by
    // a sibling session over the *same* plan and factory) instead of
    // re-encoding the catalog-common prefix and its bridge lattice.
    assert(Prefix->HasBridgeLayer == CompactBridges &&
           "prefix image and session disagree on bridge compaction");
    Session.importPrefix(*Prefix);
    for (ExprRef C : Plan.CatalogCommon)
      CatalogBase.insert(C);
    CatStats.PrefixImageLoaded = true;
    return;
  }
  for (ExprRef C : Plan.CatalogCommon)
    if (CatalogBase.insert(C).second) {
      Session.assertBase(C);
      ++CatStats.PrefixAsserts;
    }
}

PrefixImage CatalogSession::exportPrefix() { return Session.exportPrefix(); }

void CatalogSession::configureClauseGc(bool Enabled, int64_t FirstLimit) {
  Session.solver().setClauseGc(Enabled);
  if (FirstLimit > 0)
    Session.solver().setClauseGcLimit(FirstLimit);
}

CatalogSession::FamilyTier &CatalogSession::ensureFamily(size_t FamIdx) {
  assert(FamIdx < Tiers.size() && "family index outside the catalog plan");
  FamilyTier &Tier = Tiers[FamIdx];
  if (Tier.Alive)
    return Tier;
  const FamilyPlan &FP = Plan.Families[FamIdx];
  // A retired family re-opens under a fresh epoch: its old selector (and
  // its old pairs' selectors, which embed the epoch tag) are permanently
  // false.
  unsigned Epoch = FamilyEpochs[FamIdx]++;
  std::string Tag = FP.FamilyName;
  if (Epoch > 0)
    Tag += "@e" + std::to_string(Epoch);
  Tier.Sel = F.var("__fam_" + Tag, Sort::Bool);
  Tier.Scope =
      Session.openScope(Tier.Sel, SmtSession::RootScope, /*OwnLayer=*/true);
  ++SelectorCount;
  ++CatStats.FamiliesOpened;
  Tier.Stats = FamilySessionStats{};
  Tier.FamilyBase.clear();
  // Family-common prefix: formulas already catalog base are reuses; the
  // remainder is asserted once under the family selector.
  for (ExprRef C : FP.FamilyCommon) {
    if (CatalogBase.count(C)) {
      ++Tier.Stats.PrefixReuses;
      continue;
    }
    if (Tier.FamilyBase.insert(C).second) {
      Session.assertInScope(Tier.Scope, C);
      ++Tier.Stats.PrefixAsserts;
    }
  }
  Tier.Pairs = std::make_unique<PairTier>(
      F, Session, Tag, Tier.Scope, std::vector<ExprRef>{Tier.Sel},
      std::vector<std::string>{"fam:" + FP.FamilyName},
      std::vector<const std::set<ExprRef> *>{&CatalogBase, &Tier.FamilyBase},
      Budget, Tier.Stats, SelectorCount);
  Tier.Alive = true;
  return Tier;
}

bool CatalogSession::discharge(size_t FamIdx, const std::string &PairKey,
                               const MethodPlan &MPlan, SymbolicResult &R) {
  return ensureFamily(FamIdx).Pairs->discharge(PairKey, MPlan, R);
}

size_t CatalogSession::retirePair(size_t FamIdx, const std::string &PairKey) {
  FamilyTier &Tier = Tiers[FamIdx];
  if (!Tier.Alive)
    return 0;
  return Tier.Pairs->retirePair(PairKey);
}

size_t CatalogSession::retireFamily(size_t FamIdx) {
  FamilyTier &Tier = Tiers[FamIdx];
  if (!Tier.Alive)
    return 0;
  size_t Evicted = Session.retireScope(Tier.Scope);
  Tier.Stats.EvictedClauses += Evicted;
  ++CatStats.FamiliesRetired;
  // Fold the tier's counters into the retired accumulator so stats()
  // keeps counting it after the bookkeeping is dropped.
  RetiredTierAccum.PairsOpened += Tier.Stats.PairsOpened;
  RetiredTierAccum.PairsRetired += Tier.Stats.PairsRetired;
  RetiredTierAccum.EvictedClauses += Tier.Stats.EvictedClauses;
  RetiredTierAccum.PeakRetainedClauses = std::max(
      RetiredTierAccum.PeakRetainedClauses, Tier.Stats.PeakRetainedClauses);
  RetiredTierAccum.PrefixAsserts += Tier.Stats.PrefixAsserts;
  RetiredTierAccum.PrefixReuses += Tier.Stats.PrefixReuses;
  Tier.Pairs.reset();
  Tier.FamilyBase.clear();
  Tier.Alive = false;
  return Evicted;
}

const FamilySessionStats &CatalogSession::familyStats(size_t FamIdx) const {
  return Tiers[FamIdx].Stats;
}

CatalogSessionStats CatalogSession::stats() const {
  CatalogSessionStats S = CatStats;
  FamilySessionStats Agg = RetiredTierAccum;
  for (const FamilyTier &Tier : Tiers) {
    if (!Tier.Alive)
      continue;
    Agg.PairsOpened += Tier.Stats.PairsOpened;
    Agg.PairsRetired += Tier.Stats.PairsRetired;
    Agg.EvictedClauses += Tier.Stats.EvictedClauses;
    Agg.PeakRetainedClauses =
        std::max(Agg.PeakRetainedClauses, Tier.Stats.PeakRetainedClauses);
    Agg.PrefixAsserts += Tier.Stats.PrefixAsserts;
    Agg.PrefixReuses += Tier.Stats.PrefixReuses;
  }
  S.PairsOpened = Agg.PairsOpened;
  S.PairsRetired = Agg.PairsRetired;
  S.PrefixAsserts += Agg.PrefixAsserts;
  S.PrefixReuses += Agg.PrefixReuses;
  S.EvictedClauses += Agg.EvictedClauses;
  S.PeakRetainedClauses = Agg.PeakRetainedClauses;
  S.RecycledVars = static_cast<uint64_t>(Session.recycledVars());
  S.PeakLiveVars = static_cast<uint64_t>(Session.peakLiveVars());
  S.PeakLiveClauses = static_cast<uint64_t>(Session.peakClauses());
  S.VarRequests = static_cast<uint64_t>(Session.varRequests());
  S.BridgeCompactions = static_cast<uint64_t>(Session.bridgeCompactions());
  S.ReleasedAtomVars = static_cast<uint64_t>(Session.releasedAtomVars());
  S.ReleasedSelectors = static_cast<uint64_t>(Session.releasedSelectors());
  S.LiveBridges = static_cast<uint64_t>(Session.liveBridges());
  S.PeakLiveBridges = static_cast<uint64_t>(Session.peakLiveBridges());
  return S;
}
