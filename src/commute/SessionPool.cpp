//===- commute/SessionPool.cpp - Shared per-pair solver sessions ------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "commute/SessionPool.h"

#include <algorithm>
#include <cassert>

using namespace semcomm;

const char *semcomm::solveModeName(SolveMode M) {
  switch (M) {
  case SolveMode::OneShot:
    return "oneshot";
  case SolveMode::PerMethod:
    return "per-method";
  case SolveMode::SharedPair:
    return "shared-pair";
  }
  return "shared-pair";
}

void SharedSession::openSession() {
  if (Session) {
    ClosedChecks += Session->numChecks();
    ClosedConflicts += Session->totalConflicts();
    ClosedReductions += static_cast<uint64_t>(Session->dbReductions());
    ClosedReclaimed += static_cast<uint64_t>(Session->reclaimedClauses());
  }
  Session = std::make_unique<SmtSession>(F);
  Session->solver().setClauseGc(GcEnabled);
  if (GcLimit > 0)
    Session->solver().setClauseGcLimit(GcLimit);
  ++SessionsOpened;
  // Selectors and common formulas belong to the discarded database.
  AssertedCommon.clear();
  Selectors.clear();
  SelectorCount = 0;
}

void SharedSession::assertPrefix(const MethodPlan &Plan, ExprRef Sel) {
  for (ExprRef C : Plan.Common)
    if (AssertedCommon.insert(C).second)
      Session->assertBase(C);
  for (const TaggedAssumption &S : Plan.Scoped) {
    if (Sel)
      Session->assertScoped(Sel, S.E);
    else
      Session->assertBase(S.E);
  }
}

bool SharedSession::discharge(const MethodPlan &Plan, SymbolicResult &R) {
  ExprRef Sel = nullptr;
  if (Mode == SolveMode::SharedPair) {
    if (!Session)
      openSession();
    // The fingerprint is the plan's prefix content; hash-consing makes
    // pointer equality structural equality, so two plans match iff their
    // prefixes are the same formulas.
    std::vector<ExprRef> Fingerprint = Plan.Common;
    Fingerprint.push_back(nullptr); // Separator: Common vs Scoped.
    for (const TaggedAssumption &S : Plan.Scoped)
      Fingerprint.push_back(S.E);

    std::vector<SelectorEntry> &Entries = Selectors[Plan.Name];
    for (const SelectorEntry &E : Entries)
      if (E.Fingerprint == Fingerprint)
        Sel = E.Sel;
    if (!Sel) {
      // A repeated name with a different prefix (e.g. a mutated entry
      // whose methods share names with the original's) gets its own
      // selector; "#N" keeps the literal distinct in the shared factory.
      std::string SelName = "__sel_" + Plan.Name;
      if (!Entries.empty())
        SelName += "#" + std::to_string(Entries.size());
      Sel = F.var(SelName, Sort::Bool);
      Entries.push_back({std::move(Fingerprint), Sel});
      ++SelectorCount;
      assertPrefix(Plan, Sel);
    }
  } else if (Mode == SolveMode::PerMethod) {
    openSession();
    assertPrefix(Plan, nullptr);
  }

  uint64_t RedBefore = dbReductions();
  uint64_t RecBefore = reclaimedClauses();

  auto AddCoreLabel = [&R](const std::string &L) {
    if (std::find(R.CoreLabels.begin(), R.CoreLabels.end(), L) ==
        R.CoreLabels.end())
      R.CoreLabels.push_back(L);
  };

  bool Ok = true;
  size_t FailedAt = Plan.Splits.size();
  for (size_t SI = 0; SI != Plan.Splits.size(); ++SI) {
    const VcSplit &Split = Plan.Splits[SI];
    if (Mode == SolveMode::OneShot) {
      openSession();
      assertPrefix(Plan, nullptr);
    }
    assert(Session && "split discharged without a session");

    std::vector<ExprRef> Assumed;
    std::vector<std::string> Labels;
    if (Sel) {
      Assumed.push_back(Sel);
      Labels.push_back("sel:" + Plan.Name);
    }
    for (const TaggedAssumption &A : Split.Assumed) {
      Assumed.push_back(A.E);
      Labels.push_back(A.Label);
    }

    SatResult Out = Session->check(Assumed, Budget, Sel);
    R.SatConflicts += Session->conflicts();
    R.MaxVcConflicts = std::max(R.MaxVcConflicts, Session->conflicts());
    ++R.NumVcs;
    if (Mode != SolveMode::OneShot)
      R.RetainedClauses = Session->retainedClauses();

    if (Out == SatResult::Unsat) {
      for (size_t I : Session->lastCoreAssumptionIndices())
        AddCoreLabel(Labels[I]);
      continue;
    }

    R.LastOutcome = Out;
    std::string Atoms;
    for (const std::string &A : Session->modelAtoms())
      if (A.rfind("__sel_", 0) != 0) // Selectors are plumbing, not state.
        Atoms += A + "; ";
    R.Countermodel =
        Split.Label.empty() ? Atoms : Split.Label + ": " + Atoms;
    Ok = false;
    FailedAt = SI;
    break;
  }

  R.DbReductions += dbReductions() - RedBefore;
  R.ReclaimedClauses += reclaimedClauses() - RecBefore;

  // An out-of-fragment atom trumps whatever the truncated final split said
  // (the lowering replaced the atom by a free variable, so that split's
  // verdict is meaningless).
  if (Plan.Unsupported && (Ok || FailedAt + 1 == Plan.Splits.size())) {
    R.Countermodel = Plan.UnsupportedNote;
    Ok = false;
  }
  return Ok;
}

uint64_t SharedSession::checks() const {
  return ClosedChecks + (Session ? Session->numChecks() : 0);
}

int64_t SharedSession::conflicts() const {
  return ClosedConflicts + (Session ? Session->totalConflicts() : 0);
}

uint64_t SharedSession::dbReductions() const {
  return ClosedReductions +
         (Session ? static_cast<uint64_t>(Session->dbReductions()) : 0);
}

uint64_t SharedSession::reclaimedClauses() const {
  return ClosedReclaimed +
         (Session ? static_cast<uint64_t>(Session->reclaimedClauses()) : 0);
}

uint64_t SharedSession::retainedClauses() const {
  return Session ? Session->retainedClauses() : 0;
}
