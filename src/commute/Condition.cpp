//===- commute/Condition.cpp - Commutativity condition entries ------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "commute/Condition.h"

#include "logic/Printer.h"
#include "logic/Simplifier.h"
#include "support/Unreachable.h"

#include <cassert>
#include <cstdio>

using namespace semcomm;

const char *semcomm::conditionKindName(ConditionKind K) {
  switch (K) {
  case ConditionKind::Before:
    return "before";
  case ConditionKind::Between:
    return "between";
  case ConditionKind::After:
    return "after";
  }
  semcomm_unreachable("invalid condition kind");
}

ExprRef ConditionEntry::get(ConditionKind K) const {
  switch (K) {
  case ConditionKind::Before:
    return Before;
  case ConditionKind::Between:
    return Between;
  case ConditionKind::After:
    return After;
  }
  semcomm_unreachable("invalid condition kind");
}

Catalog::Catalog(ExprFactory &F) : Fact(&F) {
  Entries[&accumulatorFamily()] = buildAccumulatorConditions(F);
  Entries[&setFamily()] = buildSetConditions(F);
  Entries[&mapFamily()] = buildMapConditions(F);
  Entries[&arrayListFamily()] = buildArrayListConditions(F);

  for (const auto &[Fam, List] : Entries) {
    unsigned NumOps = Fam->Ops.size();
    if (List.size() != NumOps * NumOps) {
      std::fprintf(stderr,
                   "catalog for %s has %zu entries, expected %u (pairs of %u "
                   "operations)\n",
                   Fam->Name.c_str(), List.size(), NumOps * NumOps, NumOps);
      std::abort();
    }
  }
}

const std::vector<ConditionEntry> &Catalog::entries(const Family &Fam) const {
  auto It = Entries.find(&Fam);
  assert(It != Entries.end() && "unknown family");
  return It->second;
}

const ConditionEntry &Catalog::entry(const Family &Fam,
                                     const std::string &Op1,
                                     const std::string &Op2) const {
  unsigned I1 = Fam.opIndex(Op1), I2 = Fam.opIndex(Op2);
  for (const ConditionEntry &E : entries(Fam))
    if (E.Op1 == I1 && E.Op2 == I2)
      return E;
  semcomm_unreachable("catalog entry lookup failed");
}

unsigned Catalog::totalConditionsPaperCount() const {
  // Each ordered pair contributes a before, a between, and an after
  // condition, counted once per implementing structure (the paper's §5.1
  // accounting: 3*2^2 + 2*3*6^2 + 2*3*7^2 + 3*9^2 = 765).
  unsigned Total = 0;
  for (const auto &[Fam, List] : Entries)
    Total += 3 * static_cast<unsigned>(List.size()) *
             static_cast<unsigned>(Fam->StructureNames.size());
  return Total;
}

// --- Free-variable discipline validation ------------------------------------

static void checkVars(const ConditionEntry &E, ConditionKind K) {
  ExprRef Phi = E.get(K);

  std::set<std::string> Allowed;
  auto AddArgs = [&Allowed](const Operation &Op, int Pos) {
    for (const std::string &Base : Op.ArgBaseNames)
      Allowed.insert(Base + std::to_string(Pos));
  };
  AddArgs(E.op1(), 1);
  AddArgs(E.op2(), 2);

  std::set<std::string> AllowedStates = {"s1"};
  if (K != ConditionKind::Before) {
    AllowedStates.insert("s2");
    if (E.op1().RecordsReturn)
      Allowed.insert("r1");
  }
  if (K == ConditionKind::After) {
    AllowedStates.insert("s3");
    if (E.op2().RecordsReturn)
      Allowed.insert("r2");
  }

  std::set<std::string> Vars, States;
  collectFreeVars(Phi, Vars);
  collectStateNames(Phi, States);
  for (const std::string &V : Vars)
    if (!Allowed.count(V)) {
      std::fprintf(stderr,
                   "%s condition for (%s) of %s references '%s', outside its "
                   "free-variable discipline: %s\n",
                   conditionKindName(K), E.pairName().c_str(),
                   E.Fam->Name.c_str(), V.c_str(),
                   printAbstract(Phi).c_str());
      std::abort();
    }
  for (const std::string &S : States)
    if (!AllowedStates.count(S)) {
      std::fprintf(stderr,
                   "%s condition for (%s) of %s references state '%s', "
                   "outside its free-variable discipline: %s\n",
                   conditionKindName(K), E.pairName().c_str(),
                   E.Fam->Name.c_str(), S.c_str(),
                   printAbstract(Phi).c_str());
      std::abort();
    }
}

void Catalog::validate() const {
  for (const auto &[Fam, List] : Entries)
    for (const ConditionEntry &E : List)
      for (ConditionKind K : {ConditionKind::Before, ConditionKind::Between,
                              ConditionKind::After}) {
        assert(E.get(K) && "missing condition formula");
        checkVars(E, K);
      }
}
