//===- commute/Condition.h - Commutativity condition entries ----*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A ConditionEntry carries, for one ordered pair of operation variants, the
/// developer-specified before / between / after commutativity conditions
/// (§4.1.2). The Catalog holds the full set: 765 conditions counted the
/// paper's way (Set and Map conditions counted once per implementing
/// structure).
///
/// Free-variable disciplines (§4.1.2), enforced by Catalog::validate():
///   before  : arguments and s1 only;
///   between : arguments, r1 (if recorded), s1, s2;
///   after   : arguments, r1, r2 (as recorded), s1, s2, s3.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_COMMUTE_CONDITION_H
#define SEMCOMM_COMMUTE_CONDITION_H

#include "logic/ExprFactory.h"
#include "spec/Family.h"

#include <map>
#include <string>
#include <vector>

namespace semcomm {

/// When a condition can be evaluated relative to the two operations
/// (§4.1.2): before either runs, between them, or after both.
enum class ConditionKind : uint8_t { Before, Between, After };

const char *conditionKindName(ConditionKind K);

/// The conditions of one ordered pair (op1 executes first, then op2).
struct ConditionEntry {
  const Family *Fam = nullptr;
  unsigned Op1 = 0, Op2 = 0; ///< Indices into Fam->Ops.
  ExprRef Before = nullptr;
  ExprRef Between = nullptr;
  ExprRef After = nullptr;

  ExprRef get(ConditionKind K) const;
  const Operation &op1() const { return Fam->Ops[Op1]; }
  const Operation &op2() const { return Fam->Ops[Op2]; }

  /// "add,contains" style key used in diagnostics.
  std::string pairName() const {
    return op1().Name + "," + op2().Name;
  }
};

/// The complete commutativity condition catalog over all four families.
class Catalog {
public:
  /// Builds every entry. All expressions live in \p F.
  explicit Catalog(ExprFactory &F);

  /// Entries of one family, ordered by (Op1, Op2).
  const std::vector<ConditionEntry> &entries(const Family &Fam) const;

  /// The entry for an ordered pair of operation variant names.
  const ConditionEntry &entry(const Family &Fam, const std::string &Op1,
                              const std::string &Op2) const;

  /// Number of conditions counted per implementing structure, i.e. the
  /// paper's 765.
  unsigned totalConditionsPaperCount() const;

  /// Number of generated testing methods counted per structure (2x the
  /// conditions; the paper's 1530).
  unsigned totalTestingMethodsPaperCount() const {
    return 2 * totalConditionsPaperCount();
  }

  /// Checks the free-variable discipline of every entry; aborts with a
  /// diagnostic on a violation (catalog authoring bug).
  void validate() const;

  /// The factory every catalog expression lives in. Engines that build new
  /// expressions over catalog conditions (the symbolic path) must use this
  /// factory so pointer equality stays structural equality.
  ExprFactory &factory() const { return *Fact; }

private:
  ExprFactory *Fact = nullptr;
  std::map<const Family *, std::vector<ConditionEntry>> Entries;
};

// Per-family catalog builders (one translation unit each).
std::vector<ConditionEntry> buildAccumulatorConditions(ExprFactory &F);
std::vector<ConditionEntry> buildSetConditions(ExprFactory &F);
std::vector<ConditionEntry> buildMapConditions(ExprFactory &F);
std::vector<ConditionEntry> buildArrayListConditions(ExprFactory &F);

} // namespace semcomm

#endif // SEMCOMM_COMMUTE_CONDITION_H
