//===- commute/ProofHints.h - Jahob proof-language hint scripts -*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The proof-guidance content of §5.2.1 / Table 5.9: 57 of the 1530
/// generated commutativity testing methods — all on ArrayList — required
/// developer assistance through the Jahob proof language, totalling 201
/// commands (128 note, 51 assuming, 22 pickWitness). The methods fall into
/// four categories:
///
///   1. soundness, between/after, {add_at, remove_at} x {indexOf,
///      lastIndexOf} (12 methods): the prover must transfer "the element
///      does not occur" facts across the index shift;
///   2. soundness, between/after, {indexOf, lastIndexOf} x {remove_at}
///      (8 methods): the adjacent-duplicate case analysis;
///   3. completeness, between/after, combinations of add_at, remove_at and
///      set (20 methods): the prover needs the explicit position at which
///      the two final states differ;
///   4. completeness for the shift x scan combinations (17 methods): case
///      analyses over the relative position of the scanned element.
///
/// This module reconstructs those scripts. Every command carries a real
/// formula over the method's vocabulary (arguments, returns, s1/s2/s3);
/// validateScript() machine-checks each script the way Jahob's integrated
/// reasoning validates proof commands: note formulas must hold in every
/// scenario that reaches them, assuming cases must be non-vacuous, and
/// pickWitness obligations must always provide a witness.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_COMMUTE_PROOFHINTS_H
#define SEMCOMM_COMMUTE_PROOFHINTS_H

#include "commute/TestingMethod.h"
#include "spec/Family.h"

#include <string>
#include <vector>

namespace semcomm {

/// The three Jahob proof-language commands the paper's scripts use.
enum class HintCommandKind : uint8_t { Note, Assuming, PickWitness };

const char *hintCommandKindName(HintCommandKind K);

/// One proof-language command with its formula payload.
struct HintCommand {
  HintCommandKind Kind;
  ExprRef Formula;        ///< Lemma / case / witness obligation.
  std::string WitnessVar; ///< pickWitness only.
  std::string Comment;    ///< What the command contributes to the proof.
  /// Stable identity of the command ("hint:<pair>:<kind>:<role>:<n>",
  /// assigned by buildArrayListHintScripts). When the symbolic engine
  /// assumes a hint lemma, this label is what the unsat core reports —
  /// the signal minimizedFor() consumes.
  std::string Label;
};

/// The hint script of one testing method.
struct HintScript {
  std::string Op1Name, Op2Name;
  ConditionKind Kind = ConditionKind::Before;
  MethodRole Role = MethodRole::Soundness;
  int Category = 0; ///< 1..4 per §5.2.1.
  std::vector<HintCommand> Commands;

  bool matches(const TestingMethod &M) const {
    return M.Entry->op1().Name == Op1Name && M.Entry->op2().Name == Op2Name &&
           M.Kind == Kind && M.Role == Role;
  }
};

/// Builds the 57 ArrayList hint scripts.
std::vector<HintScript> buildArrayListHintScripts(ExprFactory &F);

/// Command-count summary for the Table 5.9 bench.
struct HintSummary {
  unsigned Methods = 0;
  unsigned Notes = 0;
  unsigned Assumings = 0;
  unsigned PickWitnesses = 0;
  unsigned MethodsByCategory[5] = {0, 0, 0, 0, 0};
};

HintSummary summarizeHints(const std::vector<HintScript> &Scripts);

/// Validation outcome of one script.
struct HintValidation {
  bool Ok = false;
  std::string FailureNote;
};

/// Machine-checks \p Script against the exhaustive scenario space of the
/// corresponding testing method (see file comment for the obligations).
HintValidation validateScript(const HintScript &Script, const Catalog &C,
                              const Scope &Bounds = Scope());

/// The automated counterpart of §5.2.1's hand-minimization: returns
/// \p Script with every note/pickWitness command whose Label never appears
/// in \p CoreLabels removed. \p CoreLabels is the union of the unsat-core
/// labels recorded for the script's (family, op-pair) — the driver's
/// proof_core field, or SymbolicResult::CoreLabels from an engine run with
/// the scripts attached. Assuming commands define the case structure the
/// cores were recorded under, so they are always kept.
HintScript minimizedFor(const HintScript &Script,
                        const std::vector<std::string> &CoreLabels);

} // namespace semcomm

#endif // SEMCOMM_COMMUTE_PROOFHINTS_H
