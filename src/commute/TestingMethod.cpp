//===- commute/TestingMethod.cpp - Generated testing methods --------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "commute/TestingMethod.h"

#include "support/Unreachable.h"

using namespace semcomm;

const char *semcomm::methodRoleName(MethodRole R) {
  switch (R) {
  case MethodRole::Soundness:
    return "soundness";
  case MethodRole::Completeness:
    return "completeness";
  }
  semcomm_unreachable("invalid method role");
}

std::string TestingMethod::name() const {
  std::string CleanOp1 = Entry->op1().Name, CleanOp2 = Entry->op2().Name;
  // Method names use the call names; the discarded-return variant keeps its
  // trailing underscore so names stay unique.
  std::string Name = CleanOp1 + "_" + CleanOp2 + "_" +
                     conditionKindName(Kind) + "_" +
                     (Role == MethodRole::Soundness ? "s" : "c") + "_" +
                     std::to_string(Id);
  return Name;
}

std::vector<TestingMethod>
semcomm::generateTestingMethods(const Catalog &C, const Family &Fam) {
  std::vector<TestingMethod> Methods;
  unsigned Id = 0;
  for (const ConditionEntry &Entry : C.entries(Fam))
    for (ConditionKind Kind : {ConditionKind::Before, ConditionKind::Between,
                               ConditionKind::After})
      for (MethodRole Role :
           {MethodRole::Soundness, MethodRole::Completeness}) {
        TestingMethod M;
        M.Entry = &Entry;
        M.Kind = Kind;
        M.Role = Role;
        M.Id = Id++;
        Methods.push_back(M);
      }
  return Methods;
}
