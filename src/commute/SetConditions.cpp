//===- commute/SetConditions.cpp - Tables 5.2 / 5.3 -----------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// The 108 conditions shared by ListSet and HashSet (36 ordered pairs of
/// {add, add_, contains, remove, remove_, size} x {before, between, after};
/// Tables 5.2 and 5.3 sample the discarded-update rows).
///
/// Shapes (s = abstract set before the first operation):
///  * add/remove of the same element never commute: the final sets differ
///    (S - {v} vs S + {v}), hence the bare v1 ~= v2 conditions.
///  * A recorded add/contains result changes across orders only when the
///    other operation flips v's membership, hence v1 ~= v2 | v1 in s1.
///  * Between conditions replace membership queries by the first
///    operation's recorded return value where one exists (§4.1.2's
///    "replace clauses ... with equivalent clauses that reference return
///    values"): add returns v1 ~in s1, remove and contains return v1 in s1.
///  * size() commutes with an update only when the update is a no-op.
///
//===----------------------------------------------------------------------===//

#include "commute/CatalogBuilder.h"

using namespace semcomm;

std::vector<ConditionEntry> semcomm::buildSetConditions(ExprFactory &F) {
  CatalogBuilder B(F, setFamily());
  Vocab &D = B.D;

  ExprRef T = D.tru();
  ExprRef NE = D.ne(D.V1, D.V2);       // v1 ~= v2
  ExprRef E1 = D.in(D.V1, D.S1);       // v1 in s1
  ExprRef NotE1 = D.notIn(D.V1, D.S1); // v1 ~in s1
  ExprRef E2 = D.in(D.V2, D.S1);       // v2 in s1
  ExprRef NotE2 = D.notIn(D.V2, D.S1); // v2 ~in s1
  ExprRef R1 = D.R1B;                  // first operation's recorded result
  ExprRef NotR1 = D.lnot(D.R1B);
  ExprRef NotR2 = D.lnot(D.R2B);

  ExprRef NEorE1 = D.disj({NE, E1});
  ExprRef NEorNotE1 = D.disj({NE, NotE1});
  ExprRef NEorR1 = D.disj({NE, R1});
  ExprRef NEorNotR1 = D.disj({NE, NotR1});

  // --- op1 = r1 = add(v1) ---------------------------------------------------
  // add returns (v1 ~in s1), so between conditions use ~r1 for v1 in s1.
  B.add("add", "add", NEorE1, NEorNotR1, NEorNotR1);
  B.add("add", "add_", NEorE1, NEorNotR1, NEorNotR1);
  B.add("add", "contains", NEorE1, NEorNotR1, NEorNotR1);
  B.addUniform("add", "remove", NE);
  B.addUniform("add", "remove_", NE);
  B.add("add", "size", E1, NotR1, NotR1);

  // --- op1 = add(v1) (return discarded) --------------------------------------
  B.addUniform("add_", "add", NEorE1);
  B.addUniform("add_", "add_", T);
  B.addUniform("add_", "contains", NEorE1);
  B.addUniform("add_", "remove", NE);
  B.addUniform("add_", "remove_", NE);
  B.addUniform("add_", "size", E1);

  // --- op1 = r1 = contains(v1) -----------------------------------------------
  // contains returns (v1 in s1).
  B.add("contains", "add", NEorE1, NEorR1, NEorR1);
  B.add("contains", "add_", NEorE1, NEorR1, NEorR1);
  B.addUniform("contains", "contains", T);
  B.add("contains", "remove", NEorNotE1, NEorNotR1, NEorNotR1);
  B.add("contains", "remove_", NEorNotE1, NEorNotR1, NEorNotR1);
  B.addUniform("contains", "size", T);

  // --- op1 = r1 = remove(v1) --------------------------------------------------
  // remove returns (v1 in s1).
  B.addUniform("remove", "add", NE);
  B.addUniform("remove", "add_", NE);
  B.add("remove", "contains", NEorNotE1, NEorNotR1, NEorNotR1);
  B.add("remove", "remove", NEorNotE1, NEorNotR1, NEorNotR1);
  B.add("remove", "remove_", NEorNotE1, NEorNotR1, NEorNotR1);
  B.add("remove", "size", NotE1, NotR1, NotR1);

  // --- op1 = remove(v1) (return discarded) ------------------------------------
  B.addUniform("remove_", "add", NE);
  B.addUniform("remove_", "add_", NE);
  B.addUniform("remove_", "contains", NEorNotE1);
  B.addUniform("remove_", "remove", NEorNotE1);
  B.addUniform("remove_", "remove_", T);
  B.addUniform("remove_", "size", NotE1);

  // --- op1 = r1 = size() -------------------------------------------------------
  // size changes across orders iff the second operation changes cardinality.
  B.add("size", "add", E2, E2, NotR2);
  B.addUniform("size", "add_", E2);
  B.addUniform("size", "contains", T);
  B.add("size", "remove", NotE2, NotE2, NotR2);
  B.addUniform("size", "remove_", NotE2);
  B.addUniform("size", "size", T);

  return B.take();
}
