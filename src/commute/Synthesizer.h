//===- commute/Synthesizer.h - Condition synthesis --------------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In the paper, commutativity conditions are "provided by the developer
/// and verified by our implemented system" (§1.5). This module closes the
/// loop the paper leaves as future work: given an ordered pair of
/// operations and an atom vocabulary, it *learns* the sound-and-complete
/// condition directly from the scenario space.
///
/// Because a sound AND complete condition is semantically unique (it is
/// exactly the set of scenarios where the orders agree), synthesis doubles
/// as an independent check of the hand-written catalog: over any atom
/// vocabulary rich enough to express it, the synthesized condition must be
/// scenario-equivalent to the catalog's.
///
/// Method: evaluate the atoms in every scenario, bucket scenarios by atom
/// valuation, and require each bucket to be pure (all-commute or
/// all-conflict); impure buckets mean the vocabulary cannot express the
/// condition. The condition is then the DNF over commuting buckets,
/// greedily minimized by dropping literals that never flip a bucket's
/// verdict.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_COMMUTE_SYNTHESIZER_H
#define SEMCOMM_COMMUTE_SYNTHESIZER_H

#include "commute/Condition.h"

#include <string>
#include <vector>

namespace semcomm {

/// Result of a synthesis attempt.
struct SynthesisResult {
  bool Expressible = false; ///< The vocabulary separates the two classes.
  ExprRef Condition = nullptr; ///< Minimized DNF (when Expressible).
  uint64_t Scenarios = 0;
  /// When !Expressible: two scenarios with identical atom valuations but
  /// different commute verdicts, for diagnosing the missing atom.
  std::string AmbiguityNote;
};

/// Learns the between condition of (\p Op1 ; \p Op2) over the given
/// boolean \p Atoms (formulas over the pair's vocabulary).
SynthesisResult synthesizeCondition(ExprFactory &F, const Family &Fam,
                                    const std::string &Op1,
                                    const std::string &Op2,
                                    const std::vector<ExprRef> &Atoms,
                                    const Scope &Bounds = Scope());

/// A default atom vocabulary for a pair: argument equalities, membership /
/// key / value atoms matching the family, and recorded-return atoms.
std::vector<ExprRef> defaultAtoms(ExprFactory &F, const Family &Fam,
                                  const std::string &Op1,
                                  const std::string &Op2);

} // namespace semcomm

#endif // SEMCOMM_COMMUTE_SYNTHESIZER_H
