//===- commute/SymbolicEngine.h - VC-based verification ---------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The symbolic counterpart of the exhaustive engine, mirroring how Jahob
/// discharges the generated testing methods (§1.4): the two execution
/// orders are executed *symbolically* over an unknown initial abstract
/// state, producing a verification condition that the smt/ stack decides.
///
///  * Accumulator: states are linear terms over a symbolic initial counter;
///    VCs fall to the canonical linear-atom encoding.
///  * Set / Map: states are symbolic update chains over an uninterpreted
///    initial state S0/M0. Membership and lookup atoms unfold through the
///    chain; state equality uses extensionality instantiated exactly at
///    the operation arguments (updates touch no other element/key, so the
///    instantiation is complete, not just sound). Size deltas are expanded
///    propositionally.
///  * ArrayList: verified by symbolic execution with the length and index
///    arguments case-split up to a bound and *elements kept symbolic*
///    (v1, v2 and every cell are unknown objects); indexOf/lastIndexOf
///    atoms expand into first/last-occurrence formulas. This bounded
///    symbolic mode is the engine's stand-in for Jahob's unbounded sequence
///    reasoning; the hint machinery of ProofHints.h carries the paper's
///    §5.2.1 proof-guidance content (see EXPERIMENTS.md for the exact
///    correspondence).
///
/// A VC that the SMT stack cannot refute within its conflict budget is
/// reported Unknown — the analogue of the prover timeouts that dominate the
/// paper's ArrayList verification time (Table 5.8).
///
/// Discharge strategy: each testing method is compiled to a MethodPlan
/// (pair-common prefix, selector-scoped method prefix, labeled VC splits)
/// and handed to a SharedSession (see SessionPool.h). In the default
/// SolveMode::SharedPair, verifyPair() runs all six testing methods of one
/// (family, op-pair) against a single warm solver under per-method selector
/// literals; PerMethod (the pre-pair incremental mode) and OneShot (cold
/// start per split) remain as comparison baselines for
/// bench/perf_engine_scaling.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_COMMUTE_SYMBOLICENGINE_H
#define SEMCOMM_COMMUTE_SYMBOLICENGINE_H

#include "commute/SessionPool.h"
#include "commute/TestingMethod.h"

#include <cstdint>
#include <string>
#include <vector>

namespace semcomm {

/// Outcome of verifying all six testing methods of one pair through one
/// SharedSession, plus the session-level reuse statistics the driver
/// reports per pair.
struct PairOutcome {
  /// Per-method results in enumeration order: before/between/after x
  /// soundness/completeness.
  std::vector<SymbolicResult> Methods;
  std::vector<double> MethodMillis; ///< Wall time per method.
  uint64_t Checks = 0;              ///< SMT checks the session served.
  int64_t Conflicts = 0;            ///< CDCL conflicts across the pair.
  uint64_t RetainedClauses = 0;     ///< Clauses alive at the end.
  uint64_t DbReductions = 0;        ///< Clause-GC runs.
  uint64_t ReclaimedClauses = 0;    ///< Clauses the GC reclaimed.
  unsigned Selectors = 0;           ///< Selector literals registered.
  size_t SessionsOpened = 0;        ///< 1 in SharedPair mode.

  unsigned failures() const {
    unsigned N = 0;
    for (const SymbolicResult &R : Methods)
      N += !R.Verified;
    return N;
  }
};

/// Symbolic verifier for generated testing methods.
class SymbolicEngine {
public:
  /// \p SeqLenBound is the ArrayList case-split bound (lengths 0..bound).
  explicit SymbolicEngine(ExprFactory &F, int SeqLenBound = 3,
                          int64_t ConflictBudget = 200000,
                          SolveMode Mode = SolveMode::SharedPair)
      : F(F), SeqLenBound(SeqLenBound), ConflictBudget(ConflictBudget),
        Mode(Mode) {}

  /// Verifies one testing method symbolically in a session of its own.
  /// Safe to call concurrently from several engines sharing one
  /// (thread-safe) ExprFactory.
  SymbolicResult verify(const TestingMethod &M);

  /// Verifies all six testing methods of \p E through one SharedSession
  /// (one warm solver for the whole pair in SharedPair mode). Method order
  /// is deterministic, so results and statistics are a function of the
  /// options alone.
  PairOutcome verifyPair(const ConditionEntry &E);

  /// Compiles one testing method to its discharge plan (exposed so tests
  /// can replay plans against differently configured sessions).
  MethodPlan plan(const TestingMethod &M) const;

  SolveMode mode() const { return Mode; }

private:
  ExprFactory &F;
  int SeqLenBound;
  int64_t ConflictBudget;
  SolveMode Mode;
};

} // namespace semcomm

#endif // SEMCOMM_COMMUTE_SYMBOLICENGINE_H
