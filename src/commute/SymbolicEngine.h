//===- commute/SymbolicEngine.h - VC-based verification ---------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The symbolic counterpart of the exhaustive engine, mirroring how Jahob
/// discharges the generated testing methods (§1.4): the two execution
/// orders are executed *symbolically* over an unknown initial abstract
/// state, producing a verification condition that the smt/ stack decides.
///
///  * Accumulator: states are linear terms over a symbolic initial counter;
///    VCs fall to the canonical linear-atom encoding.
///  * Set / Map: states are symbolic update chains over an uninterpreted
///    initial state S0/M0. Membership and lookup atoms unfold through the
///    chain; state equality uses extensionality instantiated exactly at
///    the operation arguments (updates touch no other element/key, so the
///    instantiation is complete, not just sound). Size deltas are expanded
///    propositionally.
///  * ArrayList: verified by symbolic execution with the length and index
///    arguments case-split up to a bound and *elements kept symbolic*
///    (v1, v2 and every cell are unknown objects); indexOf/lastIndexOf
///    atoms expand into first/last-occurrence formulas. This bounded
///    symbolic mode is the engine's stand-in for Jahob's unbounded sequence
///    reasoning; the hint machinery of ProofHints.h carries the paper's
///    §5.2.1 proof-guidance content (see EXPERIMENTS.md for the exact
///    correspondence).
///
/// A VC that the SMT stack cannot refute within its conflict budget is
/// reported Unknown — the analogue of the prover timeouts that dominate the
/// paper's ArrayList verification time (Table 5.8).
///
/// Discharge strategy: each testing method opens one SmtSession, asserts
/// the shared symbolic-execution prefix (argument/element well-formedness)
/// once, and discharges every case split under assumption literals. The
/// warm solver retains Tseitin definitions, theory bridges, and learned
/// clauses across the splits of a method (SolveMode::Incremental); the
/// one-shot mode rebuilds the session per VC and exists as the cold-start
/// baseline for the perf comparison (bench/perf_engine_scaling.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_COMMUTE_SYMBOLICENGINE_H
#define SEMCOMM_COMMUTE_SYMBOLICENGINE_H

#include "commute/TestingMethod.h"
#include "smt/SmtSolver.h"

#include <cstdint>
#include <string>

namespace semcomm {

/// How the engine discharges the VCs of one testing method.
enum class SolveMode : uint8_t {
  /// A fresh solver session per VC (the historical behavior; cold start
  /// every split). Kept as the baseline the perf benches compare against.
  OneShot,
  /// One warm session per testing method: the shared prefix is asserted
  /// once and every case split is discharged under assumption literals,
  /// retaining Tseitin definitions, bridges, and learned clauses.
  Incremental,
};

/// Outcome of symbolically verifying one testing method.
struct SymbolicResult {
  bool Verified = false;
  /// When not verified: whether the solver produced a (possibly spurious)
  /// countermodel or ran out of budget.
  SatResult LastOutcome = SatResult::Unknown;
  uint64_t NumVcs = 0;       ///< VC instances discharged (ArrayList splits).
  int64_t SatConflicts = 0;  ///< Total CDCL conflicts.
  int64_t MaxVcConflicts = 0; ///< Largest single-split conflict count.
  /// Clauses alive in the method's warm session after the last split
  /// (Tseitin definitions + bridges + learned); 0 in one-shot mode, where
  /// nothing is carried over.
  uint64_t RetainedClauses = 0;
  std::string Countermodel;  ///< Diagnostic atoms of a failed proof.
};

/// Symbolic verifier for generated testing methods.
class SymbolicEngine {
public:
  /// \p SeqLenBound is the ArrayList case-split bound (lengths 0..bound).
  explicit SymbolicEngine(ExprFactory &F, int SeqLenBound = 3,
                          int64_t ConflictBudget = 200000,
                          SolveMode Mode = SolveMode::Incremental)
      : F(F), SeqLenBound(SeqLenBound), ConflictBudget(ConflictBudget),
        Mode(Mode) {}

  /// Verifies one testing method symbolically. Safe to call concurrently
  /// from several engines sharing one (thread-safe) ExprFactory.
  SymbolicResult verify(const TestingMethod &M);

private:
  ExprFactory &F;
  int SeqLenBound;
  int64_t ConflictBudget;
  SolveMode Mode;
};

} // namespace semcomm

#endif // SEMCOMM_COMMUTE_SYMBOLICENGINE_H
