//===- commute/SymbolicEngine.h - VC-based verification ---------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The symbolic counterpart of the exhaustive engine, mirroring how Jahob
/// discharges the generated testing methods (§1.4): the two execution
/// orders are executed *symbolically* over an unknown initial abstract
/// state, producing a verification condition that the smt/ stack decides.
///
///  * Accumulator: states are linear terms over a symbolic initial counter;
///    VCs fall to the canonical linear-atom encoding.
///  * Set / Map: states are symbolic update chains over an uninterpreted
///    initial state S0/M0. Membership and lookup atoms unfold through the
///    chain; state equality uses extensionality instantiated exactly at
///    the operation arguments (updates touch no other element/key, so the
///    instantiation is complete, not just sound). Size deltas are expanded
///    propositionally.
///  * ArrayList: verified by symbolic execution with the length and index
///    arguments case-split up to a bound and *elements kept symbolic*
///    (v1, v2 and every cell are unknown objects); indexOf/lastIndexOf
///    atoms expand into first/last-occurrence formulas. This bounded
///    symbolic mode is the engine's stand-in for Jahob's unbounded sequence
///    reasoning; the hint machinery of ProofHints.h carries the paper's
///    §5.2.1 proof-guidance content (see EXPERIMENTS.md for the exact
///    correspondence).
///
/// A VC that the SMT stack cannot refute within its conflict budget is
/// reported Unknown — the analogue of the prover timeouts that dominate the
/// paper's ArrayList verification time (Table 5.8).
///
/// Discharge strategy: each testing method is compiled to a MethodPlan
/// (pair-common prefix, selector-scoped method prefix, labeled VC splits)
/// and handed to a SharedSession (see SessionPool.h). In the default
/// SolveMode::SharedPair, verifyPair() runs all six testing methods of one
/// (family, op-pair) against a single warm solver under per-method selector
/// literals; PerMethod (the pre-pair incremental mode) and OneShot (cold
/// start per split) remain as comparison baselines for
/// bench/perf_engine_scaling.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_COMMUTE_SYMBOLICENGINE_H
#define SEMCOMM_COMMUTE_SYMBOLICENGINE_H

#include "commute/ProofHints.h"
#include "commute/SessionPool.h"
#include "commute/TestingMethod.h"

#include <cstdint>
#include <string>
#include <vector>

namespace semcomm {

/// Outcome of verifying all six testing methods of one pair through one
/// SharedSession, plus the session-level reuse statistics the driver
/// reports per pair.
struct PairOutcome {
  /// Per-method results in enumeration order: before/between/after x
  /// soundness/completeness.
  std::vector<SymbolicResult> Methods;
  std::vector<double> MethodMillis; ///< Wall time per method.
  uint64_t Checks = 0;              ///< SMT checks the session served.
  int64_t Conflicts = 0;            ///< CDCL conflicts across the pair.
  uint64_t RetainedClauses = 0;     ///< Clauses alive at the end.
  uint64_t DbReductions = 0;        ///< Clause-GC runs.
  uint64_t ReclaimedClauses = 0;    ///< Clauses the GC reclaimed.
  unsigned Selectors = 0;           ///< Selector literals registered.
  size_t SessionsOpened = 0;        ///< 1 in SharedPair mode.

  /// Certification aggregates (zero unless the engine certifies): the
  /// checker's verdict over the pair's session trace, its step/query
  /// counts, and its database high-water mark.
  bool Certified = false;
  uint64_t ProofSteps = 0;
  uint64_t ProofQueries = 0;
  uint64_t ProofClauses = 0;

  unsigned failures() const {
    unsigned N = 0;
    for (const SymbolicResult &R : Methods)
      N += !R.Verified;
    return N;
  }
};

/// Outcome of verifying every op-pair of one family through a single
/// FamilySession (SolveMode::SharedFamily), plus the session-level
/// statistics the driver reports per family.
struct FamilyOutcome {
  std::string Family;
  std::vector<std::string> PairKeys; ///< "op1,op2", catalog entry order.
  std::vector<PairOutcome> Pairs;    ///< Parallel to PairKeys; per-pair
                                     ///< stats are deltas over the shared
                                     ///< session.
  FamilySessionStats Stats;          ///< Eviction / prefix-reuse counters.
  uint64_t Checks = 0;               ///< SMT checks the session served.
  int64_t Conflicts = 0;             ///< CDCL conflicts across the family.
  uint64_t RetainedClauses = 0;      ///< Clauses alive at the end.
  uint64_t DbReductions = 0;
  uint64_t ReclaimedClauses = 0;
  unsigned Selectors = 0; ///< Pair + method selectors registered.
  /// Lazy-planning accounting: VC splits materialized over the whole run
  /// vs. the largest number alive at once (one pair's worth — plans are
  /// built just before discharge and dropped after retirePair, so plan
  /// memory no longer grows with family size).
  uint64_t TotalSplits = 0;
  uint64_t PeakMaterializedSplits = 0;

  /// Certification aggregates over the family session's trace (zero
  /// unless the engine certifies).
  bool Certified = false;
  uint64_t ProofSteps = 0;
  uint64_t ProofQueries = 0;
  uint64_t ProofClauses = 0;

  unsigned failures() const {
    unsigned N = 0;
    for (const PairOutcome &P : Pairs)
      N += P.failures();
    return N;
  }
};

/// Outcome of verifying several families through a single CatalogSession
/// (SolveMode::SharedCatalog): per-family outcomes in the same shape
/// verifyFamily produces (so reporting code is shared), plus the
/// catalog-session statistics — prefix amortization, subtree
/// retirements, variable recycling, and the peak-liveness bounds.
struct CatalogOutcome {
  std::vector<FamilyOutcome> Families; ///< Requested-family order.
  CatalogSessionStats Stats;
  uint64_t Checks = 0;
  int64_t Conflicts = 0;
  uint64_t RetainedClauses = 0; ///< Clauses alive at the end.
  uint64_t DbReductions = 0;
  uint64_t ReclaimedClauses = 0;
  unsigned Selectors = 0; ///< Family + pair + method selectors.
  uint64_t TotalSplits = 0;
  uint64_t PeakMaterializedSplits = 0;

  /// Certification aggregates over the one catalog-session trace (zero
  /// unless the engine certifies).
  bool Certified = false;
  uint64_t ProofSteps = 0;
  uint64_t ProofQueries = 0;
  uint64_t ProofClauses = 0;

  unsigned failures() const {
    unsigned N = 0;
    for (const FamilyOutcome &FO : Families)
      N += FO.failures();
    return N;
  }
};

/// Symbolic verifier for generated testing methods.
class SymbolicEngine {
public:
  /// \p SeqLenBound is the ArrayList case-split bound (lengths 0..bound).
  explicit SymbolicEngine(ExprFactory &F, int SeqLenBound = 3,
                          int64_t ConflictBudget = 200000,
                          SolveMode Mode = SolveMode::SharedPair)
      : F(F), SeqLenBound(SeqLenBound), ConflictBudget(ConflictBudget),
        Mode(Mode) {}

  /// Verifies one testing method symbolically in a session of its own.
  /// Safe to call concurrently from several engines sharing one
  /// (thread-safe) ExprFactory.
  SymbolicResult verify(const TestingMethod &M);

  /// Verifies all six testing methods of \p E through one SharedSession
  /// (one warm solver for the whole pair in SharedPair mode; in
  /// SharedFamily mode, through a degenerate one-pair FamilySession).
  /// Method order is deterministic, so results and statistics are a
  /// function of the options alone.
  PairOutcome verifyPair(const ConditionEntry &E);

  /// Verifies every op-pair of \p Fam through one FamilySession: the
  /// family-common prefix is asserted once, each pair's plan is
  /// materialized lazily just before its discharge, and the pair's scope
  /// is retired (evicted) — and its plan dropped — when its six methods
  /// are done. Pair and method order are deterministic.
  FamilyOutcome verifyFamily(const Catalog &C, const Family &Fam);

  /// Verifies every op-pair of every family in \p Fams through one
  /// CatalogSession: the catalog-common prefix is asserted once, each
  /// family opens a selector scope beneath it, pairs are planned lazily,
  /// discharged, and retired as in verifyFamily, and a finished family's
  /// whole scope subtree is retired in one pass. Family, pair, and method
  /// order are deterministic.
  CatalogOutcome verifyCatalog(const Catalog &C,
                               const std::vector<const Family *> &Fams);

  /// Compiles one testing method to its discharge plan (exposed so tests
  /// can replay plans against differently configured sessions).
  MethodPlan plan(const TestingMethod &M) const;

  /// Compiles one entry's six testing methods to a pair plan, in
  /// (kind x role) enumeration order.
  PairPlan planPair(const ConditionEntry &E) const;

  /// Compiles a set of catalog entries to a whole-family plan: six method
  /// plans per pair, plus the family-common prefix (the Common formulas
  /// present in every method plan, hoisted to session base). Eager —
  /// every pair's splits are materialized; the verify* entry points use
  /// the lazy per-pair path instead.
  FamilyPlan planFamily(const std::string &FamilyName,
                        const std::vector<const ConditionEntry *> &Entries)
      const;

  /// Compiles the catalog-level plan for \p Fams: per-family common
  /// prefixes (pairs left unmaterialized — verifyCatalog plans them
  /// lazily) plus the catalog-common prefix, the well-formedness formulas
  /// every entry either asserts in its own Common prefix or provably
  /// cannot mention (none of the formula's variables occur in the entry's
  /// vocabulary), hoisted to the session root.
  CatalogPlan planCatalog(const Catalog &C,
                          const std::vector<const Family *> &Fams) const;

  /// Clause-GC budget: the live-learned-clause count at which a session's
  /// first database reduction fires (the driver's --gc-budget knob;
  /// 0 keeps the solver default).
  void setClauseGcBudget(int64_t Budget) { GcBudget = Budget; }

  /// Turns on certified verdicts (the driver's --certify knob): every
  /// session the engine opens logs a DRAT-style proof trace, the
  /// independent RUP checker replays it when the session closes, and each
  /// method's SymbolicResult records whether its Unsat verdicts carried
  /// checked certificates (ProofQueries / ProofClauses / ProofChecked).
  void setCertify(bool C) { Certify = C; }
  bool certify() const { return Certify; }

  /// Turns on bridge compaction for catalog sessions (the driver's
  /// --compact-bridges knob): retired scopes release their theory-atom
  /// references, and once every owner of an atom is dead its bridge
  /// clauses are compacted out of the clause database and its variable
  /// recycled. Only verifyCatalog sessions honor it — the other modes
  /// retire nothing, so there is nothing to compact.
  void setBridgeCompaction(bool B) { CompactBridges = B; }
  bool bridgeCompaction() const { return CompactBridges; }

  /// Attaches a pre-encoded catalog prefix image: verifyCatalog sessions
  /// load it instead of re-encoding the catalog-common prefix (cross-
  /// shard prefix sharing). The image must have been exported over the
  /// same factory, the same catalog plan, and the same bridge-compaction
  /// flag; it must outlive the engine. nullptr detaches.
  void setPrefixImage(const PrefixImage *Img) { Prefix = Img; }
  const PrefixImage *prefixImage() const { return Prefix; }

  /// Attaches proof-hint scripts: ArrayList method plans whose method
  /// matches a script gain the script's note/pickWitness lemmas as extra
  /// *labeled* split assumptions, so unsat cores can name the hint
  /// commands a proof actually used (the input to minimizedFor()).
  /// \p Scripts must outlive the engine; nullptr detaches.
  void attachHints(const std::vector<HintScript> *Scripts) {
    Hints = Scripts;
  }

  SolveMode mode() const { return Mode; }

private:
  FamilyOutcome verifyEntries(const std::string &FamilyName,
                              const std::vector<const ConditionEntry *> &E);
  /// The Common prefix of \p E's method plans without materializing the
  /// ArrayList split lattice (the prefixes are a handful of
  /// well-formedness formulas, identical across an entry's six methods).
  std::vector<ExprRef> planCommonOnly(const ConditionEntry &E) const;
  /// Intersection of planCommonOnly over \p Entries, in first-entry
  /// order — the family-common prefix shared by planFamily, the lazy
  /// verify paths, and planCatalog.
  std::vector<ExprRef>
  familyCommonOf(const std::vector<const ConditionEntry *> &Entries) const;

  ExprFactory &F;
  int SeqLenBound;
  int64_t ConflictBudget;
  SolveMode Mode;
  int64_t GcBudget = 0;
  bool Certify = false;
  bool CompactBridges = false;
  const std::vector<HintScript> *Hints = nullptr;
  const PrefixImage *Prefix = nullptr; ///< Not owned; null = encode fresh.
};

} // namespace semcomm

#endif // SEMCOMM_COMMUTE_SYMBOLICENGINE_H
