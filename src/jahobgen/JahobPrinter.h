//===- jahobgen/JahobPrinter.h - Jahob-style method rendering ---*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the generated testing methods as Jahob-annotated Java source, in
/// the exact shape of the paper's figures: the HashSet specification
/// (Fig. 2-1), the commutativity testing methods (Fig. 2-2, following the
/// templates of Fig. 3-1), and the inverse testing methods (Figs. 2-3, 2-4,
/// following Fig. 3-2). The bench binaries for those figures print these
/// renderings.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_JAHOBGEN_JAHOBPRINTER_H
#define SEMCOMM_JAHOBGEN_JAHOBPRINTER_H

#include "commute/TestingMethod.h"
#include "inverse/InverseSpec.h"

#include <string>

namespace semcomm {

/// The Jahob HashSet interface specification (Fig. 2-1).
std::string renderHashSetSpec();

/// One generated commutativity testing method (soundness or completeness)
/// for \p StructureName, e.g. the two methods of Fig. 2-2.
std::string renderTestingMethod(const TestingMethod &M,
                                const std::string &StructureName,
                                ExprFactory &F);

/// One generated inverse testing method for \p StructureName
/// (Figs. 2-3 / 2-4).
std::string renderInverseMethod(const InverseSpec &Spec,
                                const std::string &StructureName);

/// The generation templates themselves (Figs. 3-1 and 3-2), as commented
/// pseudo-Java.
std::string renderCompletenessTemplate();
std::string renderInverseTemplate();

} // namespace semcomm

#endif // SEMCOMM_JAHOBGEN_JAHOBPRINTER_H
