//===- jahobgen/JahobPrinter.cpp - Jahob-style method rendering ------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "jahobgen/JahobPrinter.h"

#include "logic/Printer.h"
#include "support/Unreachable.h"

using namespace semcomm;

static const char *javaType(Sort S) {
  switch (S) {
  case Sort::Bool:
    return "boolean";
  case Sort::Int:
    return "int";
  case Sort::Obj:
    return "Object";
  case Sort::State:
    break;
  }
  semcomm_unreachable("no Java type for this sort");
}

/// Renders a condition as it appears inside a generated method: state names
/// become the first structure (sa) and return values the first-order locals
/// (r1a, r2a).
static std::string methodCondition(ExprRef Phi, const ConditionEntry &E,
                                   ExprFactory &F) {
  std::map<std::string, ExprRef> Subst;
  Subst["s1"] = F.var("sa", Sort::State);
  Subst["s2"] = F.var("sa", Sort::State);
  Subst["s3"] = F.var("sa", Sort::State);
  if (E.op1().RecordsReturn)
    Subst["r1"] = F.var("r1a", E.op1().ReturnSort);
  if (E.op2().RecordsReturn)
    Subst["r2"] = F.var("r2a", E.op2().ReturnSort);
  return printAbstract(F.substitute(Phi, Subst));
}

/// Renders "Object v1, Object v2" style parameter declarations for one
/// operation position.
static std::string paramDecls(const Operation &Op, int Position) {
  std::string Out;
  for (size_t I = 0; I != Op.ArgSorts.size(); ++I) {
    Out += ", ";
    Out += javaType(Op.ArgSorts[I]);
    Out += " " + Op.ArgBaseNames[I] + std::to_string(Position);
  }
  return Out;
}

/// Renders an invocation like "boolean r1a = sa.contains(v1);".
static std::string invocation(const Operation &Op, const char *StateName,
                              int Position, char OrderTag) {
  std::string Stmt = "  ";
  if (Op.HasReturn && Op.RecordsReturn) {
    Stmt += javaType(Op.ReturnSort);
    Stmt += std::string(" r") + std::to_string(Position) + OrderTag + " = ";
  }
  Stmt += std::string(StateName) + "." + Op.CallName + "(";
  for (size_t I = 0; I != Op.ArgBaseNames.size(); ++I) {
    if (I)
      Stmt += ", ";
    Stmt += Op.ArgBaseNames[I] + std::to_string(Position);
  }
  return Stmt + ");\n";
}

/// The abstract-state equality conjunction for a family.
static std::string abstractStateEq(const Family &Fam) {
  if (Fam.Kind == StateKind::Counter)
    return "sa..value = sb..value";
  return "sa..contents = sb..contents & sa..size = sb..size";
}

std::string semcomm::renderTestingMethod(const TestingMethod &M,
                                         const std::string &StructureName,
                                         ExprFactory &F) {
  const ConditionEntry &E = *M.Entry;
  const Operation &Op1 = E.op1();
  const Operation &Op2 = E.op2();
  bool Soundness = M.Role == MethodRole::Soundness;

  std::string Cond = methodCondition(E.get(M.Kind), E, F);
  std::string CondAssume = Soundness ? Cond : "~(" + Cond + ")";

  std::string S;
  S += "void " + M.name() + "(" + StructureName + " sa, " + StructureName +
       " sb" + paramDecls(Op1, 1) + paramDecls(Op2, 2) + ")\n";
  S += "  /*: requires \"sa ~= null & sb ~= null & sa ~= sb &\n";
  S += "                sa..init & sb..init &\n";
  S += "                " + abstractStateEq(M.family()) + "\"\n";
  S += "      modifies \"sa..contents\", \"sb..contents\", \"sa..size\", "
       "\"sb..size\"\n";
  S += "      ensures \"True\" */\n";
  S += "{\n";

  // First execution order on sa, with the (possibly negated) condition
  // assumed at the point matching its kind (Fig. 3-1 lines 7/10/13).
  if (M.Kind == ConditionKind::Before)
    S += "  /*: assume \"" + CondAssume + "\" */\n";
  S += invocation(Op1, "sa", 1, 'a');
  if (M.Kind == ConditionKind::Between)
    S += "  /*: assume \"" + CondAssume + "\" */\n";
  S += invocation(Op2, "sa", 2, 'a');
  if (M.Kind == ConditionKind::After)
    S += "  /*: assume \"" + CondAssume + "\" */\n";

  // Reverse execution order on sb.
  S += invocation(Op2, "sb", 2, 'b');
  S += invocation(Op1, "sb", 1, 'b');

  // Final assertion: agreement for soundness, disagreement for
  // completeness (Fig. 3-1 line 18).
  std::string Agree;
  if (Op1.RecordsReturn)
    Agree += "r1a = r1b & ";
  if (Op2.RecordsReturn)
    Agree += "r2a = r2b & ";
  Agree += abstractStateEq(M.family());
  S += "  /*: assert \"" + (Soundness ? Agree : "~(" + Agree + ")") +
       "\" */\n";
  S += "}\n";
  return S;
}

std::string semcomm::renderHashSetSpec() {
  return R"JAHOB(public class HashSet {
  /*: public ghost specvar init :: "bool" = "False"; */
  /*: public ghost specvar contents :: "obj set" = "{}"; */
  /*: public specvar size :: "int"; */
  private Node[] table;
  private int _size;

  public HashSet()
  /*: modifies "init", "contents", "size"
      ensures "init & contents = {} & size = 0" */ { }

  public boolean add(Object v)
  /*: requires "init & v ~= null"
      modifies "contents", "size"
      ensures "(v ~: old contents --> contents = old contents Un {v} &
                size = old size + 1 & result) &
               (v : old contents --> contents = old contents &
                size = old size & ~result)" */ { }

  public boolean contains(Object v)
  /*: requires "init & v ~= null"
      ensures "result = (v : contents)" */ { }

  public boolean remove(Object v)
  /*: requires "init & v ~= null"
      modifies "contents", "size"
      ensures "(v : old contents --> contents = old contents - {v} &
                size = old size - 1 & result) &
               (v ~: old contents --> contents = old contents &
                size = old size & ~result)" */ { }

  public int size()
  /*: requires "init"
      ensures "result = size" */ { }
}
)JAHOB";
}

/// Java bodies for the eight inverse programs of Table 5.10, keyed by
/// family name + operation name.
static std::string inverseBody(const InverseSpec &Spec) {
  const std::string Key = Spec.Fam->Name + "." + Spec.OpName;
  if (Key == "Accumulator.increase")
    return "  s.increase(v);\n  s.increase(-v);\n";
  if (Key == "Set.add")
    return "  boolean r = s.add(v);\n  if (r) { s.remove(v); }\n";
  if (Key == "Set.remove")
    return "  boolean r = s.remove(v);\n  if (r) { s.add(v); }\n";
  if (Key == "Map.put")
    return "  Object r = s.put(k, v);\n"
           "  if (r != null) { s.put(k, r); } else { s.remove(k); }\n";
  if (Key == "Map.remove")
    return "  Object r = s.remove(k);\n  if (r != null) { s.put(k, r); }\n";
  if (Key == "ArrayList.add_at")
    return "  s.add_at(i, v);\n  s.remove_at(i);\n";
  if (Key == "ArrayList.remove_at")
    return "  Object r = s.remove_at(i);\n  s.add_at(i, r);\n";
  if (Key == "ArrayList.set")
    return "  Object r = s.set(i, v);\n  s.set(i, r);\n";
  semcomm_unreachable("no Java body for this inverse");
}

std::string semcomm::renderInverseMethod(const InverseSpec &Spec,
                                         const std::string &StructureName) {
  const Operation &Op = Spec.Fam->op(Spec.OpName);
  std::string S;
  S += "void " + Op.CallName + "0(" + StructureName + " s" +
       paramDecls(Op, 0) + ")\n";
  // The paper renders formals without position suffixes; strip the "0".
  size_t Pos;
  while ((Pos = S.find("0,")) != std::string::npos && Pos > S.find('('))
    S.erase(Pos, 1);
  if ((Pos = S.rfind("0)")) != std::string::npos && Pos > S.find('('))
    S.erase(Pos, 1);
  S += "  /*: requires \"s ~= null & s..init\"\n";
  S += "      modifies \"s..contents\", \"s..size\"\n";
  S += "      ensures \"True\" */\n";
  S += "{\n";
  std::string Body = inverseBody(Spec);
  S += Body;
  S += "  /*: assert \"s..contents = s..(old contents) & "
       "s..size = s..(old size)\" */\n";
  S += "}\n";
  return S;
}

std::string semcomm::renderCompletenessTemplate() {
  return R"JAHOB(void method1_method2_(before|between|after)_c_id
    (sa_decl, sb_decl, argv1_decls, argv2_decls)
  /*: requires "sa ~= null & sb ~= null & sa ~= sb &
                sa_abstract_state = sb_abstract_state"
      modifies "sa_frame_condition", "sb_frame_condition"
      ensures "True" */
{
  [/*: assume "~(before_commutativity_condition)" */]
  /*: assume "method1_precondition" */
  r1a_type r1a = sa.method1(argv1);
  [/*: assume "~(between_commutativity_condition)" */]
  /*: assume "method2_precondition" */
  r2a_type r2a = sa.method2(argv2);
  [/*: assume "~(after_commutativity_condition)" */]
  /*: assume "method2_precondition" */
  r2b_type r2b = sb.method2(argv2);
  /*: assume "method1_precondition" */
  r1b_type r1b = sb.method1(argv1);
  /*: assert "~(r1a = r1b & r2a = r2b &
               sa_abstract_state = sb_abstract_state)" */
}
)JAHOB";
}

std::string semcomm::renderInverseTemplate() {
  return R"JAHOB(void method_id(s_decl, argv_decls)
  /*: requires "s ~= null & method_precondition"
      modifies "s_frame_condition"
      ensures "True" */
{
  r_type r = s.method(argv);
  execute_inverse_operation();
  /*: assert "s_abstract_state = s_initial_abstract_state" */
}
)JAHOB";
}
