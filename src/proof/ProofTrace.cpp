//===- proof/ProofTrace.cpp - DRAT-style solver proof log -------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "proof/ProofTrace.h"

#include <cstdlib>

using namespace semcomm;
using namespace semcomm::proof;

const char *proof::stepKindName(StepKind K) {
  switch (K) {
  case StepKind::Input:
    return "input";
  case StepKind::Derive:
    return "derive";
  case StepKind::Delete:
    return "delete";
  case StepKind::Recycle:
    return "recycle";
  case StepKind::Query:
    return "query";
  }
  return "?";
}

std::string ProofTrace::serialize() const {
  std::string Out = "p semcommute-proof " + std::to_string(Steps.size()) + "\n";
  for (const Step &S : Steps) {
    switch (S.Kind) {
    case StepKind::Input:
      Out += 'i';
      break;
    case StepKind::Derive:
      Out += 'l';
      break;
    case StepKind::Delete:
      Out += 'd';
      break;
    case StepKind::Recycle:
      Out += "r " + std::to_string(S.Var) + " 0\n";
      continue;
    case StepKind::Query:
      Out += "q " + std::to_string(S.LiveClauses);
      break;
    }
    for (int L : S.Lits)
      Out += ' ' + std::to_string(L);
    Out += " 0";
    if (S.Kind == StepKind::Query && !S.Tag.empty())
      Out += ' ' + S.Tag;
    Out += '\n';
  }
  return Out;
}

namespace {

/// Splits \p Line on single spaces (the only separator serialize() emits).
std::vector<std::string> tokens(const std::string &Line) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (Start <= Line.size()) {
    size_t Sp = Line.find(' ', Start);
    if (Sp == std::string::npos) {
      if (Start < Line.size())
        Out.push_back(Line.substr(Start));
      break;
    }
    if (Sp > Start)
      Out.push_back(Line.substr(Start, Sp - Start));
    Start = Sp + 1;
  }
  return Out;
}

bool parseInt(const std::string &Tok, long &Out) {
  char *End = nullptr;
  Out = std::strtol(Tok.c_str(), &End, 10);
  return End != Tok.c_str() && *End == '\0';
}

/// Parses `<lits> 0` starting at token \p From; returns false unless the
/// zero terminator is exactly at the end (Query tags are handled by the
/// caller before this runs).
bool parseLits(const std::vector<std::string> &Toks, size_t From, size_t To,
               std::vector<int> &Lits) {
  if (To <= From || To > Toks.size())
    return false;
  for (size_t I = From; I + 1 < To; ++I) {
    long V;
    if (!parseInt(Toks[I], V) || V == 0)
      return false;
    Lits.push_back(static_cast<int>(V));
  }
  return Toks[To - 1] == "0";
}

} // namespace

std::optional<ProofTrace> ProofTrace::parse(const std::string &Text) {
  ProofTrace T;
  size_t Pos = 0, LineNo = 0;
  long Declared = -1;
  while (Pos < Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    // Every serialized line ends in '\n'; a missing terminator means the
    // file was truncated mid-line.
    if (Nl == std::string::npos)
      return std::nullopt;
    std::string Line = Text.substr(Pos, Nl - Pos);
    Pos = Nl + 1;
    std::vector<std::string> Toks = tokens(Line);
    if (Toks.empty())
      return std::nullopt;
    if (LineNo++ == 0) {
      if (Toks.size() != 3 || Toks[0] != "p" || Toks[1] != "semcommute-proof" ||
          !parseInt(Toks[2], Declared) || Declared < 0)
        return std::nullopt;
      continue;
    }
    std::vector<int> Lits;
    if (Toks[0] == "i" || Toks[0] == "l" || Toks[0] == "d") {
      if (!parseLits(Toks, 1, Toks.size(), Lits))
        return std::nullopt;
      if (Toks[0] == "i")
        T.addInput(std::move(Lits));
      else if (Toks[0] == "l")
        T.addDerive(std::move(Lits));
      else
        T.addDelete(std::move(Lits));
    } else if (Toks[0] == "r") {
      long V;
      if (Toks.size() != 3 || !parseInt(Toks[1], V) || V < 1 ||
          Toks[2] != "0")
        return std::nullopt;
      T.Steps.push_back({StepKind::Recycle, {}, static_cast<int>(V), 0, {}});
    } else if (Toks[0] == "q") {
      long Live;
      if (Toks.size() < 3 || !parseInt(Toks[1], Live) || Live < 0)
        return std::nullopt;
      // Literals run from token 2 up to the "0" terminator; an optional
      // tag (which never contains spaces the solver side would split on —
      // it is a single token) follows.
      size_t Zero = 2;
      while (Zero < Toks.size() && Toks[Zero] != "0")
        ++Zero;
      if (Zero >= Toks.size() || Zero + 2 < Toks.size())
        return std::nullopt;
      if (!parseLits(Toks, 2, Zero + 1, Lits))
        return std::nullopt;
      std::string Tag = Zero + 1 < Toks.size() ? Toks[Zero + 1] : "";
      T.Steps.push_back({StepKind::Query, std::move(Lits), 0,
                         static_cast<uint64_t>(Live), std::move(Tag)});
      ++T.Queries;
    } else {
      return std::nullopt;
    }
  }
  if (Declared < 0 || static_cast<size_t>(Declared) != T.Steps.size())
    return std::nullopt;
  return T;
}
