//===- proof/ProofChecker.h - Independent RUP/DRAT checker ------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An independent reverse-unit-propagation checker for the proof traces a
/// certifying SatSolver emits (ProofTrace.h). It shares no code with the
/// solver: its own clause database, its own occurrence-list propagation,
/// its own root-level assignment. Replaying a trace front to back it
/// verifies
///
///  * every Derive step is RUP over the clauses live at that point (so the
///    solver's learned clauses — including the root-trail literals dumped
///    before a scope retirement detaches their reasons — are entailed),
///  * every Delete step names a clause the checker actually holds (a
///    deletion of an unknown clause is a certification failure),
///  * every Recycle step names a fully dead variable (no live clause, no
///    unit, no root assignment — the soundness condition of index reuse),
///  * every Query step's unsat core, asserted as assumptions over the live
///    database, propagates to a conflict, and the solver's live-clause
///    count matches the checker's (which catches a solver that drops a
///    clause without logging the deletion).
///
/// The root-level assignment is maintained as a *persistent* propagation
/// fixpoint — units and their consequences stay assigned across steps.
/// This is required for completeness: a query whose core only makes sense
/// together with root consequences of earlier inputs would otherwise miss
/// the conflict. Deletions may shrink that fixpoint, so deleting a clause
/// that could have forced an assignment marks the root state dirty and the
/// next Derive/Query/Recycle step rebuilds it from scratch.
///
/// The certificate semantics: a passing trace establishes, for each Query,
/// that (all Input clauses ever added) together with the query's core
/// literals propositionally entail false. Lifting that to the *live*
/// session formula rests on retired clauses being selector-guarded and
/// Tseitin definitions being conservative extensions — the static
/// discipline `semcommute-lint` audits; the two tools are complementary.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_PROOF_PROOFCHECKER_H
#define SEMCOMM_PROOF_PROOFCHECKER_H

#include "proof/ProofTrace.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace semcomm {
namespace proof {

/// Outcome of one Query step.
struct QueryResult {
  std::string Tag;
  bool Passed = false;
  std::string Error; ///< Empty when Passed.
};

/// Outcome of checking one full trace.
struct CheckResult {
  bool Ok = false;             ///< Every step checked out.
  size_t StepsChecked = 0;     ///< Steps processed before success/failure.
  size_t QueriesChecked = 0;
  size_t QueriesPassed = 0;
  size_t PeakClauses = 0;      ///< High-water mark of the checker database.
  std::string Error;           ///< First fatal error (empty when Ok).
  std::vector<QueryResult> Queries; ///< One row per Query step, in order.
};

/// Replays a ProofTrace against an independent clause database. A checker
/// instance is single-use: construct, check(), read the result.
class ProofChecker {
public:
  CheckResult check(const ProofTrace &Trace);

private:
  struct CClause {
    std::vector<int> Lits;
    bool Alive = true;
  };

  // -- database ----------------------------------------------------------
  std::vector<CClause> DB;
  /// Literal -> indices of clauses containing it (lazily cleaned).
  std::map<int, std::vector<size_t>> Occ;
  /// Sorted-literal key -> alive clause indices (Delete matching).
  std::map<std::vector<int>, std::vector<size_t>> ByKey;
  /// Explicit unit records per literal (input units, derived units, the
  /// pre-retirement trail dump). Deleting a unit decrements; at zero the
  /// literal loses its axiomatic support.
  std::map<int, int> UnitRef;
  size_t AliveClauses = 0; ///< Alive >= 2-literal clauses (mirror of the
                           ///< solver's stored-clause count).

  // -- persistent root state --------------------------------------------
  /// Var -> 0 unassigned / +1 true / -1 false, under root propagation.
  std::vector<int8_t> Val;
  std::vector<int> RootTrail;  ///< Literals assigned at root, in order.
  bool TopConflict = false;    ///< Root propagation reached a conflict.
  bool RootDirty = false;      ///< A deletion may have shrunk the fixpoint.
  bool HasEmptyInput = false;  ///< An empty Input clause was logged.

  int8_t valueOf(int Lit) const;
  void ensureVar(int Var);
  /// Assigns \p L onto RootTrail: 0 = newly assigned, 1 = already true,
  /// -1 = conflicts with the current assignment. Never propagates.
  int tryAssign(int L);
  /// Propagates RootTrail[From..] to fixpoint; true on conflict.
  bool propagateFrom(size_t From);
  void undoTo(size_t Mark);
  /// Rebuilds the persistent root fixpoint from the alive units and
  /// clauses (after a deletion invalidated it).
  void rebuildRoot();
  void flushRoot(); ///< rebuildRoot() iff RootDirty.

  /// RUP test: under the current root state, assume \p Assumptions (as
  /// given), propagate, and report whether a conflict was reached. The
  /// temporary assignments are undone before returning.
  bool propagatesToConflict(const std::vector<int> &Assumptions);

  /// Registers an explicit unit record and folds it into the root state.
  void addUnit(int L);
  void addClause(const std::vector<int> &Lits);
  /// Removes one clause matching \p Lits; empty return = ok, otherwise the
  /// error text.
  std::string removeClause(const std::vector<int> &Lits);
  bool varOccursAlive(int Var);
};

/// Aggregated certification outcome of one or more solver sessions (a
/// driver job may rotate several sessions; their results fold together).
struct CertifySummary {
  bool Checked = false; ///< At least one checker run happened.
  bool Ok = true;       ///< Every folded run passed.
  uint64_t Steps = 0;
  uint64_t Queries = 0;
  uint64_t QueriesPassed = 0;
  uint64_t PeakClauses = 0; ///< Max over the folded runs.
  std::string Error;        ///< First failing run's error.
  /// Tag -> passed, over every folded run (tags are unique per session;
  /// rotation epochs keep them unique across folds).
  std::map<std::string, bool> QueryOutcome;

  void fold(const CheckResult &R) {
    Checked = true;
    Ok = Ok && R.Ok;
    Steps += R.StepsChecked;
    Queries += R.QueriesChecked;
    QueriesPassed += R.QueriesPassed;
    PeakClauses = std::max(PeakClauses, static_cast<uint64_t>(R.PeakClauses));
    if (Error.empty() && !R.Error.empty())
      Error = R.Error;
    for (const QueryResult &Q : R.Queries)
      QueryOutcome[Q.Tag] = Q.Passed;
  }
  void fold(const CertifySummary &O) {
    if (!O.Checked)
      return;
    Checked = true;
    Ok = Ok && O.Ok;
    Steps += O.Steps;
    Queries += O.Queries;
    QueriesPassed += O.QueriesPassed;
    PeakClauses = std::max(PeakClauses, O.PeakClauses);
    if (Error.empty() && !O.Error.empty())
      Error = O.Error;
    for (const auto &KV : O.QueryOutcome)
      QueryOutcome[KV.first] = KV.second;
  }
  /// True when every tag of \p Tags was checked and passed.
  bool allPassed(const std::vector<std::string> &Tags) const {
    if (!Checked)
      return false;
    for (const std::string &T : Tags) {
      auto It = QueryOutcome.find(T);
      if (It == QueryOutcome.end() || !It->second)
        return false;
    }
    return true;
  }
};

} // namespace proof
} // namespace semcomm

#endif // SEMCOMM_PROOF_PROOFCHECKER_H
