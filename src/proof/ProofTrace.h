//===- proof/ProofTrace.h - DRAT-style solver proof log ---------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The proof trace a certifying SatSolver emits and the independent checker
/// (ProofChecker.h) consumes. The format is DRAT with two extensions that
/// make a *reusing* incremental solver checkable:
///
///  * Deletion records cover every clause the solver drops — clause-DB
///    reduction, scope retirement, and the unit clauses compacted off the
///    trail when a pinned definition variable is recycled — so the checker
///    can mirror the live clause count exactly. A deletion of a clause the
///    checker does not hold is a certification failure, and every Query
///    step carries the solver's live stored-clause count for the checker
///    to cross-check; together these make "solver forgot to log a drop"
///    detectable, not silently ignorable.
///  * Recycle records mark a variable index as returned to the free list.
///    The checker verifies the index is fully dead (no live clause, no
///    unit, no root assignment) before the solver may rebind it — the
///    invariant that makes variable recycling sound.
///
/// Query steps slice the single session-long trace into per-verdict
/// certificates: each carries a caller-chosen tag (the assumption-selector
/// path of the verification condition) plus the final unsat core, and the
/// checker validates that core against the clauses live *at that point in
/// the trace*. One warm catalog session therefore yields an individually
/// checkable certificate per condition.
///
/// Literals are signed DIMACS integers (+v / -v, variables 1-based in the
/// text form; the in-memory form keeps the solver's 0-based encoding).
/// Input clauses are logged exactly as the solver *stores* them — after
/// root-level normalization (tautology and satisfied-clause dropping,
/// false-literal stripping) — so Delete records match; the normalization
/// itself is part of the trust base, as the CNF stream is in standard DRAT
/// checking.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_PROOF_PROOFTRACE_H
#define SEMCOMM_PROOF_PROOFTRACE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace semcomm {
namespace proof {

/// One record in a proof trace.
enum class StepKind : uint8_t {
  Input,   ///< Original clause as stored (axiom; empty = input contradiction).
  Derive,  ///< Learned clause; must be RUP over the clauses live here.
  Delete,  ///< Clause dropped (reduceDb / retireScopes / unit compaction).
  Recycle, ///< Variable index returned to the free list; must be dead.
  Query,   ///< One Unsat verdict: tag + final core + live-clause count.
};

const char *stepKindName(StepKind K);

struct Step {
  StepKind Kind = StepKind::Input;
  /// Input/Derive/Delete: the clause. Query: the unsat-core literals (the
  /// assumption literals the refutation used; empty = the base alone is
  /// contradictory).
  std::vector<int> Lits;
  /// Recycle: the recycled variable as a positive (1-based) DIMACS index,
  /// matching the literal encoding in Lits.
  int Var = 0;
  /// Query: the solver's stored (>= 2-literal) clause count at query time.
  uint64_t LiveClauses = 0;
  /// Query: the caller's slicing tag (selector path of the verdict).
  std::string Tag;
};

/// An append-only proof log. The emitting solver owns the order; the
/// checker replays it front to back.
class ProofTrace {
public:
  /// Sets the tag stamped onto subsequent Query steps. Spaces are folded
  /// to '_' so a tag is always one token of the text form.
  void setTag(std::string T) {
    for (char &C : T)
      if (C == ' ')
        C = '_';
    CurrentTag = std::move(T);
  }
  const std::string &tag() const { return CurrentTag; }

  void addInput(std::vector<int> Lits) {
    Steps.push_back({StepKind::Input, std::move(Lits), 0, 0, {}});
  }
  void addDerive(std::vector<int> Lits) {
    Steps.push_back({StepKind::Derive, std::move(Lits), 0, 0, {}});
  }
  void addDelete(std::vector<int> Lits) {
    Steps.push_back({StepKind::Delete, std::move(Lits), 0, 0, {}});
  }
  void addRecycle(int Var) {
    Steps.push_back({StepKind::Recycle, {}, Var, 0, {}});
  }
  void addQuery(std::vector<int> CoreLits, uint64_t LiveClauses) {
    Steps.push_back(
        {StepKind::Query, std::move(CoreLits), 0, LiveClauses, CurrentTag});
    ++Queries;
  }

  const std::vector<Step> &steps() const { return Steps; }
  size_t size() const { return Steps.size(); }
  size_t numQueries() const { return Queries; }

  /// Mutable access for the rejection tests (corrupt / truncate / permute /
  /// drop-a-deletion); the solver itself only appends.
  std::vector<Step> &mutableSteps() { return Steps; }

  /// Text form: a `p semcommute-proof <steps>` header, then one line per
  /// step (`i`/`l`/`d` + literals + 0; `r <var> 0`; `q <live> <lits> 0
  /// <tag>`). The header's step count makes line-boundary truncation a
  /// parse error, not a silently shorter proof.
  std::string serialize() const;
  static std::optional<ProofTrace> parse(const std::string &Text);

private:
  std::vector<Step> Steps;
  std::string CurrentTag;
  size_t Queries = 0;
};

} // namespace proof
} // namespace semcomm

#endif // SEMCOMM_PROOF_PROOFTRACE_H
