//===- proof/ProofChecker.cpp - Independent RUP/DRAT checker ----------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "proof/ProofChecker.h"

#include <cstdlib>

using namespace semcomm;
using namespace semcomm::proof;

int8_t ProofChecker::valueOf(int L) const {
  int V = std::abs(L);
  if (static_cast<size_t>(V) >= Val.size())
    return 0;
  int8_t A = Val[V];
  return L > 0 ? A : static_cast<int8_t>(-A);
}

void ProofChecker::ensureVar(int Var) {
  if (static_cast<size_t>(Var) >= Val.size())
    Val.resize(Var + 1, 0);
}

int ProofChecker::tryAssign(int L) {
  int8_t V = valueOf(L);
  if (V > 0)
    return 1;
  if (V < 0)
    return -1;
  int Var = std::abs(L);
  ensureVar(Var);
  Val[Var] = L > 0 ? 1 : -1;
  RootTrail.push_back(L);
  return 0;
}

bool ProofChecker::propagateFrom(size_t From) {
  for (size_t Head = From; Head < RootTrail.size(); ++Head) {
    int L = RootTrail[Head];
    auto It = Occ.find(-L);
    if (It == Occ.end())
      continue;
    for (size_t CI : It->second) {
      if (!DB[CI].Alive)
        continue;
      int Unassigned = 0, UnitLit = 0;
      bool Satisfied = false;
      for (int CL : DB[CI].Lits) {
        int8_t V = valueOf(CL);
        if (V > 0) {
          Satisfied = true;
          break;
        }
        if (V == 0) {
          UnitLit = CL;
          if (++Unassigned > 1)
            break;
        }
      }
      if (Satisfied || Unassigned > 1)
        continue;
      if (Unassigned == 0)
        return true;
      if (tryAssign(UnitLit) < 0)
        return true;
    }
  }
  return false;
}

void ProofChecker::undoTo(size_t Mark) {
  while (RootTrail.size() > Mark) {
    Val[std::abs(RootTrail.back())] = 0;
    RootTrail.pop_back();
  }
}

void ProofChecker::rebuildRoot() {
  std::fill(Val.begin(), Val.end(), static_cast<int8_t>(0));
  RootTrail.clear();
  TopConflict = HasEmptyInput;
  for (const auto &KV : UnitRef) {
    if (KV.second <= 0)
      continue;
    if (tryAssign(KV.first) < 0) {
      TopConflict = true;
      break;
    }
  }
  if (!TopConflict && propagateFrom(0))
    TopConflict = true;
  RootDirty = false;
}

void ProofChecker::flushRoot() {
  if (RootDirty)
    rebuildRoot();
}

bool ProofChecker::propagatesToConflict(const std::vector<int> &Assumptions) {
  if (TopConflict)
    return true;
  size_t Mark = RootTrail.size();
  bool Conflict = false;
  for (int A : Assumptions) {
    if (tryAssign(A) < 0) {
      Conflict = true;
      break;
    }
  }
  if (!Conflict)
    Conflict = propagateFrom(Mark);
  undoTo(Mark);
  return Conflict;
}

void ProofChecker::addUnit(int L) {
  ++UnitRef[L];
  if (TopConflict)
    return;
  size_t Mark = RootTrail.size();
  int R = tryAssign(L);
  if (R < 0 || (R == 0 && propagateFrom(Mark)))
    TopConflict = true;
}

void ProofChecker::addClause(const std::vector<int> &Lits) {
  size_t CI = DB.size();
  DB.push_back({Lits, true});
  ++AliveClauses;
  for (int L : Lits)
    Occ[L].push_back(CI);
  std::vector<int> Key = Lits;
  std::sort(Key.begin(), Key.end());
  ByKey[std::move(Key)].push_back(CI);
  if (TopConflict)
    return;
  // Fold the clause into the persistent root fixpoint.
  int Unassigned = 0, UnitLit = 0;
  bool Satisfied = false;
  for (int L : Lits) {
    int8_t V = valueOf(L);
    if (V > 0) {
      Satisfied = true;
      break;
    }
    if (V == 0) {
      UnitLit = L;
      if (++Unassigned > 1)
        break;
    }
  }
  if (Satisfied || Unassigned > 1)
    return;
  if (Unassigned == 0) {
    TopConflict = true;
    return;
  }
  size_t Mark = RootTrail.size();
  if (tryAssign(UnitLit) < 0 || propagateFrom(Mark))
    TopConflict = true;
}

std::string ProofChecker::removeClause(const std::vector<int> &Lits) {
  std::vector<int> Key = Lits;
  std::sort(Key.begin(), Key.end());
  auto It = ByKey.find(Key);
  if (It == ByKey.end() || It->second.empty())
    return "deletion of a clause the checker does not hold";
  size_t CI = It->second.back();
  It->second.pop_back();
  if (It->second.empty())
    ByKey.erase(It);
  DB[CI].Alive = false;
  --AliveClauses;
  // The persistent fixpoint only shrinks if this clause could have forced
  // an assignment: under the current (clean) root state that requires all
  // but at most one of its literals false. With the state already dirty or
  // conflicting, stay conservative.
  if (RootDirty || TopConflict) {
    RootDirty = true;
    return "";
  }
  size_t FalseCount = 0;
  for (int L : Lits)
    if (valueOf(L) < 0)
      ++FalseCount;
  if (FalseCount + 1 >= Lits.size())
    RootDirty = true;
  return "";
}

bool ProofChecker::varOccursAlive(int Var) {
  for (int L : {Var, -Var}) {
    auto It = Occ.find(L);
    if (It == Occ.end())
      continue;
    auto &List = It->second;
    size_t Keep = 0;
    bool Found = false;
    for (size_t CI : List) {
      if (!DB[CI].Alive)
        continue;
      List[Keep++] = CI;
      Found = true;
    }
    List.resize(Keep);
    if (Found)
      return true;
  }
  return false;
}

CheckResult ProofChecker::check(const ProofTrace &Trace) {
  CheckResult R;
  auto Fatal = [&](size_t StepIdx, StepKind K, const std::string &Msg) {
    R.Error = "step " + std::to_string(StepIdx) + " (" +
              std::string(stepKindName(K)) + "): " + Msg;
    R.Ok = false;
    return R;
  };

  bool QueriesOk = true;
  const std::vector<Step> &Steps = Trace.steps();
  for (size_t I = 0; I < Steps.size(); ++I) {
    const Step &S = Steps[I];
    ++R.StepsChecked;
    switch (S.Kind) {
    case StepKind::Input: {
      if (S.Lits.empty()) {
        HasEmptyInput = true;
        TopConflict = true;
      } else if (S.Lits.size() == 1) {
        addUnit(S.Lits[0]);
      } else {
        addClause(S.Lits);
        R.PeakClauses = std::max(R.PeakClauses, AliveClauses);
      }
      break;
    }
    case StepKind::Derive: {
      flushRoot();
      if (S.Lits.empty()) {
        if (!TopConflict)
          return Fatal(I, S.Kind, "empty derived clause without a root "
                                  "conflict");
        break;
      }
      std::vector<int> Negated;
      Negated.reserve(S.Lits.size());
      for (int L : S.Lits)
        Negated.push_back(-L);
      if (!propagatesToConflict(Negated))
        return Fatal(I, S.Kind, "derived clause is not RUP over the live "
                                "database");
      if (S.Lits.size() == 1) {
        addUnit(S.Lits[0]);
      } else {
        addClause(S.Lits);
        R.PeakClauses = std::max(R.PeakClauses, AliveClauses);
      }
      break;
    }
    case StepKind::Delete: {
      if (S.Lits.empty())
        return Fatal(I, S.Kind, "malformed empty deletion");
      if (S.Lits.size() == 1) {
        auto It = UnitRef.find(S.Lits[0]);
        if (It == UnitRef.end() || It->second <= 0)
          return Fatal(I, S.Kind, "deletion of a unit the checker does not "
                                  "hold");
        if (--It->second == 0) {
          UnitRef.erase(It);
          RootDirty = true;
        }
      } else {
        std::string Err = removeClause(S.Lits);
        if (!Err.empty())
          return Fatal(I, S.Kind, Err);
      }
      break;
    }
    case StepKind::Recycle: {
      flushRoot();
      if (varOccursAlive(S.Var))
        return Fatal(I, S.Kind, "recycled variable " + std::to_string(S.Var) +
                                    " still occurs in a live clause");
      if (UnitRef.count(S.Var) || UnitRef.count(-S.Var))
        return Fatal(I, S.Kind, "recycled variable " + std::to_string(S.Var) +
                                    " is still pinned by a unit");
      if (valueOf(S.Var) != 0)
        return Fatal(I, S.Kind, "recycled variable " + std::to_string(S.Var) +
                                    " is still assigned at root");
      break;
    }
    case StepKind::Query: {
      flushRoot();
      ++R.QueriesChecked;
      QueryResult Q;
      Q.Tag = S.Tag;
      if (S.LiveClauses != AliveClauses) {
        // A live-count mismatch means the solver dropped or added a clause
        // without logging it; nothing after this point is trustworthy.
        Q.Error = "live-clause mismatch: solver reports " +
                  std::to_string(S.LiveClauses) + ", checker holds " +
                  std::to_string(AliveClauses);
        R.Queries.push_back(std::move(Q));
        return Fatal(I, S.Kind, R.Queries.back().Error);
      }
      if (TopConflict) {
        Q.Passed = true;
      } else if (S.Lits.empty()) {
        Q.Error = "empty core but the live database is not root-conflicting";
      } else {
        Q.Passed = propagatesToConflict(S.Lits);
        if (!Q.Passed)
          Q.Error = "core does not propagate to a conflict";
      }
      if (Q.Passed) {
        ++R.QueriesPassed;
      } else {
        // Not fatal: the failure is attributed to this tag alone (Q.Error)
        // and checking continues, so sibling queries still certify.
        // R.Error stays reserved for trace-wide trust failures.
        QueriesOk = false;
      }
      R.Queries.push_back(std::move(Q));
      break;
    }
    }
  }
  R.Ok = QueriesOk && R.Error.empty();
  return R;
}
