//===- refine/RefinementChecker.h - Impl-vs-spec simulation -----*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper builds on fully verified implementations (Zee et al., PLDI'08):
/// every structure provably implements its abstract specification, which is
/// what licenses reasoning about commutativity at the abstract level. As
/// our offline substitute (DESIGN.md §2), this module checks the forward
/// simulation bounded-exhaustively and by long randomized walks:
///
///   for every reachable concrete state c and operation op(args):
///     repOk(c), and
///     a(c.op(args)) == spec(op)(a(c)), with equal return values.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_REFINE_REFINEMENTCHECKER_H
#define SEMCOMM_REFINE_REFINEMENTCHECKER_H

#include "impl/ConcreteStructure.h"

#include <cstdint>
#include <string>

namespace semcomm {

/// Outcome of a refinement check.
struct RefinementResult {
  bool Ok = false;
  uint64_t StepsChecked = 0;
  std::string FailureNote; ///< Empty when Ok.
};

/// Exhaustive forward-simulation check over all operation sequences of
/// length <= \p Depth with arguments drawn from \p Bounds.
RefinementResult checkRefinementExhaustive(const StructureFactory &Factory,
                                           int Depth,
                                           const Scope &Bounds = Scope());

/// Randomized forward-simulation check: \p Walks random operation sequences
/// of length \p Length each (deterministic in \p Seed).
RefinementResult checkRefinementRandomized(const StructureFactory &Factory,
                                           int Walks, int Length,
                                           uint64_t Seed = 1,
                                           const Scope &Bounds = Scope());

} // namespace semcomm

#endif // SEMCOMM_REFINE_REFINEMENTCHECKER_H
