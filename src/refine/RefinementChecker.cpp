//===- refine/RefinementChecker.cpp - Impl-vs-spec simulation --------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "refine/RefinementChecker.h"

#include <random>

using namespace semcomm;

namespace {

/// Shared single-step checker: applies one operation to both the concrete
/// structure and its abstract shadow, comparing results.
class StepChecker {
public:
  explicit StepChecker(RefinementResult &Result) : Result(Result) {}

  /// Returns false (and records the failure) if the step breaks the
  /// simulation; the operation must satisfy its precondition.
  bool step(ConcreteStructure &C, AbstractState &Shadow, const Operation &Op,
            const ArgList &Args) {
    ++Result.StepsChecked;
    Value ConcreteRet = C.invoke(Op.CallName, Args);
    Value SpecRet = Op.Apply(Shadow, Args);

    if (!C.repOk()) {
      fail(C, Op, Args, "representation invariant violated");
      return false;
    }
    if (Op.HasReturn && ConcreteRet != SpecRet) {
      fail(C, Op, Args,
           "return value " + ConcreteRet.str() + " differs from spec's " +
               SpecRet.str());
      return false;
    }
    if (!(C.abstraction() == Shadow)) {
      fail(C, Op, Args,
           "abstraction " + C.abstraction().str() +
               " differs from spec state " + Shadow.str());
      return false;
    }
    return true;
  }

private:
  void fail(ConcreteStructure &C, const Operation &Op, const ArgList &Args,
            const std::string &Why) {
    std::string ArgText;
    for (const Value &V : Args)
      ArgText += (ArgText.empty() ? "" : ", ") + V.str();
    Result.Ok = false;
    Result.FailureNote =
        C.name() + "." + Op.CallName + "(" + ArgText + "): " + Why;
  }

  RefinementResult &Result;
};

} // namespace

RefinementResult
semcomm::checkRefinementExhaustive(const StructureFactory &Factory, int Depth,
                                   const Scope &Bounds) {
  RefinementResult Result;
  Result.Ok = true;
  const Family &Fam = *Factory.Fam;
  StepChecker Checker(Result);

  // Depth-first over operation sequences; concrete states are cloned at
  // each branch so sibling branches see independent histories.
  struct Frame {
    std::unique_ptr<ConcreteStructure> C;
    AbstractState Shadow;
    int Remaining;
  };
  std::vector<Frame> Stack;
  Stack.push_back({Factory.Make(), Fam.emptyState(), Depth});

  while (!Stack.empty()) {
    Frame Current = std::move(Stack.back());
    Stack.pop_back();
    if (Current.Remaining == 0)
      continue;
    for (const Operation &Op : Fam.Ops) {
      if (!Op.RecordsReturn && Op.HasReturn)
        continue; // The discarded variants execute identical code.
      for (const ArgList &Args :
           enumerateArgs(Fam, Op, Current.Shadow, Bounds)) {
        if (!Op.Pre(Current.Shadow, Args))
          continue;
        Frame Next{Current.C->clone(), Current.Shadow,
                   Current.Remaining - 1};
        if (!Checker.step(*Next.C, Next.Shadow, Op, Args))
          return Result;
        if (Op.Mutates)
          Stack.push_back(std::move(Next));
        // Pure operations cannot change the state; re-exploring from them
        // would only duplicate work.
      }
    }
  }
  return Result;
}

RefinementResult
semcomm::checkRefinementRandomized(const StructureFactory &Factory, int Walks,
                                   int Length, uint64_t Seed,
                                   const Scope &Bounds) {
  RefinementResult Result;
  Result.Ok = true;
  const Family &Fam = *Factory.Fam;
  StepChecker Checker(Result);
  std::mt19937_64 Rng(Seed);

  for (int W = 0; W < Walks; ++W) {
    std::unique_ptr<ConcreteStructure> C = Factory.Make();
    AbstractState Shadow = Fam.emptyState();
    for (int Step = 0; Step < Length; ++Step) {
      const Operation &Op = Fam.Ops[Rng() % Fam.Ops.size()];
      std::vector<ArgList> Candidates =
          enumerateArgs(Fam, Op, Shadow, Bounds);
      if (Candidates.empty())
        continue;
      const ArgList &Args = Candidates[Rng() % Candidates.size()];
      if (!Op.Pre(Shadow, Args))
        continue;
      if (!Checker.step(*C, Shadow, Op, Args))
        return Result;
    }
  }
  return Result;
}
