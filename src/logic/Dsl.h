//===- logic/Dsl.h - Vocabulary for writing conditions ----------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vocab bundles the standard variables of the paper's condition language —
/// arguments v1/v2/k1/k2/i1/i2, return values r1/r2, and the three abstract
/// states s1 (initial), s2 (between), s3 (final) — plus shorthand builders,
/// so the 765-entry catalog reads close to the paper's tables.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_LOGIC_DSL_H
#define SEMCOMM_LOGIC_DSL_H

#include "logic/ExprFactory.h"

namespace semcomm {

/// The standard condition-writing vocabulary over a factory.
struct Vocab {
  explicit Vocab(ExprFactory &F)
      : F(F), S1(F.var("s1", Sort::State)), S2(F.var("s2", Sort::State)),
        S3(F.var("s3", Sort::State)), V1(F.var("v1", Sort::Obj)),
        V2(F.var("v2", Sort::Obj)), K1(F.var("k1", Sort::Obj)),
        K2(F.var("k2", Sort::Obj)), I1(F.var("i1", Sort::Int)),
        I2(F.var("i2", Sort::Int)), N1(F.var("v1", Sort::Int)),
        N2(F.var("v2", Sort::Int)), R1B(F.var("r1", Sort::Bool)),
        R2B(F.var("r2", Sort::Bool)), R1O(F.var("r1", Sort::Obj)),
        R2O(F.var("r2", Sort::Obj)), R1I(F.var("r1", Sort::Int)),
        R2I(F.var("r2", Sort::Int)) {}

  ExprFactory &F;

  // States: initial / between (after the first operation) / final.
  ExprRef S1, S2, S3;
  // Object-sorted arguments (set elements, map values) and keys.
  ExprRef V1, V2, K1, K2;
  // Integer arguments (ArrayList indices).
  ExprRef I1, I2;
  // Integer-sorted v1/v2 (Accumulator increments).
  ExprRef N1, N2;
  // Return values at each sort.
  ExprRef R1B, R2B, R1O, R2O, R1I, R2I;

  // -- Shorthand builders ---------------------------------------------------

  ExprRef c(int64_t N) const { return F.intConst(N); }
  ExprRef null() const { return F.nullConst(); }
  ExprRef tru() const { return F.trueExpr(); }
  ExprRef fls() const { return F.falseExpr(); }

  /// v in s / v ~in s.
  ExprRef in(ExprRef V, ExprRef S) const { return F.setContains(S, V); }
  ExprRef notIn(ExprRef V, ExprRef S) const { return F.lnot(in(V, S)); }

  /// (k, v) in s — the map binds k to v.
  ExprRef maps(ExprRef S, ExprRef K, ExprRef V) const {
    return F.eq(F.mapGet(S, K), V);
  }
  /// (k, _) in s / (k, _) ~in s.
  ExprRef hasKey(ExprRef S, ExprRef K) const { return F.mapHasKey(S, K); }
  ExprRef noKey(ExprRef S, ExprRef K) const { return F.lnot(hasKey(S, K)); }

  /// s[i], |s|, idx(s, v), lidx(s, v).
  ExprRef at(ExprRef S, ExprRef I) const { return F.seqAt(S, I); }
  ExprRef len(ExprRef S) const { return F.seqLen(S); }
  ExprRef idx(ExprRef S, ExprRef V) const { return F.seqIndexOf(S, V); }
  ExprRef lidx(ExprRef S, ExprRef V) const {
    return F.seqLastIndexOf(S, V);
  }

  ExprRef eq(ExprRef A, ExprRef B) const { return F.eq(A, B); }
  ExprRef ne(ExprRef A, ExprRef B) const { return F.ne(A, B); }
  ExprRef lt(ExprRef A, ExprRef B) const { return F.lt(A, B); }
  ExprRef le(ExprRef A, ExprRef B) const { return F.le(A, B); }
  ExprRef gt(ExprRef A, ExprRef B) const { return F.gt(A, B); }
  ExprRef ge(ExprRef A, ExprRef B) const { return F.ge(A, B); }
  ExprRef add(ExprRef A, ExprRef B) const { return F.add(A, B); }
  ExprRef sub(ExprRef A, ExprRef B) const { return F.sub(A, B); }

  ExprRef lnot(ExprRef A) const { return F.lnot(A); }
  ExprRef conj(std::vector<ExprRef> Ops) const {
    return F.conj(std::move(Ops));
  }
  ExprRef disj(std::vector<ExprRef> Ops) const {
    return F.disj(std::move(Ops));
  }
};

} // namespace semcomm

#endif // SEMCOMM_LOGIC_DSL_H
