//===- logic/Printer.h - Two-dialect condition printing ---------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders expressions in the two dialects of the paper's condition tables
/// (Tables 5.1-5.7):
///
///  * Abstract: the third column — math over abstract states, e.g.
///    `v1 ~= v2 | v1 in s1`, `(k1, v2) in s1`, `|s2| - 1`, `s2[i2] = v2`.
///  * Concrete: the fourth column — queries invocable on the running data
///    structure, e.g. `v1 != v2 || s1.contains(v1)`, `s1.get(k1) == v2`,
///    `s2.size() - 1`, `s2.get(i2) == v2`.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_LOGIC_PRINTER_H
#define SEMCOMM_LOGIC_PRINTER_H

#include "logic/Expr.h"

#include <string>

namespace semcomm {

/// Which table column to render.
enum class PrintDialect { Abstract, Concrete };

/// Renders \p E with minimal parentheses in dialect \p D.
std::string printExpr(ExprRef E, PrintDialect D);

/// Shorthand for the abstract (third-column) rendering.
inline std::string printAbstract(ExprRef E) {
  return printExpr(E, PrintDialect::Abstract);
}

/// Shorthand for the concrete (fourth-column) rendering.
inline std::string printConcrete(ExprRef E) {
  return printExpr(E, PrintDialect::Concrete);
}

} // namespace semcomm

#endif // SEMCOMM_LOGIC_PRINTER_H
