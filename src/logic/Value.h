//===- logic/Value.h - Runtime values of the specification logic -*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Value is the scalar domain shared by the specification logic, the abstract
/// data structure states, and the concrete implementations: Java-style object
/// identities, null, mathematical integers, booleans, and a distinguished
/// Undef used to totalize partial queries (e.g. out-of-range sequence reads).
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_LOGIC_VALUE_H
#define SEMCOMM_LOGIC_VALUE_H

#include <cstdint>
#include <functional>
#include <string>

namespace semcomm {

/// A scalar runtime value. Obj values model Java object references by
/// identity; two Obj values are equal iff their identities are equal.
/// Undef never compares equal to anything, including itself, mirroring the
/// convention that a mis-guarded partial query falsifies the enclosing atom.
class Value {
public:
  enum class KindType : uint8_t { Null, Bool, Int, Obj, Undef };

  /// Default-constructs the null reference.
  Value() : Kind(KindType::Null), Payload(0) {}

  static Value null() { return Value(); }
  static Value boolean(bool B) { return Value(KindType::Bool, B ? 1 : 0); }
  static Value integer(int64_t N) { return Value(KindType::Int, N); }
  static Value obj(int64_t Id) { return Value(KindType::Obj, Id); }
  static Value undef() { return Value(KindType::Undef, 0); }

  KindType kind() const { return Kind; }
  bool isNull() const { return Kind == KindType::Null; }
  bool isBool() const { return Kind == KindType::Bool; }
  bool isInt() const { return Kind == KindType::Int; }
  bool isObj() const { return Kind == KindType::Obj; }
  bool isUndef() const { return Kind == KindType::Undef; }

  /// The boolean payload; only valid for Bool values.
  bool asBool() const;
  /// The integer payload; only valid for Int values.
  int64_t asInt() const;
  /// The object identity; only valid for Obj values.
  int64_t objId() const;

  /// Semantic equality as used by the logic's `=` atom: Undef is equal to
  /// nothing (not even itself).
  bool semanticEquals(const Value &Other) const {
    if (Kind == KindType::Undef || Other.Kind == KindType::Undef)
      return false;
    return Kind == Other.Kind && Payload == Other.Payload;
  }

  /// Structural equality (Undef == Undef holds); used by containers.
  friend bool operator==(const Value &A, const Value &B) {
    return A.Kind == B.Kind && A.Payload == B.Payload;
  }
  friend bool operator!=(const Value &A, const Value &B) { return !(A == B); }

  /// Arbitrary-but-total order for use as container keys.
  friend bool operator<(const Value &A, const Value &B) {
    if (A.Kind != B.Kind)
      return static_cast<int>(A.Kind) < static_cast<int>(B.Kind);
    return A.Payload < B.Payload;
  }

  /// Renders the value for diagnostics: null, true, 42, o3, undef.
  std::string str() const;

  /// A hash consistent with operator==.
  size_t hashCode() const {
    return std::hash<int64_t>()(Payload) * 31u + static_cast<size_t>(Kind);
  }

private:
  Value(KindType K, int64_t P) : Kind(K), Payload(P) {}

  KindType Kind;
  int64_t Payload;
};

} // namespace semcomm

template <> struct std::hash<semcomm::Value> {
  size_t operator()(const semcomm::Value &V) const { return V.hashCode(); }
};

#endif // SEMCOMM_LOGIC_VALUE_H
