//===- logic/Simplifier.cpp - Boolean simplification & queries ------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "logic/Simplifier.h"

#include <algorithm>

using namespace semcomm;

static ExprRef simplifyNary(ExprFactory &F, ExprRef E, bool IsAnd) {
  std::vector<ExprRef> Ops;
  for (ExprRef Op : E->operands())
    Ops.push_back(simplify(F, Op));

  // Deduplicate while preserving order (hash-consing makes this pointer
  // comparison sound).
  std::vector<ExprRef> Unique;
  for (ExprRef Op : Ops)
    if (std::find(Unique.begin(), Unique.end(), Op) == Unique.end())
      Unique.push_back(Op);

  // Complement law: X and ~X together collapse the whole connective.
  for (ExprRef Op : Unique) {
    ExprRef Complement = F.lnot(Op);
    if (std::find(Unique.begin(), Unique.end(), Complement) != Unique.end())
      return IsAnd ? F.falseExpr() : F.trueExpr();
  }

  return IsAnd ? F.conj(std::move(Unique)) : F.disj(std::move(Unique));
}

ExprRef semcomm::simplify(ExprFactory &F, ExprRef E) {
  switch (E->kind()) {
  case ExprKind::And:
    return simplifyNary(F, E, /*IsAnd=*/true);
  case ExprKind::Or:
    return simplifyNary(F, E, /*IsAnd=*/false);
  case ExprKind::Not:
    return F.lnot(simplify(F, E->operand(0)));
  case ExprKind::Implies:
    return F.implies(simplify(F, E->operand(0)), simplify(F, E->operand(1)));
  case ExprKind::Iff:
    return F.iff(simplify(F, E->operand(0)), simplify(F, E->operand(1)));
  case ExprKind::Ite:
    return F.ite(simplify(F, E->operand(0)), simplify(F, E->operand(1)),
                 simplify(F, E->operand(2)));
  default:
    // Terms and atoms are already folded by the factory's smart
    // constructors.
    return E;
  }
}

std::vector<ExprRef> semcomm::collectDisjuncts(ExprRef E) {
  if (E->kind() == ExprKind::Or)
    return E->operands();
  return {E};
}

void semcomm::collectFreeVars(ExprRef E, std::set<std::string> &Out) {
  if (E->kind() == ExprKind::Var) {
    if (E->sort() != Sort::State)
      Out.insert(E->name());
    return;
  }
  if (E->kind() == ExprKind::Forall || E->kind() == ExprKind::Exists) {
    collectFreeVars(E->operand(0), Out);
    collectFreeVars(E->operand(1), Out);
    std::set<std::string> Body;
    collectFreeVars(E->operand(2), Body);
    Body.erase(E->name());
    Out.insert(Body.begin(), Body.end());
    return;
  }
  for (ExprRef Op : E->operands())
    collectFreeVars(Op, Out);
}

void semcomm::collectStateNames(ExprRef E, std::set<std::string> &Out) {
  if (E->kind() == ExprKind::Var && E->sort() == Sort::State) {
    Out.insert(E->name());
    return;
  }
  for (ExprRef Op : E->operands())
    collectStateNames(Op, Out);
}

ExprRef semcomm::dropS1Disjuncts(ExprFactory &F, ExprRef Between) {
  std::vector<ExprRef> Kept;
  for (ExprRef Clause : collectDisjuncts(Between)) {
    std::set<std::string> States;
    collectStateNames(Clause, States);
    if (!States.count("s1"))
      Kept.push_back(Clause);
  }
  return F.disj(std::move(Kept)); // Empty disjunction folds to false.
}
