//===- logic/Evaluator.cpp - Expression evaluation ------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "logic/Evaluator.h"

#include "support/Unreachable.h"

#include <cassert>
#include <cstdio>

using namespace semcomm;

const Value &Env::lookup(const std::string &Name) const {
  auto It = Vars.find(Name);
  if (It == Vars.end()) {
    std::fprintf(stderr, "evaluator: unbound variable '%s'\n", Name.c_str());
    std::abort();
  }
  return It->second;
}

const StateView *Env::lookupState(const std::string &Name) const {
  auto It = States.find(Name);
  if (It == States.end()) {
    std::fprintf(stderr, "evaluator: unbound state '%s'\n", Name.c_str());
    std::abort();
  }
  return It->second;
}

static const StateView *stateOperand(ExprRef E, const Env &Environment) {
  ExprRef S = E->operand(0);
  assert(S->kind() == ExprKind::Var && S->sort() == Sort::State &&
         "state queries must name a state variable");
  return Environment.lookupState(S->name());
}

namespace semcomm {

Value evaluate(ExprRef E, const Env &Environment) {
  switch (E->kind()) {
  case ExprKind::ConstBool:
    return Value::boolean(E->boolValue());
  case ExprKind::ConstInt:
    return Value::integer(E->intValue());
  case ExprKind::ConstNull:
    return Value::null();
  case ExprKind::Var:
    assert(E->sort() != Sort::State &&
           "state variables are only valid inside state queries");
    return Environment.lookup(E->name());

  case ExprKind::Add:
    return Value::integer(evaluate(E->operand(0), Environment).asInt() +
                          evaluate(E->operand(1), Environment).asInt());
  case ExprKind::Sub:
    return Value::integer(evaluate(E->operand(0), Environment).asInt() -
                          evaluate(E->operand(1), Environment).asInt());
  case ExprKind::Neg:
    return Value::integer(-evaluate(E->operand(0), Environment).asInt());

  case ExprKind::Eq:
    return Value::boolean(
        evaluate(E->operand(0), Environment)
            .semanticEquals(evaluate(E->operand(1), Environment)));
  case ExprKind::Lt:
    return Value::boolean(evaluate(E->operand(0), Environment).asInt() <
                          evaluate(E->operand(1), Environment).asInt());
  case ExprKind::Le:
    return Value::boolean(evaluate(E->operand(0), Environment).asInt() <=
                          evaluate(E->operand(1), Environment).asInt());

  case ExprKind::Not:
    return Value::boolean(!evaluateBool(E->operand(0), Environment));
  case ExprKind::And:
    for (ExprRef Op : E->operands())
      if (!evaluateBool(Op, Environment))
        return Value::boolean(false);
    return Value::boolean(true);
  case ExprKind::Or:
    for (ExprRef Op : E->operands())
      if (evaluateBool(Op, Environment))
        return Value::boolean(true);
    return Value::boolean(false);
  case ExprKind::Implies:
    if (!evaluateBool(E->operand(0), Environment))
      return Value::boolean(true);
    return Value::boolean(evaluateBool(E->operand(1), Environment));
  case ExprKind::Iff:
    return Value::boolean(evaluateBool(E->operand(0), Environment) ==
                          evaluateBool(E->operand(1), Environment));
  case ExprKind::Ite:
    return evaluateBool(E->operand(0), Environment)
               ? evaluate(E->operand(1), Environment)
               : evaluate(E->operand(2), Environment);

  case ExprKind::SetContains:
    return Value::boolean(stateOperand(E, Environment)
                              ->contains(evaluate(E->operand(1), Environment)));
  case ExprKind::MapGet:
    return stateOperand(E, Environment)
        ->mapGet(evaluate(E->operand(1), Environment));
  case ExprKind::MapHasKey:
    return Value::boolean(
        stateOperand(E, Environment)
            ->mapHasKey(evaluate(E->operand(1), Environment)));
  case ExprKind::SeqAt:
    return stateOperand(E, Environment)
        ->seqAt(evaluate(E->operand(1), Environment).asInt());
  case ExprKind::SeqLen:
    return Value::integer(stateOperand(E, Environment)->seqLen());
  case ExprKind::SeqIndexOf:
    return Value::integer(
        stateOperand(E, Environment)
            ->seqIndexOf(evaluate(E->operand(1), Environment)));
  case ExprKind::SeqLastIndexOf:
    return Value::integer(
        stateOperand(E, Environment)
            ->seqLastIndexOf(evaluate(E->operand(1), Environment)));
  case ExprKind::StateSize:
    return Value::integer(stateOperand(E, Environment)->size());
  case ExprKind::CounterValue:
    return Value::integer(stateOperand(E, Environment)->counter());

  case ExprKind::Forall:
  case ExprKind::Exists: {
    int64_t Lo = evaluate(E->operand(0), Environment).asInt();
    int64_t Hi = evaluate(E->operand(1), Environment).asInt();
    bool IsForall = E->kind() == ExprKind::Forall;
    Env Inner = Environment;
    for (int64_t I = Lo; I <= Hi; ++I) {
      Inner.bind(E->name(), Value::integer(I));
      bool B = evaluateBool(E->operand(2), Inner);
      if (IsForall && !B)
        return Value::boolean(false);
      if (!IsForall && B)
        return Value::boolean(true);
    }
    return Value::boolean(IsForall);
  }
  }
  semcomm_unreachable("invalid expression kind in evaluate");
}

bool evaluateBool(ExprRef E, const Env &Environment) {
  Value V = evaluate(E, Environment);
  assert(V.isBool() && "expression did not evaluate to a boolean");
  return V.asBool();
}

} // namespace semcomm
