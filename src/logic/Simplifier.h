//===- logic/Simplifier.h - Boolean simplification & queries ----*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Light semantics-preserving boolean simplification (used when deriving
/// lattice conditions by dropping disjuncts, §5.1/Ch. 6) plus structural
/// queries over expressions: free variables, referenced states, and the
/// top-level disjunct decomposition that the commutativity lattice operates
/// on.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_LOGIC_SIMPLIFIER_H
#define SEMCOMM_LOGIC_SIMPLIFIER_H

#include "logic/Expr.h"
#include "logic/ExprFactory.h"

#include <set>
#include <string>
#include <vector>

namespace semcomm {

/// Simplifies \p E: constant folding, flattening, duplicate removal, unit
/// and complement laws. The result is logically equivalent to \p E.
ExprRef simplify(ExprFactory &F, ExprRef E);

/// The top-level disjuncts of \p E (the clause set of the paper's
/// "disjunction of clauses" conditions); a non-Or expression is a single
/// disjunct.
std::vector<ExprRef> collectDisjuncts(ExprRef E);

/// Collects the free scalar variable names of \p E into \p Out.
void collectFreeVars(ExprRef E, std::set<std::string> &Out);

/// Collects the names of the states (s1, s2, s3) that \p E queries.
void collectStateNames(ExprRef E, std::set<std::string> &Out);

/// The conservative s1-free dialect of a between condition (§4.1.2 option
/// 2): drops every top-level disjunct that references the saved pre-state
/// s1, leaving a sound, possibly incomplete condition over s2 alone. An
/// empty disjunction folds to false ("may conflict"). Shared by the
/// run-time checker and the compiled commutativity index so the two paths
/// cannot drift.
ExprRef dropS1Disjuncts(ExprFactory &F, ExprRef Between);

} // namespace semcomm

#endif // SEMCOMM_LOGIC_SIMPLIFIER_H
