//===- logic/Expr.cpp - Expression kind names -----------------------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "logic/Expr.h"

#include "support/Unreachable.h"

namespace semcomm {

const char *exprKindName(ExprKind K) {
  switch (K) {
  case ExprKind::ConstBool:
    return "ConstBool";
  case ExprKind::ConstInt:
    return "ConstInt";
  case ExprKind::ConstNull:
    return "ConstNull";
  case ExprKind::Var:
    return "Var";
  case ExprKind::Add:
    return "Add";
  case ExprKind::Sub:
    return "Sub";
  case ExprKind::Neg:
    return "Neg";
  case ExprKind::Eq:
    return "Eq";
  case ExprKind::Lt:
    return "Lt";
  case ExprKind::Le:
    return "Le";
  case ExprKind::Not:
    return "Not";
  case ExprKind::And:
    return "And";
  case ExprKind::Or:
    return "Or";
  case ExprKind::Implies:
    return "Implies";
  case ExprKind::Iff:
    return "Iff";
  case ExprKind::Ite:
    return "Ite";
  case ExprKind::SetContains:
    return "SetContains";
  case ExprKind::MapGet:
    return "MapGet";
  case ExprKind::MapHasKey:
    return "MapHasKey";
  case ExprKind::SeqAt:
    return "SeqAt";
  case ExprKind::SeqLen:
    return "SeqLen";
  case ExprKind::SeqIndexOf:
    return "SeqIndexOf";
  case ExprKind::SeqLastIndexOf:
    return "SeqLastIndexOf";
  case ExprKind::StateSize:
    return "StateSize";
  case ExprKind::CounterValue:
    return "CounterValue";
  case ExprKind::Forall:
    return "Forall";
  case ExprKind::Exists:
    return "Exists";
  }
  semcomm_unreachable("invalid expression kind");
}

} // namespace semcomm
