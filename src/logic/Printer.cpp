//===- logic/Printer.cpp - Two-dialect condition printing -----------------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "logic/Printer.h"

#include "support/Unreachable.h"

#include <string>

using namespace semcomm;

namespace {

/// Binding powers; a child is parenthesized when its level is strictly lower
/// than its context requires.
enum Level : int {
  LevelIff = 0,
  LevelImplies = 1,
  LevelOr = 2,
  LevelAnd = 3,
  LevelNot = 4,
  LevelCmp = 5,
  LevelAddSub = 6,
  LevelNeg = 7,
  LevelAtom = 8,
};

class PrinterImpl {
public:
  explicit PrinterImpl(PrintDialect D) : Dialect(D) {}

  std::string print(ExprRef E, int MinLevel) {
    int Level;
    std::string S = render(E, Level);
    if (Level < MinLevel)
      return "(" + S + ")";
    return S;
  }

private:
  bool abstractDialect() const { return Dialect == PrintDialect::Abstract; }

  /// Renders \p E, reporting the binding level of the produced text.
  std::string render(ExprRef E, int &Level);

  /// Tries the special-cased renderings of negated atoms (`~=`, `~in`,
  /// `>=`, `>`); returns empty if no special case applies.
  std::string renderNot(ExprRef Inner, int &Level);

  /// Tries the pair-notation renderings for map atoms in the abstract
  /// dialect; returns empty if not applicable.
  std::string renderMapEq(ExprRef Lhs, ExprRef Rhs, bool Negated, int &Level);

  PrintDialect Dialect;
};

std::string PrinterImpl::renderMapEq(ExprRef Lhs, ExprRef Rhs, bool Negated,
                                     int &Level) {
  // Normalize so the MapGet is on the left.
  if (Rhs->kind() == ExprKind::MapGet)
    std::swap(Lhs, Rhs);
  if (Lhs->kind() != ExprKind::MapGet)
    return "";
  std::string StateName = print(Lhs->operand(0), LevelAtom);
  std::string KeyText = print(Lhs->operand(1), 0);
  if (!abstractDialect()) {
    Level = LevelCmp;
    std::string Op = Negated ? " != " : " == ";
    return StateName + ".get(" + KeyText + ")" + Op + print(Rhs, LevelAddSub);
  }
  Level = LevelAtom;
  // (k, v) in s  /  (k, _) ~in s for comparisons against null.
  if (Rhs->kind() == ExprKind::ConstNull)
    return "(" + KeyText + ", _) " + (Negated ? "in " : "~in ") + StateName;
  return "(" + KeyText + ", " + print(Rhs, 0) + ") " +
         (Negated ? "~in " : "in ") + StateName;
}

std::string PrinterImpl::renderNot(ExprRef Inner, int &Level) {
  switch (Inner->kind()) {
  case ExprKind::Eq: {
    std::string MapForm =
        renderMapEq(Inner->operand(0), Inner->operand(1), true, Level);
    if (!MapForm.empty())
      return MapForm;
    Level = LevelCmp;
    return print(Inner->operand(0), LevelAddSub) +
           (abstractDialect() ? " ~= " : " != ") +
           print(Inner->operand(1), LevelAddSub);
  }
  case ExprKind::Lt:
    Level = LevelCmp;
    return print(Inner->operand(0), LevelAddSub) + " >= " +
           print(Inner->operand(1), LevelAddSub);
  case ExprKind::Le:
    Level = LevelCmp;
    return print(Inner->operand(0), LevelAddSub) + " > " +
           print(Inner->operand(1), LevelAddSub);
  case ExprKind::SetContains:
    Level = abstractDialect() ? LevelAtom : LevelNot;
    if (abstractDialect())
      return print(Inner->operand(1), LevelAddSub) + " ~in " +
             print(Inner->operand(0), LevelAtom);
    return "!" + print(Inner->operand(0), LevelAtom) + ".contains(" +
           print(Inner->operand(1), 0) + ")";
  case ExprKind::MapHasKey:
    Level = abstractDialect() ? LevelAtom : LevelNot;
    if (abstractDialect())
      return "(" + print(Inner->operand(1), 0) + ", _) ~in " +
             print(Inner->operand(0), LevelAtom);
    return "!" + print(Inner->operand(0), LevelAtom) + ".containsKey(" +
           print(Inner->operand(1), 0) + ")";
  default:
    return "";
  }
}

std::string PrinterImpl::render(ExprRef E, int &Level) {
  switch (E->kind()) {
  case ExprKind::ConstBool:
    Level = LevelAtom;
    return E->boolValue() ? "true" : "false";
  case ExprKind::ConstInt:
    Level = LevelAtom;
    return std::to_string(E->intValue());
  case ExprKind::ConstNull:
    Level = LevelAtom;
    return "null";
  case ExprKind::Var:
    Level = LevelAtom;
    return E->name();

  case ExprKind::Add:
    Level = LevelAddSub;
    return print(E->operand(0), LevelAddSub) + " + " +
           print(E->operand(1), LevelNeg);
  case ExprKind::Sub:
    Level = LevelAddSub;
    return print(E->operand(0), LevelAddSub) + " - " +
           print(E->operand(1), LevelNeg);
  case ExprKind::Neg:
    Level = LevelNeg;
    return "-" + print(E->operand(0), LevelAtom);

  case ExprKind::Eq: {
    std::string MapForm =
        renderMapEq(E->operand(0), E->operand(1), false, Level);
    if (!MapForm.empty())
      return MapForm;
    Level = LevelCmp;
    return print(E->operand(0), LevelAddSub) +
           (abstractDialect() ? " = " : " == ") +
           print(E->operand(1), LevelAddSub);
  }
  case ExprKind::Lt:
    Level = LevelCmp;
    return print(E->operand(0), LevelAddSub) + " < " +
           print(E->operand(1), LevelAddSub);
  case ExprKind::Le:
    Level = LevelCmp;
    return print(E->operand(0), LevelAddSub) + " <= " +
           print(E->operand(1), LevelAddSub);

  case ExprKind::Not: {
    std::string Special = renderNot(E->operand(0), Level);
    if (!Special.empty())
      return Special;
    Level = LevelNot;
    return (abstractDialect() ? "~" : "!") + print(E->operand(0), LevelNot);
  }
  case ExprKind::And: {
    Level = LevelAnd;
    std::string S;
    for (ExprRef Op : E->operands()) {
      if (!S.empty())
        S += abstractDialect() ? " & " : " && ";
      S += print(Op, LevelAnd + 1);
    }
    return S;
  }
  case ExprKind::Or: {
    Level = LevelOr;
    std::string S;
    for (ExprRef Op : E->operands()) {
      if (!S.empty())
        S += abstractDialect() ? " | " : " || ";
      S += print(Op, LevelOr + 1);
    }
    return S;
  }
  case ExprKind::Implies:
    Level = LevelImplies;
    return print(E->operand(0), LevelImplies + 1) +
           (abstractDialect() ? " --> " : " ==> ") +
           print(E->operand(1), LevelImplies);
  case ExprKind::Iff:
    Level = LevelIff;
    return print(E->operand(0), LevelIff + 1) +
           (abstractDialect() ? " <-> " : " <==> ") +
           print(E->operand(1), LevelIff + 1);
  case ExprKind::Ite:
    Level = LevelAtom;
    return "(" + print(E->operand(0), 0) + " ? " + print(E->operand(1), 0) +
           " : " + print(E->operand(2), 0) + ")";

  case ExprKind::SetContains:
    Level = abstractDialect() ? LevelAtom : LevelAtom;
    if (abstractDialect())
      return print(E->operand(1), LevelAddSub) + " in " +
             print(E->operand(0), LevelAtom);
    return print(E->operand(0), LevelAtom) + ".contains(" +
           print(E->operand(1), 0) + ")";
  case ExprKind::MapGet:
    Level = LevelAtom;
    return print(E->operand(0), LevelAtom) +
           (abstractDialect() ? ".get(" : ".get(") +
           print(E->operand(1), 0) + ")";
  case ExprKind::MapHasKey:
    Level = LevelAtom;
    if (abstractDialect())
      return "(" + print(E->operand(1), 0) + ", _) in " +
             print(E->operand(0), LevelAtom);
    return print(E->operand(0), LevelAtom) + ".containsKey(" +
           print(E->operand(1), 0) + ")";
  case ExprKind::SeqAt:
    Level = LevelAtom;
    if (abstractDialect())
      return print(E->operand(0), LevelAtom) + "[" + print(E->operand(1), 0) +
             "]";
    return print(E->operand(0), LevelAtom) + ".get(" +
           print(E->operand(1), 0) + ")";
  case ExprKind::SeqLen:
  case ExprKind::StateSize:
    Level = LevelAtom;
    if (abstractDialect())
      return "|" + print(E->operand(0), LevelAtom) + "|";
    return print(E->operand(0), LevelAtom) + ".size()";
  case ExprKind::SeqIndexOf:
    Level = LevelAtom;
    if (abstractDialect())
      return "idx(" + print(E->operand(0), 0) + ", " +
             print(E->operand(1), 0) + ")";
    return print(E->operand(0), LevelAtom) + ".indexOf(" +
           print(E->operand(1), 0) + ")";
  case ExprKind::SeqLastIndexOf:
    Level = LevelAtom;
    if (abstractDialect())
      return "lidx(" + print(E->operand(0), 0) + ", " +
             print(E->operand(1), 0) + ")";
    return print(E->operand(0), LevelAtom) + ".lastIndexOf(" +
           print(E->operand(1), 0) + ")";
  case ExprKind::CounterValue:
    Level = LevelAtom;
    if (abstractDialect())
      return "val(" + print(E->operand(0), 0) + ")";
    return print(E->operand(0), LevelAtom) + ".read()";

  case ExprKind::Forall:
  case ExprKind::Exists: {
    Level = LevelIff;
    const char *Head = E->kind() == ExprKind::Forall ? "ALL " : "EX ";
    return std::string(Head) + E->name() + " : " +
           print(E->operand(0), LevelAddSub) + ".." +
           print(E->operand(1), LevelAddSub) + ". " +
           print(E->operand(2), LevelImplies);
  }
  }
  semcomm_unreachable("invalid expression kind in printer");
}

} // namespace

std::string semcomm::printExpr(ExprRef E, PrintDialect D) {
  PrinterImpl P(D);
  return P.print(E, 0);
}
