//===- logic/ExprFactory.h - Hash-consing expression builder ---*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ExprFactory owns and uniques all Expr nodes (the Z3-Context-style
/// ownership model). Smart constructors perform only lightweight,
/// semantics-preserving folding (constant folding, unit laws, flattening of
/// n-ary connectives) so printed conditions keep the shape their authors
/// wrote.
///
/// Interning is an open-addressing hash table over arena-allocated nodes,
/// sharded by structural hash with one lock per shard so concurrent engines
/// (the parallel symbolic driver path) can share a single factory: pointer
/// equality stays structural equality across every thread.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_LOGIC_EXPRFACTORY_H
#define SEMCOMM_LOGIC_EXPRFACTORY_H

#include "logic/Expr.h"

#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace semcomm {

/// Creates and uniques expressions. All ExprRefs obtained from a factory are
/// valid for the factory's lifetime; structural equality is pointer equality.
/// Interning (and therefore every smart constructor) is safe to call from
/// multiple threads concurrently.
class ExprFactory {
public:
  ExprFactory();
  ExprFactory(const ExprFactory &) = delete;
  ExprFactory &operator=(const ExprFactory &) = delete;

  // Leaves.
  ExprRef boolConst(bool B);
  ExprRef trueExpr() { return CachedTrue; }
  ExprRef falseExpr() { return CachedFalse; }
  ExprRef intConst(int64_t N);
  ExprRef nullConst();
  ExprRef var(const std::string &Name, Sort S);

  // Integer terms.
  ExprRef add(ExprRef A, ExprRef B);
  ExprRef sub(ExprRef A, ExprRef B);
  ExprRef neg(ExprRef A);

  // Atoms.
  ExprRef eq(ExprRef A, ExprRef B);
  ExprRef ne(ExprRef A, ExprRef B) { return lnot(eq(A, B)); }
  ExprRef lt(ExprRef A, ExprRef B);
  ExprRef le(ExprRef A, ExprRef B);
  ExprRef gt(ExprRef A, ExprRef B) { return lt(B, A); }
  ExprRef ge(ExprRef A, ExprRef B) { return le(B, A); }

  // Connectives (n-ary conj/disj flatten and apply unit laws).
  ExprRef lnot(ExprRef A);
  ExprRef conj(std::vector<ExprRef> Ops);
  ExprRef disj(std::vector<ExprRef> Ops);
  ExprRef conj2(ExprRef A, ExprRef B) { return conj({A, B}); }
  ExprRef disj2(ExprRef A, ExprRef B) { return disj({A, B}); }
  ExprRef implies(ExprRef A, ExprRef B);
  ExprRef iff(ExprRef A, ExprRef B);
  ExprRef ite(ExprRef C, ExprRef T, ExprRef E);

  // State queries. \p S must be State-sorted.
  ExprRef setContains(ExprRef S, ExprRef V);
  ExprRef mapGet(ExprRef S, ExprRef K);
  ExprRef mapHasKey(ExprRef S, ExprRef K);
  ExprRef seqAt(ExprRef S, ExprRef I);
  ExprRef seqLen(ExprRef S);
  ExprRef seqIndexOf(ExprRef S, ExprRef V);
  ExprRef seqLastIndexOf(ExprRef S, ExprRef V);
  ExprRef stateSize(ExprRef S);
  ExprRef counterValue(ExprRef S);

  // Bounded integer quantifiers over [Lo, Hi] inclusive.
  ExprRef forallInt(const std::string &BoundVar, ExprRef Lo, ExprRef Hi,
                    ExprRef Body);
  ExprRef existsInt(const std::string &BoundVar, ExprRef Lo, ExprRef Hi,
                    ExprRef Body);

  /// Capture-free substitution of variables by expressions, memoized over
  /// the expression DAG (hash-consing shares subterms, so the naive
  /// recursion would revisit them exponentially often).
  ExprRef substitute(ExprRef E,
                     const std::map<std::string, ExprRef> &Subst);

  /// Number of distinct nodes allocated (diagnostics / tests).
  size_t numNodes() const;

private:
  /// One lock-striped slice of the intern table: an open-addressing
  /// pointer table plus the arena (a deque never moves constructed nodes,
  /// so ExprRefs stay valid as the shard grows).
  struct Shard {
    mutable std::mutex Mutex;
    std::vector<const Expr *> Table; ///< Power-of-two open addressing.
    size_t Count = 0;
    std::deque<Expr> Arena;
  };

  static constexpr size_t NumShards = 16; ///< Power of two.

  ExprRef make(ExprKind K, Sort S, int64_t Payload, std::string Name,
               std::vector<const Expr *> Ops);
  static void growTable(Shard &Sh);

  using SubstMemo = std::unordered_map<ExprRef, ExprRef>;
  ExprRef substituteImpl(ExprRef E,
                         const std::map<std::string, ExprRef> &Subst,
                         SubstMemo &Memo);

  Shard Shards[NumShards];
  ExprRef CachedTrue = nullptr;
  ExprRef CachedFalse = nullptr;
};

} // namespace semcomm

#endif // SEMCOMM_LOGIC_EXPRFACTORY_H
