//===- logic/ExprFactory.h - Hash-consing expression builder ---*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ExprFactory owns and uniques all Expr nodes (the Z3-Context-style
/// ownership model). Smart constructors perform only lightweight,
/// semantics-preserving folding (constant folding, unit laws, flattening of
/// n-ary connectives) so printed conditions keep the shape their authors
/// wrote.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_LOGIC_EXPRFACTORY_H
#define SEMCOMM_LOGIC_EXPRFACTORY_H

#include "logic/Expr.h"

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

namespace semcomm {

/// Creates and uniques expressions. All ExprRefs obtained from a factory are
/// valid for the factory's lifetime; structural equality is pointer equality.
class ExprFactory {
public:
  ExprFactory();
  ExprFactory(const ExprFactory &) = delete;
  ExprFactory &operator=(const ExprFactory &) = delete;

  // Leaves.
  ExprRef boolConst(bool B);
  ExprRef trueExpr() { return CachedTrue; }
  ExprRef falseExpr() { return CachedFalse; }
  ExprRef intConst(int64_t N);
  ExprRef nullConst();
  ExprRef var(const std::string &Name, Sort S);

  // Integer terms.
  ExprRef add(ExprRef A, ExprRef B);
  ExprRef sub(ExprRef A, ExprRef B);
  ExprRef neg(ExprRef A);

  // Atoms.
  ExprRef eq(ExprRef A, ExprRef B);
  ExprRef ne(ExprRef A, ExprRef B) { return lnot(eq(A, B)); }
  ExprRef lt(ExprRef A, ExprRef B);
  ExprRef le(ExprRef A, ExprRef B);
  ExprRef gt(ExprRef A, ExprRef B) { return lt(B, A); }
  ExprRef ge(ExprRef A, ExprRef B) { return le(B, A); }

  // Connectives (n-ary conj/disj flatten and apply unit laws).
  ExprRef lnot(ExprRef A);
  ExprRef conj(std::vector<ExprRef> Ops);
  ExprRef disj(std::vector<ExprRef> Ops);
  ExprRef conj2(ExprRef A, ExprRef B) { return conj({A, B}); }
  ExprRef disj2(ExprRef A, ExprRef B) { return disj({A, B}); }
  ExprRef implies(ExprRef A, ExprRef B);
  ExprRef iff(ExprRef A, ExprRef B);
  ExprRef ite(ExprRef C, ExprRef T, ExprRef E);

  // State queries. \p S must be State-sorted.
  ExprRef setContains(ExprRef S, ExprRef V);
  ExprRef mapGet(ExprRef S, ExprRef K);
  ExprRef mapHasKey(ExprRef S, ExprRef K);
  ExprRef seqAt(ExprRef S, ExprRef I);
  ExprRef seqLen(ExprRef S);
  ExprRef seqIndexOf(ExprRef S, ExprRef V);
  ExprRef seqLastIndexOf(ExprRef S, ExprRef V);
  ExprRef stateSize(ExprRef S);
  ExprRef counterValue(ExprRef S);

  // Bounded integer quantifiers over [Lo, Hi] inclusive.
  ExprRef forallInt(const std::string &BoundVar, ExprRef Lo, ExprRef Hi,
                    ExprRef Body);
  ExprRef existsInt(const std::string &BoundVar, ExprRef Lo, ExprRef Hi,
                    ExprRef Body);

  /// Capture-free substitution of variables by expressions.
  ExprRef substitute(ExprRef E,
                     const std::map<std::string, ExprRef> &Subst);

  /// Number of distinct nodes allocated (diagnostics / tests).
  size_t numNodes() const { return Nodes.size(); }

private:
  ExprRef make(ExprKind K, Sort S, int64_t Payload, std::string Name,
               std::vector<const Expr *> Ops);

  using Key = std::tuple<ExprKind, Sort, int64_t, std::string,
                         std::vector<const Expr *>>;
  std::map<Key, std::unique_ptr<Expr>> Nodes;
  ExprRef CachedTrue = nullptr;
  ExprRef CachedFalse = nullptr;
};

} // namespace semcomm

#endif // SEMCOMM_LOGIC_EXPRFACTORY_H
