//===- logic/Value.cpp - Runtime values of the specification logic -------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "logic/Value.h"

#include "support/Unreachable.h"

#include <cassert>

using namespace semcomm;

bool Value::asBool() const {
  assert(Kind == KindType::Bool && "asBool on a non-boolean value");
  return Payload != 0;
}

int64_t Value::asInt() const {
  assert(Kind == KindType::Int && "asInt on a non-integer value");
  return Payload;
}

int64_t Value::objId() const {
  assert(Kind == KindType::Obj && "objId on a non-object value");
  return Payload;
}

std::string Value::str() const {
  switch (Kind) {
  case KindType::Null:
    return "null";
  case KindType::Bool:
    return Payload ? "true" : "false";
  case KindType::Int:
    return std::to_string(Payload);
  case KindType::Obj:
    return "o" + std::to_string(Payload);
  case KindType::Undef:
    return "undef";
  }
  semcomm_unreachable("invalid value kind");
}
