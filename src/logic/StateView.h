//===- logic/StateView.h - Query interface over a data structure *- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// StateView is the bridge between the logic's state-query atoms and any
/// state they may be evaluated against. Abstract states (spec module)
/// implement it directly; the concrete linked data structures (impl module)
/// implement it through adapters, which is exactly how the paper's *fourth
/// table column* — commutativity conditions over the concrete structure —
/// is evaluated at run time.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_LOGIC_STATEVIEW_H
#define SEMCOMM_LOGIC_STATEVIEW_H

#include "logic/Value.h"

#include <cstdint>

namespace semcomm {

/// Read-only query interface over a (set / map / sequence / counter) state.
/// Queries that do not apply to the underlying state kind abort; queries
/// that are partial on their arguments (seqAt out of range, mapGet of an
/// absent key) return Value::undef() / Value::null() respectively, keeping
/// condition evaluation total.
class StateView {
public:
  virtual ~StateView();

  /// Set interface: is \p V an element of the abstract set?
  virtual bool contains(const Value &V) const;

  /// Map interface: the value bound to key \p K, or null if unbound.
  virtual Value mapGet(const Value &K) const;
  /// Map interface: is \p K bound?
  virtual bool mapHasKey(const Value &K) const;

  /// Sequence interface: number of elements.
  virtual int64_t seqLen() const;
  /// Sequence interface: element at \p I, or Undef when out of range.
  virtual Value seqAt(int64_t I) const;
  /// Sequence interface: first index holding \p V, or -1.
  virtual int64_t seqIndexOf(const Value &V) const;
  /// Sequence interface: last index holding \p V, or -1.
  virtual int64_t seqLastIndexOf(const Value &V) const;

  /// Size of the container (set cardinality, map entry count, sequence
  /// length).
  virtual int64_t size() const;

  /// Accumulator interface: current counter value.
  virtual int64_t counter() const;
};

} // namespace semcomm

#endif // SEMCOMM_LOGIC_STATEVIEW_H
