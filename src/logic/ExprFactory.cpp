//===- logic/ExprFactory.cpp - Hash-consing expression builder -----------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "logic/ExprFactory.h"

#include "support/Unreachable.h"

#include <algorithm>
#include <cassert>

using namespace semcomm;

//===----------------------------------------------------------------------===//
// Interning: sharded open-addressing table over arena nodes
//===----------------------------------------------------------------------===//

namespace {

/// 64-bit mix (splitmix64 finalizer); the table indices come from the high
/// bits after shard selection uses the low bits.
inline size_t mix(size_t H) {
  H ^= H >> 30;
  H *= 0xbf58476d1ce4e5b9ULL;
  H ^= H >> 27;
  H *= 0x94d049bb133111ebULL;
  H ^= H >> 31;
  return H;
}

inline size_t hashCombine(size_t Seed, size_t V) {
  return mix(Seed ^ (V + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2)));
}

size_t hashKey(ExprKind K, Sort S, int64_t Payload, const std::string &Name,
               const std::vector<const Expr *> &Ops) {
  size_t H = hashCombine(static_cast<size_t>(K) * 0x100 + 1,
                         static_cast<size_t>(S));
  H = hashCombine(H, static_cast<size_t>(Payload));
  H = hashCombine(H, std::hash<std::string>{}(Name));
  for (const Expr *Op : Ops)
    H = hashCombine(H, reinterpret_cast<size_t>(Op));
  return H;
}

bool keyEquals(const Expr *N, ExprKind K, Sort S, int64_t Payload,
               const std::string &Name,
               const std::vector<const Expr *> &Ops) {
  if (N->kind() != K || N->sort() != S || N->numOperands() != Ops.size())
    return false;
  if (!std::equal(Ops.begin(), Ops.end(), N->operands().begin()))
    return false;
  // Payload and Name are only discriminating for the leaf/quantifier kinds,
  // but comparing them unconditionally is cheap and always correct.
  switch (K) {
  case ExprKind::ConstBool:
  case ExprKind::ConstInt:
    return (K == ExprKind::ConstBool ? N->boolValue() == (Payload != 0)
                                     : N->intValue() == Payload);
  case ExprKind::Var:
  case ExprKind::Forall:
  case ExprKind::Exists:
    return N->name() == Name;
  default:
    return true;
  }
}

} // namespace

ExprFactory::ExprFactory() {
  CachedTrue = make(ExprKind::ConstBool, Sort::Bool, 1, "", {});
  CachedFalse = make(ExprKind::ConstBool, Sort::Bool, 0, "", {});
}

void ExprFactory::growTable(Shard &Sh) {
  size_t NewSize = Sh.Table.empty() ? 64 : Sh.Table.size() * 2;
  std::vector<const Expr *> NewTable(NewSize, nullptr);
  size_t Mask = NewSize - 1;
  for (const Expr *N : Sh.Table) {
    if (!N)
      continue;
    size_t Idx = (N->Hash / NumShards) & Mask;
    while (NewTable[Idx])
      Idx = (Idx + 1) & Mask;
    NewTable[Idx] = N;
  }
  Sh.Table = std::move(NewTable);
}

ExprRef ExprFactory::make(ExprKind K, Sort S, int64_t Payload,
                          std::string Name, std::vector<const Expr *> Ops) {
  size_t H = hashKey(K, S, Payload, Name, Ops);
  Shard &Sh = Shards[H & (NumShards - 1)];
  std::lock_guard<std::mutex> Lock(Sh.Mutex);

  if (Sh.Count * 4 >= Sh.Table.size() * 3)
    growTable(Sh);
  size_t Mask = Sh.Table.size() - 1;
  size_t Idx = (H / NumShards) & Mask;
  while (const Expr *N = Sh.Table[Idx]) {
    if (N->Hash == H && keyEquals(N, K, S, Payload, Name, Ops))
      return N;
    Idx = (Idx + 1) & Mask;
  }

  Sh.Arena.emplace_back(Expr(K, S, Payload, std::move(Name), std::move(Ops),
                             H));
  const Expr *Node = &Sh.Arena.back();
  Sh.Table[Idx] = Node;
  ++Sh.Count;
  return Node;
}

size_t ExprFactory::numNodes() const {
  size_t N = 0;
  for (const Shard &Sh : Shards) {
    std::lock_guard<std::mutex> Lock(Sh.Mutex);
    N += Sh.Count;
  }
  return N;
}

//===----------------------------------------------------------------------===//
// Smart constructors
//===----------------------------------------------------------------------===//

ExprRef ExprFactory::boolConst(bool B) { return B ? CachedTrue : CachedFalse; }

ExprRef ExprFactory::intConst(int64_t N) {
  return make(ExprKind::ConstInt, Sort::Int, N, "", {});
}

ExprRef ExprFactory::nullConst() {
  return make(ExprKind::ConstNull, Sort::Obj, 0, "", {});
}

ExprRef ExprFactory::var(const std::string &Name, Sort S) {
  assert(!Name.empty() && "variables must be named");
  return make(ExprKind::Var, S, 0, Name, {});
}

ExprRef ExprFactory::add(ExprRef A, ExprRef B) {
  assert(A->sort() == Sort::Int && B->sort() == Sort::Int && "add wants ints");
  if (A->kind() == ExprKind::ConstInt && B->kind() == ExprKind::ConstInt)
    return intConst(A->intValue() + B->intValue());
  if (B->kind() == ExprKind::ConstInt && B->intValue() == 0)
    return A;
  if (A->kind() == ExprKind::ConstInt && A->intValue() == 0)
    return B;
  return make(ExprKind::Add, Sort::Int, 0, "", {A, B});
}

ExprRef ExprFactory::sub(ExprRef A, ExprRef B) {
  assert(A->sort() == Sort::Int && B->sort() == Sort::Int && "sub wants ints");
  if (A->kind() == ExprKind::ConstInt && B->kind() == ExprKind::ConstInt)
    return intConst(A->intValue() - B->intValue());
  if (B->kind() == ExprKind::ConstInt && B->intValue() == 0)
    return A;
  return make(ExprKind::Sub, Sort::Int, 0, "", {A, B});
}

ExprRef ExprFactory::neg(ExprRef A) {
  assert(A->sort() == Sort::Int && "neg wants an int");
  if (A->kind() == ExprKind::ConstInt)
    return intConst(-A->intValue());
  return make(ExprKind::Neg, Sort::Int, 0, "", {A});
}

ExprRef ExprFactory::eq(ExprRef A, ExprRef B) {
  assert(A->sort() == B->sort() && "equality between different sorts");
  if (A->kind() == ExprKind::ConstInt && B->kind() == ExprKind::ConstInt)
    return boolConst(A->intValue() == B->intValue());
  if (A->kind() == ExprKind::ConstBool && B->kind() == ExprKind::ConstBool)
    return boolConst(A->boolValue() == B->boolValue());
  if (A->kind() == ExprKind::ConstNull && B->kind() == ExprKind::ConstNull)
    return trueExpr();
  return make(ExprKind::Eq, Sort::Bool, 0, "", {A, B});
}

ExprRef ExprFactory::lt(ExprRef A, ExprRef B) {
  assert(A->sort() == Sort::Int && B->sort() == Sort::Int && "lt wants ints");
  if (A->kind() == ExprKind::ConstInt && B->kind() == ExprKind::ConstInt)
    return boolConst(A->intValue() < B->intValue());
  return make(ExprKind::Lt, Sort::Bool, 0, "", {A, B});
}

ExprRef ExprFactory::le(ExprRef A, ExprRef B) {
  assert(A->sort() == Sort::Int && B->sort() == Sort::Int && "le wants ints");
  if (A->kind() == ExprKind::ConstInt && B->kind() == ExprKind::ConstInt)
    return boolConst(A->intValue() <= B->intValue());
  return make(ExprKind::Le, Sort::Bool, 0, "", {A, B});
}

ExprRef ExprFactory::lnot(ExprRef A) {
  assert(A->sort() == Sort::Bool && "negation of a non-boolean");
  if (A->isTrue())
    return falseExpr();
  if (A->isFalse())
    return trueExpr();
  if (A->kind() == ExprKind::Not)
    return A->operand(0);
  return make(ExprKind::Not, Sort::Bool, 0, "", {A});
}

ExprRef ExprFactory::conj(std::vector<ExprRef> Ops) {
  std::vector<ExprRef> Flat;
  for (ExprRef Op : Ops) {
    assert(Op->sort() == Sort::Bool && "conjunct must be boolean");
    if (Op->isTrue())
      continue;
    if (Op->isFalse())
      return falseExpr();
    if (Op->kind() == ExprKind::And) {
      Flat.insert(Flat.end(), Op->operands().begin(), Op->operands().end());
      continue;
    }
    Flat.push_back(Op);
  }
  if (Flat.empty())
    return trueExpr();
  if (Flat.size() == 1)
    return Flat.front();
  return make(ExprKind::And, Sort::Bool, 0, "", std::move(Flat));
}

ExprRef ExprFactory::disj(std::vector<ExprRef> Ops) {
  std::vector<ExprRef> Flat;
  for (ExprRef Op : Ops) {
    assert(Op->sort() == Sort::Bool && "disjunct must be boolean");
    if (Op->isFalse())
      continue;
    if (Op->isTrue())
      return trueExpr();
    if (Op->kind() == ExprKind::Or) {
      Flat.insert(Flat.end(), Op->operands().begin(), Op->operands().end());
      continue;
    }
    Flat.push_back(Op);
  }
  if (Flat.empty())
    return falseExpr();
  if (Flat.size() == 1)
    return Flat.front();
  return make(ExprKind::Or, Sort::Bool, 0, "", std::move(Flat));
}

ExprRef ExprFactory::implies(ExprRef A, ExprRef B) {
  assert(A->sort() == Sort::Bool && B->sort() == Sort::Bool);
  if (A->isTrue())
    return B;
  if (A->isFalse() || B->isTrue())
    return trueExpr();
  if (B->isFalse())
    return lnot(A);
  return make(ExprKind::Implies, Sort::Bool, 0, "", {A, B});
}

ExprRef ExprFactory::iff(ExprRef A, ExprRef B) {
  assert(A->sort() == Sort::Bool && B->sort() == Sort::Bool);
  if (A->isTrue())
    return B;
  if (B->isTrue())
    return A;
  if (A->isFalse())
    return lnot(B);
  if (B->isFalse())
    return lnot(A);
  return make(ExprKind::Iff, Sort::Bool, 0, "", {A, B});
}

ExprRef ExprFactory::ite(ExprRef C, ExprRef T, ExprRef E) {
  assert(C->sort() == Sort::Bool && T->sort() == E->sort());
  if (C->isTrue())
    return T;
  if (C->isFalse())
    return E;
  return make(ExprKind::Ite, T->sort(), 0, "", {C, T, E});
}

ExprRef ExprFactory::setContains(ExprRef S, ExprRef V) {
  assert(S->sort() == Sort::State && V->sort() == Sort::Obj);
  return make(ExprKind::SetContains, Sort::Bool, 0, "", {S, V});
}

ExprRef ExprFactory::mapGet(ExprRef S, ExprRef K) {
  assert(S->sort() == Sort::State && K->sort() == Sort::Obj);
  return make(ExprKind::MapGet, Sort::Obj, 0, "", {S, K});
}

ExprRef ExprFactory::mapHasKey(ExprRef S, ExprRef K) {
  assert(S->sort() == Sort::State && K->sort() == Sort::Obj);
  return make(ExprKind::MapHasKey, Sort::Bool, 0, "", {S, K});
}

ExprRef ExprFactory::seqAt(ExprRef S, ExprRef I) {
  assert(S->sort() == Sort::State && I->sort() == Sort::Int);
  return make(ExprKind::SeqAt, Sort::Obj, 0, "", {S, I});
}

ExprRef ExprFactory::seqLen(ExprRef S) {
  assert(S->sort() == Sort::State);
  return make(ExprKind::SeqLen, Sort::Int, 0, "", {S});
}

ExprRef ExprFactory::seqIndexOf(ExprRef S, ExprRef V) {
  assert(S->sort() == Sort::State && V->sort() == Sort::Obj);
  return make(ExprKind::SeqIndexOf, Sort::Int, 0, "", {S, V});
}

ExprRef ExprFactory::seqLastIndexOf(ExprRef S, ExprRef V) {
  assert(S->sort() == Sort::State && V->sort() == Sort::Obj);
  return make(ExprKind::SeqLastIndexOf, Sort::Int, 0, "", {S, V});
}

ExprRef ExprFactory::stateSize(ExprRef S) {
  assert(S->sort() == Sort::State);
  return make(ExprKind::StateSize, Sort::Int, 0, "", {S});
}

ExprRef ExprFactory::counterValue(ExprRef S) {
  assert(S->sort() == Sort::State);
  return make(ExprKind::CounterValue, Sort::Int, 0, "", {S});
}

ExprRef ExprFactory::forallInt(const std::string &BoundVar, ExprRef Lo,
                               ExprRef Hi, ExprRef Body) {
  assert(Lo->sort() == Sort::Int && Hi->sort() == Sort::Int &&
         Body->sort() == Sort::Bool);
  return make(ExprKind::Forall, Sort::Bool, 0, BoundVar, {Lo, Hi, Body});
}

ExprRef ExprFactory::existsInt(const std::string &BoundVar, ExprRef Lo,
                               ExprRef Hi, ExprRef Body) {
  assert(Lo->sort() == Sort::Int && Hi->sort() == Sort::Int &&
         Body->sort() == Sort::Bool);
  return make(ExprKind::Exists, Sort::Bool, 0, BoundVar, {Lo, Hi, Body});
}

//===----------------------------------------------------------------------===//
// Substitution (memoized over the DAG)
//===----------------------------------------------------------------------===//

ExprRef ExprFactory::substitute(ExprRef E,
                                const std::map<std::string, ExprRef> &Subst) {
  SubstMemo Memo;
  return substituteImpl(E, Subst, Memo);
}

ExprRef ExprFactory::substituteImpl(ExprRef E,
                                    const std::map<std::string, ExprRef> &Subst,
                                    SubstMemo &Memo) {
  switch (E->kind()) {
  case ExprKind::ConstBool:
  case ExprKind::ConstInt:
  case ExprKind::ConstNull:
    return E;
  case ExprKind::Var: {
    auto It = Subst.find(E->name());
    if (It == Subst.end())
      return E;
    assert(It->second->sort() == E->sort() &&
           "substitution changes the sort of a variable");
    return It->second;
  }
  default:
    break;
  }

  auto Hit = Memo.find(E);
  if (Hit != Memo.end())
    return Hit->second;

  ExprRef Result;
  if (E->kind() == ExprKind::Forall || E->kind() == ExprKind::Exists) {
    // The bound variable shadows any outer binding of the same name. When a
    // binding is actually dropped, the body sees a different substitution,
    // so it gets its own memo table.
    ExprRef Lo = substituteImpl(E->operand(0), Subst, Memo);
    ExprRef Hi = substituteImpl(E->operand(1), Subst, Memo);
    ExprRef Body;
    if (Subst.count(E->name())) {
      std::map<std::string, ExprRef> Inner = Subst;
      Inner.erase(E->name());
      SubstMemo BodyMemo;
      Body = substituteImpl(E->operand(2), Inner, BodyMemo);
    } else {
      Body = substituteImpl(E->operand(2), Subst, Memo);
    }
    Result = E->kind() == ExprKind::Forall ? forallInt(E->name(), Lo, Hi, Body)
                                           : existsInt(E->name(), Lo, Hi, Body);
    Memo.emplace(E, Result);
    return Result;
  }

  std::vector<ExprRef> NewOps;
  NewOps.reserve(E->numOperands());
  bool Changed = false;
  for (ExprRef Op : E->operands()) {
    ExprRef NewOp = substituteImpl(Op, Subst, Memo);
    Changed |= (NewOp != Op);
    NewOps.push_back(NewOp);
  }
  if (!Changed) {
    Memo.emplace(E, E);
    return E;
  }

  switch (E->kind()) {
  case ExprKind::Add:
    Result = add(NewOps[0], NewOps[1]);
    break;
  case ExprKind::Sub:
    Result = sub(NewOps[0], NewOps[1]);
    break;
  case ExprKind::Neg:
    Result = neg(NewOps[0]);
    break;
  case ExprKind::Eq:
    Result = eq(NewOps[0], NewOps[1]);
    break;
  case ExprKind::Lt:
    Result = lt(NewOps[0], NewOps[1]);
    break;
  case ExprKind::Le:
    Result = le(NewOps[0], NewOps[1]);
    break;
  case ExprKind::Not:
    Result = lnot(NewOps[0]);
    break;
  case ExprKind::And:
    Result = conj(std::move(NewOps));
    break;
  case ExprKind::Or:
    Result = disj(std::move(NewOps));
    break;
  case ExprKind::Implies:
    Result = implies(NewOps[0], NewOps[1]);
    break;
  case ExprKind::Iff:
    Result = iff(NewOps[0], NewOps[1]);
    break;
  case ExprKind::Ite:
    Result = ite(NewOps[0], NewOps[1], NewOps[2]);
    break;
  case ExprKind::SetContains:
    Result = setContains(NewOps[0], NewOps[1]);
    break;
  case ExprKind::MapGet:
    Result = mapGet(NewOps[0], NewOps[1]);
    break;
  case ExprKind::MapHasKey:
    Result = mapHasKey(NewOps[0], NewOps[1]);
    break;
  case ExprKind::SeqAt:
    Result = seqAt(NewOps[0], NewOps[1]);
    break;
  case ExprKind::SeqLen:
    Result = seqLen(NewOps[0]);
    break;
  case ExprKind::SeqIndexOf:
    Result = seqIndexOf(NewOps[0], NewOps[1]);
    break;
  case ExprKind::SeqLastIndexOf:
    Result = seqLastIndexOf(NewOps[0], NewOps[1]);
    break;
  case ExprKind::StateSize:
    Result = stateSize(NewOps[0]);
    break;
  case ExprKind::CounterValue:
    Result = counterValue(NewOps[0]);
    break;
  default:
    semcomm_unreachable("unhandled expression kind in substitute");
  }
  Memo.emplace(E, Result);
  return Result;
}
