//===- logic/ExprFactory.cpp - Hash-consing expression builder -----------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "logic/ExprFactory.h"

#include "support/Unreachable.h"

#include <algorithm>
#include <cassert>

using namespace semcomm;

ExprFactory::ExprFactory() {
  CachedTrue = make(ExprKind::ConstBool, Sort::Bool, 1, "", {});
  CachedFalse = make(ExprKind::ConstBool, Sort::Bool, 0, "", {});
}

ExprRef ExprFactory::make(ExprKind K, Sort S, int64_t Payload,
                          std::string Name, std::vector<const Expr *> Ops) {
  Key NodeKey(K, S, Payload, Name, Ops);
  auto It = Nodes.find(NodeKey);
  if (It != Nodes.end())
    return It->second.get();
  auto Node = std::unique_ptr<Expr>(
      new Expr(K, S, Payload, std::move(Name), std::move(Ops)));
  ExprRef Ref = Node.get();
  Nodes.emplace(std::move(NodeKey), std::move(Node));
  return Ref;
}

ExprRef ExprFactory::boolConst(bool B) { return B ? CachedTrue : CachedFalse; }

ExprRef ExprFactory::intConst(int64_t N) {
  return make(ExprKind::ConstInt, Sort::Int, N, "", {});
}

ExprRef ExprFactory::nullConst() {
  return make(ExprKind::ConstNull, Sort::Obj, 0, "", {});
}

ExprRef ExprFactory::var(const std::string &Name, Sort S) {
  assert(!Name.empty() && "variables must be named");
  return make(ExprKind::Var, S, 0, Name, {});
}

ExprRef ExprFactory::add(ExprRef A, ExprRef B) {
  assert(A->sort() == Sort::Int && B->sort() == Sort::Int && "add wants ints");
  if (A->kind() == ExprKind::ConstInt && B->kind() == ExprKind::ConstInt)
    return intConst(A->intValue() + B->intValue());
  if (B->kind() == ExprKind::ConstInt && B->intValue() == 0)
    return A;
  if (A->kind() == ExprKind::ConstInt && A->intValue() == 0)
    return B;
  return make(ExprKind::Add, Sort::Int, 0, "", {A, B});
}

ExprRef ExprFactory::sub(ExprRef A, ExprRef B) {
  assert(A->sort() == Sort::Int && B->sort() == Sort::Int && "sub wants ints");
  if (A->kind() == ExprKind::ConstInt && B->kind() == ExprKind::ConstInt)
    return intConst(A->intValue() - B->intValue());
  if (B->kind() == ExprKind::ConstInt && B->intValue() == 0)
    return A;
  return make(ExprKind::Sub, Sort::Int, 0, "", {A, B});
}

ExprRef ExprFactory::neg(ExprRef A) {
  assert(A->sort() == Sort::Int && "neg wants an int");
  if (A->kind() == ExprKind::ConstInt)
    return intConst(-A->intValue());
  return make(ExprKind::Neg, Sort::Int, 0, "", {A});
}

ExprRef ExprFactory::eq(ExprRef A, ExprRef B) {
  assert(A->sort() == B->sort() && "equality between different sorts");
  if (A->kind() == ExprKind::ConstInt && B->kind() == ExprKind::ConstInt)
    return boolConst(A->intValue() == B->intValue());
  if (A->kind() == ExprKind::ConstBool && B->kind() == ExprKind::ConstBool)
    return boolConst(A->boolValue() == B->boolValue());
  if (A->kind() == ExprKind::ConstNull && B->kind() == ExprKind::ConstNull)
    return trueExpr();
  return make(ExprKind::Eq, Sort::Bool, 0, "", {A, B});
}

ExprRef ExprFactory::lt(ExprRef A, ExprRef B) {
  assert(A->sort() == Sort::Int && B->sort() == Sort::Int && "lt wants ints");
  if (A->kind() == ExprKind::ConstInt && B->kind() == ExprKind::ConstInt)
    return boolConst(A->intValue() < B->intValue());
  return make(ExprKind::Lt, Sort::Bool, 0, "", {A, B});
}

ExprRef ExprFactory::le(ExprRef A, ExprRef B) {
  assert(A->sort() == Sort::Int && B->sort() == Sort::Int && "le wants ints");
  if (A->kind() == ExprKind::ConstInt && B->kind() == ExprKind::ConstInt)
    return boolConst(A->intValue() <= B->intValue());
  return make(ExprKind::Le, Sort::Bool, 0, "", {A, B});
}

ExprRef ExprFactory::lnot(ExprRef A) {
  assert(A->sort() == Sort::Bool && "negation of a non-boolean");
  if (A->isTrue())
    return falseExpr();
  if (A->isFalse())
    return trueExpr();
  if (A->kind() == ExprKind::Not)
    return A->operand(0);
  return make(ExprKind::Not, Sort::Bool, 0, "", {A});
}

ExprRef ExprFactory::conj(std::vector<ExprRef> Ops) {
  std::vector<ExprRef> Flat;
  for (ExprRef Op : Ops) {
    assert(Op->sort() == Sort::Bool && "conjunct must be boolean");
    if (Op->isTrue())
      continue;
    if (Op->isFalse())
      return falseExpr();
    if (Op->kind() == ExprKind::And) {
      Flat.insert(Flat.end(), Op->operands().begin(), Op->operands().end());
      continue;
    }
    Flat.push_back(Op);
  }
  if (Flat.empty())
    return trueExpr();
  if (Flat.size() == 1)
    return Flat.front();
  return make(ExprKind::And, Sort::Bool, 0, "", std::move(Flat));
}

ExprRef ExprFactory::disj(std::vector<ExprRef> Ops) {
  std::vector<ExprRef> Flat;
  for (ExprRef Op : Ops) {
    assert(Op->sort() == Sort::Bool && "disjunct must be boolean");
    if (Op->isFalse())
      continue;
    if (Op->isTrue())
      return trueExpr();
    if (Op->kind() == ExprKind::Or) {
      Flat.insert(Flat.end(), Op->operands().begin(), Op->operands().end());
      continue;
    }
    Flat.push_back(Op);
  }
  if (Flat.empty())
    return falseExpr();
  if (Flat.size() == 1)
    return Flat.front();
  return make(ExprKind::Or, Sort::Bool, 0, "", std::move(Flat));
}

ExprRef ExprFactory::implies(ExprRef A, ExprRef B) {
  assert(A->sort() == Sort::Bool && B->sort() == Sort::Bool);
  if (A->isTrue())
    return B;
  if (A->isFalse() || B->isTrue())
    return trueExpr();
  if (B->isFalse())
    return lnot(A);
  return make(ExprKind::Implies, Sort::Bool, 0, "", {A, B});
}

ExprRef ExprFactory::iff(ExprRef A, ExprRef B) {
  assert(A->sort() == Sort::Bool && B->sort() == Sort::Bool);
  if (A->isTrue())
    return B;
  if (B->isTrue())
    return A;
  if (A->isFalse())
    return lnot(B);
  if (B->isFalse())
    return lnot(A);
  return make(ExprKind::Iff, Sort::Bool, 0, "", {A, B});
}

ExprRef ExprFactory::ite(ExprRef C, ExprRef T, ExprRef E) {
  assert(C->sort() == Sort::Bool && T->sort() == E->sort());
  if (C->isTrue())
    return T;
  if (C->isFalse())
    return E;
  return make(ExprKind::Ite, T->sort(), 0, "", {C, T, E});
}

ExprRef ExprFactory::setContains(ExprRef S, ExprRef V) {
  assert(S->sort() == Sort::State && V->sort() == Sort::Obj);
  return make(ExprKind::SetContains, Sort::Bool, 0, "", {S, V});
}

ExprRef ExprFactory::mapGet(ExprRef S, ExprRef K) {
  assert(S->sort() == Sort::State && K->sort() == Sort::Obj);
  return make(ExprKind::MapGet, Sort::Obj, 0, "", {S, K});
}

ExprRef ExprFactory::mapHasKey(ExprRef S, ExprRef K) {
  assert(S->sort() == Sort::State && K->sort() == Sort::Obj);
  return make(ExprKind::MapHasKey, Sort::Bool, 0, "", {S, K});
}

ExprRef ExprFactory::seqAt(ExprRef S, ExprRef I) {
  assert(S->sort() == Sort::State && I->sort() == Sort::Int);
  return make(ExprKind::SeqAt, Sort::Obj, 0, "", {S, I});
}

ExprRef ExprFactory::seqLen(ExprRef S) {
  assert(S->sort() == Sort::State);
  return make(ExprKind::SeqLen, Sort::Int, 0, "", {S});
}

ExprRef ExprFactory::seqIndexOf(ExprRef S, ExprRef V) {
  assert(S->sort() == Sort::State && V->sort() == Sort::Obj);
  return make(ExprKind::SeqIndexOf, Sort::Int, 0, "", {S, V});
}

ExprRef ExprFactory::seqLastIndexOf(ExprRef S, ExprRef V) {
  assert(S->sort() == Sort::State && V->sort() == Sort::Obj);
  return make(ExprKind::SeqLastIndexOf, Sort::Int, 0, "", {S, V});
}

ExprRef ExprFactory::stateSize(ExprRef S) {
  assert(S->sort() == Sort::State);
  return make(ExprKind::StateSize, Sort::Int, 0, "", {S});
}

ExprRef ExprFactory::counterValue(ExprRef S) {
  assert(S->sort() == Sort::State);
  return make(ExprKind::CounterValue, Sort::Int, 0, "", {S});
}

ExprRef ExprFactory::forallInt(const std::string &BoundVar, ExprRef Lo,
                               ExprRef Hi, ExprRef Body) {
  assert(Lo->sort() == Sort::Int && Hi->sort() == Sort::Int &&
         Body->sort() == Sort::Bool);
  return make(ExprKind::Forall, Sort::Bool, 0, BoundVar, {Lo, Hi, Body});
}

ExprRef ExprFactory::existsInt(const std::string &BoundVar, ExprRef Lo,
                               ExprRef Hi, ExprRef Body) {
  assert(Lo->sort() == Sort::Int && Hi->sort() == Sort::Int &&
         Body->sort() == Sort::Bool);
  return make(ExprKind::Exists, Sort::Bool, 0, BoundVar, {Lo, Hi, Body});
}

ExprRef ExprFactory::substitute(ExprRef E,
                                const std::map<std::string, ExprRef> &Subst) {
  switch (E->kind()) {
  case ExprKind::ConstBool:
  case ExprKind::ConstInt:
  case ExprKind::ConstNull:
    return E;
  case ExprKind::Var: {
    auto It = Subst.find(E->name());
    if (It == Subst.end())
      return E;
    assert(It->second->sort() == E->sort() &&
           "substitution changes the sort of a variable");
    return It->second;
  }
  case ExprKind::Forall:
  case ExprKind::Exists: {
    // The bound variable shadows any outer binding of the same name.
    std::map<std::string, ExprRef> Inner = Subst;
    Inner.erase(E->name());
    ExprRef Lo = substitute(E->operand(0), Subst);
    ExprRef Hi = substitute(E->operand(1), Subst);
    ExprRef Body = substitute(E->operand(2), Inner);
    return E->kind() == ExprKind::Forall
               ? forallInt(E->name(), Lo, Hi, Body)
               : existsInt(E->name(), Lo, Hi, Body);
  }
  default:
    break;
  }

  std::vector<ExprRef> NewOps;
  NewOps.reserve(E->numOperands());
  bool Changed = false;
  for (ExprRef Op : E->operands()) {
    ExprRef NewOp = substitute(Op, Subst);
    Changed |= (NewOp != Op);
    NewOps.push_back(NewOp);
  }
  if (!Changed)
    return E;

  switch (E->kind()) {
  case ExprKind::Add:
    return add(NewOps[0], NewOps[1]);
  case ExprKind::Sub:
    return sub(NewOps[0], NewOps[1]);
  case ExprKind::Neg:
    return neg(NewOps[0]);
  case ExprKind::Eq:
    return eq(NewOps[0], NewOps[1]);
  case ExprKind::Lt:
    return lt(NewOps[0], NewOps[1]);
  case ExprKind::Le:
    return le(NewOps[0], NewOps[1]);
  case ExprKind::Not:
    return lnot(NewOps[0]);
  case ExprKind::And:
    return conj(std::move(NewOps));
  case ExprKind::Or:
    return disj(std::move(NewOps));
  case ExprKind::Implies:
    return implies(NewOps[0], NewOps[1]);
  case ExprKind::Iff:
    return iff(NewOps[0], NewOps[1]);
  case ExprKind::Ite:
    return ite(NewOps[0], NewOps[1], NewOps[2]);
  case ExprKind::SetContains:
    return setContains(NewOps[0], NewOps[1]);
  case ExprKind::MapGet:
    return mapGet(NewOps[0], NewOps[1]);
  case ExprKind::MapHasKey:
    return mapHasKey(NewOps[0], NewOps[1]);
  case ExprKind::SeqAt:
    return seqAt(NewOps[0], NewOps[1]);
  case ExprKind::SeqLen:
    return seqLen(NewOps[0]);
  case ExprKind::SeqIndexOf:
    return seqIndexOf(NewOps[0], NewOps[1]);
  case ExprKind::SeqLastIndexOf:
    return seqLastIndexOf(NewOps[0], NewOps[1]);
  case ExprKind::StateSize:
    return stateSize(NewOps[0]);
  case ExprKind::CounterValue:
    return counterValue(NewOps[0]);
  default:
    semcomm_unreachable("unhandled expression kind in substitute");
  }
}
