//===- logic/Expr.h - Hash-consed first-order expressions ------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The expression AST of the specification logic: the first-order fragment of
/// the Jahob specification language that the paper's 765 commutativity
/// conditions, operation pre/postconditions, and inverse assertions use
/// (Ch. 4: "the specifications, commutativity conditions, commutativity
/// testing methods, and inverse testing methods require only first-order
/// logic"). Nodes are immutable and hash-consed by ExprFactory, so pointer
/// equality is structural equality.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_LOGIC_EXPR_H
#define SEMCOMM_LOGIC_EXPR_H

#include "logic/Sort.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace semcomm {

class ExprFactory;

/// Discriminator for expression nodes.
enum class ExprKind : uint8_t {
  // Leaves.
  ConstBool, ///< true / false (payload).
  ConstInt,  ///< integer literal (payload).
  ConstNull, ///< the null object reference.
  Var,       ///< named variable (v1, i2, r1, s1, ...), with a sort.

  // Integer terms.
  Add, ///< ops[0] + ops[1]
  Sub, ///< ops[0] - ops[1]
  Neg, ///< -ops[0]

  // Atoms.
  Eq, ///< ops[0] = ops[1]  (any matching sort; Undef equals nothing)
  Lt, ///< ops[0] < ops[1]  (Int)
  Le, ///< ops[0] <= ops[1] (Int)

  // Boolean connectives. And/Or are n-ary; evaluation short-circuits
  // left-to-right, which licenses the guarded-access idiom the paper's
  // ArrayList conditions use (a bounds guard precedes each indexed read).
  Not,
  And,
  Or,
  Implies,
  Iff,
  Ite, ///< ops[0] ? ops[1] : ops[2]; sort of ops[1]/ops[2].

  // State queries; ops[0] is always a State-sorted expression.
  SetContains,    ///< ops[1] in ops[0]               : Bool
  MapGet,         ///< ops[0].get(ops[1])             : Obj (null if absent)
  MapHasKey,      ///< ops[0].containsKey(ops[1])     : Bool
  SeqAt,          ///< ops[0][ops[1]]                 : Obj (Undef if OOB)
  SeqLen,         ///< |ops[0]|                       : Int
  SeqIndexOf,     ///< first index of ops[1] or -1    : Int
  SeqLastIndexOf, ///< last index of ops[1] or -1     : Int
  StateSize,      ///< ops[0].size()                  : Int
  CounterValue,   ///< accumulator value of ops[0]    : Int

  // Bounded integer quantifiers: boundVar ranges over [ops[0], ops[1]]
  // inclusive; ops[2] is the Bool body.
  Forall,
  Exists,
};

/// An immutable, hash-consed expression node. Create via ExprFactory only.
class Expr {
public:
  ExprKind kind() const { return Kind; }
  Sort sort() const { return ExprSort; }

  /// The boolean payload of a ConstBool.
  bool boolValue() const {
    assert(Kind == ExprKind::ConstBool && "not a bool constant");
    return Payload != 0;
  }

  /// The integer payload of a ConstInt.
  int64_t intValue() const {
    assert(Kind == ExprKind::ConstInt && "not an int constant");
    return Payload;
  }

  /// The variable name of a Var, or the bound variable of a quantifier.
  const std::string &name() const {
    assert((Kind == ExprKind::Var || Kind == ExprKind::Forall ||
            Kind == ExprKind::Exists) &&
           "expression has no name");
    return Name;
  }

  unsigned numOperands() const { return Operands.size(); }
  const Expr *operand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }
  const std::vector<const Expr *> &operands() const { return Operands; }

  bool isTrue() const { return Kind == ExprKind::ConstBool && Payload != 0; }
  bool isFalse() const { return Kind == ExprKind::ConstBool && Payload == 0; }

private:
  friend class ExprFactory;

  Expr(ExprKind K, Sort S, int64_t Payload, std::string Name,
       std::vector<const Expr *> Ops, size_t Hash)
      : Kind(K), ExprSort(S), Payload(Payload), Name(std::move(Name)),
        Operands(std::move(Ops)), Hash(Hash) {}

  ExprKind Kind;
  Sort ExprSort;
  int64_t Payload;
  std::string Name;
  std::vector<const Expr *> Operands;
  /// Structural hash, fixed at interning time so the factory's tables can
  /// rehash without recomputing keys.
  size_t Hash;
};

/// Expressions are referenced by pointer; identity is structural identity.
using ExprRef = const Expr *;

} // namespace semcomm

#endif // SEMCOMM_LOGIC_EXPR_H
