//===- logic/Sort.h - Sorts of the specification logic ---------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four sorts of the first-order fragment the paper's commutativity
/// conditions live in: booleans, mathematical integers, object references
/// (which include null), and abstract data structure states.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_LOGIC_SORT_H
#define SEMCOMM_LOGIC_SORT_H

#include <cstdint>

namespace semcomm {

/// The sort (logic-level type) of an expression.
enum class Sort : uint8_t {
  Bool,
  Int,
  Obj,   ///< Object reference; the null constant inhabits this sort.
  State, ///< Abstract data structure state (s1, s2, s3 in the paper).
};

/// Human-readable sort name for diagnostics.
inline const char *sortName(Sort S) {
  switch (S) {
  case Sort::Bool:
    return "bool";
  case Sort::Int:
    return "int";
  case Sort::Obj:
    return "obj";
  case Sort::State:
    return "state";
  }
  return "<invalid>";
}

} // namespace semcomm

#endif // SEMCOMM_LOGIC_SORT_H
