//===- logic/StateView.cpp - Query interface over a data structure -------===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//

#include "logic/StateView.h"

#include "support/Unreachable.h"

using namespace semcomm;

StateView::~StateView() = default;

bool StateView::contains(const Value &) const {
  semcomm_unreachable("contains() queried on a non-set state");
}

Value StateView::mapGet(const Value &) const {
  semcomm_unreachable("mapGet() queried on a non-map state");
}

bool StateView::mapHasKey(const Value &) const {
  semcomm_unreachable("mapHasKey() queried on a non-map state");
}

int64_t StateView::seqLen() const {
  semcomm_unreachable("seqLen() queried on a non-sequence state");
}

Value StateView::seqAt(int64_t) const {
  semcomm_unreachable("seqAt() queried on a non-sequence state");
}

int64_t StateView::seqIndexOf(const Value &) const {
  semcomm_unreachable("seqIndexOf() queried on a non-sequence state");
}

int64_t StateView::seqLastIndexOf(const Value &) const {
  semcomm_unreachable("seqLastIndexOf() queried on a non-sequence state");
}

int64_t StateView::size() const {
  semcomm_unreachable("size() queried on a state without a size");
}

int64_t StateView::counter() const {
  semcomm_unreachable("counter() queried on a non-accumulator state");
}
