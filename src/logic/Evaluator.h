//===- logic/Evaluator.h - Expression evaluation ----------------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates logic expressions against an environment binding variables to
/// values and state names (s1, s2, s3) to StateViews. This single evaluator
/// serves both halves of the paper's condition tables: the abstract-state
/// column (evaluated against spec::AbstractState) and the concrete runtime
/// column (evaluated against adapters over the linked implementations).
///
/// And / Or / Implies / Ite evaluate left-to-right with short-circuiting, so
/// the guarded-access idiom of the ArrayList conditions (bounds guard before
/// an indexed read) never evaluates an out-of-range read; if a condition is
/// nevertheless mis-guarded, the read yields Undef, which falsifies any
/// equality it appears in rather than aborting.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_LOGIC_EVALUATOR_H
#define SEMCOMM_LOGIC_EVALUATOR_H

#include "logic/Expr.h"
#include "logic/StateView.h"
#include "logic/Value.h"

#include <map>
#include <string>

namespace semcomm {

/// Variable/state bindings for evaluation.
class Env {
public:
  /// Binds scalar variable \p Name to \p V (overwrites).
  void bind(const std::string &Name, const Value &V) { Vars[Name] = V; }

  /// Binds state name \p Name to \p View (not owned; overwrites).
  void bindState(const std::string &Name, const StateView *View) {
    States[Name] = View;
  }

  /// Looks up a scalar variable; aborts if unbound.
  const Value &lookup(const std::string &Name) const;

  /// Looks up a state; aborts if unbound.
  const StateView *lookupState(const std::string &Name) const;

  bool hasVar(const std::string &Name) const { return Vars.count(Name) != 0; }

private:
  std::map<std::string, Value> Vars;
  std::map<std::string, const StateView *> States;
};

/// Evaluates \p E under \p E nvironment; aborts on sort errors or unbound
/// names (program bugs, not data conditions).
Value evaluate(ExprRef E, const Env &Environment);

/// Evaluates a Bool-sorted expression to a C++ bool.
bool evaluateBool(ExprRef E, const Env &Environment);

} // namespace semcomm

#endif // SEMCOMM_LOGIC_EVALUATOR_H
