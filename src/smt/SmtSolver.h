//===- smt/SmtSolver.h - Eager-encoding SMT facade --------------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver the symbolic engine discharges verification conditions with —
/// the role Z3 / CVC3 play under Jahob (§1.4). The interface is Z3-flavored
/// (a context-owned expression factory, assertFormula / check / model), and
/// the implementation is *eager*: theory semantics is compiled into
/// propositional bridge clauses before a single CDCL search, UCLID-style:
///
///  * Equality over object terms: symmetry is handled by atom
///    canonicalization; transitivity over every term triple; congruence
///    for the uninterpreted query terms (map lookups, set membership).
///  * Linear integer atoms are canonicalized to `sum-of-symbols <=/= c`
///    form; atoms sharing a symbol part get ordering/exclusivity bridges.
///
/// The encoding is complete for the fragment the symbolic engine emits
/// (see SymbolicEngine.h); on larger fragments it is conservative: check()
/// may report Sat with a spurious model, which the engine treats as a
/// failed proof — never as unsoundness.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_SMT_SMTSOLVER_H
#define SEMCOMM_SMT_SMTSOLVER_H

#include "logic/ExprFactory.h"
#include "smt/SatSolver.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace semcomm {

/// Eager SMT checker over the logic's expressions.
class SmtSolver {
public:
  explicit SmtSolver(ExprFactory &F) : F(F) {}

  /// Conjoins \p E to the context.
  void assertFormula(ExprRef E);

  /// Decides the asserted conjunction under a conflict budget
  /// (negative = unlimited). Unknown means the budget ran out.
  SatResult check(int64_t MaxConflicts = -1);

  /// SAT statistics of the last check().
  int64_t conflicts() const { return LastConflicts; }
  int64_t decisions() const { return LastDecisions; }
  int numAtoms() const { return LastNumAtoms; }

  /// After a Sat check(): the atoms assigned true, for countermodel
  /// diagnostics.
  std::vector<std::string> modelAtoms() const { return LastModel; }

private:
  ExprRef normalize(ExprRef E);
  ExprRef normalizeAtom(ExprRef E);
  ExprRef canonicalIntAtom(ExprKind K, ExprRef A, ExprRef B);
  ExprRef eqObj(ExprRef A, ExprRef B);

  void collectBridges(const std::map<ExprRef, int> &Atoms,
                      std::vector<ExprRef> &Bridges);

  ExprFactory &F;
  std::vector<ExprRef> Asserted;
  int64_t LastConflicts = 0;
  int64_t LastDecisions = 0;
  int LastNumAtoms = 0;
  std::vector<std::string> LastModel;
};

} // namespace semcomm

#endif // SEMCOMM_SMT_SMTSOLVER_H
