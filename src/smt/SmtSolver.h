//===- smt/SmtSolver.h - Eager-encoding SMT facade --------------*- C++ -*-===//
//
// Part of the SemCommute project: a reproduction of Kim & Rinard,
// "Verification of Semantic Commutativity Conditions and Inverse Operations
// on Linked Data Structures" (PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver the symbolic engine discharges verification conditions with —
/// the role Z3 / CVC3 play under Jahob (§1.4). The interface is Z3-flavored
/// (a context-owned expression factory, assert / check / model), and the
/// implementation is *eager*: theory semantics is compiled into
/// propositional bridge clauses before the CDCL search, UCLID-style:
///
///  * Equality over object terms: symmetry is handled by atom
///    canonicalization; transitivity over every term triple; congruence
///    for the uninterpreted query terms (map lookups, set membership).
///  * Linear integer atoms are canonicalized to `sum-of-symbols <=/= c`
///    form; atoms sharing a symbol part get ordering/exclusivity bridges.
///
/// SmtSession is the *incremental* interface: base formulas are asserted
/// (and Tseitin-encoded, with their bridge clauses) exactly once, and each
/// query is discharged under assumption literals on a warm SatSolver, so
/// Tseitin definitions, bridge clauses, and learned clauses are all
/// retained across the queries of one verification family. Bridges are
/// emitted incrementally: a new theory atom only generates the bridge
/// instances that mention it. All bookkeeping is insertion-ordered, so a
/// session's behavior is a function of the asserted formula sequence alone
/// — never of pointer values — which keeps multi-threaded driver runs
/// verdict-deterministic.
///
/// SmtSolver is the original one-shot facade, now a thin wrapper that runs
/// each check() in a fresh session.
///
/// The encoding is complete for the fragment the symbolic engine emits
/// (see SymbolicEngine.h); on larger fragments it is conservative: check()
/// may report Sat with a spurious model, which the engine treats as a
/// failed proof — never as unsoundness.
///
//===----------------------------------------------------------------------===//

#ifndef SEMCOMM_SMT_SMTSOLVER_H
#define SEMCOMM_SMT_SMTSOLVER_H

#include "logic/ExprFactory.h"
#include "smt/SatSolver.h"
#include "smt/Tseitin.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace semcomm {

namespace detail {
/// Metadata for a canonicalized integer atom variable.
struct IntAtomInfo {
  std::string Signature; ///< Symbol part (canonical).
  bool IsEq = false;     ///< sum = C when true; sum <= C otherwise.
  int64_t C = 0;
};
} // namespace detail

/// An incremental eager SMT session over the logic's expressions: assert
/// base formulas once, then discharge many queries under assumptions
/// against the same warm CDCL solver.
class SmtSession {
public:
  explicit SmtSession(ExprFactory &F) : F(F), Encoder(Sat) {}
  SmtSession(const SmtSession &) = delete;
  SmtSession &operator=(const SmtSession &) = delete;

  /// Conjoins \p E to the session permanently: it holds in every
  /// subsequent check().
  void assertBase(ExprRef E);

  /// Asserts `Selector -> Body` permanently, attributing \p Body's atoms
  /// to \p Selector's scope instead of the session base. A check() run
  /// with that selector as its ActiveScope reports countermodels over
  /// base + scope + query atoms — other scopes' atoms stay out of the
  /// diagnostics (the shared per-pair sessions assert every method's
  /// prefix this way).
  void assertScoped(ExprRef Selector, ExprRef Body);

  /// Asserts `Outer -> (Selector -> Body)` permanently, attributing
  /// \p Body's atoms to \p Selector's scope. The family-level sessions
  /// nest every method selector under its pair selector this way, so
  /// retiring the pair selector deactivates the whole pair at once.
  void assertScopedUnder(ExprRef Outer, ExprRef Selector, ExprRef Body);

  /// Permanently retires \p Selector's scope: the selector is forced false
  /// at root level, the scope's selector-guarded clauses and every learned
  /// clause touching \p Selector or \p SubSelectors (nested selectors
  /// asserted under it) are evicted, and dead variables' search state is
  /// recycled. Once retired, a selector can never be re-activated; callers
  /// that re-verify a retired scope must allocate a fresh selector.
  /// Returns the number of clauses evicted.
  size_t retireScope(ExprRef Selector,
                     const std::vector<ExprRef> &SubSelectors = {});

  /// Decides base ∧ ⋀Assumed under a per-call conflict budget (negative =
  /// unlimited). The \p Assumed formulas hold for this call only; their
  /// Tseitin encodings, bridge clauses, and any learned clauses are
  /// retained for future calls. \p ActiveScope (a selector previously
  /// passed to assertScoped) widens the countermodel vocabulary to that
  /// scope's atoms.
  SatResult check(const std::vector<ExprRef> &Assumed,
                  int64_t MaxConflicts = -1, ExprRef ActiveScope = nullptr);

  /// As above, with several active scopes (a family session passes the
  /// pair selector and the method selector together).
  SatResult check(const std::vector<ExprRef> &Assumed, int64_t MaxConflicts,
                  const std::vector<ExprRef> &ActiveScopes);

  /// After an Unsat check(), iterate solve(unsatCore()) until the core
  /// stops shrinking (or \p MaxRounds re-solves ran) before recording the
  /// core, so CoreLabels name a locally minimal assumption set — the
  /// §5.2.1 minimization signal. 0 disables the extra solves. The default
  /// is a small bound: each round is cheap (the refutation's lemmas are
  /// already learned), and the fixpoint is usually reached in one.
  void setCoreMinimizationRounds(unsigned N) { CoreMinRounds = N; }
  /// Extra solves the minimization ran (statistics).
  int64_t coreMinimizationSolves() const { return CoreMinSolves; }

  /// SAT statistics of the last check() (per-call deltas).
  int64_t conflicts() const { return LastConflicts; }
  int64_t decisions() const { return LastDecisions; }
  /// Cumulative statistics across the whole session.
  int64_t totalConflicts() const { return Sat.numConflicts(); }
  size_t numChecks() const { return Checks; }
  /// Clauses retained in the warm solver (Tseitin definitions, bridges,
  /// learned clauses) that later checks reuse instead of re-deriving.
  size_t retainedClauses() const { return Sat.numClauses(); }
  int64_t learnedClauses() const { return Sat.numLearnedClauses(); }
  /// Learned-clause-database reductions the warm solver ran, and the total
  /// clauses they reclaimed (long-lived shared sessions rely on this GC).
  int64_t dbReductions() const { return Sat.numDbReductions(); }
  int64_t reclaimedClauses() const { return Sat.numReclaimedClauses(); }
  /// Scope retirements served and the clauses they evicted (family-level
  /// sessions retire each finished pair's scope).
  int64_t scopeRetirements() const { return Sat.numScopeRetirements(); }
  int64_t evictedClauses() const { return Sat.numEvictedClauses(); }
  int numAtoms() const { return static_cast<int>(Encoder.atoms().size()); }

  /// The underlying CDCL solver, exposed for clause-GC configuration
  /// (benches pin the no-GC baseline; tests force aggressive reduction).
  SatSolver &solver() { return Sat; }

  /// After a Sat check(): the atoms assigned true, for countermodel
  /// diagnostics (sorted by printed form; deterministic across runs).
  const std::vector<std::string> &modelAtoms() const { return LastModel; }

  /// After an Unsat check(): indices into the check's Assumed vector of the
  /// assumptions the refutation actually used (the solver's unsat core
  /// mapped back to formulas). Empty when the base alone is contradictory.
  const std::vector<size_t> &lastCoreAssumptionIndices() const {
    return LastCoreIdx;
  }

private:
  ExprRef normalize(ExprRef E);
  ExprRef normalizeAtom(ExprRef E);
  ExprRef canonicalIntAtom(ExprKind K, ExprRef A, ExprRef B);
  ExprRef eqObj(ExprRef A, ExprRef B);

  /// Registers the theory atoms of a normalized formula and asserts the
  /// bridge instances that mention at least one newly seen atom.
  void ingest(ExprRef Normalized);
  void collectTheoryAtoms(ExprRef E);
  void emitNewBridges();
  /// Collects the boolean atoms (non-propositional leaves) of a normalized
  /// formula — the vocabulary a countermodel should be reported over.
  /// \p Visited memoizes over the hash-consed DAG (connective nodes are
  /// not in \p Out, so Out alone cannot stop re-traversal).
  static void collectBoolAtoms(ExprRef E, std::set<ExprRef> &Out,
                               std::set<ExprRef> &Visited);

  ExprFactory &F;
  SatSolver Sat;
  Tseitin Encoder;

  // Theory atom registries. Vectors preserve discovery order (the bridge
  // emission order must not depend on pointer values); sets dedup.
  std::vector<ExprRef> ObjTerms;
  std::set<ExprRef> ObjTermSet;
  std::vector<ExprRef> MapLookups;
  std::vector<ExprRef> MemAtoms;
  std::set<ExprRef> MemAtomSet;
  std::vector<std::pair<ExprRef, detail::IntAtomInfo>> IntAtoms;
  std::set<ExprRef> IntAtomSeen;

  /// Atoms of the base formulas: a failing check's countermodel is
  /// reported over base + active-scope + current-query atoms only, not
  /// over every atom the warm session has accumulated from earlier,
  /// unrelated queries or other selector scopes.
  std::set<ExprRef> BaseAtoms;
  std::map<ExprRef, std::set<ExprRef>> ScopedAtoms; ///< Keyed by selector.

  // High-water marks of the atoms already covered by emitted bridges.
  size_t BridgedObjTerms = 0;
  size_t BridgedMapLookups = 0;
  size_t BridgedMemAtoms = 0;
  size_t BridgedIntAtoms = 0;

  size_t Checks = 0;
  int64_t LastConflicts = 0;
  int64_t LastDecisions = 0;
  unsigned CoreMinRounds = 4;
  int64_t CoreMinSolves = 0;
  std::vector<std::string> LastModel;
  std::vector<size_t> LastCoreIdx;
};

/// One-shot eager SMT checker: the historical facade, each check() running
/// in a fresh SmtSession. Kept for callers that decide a single formula
/// set (and as the cold-start baseline the incremental benches compare
/// against).
class SmtSolver {
public:
  explicit SmtSolver(ExprFactory &F) : F(F) {}

  /// Conjoins \p E to the context.
  void assertFormula(ExprRef E);

  /// Decides the asserted conjunction under a conflict budget
  /// (negative = unlimited). Unknown means the budget ran out.
  SatResult check(int64_t MaxConflicts = -1);

  /// SAT statistics of the last check().
  int64_t conflicts() const { return LastConflicts; }
  int64_t decisions() const { return LastDecisions; }
  int numAtoms() const { return LastNumAtoms; }

  /// After a Sat check(): the atoms assigned true, for countermodel
  /// diagnostics.
  const std::vector<std::string> &modelAtoms() const { return LastModel; }

private:
  ExprFactory &F;
  std::vector<ExprRef> Asserted;
  int64_t LastConflicts = 0;
  int64_t LastDecisions = 0;
  int LastNumAtoms = 0;
  std::vector<std::string> LastModel;
};

} // namespace semcomm

#endif // SEMCOMM_SMT_SMTSOLVER_H
